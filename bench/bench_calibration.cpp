// Closed-loop calibration recovery benchmark: one pool device carries a
// deterministic per-launch delay fault (a degraded GPU), and the same
// hybrid workload is served twice — once with the static cost model
// (--calibrate=off) and once with the calibrator steering decisions
// (--calibrate=apply).  The calibrated run fits the degradation out of the
// live metrics and shrinks the degraded device's hybrid split (plus
// placement tie-breaks), so jobs dispatched there stop drowning in
// delayed kernel launches.
//
// Expected (enforced in-binary): calibrated throughput >= 1.2x static on
// the measured wave, measured in virtual jobs/sec after an identical
// warmup.  Emits BENCH_calibrate.json.
#include <cstdio>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "calibrate/calibrator.hpp"
#include "serve/server.hpp"
#include "sparse/generators.hpp"
#include "vgpu/fault_injector.hpp"

namespace {

using namespace oocgemm;

constexpr int kWarmupWaves = 8;
constexpr int kJobsPerWave = 4;
constexpr int kMeasuredJobs = 24;
constexpr double kRecoveryGate = 1.2;

std::shared_ptr<const sparse::Csr> Rmat(int scale, double edge_factor,
                                        std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p));
}

struct RunOutcome {
  double measured_jobs_per_second = 0.0;
  double measured_makespan = 0.0;
  double dev1_gpu_ratio = 0.0;   // fitted (calibrated run) or static
  double dev1_rate = 0.0;        // fitted effective flops/s, 0 when static
  serve::ServerReport report;
};

/// Serves warmup waves then a measured wave from a two-device pool whose
/// device 1 delays every kernel launch.  The calibrated run ticks the
/// fit between waves (the CLI's --calibrate-interval does the same job in
/// wall time); throughput is measured on the virtual booking timeline as
/// measured-wave jobs over the timeline frontier the wave added.
RunOutcome RunWorkload(
    const std::vector<std::shared_ptr<const sparse::Csr>>& warmup,
    const std::vector<std::shared_ptr<const sparse::Csr>>& measured,
    bool calibrated) {
  // Shift-16 memory against rmat9 operands puts every hybrid job at
  // ~15 chunks (roughly 10 GPU / 5 CPU at the static 0.67 split), so the
  // fitted ratio has real chunks to move and the CPU half generates the
  // samples the CPU-rate fit needs.
  vgpu::Device d0(vgpu::ScaledV100Properties(16));
  vgpu::Device d1(vgpu::ScaledV100Properties(16));
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:p=1:delay=0.04", /*seed=*/7).value());
  d1.set_fault_injector(&injector);

  ThreadPool pool(2);
  serve::ServerConfig config;
  config.scheduler.num_workers = 3;
  config.scheduler.cpu_lanes = 2;
  config.max_queue = 64;
  if (calibrated) {
    config.calibrate.mode = calibrate::CalibrateMode::kApply;
  }
  serve::SpgemmServer server({&d0, &d1}, pool, config);

  auto submit = [&server](const std::shared_ptr<const sparse::Csr>& a) {
    serve::SpgemmJob job;
    job.a = a;
    job.b = a;
    job.options.mode = core::ExecutionMode::kHybrid;
    return server.Submit(std::move(job));
  };

  std::vector<std::future<serve::JobResult>> futures;
  for (int wave = 0; wave < kWarmupWaves; ++wave) {
    for (int j = 0; j < kJobsPerWave; ++j) {
      futures.push_back(
          submit(warmup[static_cast<std::size_t>(wave * kJobsPerWave + j)]));
    }
    server.Drain();
    if (server.calibrator() != nullptr) server.calibrator()->TickNow();
  }
  const double frontier_before = server.Report().virtual_makespan_seconds;

  for (const auto& a : measured) futures.push_back(submit(a));
  server.Drain();

  RunOutcome out;
  out.report = server.Report();
  for (auto& f : futures) {
    serve::JobResult r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "job %llu failed: %s\n",
                   static_cast<unsigned long long>(r.metrics.id),
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }
  out.measured_makespan =
      out.report.virtual_makespan_seconds - frontier_before;
  out.measured_jobs_per_second =
      out.measured_makespan > 0.0
          ? static_cast<double>(kMeasuredJobs) / out.measured_makespan
          : 0.0;
  out.dev1_gpu_ratio = core::ExecutorOptions{}.gpu_ratio;
  if (server.calibrator() != nullptr) {
    auto model = server.calibrator()->model();
    if (model != nullptr && model->num_devices() > 1) {
      out.dev1_gpu_ratio =
          model->GpuRatioFor(1, core::ExecutorOptions{}.gpu_ratio);
      if (model->device(1).rate_confident) {
        out.dev1_rate = model->device(1).flop_rate;
      }
    }
  }
  server.Shutdown();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - closed-loop cost-model calibration",
      "IPDPS'21 Sec. IV (Ratio = S/(S+1), with S fitted from live metrics)",
      "calibrated serving >= 1.2x static virtual jobs/sec with one "
      "delay-degraded pool device");

  std::vector<std::shared_ptr<const sparse::Csr>> warmup, measured;
  for (int i = 0; i < kWarmupWaves * kJobsPerWave; ++i) {
    warmup.push_back(Rmat(9, 8.0, 500 + static_cast<std::uint64_t>(i)));
  }
  for (int i = 0; i < kMeasuredJobs; ++i) {
    measured.push_back(Rmat(9, 8.0, 900 + static_cast<std::uint64_t>(i)));
  }

  const RunOutcome stat = RunWorkload(warmup, measured, /*calibrated=*/false);
  const RunOutcome calib = RunWorkload(warmup, measured, /*calibrated=*/true);
  const double recovery =
      stat.measured_jobs_per_second > 0.0
          ? calib.measured_jobs_per_second / stat.measured_jobs_per_second
          : 0.0;

  TablePrinter table(
      {"mode", "jobs/s", "makespan", "dev1 ratio", "dev1 fitted flops/s"});
  table.AddRow({"static", Fixed(stat.measured_jobs_per_second, 2),
                HumanSeconds(stat.measured_makespan),
                Fixed(stat.dev1_gpu_ratio, 3), "-"});
  table.AddRow({"calibrated", Fixed(calib.measured_jobs_per_second, 2),
                HumanSeconds(calib.measured_makespan),
                Fixed(calib.dev1_gpu_ratio, 3),
                HumanCount(calib.dev1_rate)});
  table.Print();
  std::printf("\nrecovery: %sx (gate %.1fx)\n", Fixed(recovery, 2).c_str(),
              kRecoveryGate);

  std::ostringstream json;
  json << "{\n  \"experiment\": \"calibrate_recovery\",\n"
       << "  \"warmup_jobs\": " << kWarmupWaves * kJobsPerWave << ",\n"
       << "  \"measured_jobs\": " << kMeasuredJobs << ",\n"
       << "  \"static_jobs_per_second\": " << stat.measured_jobs_per_second
       << ",\n"
       << "  \"calibrated_jobs_per_second\": "
       << calib.measured_jobs_per_second << ",\n"
       << "  \"recovery\": " << recovery << ",\n"
       << "  \"recovery_gate\": " << kRecoveryGate << ",\n"
       << "  \"dev1_gpu_ratio_calibrated\": " << calib.dev1_gpu_ratio << ",\n"
       << "  \"dev1_fitted_flop_rate\": " << calib.dev1_rate << "\n}";
  if (!bench::WriteBenchJson("BENCH_calibrate.json", json.str())) return 1;

  if (recovery < kRecoveryGate) {
    std::fprintf(stderr,
                 "FAIL: calibrated recovery %.3fx under the %.1fx gate "
                 "(static %.2f vs calibrated %.2f jobs/s)\n",
                 recovery, kRecoveryGate, stat.measured_jobs_per_second,
                 calib.measured_jobs_per_second);
    return 1;
  }
  return 0;
}
