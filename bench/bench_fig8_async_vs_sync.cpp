// Fig. 8: asynchronous GPU implementation vs the synchronous (partitioned
// spECK) implementation.  Paper: 6.8% - 17.7% speedup, limited by the
// transfer-dominated profile of Fig. 4.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Fig. 8 - asynchronous vs synchronous out-of-core GPU",
      "IPDPS'21 Sec. V-D, Fig. 8",
      "async wins ~5-20% on every matrix (bounded by the compute share)");

  bench::BenchContext ctx;
  TablePrinter table({"matrix", "sync", "async", "speedup", "overlap factor",
                      "paper"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device d_sync(bench::BenchDeviceProperties());
    vgpu::Device d_async(bench::BenchDeviceProperties());
    auto sync = core::SyncOutOfCore(d_sync, a, a, ctx.options, ctx.pool);
    auto async = core::AsyncOutOfCore(d_async, a, a, ctx.options, ctx.pool);
    if (!sync.ok() || !async.ok()) {
      std::fprintf(stderr, "%s failed\n", spec.abbr.c_str());
      return 1;
    }
    const double speedup =
        sync->stats.total_seconds / async->stats.total_seconds - 1.0;
    table.AddRow({spec.abbr, HumanSeconds(sync->stats.total_seconds),
                  HumanSeconds(async->stats.total_seconds),
                  Fixed(100.0 * speedup, 1) + " %",
                  Fixed(async->stats.overlap_factor, 2), "6.8-17.7 %"});
  }
  table.Print();
  return 0;
}
