// Fleet routing benchmark (extension beyond the paper's evaluation):
// consistent-hash operand affinity vs uniform random placement across 2-4
// in-process shards, on a skewed shared-B workload — a few common B
// operands (one dominating) multiplied by many light per-tenant A_i.
//
// Affinity routing sends every job on the same B to the same shard, so that
// shard's batch former coalesces them and uploads B's column panels once
// per batch; random placement splits each B's jobs over all S shards and
// pays roughly S times the uploads per job.  Expected: at 3 shards,
// affinity achieves >= 2x fewer B-panel uploads per job than random.
// Emits BENCH_fleet.json.
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "fleet/placement.hpp"
#include "fleet/ring.hpp"
#include "fleet/router.hpp"
#include "sparse/generators.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace oocgemm;

std::shared_ptr<const sparse::Csr> Rmat(int scale, double edge_factor,
                                        std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p));
}

std::shared_ptr<const sparse::Csr> Er(sparse::index_t rows,
                                      sparse::index_t cols, double degree,
                                      std::uint64_t seed) {
  sparse::ErdosRenyiParams p;
  p.rows = rows;
  p.cols = cols;
  p.avg_degree = degree;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateErdosRenyi(p));
}

constexpr int kJobs = 48;

// One prepared job: which pooled B it multiplies, and its own A.
struct Work {
  std::shared_ptr<const sparse::Csr> a;
  std::shared_ptr<const sparse::Csr> b;
};

// Skewed draw from the B pool: half the traffic hits B0, a quarter B1, the
// rest splits over the tail — the hot-operand shape the tracker exists for.
std::size_t SkewedPick(SplitMix64& rng) {
  const std::uint64_t r = rng.Next() % 16;
  if (r < 8) return 0;
  if (r < 12) return 1;
  if (r < 14) return 2;
  return 3;
}

// One heavyweight CPU-only job per shard, submitted ahead of the real
// workload at top priority.  Each shard's single worker chews its decoy
// while the 48 GPU jobs queue up behind it (admission runs PlanPanels on
// the submitting thread, so submission alone cannot outrun a live
// consumer); batch formation then reflects placement, not the
// submission-vs-consumption race.  Decoy B operands are searched so their
// ring owners cover every shard.
std::vector<Work> MakeDecoys(int num_shards) {
  fleet::ConsistentHashRing ring(num_shards);
  std::vector<Work> decoys;
  std::uint64_t seed = 9000;
  for (int s = 0; s < num_shards; ++s) {
    for (;; ++seed) {
      auto b = Rmat(13, 8.0, seed);
      if (ring.Owner(fleet::OperandPlacementKey(*b)) == s) {
        decoys.push_back({b, b});  // a heavy squaring, run on the CPU path
        break;
      }
    }
  }
  return decoys;
}

struct RunOutcome {
  fleet::FleetReport report;
  double uploads_per_job = 0.0;
  double jobs_per_second = 0.0;
};

RunOutcome RunWorkload(const std::vector<Work>& work,
                       const std::vector<Work>& decoys, int num_shards,
                       fleet::RoutingPolicy policy) {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<std::vector<vgpu::Device*>> shard_devices;
  for (int s = 0; s < num_shards; ++s) {
    // Roomy enough that a shard's PanelCache holds every B it owns: the
    // uploads-per-job gap then measures placement (cold uploads per
    // distinct shard/operand pair), not cache-eviction noise.
    storage.push_back(
        std::make_unique<vgpu::Device>(vgpu::ScaledV100Properties(10)));
    shard_devices.push_back({storage.back().get()});
  }
  ThreadPool pool(4);

  fleet::FleetConfig config;
  config.policy = policy;
  config.shard.scheduler.num_workers = 1;  // one stream per shard: the
                                           // placement lever, isolated
  config.shard.scheduler.max_batch_jobs = kJobs;
  config.shard.max_queue = static_cast<std::size_t>(kJobs) + 16;
  config.replication.replication = 1;  // placement only; no hot fan-out
  fleet::FleetRouter router(std::move(shard_devices), pool, config);

  std::vector<std::future<serve::JobResult>> futures;
  for (const Work& d : decoys) {
    serve::SpgemmJob job;
    job.a = d.a;
    job.b = d.b;
    job.options.mode = core::ExecutionMode::kCpuOnly;
    job.options.priority = 10;
    futures.push_back(router.Submit(std::move(job)));
  }
  for (const Work& w : work) {
    serve::SpgemmJob job;
    job.a = w.a;
    job.b = w.b;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(router.Submit(std::move(job)));
  }
  router.Drain();
  for (auto& f : futures) {
    serve::JobResult r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "job %llu failed: %s\n",
                   static_cast<unsigned long long>(r.metrics.id),
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }

  RunOutcome out;
  out.report = router.Report();
  // Decoys never upload B panels (CPU path), so the numerator is pure;
  // normalize by the real GPU jobs only.
  out.uploads_per_job =
      static_cast<double>(out.report.totals.b_panel_uploads) / kJobs;
  out.jobs_per_second = out.report.totals.jobs_per_second;
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - fleet operand-affinity routing",
      "IPDPS'21 Sec. IV-B (beyond: consistent-hash placement across shards)",
      ">=2x fewer B-panel uploads/job than random routing at 3 shards on "
      "a skewed shared-B workload");

  // Four pooled B operands (skew-selected), per-job rectangular A_i with a
  // few query rows each — per-job cost is dominated by B-panel traffic,
  // exactly what placement amortizes.
  std::vector<std::shared_ptr<const sparse::Csr>> bs;
  for (int i = 0; i < 4; ++i) {
    bs.push_back(Rmat(11, 8.0, 42 + static_cast<std::uint64_t>(i)));
  }
  SplitMix64 rng(7);
  std::vector<Work> work;
  for (int i = 0; i < kJobs; ++i) {
    const auto& b = bs[SkewedPick(rng)];
    work.push_back(
        {Er(64, b->rows(), 4.0, 1000 + static_cast<std::uint64_t>(i)), b});
  }

  TablePrinter table({"shards", "policy", "jobs/s", "B uploads/job",
                      "batches", "avg size", "resubmits"});
  std::ostringstream runs;
  bool first = true;
  double affinity_upj_at3 = 0.0, random_upj_at3 = 0.0;
  for (int shards = 2; shards <= 4; ++shards) {
    const std::vector<Work> decoys = MakeDecoys(shards);
    for (const fleet::RoutingPolicy policy :
         {fleet::RoutingPolicy::kAffinity, fleet::RoutingPolicy::kRandom}) {
      RunOutcome run = RunWorkload(work, decoys, shards, policy);
      const fleet::FleetReport& report = run.report;
      const std::int64_t expected_jobs =
          kJobs + static_cast<std::int64_t>(decoys.size());
      if (report.totals.completed != expected_jobs ||
          report.totals.device_oom_failures != 0 || !report.Reconciles()) {
        std::fprintf(stderr,
                     "FAIL: %lld/%lld completed, %lld device OOMs, "
                     "reconciles=%d\n",
                     static_cast<long long>(report.totals.completed),
                     static_cast<long long>(expected_jobs),
                     static_cast<long long>(
                         report.totals.device_oom_failures),
                     report.Reconciles() ? 1 : 0);
        return 1;
      }
      if (shards == 3) {
        (policy == fleet::RoutingPolicy::kAffinity ? affinity_upj_at3
                                                   : random_upj_at3) =
            run.uploads_per_job;
      }
      table.AddRow({std::to_string(shards),
                    fleet::RoutingPolicyName(policy),
                    Fixed(run.jobs_per_second, 2),
                    Fixed(run.uploads_per_job, 2),
                    std::to_string(report.totals.batches),
                    Fixed(report.totals.batches > 0
                              ? static_cast<double>(
                                    report.totals.batched_jobs) /
                                    static_cast<double>(report.totals.batches)
                              : 0.0,
                          2),
                    std::to_string(report.routing.failover_resubmissions)});

      if (!first) runs << ",\n";
      first = false;
      runs << "    {\"shards\": " << shards << ", \"policy\": \""
           << fleet::RoutingPolicyName(policy)
           << "\", \"b_panel_uploads_per_job\": " << run.uploads_per_job
           << ", \"jobs_per_second\": " << run.jobs_per_second
           << ", \"report\": " << report.ToJson() << "}";
    }
  }
  table.Print();

  const double reduction =
      affinity_upj_at3 > 0.0 ? random_upj_at3 / affinity_upj_at3 : 0.0;
  std::printf(
      "\n3 shards: affinity %.2f uploads/job vs random %.2f (%.2fx fewer)\n",
      affinity_upj_at3, random_upj_at3, reduction);

  std::ofstream out("BENCH_fleet.json");
  out << "{\n  \"experiment\": \"fleet_affinity_routing\",\n"
      << "  \"jobs\": " << kJobs << ",\n"
      << "  \"upload_reduction_at_3_shards\": " << reduction << ",\n"
      << "  \"runs\": [\n"
      << runs.str() << "\n  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_fleet.json\n");

  if (reduction < 2.0) {
    std::fprintf(stderr,
                 "FAIL: affinity upload reduction %.2fx below the 2x bar\n",
                 reduction);
    return 1;
  }
  return 0;
}
