// Adaptive kernel routing vs forced single-strategy SpGEMM (PR 8).
//
// The registry routes each work class of rows to the accumulator the cost
// model picks (kernel_registry.hpp); this bench measures what that routing
// buys on three structural classes — skewed (R-MAT power law), uniform
// (Erdos-Renyi) and banded (regular stencil) — against forcing each single
// strategy everywhere.  Expectation: adaptive tracks the best forced
// strategy on every class (no single strategy wins all three), and on the
// skewed input it beats the best *single* forced choice because heavy and
// tiny rows want different kernels.
//
// Emits BENCH_routing.json; exits nonzero when adaptive is more than 10%
// slower than the best forced strategy on any class (the routing-matrix CI
// gate).
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "kernels/kernel_registry.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Adaptive kernel routing vs forced accumulator strategies",
      "registry cost-model routing (Liu-Vinter binning over Sec. II-B)",
      "adaptive within 10% of the best forced strategy on every class; "
      "no forced strategy is best on all classes");

  struct InputClass {
    std::string name;
    sparse::Csr a;
  };
  std::vector<InputClass> classes;
  {
    sparse::RmatParams p;
    p.scale = 17;
    p.edge_factor = 4.0;
    p.seed = 21;
    classes.push_back({"skewed", sparse::GenerateRmat(p)});
  }
  {
    sparse::ErdosRenyiParams p;
    p.rows = p.cols = 4096;
    p.avg_degree = 14.0;
    p.seed = 22;
    classes.push_back({"uniform", sparse::GenerateErdosRenyi(p)});
  }
  {
    sparse::BandedParams p;
    p.n = 4096;
    p.half_bandwidth = 12;
    p.seed = 23;
    classes.push_back({"banded", sparse::GenerateBanded(p)});
  }

  ThreadPool pool;
  auto run_once = [&](const sparse::Csr& a, kernels::AccumulatorKind kind) {
    kernels::CpuSpgemmOptions options;
    options.accumulator = kind;
    WallTimer timer;
    sparse::Csr c = kernels::CpuSpgemm(a, a, pool, options);
    return timer.Seconds();
  };

  TablePrinter table({"class", "rows", "nnz(A)", "adaptive", "hash", "dense",
                      "sort", "merge", "best forced", "adaptive/best"});
  std::ostringstream per_class;
  bool gate_ok = true;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const InputClass& input = classes[i];
    // Small inputs get more repetitions: their few-ms runs are the ones
    // machine noise can swamp.  Rounds interleave all five configurations
    // (best-of per configuration) so load drift hits each one equally, and
    // an untimed warmup absorbs first-touch costs.
    const int reps = input.a.rows() <= 8192 ? 7 : 2;
    (void)run_once(input.a, kernels::AccumulatorKind::kAuto);
    double adaptive = 1e300;
    std::vector<std::pair<std::string, double>> forced;
    for (kernels::AccumulatorKind kind : kernels::kAllStrategies) {
      forced.emplace_back(kernels::AccumulatorKindName(kind), 1e300);
    }
    for (int rep = 0; rep < reps; ++rep) {
      adaptive = std::min(
          adaptive, run_once(input.a, kernels::AccumulatorKind::kAuto));
      for (std::size_t k = 0; k < kernels::kAllStrategies.size(); ++k) {
        forced[k].second = std::min(
            forced[k].second, run_once(input.a, kernels::kAllStrategies[k]));
      }
    }
    double best_forced = 1e300;
    std::string best_name;
    for (const auto& [name, t] : forced) {
      if (t < best_forced) {
        best_forced = t;
        best_name = name;
      }
    }
    const double ratio = adaptive / best_forced;
    gate_ok = gate_ok && ratio <= 1.10;
    table.AddRow({input.name, std::to_string(input.a.rows()),
                  std::to_string(input.a.nnz()), HumanSeconds(adaptive),
                  HumanSeconds(forced[0].second), HumanSeconds(forced[1].second),
                  HumanSeconds(forced[2].second), HumanSeconds(forced[3].second),
                  best_name, Fixed(ratio, 3)});
    if (i > 0) per_class << ",\n";
    per_class << "    {\"class\": \"" << input.name << "\""
              << ", \"rows\": " << input.a.rows()
              << ", \"nnz\": " << input.a.nnz()
              << ", \"adaptive_seconds\": " << adaptive
              << ", \"best_forced\": \"" << best_name << "\""
              << ", \"best_forced_seconds\": " << best_forced
              << ", \"adaptive_over_best_forced\": " << ratio;
    for (const auto& [name, t] : forced) {
      per_class << ", \"" << name << "_seconds\": " << t;
    }
    per_class << "}";
  }
  table.Print();

  std::ostringstream json;
  json << "{\n  \"experiment\": \"kernel_routing\",\n"
       << "  \"tolerance\": 1.10,\n"
       << "  \"gate_ok\": " << (gate_ok ? 1 : 0) << ",\n"
       << "  \"per_class\": [\n"
       << per_class.str() << "\n  ]\n}\n";
  if (!bench::WriteBenchJson("BENCH_routing.json", json.str())) return 1;

  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: adaptive routing more than 10%% slower than the best "
                 "forced strategy on at least one class\n");
    return 1;
  }
  std::printf("\nadaptive within 10%% of best forced on every class\n");
  return 0;
}
