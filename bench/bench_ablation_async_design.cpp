// Ablation (paper Sec. IV-B): the asynchronous design choices.
//  1. Transfer schedule: the paper's divided & interleaved transfers
//     (Fig. 6) vs naive double buffering (Fig. 5).
//  2. Split fraction: the 33% first-portion rule, swept 0..1.
//  3. Pinned vs pageable host staging.
//  4. Worst-case pre-allocation bound: how loose the flop-based upper
//     bound on chunk nnz is (the reason the paper manages its own pool).
#include <cstdio>

#include "bench_util.hpp"
#include "core/problem.hpp"
#include "partition/chunk.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Ablation - asynchronous execution design choices",
      "IPDPS'21 Sec. IV-B (pre-allocation; dividing & scheduling transfers)",
      "scheduled beats naive; split ~1/3 is near-optimal; pageable staging "
      "hurts; the worst-case bound over-allocates severely");

  bench::BenchContext ctx;
  sparse::Csr a = sparse::PaperMatrix("com-lj", bench::kBenchScaleShift).build();
  std::printf("matrix: com-lj stand-in, %s\n\n", a.DebugString().c_str());

  // --- 1. transfer schedule + 3. pinned staging --------------------------------
  {
    TablePrinter table({"variant", "total", "vs paper design"});
    double base = 0.0;
    struct Variant {
      const char* name;
      core::TransferSchedule schedule;
      bool pinned;
    } variants[] = {
        {"scheduled + pinned (paper)", core::TransferSchedule::kScheduled, true},
        {"naive double-buffering", core::TransferSchedule::kNaive, true},
        {"scheduled + pageable host", core::TransferSchedule::kScheduled,
         false},
    };
    for (const auto& v : variants) {
      core::ExecutorOptions options = ctx.options;
      options.transfer_schedule = v.schedule;
      options.pinned_host = v.pinned;
      vgpu::Device device(bench::BenchDeviceProperties());
      auto r = core::AsyncOutOfCore(device, a, a, options, ctx.pool);
      if (!r.ok()) {
        std::fprintf(stderr, "%s failed\n", v.name);
        return 1;
      }
      if (base == 0.0) base = r->stats.total_seconds;
      table.AddRow({v.name, HumanSeconds(r->stats.total_seconds),
                    Fixed(100.0 * (r->stats.total_seconds / base - 1.0), 1) +
                        " %"});
    }
    table.Print();
    std::printf("\n");
  }

  // --- 2. split-fraction sweep ---------------------------------------------------
  {
    TablePrinter table({"first portion", "total", "vs 33%"});
    double at_33 = 0.0;
    for (double split : {0.0, 0.15, 0.33, 0.5, 0.67, 0.85, 1.0}) {
      core::ExecutorOptions options = ctx.options;
      options.split_fraction = split;
      vgpu::Device device(bench::BenchDeviceProperties());
      auto r = core::AsyncOutOfCore(device, a, a, options, ctx.pool);
      if (!r.ok()) return 1;
      if (split == 0.33) at_33 = r->stats.total_seconds;
      table.AddRow({Fixed(split, 2), HumanSeconds(r->stats.total_seconds),
                    at_33 > 0.0
                        ? Fixed(100.0 * (r->stats.total_seconds / at_33 - 1.0),
                                2) + " %"
                        : "-"});
    }
    table.Print();
    std::printf("(33%% row baseline printed once it is measured; earlier "
                "rows show '-')\n\n");
  }

  // --- 4. upper-bound looseness ---------------------------------------------------
  {
    std::printf("worst-case (flop-based) allocation bound vs actual output "
                "(the paper's reason to manage memory itself):\n");
    TablePrinter table({"matrix", "worst-case bound", "actual nnz",
                        "over-allocation", "estimator error"});
    for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
      sparse::Csr m = spec.build();
      vgpu::Device device(bench::BenchDeviceProperties());
      auto prep =
          core::PrepareProblem(m, m, device.capacity(), ctx.options, ctx.pool);
      if (!prep.ok()) return 1;
      auto r = core::AsyncOutOfCore(device, m, m, ctx.options, ctx.pool);
      if (!r.ok()) return 1;
      std::int64_t bound_total = 0, est_total = 0;
      for (const auto& c : prep->chunks) {
        bound_total += c.upper_bound_nnz;
        est_total += c.estimated_nnz;
      }
      table.AddRow(
          {spec.abbr, HumanCount(static_cast<double>(bound_total)),
           HumanCount(static_cast<double>(r->stats.nnz_out)),
           Fixed(static_cast<double>(bound_total) /
                     static_cast<double>(r->stats.nnz_out),
                 2) +
               "x",
           Fixed(100.0 * (static_cast<double>(est_total) /
                              static_cast<double>(r->stats.nnz_out) -
                          1.0),
                 1) +
               " %"});
    }
    table.Print();
  }
  return 0;
}
