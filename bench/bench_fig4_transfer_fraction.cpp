// Fig. 4: percentage of data-transfer time over total execution time for
// the synchronous, partitioned spECK baseline, per matrix.
// Paper band: 77.55% - 89.65%.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Fig. 4 - transfer-time fraction of synchronous spECK",
      "IPDPS'21 Sec. IV-A, Fig. 4",
      "data transfers occupy ~77-90% of the total time on every matrix");

  bench::BenchContext ctx;
  TablePrinter table({"matrix", "chunks", "total", "d2h busy", "kernels",
                      "h2d", "alloc", "transfer fraction", "paper band"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device device(bench::BenchDeviceProperties());
    auto r = core::SyncOutOfCore(device, a, a, ctx.options, ctx.pool);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.abbr.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    const core::RunStats& s = r->stats;
    table.AddRow({spec.abbr, std::to_string(s.num_chunks),
                  HumanSeconds(s.total_seconds),
                  HumanSeconds(s.d2h_seconds), HumanSeconds(s.kernel_seconds),
                  HumanSeconds(s.h2d_seconds), HumanSeconds(s.alloc_seconds),
                  Fixed(100.0 * s.transfer_fraction, 2) + " %",
                  "77.6-89.7 %"});
  }
  table.Print();
  return 0;
}
