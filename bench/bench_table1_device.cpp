// Table I: Nvidia Tesla V100 specifications — echoed from the virtual
// device profile, plus the reproduction-scale profile the benches use.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader("Table I - device specification", "IPDPS'21 Table I",
                     "the virtual device mirrors the V100 configuration");

  auto print_props = [](const vgpu::DeviceProperties& p) {
    TablePrinter t({"property", "value"});
    t.AddRow({"GPUs", p.name});
    t.AddRow({"Architecture", "Volta (virtual)"});
    t.AddRow({"#SM", std::to_string(p.num_sms)});
    t.AddRow({"Size of device memory", HumanBytes(p.memory_bytes)});
    t.AddRow({"FP32 CUDA Cores/GPU", std::to_string(p.fp32_cores)});
    t.AddRow({"effective H2D bandwidth",
              HumanBytes(static_cast<std::int64_t>(p.h2d_bandwidth)) + "/s"});
    t.AddRow({"effective D2H bandwidth",
              HumanBytes(static_cast<std::int64_t>(p.d2h_bandwidth)) + "/s"});
    t.AddRow({"kernel launch overhead", HumanSeconds(p.kernel_launch_overhead)});
    t.AddRow({"transfer latency", HumanSeconds(p.transfer_latency)});
    t.AddRow({"alloc/free overhead", HumanSeconds(p.alloc_overhead) + " / " +
                                         HumanSeconds(p.free_overhead)});
    t.Print();
    std::printf("\n");
  };

  std::printf("-- full-scale profile (Table I) --\n");
  print_props(vgpu::V100Properties());
  std::printf("-- reproduction-scale profile used by the benches --\n");
  print_props(bench::BenchDeviceProperties());
  return 0;
}
