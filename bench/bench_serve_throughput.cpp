// Serving-runtime throughput benchmark (extension beyond the paper's
// evaluation): an open-loop synthetic workload submitted to the multi-tenant
// SpgemmServer, swept over offered load, against the baseline a single
// tenant gets by looping the Hybrid executor serially over the same jobs.
//
// Expected: the server overlaps CPU-only jobs with device jobs across its
// virtual lanes, so batch throughput is >= 2x the serial-Hybrid loop, and
// per-job latency degrades gracefully (queueing) as offered load approaches
// saturation.  Emits BENCH_serve.json with jobs/sec, latency percentiles
// and rejection rate per load point.
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "obs/exporters.hpp"
#include "serve/server.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace oocgemm;

std::shared_ptr<const sparse::Csr> Rmat(int scale, double edge_factor,
                                        std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p));
}

std::shared_ptr<const sparse::Csr> Er(int scale, double degree,
                                      std::uint64_t seed) {
  sparse::ErdosRenyiParams p;
  p.rows = p.cols = static_cast<sparse::index_t>(1) << scale;
  p.avg_degree = degree;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateErdosRenyi(p));
}

/// The multi-tenant serving workload: many modest analytics products (the
/// A^2 pattern) — small enough that the CPU socket multiplies them at a
/// rate comparable to the device, which is what gives a server room to
/// overlap tenants across lanes.  Giant out-of-core squarings belong to
/// the batch pipeline (bench_fig7/8), not the serving path.
std::vector<std::shared_ptr<const sparse::Csr>> Workload() {
  std::vector<std::shared_ptr<const sparse::Csr>> mats;
  for (int i = 0; i < 9; ++i) mats.push_back(Er(6, 4.0, 100 + i));
  for (int i = 0; i < 3; ++i) mats.push_back(Rmat(7, 8.0, 200 + i));
  return mats;
}

constexpr int kJobs = 48;

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - serving throughput vs offered load",
      "IPDPS'21 Sec. VII (beyond: multi-tenant serving of the hybrid node)",
      ">=2x batch jobs/sec over a serial Hybrid loop; latency grows with "
      "load as queues form");

  vgpu::Device serial_device(vgpu::ScaledV100Properties(14));  // 1 MiB
  ThreadPool pool(2);
  auto mats = Workload();

  // Baseline: one tenant looping Hybrid over the same 48 jobs.  Its batch
  // takes the sum of the per-job virtual makespans.
  double serial_seconds = 0.0;
  for (int i = 0; i < kJobs; ++i) {
    const auto& a = *mats[static_cast<std::size_t>(i) % mats.size()];
    core::ExecutorOptions options;
    auto r = core::Hybrid(serial_device, a, a, options, pool);
    if (!r.ok()) {
      std::fprintf(stderr, "serial baseline failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    serial_seconds += r->stats.total_seconds;
  }
  const double serial_jps = kJobs / serial_seconds;

  // Offered loads in multiples of the serial throughput: below, at, and
  // past what one serial tenant could absorb.  0 = closed batch (all jobs
  // arrive at t=0), the acceptance-criterion configuration.
  const std::vector<double> load_factors = {0.0, 0.5, 1.0, 2.0, 4.0};

  TablePrinter table({"offered load", "jobs/s", "speedup", "p50 lat",
                      "p95 lat", "p99 lat", "rejected"});
  std::ostringstream runs;
  double batch_jps = 0.0;
  for (std::size_t li = 0; li < load_factors.size(); ++li) {
    const double load = load_factors[li] * serial_jps;
    vgpu::Device device(vgpu::ScaledV100Properties(14));
    serve::ServerConfig config;
    config.scheduler.num_workers = 4;
    config.scheduler.cpu_lanes = 3;
    config.max_queue = kJobs;
    serve::SpgemmServer server(device, pool, config);

    std::vector<std::future<serve::JobResult>> futures;
    for (int i = 0; i < kJobs; ++i) {
      serve::SpgemmJob job;
      job.a = mats[static_cast<std::size_t>(i) % mats.size()];
      job.b = job.a;
      job.options.priority = i % 3;
      job.options.virtual_arrival = load > 0.0 ? i / load : 0.0;
      futures.push_back(server.Submit(std::move(job)));
    }
    server.Drain();
    for (auto& f : futures) (void)f.get();

    serve::ServerReport report = server.Report();
    if (report.device_oom_failures != 0) {
      std::fprintf(stderr, "FAIL: %lld device OOMs slipped past admission\n",
                   static_cast<long long>(report.device_oom_failures));
      return 1;
    }
    if (load_factors[li] == 0.0) batch_jps = report.jobs_per_second;

    const std::string label =
        load > 0.0 ? Fixed(load, 2) + " jobs/s" : "batch";
    table.AddRow({label, Fixed(report.jobs_per_second, 2),
                  Fixed(report.jobs_per_second / serial_jps, 2) + "x",
                  HumanSeconds(report.latency_p50),
                  HumanSeconds(report.latency_p95),
                  HumanSeconds(report.latency_p99),
                  std::to_string(report.rejected)});

    const double uploads_per_job =
        report.completed > 0
            ? static_cast<double>(report.b_panel_uploads) /
                  static_cast<double>(report.completed)
            : 0.0;
    if (li > 0) runs << ",\n";
    runs << "    {\"offered_load_jobs_per_second\": " << load
         << ", \"b_panel_uploads_per_job\": " << uploads_per_job
         << ", \"report\": " << report.ToJson() << "}";
  }
  table.Print();

  const double speedup = batch_jps / serial_jps;
  std::printf("\nserial Hybrid loop: %s jobs/s; server batch: %s jobs/s "
              "(%sx)\n",
              Fixed(serial_jps, 2).c_str(), Fixed(batch_jps, 2).c_str(),
              Fixed(speedup, 2).c_str());

  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"experiment\": \"serve_throughput\",\n"
      << "  \"jobs\": " << kJobs << ",\n"
      << "  \"serial_hybrid_jobs_per_second\": " << serial_jps << ",\n"
      << "  \"batch_speedup_vs_serial\": " << speedup << ",\n"
      << "  \"runs\": [\n"
      << runs.str() << "\n  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_serve.json\n");

  // Terminal metrics snapshot across all load points, in both exposition
  // formats, so the bench artifacts carry the observability layer's view.
  const obs::RegistrySnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  (void)obs::WriteFileAtomic("BENCH_serve_metrics.prom",
                             obs::ToPrometheusText(snap));
  (void)obs::WriteFileAtomic("BENCH_serve_metrics.json", obs::ToJson(snap));
  std::printf("wrote BENCH_serve_metrics.prom / BENCH_serve_metrics.json\n");

  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: batch speedup %.2fx below the 2x bar\n",
                 speedup);
    return 1;
  }
  return 0;
}
