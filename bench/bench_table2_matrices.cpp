// Table II: features of the input matrices — paper values next to the
// measured features of the synthetic stand-ins (see DESIGN.md,
// "Substitutions").  The reproduction-relevant property is the compression
// ratio class of each matrix, not its absolute size.
#include <cstdio>

#include "bench_util.hpp"
#include "sparse/analysis.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Table II - input matrix features", "IPDPS'21 Table II",
      "stand-ins preserve each matrix's compression-ratio class "
      "(nlp/uk-2002/stokes high, graphs ~1.5-3) and skew class");

  TablePrinter table({"matrix", "abbr", "n", "nnz(A)", "flop(A^2)",
                      "nnz(A^2)", "cr", "cr(paper)", "row-work gini"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    sparse::ProductStats s = sparse::AnalyzeProduct(a, a);
    table.AddRow({spec.name, spec.abbr, HumanCount(a.rows()),
                  HumanCount(static_cast<double>(a.nnz())),
                  HumanCount(static_cast<double>(s.flops)),
                  HumanCount(static_cast<double>(s.nnz_out)),
                  Fixed(s.compression_ratio, 2),
                  Fixed(spec.paper.compression_ratio, 2),
                  Fixed(s.row_flops_gini, 2)});
  }
  table.Print();
  std::printf(
      "\npaper scale for reference: n, nnz, flop, nnz(A^2) in Table II are\n"
      "5.36M-18.52M rows and up to 29.2G flops; stand-ins are ~1/400 scale.\n");
  return 0;
}
