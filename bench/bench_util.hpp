// Shared infrastructure for the paper-reproduction benchmarks.
//
// Every bench binary prints one of the paper's tables/figures as a plain
// text table: paper-reported values (where applicable) next to the values
// measured on the virtual device.  All runs are deterministic.
#pragma once

#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "sparse/datasets.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::bench {

/// Device used by all figure benches: V100 engine/bandwidth model with
/// memory scaled down with the matrix stand-ins (16 GiB -> 16 MiB), keeping
/// the paper's "output exceeds device memory by an order of magnitude"
/// regime — and its chunk counts — at reproduction scale.
inline vgpu::DeviceProperties BenchDeviceProperties() {
  return vgpu::ScaledV100Properties(/*mem_shift=*/10);
}

/// Dataset scale used by the figure benches (0 = the default stand-in
/// size; see sparse::PaperMatrices).
inline constexpr int kBenchScaleShift = 0;

struct BenchContext {
  ThreadPool pool;
  core::ExecutorOptions options;

  BenchContext() : pool(0) {}
};

/// Prints the standard bench header naming the figure being reproduced.
void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

/// Writes a bench's JSON payload to `path` (the BENCH_*.json convention the
/// perf-trajectory tooling scrapes) and prints the standard "wrote <path>"
/// line.  Returns false after printing a diagnostic when the write fails.
bool WriteBenchJson(const std::string& path, const std::string& json);

}  // namespace oocgemm::bench
