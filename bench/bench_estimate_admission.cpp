// Estimation-based admission benchmark (extension beyond the paper's
// evaluation, following the OCEAN observation that output estimation is
// orders of magnitude cheaper than the analysis pass it replaces): price
// the same serve-scale workload through the exact admission path
// (TotalFlops + sampled-symbolic EstimateRowNnz + exact-analysis panel
// planning) and through the structure-only sampling estimator, and compare
// host analysis seconds and output-nnz accuracy against the symbolic
// oracle.
//
// Expected: >=5x less analysis time in estimate mode with the mean
// output-nnz relative error inside the estimator's 15% property-test bar.
// Emits BENCH_estimate.json; the exit code enforces both bars.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "serve/admission.hpp"
#include "sparse/analysis.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace oocgemm;

sparse::Csr Rmat(int scale, double edge_factor, std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return sparse::GenerateRmat(p);
}

sparse::Csr Er(sparse::index_t n, double degree, std::uint64_t seed) {
  sparse::ErdosRenyiParams p;
  p.rows = p.cols = n;
  p.avg_degree = degree;
  p.seed = seed;
  return sparse::GenerateErdosRenyi(p);
}

// Serve-scale operands: big enough that the exact analysis pass dominates
// a submission and the estimator's row sample clears its reliability bar.
std::vector<sparse::Csr> Workload() {
  std::vector<sparse::Csr> mats;
  for (int i = 0; i < 6; ++i) mats.push_back(Rmat(12, 8.0, 100 + i));
  for (int i = 0; i < 6; ++i) mats.push_back(Er(4096, 8.0, 200 + i));
  for (int i = 0; i < 4; ++i) mats.push_back(Rmat(11, 16.0, 300 + i));
  return mats;
}

constexpr std::int64_t kDeviceCapacity = 4ll << 20;
constexpr int kReps = 3;  // per-path repetitions; wall clock takes the sum

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - estimation-based admission (OCEAN sampling)",
      "PAPERS.md OCEAN (beyond: serve admission off the analysis pass)",
      ">=5x less analysis time than exact admission; mean output-nnz error "
      "<= 15%");

  const std::vector<sparse::Csr> mats = Workload();
  const core::ExecutorOptions exec;
  const estimate::EstimatorOptions est_opts;

  double exact_seconds = 0.0, estimate_seconds = 0.0;
  double err_sum = 0.0, err_max = 0.0;
  int fallbacks = 0;
  std::ostringstream per_job;

  TablePrinter table({"matrix", "exact s", "estimate s", "speedup",
                      "nnz err", "fallback"});
  for (std::size_t m = 0; m < mats.size(); ++m) {
    const sparse::Csr& a = mats[m];
    double job_exact = 0.0, job_estimate = 0.0;
    serve::JobDemand sampled;
    for (int rep = 0; rep < kReps; ++rep) {
      const serve::JobDemand exact =
          serve::EstimateJobDemand(a, a, kDeviceCapacity, exec);
      job_exact += exact.analysis_seconds;
      sampled =
          serve::EstimateJobDemandSampled(a, a, kDeviceCapacity, exec,
                                          est_opts);
      job_estimate += sampled.analysis_seconds;
    }
    exact_seconds += job_exact;
    estimate_seconds += job_estimate;
    if (sampled.estimator_fallback) ++fallbacks;

    const double oracle = static_cast<double>(sparse::SymbolicNnz(a, a));
    const double err =
        oracle > 0.0 ? std::abs(sampled.est_nnz_out - oracle) / oracle : 0.0;
    err_sum += err;
    err_max = std::max(err_max, err);

    table.AddRow({a.DebugString(), Fixed(job_exact * 1e3, 3) + " ms",
                  Fixed(job_estimate * 1e3, 3) + " ms",
                  Fixed(job_exact / std::max(job_estimate, 1e-12), 1) + "x",
                  Fixed(err * 100.0, 1) + "%",
                  sampled.estimator_fallback ? "yes" : "no"});
    if (m > 0) per_job << ",\n";
    per_job << "    {\"rows\": " << a.rows() << ", \"nnz\": " << a.nnz()
            << ", \"exact_seconds\": " << job_exact
            << ", \"estimate_seconds\": " << job_estimate
            << ", \"nnz_rel_error\": " << err
            << ", \"fallback\": " << (sampled.estimator_fallback ? 1 : 0)
            << "}";
  }
  table.Print();

  const double speedup = exact_seconds / std::max(estimate_seconds, 1e-12);
  const double mean_err = err_sum / static_cast<double>(mats.size());
  std::printf(
      "\nexact admission: %s; estimate admission: %s (%sx less analysis "
      "time); mean nnz error %s%%, max %s%%, %d/%zu fallbacks\n",
      HumanSeconds(exact_seconds).c_str(),
      HumanSeconds(estimate_seconds).c_str(), Fixed(speedup, 1).c_str(),
      Fixed(mean_err * 100.0, 1).c_str(), Fixed(err_max * 100.0, 1).c_str(),
      fallbacks, mats.size());

  std::ostringstream json;
  json << "{\n  \"experiment\": \"estimate_admission\",\n"
       << "  \"jobs\": " << mats.size() << ",\n"
       << "  \"reps_per_job\": " << kReps << ",\n"
       << "  \"exact_analysis_seconds\": " << exact_seconds << ",\n"
       << "  \"estimate_analysis_seconds\": " << estimate_seconds << ",\n"
       << "  \"analysis_speedup\": " << speedup << ",\n"
       << "  \"mean_nnz_rel_error\": " << mean_err << ",\n"
       << "  \"max_nnz_rel_error\": " << err_max << ",\n"
       << "  \"fallbacks\": " << fallbacks << ",\n"
       << "  \"per_job\": [\n"
       << per_job.str() << "\n  ]\n}\n";
  if (!bench::WriteBenchJson("BENCH_estimate.json", json.str())) return 1;

  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: estimate-mode analysis only %.1fx faster than exact "
                 "(bar: 5x)\n",
                 speedup);
    return 1;
  }
  if (mean_err > 0.15) {
    std::fprintf(stderr,
                 "FAIL: mean output-nnz error %.1f%% exceeds the 15%% bar\n",
                 mean_err * 100.0);
    return 1;
  }
  return 0;
}
