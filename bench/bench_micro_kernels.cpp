// Google-benchmark microbenchmarks of the real (non-simulated) host
// kernels: accumulators, partitioners, prefix sums and the CPU SpGEMM.
// These measure wall-clock throughput of the library's hot loops.
#include <benchmark/benchmark.h>

#include "common/prefix_sum.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "kernels/accumulators.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "partition/panels.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace oocgemm;

void BM_HashAccumulatorInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  kernels::HashAccumulator acc;
  acc.Reserve(n);
  Pcg32 rng(1);
  std::vector<sparse::index_t> cols(static_cast<std::size_t>(n));
  for (auto& c : cols) c = static_cast<sparse::index_t>(rng.Below(1 << 20));
  for (auto _ : state) {
    acc.Clear();
    for (sparse::index_t c : cols) acc.Add(c, 1.0);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashAccumulatorInsert)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DenseAccumulatorInsert(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  kernels::DenseAccumulator acc;
  acc.Reserve(1 << 20);
  Pcg32 rng(1);
  std::vector<sparse::index_t> cols(static_cast<std::size_t>(n));
  for (auto& c : cols) c = static_cast<sparse::index_t>(rng.Below(1 << 20));
  for (auto _ : state) {
    acc.Clear();
    for (sparse::index_t c : cols) acc.Add(c, 1.0);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DenseAccumulatorInsert)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ExclusiveScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> counts(n, 3);
  std::vector<std::int64_t> offsets(n + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExclusiveScan(counts.data(), counts.size(), offsets.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExclusiveScan)->Arg(1 << 12)->Arg(1 << 18)->Arg(1 << 22);

sparse::Csr BenchGraph(int scale) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = 8.0;
  p.seed = 7;
  return sparse::GenerateRmat(p);
}

void BM_PartitionColsNaive(benchmark::State& state) {
  sparse::Csr b = BenchGraph(12);
  partition::PanelBoundaries bounds = partition::UniformBoundaries(
      b.cols(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::PartitionColsNaive(b, bounds));
  }
  state.SetItemsProcessed(state.iterations() * b.nnz());
}
BENCHMARK(BM_PartitionColsNaive)->Arg(2)->Arg(8)->Arg(32);

void BM_PartitionColsOptimized(benchmark::State& state) {
  sparse::Csr b = BenchGraph(12);
  partition::PanelBoundaries bounds = partition::UniformBoundaries(
      b.cols(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::PartitionColsOptimized(b, bounds));
  }
  state.SetItemsProcessed(state.iterations() * b.nnz());
}
BENCHMARK(BM_PartitionColsOptimized)->Arg(2)->Arg(8)->Arg(32);

void BM_CpuSpgemm(benchmark::State& state) {
  sparse::Csr a = BenchGraph(static_cast<int>(state.range(0)));
  ThreadPool pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CpuSpgemm(a, a, pool));
  }
}
BENCHMARK(BM_CpuSpgemm)->Arg(10)->Arg(12);

void BM_ReferenceVsProduction(benchmark::State& state) {
  // Tracks the production kernel's advantage over the oracle.
  sparse::Csr a = BenchGraph(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::CpuSpgemmSerial(a, a));
  }
}
BENCHMARK(BM_ReferenceVsProduction);

}  // namespace

BENCHMARK_MAIN();
