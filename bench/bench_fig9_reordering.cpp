// Fig. 9: the hybrid implementation with and without flop-decreasing chunk
// reordering.  In the default (no-reorder) variant, chunks go to the GPU in
// Algorithm 3's row-major order until the 65% flop ratio is reached.
// Paper: reordering wins on every matrix (the GPU should get the dense
// chunks).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Fig. 9 - hybrid with and without chunk reordering",
      "IPDPS'21 Sec. V-E, Fig. 9",
      "reordered >= default on every matrix; margin grows with chunk skew");

  bench::BenchContext ctx;
  core::ExecutorOptions reordered = ctx.options;  // reorder_chunks = true
  core::ExecutorOptions standard = ctx.options;
  standard.reorder_chunks = false;

  TablePrinter table({"matrix", "default GFLOPS", "reordered GFLOPS",
                      "improvement", "def gpu/cpu", "reo gpu/cpu",
                      "def times", "reo times"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device d1(bench::BenchDeviceProperties());
    vgpu::Device d2(bench::BenchDeviceProperties());
    auto def = core::Hybrid(d1, a, a, standard, ctx.pool);
    auto reo = core::Hybrid(d2, a, a, reordered, ctx.pool);
    if (!def.ok() || !reo.ok()) {
      std::fprintf(stderr, "%s failed\n", spec.abbr.c_str());
      return 1;
    }
    table.AddRow({spec.abbr, Fixed(def->stats.gflops(), 3),
                  Fixed(reo->stats.gflops(), 3),
                  Fixed(100.0 * (reo->stats.gflops() / def->stats.gflops() -
                                 1.0),
                        1) +
                      " %",
                  std::to_string(def->stats.num_gpu_chunks) + "/" +
                      std::to_string(def->stats.num_cpu_chunks),
                  std::to_string(reo->stats.num_gpu_chunks) + "/" +
                      std::to_string(reo->stats.num_cpu_chunks),
                  HumanSeconds(def->stats.gpu_seconds) + "|" +
                      HumanSeconds(def->stats.cpu_seconds),
                  HumanSeconds(reo->stats.gpu_seconds) + "|" +
                      HumanSeconds(reo->stats.cpu_seconds)});
  }
  table.Print();
  return 0;
}
