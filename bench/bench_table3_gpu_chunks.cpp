// Table III: the number of chunks assigned to the GPU under the fixed 65%
// flop ratio, versus the number that gives the best hybrid performance
// (found by exhaustive search over all prefix sizes of the flop-sorted
// order).  Paper: the 65% rule matches the best case on 7 of 9 matrices
// and costs < 5% on the rest.
#include <cstdio>

#include "bench_util.hpp"
#include "core/cpu_runner.hpp"
#include "core/gpu_runner.hpp"
#include "core/problem.hpp"
#include "partition/chunk.hpp"

namespace {

using namespace oocgemm;

/// Hybrid makespan with the first `num_gpu` flop-sorted chunks on the GPU.
double HybridSeconds(const core::PreparedProblem& prep,
                     const std::vector<int>& order, int num_gpu,
                     const core::ExecutorOptions& options, ThreadPool& pool) {
  vgpu::Device device(bench::BenchDeviceProperties());
  vgpu::HostContext gpu_host;
  std::vector<int> gpu_order(order.begin(), order.begin() + num_gpu);
  std::vector<int> cpu_order(order.begin() + num_gpu, order.end());
  auto gpu = core::RunGpuChunks(device, gpu_host, prep, gpu_order, options);
  OOC_CHECK(gpu.ok());
  core::CpuRunOutput cpu = core::RunCpuChunks(prep, cpu_order, options, pool);
  return std::max(gpu->makespan, cpu.busy_seconds);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Table III - GPU chunk count: fixed S/(S+1) ratio vs exhaustive best",
      "IPDPS'21 Sec. V-E, Table III",
      "the 65% rule picks the best count for most matrices; small loss "
      "otherwise");

  bench::BenchContext ctx;
  TablePrinter table({"matrix", "chunks", "best #GPU", "ratio-rule #GPU", "match",
                      "perf drop"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device plan_device(bench::BenchDeviceProperties());
    auto prep = core::PrepareProblem(a, a, plan_device.capacity(),
                                     ctx.options, ctx.pool);
    if (!prep.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.abbr.c_str(),
                   prep.status().ToString().c_str());
      return 1;
    }
    std::vector<int> order = partition::OrderByFlopsDecreasing(prep->chunks);
    const int ratio_count =
        partition::CountGpuChunks(prep->chunks, order, ctx.options.gpu_ratio);

    int best_count = 0;
    double best_seconds = 1e300;
    for (int g = 0; g <= prep->num_chunks(); ++g) {
      const double t =
          HybridSeconds(prep.value(), order, g, ctx.options, ctx.pool);
      if (t < best_seconds) {
        best_seconds = t;
        best_count = g;
      }
    }
    const double ratio_seconds = HybridSeconds(prep.value(), order,
                                               ratio_count, ctx.options,
                                               ctx.pool);
    const double drop = ratio_seconds / best_seconds - 1.0;
    table.AddRow({spec.abbr, std::to_string(prep->num_chunks()),
                  std::to_string(best_count), std::to_string(ratio_count),
                  best_count == ratio_count ? "yes" : "no",
                  Fixed(100.0 * drop, 2) + " %"});
  }
  table.Print();
  return 0;
}
