// Fig. 7: GFLOPS of the multicore CPU implementation, the out-of-core GPU
// implementation, and the hybrid implementation on all 9 matrices.
// Paper: GPU/CPU speedup 1.98-3.03x (most ~2x); hybrid/GPU 1.16-1.57x
// (most ~1.5x); highest GFLOPS on the high-compression matrices
// (nlp, uk-2002, stokes).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Fig. 7 - GFLOPS: CPU vs out-of-core GPU vs hybrid",
      "IPDPS'21 Sec. V-C, Fig. 7",
      "GPU ~2-3x CPU; hybrid adds ~1.2-1.6x; high-cr matrices fastest");

  bench::BenchContext ctx;
  TablePrinter table({"matrix", "cr", "CPU GFLOPS", "GPU GFLOPS",
                      "hybrid GFLOPS", "GPU/CPU", "hybrid/GPU"});
  double min_gpu_speedup = 1e30, max_gpu_speedup = 0.0;
  double min_hyb_speedup = 1e30, max_hyb_speedup = 0.0;

  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device d_gpu(bench::BenchDeviceProperties());
    vgpu::Device d_hyb(bench::BenchDeviceProperties());

    auto cpu = core::CpuMulticore(a, a, ctx.options, ctx.pool);
    auto gpu = core::AsyncOutOfCore(d_gpu, a, a, ctx.options, ctx.pool);
    auto hybrid = core::Hybrid(d_hyb, a, a, ctx.options, ctx.pool);
    if (!cpu.ok() || !gpu.ok() || !hybrid.ok()) {
      std::fprintf(stderr, "%s failed\n", spec.abbr.c_str());
      return 1;
    }
    const double gpu_speedup = gpu->stats.gflops() / cpu->stats.gflops();
    const double hyb_speedup = hybrid->stats.gflops() / gpu->stats.gflops();
    min_gpu_speedup = std::min(min_gpu_speedup, gpu_speedup);
    max_gpu_speedup = std::max(max_gpu_speedup, gpu_speedup);
    min_hyb_speedup = std::min(min_hyb_speedup, hyb_speedup);
    max_hyb_speedup = std::max(max_hyb_speedup, hyb_speedup);
    table.AddRow({spec.abbr, Fixed(gpu->stats.compression_ratio, 2),
                  Fixed(cpu->stats.gflops(), 3),
                  Fixed(gpu->stats.gflops(), 3),
                  Fixed(hybrid->stats.gflops(), 3),
                  Fixed(gpu_speedup, 2) + "x", Fixed(hyb_speedup, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nmeasured GPU/CPU speedup range: %.2f-%.2fx (paper: 1.98-3.03x)\n"
      "measured hybrid/GPU speedup range: %.2f-%.2fx (paper: 1.16-1.57x)\n",
      min_gpu_speedup, max_gpu_speedup, min_hyb_speedup, max_hyb_speedup);
  return 0;
}
