#include "bench_util.hpp"

#include <cstdio>

namespace oocgemm::bench {

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n\n", expectation.c_str());
}

}  // namespace oocgemm::bench
