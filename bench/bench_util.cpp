#include "bench_util.hpp"

#include <cstdio>
#include <fstream>

namespace oocgemm::bench {

void PrintHeader(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::printf("== %s ==\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("expected shape: %s\n\n", expectation.c_str());
}

bool WriteBenchJson(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  out << json;
  if (json.empty() || json.back() != '\n') out << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "FAIL: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace oocgemm::bench
