// Fig. 10: hybrid GFLOPS as a function of the GPU flop ratio, for two
// representative matrices.  Paper: GFLOPS rises with the ratio, peaks near
// 65%, then drops as the CPU idles.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Fig. 10 - hybrid GFLOPS vs GPU/CPU allocation ratio",
      "IPDPS'21 Sec. V-E, Fig. 10",
      "rises to a peak near ratio 0.65, then falls toward the GPU-only rate");

  bench::BenchContext ctx;
  const char* matrices[] = {"com-lj", "nlp"};
  for (const char* abbr : matrices) {
    sparse::DatasetSpec spec =
        sparse::PaperMatrix(abbr, bench::kBenchScaleShift);
    sparse::Csr a = spec.build();
    std::printf("-- %s --\n", spec.abbr.c_str());
    TablePrinter table({"ratio", "GFLOPS", "gpu chunks", "cpu chunks",
                        "gpu time", "cpu time"});
    double best_gflops = 0.0, best_ratio = 0.0;
    for (int pct = 35; pct <= 95; pct += 5) {
      core::ExecutorOptions options = ctx.options;
      options.gpu_ratio = pct / 100.0;
      vgpu::Device device(bench::BenchDeviceProperties());
      auto r = core::Hybrid(device, a, a, options, ctx.pool);
      if (!r.ok()) {
        std::fprintf(stderr, "ratio %d failed: %s\n", pct,
                     r.status().ToString().c_str());
        return 1;
      }
      if (r->stats.gflops() > best_gflops) {
        best_gflops = r->stats.gflops();
        best_ratio = options.gpu_ratio;
      }
      table.AddRow({Fixed(options.gpu_ratio, 2), Fixed(r->stats.gflops(), 3),
                    std::to_string(r->stats.num_gpu_chunks),
                    std::to_string(r->stats.num_cpu_chunks),
                    HumanSeconds(r->stats.gpu_seconds),
                    HumanSeconds(r->stats.cpu_seconds)});
    }
    table.Print();
    std::printf("best ratio: %.2f (paper fixes 0.65)\n\n", best_ratio);
  }
  return 0;
}
