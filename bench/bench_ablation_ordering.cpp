// Ablation: the effect of the matrix's vertex/row order on the out-of-core
// pipeline.  Row order determines how work clusters into chunks — the
// variance that Fig. 9's chunk reordering exploits — and how well panels
// compress.  We compare the natural (community/crawl) order, a random
// shuffle, a degree-descending sort, and Reverse Cuthill-McKee.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/problem.hpp"
#include "sparse/reorder.hpp"

namespace {

using namespace oocgemm;

struct OrderingResult {
  double hybrid_gflops = 0.0;
  double chunk_flop_gini = 0.0;
  int chunks = 0;
};

OrderingResult RunOrdering(const sparse::Csr& m, bench::BenchContext& ctx) {
  OrderingResult out;
  vgpu::Device device(bench::BenchDeviceProperties());
  auto prep = core::PrepareProblem(m, m, device.capacity(), ctx.options,
                                   ctx.pool);
  if (prep.ok()) {
    std::vector<double> flops;
    for (const auto& c : prep->chunks) {
      flops.push_back(static_cast<double>(c.flops));
    }
    out.chunk_flop_gini = GiniCoefficient(std::move(flops));
    out.chunks = prep->num_chunks();
  }
  auto r = core::Hybrid(device, m, m, ctx.options, ctx.pool);
  if (r.ok()) out.hybrid_gflops = r->stats.gflops();
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation - matrix ordering vs chunk skew and hybrid throughput",
      "relates to IPDPS'21 Sec. V-E (work distribution across chunks)",
      "orderings that cluster dense rows raise chunk-flop skew; the "
      "pipeline tolerates all of them (results identical), with modest "
      "throughput differences");

  bench::BenchContext ctx;
  for (const char* abbr : {"com-lj", "wiki0206"}) {
    sparse::DatasetSpec spec =
        sparse::PaperMatrix(abbr, bench::kBenchScaleShift);
    sparse::Csr natural = spec.build();
    std::printf("-- %s --\n", spec.abbr.c_str());

    TablePrinter table({"ordering", "chunks", "chunk-flop gini",
                        "hybrid GFLOPS"});
    struct Variant {
      const char* name;
      sparse::Csr matrix;
    } variants[] = {
        {"natural (crawl/community)", natural},
        {"random shuffle",
         sparse::PermuteSymmetric(
             natural, sparse::RandomPermutation(natural.rows(), 99))},
        {"degree descending",
         sparse::PermuteSymmetric(natural,
                                  sparse::DegreeDescendingOrder(natural))},
        {"reverse Cuthill-McKee",
         sparse::PermuteSymmetric(natural,
                                  sparse::ReverseCuthillMcKee(natural))},
    };
    for (auto& v : variants) {
      OrderingResult r = RunOrdering(v.matrix, ctx);
      table.AddRow({v.name, std::to_string(r.chunks),
                    Fixed(r.chunk_flop_gini, 3), Fixed(r.hybrid_gflops, 3)});
    }
    table.Print();
    std::printf("\n");
  }
  return 0;
}
