// Ablation (paper Sec. II-B): hash vs dense accumulation.
//
// The decisive variable is the *panel width* relative to the row's work:
// the dense accumulator touches a value array the width of the B panel
// (cheap when narrow / cache-resident, expensive when wide and cold),
// while the hash table scales with the row's actual output.  The paper's
// engine therefore uses dense accumulation for dense rows and hash for
// sparse rows.  Wall-clock benchmark of the real CPU kernel.
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "sparse/generators.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Ablation - hash vs dense accumulation by panel width",
      "IPDPS'21 Sec. II-B / Fig. 3 (dense for dense rows, hash for sparse)",
      "dense wins on narrow panels (dense rows relative to width); hash "
      "wins as the panel widens and rows become relatively sparse; auto "
      "tracks the winner");

  ThreadPool pool;
  TablePrinter table({"panel width", "out row density", "hash", "dense",
                      "auto", "winner"});
  for (int width_log2 : {10, 12, 14, 16, 18}) {
    sparse::ErdosRenyiParams params;
    params.rows = 4096;  // fixed amount of work per row...
    params.cols = static_cast<sparse::index_t>(1) << width_log2;
    params.avg_degree = 16.0;  // ...scattered over a widening panel
    params.seed = 99;
    sparse::Csr a = sparse::GenerateErdosRenyi(params);
    // B: square over the panel width with the same degree.
    sparse::ErdosRenyiParams bp = params;
    bp.rows = params.cols;
    bp.seed = 100;
    sparse::Csr b = sparse::GenerateErdosRenyi(bp);

    auto time_kernel = [&](kernels::AccumulatorKind kind) {
      kernels::CpuSpgemmOptions options;
      options.accumulator = kind;
      double best = 1e300;
      for (int i = 0; i < 3; ++i) {
        WallTimer timer;
        sparse::Csr c = kernels::CpuSpgemm(a, b, pool, options);
        best = std::min(best, timer.Seconds());
      }
      return best;
    };

    const double hash = time_kernel(kernels::AccumulatorKind::kHash);
    const double dense = time_kernel(kernels::AccumulatorKind::kDense);
    const double autok = time_kernel(kernels::AccumulatorKind::kAuto);
    sparse::Csr c = kernels::CpuSpgemm(a, b, pool, {});
    const double density =
        static_cast<double>(c.nnz()) /
        (static_cast<double>(c.rows()) * static_cast<double>(c.cols()));
    table.AddRow({std::to_string(1 << width_log2),
                  Fixed(100.0 * density, 3) + " %", HumanSeconds(hash),
                  HumanSeconds(dense), HumanSeconds(autok),
                  hash < dense ? "hash" : "dense"});
  }
  table.Print();
  return 0;
}
