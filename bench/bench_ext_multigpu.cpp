// Extension benchmark: scaling the hybrid executor across multiple virtual
// GPUs (the paper's future-work direction).  Expected: near-linear scaling
// while the aggregate GPU throughput stays below the problem's transfer-
// bound optimum; the CPU's share shrinks as D grows.  Emits
// BENCH_ext_multigpu.json.
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "core/multi_gpu.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Extension - multi-GPU hybrid scaling",
      "IPDPS'21 Sec. VII (future work: scaling to arbitrarily large matrices)",
      "speedup grows with device count, sublinearly (per-device pipeline "
      "edges and the fixed CPU)");

  bench::BenchContext ctx;
  const std::vector<int> device_counts = {1, 2, 4};
  TablePrinter table({"matrix", "1 GPU", "2 GPUs", "4 GPUs", "2-GPU speedup",
                      "4-GPU speedup"});
  std::ostringstream runs;
  bool first = true;
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    std::vector<double> gflops;
    for (int num_devices : device_counts) {
      std::vector<std::unique_ptr<vgpu::Device>> storage;
      std::vector<vgpu::Device*> devices;
      for (int d = 0; d < num_devices; ++d) {
        storage.push_back(
            std::make_unique<vgpu::Device>(bench::BenchDeviceProperties()));
        devices.push_back(storage.back().get());
      }
      auto r = core::MultiGpuHybrid(devices, a, a, ctx.options, ctx.pool);
      if (!r.ok()) {
        std::fprintf(stderr, "%s x%d failed: %s\n", spec.abbr.c_str(),
                     num_devices, r.status().ToString().c_str());
        return 1;
      }
      gflops.push_back(r->stats.combined.gflops());
      runs << (first ? "" : ",\n") << "    {\"matrix\": \"" << spec.abbr
           << "\", \"devices\": " << num_devices
           << ", \"gflops\": " << gflops.back()
           << ", \"total_seconds\": " << r->stats.combined.total_seconds
           << ", \"cpu_chunks\": " << r->stats.combined.num_cpu_chunks
           << ", \"gpu_chunks\": " << r->stats.combined.num_gpu_chunks << "}";
      first = false;
    }
    table.AddRow({spec.abbr, Fixed(gflops[0], 3), Fixed(gflops[1], 3),
                  Fixed(gflops[2], 3), Fixed(gflops[1] / gflops[0], 2) + "x",
                  Fixed(gflops[2] / gflops[0], 2) + "x"});
  }
  table.Print();

  std::ostringstream json;
  json << "{\n  \"experiment\": \"ext_multigpu\",\n  \"runs\": [\n"
       << runs.str() << "\n  ]\n}";
  if (!bench::WriteBenchJson("BENCH_ext_multigpu.json", json.str())) return 1;
  return 0;
}
