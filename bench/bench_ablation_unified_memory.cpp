// Ablation (paper Sec. I): the paper motivates explicit out-of-core
// management against CUDA unified memory, which "may contain some data
// which are useless and waste the bandwidth" plus per-fault overheads.
//
// We model a unified-memory SpGEMM as: the same kernels, but all input and
// output traffic moves at pageable bandwidth in 4 KiB pages with a fault
// latency each, and nothing overlaps (the fault handler serializes).
// Output pages move twice (allocate-on-touch migration to device, then
// eviction back to host).  This is a *model*, not a simulation — the paper
// gives no UM numbers; the table quantifies the paper's qualitative
// argument under explicit assumptions.
#include <cstdio>

#include "bench_util.hpp"
#include "sparse/analysis.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Ablation - modeled unified memory vs explicit out-of-core",
      "IPDPS'21 Sec. I (motivation against unified memory)",
      "explicit chunked transfers beat the UM model on every matrix");

  bench::BenchContext ctx;
  const vgpu::DeviceProperties props = bench::BenchDeviceProperties();
  const double pageable_bw =
      props.d2h_bandwidth * props.pageable_bandwidth_factor;
  const double fault_latency = 25 * props.transfer_latency;  // ~0.5us scaled
  constexpr double kPage = 4096.0;

  TablePrinter table({"matrix", "explicit (async)", "UM model", "UM/explicit"});
  for (const auto& spec : sparse::PaperMatrices(bench::kBenchScaleShift)) {
    sparse::Csr a = spec.build();
    vgpu::Device device(bench::BenchDeviceProperties());
    auto r = core::AsyncOutOfCore(device, a, a, ctx.options, ctx.pool);
    if (!r.ok()) return 1;
    const core::RunStats& s = r->stats;

    const double in_bytes = static_cast<double>(a.StorageBytes());
    const double out_bytes =
        static_cast<double>(s.nnz_out) * sparse::kBytesPerNnz;
    const double um_traffic = in_bytes + 2.0 * out_bytes;
    const double um_time = um_traffic / pageable_bw +
                           (um_traffic / kPage) * fault_latency +
                           s.kernel_seconds;
    table.AddRow({spec.abbr, HumanSeconds(s.total_seconds),
                  HumanSeconds(um_time),
                  Fixed(um_time / s.total_seconds, 2) + "x slower"});
  }
  table.Print();
  std::printf(
      "\nmodel: pageable bandwidth %.1f GB/s, 4 KiB pages, %.2f us fault "
      "latency, no overlap; output pages migrate twice.\n",
      pageable_bw / 1e9, fault_latency * 1e6);
  return 0;
}
