// Operand-aware request batching benchmark (extension beyond the paper's
// evaluation): a shared-operand serving workload — many tenants multiplying
// their own A_i against one common B, the A^2-style analytics pattern —
// swept over the scheduler's max_batch_jobs.
//
// Expected: against the unbatched scheduler (max_batch_jobs = 1), batching
// raises virtual jobs/sec by >= 1.5x on this workload, because each batch
// uploads B's column panels and pre-allocates the chunk pools once instead
// of once per job; the B-panel uploads *per job* fall strictly as the batch
// bound grows.  Emits BENCH_serve_batch.json.
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "serve/server.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace oocgemm;

std::shared_ptr<const sparse::Csr> Rmat(int scale, double edge_factor,
                                        std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p));
}

std::shared_ptr<const sparse::Csr> Er(sparse::index_t rows,
                                      sparse::index_t cols, double degree,
                                      std::uint64_t seed) {
  sparse::ErdosRenyiParams p;
  p.rows = rows;
  p.cols = cols;
  p.avg_degree = degree;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateErdosRenyi(p));
}

constexpr int kJobs = 32;

struct RunOutcome {
  serve::ServerReport report;
  double uploads_per_job = 0.0;
};

/// Runs the whole shared-B workload through a fresh server with the given
/// batch bound and returns its report.
RunOutcome RunWorkload(
    const std::vector<std::shared_ptr<const sparse::Csr>>& as,
    const std::shared_ptr<const sparse::Csr>& b, int max_batch_jobs) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  serve::ServerConfig config;
  config.scheduler.num_workers = 1;  // one device stream of work: the
                                     // batching lever, isolated
  config.scheduler.max_batch_jobs = max_batch_jobs;
  config.max_queue = kJobs + 1;
  serve::SpgemmServer server(device, pool, config);

  std::vector<std::future<serve::JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    serve::SpgemmJob job;
    job.a = as[static_cast<std::size_t>(i)];
    job.b = b;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(job)));
  }
  server.Drain();
  for (auto& f : futures) {
    serve::JobResult r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "job %llu failed: %s\n",
                   static_cast<unsigned long long>(r.metrics.id),
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }

  RunOutcome out;
  out.report = server.Report();
  if (out.report.completed > 0) {
    out.uploads_per_job =
        static_cast<double>(out.report.b_panel_uploads) /
        static_cast<double>(out.report.completed);
  }
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - operand-aware request batching",
      "IPDPS'21 Sec. IV-B (beyond: B-panel reuse across a served batch)",
      ">=1.5x jobs/sec over the unbatched scheduler on a shared-B "
      "workload; B-panel uploads per job strictly decreasing");

  // The shared operand is deliberately the heavyweight: a skewed RMAT B
  // against light rectangular per-tenant A_i (few query rows each), so
  // per-job cost is dominated by exactly the traffic batching amortizes.
  auto b = Rmat(11, 8.0, 42);
  std::vector<std::shared_ptr<const sparse::Csr>> as;
  for (int i = 0; i < kJobs; ++i) {
    as.push_back(
        Er(64, b->rows(), 4.0, 1000 + static_cast<std::uint64_t>(i)));
  }

  const std::vector<int> batch_bounds = {1, 2, 4, 8};
  TablePrinter table({"max batch", "jobs/s", "speedup", "batches",
                      "avg size", "B uploads/job", "p95 lat"});
  std::ostringstream runs;
  double base_jps = 0.0, best_jps = 0.0;
  std::vector<double> uploads_per_job;
  for (std::size_t i = 0; i < batch_bounds.size(); ++i) {
    const int bound = batch_bounds[i];
    RunOutcome run = RunWorkload(as, b, bound);
    const serve::ServerReport& report = run.report;
    if (report.completed != kJobs || report.device_oom_failures != 0) {
      std::fprintf(stderr, "FAIL: %lld/%d completed, %lld device OOMs\n",
                   static_cast<long long>(report.completed), kJobs,
                   static_cast<long long>(report.device_oom_failures));
      return 1;
    }
    if (bound == 1) base_jps = report.jobs_per_second;
    best_jps = std::max(best_jps, report.jobs_per_second);
    uploads_per_job.push_back(run.uploads_per_job);

    table.AddRow({std::to_string(bound), Fixed(report.jobs_per_second, 2),
                  Fixed(report.jobs_per_second / base_jps, 2) + "x",
                  std::to_string(report.batches),
                  Fixed(report.avg_batch_size, 2),
                  Fixed(run.uploads_per_job, 2),
                  HumanSeconds(report.latency_p95)});

    if (i > 0) runs << ",\n";
    runs << "    {\"max_batch_jobs\": " << bound
         << ", \"b_panel_uploads_per_job\": " << run.uploads_per_job
         << ", \"report\": " << report.ToJson() << "}";
  }
  table.Print();

  const double speedup = best_jps / base_jps;
  std::printf("\nunbatched: %s jobs/s; best batched: %s jobs/s (%sx)\n",
              Fixed(base_jps, 2).c_str(), Fixed(best_jps, 2).c_str(),
              Fixed(speedup, 2).c_str());

  std::ofstream out("BENCH_serve_batch.json");
  out << "{\n  \"experiment\": \"serve_operand_batching\",\n"
      << "  \"jobs\": " << kJobs << ",\n"
      << "  \"batched_speedup_vs_unbatched\": " << speedup << ",\n"
      << "  \"runs\": [\n"
      << runs.str() << "\n  ]\n}\n";
  out.close();
  std::printf("wrote BENCH_serve_batch.json\n");

  bool uploads_decreasing = true;
  for (std::size_t i = 1; i < uploads_per_job.size(); ++i) {
    if (uploads_per_job[i] >= uploads_per_job[i - 1]) {
      uploads_decreasing = false;
    }
  }
  if (!uploads_decreasing) {
    std::fprintf(stderr,
                 "FAIL: B-panel uploads per job not strictly decreasing\n");
    return 1;
  }
  if (speedup < 1.5) {
    std::fprintf(stderr, "FAIL: batching speedup %.2fx below the 1.5x bar\n",
                 speedup);
    return 1;
  }
  return 0;
}
