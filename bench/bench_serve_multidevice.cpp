// Multi-device serving benchmark (extension beyond the paper's single-node
// evaluation): the same multi-tenant workload served from pools of 1, 2
// and 4 virtual GPUs.  Every job is an explicit out-of-core device run, so
// the device lanes are the bottleneck and the pool is the lever being
// measured.
//
// Expected: virtual jobs/sec strictly increasing from 1 to 2 devices
// (enforced), and per-device lease counts spread across the pool rather
// than piling onto device 0.  Emits BENCH_serve_multidevice.json.
#include <cstdio>
#include <future>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "serve/server.hpp"
#include "sparse/generators.hpp"

namespace {

using namespace oocgemm;

std::shared_ptr<const sparse::Csr> Rmat(int scale, double edge_factor,
                                        std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p));
}

constexpr int kJobs = 24;

/// Serves the whole workload from a fresh pool of `num_devices` GPUs and
/// returns the report.  Every tenant squares its own operand (no shared B,
/// so no batching interference) in explicit GPU mode.
serve::ServerReport RunWorkload(
    const std::vector<std::shared_ptr<const sparse::Csr>>& as,
    int num_devices) {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;
  for (int d = 0; d < num_devices; ++d) {
    storage.push_back(
        std::make_unique<vgpu::Device>(vgpu::ScaledV100Properties(14)));
    devices.push_back(storage.back().get());
  }
  ThreadPool pool(2);
  serve::ServerConfig config;
  config.scheduler.num_workers = num_devices + 1;
  config.scheduler.cpu_lanes = 1;
  config.max_queue = kJobs + 1;
  serve::SpgemmServer server(devices, pool, config);

  std::vector<std::future<serve::JobResult>> futures;
  for (int i = 0; i < kJobs; ++i) {
    serve::SpgemmJob job;
    job.a = as[static_cast<std::size_t>(i)];
    job.b = as[static_cast<std::size_t>(i)];
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(job)));
  }
  server.Drain();
  for (auto& f : futures) {
    serve::JobResult r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "job %llu failed: %s\n",
                   static_cast<unsigned long long>(r.metrics.id),
                   r.status.ToString().c_str());
      std::exit(1);
    }
  }
  return server.Report();
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension - multi-device serving",
      "IPDPS'21 Sec. VII (future work, applied to the serving runtime)",
      "virtual jobs/sec strictly increasing from 1 to 2 devices; leases "
      "spread across the pool");

  std::vector<std::shared_ptr<const sparse::Csr>> as;
  for (int i = 0; i < kJobs; ++i) {
    as.push_back(Rmat(8, 8.0, 100 + static_cast<std::uint64_t>(i)));
  }

  const std::vector<int> device_counts = {1, 2, 4};
  TablePrinter table(
      {"devices", "jobs/s", "speedup", "makespan", "p95 lat", "leases"});
  std::ostringstream runs;
  std::vector<double> jps;
  for (std::size_t i = 0; i < device_counts.size(); ++i) {
    const int d = device_counts[i];
    serve::ServerReport report = RunWorkload(as, d);
    if (report.completed != kJobs || report.device_oom_failures != 0) {
      std::fprintf(stderr, "FAIL: %lld/%d completed, %lld device OOMs\n",
                   static_cast<long long>(report.completed), kJobs,
                   static_cast<long long>(report.device_oom_failures));
      return 1;
    }
    for (const serve::DeviceServeReport& dev : report.devices) {
      if (dev.reserved_bytes != 0 || dev.unreserve_underflows != 0) {
        std::fprintf(stderr,
                     "FAIL: device %d ledger unbalanced after drain "
                     "(%lld bytes, %lld underflows)\n",
                     dev.index, static_cast<long long>(dev.reserved_bytes),
                     static_cast<long long>(dev.unreserve_underflows));
        return 1;
      }
    }
    jps.push_back(report.jobs_per_second);

    std::ostringstream leases;
    for (std::size_t j = 0; j < report.devices.size(); ++j) {
      leases << (j == 0 ? "" : "/") << report.devices[j].lease_count;
    }
    table.AddRow({std::to_string(d), Fixed(report.jobs_per_second, 2),
                  Fixed(report.jobs_per_second / jps.front(), 2) + "x",
                  HumanSeconds(report.virtual_makespan_seconds),
                  HumanSeconds(report.latency_p95), leases.str()});

    const double uploads_per_job =
        report.completed > 0
            ? static_cast<double>(report.b_panel_uploads) /
                  static_cast<double>(report.completed)
            : 0.0;
    runs << (i == 0 ? "" : ",\n") << "    {\"devices\": " << d
         << ", \"b_panel_uploads_per_job\": " << uploads_per_job
         << ", \"report\": " << report.ToJson() << "}";
  }
  table.Print();

  const double speedup_2 = jps[1] / jps[0];
  std::printf("\n1 device: %s jobs/s; 2 devices: %s jobs/s (%sx)\n",
              Fixed(jps[0], 2).c_str(), Fixed(jps[1], 2).c_str(),
              Fixed(speedup_2, 2).c_str());

  std::ostringstream json;
  json << "{\n  \"experiment\": \"serve_multidevice\",\n"
       << "  \"jobs\": " << kJobs << ",\n"
       << "  \"speedup_2_devices\": " << speedup_2 << ",\n"
       << "  \"runs\": [\n"
       << runs.str() << "\n  ]\n}";
  if (!bench::WriteBenchJson("BENCH_serve_multidevice.json", json.str())) {
    return 1;
  }

  if (jps[1] <= jps[0]) {
    std::fprintf(stderr,
                 "FAIL: jobs/sec not strictly increasing from 1 to 2 "
                 "devices (%.3f -> %.3f)\n",
                 jps[0], jps[1]);
    return 1;
  }
  return 0;
}
