// Ablation (paper Sec. III-D): column-panel partitioning of B — the
// simplistic re-scanning implementation vs the col_offset-optimized one vs
// the prefix-sum-parallel variant.  This is a *wall-clock* benchmark of
// real host code (the partitioners are not simulated).
// Expected: the naive cost grows with the panel count; the optimized cost
// stays nearly flat (each element visited once regardless of panel count).
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "partition/panels.hpp"

int main() {
  using namespace oocgemm;
  bench::PrintHeader(
      "Ablation - column-panel partitioning strategies",
      "IPDPS'21 Sec. III-D (the rejected 'simplistic implementation')",
      "naive time grows ~linearly with panel count; optimized stays flat");

  sparse::Csr b = sparse::PaperMatrix("uk-2002", bench::kBenchScaleShift).build();
  std::printf("matrix: uk-2002 stand-in, %s\n\n", b.DebugString().c_str());

  ThreadPool pool;
  TablePrinter table({"panels", "naive", "optimized", "parallel",
                      "naive/optimized"});
  for (int num_panels : {1, 2, 4, 8, 16, 32, 64}) {
    partition::PanelBoundaries bounds =
        partition::UniformBoundaries(b.cols(), num_panels);

    auto time_of = [&](auto&& fn) {
      // Best of 3 runs to damp scheduling noise.
      double best = 1e300;
      for (int i = 0; i < 3; ++i) {
        WallTimer timer;
        auto panels = fn();
        best = std::min(best, timer.Seconds());
        if (panels.size() != static_cast<std::size_t>(num_panels)) return -1.0;
      }
      return best;
    };

    const double naive =
        time_of([&] { return partition::PartitionColsNaive(b, bounds); });
    const double opt =
        time_of([&] { return partition::PartitionColsOptimized(b, bounds); });
    const double par = time_of(
        [&] { return partition::PartitionColsParallel(b, bounds, pool); });
    table.AddRow({std::to_string(num_panels), HumanSeconds(naive),
                  HumanSeconds(opt), HumanSeconds(par),
                  Fixed(naive / opt, 2) + "x"});
  }
  table.Print();
  return 0;
}
