file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_cli.dir/oocgemm_cli.cpp.o"
  "CMakeFiles/oocgemm_cli.dir/oocgemm_cli.cpp.o.d"
  "oocgemm_cli"
  "oocgemm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
