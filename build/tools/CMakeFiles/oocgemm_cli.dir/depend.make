# Empty dependencies file for oocgemm_cli.
# This may be replaced when dependencies are built.
