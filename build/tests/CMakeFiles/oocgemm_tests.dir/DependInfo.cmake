
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_common_format.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_format.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_format.cpp.o.d"
  "/root/repo/tests/test_common_prefix_sum.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_prefix_sum.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_prefix_sum.cpp.o.d"
  "/root/repo/tests/test_common_rng.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_rng.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_rng.cpp.o.d"
  "/root/repo/tests/test_common_stats.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_stats.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_stats.cpp.o.d"
  "/root/repo/tests/test_common_status.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_status.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_status.cpp.o.d"
  "/root/repo/tests/test_common_thread_pool.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_common_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_common_thread_pool.cpp.o.d"
  "/root/repo/tests/test_core_assembler.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_assembler.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_assembler.cpp.o.d"
  "/root/repo/tests/test_core_chunk_sink.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_chunk_sink.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_chunk_sink.cpp.o.d"
  "/root/repo/tests/test_core_executors.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_executors.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_executors.cpp.o.d"
  "/root/repo/tests/test_core_multigpu.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_multigpu.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_multigpu.cpp.o.d"
  "/root/repo/tests/test_core_panel_cache.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_panel_cache.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_panel_cache.cpp.o.d"
  "/root/repo/tests/test_core_properties.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_properties.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_properties.cpp.o.d"
  "/root/repo/tests/test_core_retry.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_retry.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_retry.cpp.o.d"
  "/root/repo/tests/test_core_run_stats.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_run_stats.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_run_stats.cpp.o.d"
  "/root/repo/tests/test_core_spgemm_facade.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_core_spgemm_facade.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_core_spgemm_facade.cpp.o.d"
  "/root/repo/tests/test_fuzz_executors.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_fuzz_executors.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_fuzz_executors.cpp.o.d"
  "/root/repo/tests/test_kernels_accumulators.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_accumulators.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_accumulators.cpp.o.d"
  "/root/repo/tests/test_kernels_binning.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_binning.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_binning.cpp.o.d"
  "/root/repo/tests/test_kernels_cost_model.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_cost_model.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_cost_model.cpp.o.d"
  "/root/repo/tests/test_kernels_device_csr.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_device_csr.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_device_csr.cpp.o.d"
  "/root/repo/tests/test_kernels_masked.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_masked.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_masked.cpp.o.d"
  "/root/repo/tests/test_kernels_phases.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_phases.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_phases.cpp.o.d"
  "/root/repo/tests/test_kernels_spgemm.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_spgemm.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_kernels_spgemm.cpp.o.d"
  "/root/repo/tests/test_partition_chunk.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_chunk.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_chunk.cpp.o.d"
  "/root/repo/tests/test_partition_panels.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_panels.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_panels.cpp.o.d"
  "/root/repo/tests/test_partition_plan.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_plan.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_partition_plan.cpp.o.d"
  "/root/repo/tests/test_sparse_analysis.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_analysis.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_analysis.cpp.o.d"
  "/root/repo/tests/test_sparse_coo.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_coo.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_coo.cpp.o.d"
  "/root/repo/tests/test_sparse_csr.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_csr.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_csr.cpp.o.d"
  "/root/repo/tests/test_sparse_datasets.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_datasets.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_datasets.cpp.o.d"
  "/root/repo/tests/test_sparse_estimator.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_estimator.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_estimator.cpp.o.d"
  "/root/repo/tests/test_sparse_generators.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_generators.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_generators.cpp.o.d"
  "/root/repo/tests/test_sparse_generators2.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_generators2.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_generators2.cpp.o.d"
  "/root/repo/tests/test_sparse_io.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_io.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_io.cpp.o.d"
  "/root/repo/tests/test_sparse_kronecker.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_kronecker.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_kronecker.cpp.o.d"
  "/root/repo/tests/test_sparse_ops.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_ops.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_ops.cpp.o.d"
  "/root/repo/tests/test_sparse_reorder.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_reorder.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_sparse_reorder.cpp.o.d"
  "/root/repo/tests/test_vgpu_allocator.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_allocator.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_allocator.cpp.o.d"
  "/root/repo/tests/test_vgpu_device.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_device.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_device.cpp.o.d"
  "/root/repo/tests/test_vgpu_device2.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_device2.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_device2.cpp.o.d"
  "/root/repo/tests/test_vgpu_memory_pool.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_memory_pool.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_memory_pool.cpp.o.d"
  "/root/repo/tests/test_vgpu_trace.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_trace.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_trace.cpp.o.d"
  "/root/repo/tests/test_vgpu_trace_export.cpp" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_trace_export.cpp.o" "gcc" "tests/CMakeFiles/oocgemm_tests.dir/test_vgpu_trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/oocgemm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/oocgemm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/oocgemm_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/oocgemm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/oocgemm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
