# Empty compiler generated dependencies file for oocgemm_tests.
# This may be replaced when dependencies are built.
