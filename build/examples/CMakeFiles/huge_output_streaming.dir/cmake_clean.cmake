file(REMOVE_RECURSE
  "CMakeFiles/huge_output_streaming.dir/huge_output_streaming.cpp.o"
  "CMakeFiles/huge_output_streaming.dir/huge_output_streaming.cpp.o.d"
  "huge_output_streaming"
  "huge_output_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_output_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
