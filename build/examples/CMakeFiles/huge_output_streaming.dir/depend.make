# Empty dependencies file for huge_output_streaming.
# This may be replaced when dependencies are built.
