file(REMOVE_RECURSE
  "CMakeFiles/multigrid_galerkin.dir/multigrid_galerkin.cpp.o"
  "CMakeFiles/multigrid_galerkin.dir/multigrid_galerkin.cpp.o.d"
  "multigrid_galerkin"
  "multigrid_galerkin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigrid_galerkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
