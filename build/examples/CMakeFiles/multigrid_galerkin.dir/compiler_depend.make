# Empty compiler generated dependencies file for multigrid_galerkin.
# This may be replaced when dependencies are built.
