# Empty compiler generated dependencies file for bench_fig8_async_vs_sync.
# This may be replaced when dependencies are built.
