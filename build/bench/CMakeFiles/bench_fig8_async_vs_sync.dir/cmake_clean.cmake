file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_async_vs_sync.dir/bench_fig8_async_vs_sync.cpp.o"
  "CMakeFiles/bench_fig8_async_vs_sync.dir/bench_fig8_async_vs_sync.cpp.o.d"
  "bench_fig8_async_vs_sync"
  "bench_fig8_async_vs_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_async_vs_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
