# Empty dependencies file for oocgemm_bench_util.
# This may be replaced when dependencies are built.
