file(REMOVE_RECURSE
  "liboocgemm_bench_util.a"
)
