file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/oocgemm_bench_util.dir/bench_util.cpp.o.d"
  "liboocgemm_bench_util.a"
  "liboocgemm_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
