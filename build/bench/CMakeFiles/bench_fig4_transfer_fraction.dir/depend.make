# Empty dependencies file for bench_fig4_transfer_fraction.
# This may be replaced when dependencies are built.
