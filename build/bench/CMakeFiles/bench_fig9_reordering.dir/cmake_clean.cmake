file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_reordering.dir/bench_fig9_reordering.cpp.o"
  "CMakeFiles/bench_fig9_reordering.dir/bench_fig9_reordering.cpp.o.d"
  "bench_fig9_reordering"
  "bench_fig9_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
