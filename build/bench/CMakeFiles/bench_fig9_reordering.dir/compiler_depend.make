# Empty compiler generated dependencies file for bench_fig9_reordering.
# This may be replaced when dependencies are built.
