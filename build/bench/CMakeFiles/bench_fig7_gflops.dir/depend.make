# Empty dependencies file for bench_fig7_gflops.
# This may be replaced when dependencies are built.
