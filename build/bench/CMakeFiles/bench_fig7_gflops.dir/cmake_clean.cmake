file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gflops.dir/bench_fig7_gflops.cpp.o"
  "CMakeFiles/bench_fig7_gflops.dir/bench_fig7_gflops.cpp.o.d"
  "bench_fig7_gflops"
  "bench_fig7_gflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
