file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multigpu.dir/bench_ext_multigpu.cpp.o"
  "CMakeFiles/bench_ext_multigpu.dir/bench_ext_multigpu.cpp.o.d"
  "bench_ext_multigpu"
  "bench_ext_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
