
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_gpu_chunks.cpp" "bench/CMakeFiles/bench_table3_gpu_chunks.dir/bench_table3_gpu_chunks.cpp.o" "gcc" "bench/CMakeFiles/bench_table3_gpu_chunks.dir/bench_table3_gpu_chunks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/oocgemm_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/oocgemm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/oocgemm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/oocgemm_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/oocgemm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/oocgemm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
