# Empty dependencies file for bench_table3_gpu_chunks.
# This may be replaced when dependencies are built.
