file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_gpu_chunks.dir/bench_table3_gpu_chunks.cpp.o"
  "CMakeFiles/bench_table3_gpu_chunks.dir/bench_table3_gpu_chunks.cpp.o.d"
  "bench_table3_gpu_chunks"
  "bench_table3_gpu_chunks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_gpu_chunks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
