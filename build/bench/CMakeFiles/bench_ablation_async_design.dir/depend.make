# Empty dependencies file for bench_ablation_async_design.
# This may be replaced when dependencies are built.
