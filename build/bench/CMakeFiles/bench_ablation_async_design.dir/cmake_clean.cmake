file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_async_design.dir/bench_ablation_async_design.cpp.o"
  "CMakeFiles/bench_ablation_async_design.dir/bench_ablation_async_design.cpp.o.d"
  "bench_ablation_async_design"
  "bench_ablation_async_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_async_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
