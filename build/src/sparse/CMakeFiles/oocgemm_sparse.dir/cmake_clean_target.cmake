file(REMOVE_RECURSE
  "liboocgemm_sparse.a"
)
