
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/analysis.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/analysis.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/analysis.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/datasets.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/datasets.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/datasets.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/ops.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/ops.cpp.o.d"
  "/root/repo/src/sparse/reorder.cpp" "src/sparse/CMakeFiles/oocgemm_sparse.dir/reorder.cpp.o" "gcc" "src/sparse/CMakeFiles/oocgemm_sparse.dir/reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
