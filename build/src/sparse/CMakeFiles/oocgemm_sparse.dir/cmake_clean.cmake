file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_sparse.dir/analysis.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/analysis.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/coo.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/csr.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/datasets.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/datasets.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/generators.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/io.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/io.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/ops.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/ops.cpp.o.d"
  "CMakeFiles/oocgemm_sparse.dir/reorder.cpp.o"
  "CMakeFiles/oocgemm_sparse.dir/reorder.cpp.o.d"
  "liboocgemm_sparse.a"
  "liboocgemm_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
