# Empty compiler generated dependencies file for oocgemm_sparse.
# This may be replaced when dependencies are built.
