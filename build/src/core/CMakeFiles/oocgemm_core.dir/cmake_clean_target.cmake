file(REMOVE_RECURSE
  "liboocgemm_core.a"
)
