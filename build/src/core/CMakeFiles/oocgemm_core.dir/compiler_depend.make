# Empty compiler generated dependencies file for oocgemm_core.
# This may be replaced when dependencies are built.
