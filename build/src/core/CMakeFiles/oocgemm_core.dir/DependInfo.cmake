
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assembler.cpp" "src/core/CMakeFiles/oocgemm_core.dir/assembler.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/assembler.cpp.o.d"
  "/root/repo/src/core/chunk_sink.cpp" "src/core/CMakeFiles/oocgemm_core.dir/chunk_sink.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/chunk_sink.cpp.o.d"
  "/root/repo/src/core/cpu_runner.cpp" "src/core/CMakeFiles/oocgemm_core.dir/cpu_runner.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/cpu_runner.cpp.o.d"
  "/root/repo/src/core/executors.cpp" "src/core/CMakeFiles/oocgemm_core.dir/executors.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/executors.cpp.o.d"
  "/root/repo/src/core/gpu_runner.cpp" "src/core/CMakeFiles/oocgemm_core.dir/gpu_runner.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/gpu_runner.cpp.o.d"
  "/root/repo/src/core/multi_gpu.cpp" "src/core/CMakeFiles/oocgemm_core.dir/multi_gpu.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/multi_gpu.cpp.o.d"
  "/root/repo/src/core/panel_cache.cpp" "src/core/CMakeFiles/oocgemm_core.dir/panel_cache.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/panel_cache.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/oocgemm_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/run_stats.cpp" "src/core/CMakeFiles/oocgemm_core.dir/run_stats.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/run_stats.cpp.o.d"
  "/root/repo/src/core/spgemm.cpp" "src/core/CMakeFiles/oocgemm_core.dir/spgemm.cpp.o" "gcc" "src/core/CMakeFiles/oocgemm_core.dir/spgemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/oocgemm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/oocgemm_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/oocgemm_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/oocgemm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
