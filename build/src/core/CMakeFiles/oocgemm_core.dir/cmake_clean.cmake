file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_core.dir/assembler.cpp.o"
  "CMakeFiles/oocgemm_core.dir/assembler.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/chunk_sink.cpp.o"
  "CMakeFiles/oocgemm_core.dir/chunk_sink.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/cpu_runner.cpp.o"
  "CMakeFiles/oocgemm_core.dir/cpu_runner.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/executors.cpp.o"
  "CMakeFiles/oocgemm_core.dir/executors.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/gpu_runner.cpp.o"
  "CMakeFiles/oocgemm_core.dir/gpu_runner.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/multi_gpu.cpp.o"
  "CMakeFiles/oocgemm_core.dir/multi_gpu.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/panel_cache.cpp.o"
  "CMakeFiles/oocgemm_core.dir/panel_cache.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/problem.cpp.o"
  "CMakeFiles/oocgemm_core.dir/problem.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/run_stats.cpp.o"
  "CMakeFiles/oocgemm_core.dir/run_stats.cpp.o.d"
  "CMakeFiles/oocgemm_core.dir/spgemm.cpp.o"
  "CMakeFiles/oocgemm_core.dir/spgemm.cpp.o.d"
  "liboocgemm_core.a"
  "liboocgemm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
