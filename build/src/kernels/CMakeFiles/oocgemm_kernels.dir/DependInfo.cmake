
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/accumulators.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/accumulators.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/accumulators.cpp.o.d"
  "/root/repo/src/kernels/binning.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/binning.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/binning.cpp.o.d"
  "/root/repo/src/kernels/cost_model.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/cost_model.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/cost_model.cpp.o.d"
  "/root/repo/src/kernels/cpu_spgemm.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/cpu_spgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/cpu_spgemm.cpp.o.d"
  "/root/repo/src/kernels/device_csr.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/device_csr.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/device_csr.cpp.o.d"
  "/root/repo/src/kernels/device_spgemm.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/device_spgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/device_spgemm.cpp.o.d"
  "/root/repo/src/kernels/masked_spgemm.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/masked_spgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/masked_spgemm.cpp.o.d"
  "/root/repo/src/kernels/reference_spgemm.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/reference_spgemm.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/reference_spgemm.cpp.o.d"
  "/root/repo/src/kernels/row_analysis.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/row_analysis.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/row_analysis.cpp.o.d"
  "/root/repo/src/kernels/spgemm_phases.cpp" "src/kernels/CMakeFiles/oocgemm_kernels.dir/spgemm_phases.cpp.o" "gcc" "src/kernels/CMakeFiles/oocgemm_kernels.dir/spgemm_phases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/oocgemm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/oocgemm_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
