file(REMOVE_RECURSE
  "liboocgemm_kernels.a"
)
