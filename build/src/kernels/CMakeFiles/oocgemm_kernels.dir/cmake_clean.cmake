file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_kernels.dir/accumulators.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/accumulators.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/binning.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/binning.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/cost_model.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/cost_model.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/cpu_spgemm.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/cpu_spgemm.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/device_csr.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/device_csr.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/device_spgemm.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/device_spgemm.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/masked_spgemm.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/masked_spgemm.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/reference_spgemm.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/reference_spgemm.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/row_analysis.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/row_analysis.cpp.o.d"
  "CMakeFiles/oocgemm_kernels.dir/spgemm_phases.cpp.o"
  "CMakeFiles/oocgemm_kernels.dir/spgemm_phases.cpp.o.d"
  "liboocgemm_kernels.a"
  "liboocgemm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
