# Empty dependencies file for oocgemm_kernels.
# This may be replaced when dependencies are built.
