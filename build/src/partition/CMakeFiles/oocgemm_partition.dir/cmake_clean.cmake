file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_partition.dir/chunk.cpp.o"
  "CMakeFiles/oocgemm_partition.dir/chunk.cpp.o.d"
  "CMakeFiles/oocgemm_partition.dir/panel_plan.cpp.o"
  "CMakeFiles/oocgemm_partition.dir/panel_plan.cpp.o.d"
  "CMakeFiles/oocgemm_partition.dir/panels.cpp.o"
  "CMakeFiles/oocgemm_partition.dir/panels.cpp.o.d"
  "liboocgemm_partition.a"
  "liboocgemm_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
