file(REMOVE_RECURSE
  "liboocgemm_partition.a"
)
