# Empty compiler generated dependencies file for oocgemm_partition.
# This may be replaced when dependencies are built.
