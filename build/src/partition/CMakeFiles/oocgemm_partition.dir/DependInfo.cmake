
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/chunk.cpp" "src/partition/CMakeFiles/oocgemm_partition.dir/chunk.cpp.o" "gcc" "src/partition/CMakeFiles/oocgemm_partition.dir/chunk.cpp.o.d"
  "/root/repo/src/partition/panel_plan.cpp" "src/partition/CMakeFiles/oocgemm_partition.dir/panel_plan.cpp.o" "gcc" "src/partition/CMakeFiles/oocgemm_partition.dir/panel_plan.cpp.o.d"
  "/root/repo/src/partition/panels.cpp" "src/partition/CMakeFiles/oocgemm_partition.dir/panels.cpp.o" "gcc" "src/partition/CMakeFiles/oocgemm_partition.dir/panels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/oocgemm_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/oocgemm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
