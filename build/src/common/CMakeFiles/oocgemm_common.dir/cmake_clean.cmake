file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_common.dir/format.cpp.o"
  "CMakeFiles/oocgemm_common.dir/format.cpp.o.d"
  "CMakeFiles/oocgemm_common.dir/log.cpp.o"
  "CMakeFiles/oocgemm_common.dir/log.cpp.o.d"
  "CMakeFiles/oocgemm_common.dir/prefix_sum.cpp.o"
  "CMakeFiles/oocgemm_common.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/oocgemm_common.dir/stats.cpp.o"
  "CMakeFiles/oocgemm_common.dir/stats.cpp.o.d"
  "CMakeFiles/oocgemm_common.dir/thread_pool.cpp.o"
  "CMakeFiles/oocgemm_common.dir/thread_pool.cpp.o.d"
  "liboocgemm_common.a"
  "liboocgemm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
