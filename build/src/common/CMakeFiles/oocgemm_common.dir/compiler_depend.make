# Empty compiler generated dependencies file for oocgemm_common.
# This may be replaced when dependencies are built.
