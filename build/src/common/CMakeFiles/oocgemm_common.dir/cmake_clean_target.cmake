file(REMOVE_RECURSE
  "liboocgemm_common.a"
)
