file(REMOVE_RECURSE
  "liboocgemm_vgpu.a"
)
