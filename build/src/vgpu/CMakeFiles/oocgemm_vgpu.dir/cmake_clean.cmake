file(REMOVE_RECURSE
  "CMakeFiles/oocgemm_vgpu.dir/allocator.cpp.o"
  "CMakeFiles/oocgemm_vgpu.dir/allocator.cpp.o.d"
  "CMakeFiles/oocgemm_vgpu.dir/device.cpp.o"
  "CMakeFiles/oocgemm_vgpu.dir/device.cpp.o.d"
  "CMakeFiles/oocgemm_vgpu.dir/memory_pool.cpp.o"
  "CMakeFiles/oocgemm_vgpu.dir/memory_pool.cpp.o.d"
  "CMakeFiles/oocgemm_vgpu.dir/trace.cpp.o"
  "CMakeFiles/oocgemm_vgpu.dir/trace.cpp.o.d"
  "CMakeFiles/oocgemm_vgpu.dir/trace_export.cpp.o"
  "CMakeFiles/oocgemm_vgpu.dir/trace_export.cpp.o.d"
  "liboocgemm_vgpu.a"
  "liboocgemm_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oocgemm_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
