# Empty compiler generated dependencies file for oocgemm_vgpu.
# This may be replaced when dependencies are built.
