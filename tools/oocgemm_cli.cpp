// Command-line front end for the library.
//
//   oocgemm_cli generate --kind=rmat --scale=13 --edge-factor=8 --out=a.mtx
//   oocgemm_cli analyze a.mtx [b.mtx]
//   oocgemm_cli multiply a.mtx [b.mtx] --executor=hybrid --device-mem=16
//               [--ratio=0.67] [--out=c.mtx] [--trace=run.json] [--verify]
//   oocgemm_cli serve --jobs=64 [--load=0] [--workers=4] [--queue=64]
//               [--batch=1] [--devices=1] [--span=1] [--device-mem=1]
//               [--timeout=0] [--seed=1] [--report=r.json]
//               [--fault-spec=dev1:kernel:nth=40] [--fault-seed=1]
//               [--metrics-out=m.prom] [--metrics-interval=0.5]
//               [--admission=exact|estimate] [--estimator-seed=S]
//               [--estimator-sample=F] [--kernel=auto|hash|dense|sort|merge]
//               [--shards=N] [--replication=R] [--route=affinity|random]
//
// `multiply` squares `a.mtx` when no second matrix is given (the paper's
// C = A x A convention).  --device-mem is the virtual device memory in MiB.
// `serve` drives the multi-tenant serving runtime with a synthetic
// open-loop workload: --load is the offered arrival rate in jobs per
// virtual second (0 = submit the whole batch at t=0) and --report writes
// the ServerReport JSON.  --batch=N enables operand-aware batching (up to
// N queued jobs sharing a B operand execute as one device batch) and
// switches the workload to shared-operand form: every job draws its B
// from a small common pool so batches can actually form.  --devices=D
// serves the workload from a pool of D identical virtual GPUs (one
// scheduler lane each; the report gains a per-device section), and
// --span=M lets one multi-chunk hybrid job span up to M free devices.
// --fault-spec installs a deterministic FaultInjector on the named pool
// devices: each comma-separated rule is `dev<K>:` followed by a
// vgpu::FaultSpec rule (site, trigger, action — see fault_injector.hpp),
// e.g. `dev1:kernel:nth=40` kills device 1 at its 40th kernel launch and
// exercises the scheduler's failover path.  --fault-seed seeds the fault
// schedule; the same seed reproduces the same schedule exactly.
// --metrics-out=PATH exports the live metrics registry: Prometheus text at
// PATH and JSON at PATH.json, rewritten every --metrics-interval seconds
// while serving plus once at shutdown (see src/obs/).
// --admission=estimate prices submissions with the OCEAN-style sampling
// estimator (src/estimate/) instead of the exact analysis pass, falling
// back to exact per job when the sample's variance check fails;
// --estimator-seed seeds the sampling draws (same seed, same estimates)
// and --estimator-sample overrides the row-sample fraction (default 0.05).
// --kernel forces one accumulator strategy on every served job's SpGEMM
// kernels (hash, dense, sort = gather-then-sort, merge = binary row
// merging); the default `auto` routes per row group through the kernel
// registry's cost model (see src/kernels/kernel_registry.hpp).
// --calibrate=observe fits live device/CPU rates from the metrics registry
// (exported as oocgemm_calibrate_*) while every decision stays static;
// --calibrate=apply additionally feeds the fitted model into admission
// latency pricing, the hybrid split, placement tie-breaks and kernel
// routing (see src/calibrate/).  --calibrate-interval sets the fit tick
// period in wall seconds (default 0.05 when calibrating).  --ratio forces
// one hybrid GPU work fraction on every served job.
// Serve flags are validated up front: an unknown --route, --admission,
// --kernel or --calibrate value, a --ratio outside (0, 1), a non-positive
// --calibrate-interval, or a non-positive --shards or --replication,
// prints the usage text and exits nonzero instead of being silently
// clamped.
// --shards=N (N >= 2) serves through the fleet router instead of a single
// server: N in-process shards of --devices GPUs each, consistent-hash
// B-operand placement (--route=affinity, the default) or a uniform random
// baseline (--route=random), and --replication=R spreading hot operands
// over R ring successors.  The workload switches to shared-operand form
// with per-job tenants ("tenant-0".."tenant-3") and explicit out-of-core
// device jobs so placement is the lever being exercised.  --fault-spec
// device indices are global: dev<K> is shard K/D, local device K%D for
// --devices=D per shard — `--shards=3 --fault-spec=dev1:kernel:nth=6:kill`
// kills shard 1's only device and exercises cross-shard failover.
// --report writes the FleetReport JSON (per-shard sections included); the
// exit code is nonzero if any device OOM slipped through or the fleet
// totals fail to reconcile with the per-shard reports.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "calibrate/calibrator.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "fleet/router.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/reference_spgemm.hpp"
#include "serve/server.hpp"
#include "sparse/analysis.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fault_injector.hpp"
#include "vgpu/trace_export.hpp"

namespace {

using namespace oocgemm;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& name, const std::string& dflt) const {
    auto it = flags.find(name);
    return it == flags.end() ? dflt : it->second;
  }
  double FlagD(const std::string& name, double dflt) const {
    auto it = flags.find(name);
    return it == flags.end() ? dflt : std::atof(it->second.c_str());
  }
  bool Has(const std::string& name) const { return flags.count(name) > 0; }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const auto eq = s.find('=');
      if (eq == std::string::npos) {
        args.flags[s.substr(2)] = "1";
      } else {
        args.flags[s.substr(2, eq - 2)] = s.substr(eq + 1);
      }
    } else {
      args.positional.push_back(s);
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  oocgemm_cli generate --kind=rmat|er|banded --scale=N "
      "[--edge-factor=F] [--seed=S] --out=FILE\n"
      "  oocgemm_cli analyze A.mtx [B.mtx]\n"
      "  oocgemm_cli multiply A.mtx [B.mtx] [--executor=async|sync|hybrid|"
      "cpu] [--device-mem=MiB] [--ratio=R] [--out=C.mtx] [--trace=T.json] "
      "[--verify]\n"
      "  oocgemm_cli serve [--jobs=N] [--load=JOBS_PER_VSEC] [--workers=W] "
      "[--queue=Q] [--batch=B] [--devices=D] [--span=M] [--device-mem=MiB] "
      "[--timeout=SEC] [--seed=S] [--ratio=R] [--report=R.json] [--verify] "
      "[--fault-spec=dev<K>:<rule>[,...]] [--fault-seed=S] "
      "[--metrics-out=M.prom] [--metrics-interval=SEC] "
      "[--admission=exact|estimate] [--estimator-seed=S] "
      "[--estimator-sample=F] [--kernel=auto|hash|dense|sort|merge] "
      "[--calibrate=off|observe|apply] [--calibrate-interval=SEC] "
      "[--shards=N] [--replication=R] [--route=affinity|random]\n");
  return 2;
}

StatusOr<sparse::Csr> Load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".bin") {
    return sparse::ReadBinary(path);
  }
  return sparse::ReadMatrixMarket(path);
}

int Generate(const Args& args) {
  const std::string kind = args.Flag("kind", "rmat");
  const int scale = static_cast<int>(args.FlagD("scale", 12));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.FlagD("seed", 1));
  const std::string out = args.Flag("out", "");
  if (out.empty()) return Usage();

  sparse::Csr m;
  if (kind == "rmat") {
    sparse::RmatParams p;
    p.scale = scale;
    p.edge_factor = args.FlagD("edge-factor", 8.0);
    p.seed = seed;
    m = sparse::GenerateRmat(p);
  } else if (kind == "er") {
    sparse::ErdosRenyiParams p;
    p.rows = p.cols = static_cast<sparse::index_t>(1) << scale;
    p.avg_degree = args.FlagD("edge-factor", 8.0);
    p.seed = seed;
    m = sparse::GenerateErdosRenyi(p);
  } else if (kind == "banded") {
    sparse::BandedParams p;
    p.n = static_cast<sparse::index_t>(1) << scale;
    p.half_bandwidth =
        static_cast<sparse::index_t>(args.FlagD("half-bandwidth", 8));
    p.seed = seed;
    m = sparse::GenerateBanded(p);
  } else {
    return Usage();
  }
  Status st = out.size() > 4 && out.substr(out.size() - 4) == ".bin"
                  ? sparse::WriteBinary(m, out)
                  : sparse::WriteMatrixMarket(m, out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", out.c_str(), m.DebugString().c_str());
  return 0;
}

int Analyze(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto a = Load(args.positional[1]);
  if (!a.ok()) {
    std::fprintf(stderr, "%s\n", a.status().ToString().c_str());
    return 1;
  }
  sparse::Csr b =
      args.positional.size() > 2 ? Load(args.positional[2]).value() : a.value();
  sparse::ProductStats s = sparse::AnalyzeProduct(a.value(), b);
  TablePrinter t({"property", "value"});
  t.AddRow({"A", a->DebugString()});
  t.AddRow({"B", b.DebugString()});
  t.AddRow({"flop(A*B)", HumanCount(static_cast<double>(s.flops))});
  t.AddRow({"nnz(A*B)", HumanCount(static_cast<double>(s.nnz_out))});
  t.AddRow({"compression ratio", Fixed(s.compression_ratio, 2)});
  t.AddRow({"row-work gini", Fixed(s.row_flops_gini, 3)});
  t.AddRow({"max row flops", HumanCount(s.max_row_flops)});
  t.Print();
  return 0;
}

int Multiply(const Args& args) {
  if (args.positional.size() < 2) return Usage();
  auto a_or = Load(args.positional[1]);
  if (!a_or.ok()) {
    std::fprintf(stderr, "%s\n", a_or.status().ToString().c_str());
    return 1;
  }
  sparse::Csr a = std::move(a_or.value());
  sparse::Csr b = a;
  if (args.positional.size() > 2) {
    auto b_or = Load(args.positional[2]);
    if (!b_or.ok()) {
      std::fprintf(stderr, "%s\n", b_or.status().ToString().c_str());
      return 1;
    }
    b = std::move(b_or.value());
  }

  const double mem_mib = args.FlagD("device-mem", 16.0);
  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
  props.memory_bytes = static_cast<std::int64_t>(mem_mib * (1 << 20));
  vgpu::Device device(props);

  ThreadPool pool;
  core::ExecutorOptions options;
  options.gpu_ratio = args.FlagD("ratio", options.gpu_ratio);

  const std::string executor = args.Flag("executor", "async");
  StatusOr<core::RunResult> r = Status::Internal("unreachable");
  if (executor == "async") {
    r = core::AsyncOutOfCore(device, a, b, options, pool);
  } else if (executor == "sync") {
    r = core::SyncOutOfCore(device, a, b, options, pool);
  } else if (executor == "hybrid") {
    r = core::Hybrid(device, a, b, options, pool);
  } else if (executor == "cpu") {
    r = core::CpuMulticore(a, b, options, pool);
  } else {
    return Usage();
  }
  if (!r.ok()) {
    std::fprintf(stderr, "multiply failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", r->stats.DebugString().c_str());

  if (args.Has("verify")) {
    sparse::Csr expected = kernels::ReferenceSpgemm(a, b);
    if (!r->c.ApproxEquals(expected)) {
      std::fprintf(stderr, "VERIFY FAILED: result differs from reference\n");
      return 1;
    }
    std::printf("verify: OK\n");
  }
  if (args.Has("trace") && executor != "cpu") {
    Status st = vgpu::WriteChromeTrace(device.trace(), args.Flag("trace", ""),
                                       device.id());
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("trace: %s\n", args.Flag("trace", "").c_str());
  }
  if (args.Has("out")) {
    const std::string out = args.Flag("out", "");
    Status st = out.size() > 4 && out.substr(out.size() - 4) == ".bin"
                    ? sparse::WriteBinary(r->c, out)
                    : sparse::WriteMatrixMarket(r->c, out);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

// --fault-spec=dev1:kernel:nth=40,dev0:h2d:p=0.02:fail — group the
// `dev<K>:`-prefixed rules per device and install one seeded injector on
// each targeted device.  Indices are positions in `device_ptrs` (in the
// fleet path, shard-major global indices).  Returns 0, or the process
// exit code on a malformed spec.
int InstallFaultInjectors(
    const Args& args, std::vector<vgpu::Device*>& device_ptrs,
    std::vector<std::unique_ptr<vgpu::FaultInjector>>& injectors) {
  const std::string fault_spec = args.Flag("fault-spec", "");
  if (fault_spec.empty()) return 0;
  const int num_devices = static_cast<int>(device_ptrs.size());
  const std::uint64_t fault_seed =
      static_cast<std::uint64_t>(args.FlagD("fault-seed", 1));
  std::vector<std::string> per_device(static_cast<std::size_t>(num_devices));
  std::size_t start = 0;
  while (start < fault_spec.size()) {
    std::size_t comma = fault_spec.find(',', start);
    if (comma == std::string::npos) comma = fault_spec.size();
    const std::string rule = fault_spec.substr(start, comma - start);
    start = comma + 1;
    const std::size_t colon = rule.find(':');
    int dev = -1;
    if (rule.rfind("dev", 0) == 0 && colon != std::string::npos) {
      dev = std::atoi(rule.substr(3, colon - 3).c_str());
    }
    if (dev < 0 || dev >= num_devices || colon + 1 >= rule.size()) {
      std::fprintf(stderr,
                   "bad --fault-spec rule '%s' (want dev<K>:<site>:...)\n",
                   rule.c_str());
      return 2;
    }
    std::string& rules = per_device[static_cast<std::size_t>(dev)];
    if (!rules.empty()) rules += ',';
    rules += rule.substr(colon + 1);
  }
  for (int k = 0; k < num_devices; ++k) {
    if (per_device[static_cast<std::size_t>(k)].empty()) continue;
    auto spec = vgpu::FaultSpec::Parse(
        per_device[static_cast<std::size_t>(k)],
        fault_seed + static_cast<std::uint64_t>(k));
    if (!spec.ok()) {
      std::fprintf(stderr, "bad --fault-spec: %s\n",
                   spec.status().ToString().c_str());
      return 2;
    }
    injectors.push_back(std::make_unique<vgpu::FaultInjector>(spec.value()));
    device_ptrs[static_cast<std::size_t>(k)]->set_fault_injector(
        injectors.back().get());
  }
  return 0;
}

// Admission configuration shared by the single-server and fleet paths,
// parsed and validated once before any devices are built.
struct ServeAdmission {
  serve::AdmissionMode mode = serve::AdmissionMode::kExact;
  estimate::EstimatorOptions estimator;
  kernels::AccumulatorKind kernel = kernels::AccumulatorKind::kAuto;
  calibrate::CalibratorConfig calibrate;
  /// Hybrid split forced on every job (`--ratio`); < 0 keeps the
  /// executor-options default.
  double gpu_ratio = -1.0;
};

// Strict up-front validation of the serve flags: an unknown --route or
// --admission value, or a non-positive --shards or --replication, is a
// usage error (exit 2), not something to clamp quietly.  Fills `adm` from
// --admission / --estimator-seed / --estimator-sample on success.
int ValidateServeFlags(const Args& args, ServeAdmission* adm) {
  const std::string admission = args.Flag("admission", "exact");
  if (!serve::ParseAdmissionMode(admission, &adm->mode)) {
    std::fprintf(stderr, "--admission=%s: want exact or estimate\n",
                 admission.c_str());
    return Usage();
  }
  adm->estimator.seed =
      static_cast<std::uint64_t>(args.FlagD("estimator-seed", 1));
  if (args.Has("estimator-sample")) {
    const double sample = args.FlagD("estimator-sample", 0.05);
    if (!(sample > 0.0) || sample > 1.0) {
      std::fprintf(stderr,
                   "--estimator-sample=%s: want a fraction in (0, 1]\n",
                   args.Flag("estimator-sample", "").c_str());
      return Usage();
    }
    adm->estimator.row_sample_fraction = sample;
  }
  const std::string route = args.Flag("route", "affinity");
  if (route != "affinity" && route != "random") {
    std::fprintf(stderr, "--route=%s: want affinity or random\n",
                 route.c_str());
    return Usage();
  }
  const std::string kernel = args.Flag("kernel", "auto");
  if (auto parsed = kernels::ParseAccumulatorKind(kernel)) {
    adm->kernel = *parsed;
  } else {
    std::fprintf(stderr,
                 "--kernel=%s: want auto, hash, dense, sort or merge\n",
                 kernel.c_str());
    return Usage();
  }
  if (args.Has("shards")) {
    const int shards = static_cast<int>(args.FlagD("shards", 2));
    if (shards < 2) {
      std::fprintf(stderr, "--shards=%d: a fleet needs at least 2 shards\n",
                   shards);
      return Usage();
    }
  }
  if (args.Has("replication")) {
    const int replication = static_cast<int>(args.FlagD("replication", 1));
    if (replication <= 0) {
      std::fprintf(stderr, "--replication=%d: want a positive replica count\n",
                   replication);
      return Usage();
    }
  }
  if (args.Has("ratio")) {
    const double ratio = args.FlagD("ratio", -1.0);
    if (!(ratio > 0.0) || !(ratio < 1.0)) {
      std::fprintf(stderr,
                   "--ratio=%s: want a GPU work fraction strictly inside "
                   "(0, 1)\n",
                   args.Flag("ratio", "").c_str());
      return Usage();
    }
    adm->gpu_ratio = ratio;
  }
  const std::string calibrate_mode = args.Flag("calibrate", "off");
  if (!calibrate::ParseCalibrateMode(calibrate_mode, &adm->calibrate.mode)) {
    std::fprintf(stderr, "--calibrate=%s: want off, observe or apply\n",
                 calibrate_mode.c_str());
    return Usage();
  }
  if (args.Has("calibrate-interval")) {
    const double interval = args.FlagD("calibrate-interval", 0.0);
    if (!(interval > 0.0)) {
      std::fprintf(stderr,
                   "--calibrate-interval=%s: want a positive tick period in "
                   "seconds\n",
                   args.Flag("calibrate-interval", "").c_str());
      return Usage();
    }
    adm->calibrate.interval_seconds = interval;
  } else if (adm->calibrate.mode != calibrate::CalibrateMode::kOff) {
    // A calibrating server should actually tick without the test-style
    // manual TickNow(); default to a fast background cadence.
    adm->calibrate.interval_seconds = 0.05;
  }
  return 0;
}

// Sharded serving through the fleet router: a shared-operand multi-tenant
// workload (every job draws its B from a small common pool, so affinity
// placement has batches and panel reuse to win) in explicit out-of-core
// device mode, so a shard whose pool died must fail over across the ring.
int ServeFleet(const Args& args, const ServeAdmission& adm) {
  const int jobs = static_cast<int>(args.FlagD("jobs", 64));
  const double load = args.FlagD("load", 0.0);
  const double mem_mib = args.FlagD("device-mem", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.FlagD("seed", 1));
  const int batch = std::max(1, static_cast<int>(args.FlagD("batch", 8)));
  const int shards = static_cast<int>(args.FlagD("shards", 2));
  const int devices_per_shard =
      std::max(1, static_cast<int>(args.FlagD("devices", 1)));
  const int replication = static_cast<int>(args.FlagD("replication", 1));
  const std::string route = args.Flag("route", "affinity");

  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
  props.memory_bytes = static_cast<std::int64_t>(mem_mib * (1 << 20));
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> device_ptrs;  // shard-major global indices
  std::vector<std::vector<vgpu::Device*>> shard_devices;
  for (int s = 0; s < shards; ++s) {
    shard_devices.emplace_back();
    for (int d = 0; d < devices_per_shard; ++d) {
      devices.push_back(std::make_unique<vgpu::Device>(props));
      device_ptrs.push_back(devices.back().get());
      shard_devices.back().push_back(devices.back().get());
    }
  }
  std::vector<std::unique_ptr<vgpu::FaultInjector>> injectors;
  if (int rc = InstallFaultInjectors(args, device_ptrs, injectors)) return rc;
  ThreadPool pool;

  fleet::FleetConfig config;
  config.shard.scheduler.num_workers = static_cast<int>(
      args.FlagD("workers", std::max(2, devices_per_shard + 1)));
  config.shard.scheduler.cpu_lanes =
      std::max(1, config.shard.scheduler.num_workers - 1);
  config.shard.scheduler.max_batch_jobs = batch;
  config.shard.max_queue = static_cast<std::size_t>(args.FlagD("queue", jobs));
  config.shard.default_timeout_seconds = args.FlagD("timeout", 0.0);
  config.shard.admission_mode = adm.mode;
  config.shard.estimator = adm.estimator;
  config.shard.scheduler.kernel = adm.kernel;
  config.shard.calibrate = adm.calibrate;
  config.policy = route == "random" ? fleet::RoutingPolicy::kRandom
                                    : fleet::RoutingPolicy::kAffinity;
  config.replication.replication = replication;
  fleet::FleetRouter router(std::move(shard_devices), pool, config);

  SplitMix64 rng(seed);
  std::vector<std::shared_ptr<const sparse::Csr>> shared_bs;
  for (int i = 0; i < 4; ++i) {
    sparse::RmatParams p;
    p.scale = 8;
    p.edge_factor = 8.0;
    p.seed = rng.Next();
    shared_bs.push_back(
        std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p)));
  }

  struct Pending {
    std::shared_ptr<const sparse::Csr> a;
    std::shared_ptr<const sparse::Csr> b;
    std::future<serve::JobResult> future;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < jobs; ++i) {
    serve::SpgemmJob job;
    const auto& b = shared_bs[rng.Next() % shared_bs.size()];
    sparse::ErdosRenyiParams p;
    p.rows = p.cols = b->rows();
    p.avg_degree = 4.0;
    p.seed = rng.Next();
    job.a = std::make_shared<const sparse::Csr>(sparse::GenerateErdosRenyi(p));
    job.b = b;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    if (adm.gpu_ratio > 0.0) job.options.exec.gpu_ratio = adm.gpu_ratio;
    job.options.priority = static_cast<int>(rng.Next() % 4);
    job.options.tenant = "tenant-" + std::to_string(i % 4);
    job.options.virtual_arrival = load > 0.0 ? i / load : 0.0;
    pending.push_back({job.a, job.b, router.Submit(std::move(job))});
  }
  router.Drain();

  int verify_failures = 0;
  for (auto& p : pending) {
    serve::JobResult r = p.future.get();
    if (!r.ok()) {
      std::printf("job %llu: %s (%s)\n",
                  static_cast<unsigned long long>(r.metrics.id),
                  serve::JobOutcomeName(r.metrics.outcome),
                  r.status.ToString().c_str());
      continue;
    }
    if (args.Has("verify") &&
        !r.c.ApproxEquals(kernels::ReferenceSpgemm(*p.a, *p.b))) {
      std::fprintf(stderr, "VERIFY FAILED: job %llu\n",
                   static_cast<unsigned long long>(r.metrics.id));
      ++verify_failures;
    }
  }

  fleet::FleetReport report = router.Report();
  std::printf("%s\n", report.DebugString().c_str());
  if (args.Has("report")) {
    std::ofstream out(args.Flag("report", ""));
    out << report.ToJson() << "\n";
    std::printf("report: %s\n", args.Flag("report", "").c_str());
  }
  if (args.Has("verify")) {
    if (verify_failures > 0) return 1;
    std::printf("verify: OK\n");
  }
  if (!report.Reconciles()) {
    std::fprintf(stderr,
                 "FLEET REPORT DOES NOT RECONCILE with per-shard reports\n");
    return 1;
  }
  return report.totals.device_oom_failures == 0 ? 0 : 1;
}

// Synthetic open-loop workload against the serving runtime: a deterministic
// mix of small ER products, medium R-MAT squarings and an occasional large
// one, with randomized priorities and executor preferences.
int Serve(const Args& args) {
  ServeAdmission adm;
  if (int rc = ValidateServeFlags(args, &adm)) return rc;
  if (args.Has("shards")) return ServeFleet(args, adm);
  const int jobs = static_cast<int>(args.FlagD("jobs", 64));
  const double load = args.FlagD("load", 0.0);
  const double mem_mib = args.FlagD("device-mem", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.FlagD("seed", 1));
  const int batch = std::max(1, static_cast<int>(args.FlagD("batch", 1)));
  const int num_devices =
      std::max(1, static_cast<int>(args.FlagD("devices", 1)));
  const int span = std::max(1, static_cast<int>(args.FlagD("span", 1)));

  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
  props.memory_bytes = static_cast<std::int64_t>(mem_mib * (1 << 20));
  std::vector<std::unique_ptr<vgpu::Device>> devices;
  std::vector<vgpu::Device*> device_ptrs;
  for (int i = 0; i < num_devices; ++i) {
    devices.push_back(std::make_unique<vgpu::Device>(props));
    device_ptrs.push_back(devices.back().get());
  }

  std::vector<std::unique_ptr<vgpu::FaultInjector>> injectors;
  if (int rc = InstallFaultInjectors(args, device_ptrs, injectors)) return rc;
  ThreadPool pool;

  serve::ServerConfig config;
  config.scheduler.num_workers =
      static_cast<int>(args.FlagD("workers", std::max(4, num_devices + 1)));
  config.scheduler.cpu_lanes = std::max(1, config.scheduler.num_workers - 1);
  config.scheduler.max_batch_jobs = batch;
  config.scheduler.max_devices_per_job = span;
  config.max_queue =
      static_cast<std::size_t>(args.FlagD("queue", jobs));
  config.default_timeout_seconds = args.FlagD("timeout", 0.0);
  config.admission_mode = adm.mode;
  config.estimator = adm.estimator;
  config.scheduler.kernel = adm.kernel;
  config.metrics_path = args.Flag("metrics-out", "");
  config.metrics_interval_seconds = args.FlagD("metrics-interval", 0.5);
  config.calibrate = adm.calibrate;
  serve::SpgemmServer server(device_ptrs, pool, config);

  SplitMix64 rng(seed);

  // Shared-operand pool for --batch mode: jobs draw their B from here so
  // the scheduler has same-operand runs to coalesce.
  std::vector<std::shared_ptr<const sparse::Csr>> shared_bs;
  if (batch > 1) {
    for (int i = 0; i < 2; ++i) {
      sparse::RmatParams p;
      p.scale = 8;
      p.edge_factor = 8.0;
      p.seed = rng.Next();
      shared_bs.push_back(
          std::make_shared<const sparse::Csr>(sparse::GenerateRmat(p)));
    }
  }

  struct Pending {
    std::shared_ptr<const sparse::Csr> a;
    std::shared_ptr<const sparse::Csr> b;
    std::future<serve::JobResult> future;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < jobs; ++i) {
    serve::SpgemmJob job;
    if (batch > 1) {  // per-tenant A against a pooled B
      const auto& b = shared_bs[rng.Next() % shared_bs.size()];
      sparse::ErdosRenyiParams p;
      p.rows = p.cols = b->rows();
      p.avg_degree = 4.0;
      p.seed = rng.Next();
      job.a = std::make_shared<const sparse::Csr>(
          sparse::GenerateErdosRenyi(p));
      job.b = b;
    } else {
      const std::uint64_t pick = rng.Next() % 8;
      sparse::Csr m;
      if (pick < 5) {  // small ER product
        sparse::ErdosRenyiParams p;
        p.rows = p.cols = 64;
        p.avg_degree = 4.0;
        p.seed = rng.Next();
        m = sparse::GenerateErdosRenyi(p);
      } else if (pick < 7) {  // medium R-MAT squaring
        sparse::RmatParams p;
        p.scale = 7;
        p.edge_factor = 8.0;
        p.seed = rng.Next();
        m = sparse::GenerateRmat(p);
      } else {  // occasional large out-of-core job
        sparse::RmatParams p;
        p.scale = 9;
        p.edge_factor = 8.0;
        p.seed = rng.Next();
        m = sparse::GenerateRmat(p);
      }
      job.a = std::make_shared<const sparse::Csr>(std::move(m));
      job.b = job.a;
    }
    if (adm.gpu_ratio > 0.0) job.options.exec.gpu_ratio = adm.gpu_ratio;
    job.options.priority = static_cast<int>(rng.Next() % 4);
    job.options.virtual_arrival = load > 0.0 ? i / load : 0.0;
    pending.push_back({job.a, job.b, server.Submit(std::move(job))});
  }
  server.Drain();

  int verify_failures = 0;
  for (auto& p : pending) {
    serve::JobResult r = p.future.get();
    if (!r.ok()) {
      std::printf("job %llu: %s (%s)\n",
                  static_cast<unsigned long long>(r.metrics.id),
                  serve::JobOutcomeName(r.metrics.outcome),
                  r.status.ToString().c_str());
      continue;
    }
    if (args.Has("verify") &&
        !r.c.ApproxEquals(kernels::ReferenceSpgemm(*p.a, *p.b))) {
      std::fprintf(stderr, "VERIFY FAILED: job %llu\n",
                   static_cast<unsigned long long>(r.metrics.id));
      ++verify_failures;
    }
  }

  serve::ServerReport report = server.Report();
  std::printf("%s\n", report.DebugString().c_str());
  if (args.Has("report")) {
    std::ofstream out(args.Flag("report", ""));
    out << report.ToJson() << "\n";
    std::printf("report: %s\n", args.Flag("report", "").c_str());
  }
  if (args.Has("verify")) {
    if (verify_failures > 0) return 1;
    std::printf("verify: OK\n");
  }
  if (args.Has("metrics-out")) {
    // The server's Shutdown writes the terminal snapshot; trigger it now so
    // the exported files are complete before we report the paths.
    server.Shutdown();
    std::printf("metrics: %s (+ .json)\n",
                args.Flag("metrics-out", "").c_str());
  }
  return report.device_oom_failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.positional.empty()) return Usage();
  const std::string& cmd = args.positional[0];
  if (cmd == "generate") return Generate(args);
  if (cmd == "analyze") return Analyze(args);
  if (cmd == "multiply") return Multiply(args);
  if (cmd == "serve") return Serve(args);
  return Usage();
}
