#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace oocgemm {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(7, 1), b(7, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BelowIsInRange) {
  Pcg32 rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(37), 37u);
  }
}

TEST(Pcg32, BelowOneAlwaysZero) {
  Pcg32 rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Pcg32, BelowCoversRange) {
  Pcg32 rng(5);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, BelowRoughlyUniform) {
  Pcg32 rng(17);
  constexpr int kBuckets = 10, kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(29);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 3.5);
  }
}

TEST(Pcg32, BernoulliExtremes) {
  Pcg32 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Pcg32, Below64InRange) {
  Pcg32 rng(37);
  const std::uint64_t bound = 1ull << 40;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below64(bound), bound);
}

}  // namespace
}  // namespace oocgemm
