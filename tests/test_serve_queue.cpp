// The bounded priority queue between admission and the scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/job_queue.hpp"

namespace oocgemm::serve {
namespace {

TEST(BoundedJobQueue, PriorityFirstThenFifo) {
  BoundedJobQueue<int> q(16);
  ASSERT_TRUE(q.TryPush(0, 100));
  ASSERT_TRUE(q.TryPush(5, 200));
  ASSERT_TRUE(q.TryPush(5, 201));
  ASSERT_TRUE(q.TryPush(1, 300));
  EXPECT_EQ(q.Pop(), 200);  // highest priority, earliest
  EXPECT_EQ(q.Pop(), 201);  // FIFO within the class
  EXPECT_EQ(q.Pop(), 300);
  EXPECT_EQ(q.Pop(), 100);
}

TEST(BoundedJobQueue, BoundRejectsOverflow) {
  BoundedJobQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(0, 1));
  EXPECT_TRUE(q.TryPush(0, 2));
  EXPECT_FALSE(q.TryPush(0, 3));
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_TRUE(q.TryPush(0, 3));
}

TEST(BoundedJobQueue, CloseDrainsThenReturnsNullopt) {
  BoundedJobQueue<int> q(4);
  q.TryPush(0, 1);
  q.TryPush(0, 2);
  q.Close();
  EXPECT_FALSE(q.TryPush(0, 3));  // closed: no new work
  EXPECT_EQ(q.Pop(), 1);          // but queued work still drains
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedJobQueue, CloseWakesBlockedPopper) {
  BoundedJobQueue<int> q(4);
  std::optional<int> got = 42;
  std::thread popper([&] { got = q.Pop(); });
  q.Close();
  popper.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(BoundedJobQueue, BlockingPushWaitsForSpaceFromPop) {
  BoundedJobQueue<int> q(2);
  ASSERT_TRUE(q.TryPush(0, 1));
  ASSERT_TRUE(q.TryPush(0, 2));
  bool pushed = false;
  std::thread producer([&] { pushed = q.Push(0, 3); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed);  // still saturated
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(q.size(), 2u);
}

// Regression: ExtractIf used to remove items without signalling producers
// blocked on a full queue — the batch former could peel companions and
// leave a submitter waiting forever on space that already existed.
TEST(BoundedJobQueue, ExtractIfWakesBlockedProducers) {
  BoundedJobQueue<int> q(2);
  ASSERT_TRUE(q.TryPush(0, 1));
  ASSERT_TRUE(q.TryPush(0, 2));
  std::vector<std::thread> producers;
  std::atomic<int> pushed{0};
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&q, &pushed, p] {
      if (q.Push(0, 10 + p)) pushed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 0);  // both blocked on the saturated queue
  // Peel everything, Pop nothing: only ExtractIf's wakeup can free them.
  const std::vector<int> peeled =
      q.ExtractIf([](const int&) { return true; }, 2);
  EXPECT_EQ(peeled.size(), 2u);
  for (auto& t : producers) t.join();
  EXPECT_EQ(pushed.load(), 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedJobQueue, BlockingPushTimesOutOnSaturatedQueue) {
  BoundedJobQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0, 1));
  EXPECT_FALSE(q.Push(0, 2, /*timeout_seconds=*/0.02));
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedJobQueue, CloseWakesBlockedPusher) {
  BoundedJobQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(0, 1));
  bool result = true;
  std::thread producer([&] { result = q.Push(0, 2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
  EXPECT_FALSE(result);  // closed queues refuse new work
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedJobQueue, ConcurrentProducersConsumersSeeEveryItem) {
  BoundedJobQueue<int> q(1024);
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(p, p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> seen;
  std::mutex seen_mutex;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        std::unique_lock<std::mutex> lock(seen_mutex);
        seen.push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), 3u * kPerProducer);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace oocgemm::serve
