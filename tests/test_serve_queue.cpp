// The bounded priority queue between admission and the scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/job_queue.hpp"

namespace oocgemm::serve {
namespace {

TEST(BoundedJobQueue, PriorityFirstThenFifo) {
  BoundedJobQueue<int> q(16);
  ASSERT_TRUE(q.TryPush(0, 100));
  ASSERT_TRUE(q.TryPush(5, 200));
  ASSERT_TRUE(q.TryPush(5, 201));
  ASSERT_TRUE(q.TryPush(1, 300));
  EXPECT_EQ(q.Pop(), 200);  // highest priority, earliest
  EXPECT_EQ(q.Pop(), 201);  // FIFO within the class
  EXPECT_EQ(q.Pop(), 300);
  EXPECT_EQ(q.Pop(), 100);
}

TEST(BoundedJobQueue, BoundRejectsOverflow) {
  BoundedJobQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(0, 1));
  EXPECT_TRUE(q.TryPush(0, 2));
  EXPECT_FALSE(q.TryPush(0, 3));
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_TRUE(q.TryPush(0, 3));
}

TEST(BoundedJobQueue, CloseDrainsThenReturnsNullopt) {
  BoundedJobQueue<int> q(4);
  q.TryPush(0, 1);
  q.TryPush(0, 2);
  q.Close();
  EXPECT_FALSE(q.TryPush(0, 3));  // closed: no new work
  EXPECT_EQ(q.Pop(), 1);          // but queued work still drains
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedJobQueue, CloseWakesBlockedPopper) {
  BoundedJobQueue<int> q(4);
  std::optional<int> got = 42;
  std::thread popper([&] { got = q.Pop(); });
  q.Close();
  popper.join();
  EXPECT_EQ(got, std::nullopt);
}

TEST(BoundedJobQueue, ConcurrentProducersConsumersSeeEveryItem) {
  BoundedJobQueue<int> q(1024);
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!q.TryPush(p, p * kPerProducer + i)) {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<int> seen;
  std::mutex seen_mutex;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        std::unique_lock<std::mutex> lock(seen_mutex);
        seen.push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), 3u * kPerProducer);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

}  // namespace
}  // namespace oocgemm::serve
