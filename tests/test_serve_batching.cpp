// Serving-layer regression tests for operand-aware batching and the
// device-reservation accounting fixes:
//  * batches form only among jobs sharing B, and their results are exact;
//  * the arbiter's reservation ledger balances to zero — with zero
//    underflows — after mixed CPU/GPU workloads;
//  * a refused TryReserve degrades kAuto jobs to the CPU instead of
//    overcommitting, and fails explicit-GPU jobs loudly after a bounded
//    wait;
//  * a timeout that fires while the job is still queued reports
//    executed == false (no executor ever saw it).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "kernels/reference_spgemm.hpp"
#include "serve/batching.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace oocgemm::serve {
namespace {

using sparse::Csr;

std::shared_ptr<const Csr> Shared(Csr m) {
  return std::make_shared<const Csr>(std::move(m));
}

struct SharedOperandWorkload {
  std::shared_ptr<const Csr> b;
  std::vector<std::shared_ptr<const Csr>> as;

  explicit SharedOperandWorkload(int jobs) {
    b = Shared(testutil::RandomRmat(9, 8.0, 50));
    for (int i = 0; i < jobs; ++i) {
      as.push_back(Shared(testutil::RandomCsr(b->rows(), b->rows(), 6.0,
                                              500 + i)));
    }
  }
};

/// Runs the workload's jobs (as explicit async-GPU requests) behind a
/// CPU-only blocker that holds the single worker long enough for the queue
/// to fill, so batch formation is deterministic.  Returns the report.
ServerReport RunSharedOperandWorkload(const SharedOperandWorkload& w,
                                      int max_batch_jobs,
                                      std::vector<JobResult>* results) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.scheduler.max_batch_jobs = max_batch_jobs;
  config.max_queue = 64;
  SpgemmServer server(device, pool, config);

  auto blocker = Shared(testutil::RandomRmat(9, 8.0, 51));
  SpgemmJob blocker_job{blocker, blocker, {}};
  blocker_job.options.mode = core::ExecutionMode::kCpuOnly;
  auto blocker_future = server.Submit(std::move(blocker_job));

  std::vector<std::future<JobResult>> futures;
  for (const auto& a : w.as) {
    SpgemmJob job{a, w.b, {}};
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(job)));
  }
  server.Drain();

  (void)blocker_future.get();
  if (results != nullptr) {
    for (auto& f : futures) results->push_back(f.get());
  }
  EXPECT_EQ(server.arbiter().reserved_bytes(), 0);
  EXPECT_EQ(server.arbiter().unreserve_underflows(), 0);
  return server.Report();
}

TEST(ServeBatching, SharedOperandJobsBatchAndMatchReference) {
  SharedOperandWorkload w(6);
  std::vector<JobResult> results;
  ServerReport report = RunSharedOperandWorkload(w, /*max_batch_jobs=*/8,
                                                 &results);

  ASSERT_EQ(results.size(), 6u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status.ToString();
    EXPECT_TRUE(testutil::CsrNear(
        results[i].c, kernels::ReferenceSpgemm(*w.as[i], *w.b)));
  }
  // The blocker held the worker, so the six companions were all queued and
  // formed one batch.
  EXPECT_GE(report.batches, 1);
  EXPECT_GE(report.batched_jobs, 2);
  EXPECT_GE(report.avg_batch_size, 2.0);
  int batched_members = 0;
  for (const JobResult& r : results) {
    if (r.metrics.batch_size > 1) ++batched_members;
    EXPECT_TRUE(r.metrics.executed);
  }
  EXPECT_GE(batched_members, 2);
}

TEST(ServeBatching, BatchingReducesBPanelUploads) {
  SharedOperandWorkload w(6);
  std::vector<JobResult> unbatched_results, batched_results;
  ServerReport unbatched =
      RunSharedOperandWorkload(w, /*max_batch_jobs=*/1, &unbatched_results);
  ServerReport batched =
      RunSharedOperandWorkload(w, /*max_batch_jobs=*/8, &batched_results);

  EXPECT_EQ(unbatched.batches, 0);
  EXPECT_GE(batched.batches, 1);
  // Same jobs, same operands: batching must strictly reduce B-panel H2D
  // traffic (the shared panels upload once per batch, not once per job).
  EXPECT_GT(unbatched.b_panel_uploads, 0);
  EXPECT_LT(batched.b_panel_uploads, unbatched.b_panel_uploads);
  // And the products stay identical.
  for (std::size_t i = 0; i < batched_results.size(); ++i) {
    EXPECT_TRUE(testutil::CsrNear(batched_results[i].c,
                                  unbatched_results[i].c));
  }
}

TEST(ServeBatching, MixedOperandQueueDoesNotOverBatch) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.scheduler.max_batch_jobs = 8;
  config.max_queue = 64;
  SpgemmServer server(device, pool, config);

  auto blocker = Shared(testutil::RandomRmat(9, 8.0, 61));
  SpgemmJob blocker_job{blocker, blocker, {}};
  blocker_job.options.mode = core::ExecutionMode::kCpuOnly;
  auto fb = server.Submit(std::move(blocker_job));

  // Every job multiplies against its own B: nothing shares an operand, so
  // no batch may form even though all jobs are queued together.
  std::vector<std::future<JobResult>> futures;
  std::vector<std::shared_ptr<const Csr>> operands;
  for (int i = 0; i < 5; ++i) {
    auto m = Shared(testutil::RandomCsr(256, 256, 6.0, 700 + i));
    operands.push_back(m);
    SpgemmJob job{m, m, {}};
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(job)));
  }
  server.Drain();
  (void)fb.get();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    JobResult r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.metrics.batch_size, 1);
    EXPECT_TRUE(testutil::CsrNear(
        r.c, kernels::ReferenceSpgemm(*operands[i], *operands[i])));
  }
  EXPECT_EQ(server.Report().batches, 0);
}

TEST(ServeBatching, ExtractIfPeelsMatchesInOrderAndKeepsOthers) {
  BoundedJobQueue<int> queue(16);
  for (int v : {10, 21, 32, 43, 54}) {
    ASSERT_TRUE(queue.TryPush(/*priority=*/0, v));
  }
  // Peel even values, capped at 2: takes 10 and 32, leaves 54 behind.
  auto even = queue.ExtractIf([](int v) { return v % 2 == 0; }, 2);
  ASSERT_EQ(even.size(), 2u);
  EXPECT_EQ(even[0], 10);
  EXPECT_EQ(even[1], 32);
  EXPECT_EQ(queue.size(), 3u);
  // FIFO order of the remainder is preserved.
  EXPECT_EQ(*queue.Pop(), 21);
  EXPECT_EQ(*queue.Pop(), 43);
  EXPECT_EQ(*queue.Pop(), 54);
}

// --- reservation accounting -------------------------------------------------

TEST(ServeReservations, LedgerBalancesToZeroAfterMixedWorkload) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 2;
  SpgemmServer server(device, pool, config);

  // Mixed routes: explicit CPU (never touches the ledger), explicit GPU,
  // auto small and auto large (hybrid) jobs, several of each.
  auto small = Shared(testutil::RandomCsr(48, 48, 3.0, 80));
  auto big = Shared(testutil::RandomRmat(9, 8.0, 81));
  std::vector<std::future<JobResult>> futures;
  for (int round = 0; round < 3; ++round) {
    SpgemmJob cpu{small, small, {}};
    cpu.options.mode = core::ExecutionMode::kCpuOnly;
    futures.push_back(server.Submit(std::move(cpu)));
    SpgemmJob gpu{big, big, {}};
    gpu.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(gpu)));
    futures.push_back(server.Submit({small, small, {}}));  // auto small
    futures.push_back(server.Submit({big, big, {}}));      // auto large
  }
  server.Drain();
  for (auto& f : futures) {
    JobResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }

  // The fix under test: CPU-routed jobs used to Unreserve bytes they never
  // reserved, draining the ledger below zero (masked by clamping).  Now
  // reservations balance exactly and no underflow was ever clamped.
  EXPECT_EQ(server.arbiter().reserved_bytes(), 0);
  EXPECT_EQ(server.arbiter().unreserve_underflows(), 0);
}

TEST(ServeReservations, AutoJobDegradesToCpuOnReserveShortfall) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  SpgemmServer server(device, pool, config);

  // Claim the entire device up front so every scheduler TryReserve fails.
  const std::int64_t capacity = device.capacity();
  ASSERT_TRUE(server.arbiter().TryReserve(capacity));

  auto big = Shared(testutil::RandomRmat(9, 8.0, 90));
  JobResult r = server.Submit({big, big, {}}).get();  // kAuto, multi-chunk
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_EQ(r.metrics.executor, core::ExecutionMode::kCpuOnly);
  EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*big, *big)));

  ServerReport report = server.Report();
  EXPECT_GE(report.reserve_shortfalls, 1);
  EXPECT_EQ(report.device_oom_failures, 0);

  server.arbiter().Unreserve(capacity);
  EXPECT_EQ(server.arbiter().reserved_bytes(), 0);
  EXPECT_EQ(server.arbiter().unreserve_underflows(), 0);
}

TEST(ServeReservations, ExplicitGpuJobFailsLoudlyOnReserveShortfall) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.scheduler.reserve_wait_seconds = 0.01;  // keep the test fast
  config.scheduler.reserve_poll_seconds = 0.001;
  SpgemmServer server(device, pool, config);

  const std::int64_t capacity = device.capacity();
  ASSERT_TRUE(server.arbiter().TryReserve(capacity));

  auto big = Shared(testutil::RandomRmat(9, 8.0, 91));
  SpgemmJob job{big, big, {}};
  job.options.mode = core::ExecutionMode::kGpuOutOfCore;
  JobResult r = server.Submit(std::move(job)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.metrics.outcome, JobOutcome::kFailed);
  EXPECT_GE(server.Report().reserve_shortfalls, 1);

  // Freeing the stale reservation unblocks the same request.
  server.arbiter().Unreserve(capacity);
  SpgemmJob retry{big, big, {}};
  retry.options.mode = core::ExecutionMode::kGpuOutOfCore;
  JobResult ok = server.Submit(std::move(retry)).get();
  ASSERT_TRUE(ok.ok()) << ok.status.ToString();
  EXPECT_EQ(server.arbiter().reserved_bytes(), 0);
  EXPECT_EQ(server.arbiter().unreserve_underflows(), 0);
}

// --- queued timeouts --------------------------------------------------------

TEST(ServeTimeouts, QueuedExpiryReportsNotExecuted) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  SpgemmServer server(device, pool, config);

  // The blocker occupies the lone worker for far longer than the victim's
  // timeout, so the victim expires while still queued.
  auto blocker = Shared(testutil::RandomRmat(10, 8.0, 95));
  auto fb = server.Submit({blocker, blocker, {}});

  auto small = Shared(testutil::RandomCsr(32, 32, 2.0, 96));
  SpgemmJob victim{small, small, {}};
  victim.options.timeout_seconds = 0.002;
  JobResult r = server.Submit(std::move(victim)).get();
  (void)fb.get();

  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.metrics.outcome, JobOutcome::kTimedOut);
  // The fix under test: the job never reached an executor, and the metrics
  // now say so instead of reporting a default-constructed executor.
  EXPECT_FALSE(r.metrics.executed);

  ServerReport report = server.Report();
  EXPECT_GE(report.timed_out, 1);
  EXPECT_GE(report.timed_out_in_queue, 1);
  EXPECT_EQ(server.arbiter().reserved_bytes(), 0);
  EXPECT_EQ(server.arbiter().unreserve_underflows(), 0);
}

}  // namespace
}  // namespace oocgemm::serve
