// Fault-injection layer tests: trigger policies (probability / nth /
// one-shot / label filter), spec parsing, seed determinism — the same seed
// must reproduce the identical fault schedule — and the CUDA-style sticky
// error semantics the injector drives on a vgpu::Device.
#include "vgpu/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "vgpu/device.hpp"

namespace oocgemm::vgpu {
namespace {

DeviceProperties SmallProps() {
  DeviceProperties p;
  p.memory_bytes = 1 << 20;
  return p;
}

// --- FaultSpec::Parse -------------------------------------------------------

TEST(FaultSpecParse, SitesTriggersAndActions) {
  auto spec = FaultSpec::Parse(
      "kernel:nth=40,h2d:p=0.05:fail,alloc:once:corrupt,d2h:nth=2:delay=0.25",
      /*seed=*/7);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->rules.size(), 4u);
  EXPECT_EQ(spec->seed, 7u);

  EXPECT_EQ(spec->rules[0].site, FaultSite::kKernel);
  EXPECT_EQ(spec->rules[0].nth, 40);
  EXPECT_EQ(spec->rules[0].action, FaultAction::kKillDevice);  // default

  EXPECT_EQ(spec->rules[1].site, FaultSite::kH2D);
  EXPECT_DOUBLE_EQ(spec->rules[1].probability, 0.05);
  EXPECT_EQ(spec->rules[1].action, FaultAction::kFail);

  EXPECT_EQ(spec->rules[2].site, FaultSite::kAlloc);
  EXPECT_TRUE(spec->rules[2].one_shot);
  EXPECT_EQ(spec->rules[2].action, FaultAction::kCorrupt);

  EXPECT_EQ(spec->rules[3].site, FaultSite::kD2H);
  EXPECT_EQ(spec->rules[3].action, FaultAction::kDelay);
  EXPECT_DOUBLE_EQ(spec->rules[3].delay_seconds, 0.25);
}

TEST(FaultSpecParse, RejectsBadInput) {
  EXPECT_FALSE(FaultSpec::Parse("warp:nth=1", 1).ok());      // unknown site
  EXPECT_FALSE(FaultSpec::Parse("kernel:nth=0", 1).ok());    // nth < 1
  EXPECT_FALSE(FaultSpec::Parse("h2d:p=1.5", 1).ok());       // p out of range
  EXPECT_FALSE(FaultSpec::Parse("h2d:p=abc", 1).ok());       // not a number
  EXPECT_FALSE(FaultSpec::Parse("kernel:fail", 1).ok());     // no trigger
  EXPECT_FALSE(FaultSpec::Parse("kernel:nth=1:zap", 1).ok());  // unknown field
}

TEST(FaultSpecParse, EmptyTextMeansNoRules) {
  auto spec = FaultSpec::Parse("", 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->rules.empty());
}

// --- trigger policies -------------------------------------------------------

TEST(FaultInjector, NthFiresExactlyOnceOnTheNthSiteOp) {
  FaultInjector inj(FaultSpec::Parse("kernel:nth=3:fail", 1).value());
  for (int op = 1; op <= 10; ++op) {
    auto fired = inj.Evaluate(FaultSite::kKernel, "k");
    EXPECT_EQ(fired.has_value(), op == 3) << "op " << op;
  }
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].site, FaultSite::kKernel);
  EXPECT_EQ(inj.log()[0].action, FaultAction::kFail);
  EXPECT_EQ(inj.ops_seen(FaultSite::kKernel), 10);
}

TEST(FaultInjector, NthCountsPerSiteNotGlobally) {
  FaultInjector inj(FaultSpec::Parse("d2h:nth=2:fail", 1).value());
  EXPECT_FALSE(inj.Evaluate(FaultSite::kH2D, "up"));  // other site: no count
  EXPECT_FALSE(inj.Evaluate(FaultSite::kD2H, "down"));
  EXPECT_FALSE(inj.Evaluate(FaultSite::kH2D, "up"));
  EXPECT_TRUE(inj.Evaluate(FaultSite::kD2H, "down"));  // 2nd d2h op
}

TEST(FaultInjector, OneShotFiresOnFirstMatchThenDisarms) {
  FaultInjector inj(FaultSpec::Parse("h2d:once:fail", 1).value());
  EXPECT_TRUE(inj.Evaluate(FaultSite::kH2D, "a"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(inj.Evaluate(FaultSite::kH2D, "b"));
  }
}

TEST(FaultInjector, LabelSubstringFilters) {
  FaultInjector inj(
      FaultSpec::Parse("kernel:once:label=numeric:fail", 1).value());
  EXPECT_FALSE(inj.Evaluate(FaultSite::kKernel, "symbolic:chunk3"));
  auto fired = inj.Evaluate(FaultSite::kKernel, "numeric:chunk3");
  ASSERT_TRUE(fired);
  EXPECT_EQ(fired->action, FaultAction::kFail);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].label, "numeric:chunk3");
}

TEST(FaultInjector, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
  FaultInjector never(FaultSpec::Parse("kernel:p=0", 1).value());
  FaultInjector always(FaultSpec::Parse("kernel:p=1:fail", 1).value());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.Evaluate(FaultSite::kKernel, "k"));
    EXPECT_TRUE(always.Evaluate(FaultSite::kKernel, "k"));
  }
  EXPECT_EQ(always.log().size(), 100u);
}

TEST(FaultInjector, KillFreezesTheSchedule) {
  FaultInjector inj(FaultSpec::Parse("kernel:nth=2:kill", 1).value());
  EXPECT_FALSE(inj.Evaluate(FaultSite::kKernel, "k"));
  auto fired = inj.Evaluate(FaultSite::kKernel, "k");
  ASSERT_TRUE(fired);
  EXPECT_EQ(fired->action, FaultAction::kKillDevice);
  EXPECT_TRUE(inj.device_dead());
  // A lost device stops counting: ops on it never advance the schedule.
  EXPECT_FALSE(inj.Evaluate(FaultSite::kKernel, "k"));
  EXPECT_EQ(inj.ops_seen(FaultSite::kKernel), 2);
  inj.Revive();
  EXPECT_FALSE(inj.device_dead());
  EXPECT_FALSE(inj.Evaluate(FaultSite::kKernel, "k"));
  EXPECT_EQ(inj.ops_seen(FaultSite::kKernel), 3);
}

TEST(FaultInjector, FirstFiringRuleWins) {
  FaultInjector inj(
      FaultSpec::Parse("h2d:nth=1:delay=0.5,h2d:nth=1:fail", 1).value());
  auto fired = inj.Evaluate(FaultSite::kH2D, "x");
  ASSERT_TRUE(fired);
  EXPECT_EQ(fired->action, FaultAction::kDelay);
  ASSERT_EQ(inj.log().size(), 1u);
  EXPECT_EQ(inj.log()[0].rule_index, 0u);
}

// --- determinism ------------------------------------------------------------

std::vector<FaultRecord> DriveSchedule(FaultInjector& inj) {
  // A fixed mixed-site op sequence; probability rules must fire at the
  // same positions every time the same seed replays it.
  for (int i = 0; i < 200; ++i) {
    inj.Evaluate(FaultSite::kAlloc, "a" + std::to_string(i % 7));
    inj.Evaluate(FaultSite::kH2D, "h" + std::to_string(i % 5));
    inj.Evaluate(FaultSite::kKernel, "k" + std::to_string(i % 3));
    inj.Evaluate(FaultSite::kD2H, "d" + std::to_string(i % 2));
  }
  return inj.log();
}

bool SameSchedule(const std::vector<FaultRecord>& x,
                  const std::vector<FaultRecord>& y) {
  if (x.size() != y.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i].op_index != y[i].op_index || x[i].site != y[i].site ||
        x[i].action != y[i].action || x[i].rule_index != y[i].rule_index ||
        x[i].label != y[i].label) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjector, SameSeedReproducesTheIdenticalSchedule) {
  const auto spec =
      FaultSpec::Parse("h2d:p=0.1:fail,kernel:p=0.05:fail,d2h:p=0.2:corrupt",
                       /*seed=*/42)
          .value();
  FaultInjector first(spec);
  FaultInjector second(spec);
  const auto log1 = DriveSchedule(first);
  const auto log2 = DriveSchedule(second);
  EXPECT_FALSE(log1.empty());  // 800 ops at these rates: some fire
  EXPECT_TRUE(SameSchedule(log1, log2));
}

TEST(FaultInjector, DifferentSeedsProduceDifferentSchedules) {
  const std::string rules = "h2d:p=0.1:fail,kernel:p=0.05:fail";
  FaultInjector a(FaultSpec::Parse(rules, 1).value());
  FaultInjector b(FaultSpec::Parse(rules, 2).value());
  EXPECT_FALSE(SameSchedule(DriveSchedule(a), DriveSchedule(b)));
}

TEST(FaultInjector, RuleStreamsAreIndependent) {
  // Adding an unrelated rule must not perturb where an existing
  // probability rule fires (per-rule PCG32 streams).
  FaultInjector lone(FaultSpec::Parse("kernel:p=0.1:fail", 9).value());
  FaultInjector joined(
      FaultSpec::Parse("kernel:p=0.1:fail,d2h:nth=5:fail", 9).value());
  const auto lone_log = DriveSchedule(lone);
  std::vector<FaultRecord> joined_kernel;
  for (const FaultRecord& r : DriveSchedule(joined)) {
    if (r.site == FaultSite::kKernel) joined_kernel.push_back(r);
  }
  ASSERT_FALSE(lone_log.empty());
  ASSERT_EQ(lone_log.size(), joined_kernel.size());
  for (std::size_t i = 0; i < lone_log.size(); ++i) {
    EXPECT_EQ(lone_log[i].label, joined_kernel[i].label);
  }
}

// --- device integration: sticky errors --------------------------------------

TEST(DeviceFaults, InjectedAllocFailureIsResourceExhausted) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("alloc:nth=2:fail", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  ASSERT_TRUE(d.Malloc(host, 1024, "first").ok());
  auto second = d.Malloc(host, 1024, "second");
  ASSERT_FALSE(second.ok());
  // Distinct from a genuine kOutOfMemory: pools treat OOM as a planner
  // bug, but an injected failure is an environment fault.
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(d.dead());
  ASSERT_TRUE(d.Malloc(host, 1024, "third").ok());
}

TEST(DeviceFaults, KernelKillMakesDeviceDeadUntilRevive) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("kernel:nth=2:kill", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  Stream* s = d.CreateStream("t");
  int runs = 0;
  d.LaunchKernel(host, *s, "k1", 1e-6, {}, [&] { ++runs; });
  EXPECT_TRUE(d.health().ok());
  d.LaunchKernel(host, *s, "k2", 1e-6, {}, [&] { ++runs; });
  EXPECT_EQ(runs, 1);  // the killed launch's body never ran
  EXPECT_TRUE(d.dead());
  EXPECT_EQ(d.health().code(), StatusCode::kUnavailable);

  // Dead device: later ops vanish, allocations are refused, and
  // ResetTimeline does NOT resurrect it.
  d.LaunchKernel(host, *s, "k3", 1e-6, {}, [&] { ++runs; });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(d.Malloc(host, 64, "post").status().code(),
            StatusCode::kUnavailable);
  d.ResetTimeline();
  EXPECT_TRUE(d.dead());

  d.Revive();
  EXPECT_TRUE(d.health().ok());
  Stream* s2 = d.CreateStream("t2");
  d.LaunchKernel(host, *s2, "k4", 1e-6, {}, [&] { ++runs; });
  EXPECT_EQ(runs, 2);
}

TEST(DeviceFaults, TransientFaultClearsOnResetTimelineDeadDoesNot) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("kernel:nth=1:fail", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 1e-6, {}, [] {});
  EXPECT_EQ(d.health().code(), StatusCode::kInternal);
  EXPECT_FALSE(d.dead());
  d.ResetTimeline();  // every executor does this at run start
  EXPECT_TRUE(d.health().ok());
}

TEST(DeviceFaults, CorruptedTransferScramblesBytesAndSetsDataLoss) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("h2d:nth=1:corrupt", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  auto p = d.Malloc(host, 256, "buf");
  ASSERT_TRUE(p.ok());
  std::vector<char> src(256, 'x');
  std::vector<char> dst(256, 0);
  d.MemcpyH2D(host, p.value(), src.data(), 256, "up");
  EXPECT_EQ(d.health().code(), StatusCode::kDataLoss);  // detected, never silent
  // Disarm leaves the next transfer clean; read the corrupted bytes back.
  d.MemcpyD2H(host, dst.data(), p.value(), 256, "down");
  EXPECT_NE(0, std::memcmp(src.data(), dst.data(), 256));
}

TEST(DeviceFaults, DelayAddsVirtualTimeButSucceeds) {
  Device plain(SmallProps());
  Device slowed(SmallProps());
  FaultInjector inj(FaultSpec::Parse("kernel:nth=1:delay=0.125", 1).value());
  slowed.set_fault_injector(&inj);
  auto run = [](Device& d) {
    HostContext host;
    Stream* s = d.CreateStream("t");
    bool ran = false;
    d.LaunchKernel(host, *s, "k", 1e-6, {}, [&] { ran = true; });
    d.DeviceSynchronize(host);
    EXPECT_TRUE(ran);
    EXPECT_TRUE(d.health().ok());
    return host.now;
  };
  const double base = run(plain);
  const double delayed = run(slowed);
  EXPECT_NEAR(delayed - base, 0.125, 1e-9);
}

TEST(DeviceFaults, FiredFaultsAppearInTheTrace) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("kernel:nth=1:fail", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 1e-6, {}, [] {});
  int fault_events = 0;
  for (const TraceEvent& e : d.trace().events()) {
    if (e.category == OpCategory::kFault) ++fault_events;
  }
  EXPECT_EQ(fault_events, 1);
}

TEST(DeviceFaults, FreeOnDeadDeviceStillBalancesTheArena) {
  Device d(SmallProps());
  FaultInjector inj(FaultSpec::Parse("kernel:once:kill", 1).value());
  d.set_fault_injector(&inj);
  HostContext host;
  auto p = d.Malloc(host, 4096, "buf");
  ASSERT_TRUE(p.ok());
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 1e-6, {}, [] {});
  ASSERT_TRUE(d.dead());
  d.Free(host, p.value());  // bookkeeping must survive device loss
  EXPECT_EQ(d.used_bytes(), 0);
}

}  // namespace
}  // namespace oocgemm::vgpu
