#include "common/status.hpp"

#include <gtest/gtest.h>

namespace oocgemm {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status st = Status::OutOfMemory("pool full");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.message(), "pool full");
  EXPECT_EQ(st.ToString(), "OUT_OF_MEMORY: pool full");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfMemory,
        StatusCode::kNotFound, StatusCode::kIoError,
        StatusCode::kFailedPrecondition, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kCancelled,
        StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(c), "UNKNOWN");
  }
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrDeath, ValueOnErrorAborts) {
  StatusOr<int> v = Status::Internal("boom");
  EXPECT_DEATH({ (void)v.value(); }, "StatusOr accessed without value");
}

TEST(ReturnIfError, PropagatesAndPasses) {
  auto fails = [] { return Status::IoError("disk"); };
  auto passes = [] { return Status::Ok(); };
  auto wrapper = [&](bool fail) -> Status {
    OOC_RETURN_IF_ERROR(fail ? fails() : passes());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper(true).code(), StatusCode::kIoError);
  EXPECT_EQ(wrapper(false).code(), StatusCode::kInvalidArgument);
}

TEST(CheckMacroDeath, FailsLoudly) {
  EXPECT_DEATH(OOC_CHECK(1 == 2), "OOC_CHECK failed");
}

}  // namespace
}  // namespace oocgemm
