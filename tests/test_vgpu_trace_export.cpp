#include "vgpu/trace_export.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace oocgemm::vgpu {
namespace {

Trace MakeTrace() {
  Trace t;
  t.Add({OpCategory::kKernel, "chunk[0,0].numeric", 1, Interval{1e-3, 2e-3}, 0});
  t.Add({OpCategory::kD2H, "payload \"half\"", 0, Interval{1.5e-3, 4e-3}, 4096});
  return t;
}

TEST(TraceExport, ContainsLaneMetadata) {
  const std::string json = ToChromeTraceJson(MakeTrace());
  EXPECT_NE(json.find("\"compute engine\""), std::string::npos);
  EXPECT_NE(json.find("\"D2H engine\""), std::string::npos);
  EXPECT_NE(json.find("\"H2D engine\""), std::string::npos);
}

TEST(TraceExport, EmitsCompleteEventsInMicroseconds) {
  const std::string json = ToChromeTraceJson(MakeTrace());
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);   // 1 ms
  EXPECT_NE(json.find("\"dur\":1000.000"), std::string::npos);  // 1 ms
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(TraceExport, EscapesLabelQuotes) {
  const std::string json = ToChromeTraceJson(MakeTrace());
  EXPECT_NE(json.find("payload \\\"half\\\""), std::string::npos);
}

TEST(TraceExport, EmptyTraceIsValidJsonSkeleton) {
  Trace t;
  const std::string json = ToChromeTraceJson(t);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("]}"), std::string::npos);
}

TEST(TraceExport, BalancedBracesAndBrackets) {
  const std::string json = ToChromeTraceJson(MakeTrace());
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceExport, DeviceIdBecomesProcessId) {
  const std::string json = ToChromeTraceJson(MakeTrace(), 2);
  // Chrome treats pid 0 as the idle process, so device d exports as pid d+1.
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"vgpu device 2\""), std::string::npos);
  EXPECT_NE(json.find("\"device\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"pid\":1,"), std::string::npos);
}

TEST(TraceExport, DefaultDeviceIdIsZero) {
  const std::string json = ToChromeTraceJson(MakeTrace());
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"vgpu device 0\""), std::string::npos);
}

TEST(TraceExport, WritesFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "oocgemm_trace_test.json")
          .string();
  ASSERT_TRUE(WriteChromeTrace(MakeTrace(), path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), ToChromeTraceJson(MakeTrace()));
  std::filesystem::remove(path);
}

TEST(TraceExport, UnwritablePathFails) {
  EXPECT_FALSE(
      WriteChromeTrace(MakeTrace(), "/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace oocgemm::vgpu
