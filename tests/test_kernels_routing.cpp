// Kernel-registry routing tests (PR 8 tentpole + satellite 2): unit tests
// for the cost-model router's decision regions, plus a seeded fuzz pass
// asserting the three routing invariants —
//
//   (a) every row is assigned to exactly one group with exactly one
//       concrete (non-kAuto) strategy,
//   (b) forced and adaptive routing produce identical products,
//   (c) the per-strategy oocgemm_kernel_rows counters reconcile exactly
//       with the routed row totals (reconciliation-style, like the serve
//       admission ledger tests).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/binning.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/reference_spgemm.hpp"
#include "obs/metrics.hpp"
#include "test_util.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;
using sparse::index_t;

TEST(KernelRouting, NamesRoundTripThroughParser) {
  for (AccumulatorKind kind : kAllStrategies) {
    const char* name = AccumulatorKindName(kind);
    auto parsed = ParseAccumulatorKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(ParseAccumulatorKind("auto"), AccumulatorKind::kAuto);
  EXPECT_FALSE(ParseAccumulatorKind("bogus").has_value());
  EXPECT_FALSE(ParseAccumulatorKind("").has_value());
  EXPECT_FALSE(ParseAccumulatorKind("Hash").has_value());  // case-sensitive
}

TEST(KernelRouting, TraitsExposeEveryStrategy) {
  std::set<std::string> names;
  for (AccumulatorKind kind : KernelRegistry::Strategies()) {
    const AccumulatorTraits& t = KernelRegistry::TraitsFor(kind);
    EXPECT_STREQ(t.name, AccumulatorKindName(kind));
    EXPECT_GE(t.setup_cost, 0.0);
    EXPECT_LE(t.min_density, t.max_density);
    EXPECT_LE(t.min_flops, t.max_flops);
    names.insert(t.name);
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumStrategies));
}

TEST(KernelRouting, DecisionRegions) {
  // Empty rows: sort-merge's 2-op setup beats the hash table's 16.
  EXPECT_EQ(KernelRegistry::RouteRow(0, 1000), AccumulatorKind::kSortMerge);
  // Tiny rows stay sort-merge while P*log2(P) is small.
  EXPECT_EQ(KernelRegistry::RouteRow(32, 100000), AccumulatorKind::kSortMerge);
  // Past the ceiling on a sparse wide panel: hash.
  EXPECT_EQ(KernelRegistry::RouteRow(1024, 100000), AccumulatorKind::kHash);
  // High-density rows on a narrow panel: dense accumulation.
  EXPECT_EQ(KernelRegistry::RouteRow(4096, 256), AccumulatorKind::kDense);
  // Heavy row, huge sparse panel: density is far below dense's floor and
  // flops far above merge's; pairwise row merging wins over hashing.
  EXPECT_EQ(KernelRegistry::RouteRow(1 << 20, 1 << 26),
            AccumulatorKind::kRowMerge);
}

TEST(KernelRouting, DenseFeasibilityGate) {
  EXPECT_TRUE(KernelRegistry::StrategyFeasible(AccumulatorKind::kDense, 1024));
  EXPECT_FALSE(KernelRegistry::StrategyFeasible(
      AccumulatorKind::kDense, DenseAccumulator::kMaxFeasibleCols + 1));
  // The sparse strategies have no width limit.
  for (AccumulatorKind kind : {AccumulatorKind::kHash,
                               AccumulatorKind::kSortMerge,
                               AccumulatorKind::kRowMerge}) {
    EXPECT_TRUE(KernelRegistry::StrategyFeasible(kind, INT32_MAX - 1));
  }
  // Routing a dense-looking row at infeasible width must still resolve.
  const AccumulatorKind routed = KernelRegistry::RouteRow(
      /*row_flops=*/1 << 24, DenseAccumulator::kMaxFeasibleCols + 1);
  EXPECT_NE(routed, AccumulatorKind::kDense);
  EXPECT_NE(routed, AccumulatorKind::kAuto);
}

TEST(KernelRouting, ExactNnzOverridesOccupancyEstimate) {
  // A 4096-flop row on a 256-wide panel looks dense under the occupancy
  // model, but an exact post-symbolic nnz of 1 (total duplication) drops
  // density below dense's floor.
  EXPECT_EQ(KernelRegistry::RouteRow(4096, 256), AccumulatorKind::kDense);
  EXPECT_NE(KernelRegistry::RouteRow(4096, 256, /*exact_nnz=*/1),
            AccumulatorKind::kDense);
}

TEST(KernelRouting, HashCostIsFiniteEverywhere) {
  // Hash is the total-coverage fallback: its modeled cost must be finite
  // for any row the fuzzer can produce.
  Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t flops = static_cast<std::int64_t>(rng.NextU32());
    const index_t b_cols = 1 + static_cast<index_t>(rng.Below(1u << 30));
    const double cost = KernelRegistry::ModeledRowCost(
        AccumulatorKind::kHash, flops, /*est_nnz=*/1.0, b_cols);
    ASSERT_TRUE(cost >= 0.0 && cost < 1e30) << "flops=" << flops;
  }
}

/// Fuzz invariant (a): partition totality — every row id lands in exactly
/// one group, and every group has a concrete strategy.
TEST(KernelRouting, FuzzEveryRowGetsExactlyOneStrategy) {
  Pcg32 rng(314159);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::size_t n = 1 + rng.Below(400);
    const index_t b_cols = 1 + static_cast<index_t>(rng.Below(1u << 20));
    std::vector<std::int64_t> flops(n), nnz(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Log-uniform-ish flops spanning all five work classes, inc. empty.
      flops[i] = static_cast<std::int64_t>(rng.NextU32()) >>
                 rng.Below(32);
      nnz[i] = std::min<std::int64_t>(flops[i] / 2, b_cols);
    }
    const bool post_symbolic = rng.Below(2) == 0;
    const RoutedGroups routed =
        RouteRows(flops.data(), flops.data(),
                  post_symbolic ? nnz.data() : nullptr, n, b_cols,
                  AccumulatorKind::kAuto);
    std::set<index_t> seen;
    for (int g = 0; g < kNumRowGroups; ++g) {
      EXPECT_NE(routed.strategy[static_cast<std::size_t>(g)],
                AccumulatorKind::kAuto);
      for (index_t r : routed.groups.groups[static_cast<std::size_t>(g)]) {
        EXPECT_TRUE(seen.insert(r).second) << "row " << r << " in two groups";
      }
    }
    EXPECT_EQ(seen.size(), n);  // no row dropped
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), static_cast<index_t>(n - 1));
  }
}

/// Fuzz invariant (a) continued: a forced strategy applies everywhere,
/// modulo the dense feasibility fallback.
TEST(KernelRouting, FuzzForcedStrategyHonored) {
  Pcg32 rng(27182);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.Below(100);
    std::vector<std::int64_t> flops(n);
    for (std::size_t i = 0; i < n; ++i) flops[i] = rng.Below(100000);
    for (AccumulatorKind forced : kAllStrategies) {
      const RoutedGroups routed = RouteRows(
          flops.data(), flops.data(), nullptr, n, /*b_cols=*/512, forced);
      for (int g = 0; g < kNumRowGroups; ++g) {
        EXPECT_EQ(routed.strategy[static_cast<std::size_t>(g)], forced);
      }
      // Infeasible width: forced dense must fall back to hash, others hold.
      const RoutedGroups gated =
          RouteRows(flops.data(), flops.data(), nullptr, n,
                    DenseAccumulator::kMaxFeasibleCols + 1, forced);
      const AccumulatorKind want = forced == AccumulatorKind::kDense
                                       ? AccumulatorKind::kHash
                                       : forced;
      for (int g = 0; g < kNumRowGroups; ++g) {
        EXPECT_EQ(gated.strategy[static_cast<std::size_t>(g)], want);
      }
    }
  }
}

/// Fuzz invariant (b): adaptive routing is a pure performance decision —
/// the product must equal every forced strategy's product.
TEST(KernelRouting, FuzzAdaptiveMatchesForcedProducts) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Csr a = seed % 2 == 0
                      ? testutil::RandomRmat(6, 5.0, seed)
                      : testutil::RandomCsr(80, 80, 6.0, seed);
    CpuSpgemmOptions auto_opts;
    auto_opts.accumulator = AccumulatorKind::kAuto;
    const Csr adaptive = CpuSpgemmSerial(a, a, auto_opts);
    EXPECT_TRUE(testutil::CsrNear(adaptive, ReferenceSpgemm(a, a), 1e-9));
    for (AccumulatorKind forced : kAllStrategies) {
      SCOPED_TRACE(AccumulatorKindName(forced));
      CpuSpgemmOptions opts;
      opts.accumulator = forced;
      EXPECT_TRUE(testutil::CsrNear(CpuSpgemmSerial(a, a, opts), adaptive, 1e-9));
    }
  }
}

/// Fuzz invariant (c): the per-strategy row counters bumped by the numeric
/// routing pass sum exactly to the number of A rows multiplied —
/// reconciliation in the style of the serve admission ledger.
TEST(KernelRouting, FuzzRowCountersReconcileWithRowTotal) {
  auto& reg = obs::MetricsRegistry::Default();
  reg.ResetForTest();
  Pcg32 rng(161803);
  std::int64_t total_rows = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const index_t rows = 16 + static_cast<index_t>(rng.Below(128));
    const index_t inner = 16 + static_cast<index_t>(rng.Below(64));
    const Csr a = testutil::RandomCsr(rows, inner, 4.0, 900 + trial);
    const Csr b = testutil::RandomCsr(inner, 64, 4.0, 1900 + trial);
    CpuSpgemmOptions opts;
    opts.accumulator = trial % 2 == 0 ? AccumulatorKind::kAuto
                                      : AccumulatorKind::kHash;
    (void)CpuSpgemmSerial(a, b, opts);
    total_rows += rows;
  }
  const obs::RegistrySnapshot snap = reg.Snapshot();
  double counted = 0;
  for (AccumulatorKind kind : kAllStrategies) {
    counted += snap.Value("oocgemm_kernel_rows",
                          {{"strategy", AccumulatorKindName(kind)}});
  }
  EXPECT_EQ(static_cast<std::int64_t>(counted), total_rows);
}

TEST(KernelRouting, RoutedGroupsDebugStringNamesStrategies) {
  std::vector<std::int64_t> flops = {0, 10, 500, 10000, 100000};
  const RoutedGroups routed = RouteRows(flops.data(), flops.data(), nullptr,
                                        flops.size(), /*b_cols=*/1024,
                                        AccumulatorKind::kAuto);
  const std::string s = routed.DebugString();
  EXPECT_NE(s.find("sort"), std::string::npos);  // empty rows route to sort
}

}  // namespace
}  // namespace oocgemm::kernels
