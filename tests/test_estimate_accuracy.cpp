// Property tests for the OCEAN-style sampling estimator: accuracy of the
// structure-only output-nnz estimate against the exact symbolic oracle on
// uniform (Erdos-Renyi) and power-law (R-MAT) structure, error tightening
// with the sample rate, bit-exact determinism in the seed, and the
// reliability signal consumers gate fallback on.
//
// Suites are named Estimate* so the CI TSan job's gtest filter picks them up.
#include "estimate/estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/analysis.hpp"
#include "test_util.hpp"

namespace oocgemm::estimate {
namespace {

double RelError(double est, double exact) {
  return exact > 0.0 ? std::abs(est - exact) / exact : std::abs(est);
}

// Mean relative error of the total output-nnz estimate over several
// generator seeds — individual draws wobble, the mean is the property.
double MeanNnzRelError(bool power_law, double rate, int num_seeds) {
  double total = 0.0;
  for (int s = 0; s < num_seeds; ++s) {
    const sparse::Csr a =
        power_law ? testutil::RandomRmat(11, 8.0, 100 + s)
                  : testutil::RandomCsr(4096, 4096, 8.0, 100 + s);
    EstimatorOptions opts;
    opts.row_sample_fraction = rate;
    opts.seed = 7;
    const ProductEstimate est = EstimateProduct(a, a, opts);
    const double exact = static_cast<double>(sparse::SymbolicNnz(a, a));
    total += RelError(est.total_nnz, exact);
  }
  return total / num_seeds;
}

TEST(EstimateAccuracy, ShortRowProductsAreExact) {
  // Rows with <= max_draws_per_row nonzeros draw every column id, so the
  // per-row product counts — and hence total_flops — are exact, not
  // estimates.  Erdos-Renyi at degree 4 keeps every row under the cap.
  const sparse::Csr a = testutil::RandomCsr(2048, 2048, 4.0, 42);
  std::int64_t max_row = 0;
  for (sparse::index_t i = 0; i < a.rows(); ++i) {
    max_row = std::max<std::int64_t>(max_row, a.row_nnz(i));
  }
  ASSERT_LE(max_row, EstimatorOptions{}.max_draws_per_row);

  const ProductEstimate est = EstimateProduct(a, a);
  EXPECT_DOUBLE_EQ(est.total_flops,
                   static_cast<double>(sparse::TotalFlops(a, a)));
}

TEST(EstimateAccuracy, ErdosRenyiNnzWithinTolerance) {
  EXPECT_LE(MeanNnzRelError(/*power_law=*/false, /*rate=*/0.05, 5), 0.15);
}

TEST(EstimateAccuracy, PowerLawNnzWithinTolerance) {
  EXPECT_LE(MeanNnzRelError(/*power_law=*/true, /*rate=*/0.05, 5), 0.15);
}

TEST(EstimateAccuracy, ErrorTightensWithSampleRate) {
  // More sampled rows, better calibration: a 10x rate increase must not
  // make the mean error worse (small slack absorbs draw noise).
  const double coarse = MeanNnzRelError(/*power_law=*/true, 0.03, 5);
  const double fine = MeanNnzRelError(/*power_law=*/true, 0.30, 5);
  EXPECT_LE(fine, coarse + 0.02);
}

TEST(EstimateDeterminism, SameSeedGivesBitIdenticalEstimates) {
  const sparse::Csr a = testutil::RandomRmat(10, 8.0, 9);
  EstimatorOptions opts;
  opts.seed = 1234;
  const ProductEstimate x = EstimateProduct(a, a, opts);
  const ProductEstimate y = EstimateProduct(a, a, opts);
  // Everything but the wall-clock field must match exactly.
  EXPECT_EQ(x.row_products, y.row_products);
  EXPECT_EQ(x.row_nnz, y.row_nnz);
  EXPECT_EQ(x.total_products, y.total_products);
  EXPECT_EQ(x.total_nnz, y.total_nnz);
  EXPECT_EQ(x.total_flops, y.total_flops);
  EXPECT_EQ(x.compression_ratio, y.compression_ratio);
  EXPECT_EQ(x.rel_stderr, y.rel_stderr);
  EXPECT_EQ(x.sampled_rows, y.sampled_rows);
  EXPECT_EQ(x.reliable, y.reliable);

  opts.seed = 4321;
  const ProductEstimate z = EstimateProduct(a, a, opts);
  EXPECT_NE(x.row_nnz, z.row_nnz);  // a different seed samples differently
}

TEST(EstimateReliability, TinySampleIsUnreliable) {
  // 64 rows at a 5% rate can never reach min_sample_rows: the estimate
  // must say so instead of pretending confidence.
  const sparse::Csr a = testutil::RandomCsr(64, 64, 4.0, 3);
  const ProductEstimate est = EstimateProduct(a, a);
  EXPECT_FALSE(est.reliable);
  EXPECT_LT(est.sampled_rows, EstimatorOptions{}.min_sample_rows);
}

TEST(EstimateReliability, LargeSampleIsReliable) {
  const sparse::Csr a = testutil::RandomRmat(11, 8.0, 5);
  const ProductEstimate est = EstimateProduct(a, a);
  EXPECT_TRUE(est.reliable);
  EXPECT_GE(est.sampled_rows, EstimatorOptions{}.min_sample_rows);
  EXPECT_LE(est.rel_stderr, EstimatorOptions{}.max_rel_stderr);
  EXPECT_GT(est.compression_ratio, 0.0);
}

TEST(EstimatePanels, AccumulateMatchesRowSums) {
  const sparse::Csr a = testutil::RandomRmat(10, 8.0, 6);
  const ProductEstimate est = EstimateProduct(a, a);
  const sparse::index_t rows = a.rows();
  const std::vector<sparse::index_t> bounds = {0, rows / 3, 2 * rows / 3,
                                               rows};
  const PanelTotals totals = AccumulatePanels(est, bounds);
  ASSERT_EQ(totals.panel_products.size(), 3u);
  ASSERT_EQ(totals.panel_nnz.size(), 3u);
  ASSERT_EQ(totals.panel_nnz_upper.size(), 3u);

  for (int p = 0; p < 3; ++p) {
    double products = 0.0, nnz = 0.0;
    for (sparse::index_t i = bounds[p]; i < bounds[p + 1]; ++i) {
      products += est.row_products[static_cast<std::size_t>(i)];
      nnz += est.row_nnz[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(totals.panel_products[p], products, 1e-6 * (1.0 + products));
    EXPECT_NEAR(totals.panel_nnz[p], nnz, 1e-6 * (1.0 + nnz));
    // The upper field carries the ~95% SRS confidence inflation.
    EXPECT_NEAR(totals.panel_nnz_upper[p],
                totals.panel_nnz[p] * (1.0 + 2.0 * est.rel_stderr),
                1e-6 * (1.0 + totals.panel_nnz[p]));
  }
}

}  // namespace
}  // namespace oocgemm::estimate
