#include "kernels/accumulators.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace oocgemm::kernels {
namespace {

template <typename Acc>
std::map<index_t, value_t> Extract(Acc& acc) {
  std::vector<index_t> cols(static_cast<std::size_t>(acc.size()));
  std::vector<value_t> vals(static_cast<std::size_t>(acc.size()));
  acc.ExtractSorted(cols.data(), vals.data());
  std::map<index_t, value_t> m;
  for (std::size_t i = 0; i < cols.size(); ++i) m[cols[i]] = vals[i];
  return m;
}

template <typename T>
class AccumulatorTest : public ::testing::Test {};

using AccumulatorTypes = ::testing::Types<HashAccumulator, DenseAccumulator,
                                          SortMergeAccumulator,
                                          RowMergeAccumulator>;
TYPED_TEST_SUITE(AccumulatorTest, AccumulatorTypes);

template <typename Acc>
void Prepare(Acc& acc, index_t cols_or_entries);

template <>
void Prepare(HashAccumulator& acc, index_t entries) {
  acc.Reserve(entries);
}
template <>
void Prepare(DenseAccumulator& acc, index_t cols) {
  acc.Reserve(cols);
}
template <>
void Prepare(SortMergeAccumulator& acc, index_t entries) {
  acc.Reserve(entries);
}
template <>
void Prepare(RowMergeAccumulator& acc, index_t entries) {
  acc.Reserve(entries);
}

TYPED_TEST(AccumulatorTest, StartsEmpty) {
  TypeParam acc;
  Prepare(acc, 64);
  EXPECT_EQ(acc.size(), 0);
}

TYPED_TEST(AccumulatorTest, AccumulatesCollisions) {
  TypeParam acc;
  Prepare(acc, 64);
  acc.Add(5, 1.0);
  acc.Add(5, 2.5);
  acc.Add(3, 1.0);
  EXPECT_EQ(acc.size(), 2);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[5], 3.5);
  EXPECT_DOUBLE_EQ(m[3], 1.0);
}

TYPED_TEST(AccumulatorTest, ExtractIsSortedByColumn) {
  TypeParam acc;
  Prepare(acc, 64);
  for (index_t c : {50, 3, 27, 9, 41}) acc.Add(c, 1.0);
  std::vector<index_t> cols(5);
  std::vector<value_t> vals(5);
  acc.ExtractSorted(cols.data(), vals.data());
  EXPECT_EQ(cols, (std::vector<index_t>{3, 9, 27, 41, 50}));
}

TYPED_TEST(AccumulatorTest, ClearForgetsEntries) {
  TypeParam acc;
  Prepare(acc, 64);
  acc.Add(1, 1.0);
  acc.Add(2, 2.0);
  acc.Clear();
  EXPECT_EQ(acc.size(), 0);
  acc.Add(1, 5.0);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[1], 5.0);  // previous 1.0 must not leak through
}

TYPED_TEST(AccumulatorTest, SymbolicCountsDistinct) {
  TypeParam acc;
  Prepare(acc, 64);
  for (index_t c : {7, 7, 2, 7, 2, 9}) acc.AddSymbolic(c);
  EXPECT_EQ(acc.size(), 3);
}

TYPED_TEST(AccumulatorTest, ManyRowsReusedMatchesMap) {
  TypeParam acc;
  Prepare(acc, 500);
  Pcg32 rng(77);
  for (int row = 0; row < 200; ++row) {
    acc.Clear();
    std::map<index_t, value_t> expected;
    const int inserts = 1 + static_cast<int>(rng.Below(60));
    for (int i = 0; i < inserts; ++i) {
      const index_t c = static_cast<index_t>(rng.Below(500));
      const value_t v = rng.Uniform(-1, 1);
      acc.Add(c, v);
      expected[c] += v;
    }
    ASSERT_EQ(acc.size(), static_cast<std::int64_t>(expected.size()));
    auto got = Extract(acc);
    for (const auto& [c, v] : expected) {
      ASSERT_NEAR(got[c], v, 1e-12);
    }
  }
}

TYPED_TEST(AccumulatorTest, AddRunMatchesSingleInserts) {
  TypeParam run_acc, single_acc;
  Prepare(run_acc, 64);
  Prepare(single_acc, 64);
  // Two sorted runs with overlap (the shape the numeric phase feeds).
  const index_t run_a[] = {2, 5, 9, 30};
  const value_t val_a[] = {1.0, 2.0, 3.0, 4.0};
  const index_t run_b[] = {5, 9, 12};
  const value_t val_b[] = {0.5, 0.25, 8.0};
  run_acc.AddRun(run_a, val_a, 4, 2.0);
  run_acc.AddRun(run_b, val_b, 3, -1.0);
  for (int i = 0; i < 4; ++i) single_acc.Add(run_a[i], 2.0 * val_a[i]);
  for (int i = 0; i < 3; ++i) single_acc.Add(run_b[i], -1.0 * val_b[i]);
  ASSERT_EQ(run_acc.size(), single_acc.size());
  auto got = Extract(run_acc);
  for (const auto& [c, v] : Extract(single_acc)) {
    ASSERT_NEAR(got[c], v, 1e-12) << "col " << c;
  }
}

TYPED_TEST(AccumulatorTest, SymbolicRunsCountDistinct) {
  TypeParam acc;
  Prepare(acc, 64);
  const index_t run_a[] = {1, 4, 7};
  const index_t run_b[] = {4, 7, 11, 13};
  acc.AddRunSymbolic(run_a, 3);
  acc.AddRunSymbolic(run_b, 4);
  EXPECT_EQ(acc.size(), 5);
}

TYPED_TEST(AccumulatorTest, ReusableAfterExtraction) {
  // size()/ExtractSorted finalize the lazy strategies; the accumulator must
  // still accept inserts afterwards (kernel launches interleave freely).
  TypeParam acc;
  Prepare(acc, 16);
  acc.Add(9, 1.0);
  EXPECT_EQ(acc.size(), 1);
  acc.Add(9, 1.0);
  acc.Add(2, 4.0);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[9], 2.0);
  EXPECT_DOUBLE_EQ(m[2], 4.0);
}

TEST(HashAccumulator, GrowsBeyondInitialReserve) {
  HashAccumulator acc;
  acc.Reserve(4);
  for (index_t c = 0; c < 1000; ++c) acc.Add(c, 1.0);
  EXPECT_EQ(acc.size(), 1000);
  std::vector<index_t> cols(1000);
  std::vector<value_t> vals(1000);
  acc.ExtractSorted(cols.data(), vals.data());
  for (index_t c = 0; c < 1000; ++c) EXPECT_EQ(cols[static_cast<std::size_t>(c)], c);
}

TEST(HashAccumulator, WorksWithoutReserve) {
  HashAccumulator acc;
  acc.Add(3, 1.0);
  acc.Add(1, 2.0);
  EXPECT_EQ(acc.size(), 2);
}

TEST(HashAccumulator, AdversarialKeysSameBucket) {
  // Keys differing only in high bits stress linear probing.
  HashAccumulator acc;
  acc.Reserve(16);
  for (int i = 0; i < 64; ++i) acc.Add(static_cast<index_t>(i << 20), 1.0);
  EXPECT_EQ(acc.size(), 64);
}

TEST(HashAccumulator, CraftedKeysNoMiddleBitsPathology) {
  // Regression for the Grow/FindSlot rehash pathology: the slot map used to
  // be `(col * phi >> 32) & mask` — a fixed middle-bit window of the
  // Fibonacci product.  Key families that coincide on that window all
  // landed in one slot, so inserts degenerated into an O(n^2) linear-probe
  // crawl (and every Grow re-inserted the same pile-up).  Craft exactly
  // such a family against a capacity-512 table and assert probing stays
  // near one step per operation under the fixed top-bits map.
  constexpr std::int64_t kCapacity = 512;
  constexpr int kKeys = 256;
  std::vector<index_t> crafted;
  for (index_t col = 1; static_cast<int>(crafted.size()) < kKeys; ++col) {
    const std::uint64_t h =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(col)) *
        0x9e3779b97f4a7c15ull;
    if (((h >> 32) & (kCapacity - 1)) == 0) crafted.push_back(col);
  }
  HashAccumulator acc;
  acc.Reserve(kKeys);  // load factor .5 => capacity 512, no growth below
  ASSERT_EQ(acc.capacity(), kCapacity);
  for (index_t col : crafted) acc.Add(col, 1.0);
  EXPECT_EQ(acc.size(), kKeys);
  // Load-factor invariant: the table never runs past half full.
  EXPECT_LE(acc.size() * 2, acc.capacity());
  // The old map would need ~n^2/2 = 32768 probe steps for this family; the
  // top-bits map spreads it like any other key set.
  EXPECT_LT(acc.total_probes(), 8 * kKeys);
  // And the values must still be correct, growth included.
  for (index_t col : crafted) acc.Add(col, 0.5);
  auto m = Extract(acc);
  for (index_t col : crafted) ASSERT_DOUBLE_EQ(m[col], 1.5);
}

TEST(HashAccumulator, LoadFactorInvariantAcrossGrowth) {
  HashAccumulator acc;  // no Reserve: every doubling path is exercised
  Pcg32 rng(1234);
  for (int i = 0; i < 5000; ++i) {
    acc.Add(static_cast<index_t>(rng.NextU32() >> 4), 1.0);
    ASSERT_LE(acc.size() * 2, acc.capacity());
  }
  // Randomized keys must also stay near one probe per FindSlot on average.
  EXPECT_LT(acc.total_probes(), 16 * 5000);
}

TEST(RowMergeAccumulator, MergesOverlappingSortedRuns) {
  RowMergeAccumulator acc;
  acc.Reserve(16);
  const index_t run_a[] = {1, 5, 9};
  const value_t val_a[] = {1.0, 1.0, 1.0};
  const index_t run_b[] = {1, 9, 20};
  const value_t val_b[] = {2.0, 2.0, 2.0};
  const index_t run_c[] = {5, 20};
  const value_t val_c[] = {4.0, 4.0};
  acc.AddRun(run_a, val_a, 3, 1.0);
  acc.AddRun(run_b, val_b, 3, 1.0);
  acc.AddRun(run_c, val_c, 2, 1.0);  // odd run out in the first round
  EXPECT_EQ(acc.size(), 4);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
  EXPECT_DOUBLE_EQ(m[5], 5.0);
  EXPECT_DOUBLE_EQ(m[9], 3.0);
  EXPECT_DOUBLE_EQ(m[20], 6.0);
}

TEST(RowMergeAccumulator, ManyRandomRunsMatchMap) {
  RowMergeAccumulator acc;
  Pcg32 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    acc.Clear();
    std::map<index_t, value_t> expected;
    const int runs = 1 + static_cast<int>(rng.Below(17));  // hits odd counts
    for (int r = 0; r < runs; ++r) {
      std::vector<index_t> cols;
      std::vector<value_t> vals;
      index_t c = static_cast<index_t>(rng.Below(8));
      const int len = static_cast<int>(rng.Below(20));
      for (int i = 0; i < len; ++i) {
        cols.push_back(c);
        vals.push_back(rng.Uniform(0.1, 1.0));
        c += static_cast<index_t>(1 + rng.Below(6));  // ascending run
      }
      const value_t scale = rng.Uniform(0.5, 2.0);
      acc.AddRun(cols.data(), vals.data(), static_cast<offset_t>(cols.size()),
                 scale);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        expected[cols[i]] += scale * vals[i];
      }
    }
    ASSERT_EQ(acc.size(), static_cast<std::int64_t>(expected.size()));
    auto got = Extract(acc);
    for (const auto& [col, v] : expected) ASSERT_NEAR(got[col], v, 1e-12);
  }
}

TEST(SortMergeAccumulator, FoldsDuplicateHeavyInput) {
  SortMergeAccumulator acc;
  acc.Reserve(1024);
  for (int rep = 0; rep < 128; ++rep) {
    for (index_t c : {3, 1, 4, 1, 5}) acc.Add(c, 1.0);
  }
  EXPECT_EQ(acc.size(), 4);  // {1, 3, 4, 5}
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[1], 256.0);
  EXPECT_DOUBLE_EQ(m[3], 128.0);
}

TEST(DenseAccumulator, GenerationWrapIsSafe) {
  DenseAccumulator acc;
  acc.Reserve(8);
  // Clear enough times to approach wrap quickly is impractical for a
  // uint32 generation; instead verify many clears keep correctness.
  for (int i = 0; i < 10000; ++i) {
    acc.Clear();
    acc.Add(static_cast<index_t>(i % 8), 1.0);
    ASSERT_EQ(acc.size(), 1);
  }
}

TEST(DenseAccumulator, ReserveGrowsMonotonically) {
  DenseAccumulator acc;
  acc.Reserve(4);
  acc.Add(3, 1.0);
  acc.Clear();
  acc.Reserve(16);  // bigger panel later
  acc.Add(15, 2.0);
  EXPECT_EQ(acc.size(), 1);
}

TEST(ChooseAccumulator, DenseForHeavyRows) {
  EXPECT_EQ(ChooseAccumulator(/*row_flops=*/10000, /*panel_cols=*/256),
            AccumulatorKind::kDense);
}

TEST(ChooseAccumulator, HashForSparseRows) {
  EXPECT_EQ(ChooseAccumulator(/*row_flops=*/4, /*panel_cols=*/100000),
            AccumulatorKind::kHash);
}

}  // namespace
}  // namespace oocgemm::kernels
