#include "kernels/accumulators.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"

namespace oocgemm::kernels {
namespace {

template <typename Acc>
std::map<index_t, value_t> Extract(Acc& acc) {
  std::vector<index_t> cols(static_cast<std::size_t>(acc.size()));
  std::vector<value_t> vals(static_cast<std::size_t>(acc.size()));
  acc.ExtractSorted(cols.data(), vals.data());
  std::map<index_t, value_t> m;
  for (std::size_t i = 0; i < cols.size(); ++i) m[cols[i]] = vals[i];
  return m;
}

template <typename T>
class AccumulatorTest : public ::testing::Test {};

using AccumulatorTypes = ::testing::Types<HashAccumulator, DenseAccumulator>;
TYPED_TEST_SUITE(AccumulatorTest, AccumulatorTypes);

template <typename Acc>
void Prepare(Acc& acc, index_t cols_or_entries);

template <>
void Prepare(HashAccumulator& acc, index_t entries) {
  acc.Reserve(entries);
}
template <>
void Prepare(DenseAccumulator& acc, index_t cols) {
  acc.Reserve(cols);
}

TYPED_TEST(AccumulatorTest, StartsEmpty) {
  TypeParam acc;
  Prepare(acc, 64);
  EXPECT_EQ(acc.size(), 0);
}

TYPED_TEST(AccumulatorTest, AccumulatesCollisions) {
  TypeParam acc;
  Prepare(acc, 64);
  acc.Add(5, 1.0);
  acc.Add(5, 2.5);
  acc.Add(3, 1.0);
  EXPECT_EQ(acc.size(), 2);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[5], 3.5);
  EXPECT_DOUBLE_EQ(m[3], 1.0);
}

TYPED_TEST(AccumulatorTest, ExtractIsSortedByColumn) {
  TypeParam acc;
  Prepare(acc, 64);
  for (index_t c : {50, 3, 27, 9, 41}) acc.Add(c, 1.0);
  std::vector<index_t> cols(5);
  std::vector<value_t> vals(5);
  acc.ExtractSorted(cols.data(), vals.data());
  EXPECT_EQ(cols, (std::vector<index_t>{3, 9, 27, 41, 50}));
}

TYPED_TEST(AccumulatorTest, ClearForgetsEntries) {
  TypeParam acc;
  Prepare(acc, 64);
  acc.Add(1, 1.0);
  acc.Add(2, 2.0);
  acc.Clear();
  EXPECT_EQ(acc.size(), 0);
  acc.Add(1, 5.0);
  auto m = Extract(acc);
  EXPECT_DOUBLE_EQ(m[1], 5.0);  // previous 1.0 must not leak through
}

TYPED_TEST(AccumulatorTest, SymbolicCountsDistinct) {
  TypeParam acc;
  Prepare(acc, 64);
  for (index_t c : {7, 7, 2, 7, 2, 9}) acc.AddSymbolic(c);
  EXPECT_EQ(acc.size(), 3);
}

TYPED_TEST(AccumulatorTest, ManyRowsReusedMatchesMap) {
  TypeParam acc;
  Prepare(acc, 500);
  Pcg32 rng(77);
  for (int row = 0; row < 200; ++row) {
    acc.Clear();
    std::map<index_t, value_t> expected;
    const int inserts = 1 + static_cast<int>(rng.Below(60));
    for (int i = 0; i < inserts; ++i) {
      const index_t c = static_cast<index_t>(rng.Below(500));
      const value_t v = rng.Uniform(-1, 1);
      acc.Add(c, v);
      expected[c] += v;
    }
    ASSERT_EQ(acc.size(), static_cast<std::int64_t>(expected.size()));
    auto got = Extract(acc);
    for (const auto& [c, v] : expected) {
      ASSERT_NEAR(got[c], v, 1e-12);
    }
  }
}

TEST(HashAccumulator, GrowsBeyondInitialReserve) {
  HashAccumulator acc;
  acc.Reserve(4);
  for (index_t c = 0; c < 1000; ++c) acc.Add(c, 1.0);
  EXPECT_EQ(acc.size(), 1000);
  std::vector<index_t> cols(1000);
  std::vector<value_t> vals(1000);
  acc.ExtractSorted(cols.data(), vals.data());
  for (index_t c = 0; c < 1000; ++c) EXPECT_EQ(cols[static_cast<std::size_t>(c)], c);
}

TEST(HashAccumulator, WorksWithoutReserve) {
  HashAccumulator acc;
  acc.Add(3, 1.0);
  acc.Add(1, 2.0);
  EXPECT_EQ(acc.size(), 2);
}

TEST(HashAccumulator, AdversarialKeysSameBucket) {
  // Keys differing only in high bits stress linear probing.
  HashAccumulator acc;
  acc.Reserve(16);
  for (int i = 0; i < 64; ++i) acc.Add(static_cast<index_t>(i << 20), 1.0);
  EXPECT_EQ(acc.size(), 64);
}

TEST(DenseAccumulator, GenerationWrapIsSafe) {
  DenseAccumulator acc;
  acc.Reserve(8);
  // Clear enough times to approach wrap quickly is impractical for a
  // uint32 generation; instead verify many clears keep correctness.
  for (int i = 0; i < 10000; ++i) {
    acc.Clear();
    acc.Add(static_cast<index_t>(i % 8), 1.0);
    ASSERT_EQ(acc.size(), 1);
  }
}

TEST(DenseAccumulator, ReserveGrowsMonotonically) {
  DenseAccumulator acc;
  acc.Reserve(4);
  acc.Add(3, 1.0);
  acc.Clear();
  acc.Reserve(16);  // bigger panel later
  acc.Add(15, 2.0);
  EXPECT_EQ(acc.size(), 1);
}

TEST(ChooseAccumulator, DenseForHeavyRows) {
  EXPECT_EQ(ChooseAccumulator(/*row_flops=*/10000, /*panel_cols=*/256),
            AccumulatorKind::kDense);
}

TEST(ChooseAccumulator, HashForSparseRows) {
  EXPECT_EQ(ChooseAccumulator(/*row_flops=*/4, /*panel_cols=*/100000),
            AccumulatorKind::kHash);
}

}  // namespace
}  // namespace oocgemm::kernels
