#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace oocgemm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitOnIdleReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, NumThreadsHonoured) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.num_threads(), 5u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), [&](std::size_t lo, std::size_t hi,
                                       std::size_t /*w*/) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, WorkerIndicesAreDistinctAndBounded) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::size_t> workers;
  pool.ParallelFor(0, 4000,
                   [&](std::size_t, std::size_t, std::size_t w) {
                     std::lock_guard<std::mutex> lock(mu);
                     workers.push_back(w);
                   },
                   1);
  for (std::size_t w : workers) EXPECT_LT(w, pool.num_threads());
  std::sort(workers.begin(), workers.end());
  EXPECT_EQ(std::adjacent_find(workers.begin(), workers.end()),
            workers.end());  // distinct => scratch slots never shared
}

TEST(ParallelFor, MinGrainLimitsBlockCount) {
  ThreadPool pool(8);
  std::atomic<int> blocks{0};
  pool.ParallelFor(0, 10,
                   [&](std::size_t, std::size_t, std::size_t) {
                     blocks.fetch_add(1);
                   },
                   /*min_grain=*/8);
  EXPECT_LE(blocks.load(), 2);
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<long long> partial(pool.num_threads(), 0);
  pool.ParallelFor(1, 100001, [&](std::size_t lo, std::size_t hi,
                                  std::size_t w) {
    for (std::size_t i = lo; i < hi; ++i) {
      partial[w] += static_cast<long long>(i);
    }
  });
  const long long total =
      std::accumulate(partial.begin(), partial.end(), 0ll);
  EXPECT_EQ(total, 100000ll * 100001 / 2);
}

TEST(GlobalThreadPool, IsSingleton) {
  EXPECT_EQ(&GlobalThreadPool(), &GlobalThreadPool());
  EXPECT_GE(GlobalThreadPool().num_threads(), 1u);
}

}  // namespace
}  // namespace oocgemm
