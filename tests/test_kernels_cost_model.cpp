#include "kernels/cost_model.hpp"

#include <gtest/gtest.h>

#include "vgpu/device.hpp"

namespace oocgemm::kernels {
namespace {

TEST(CostModel, NumericRateGrowsWithCompressionRatio) {
  CostModel cm;
  EXPECT_LT(cm.NumericRate(1.8), cm.NumericRate(4.5));
  EXPECT_LT(cm.NumericRate(4.5), cm.NumericRate(10.0));
}

TEST(CostModel, NumericRateClamped) {
  CostModel cm;
  EXPECT_GE(cm.NumericRate(0.1), cm.numeric_min);
  EXPECT_LE(cm.NumericRate(1e9), cm.numeric_max);
}

TEST(CostModel, TimesScaleLinearlyInFlops) {
  CostModel cm;
  EXPECT_NEAR(cm.GpuNumericSeconds(2000, 2.0),
              2.0 * cm.GpuNumericSeconds(1000, 2.0), 1e-15);
  EXPECT_NEAR(cm.GpuAnalysisSeconds(500), 0.5 * cm.GpuAnalysisSeconds(1000),
              1e-15);
}

TEST(CostModel, SymbolicIsFractionOfNumeric) {
  CostModel cm;
  EXPECT_NEAR(cm.GpuSymbolicSeconds(1000, 3.0),
              cm.symbolic_fraction * cm.GpuNumericSeconds(1000, 3.0), 1e-15);
}

TEST(CostModel, EndToEndIncludesTransfer) {
  CostModel cm;
  const double bw = 4e9;
  const double kernels_only =
      cm.GpuSymbolicSeconds(1000, 2.0) + cm.GpuNumericSeconds(1000, 2.0);
  EXPECT_GT(cm.GpuEndToEndSeconds(1000, 2.0, bw), kernels_only);
}

TEST(CostModel, CpuSlowerThanGpuEndToEndAcrossCrRange) {
  // The paper's Fig. 7 band: the GPU (including its transfers) beats the
  // multicore CPU by roughly 2-3x at the matrix level, across the whole
  // compression-ratio range of the evaluation set.
  CostModel cm;
  const double bw = vgpu::DeviceProperties{}.d2h_bandwidth;
  for (double cr : {3.5, 5.0, 7.0, 9.0, 12.0}) {
    const double s = cm.CpuChunkSeconds(1'000'000'000, cr) /
                     cm.GpuEndToEndSeconds(1'000'000'000, cr, bw);
    EXPECT_GT(s, 1.5) << "cr=" << cr;
    EXPECT_LT(s, 3.5) << "cr=" << cr;
  }
}

TEST(CostModel, CpuPenaltyOnSparseChunksIsMilder) {
  // Per flop, the CPU degrades less than the GPU when the compression
  // ratio drops (no PCIe transfer) — the reason Algorithm 4 sends sparse
  // chunks to the CPU.
  CostModel cm;
  const double bw = vgpu::DeviceProperties{}.d2h_bandwidth;
  const double cpu_penalty =
      cm.CpuChunkSeconds(1'000'000'000, 2.0) /
      cm.CpuChunkSeconds(1'000'000'000, 10.0);
  const double gpu_penalty =
      cm.GpuEndToEndSeconds(1'000'000'000, 2.0, bw) /
      cm.GpuEndToEndSeconds(1'000'000'000, 10.0, bw);
  EXPECT_LT(cpu_penalty, gpu_penalty);
}

TEST(CostModel, HighCompressionChunksAreCheaperPerFlop) {
  CostModel cm;
  const double bw = 4e9;
  const double low_cr = cm.GpuEndToEndSeconds(1'000'000, 1.8, bw);
  const double high_cr = cm.GpuEndToEndSeconds(1'000'000, 10.0, bw);
  EXPECT_LT(high_cr, low_cr);  // the paper's Fig. 7 correlation
}

TEST(CostModel, TransferDominatesComputeAtDefaultCalibration) {
  // The calibration target: for typical chunks the D2H share of the
  // end-to-end cost sits in the paper's 70-90% band (Fig. 4).
  CostModel cm;
  const double bw = 4e9;
  for (double cr : {1.8, 2.7, 4.5, 9.0, 10.3}) {
    const std::int64_t flops = 100'000'000;
    const double total = cm.GpuEndToEndSeconds(flops, cr, bw);
    const double kernels =
        cm.GpuSymbolicSeconds(flops, cr) + cm.GpuNumericSeconds(flops, cr);
    const double transfer_share = (total - kernels) / total;
    EXPECT_GT(transfer_share, 0.60) << "cr=" << cr;
    EXPECT_LT(transfer_share, 0.95) << "cr=" << cr;
  }
}

}  // namespace
}  // namespace oocgemm::kernels
