// core::BatchedOutOfCore: shared-operand batches produce exactly the serial
// products, upload each shared B column panel once per batch, and honour
// per-member cancellation without failing the batch.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/batched.hpp"
#include "core/executors.hpp"
#include "core/problem.hpp"
#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

struct BatchFixture {
  Csr b;
  std::vector<Csr> as;

  explicit BatchFixture(int members) {
    b = testutil::RandomRmat(9, 8.0, 77);
    for (int i = 0; i < members; ++i) {
      as.push_back(
          testutil::RandomCsr(b.rows(), b.rows(), 6.0, 900 + i));
    }
  }

  std::vector<BatchJobSpec> Specs() const {
    std::vector<BatchJobSpec> specs;
    for (const Csr& a : as) specs.push_back(BatchJobSpec{&a, nullptr});
    return specs;
  }
};

TEST(BatchedOutOfCore, MatchesReferenceForEveryMember) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  BatchFixture fx(4);

  auto run = BatchedOutOfCore(device, fx.Specs(), fx.b, ExecutorOptions{},
                              pool);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->jobs.size(), 4u);
  for (std::size_t i = 0; i < fx.as.size(); ++i) {
    ASSERT_TRUE(run->jobs[i].status.ok())
        << run->jobs[i].status.ToString();
    EXPECT_TRUE(testutil::CsrNear(
        run->jobs[i].run.c, kernels::ReferenceSpgemm(fx.as[i], fx.b)));
    EXPECT_GT(run->jobs[i].run.stats.total_seconds, 0.0);
    EXPECT_GT(run->jobs[i].run.stats.nnz_out, 0);
  }
  EXPECT_GT(run->batch_makespan, 0.0);
}

TEST(BatchedOutOfCore, UploadsEachSharedBPanelExactlyOnce) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  BatchFixture fx(4);

  // Pin the column split so the multi-panel regime — the one batching
  // exists for — is exercised regardless of how the planner would size
  // this fixture.
  ExecutorOptions options;
  options.plan.forced_col_panels = 3;
  auto run = BatchedOutOfCore(device, fx.Specs(), fx.b, options, pool);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->num_col_panels, 3);
  EXPECT_EQ(run->b_panel_uploads,
            static_cast<std::int64_t>(run->num_col_panels));
  EXPECT_GT(run->b_panel_hits, 0);

  // Compare against the members run one by one: the batch must move
  // strictly less B-panel traffic than num_jobs serial runs.
  std::int64_t serial_uploads = 0;
  for (const Csr& a : fx.as) {
    auto single = AsyncOutOfCore(device, a, fx.b, options, pool);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    serial_uploads += single->stats.b_panel_uploads;
  }
  EXPECT_LT(run->b_panel_uploads, serial_uploads);

  // Per-member attribution adds up to the batch totals.
  std::int64_t member_uploads = 0, member_hits = 0;
  for (const BatchJobResult& jr : run->jobs) {
    member_uploads += jr.run.stats.b_panel_uploads;
    member_hits += jr.run.stats.b_panel_hits;
  }
  EXPECT_EQ(member_uploads, run->b_panel_uploads);
  EXPECT_EQ(member_hits, run->b_panel_hits);
}

TEST(BatchedOutOfCore, CancelledMemberDoesNotFailTheBatch) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  BatchFixture fx(3);

  std::atomic<bool> cancelled{true};  // pre-cancelled: skipped immediately
  std::vector<BatchJobSpec> specs = fx.Specs();
  specs[1].cancel = &cancelled;

  auto run = BatchedOutOfCore(device, specs, fx.b, ExecutorOptions{}, pool);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->jobs[1].status.code(), StatusCode::kCancelled);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_TRUE(run->jobs[i].status.ok());
    EXPECT_TRUE(testutil::CsrNear(
        run->jobs[i].run.c, kernels::ReferenceSpgemm(fx.as[i], fx.b)));
  }
}

TEST(BatchedOutOfCore, RejectsEmptyAndNullInputs) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  Csr b = testutil::RandomCsr(32, 32, 2.0, 1);

  auto empty = BatchedOutOfCore(device, {}, b, ExecutorOptions{}, pool);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  std::vector<BatchJobSpec> specs{BatchJobSpec{nullptr, nullptr}};
  auto null_a = BatchedOutOfCore(device, specs, b, ExecutorOptions{}, pool);
  EXPECT_EQ(null_a.status().code(), StatusCode::kInvalidArgument);
}

TEST(PrepareSharedOperandProblems, MembersShareOneColumnSplitAndBPanels) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  BatchFixture fx(3);

  std::vector<const Csr*> as;
  for (const Csr& a : fx.as) as.push_back(&a);
  auto preps = PrepareSharedOperandProblems(as, fx.b, device.capacity(),
                                            ExecutorOptions{}, pool);
  ASSERT_TRUE(preps.ok()) << preps.status().ToString();
  ASSERT_EQ(preps->size(), 3u);
  const PreparedProblem& first = preps->front();
  for (const PreparedProblem& p : preps.value()) {
    EXPECT_EQ(p.plan.num_col_panels, first.plan.num_col_panels);
    EXPECT_EQ(p.col_bounds.begin, first.col_bounds.begin);
    // The host B panels are shared, not copied.
    EXPECT_EQ(p.b_panels.get(), first.b_panels.get());
  }
}

}  // namespace
}  // namespace oocgemm::core
