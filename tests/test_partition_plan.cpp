#include "partition/panel_plan.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace oocgemm::partition {
namespace {

using sparse::Csr;

TEST(PlanPanels, BigDeviceNeedsOnePanel) {
  Csr a = testutil::RandomCsr(256, 256, 4.0, 1);
  auto plan = PlanPanels(a, a, /*device_capacity=*/1ll << 30);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_row_panels, 1);
  EXPECT_EQ(plan->num_col_panels, 1);
}

TEST(PlanPanels, SmallDevicePartitions) {
  Csr a = testutil::RandomRmat(10, 8.0, 2);
  auto plan = PlanPanels(a, a, /*device_capacity=*/1 << 20);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->num_row_panels * plan->num_col_panels, 1);
}

TEST(PlanPanels, PlannedBudgetRespected) {
  Csr a = testutil::RandomRmat(10, 8.0, 3);
  PlanOptions options;
  const std::int64_t capacity = 1 << 21;
  auto plan = PlanPanels(a, a, capacity, options);
  ASSERT_TRUE(plan.ok());
  // The full reservation — panel cache (2 slots per matrix) plus the
  // double-buffered chunk pools — fits in the configured budget.
  const std::int64_t reserved =
      2 * (plan->max_a_panel_bytes + plan->max_b_panel_bytes) +
      plan->pool_bytes * options.buffers;
  EXPECT_LE(reserved,
            static_cast<std::int64_t>(capacity * options.capacity_fraction));
}

TEST(PlanPanels, BoundariesMatchCounts) {
  Csr a = testutil::RandomRmat(10, 8.0, 13);
  auto plan = PlanPanels(a, a, 1 << 21);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->row_bounds.num_panels(), plan->num_row_panels);
  EXPECT_EQ(plan->col_bounds.num_panels(), plan->num_col_panels);
  EXPECT_EQ(plan->row_bounds.begin.front(), 0);
  EXPECT_EQ(plan->row_bounds.begin.back(), a.rows());
}

TEST(WeightBalancedBoundaries, EqualisesWeights) {
  // A heavily skewed weight profile: the first rows carry most work.
  std::vector<double> weights(100, 1.0);
  for (int i = 0; i < 10; ++i) weights[static_cast<std::size_t>(i)] = 50.0;
  PanelBoundaries b = WeightBalancedBoundaries(weights, 4);
  ASSERT_EQ(b.num_panels(), 4);
  double max_panel = 0.0;
  for (int p = 0; p < 4; ++p) {
    double w = 0.0;
    for (sparse::index_t r = b.panel_begin(p); r < b.panel_end(p); ++r) {
      w += weights[static_cast<std::size_t>(r)];
    }
    max_panel = std::max(max_panel, w);
  }
  // Total weight 590; a uniform row split would put 545 in panel 0.
  EXPECT_LT(max_panel, 300.0);
}

TEST(WeightBalancedBoundaries, DegenerateInputs) {
  // All-zero weights fall back to uniform.
  std::vector<double> zeros(10, 0.0);
  PanelBoundaries b = WeightBalancedBoundaries(zeros, 3);
  EXPECT_EQ(b.begin.back(), 10);
  // More panels than rows: trailing panels are empty but valid.
  std::vector<double> two(2, 1.0);
  PanelBoundaries b2 = WeightBalancedBoundaries(two, 5);
  EXPECT_EQ(b2.num_panels(), 5);
  EXPECT_EQ(b2.begin.back(), 2);
  for (int p = 1; p <= 5; ++p) {
    EXPECT_GE(b2.begin[static_cast<std::size_t>(p)],
              b2.begin[static_cast<std::size_t>(p - 1)]);
  }
}

TEST(PlanPanels, SmallerDeviceNeverFewerChunks) {
  Csr a = testutil::RandomRmat(9, 8.0, 4);
  auto big = PlanPanels(a, a, 16ll << 20);
  auto small = PlanPanels(a, a, 2ll << 20);
  ASSERT_TRUE(big.ok() && small.ok());
  EXPECT_GE(small->num_row_panels * small->num_col_panels,
            big->num_row_panels * big->num_col_panels);
}

TEST(PlanPanels, ImpossibleBudgetFails) {
  Csr a = testutil::RandomRmat(9, 8.0, 5);
  auto plan = PlanPanels(a, a, /*device_capacity=*/1 << 10);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanPanels, DimensionMismatchRejected) {
  Csr a = testutil::RandomCsr(10, 20, 2.0, 6);
  Csr b = testutil::RandomCsr(30, 10, 2.0, 7);
  EXPECT_FALSE(PlanPanels(a, b, 1 << 20).ok());
}

TEST(PlanPanels, BadOptionsRejected) {
  Csr a = testutil::RandomCsr(16, 16, 2.0, 8);
  PlanOptions options;
  options.buffers = 0;
  EXPECT_FALSE(PlanPanels(a, a, 1 << 20, options).ok());
}

TEST(PlanPanels, SingleBufferAllowsBiggerChunks) {
  Csr a = testutil::RandomRmat(10, 8.0, 9);
  PlanOptions one, two;
  one.buffers = 1;
  two.buffers = 2;
  auto p1 = PlanPanels(a, a, 4ll << 20, one);
  auto p2 = PlanPanels(a, a, 4ll << 20, two);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_LE(p1->num_row_panels * p1->num_col_panels,
            p2->num_row_panels * p2->num_col_panels);
}

TEST(PlanPanels, DebugStringMentionsPanels) {
  Csr a = testutil::RandomCsr(64, 64, 4.0, 10);
  auto plan = PlanPanels(a, a, 1ll << 30);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->DebugString().find("1x1"), std::string::npos);
}

}  // namespace
}  // namespace oocgemm::partition
