#include "kernels/masked_spgemm.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;
using sparse::index_t;

/// Reference semantics: full product filtered to the mask's pattern, with
/// exact zeros dropped (matching MaskedCpuSpgemm's documented behaviour).
Csr FilterByMask(const Csr& full, const Csr& mask) {
  sparse::Coo coo;
  coo.rows = full.rows();
  coo.cols = full.cols();
  for (index_t r = 0; r < full.rows(); ++r) {
    auto mk = mask.row_begin(r);
    for (auto k = full.row_begin(r); k < full.row_end(r); ++k) {
      const index_t c = full.col_ids()[static_cast<std::size_t>(k)];
      while (mk < mask.row_end(r) &&
             mask.col_ids()[static_cast<std::size_t>(mk)] < c) {
        ++mk;
      }
      if (mk < mask.row_end(r) &&
          mask.col_ids()[static_cast<std::size_t>(mk)] == c &&
          full.values()[static_cast<std::size_t>(k)] != 0.0) {
        coo.Add(r, c, full.values()[static_cast<std::size_t>(k)]);
      }
    }
  }
  return sparse::CooToCsr(coo);
}

TEST(MaskedSpgemm, MatchesFilteredFullProduct) {
  ThreadPool pool(3);
  Csr a = testutil::RandomCsr(80, 60, 4.0, 1);
  Csr b = testutil::RandomCsr(60, 90, 4.0, 2);
  Csr mask = testutil::RandomCsr(80, 90, 6.0, 3);
  Csr masked = MaskedCpuSpgemm(a, b, mask, pool);
  Csr expected = FilterByMask(ReferenceSpgemm(a, b), mask);
  EXPECT_TRUE(testutil::CsrNear(masked, expected));
}

TEST(MaskedSpgemm, SelfMaskOnGraph) {
  ThreadPool pool(2);
  Csr a = testutil::RandomRmat(8, 6.0, 4);
  Csr masked = MaskedCpuSpgemm(a, a, a, pool);
  Csr expected = FilterByMask(ReferenceSpgemm(a, a), a);
  EXPECT_TRUE(testutil::CsrNear(masked, expected));
}

TEST(MaskedSpgemm, EmptyMaskGivesEmptyResult) {
  ThreadPool pool(2);
  Csr a = testutil::RandomCsr(32, 32, 4.0, 5);
  Csr empty(32, 32);
  EXPECT_EQ(MaskedCpuSpgemm(a, a, empty, pool).nnz(), 0);
}

TEST(MaskedSpgemm, FullMaskEqualsFullProduct) {
  ThreadPool pool(2);
  Csr a = testutil::RandomCsr(24, 24, 3.0, 6);
  // Dense mask: every position allowed.
  sparse::Coo coo;
  coo.rows = coo.cols = 24;
  for (index_t r = 0; r < 24; ++r) {
    for (index_t c = 0; c < 24; ++c) coo.Add(r, c, 1.0);
  }
  Csr mask = sparse::CooToCsr(coo);
  Csr masked = MaskedCpuSpgemm(a, a, mask, pool);
  EXPECT_TRUE(testutil::CsrNear(masked, ReferenceSpgemm(a, a)));
}

TEST(CountTriangles, KnownSmallGraphs) {
  ThreadPool pool(2);
  // K4: 4 triangles.
  sparse::Coo k4;
  k4.rows = k4.cols = 4;
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      if (i != j) k4.Add(i, j, 1.0);
    }
  }
  EXPECT_EQ(CountTriangles(sparse::CooToCsr(k4), pool), 4);

  // A 5-cycle: no triangles.
  sparse::Coo c5;
  c5.rows = c5.cols = 5;
  for (index_t i = 0; i < 5; ++i) {
    c5.Add(i, (i + 1) % 5, 1.0);
    c5.Add((i + 1) % 5, i, 1.0);
  }
  EXPECT_EQ(CountTriangles(sparse::CooToCsr(c5), pool), 0);

  // Two disjoint triangles.
  sparse::Coo two;
  two.rows = two.cols = 6;
  const int tri[2][3] = {{0, 1, 2}, {3, 4, 5}};
  for (const auto& t : tri) {
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        if (i != j) two.Add(t[i], t[j], 1.0);
      }
    }
  }
  EXPECT_EQ(CountTriangles(sparse::CooToCsr(two), pool), 2);
}

TEST(CountTriangles, AgreesWithFullProductMethod) {
  ThreadPool pool(2);
  sparse::RmatParams p;
  p.scale = 8;
  p.edge_factor = 6.0;
  p.symmetric = true;
  p.seed = 77;
  Csr g = sparse::GenerateRmat(p);
  for (auto& v : g.mutable_values()) v = 1.0;

  // Independent method: sum over edges of (A^2) entries.
  Csr paths = ReferenceSpgemm(g, g);
  double wedge_sum = 0.0;
  for (index_t r = 0; r < g.rows(); ++r) {
    auto pk = paths.row_begin(r);
    for (auto k = g.row_begin(r); k < g.row_end(r); ++k) {
      const index_t c = g.col_ids()[static_cast<std::size_t>(k)];
      while (pk < paths.row_end(r) &&
             paths.col_ids()[static_cast<std::size_t>(pk)] < c) {
        ++pk;
      }
      if (pk < paths.row_end(r) &&
          paths.col_ids()[static_cast<std::size_t>(pk)] == c) {
        wedge_sum += paths.values()[static_cast<std::size_t>(pk)];
      }
    }
  }
  EXPECT_EQ(CountTriangles(g, pool),
            static_cast<std::int64_t>(wedge_sum + 0.5) / 6);
}

}  // namespace
}  // namespace oocgemm::kernels
