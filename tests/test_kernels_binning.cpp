#include "kernels/binning.hpp"

#include <gtest/gtest.h>

namespace oocgemm::kernels {
namespace {

TEST(GroupRowsByWork, EmptyInput) {
  RowGroups rg = GroupRowsByWork(nullptr, 0);
  EXPECT_EQ(rg.total_rows(), 0u);
}

TEST(GroupRowsByWork, ZeroWorkRowsInGroupZero) {
  std::int64_t flops[] = {0, 0, 5};
  RowGroups rg = GroupRowsByWork(flops, 3);
  EXPECT_EQ(rg.groups[0].size(), 2u);
  EXPECT_EQ(rg.groups[1].size(), 1u);
}

TEST(GroupRowsByWork, BoundaryValues) {
  // Exactly at the limits: 128 stays in group 1, 129 moves to group 2.
  std::int64_t flops[] = {128, 129, 2048, 2049, 32768, 32769};
  RowGroups rg = GroupRowsByWork(flops, 6);
  EXPECT_EQ(rg.groups[1], (std::vector<sparse::index_t>{0}));
  EXPECT_EQ(rg.groups[2], (std::vector<sparse::index_t>{1, 2}));
  EXPECT_EQ(rg.groups[3], (std::vector<sparse::index_t>{3, 4}));
  EXPECT_EQ(rg.groups[4], (std::vector<sparse::index_t>{5}));
}

TEST(GroupRowsByWork, PartitionIsCompleteAndDisjoint) {
  std::vector<std::int64_t> flops;
  for (int i = 0; i < 1000; ++i) flops.push_back((i * 37) % 100000);
  RowGroups rg = GroupRowsByWork(flops.data(), flops.size());
  EXPECT_EQ(rg.total_rows(), 1000u);
  std::vector<bool> seen(1000, false);
  for (const auto& g : rg.groups) {
    for (sparse::index_t r : g) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
      seen[static_cast<std::size_t>(r)] = true;
    }
  }
}

TEST(GroupRowsByWork, PreservesRowOrderWithinGroup) {
  std::int64_t flops[] = {5, 500, 6, 7, 600};
  RowGroups rg = GroupRowsByWork(flops, 5);
  EXPECT_EQ(rg.groups[1], (std::vector<sparse::index_t>{0, 2, 3}));
  EXPECT_EQ(rg.groups[2], (std::vector<sparse::index_t>{1, 4}));
}

TEST(GroupRowsByWork, HugeValuesLandInLastGroup) {
  std::int64_t flops[] = {INT64_MAX / 2};
  RowGroups rg = GroupRowsByWork(flops, 1);
  EXPECT_EQ(rg.groups[kNumRowGroups - 1].size(), 1u);
}

TEST(RowGroups, DebugStringListsCounts) {
  std::int64_t flops[] = {0, 5, 500};
  RowGroups rg = GroupRowsByWork(flops, 3);
  EXPECT_EQ(rg.DebugString(), "RowGroups(1, 1, 1, 0, 0)");
}

}  // namespace
}  // namespace oocgemm::kernels
