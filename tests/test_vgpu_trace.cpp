#include "vgpu/trace.hpp"

#include <gtest/gtest.h>

namespace oocgemm::vgpu {
namespace {

TraceEvent Ev(OpCategory cat, double start, double end,
              std::int64_t bytes = 0, const std::string& label = "x") {
  return TraceEvent{cat, label, 0, Interval{start, end}, bytes};
}

TEST(Interval, OverlapSemantics) {
  Interval a{0.0, 1.0};
  EXPECT_TRUE(a.Overlaps({0.5, 1.5}));
  EXPECT_FALSE(a.Overlaps({1.0, 2.0}));  // half-open: touching is fine
  EXPECT_FALSE(a.Overlaps({-1.0, 0.0}));
  EXPECT_TRUE(a.Overlaps({-1.0, 0.1}));
}

TEST(Trace, EmptyIsZero) {
  Trace t;
  EXPECT_EQ(t.BusyTime(OpCategory::kKernel), 0.0);
  EXPECT_EQ(t.SpanEnd(), 0.0);
  EXPECT_EQ(t.Fraction(OpCategory::kD2H), 0.0);
  EXPECT_FALSE(t.HasIntraCategoryOverlap(OpCategory::kD2H));
}

TEST(Trace, BusyTimeSumsPerCategory) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 1.0));
  t.Add(Ev(OpCategory::kKernel, 2.0, 2.5));
  t.Add(Ev(OpCategory::kD2H, 1.0, 2.0));
  EXPECT_DOUBLE_EQ(t.BusyTime(OpCategory::kKernel), 1.5);
  EXPECT_DOUBLE_EQ(t.BusyTime(OpCategory::kD2H), 1.0);
}

TEST(Trace, BusyTimeLabeledMatchesSubstring) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 1.0, 0, "chunk[0,1].numeric.g2"));
  t.Add(Ev(OpCategory::kKernel, 1.0, 3.0, 0, "chunk[0,1].symbolic.g1"));
  EXPECT_DOUBLE_EQ(t.BusyTimeLabeled("numeric"), 1.0);
  EXPECT_DOUBLE_EQ(t.BusyTimeLabeled("chunk[0,1]"), 3.0);
}

TEST(Trace, SpanEndIsMaxEnd) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 5.0));
  t.Add(Ev(OpCategory::kD2H, 1.0, 3.0));
  EXPECT_DOUBLE_EQ(t.SpanEnd(), 5.0);
}

TEST(Trace, BytesSummedPerDirection) {
  Trace t;
  t.Add(Ev(OpCategory::kH2D, 0, 1, 100));
  t.Add(Ev(OpCategory::kH2D, 1, 2, 200));
  t.Add(Ev(OpCategory::kD2H, 2, 3, 1000));
  EXPECT_EQ(t.Bytes(OpCategory::kH2D), 300);
  EXPECT_EQ(t.Bytes(OpCategory::kD2H), 1000);
}

TEST(Trace, OverlapDetection) {
  Trace t;
  t.Add(Ev(OpCategory::kD2H, 0.0, 2.0));
  t.Add(Ev(OpCategory::kD2H, 2.0, 3.0));
  EXPECT_FALSE(t.HasIntraCategoryOverlap(OpCategory::kD2H));
  t.Add(Ev(OpCategory::kD2H, 2.5, 4.0));
  EXPECT_TRUE(t.HasIntraCategoryOverlap(OpCategory::kD2H));
}

TEST(Trace, CoveredTimeMergesOverlaps) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 2.0));
  t.Add(Ev(OpCategory::kKernel, 1.0, 3.0));
  t.Add(Ev(OpCategory::kKernel, 5.0, 6.0));
  EXPECT_DOUBLE_EQ(t.CoveredTime(OpCategory::kKernel), 4.0);
}

TEST(Trace, FractionUsesCoveredTime) {
  Trace t;
  t.Add(Ev(OpCategory::kD2H, 0.0, 3.0));
  t.Add(Ev(OpCategory::kKernel, 0.0, 4.0));
  EXPECT_DOUBLE_EQ(t.Fraction(OpCategory::kD2H), 0.75);
}

TEST(Trace, OverlapFactorAboveOneMeansConcurrency) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 1.0));
  t.Add(Ev(OpCategory::kD2H, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(t.OverlapFactor(), 2.0);
}

TEST(Trace, ClearEmpties) {
  Trace t;
  t.Add(Ev(OpCategory::kKernel, 0.0, 1.0));
  t.Clear();
  EXPECT_TRUE(t.events().empty());
}

TEST(OpCategoryNames, AllDistinct) {
  EXPECT_STREQ(OpCategoryName(OpCategory::kKernel), "kernel");
  EXPECT_STREQ(OpCategoryName(OpCategory::kH2D), "h2d");
  EXPECT_STREQ(OpCategoryName(OpCategory::kD2H), "d2h");
  EXPECT_STREQ(OpCategoryName(OpCategory::kAlloc), "alloc");
}

}  // namespace
}  // namespace oocgemm::vgpu
