// End-to-end serving runtime tests: the concurrent-jobs oracle, admission
// rejection, the timeout watchdog, and scheduler-level retry-with-replan.
#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "kernels/reference_spgemm.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace oocgemm::serve {
namespace {

using sparse::Csr;

std::shared_ptr<const Csr> Shared(Csr m) {
  return std::make_shared<const Csr>(std::move(m));
}

// The acceptance-criterion workload at test scale: a mixed batch submitted
// all at once, every result bit-checked against the reference, zero device
// OOMs (over-capacity demand is queued or rejected, never crashed).
TEST(SpgemmServer, Mixed64JobsConcurrentlyAllMatchReference) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));  // 1 MiB
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 3;
  config.max_queue = 64;
  SpgemmServer server(device, pool, config);

  std::vector<std::shared_ptr<const Csr>> mats;
  for (int i = 0; i < 8; ++i) {
    mats.push_back(Shared(testutil::RandomCsr(64, 64, 4.0, 100 + i)));
  }
  for (int i = 0; i < 4; ++i) {
    mats.push_back(Shared(testutil::RandomRmat(7, 8.0, 200 + i)));
  }
  for (int i = 0; i < 2; ++i) {
    mats.push_back(Shared(testutil::RandomRmat(9, 8.0, 300 + i)));
  }

  struct Pending {
    std::shared_ptr<const Csr> a, b;
    std::future<JobResult> future;
  };
  std::vector<Pending> pending;
  for (int i = 0; i < 64; ++i) {
    SpgemmJob job;
    job.a = mats[static_cast<std::size_t>(i) % mats.size()];
    job.b = mats[static_cast<std::size_t>(i * 7 + 3) % mats.size()];
    if (job.a->cols() != job.b->rows()) job.b = job.a;
    job.options.priority = i % 3;
    pending.push_back({job.a, job.b, server.Submit(std::move(job))});
  }
  server.Drain();

  int completed = 0;
  for (auto& p : pending) {
    JobResult r = p.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(
        testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*p.a, *p.b)));
    EXPECT_GE(r.metrics.virtual_finish, r.metrics.virtual_start);
    ++completed;
  }
  EXPECT_EQ(completed, 64);

  ServerReport report = server.Report();
  EXPECT_EQ(report.submitted, 64);
  EXPECT_EQ(report.completed, 64);
  EXPECT_EQ(report.device_oom_failures, 0);
  EXPECT_EQ(report.via_cpu + report.via_gpu + report.via_hybrid, 64);
  EXPECT_GT(report.jobs_per_second, 0.0);
  EXPECT_GE(report.latency_p99, report.latency_p50);
  // The JSON export carries the headline fields.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"jobs_per_second\""), std::string::npos);
  EXPECT_NE(json.find("\"rejection_rate\""), std::string::npos);
}

TEST(SpgemmServer, AdmissionRejectsWhenOverHostBudget) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  ServerConfig config;
  config.admission.host_bytes_budget = 1;  // nothing fits
  SpgemmServer server(device, pool, config);

  auto a = Shared(testutil::RandomCsr(64, 64, 4.0, 1));
  auto f = server.Submit({a, a, {}});
  JobResult r = f.get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r.metrics.outcome, JobOutcome::kRejected);
  EXPECT_EQ(server.Report().rejected, 1);
  EXPECT_DOUBLE_EQ(server.Report().rejection_rate, 1.0);
}

TEST(SpgemmServer, GpuOnlyJobTooBigForDeviceIsRejectedUpFront) {
  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
  props.memory_bytes = 1 << 10;  // 1 KiB: no panel split fits
  vgpu::Device device(props);
  ThreadPool pool(1);
  SpgemmServer server(device, pool, ServerConfig{});

  auto a = Shared(testutil::RandomRmat(8, 8.0, 2));
  SpgemmJob job{a, a, {}};
  job.options.mode = core::ExecutionMode::kHybrid;
  JobResult r = server.Submit(std::move(job)).get();
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(r.metrics.outcome, JobOutcome::kRejected);

  // The same job under kAuto degrades to the CPU path and completes.
  JobResult auto_r = server.Submit({a, a, {}}).get();
  ASSERT_TRUE(auto_r.ok()) << auto_r.status.ToString();
  EXPECT_EQ(auto_r.metrics.executor, core::ExecutionMode::kCpuOnly);
  EXPECT_TRUE(
      testutil::CsrNear(auto_r.c, kernels::ReferenceSpgemm(*a, *a)));
}

TEST(SpgemmServer, QueueFullRejectsWhileWorkerBusy) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.max_queue = 2;
  SpgemmServer server(device, pool, config);

  auto big = Shared(testutil::RandomRmat(9, 8.0, 3));
  auto small = Shared(testutil::RandomCsr(32, 32, 2.0, 4));

  std::vector<std::future<JobResult>> futures;
  futures.push_back(server.Submit({big, big, {}}));  // occupies the worker
  for (int i = 0; i < 6; ++i) {
    futures.push_back(server.Submit({small, small, {}}));
  }
  server.Drain();

  int rejected = 0, completed = 0;
  for (auto& f : futures) {
    JobResult r = f.get();
    if (r.metrics.outcome == JobOutcome::kRejected) {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    } else {
      EXPECT_TRUE(r.ok());
      ++completed;
    }
  }
  EXPECT_EQ(rejected + completed, 7);
  EXPECT_GE(rejected, 1);  // queue bound 2 < 6 small jobs behind the big one
  EXPECT_EQ(server.Report().device_oom_failures, 0);
}

TEST(SpgemmServer, TimeoutCancelsViaWatchdog) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  SpgemmServer server(device, pool, config);

  auto big = Shared(testutil::RandomRmat(10, 8.0, 5));
  SpgemmJob job{big, big, {}};
  job.options.timeout_seconds = 0.002;  // far below the job's real runtime
  job.options.mode = core::ExecutionMode::kHybrid;  // multi-chunk: many
                                                    // cancellation points
  JobResult r = server.Submit(std::move(job)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.metrics.outcome, JobOutcome::kTimedOut);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(server.Report().timed_out, 1);

  // The worker survives a cancelled job: the next one completes.
  auto small = Shared(testutil::RandomCsr(32, 32, 2.0, 6));
  JobResult next = server.Submit({small, small, {}}).get();
  EXPECT_TRUE(next.ok()) << next.status.ToString();
}

TEST(SpgemmServer, RetryWithReplanRecoversFromUndersizedPools) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  SpgemmServer server(device, pool, config);

  auto a = Shared(testutil::RandomRmat(9, 8.0, 1));
  SpgemmJob job{a, a, {}};
  // Deliberately under-size the pools (the estimate is scaled to 1/8 of the
  // prediction) so the first attempt must overflow; the scheduler owns the
  // doubling retries because the executor's internal loop is disabled.
  job.options.exec.plan.nnz_safety_factor = 0.125;
  job.options.mode = core::ExecutionMode::kGpuOutOfCore;
  job.options.max_retries = 4;
  JobResult r = server.Submit(std::move(job)).get();
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_GT(r.metrics.attempts, 1);
  EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*a, *a)));
  EXPECT_GE(server.Report().retries, 1);
}

TEST(SpgemmServer, PriorityDispatchOrder) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(1);
  ServerConfig config;
  config.scheduler.num_workers = 1;
  config.scheduler.cpu_lanes = 1;
  SpgemmServer server(device, pool, config);

  auto blocker = Shared(testutil::RandomRmat(9, 8.0, 8));
  auto small = Shared(testutil::RandomCsr(48, 48, 3.0, 9));

  auto fb = server.Submit({blocker, blocker, {}});
  SpgemmJob low{small, small, {}};
  low.options.priority = 0;
  low.options.mode = core::ExecutionMode::kCpuOnly;
  SpgemmJob high{small, small, {}};
  high.options.priority = 10;
  high.options.mode = core::ExecutionMode::kCpuOnly;
  auto f_low = server.Submit(std::move(low));
  auto f_high = server.Submit(std::move(high));
  server.Drain();

  JobResult r_low = f_low.get();
  JobResult r_high = f_high.get();
  ASSERT_TRUE(r_low.ok() && r_high.ok());
  // The high-priority job left the queue first, so it was booked first on
  // the single CPU lane.
  EXPECT_LT(r_high.metrics.virtual_start, r_low.metrics.virtual_start);
  (void)fb.get();
}

// Tenant attribution flows submit -> scheduler -> report, and a hostile
// tenant id (quotes, backslashes, newlines, control bytes) cannot malform
// the report JSON: it comes back escaped, in a document that still parses.
TEST(SpgemmServer, TenantSectionsEscapeHostileIds) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  SpgemmServer server(device, pool, {});

  const std::string hostile = "evil\"tenant\\\n\x01";
  auto m = Shared(testutil::RandomCsr(48, 48, 3.0, 7));
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 3; ++i) {
    SpgemmJob job{m, m, {}};
    job.options.tenant = i < 2 ? "alice" : hostile;
    futures.push_back(server.Submit(std::move(job)));
  }
  // A rejected submission must attribute to its tenant too.
  SpgemmJob bad;
  bad.a = m;  // missing b
  bad.options.tenant = hostile;
  futures.push_back(server.Submit(std::move(bad)));
  server.Drain();
  for (std::size_t i = 0; i < 3; ++i) EXPECT_TRUE(futures[i].get().ok());
  EXPECT_FALSE(futures[3].get().ok());

  const ServerReport report = server.Report();
  ASSERT_EQ(report.tenants.size(), 2u);  // name-sorted: alice, then evil...
  EXPECT_EQ(report.tenants[0].tenant, "alice");
  EXPECT_EQ(report.tenants[0].submitted, 2);
  EXPECT_EQ(report.tenants[0].completed, 2);
  EXPECT_EQ(report.tenants[1].tenant, hostile);
  EXPECT_EQ(report.tenants[1].submitted, 2);
  EXPECT_EQ(report.tenants[1].completed, 1);
  EXPECT_EQ(report.tenants[1].rejected, 1);

  const std::string json = report.ToJson();
  // The raw hostile bytes never appear; the escaped form does.
  EXPECT_EQ(json.find(hostile), std::string::npos);
  EXPECT_NE(json.find("evil\\\"tenant\\\\\\n\\u0001"), std::string::npos);
  // Structural sanity: balanced braces/brackets and an even quote count
  // mean the hostile id did not break out of its string literal.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace oocgemm::serve
