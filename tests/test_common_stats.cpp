#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace oocgemm {
namespace {

TEST(Summarize, EmptyGivesZeros) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.total, 0.0);
}

TEST(Summarize, SingleValue) {
  Summary s = Summarize({5.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.p50, 5.0);
}

TEST(Summarize, KnownDistribution) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.total, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_NEAR(s.stddev, 1.1180, 1e-3);
}

TEST(Summarize, PercentilesOrdered) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i));
  Summary s = Summarize(v);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_NEAR(s.p50, 499.5, 1.0);
  EXPECT_NEAR(s.p90, 899.1, 1.5);
}

TEST(Gini, UniformIsZero) {
  EXPECT_NEAR(GiniCoefficient({3.0, 3.0, 3.0, 3.0}), 0.0, 1e-12);
}

TEST(Gini, ExtremeSkewApproachesOne) {
  std::vector<double> v(100, 0.0);
  v.back() = 1000.0;
  EXPECT_GT(GiniCoefficient(v), 0.95);
}

TEST(Gini, DegenerateInputs) {
  EXPECT_EQ(GiniCoefficient({}), 0.0);
  EXPECT_EQ(GiniCoefficient({1.0}), 0.0);
  EXPECT_EQ(GiniCoefficient({0.0, 0.0}), 0.0);
}

TEST(Gini, MonotoneInSkew) {
  const double mild = GiniCoefficient({1, 2, 3, 4});
  const double strong = GiniCoefficient({1, 1, 1, 97});
  EXPECT_LT(mild, strong);
}

TEST(RunningStat, MatchesBatch) {
  RunningStat rs;
  std::vector<double> v{1.0, 4.0, 9.0, 16.0, 25.0};
  for (double x : v) rs.Add(x);
  Summary s = Summarize(v);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.variance(), s.stddev * s.stddev, 1e-9);
  EXPECT_EQ(rs.min(), 1.0);
  EXPECT_EQ(rs.max(), 25.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.variance(), 0.0);
}

// ---- Edge-case backfill (PR 5): the quantile property tests in
// test_obs_metrics.cpp lean on Summarize as the exact oracle, so its own
// degenerate inputs are pinned here.

TEST(Summarize, EmptyPercentilesAreZero) {
  Summary s = Summarize({});
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(Summarize, SingleValueAllPercentilesCollapse) {
  Summary s = Summarize({-2.5});
  EXPECT_EQ(s.p50, -2.5);
  EXPECT_EQ(s.p90, -2.5);
  EXPECT_EQ(s.p95, -2.5);
  EXPECT_EQ(s.p99, -2.5);
  EXPECT_EQ(s.total, -2.5);
}

TEST(Summarize, ConstantInput) {
  Summary s = Summarize(std::vector<double>(64, 7.0));
  EXPECT_EQ(s.count, 64u);
  EXPECT_EQ(s.min, 7.0);
  EXPECT_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_NEAR(s.stddev, 0.0, 1e-12);
  EXPECT_EQ(s.p50, 7.0);
  EXPECT_EQ(s.p99, 7.0);
  EXPECT_DOUBLE_EQ(s.total, 64 * 7.0);
}

TEST(Summarize, UnsortedInputIsSortedInternally) {
  Summary s = Summarize({9.0, 1.0, 5.0});
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_EQ(s.p50, 5.0);
}

TEST(RunningStat, MinMaxBeforeFirstAddAreZero) {
  // Documented quirk: min()/max() read 0.0 until the first Add seeds them.
  RunningStat rs;
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
  EXPECT_EQ(rs.mean(), 0.0);
}

TEST(RunningStat, FirstAddSeedsMinMaxEvenWhenNegative) {
  RunningStat rs;
  rs.Add(-3.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), -3.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.Add(2.0);
  EXPECT_EQ(rs.min(), -3.0);
  EXPECT_EQ(rs.max(), 2.0);
}

}  // namespace
}  // namespace oocgemm
