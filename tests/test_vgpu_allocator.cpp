#include "vgpu/allocator.hpp"

#include <gtest/gtest.h>

namespace oocgemm::vgpu {
namespace {

TEST(FreeListAllocator, AllocatesAlignedBlocks) {
  FreeListAllocator alloc(1 << 20);
  auto p = alloc.Allocate(100);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->offset % 256, 0);
  EXPECT_GE(p->size, 100);
  EXPECT_EQ(p->size % 256, 0);
}

TEST(FreeListAllocator, ZeroByteAllocationStillDistinct) {
  FreeListAllocator alloc(1 << 16);
  auto a = alloc.Allocate(0);
  auto b = alloc.Allocate(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->offset, b->offset);
}

TEST(FreeListAllocator, NegativeSizeRejected) {
  FreeListAllocator alloc(1 << 16);
  EXPECT_FALSE(alloc.Allocate(-1).ok());
}

TEST(FreeListAllocator, TracksUsageAndPeak) {
  FreeListAllocator alloc(1 << 16);
  auto a = alloc.Allocate(1000);
  auto b = alloc.Allocate(2000);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::int64_t at_peak = alloc.used_bytes();
  alloc.Free(a.value());
  EXPECT_LT(alloc.used_bytes(), at_peak);
  EXPECT_EQ(alloc.peak_bytes(), at_peak);
  alloc.Free(b.value());
  EXPECT_EQ(alloc.used_bytes(), 0);
  EXPECT_EQ(alloc.num_allocations(), 0u);
}

TEST(FreeListAllocator, OutOfMemoryReported) {
  FreeListAllocator alloc(1024);
  auto a = alloc.Allocate(512);
  ASSERT_TRUE(a.ok());
  auto b = alloc.Allocate(1024);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
}

TEST(FreeListAllocator, CoalescesNeighbours) {
  FreeListAllocator alloc(4096);
  auto a = alloc.Allocate(1024);
  auto b = alloc.Allocate(1024);
  auto c = alloc.Allocate(1024);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  alloc.Free(a.value());
  alloc.Free(c.value());
  alloc.Free(b.value());  // merges with both neighbours
  EXPECT_EQ(alloc.largest_free_block(), 4096);
  auto whole = alloc.Allocate(4096);
  EXPECT_TRUE(whole.ok());
}

TEST(FreeListAllocator, ReusesFreedSpace) {
  FreeListAllocator alloc(2048);
  auto a = alloc.Allocate(2048);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(alloc.Allocate(256).ok());
  alloc.Free(a.value());
  EXPECT_TRUE(alloc.Allocate(2048).ok());
}

TEST(FreeListAllocator, FragmentationBlocksLargeAllocation) {
  FreeListAllocator alloc(4096);
  auto a = alloc.Allocate(1024);
  auto b = alloc.Allocate(1024);
  auto c = alloc.Allocate(1024);
  auto d = alloc.Allocate(1024);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  alloc.Free(a.value());
  alloc.Free(c.value());
  // 2048 bytes free but in two non-adjacent 1024 blocks.
  EXPECT_EQ(alloc.free_bytes(), 2048);
  EXPECT_EQ(alloc.largest_free_block(), 1024);
  EXPECT_FALSE(alloc.Allocate(2048).ok());
}

TEST(FreeListAllocator, FreeOfNullIsNoop) {
  FreeListAllocator alloc(1024);
  alloc.Free(DevicePtr{});
  EXPECT_EQ(alloc.used_bytes(), 0);
}

TEST(FreeListAllocatorDeath, DoubleFreeAborts) {
  FreeListAllocator alloc(1024);
  auto a = alloc.Allocate(128);
  ASSERT_TRUE(a.ok());
  alloc.Free(a.value());
  EXPECT_DEATH(alloc.Free(a.value()), "OOC_CHECK");
}

TEST(DevicePtr, SliceWithinBounds) {
  DevicePtr p{1024, 512};
  DevicePtr s = p.Slice(128, 256);
  EXPECT_EQ(s.offset, 1152);
  EXPECT_EQ(s.size, 256);
}

TEST(DevicePtrDeath, SliceOutOfBoundsAborts) {
  DevicePtr p{0, 100};
  EXPECT_DEATH(p.Slice(50, 100), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::vgpu
