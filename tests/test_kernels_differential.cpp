// Differential harness for the accumulator-strategy family (PR 8 satellite
// 1): every registered strategy, forced through the full two-phase CPU
// SpGEMM (symbolic + numeric), must produce bit-identical structure
// (row_offsets, col_ids) and tolerance-bounded values against
// ReferenceSpgemm on every adversarial input class:
//
//   * empty rows                — rows with zero products route/skip cleanly
//   * single-entry rows         — runs of length one everywhere
//   * duplicate-heavy rows      — narrow B so most products collide
//   * dense rows                — output rows filling most of the panel
//   * INT32-boundary column ids — b_cols near INT32_MAX (exercises the
//                                 dense feasibility gate's hash fallback)
//
// Inputs come from one seeded generator so any failure replays from a
// single integer (the seed is part of the test's SCOPED_TRACE).  Values are
// positive, so strategy-dependent summation order cannot cancel — the
// CsrNear relative tolerance then genuinely bounds accumulated ULP error.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "kernels/kernel_registry.hpp"
#include "kernels/reference_spgemm.hpp"
#include "kernels/spgemm_phases.hpp"
#include "sparse/coo.hpp"
#include "test_util.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;
using sparse::index_t;
using sparse::value_t;

/// Seeded positive-valued random CSR: every structural choice and every
/// value derives from `seed` alone.
Csr PositiveCsr(index_t rows, index_t cols, int degree, std::uint64_t seed) {
  Pcg32 rng(seed);
  sparse::Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t r = 0; r < rows; ++r) {
    const int nnz = static_cast<int>(rng.Below(static_cast<std::uint32_t>(degree + 1)));
    for (int i = 0; i < nnz; ++i) {
      coo.Add(r, static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(cols))),
              rng.Uniform(0.1, 1.0));
    }
  }
  return sparse::CooToCsr(coo);
}

struct InputClass {
  const char* name;
  Csr a;
  Csr b;
};

/// The five adversarial classes, all derived from one seed.
std::vector<InputClass> MakeInputClasses(std::uint64_t seed) {
  std::vector<InputClass> classes;

  {  // Empty rows: only every fourth A row has entries; B has gaps too.
    Pcg32 rng(seed);
    sparse::Coo a;
    a.rows = 64;
    a.cols = 48;
    for (index_t r = 0; r < a.rows; r += 4) {
      for (int i = 0; i < 3; ++i) {
        a.Add(r, static_cast<index_t>(rng.Below(48)), rng.Uniform(0.1, 1.0));
      }
    }
    classes.push_back(
        {"empty_rows", sparse::CooToCsr(a), PositiveCsr(48, 40, 2, seed + 1)});
  }

  {  // Single-entry rows: exactly one entry per row of A and of B.
    Pcg32 rng(seed + 2);
    sparse::Coo a, b;
    a.rows = 100;
    a.cols = 80;
    b.rows = 80;
    b.cols = 90;
    for (index_t r = 0; r < a.rows; ++r) {
      a.Add(r, static_cast<index_t>(rng.Below(80)), rng.Uniform(0.1, 1.0));
    }
    for (index_t r = 0; r < b.rows; ++r) {
      b.Add(r, static_cast<index_t>(rng.Below(90)), rng.Uniform(0.1, 1.0));
    }
    classes.push_back(
        {"single_entry", sparse::CooToCsr(a), sparse::CooToCsr(b)});
  }

  {  // Duplicate-heavy: B only 6 columns wide, so nearly every product of a
     // row collides with an earlier one.
    classes.push_back({"duplicate_heavy", PositiveCsr(40, 64, 12, seed + 3),
                       PositiveCsr(64, 6, 4, seed + 4)});
  }

  {  // Dense rows: high degree against a narrow panel fills most columns.
    classes.push_back({"dense_rows", PositiveCsr(32, 96, 24, seed + 5),
                       PositiveCsr(96, 32, 16, seed + 6)});
  }

  {  // INT32-boundary column ids: a B panel whose width is at the index
     // type's edge.  Dense scratch is infeasible here (kMaxFeasibleCols),
     // so forcing kDense must take the hash fallback, and every strategy
     // must keep ids exact where value_t could not represent them.
    Pcg32 rng(seed + 7);
    const index_t wide = INT32_MAX - 2;
    sparse::Coo a, b;
    a.rows = 24;
    a.cols = 16;
    b.rows = 16;
    b.cols = wide;
    for (index_t r = 0; r < a.rows; ++r) {
      a.Add(r, static_cast<index_t>(rng.Below(16)), rng.Uniform(0.1, 1.0));
      a.Add(r, static_cast<index_t>(rng.Below(16)), rng.Uniform(0.1, 1.0));
    }
    for (index_t r = 0; r < b.rows; ++r) {
      // Cluster ids at the top of the range: wide-1, wide-2, ... plus a few
      // low ones so each run spans the whole index space.
      b.Add(r, static_cast<index_t>(rng.Below(8)), rng.Uniform(0.1, 1.0));
      b.Add(r, wide - 1 - static_cast<index_t>(rng.Below(8)),
            rng.Uniform(0.1, 1.0));
    }
    classes.push_back({"int32_boundary", sparse::CooToCsr(a), sparse::CooToCsr(b)});
  }

  return classes;
}

class DifferentialSpgemm
    : public ::testing::TestWithParam<AccumulatorKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DifferentialSpgemm, ::testing::ValuesIn(kAllStrategies),
    [](const ::testing::TestParamInfo<AccumulatorKind>& info) {
      return std::string(AccumulatorKindName(info.param));
    });

TEST_P(DifferentialSpgemm, NumericMatchesReferenceOnAllClasses) {
  constexpr std::uint64_t kSeed = 20210808;
  CpuSpgemmOptions opts;
  opts.accumulator = GetParam();
  for (const InputClass& input : MakeInputClasses(kSeed)) {
    SCOPED_TRACE(std::string(input.name) + " seed=" + std::to_string(kSeed));
    const Csr expected = ReferenceSpgemm(input.a, input.b);
    const Csr got = CpuSpgemmSerial(input.a, input.b, opts);
    // CsrNear demands bit-identical row_offsets and col_ids; values are
    // rel-tol bounded (positive inputs, so no cancellation slack needed).
    EXPECT_TRUE(testutil::CsrNear(got, expected, 1e-11));
  }
}

TEST_P(DifferentialSpgemm, SymbolicCountsMatchReferenceOnAllClasses) {
  // Drive the symbolic phase directly (not via the full multiply) so a
  // numeric-phase bug cannot mask a symbolic one.
  constexpr std::uint64_t kSeed = 4242;
  for (const InputClass& input : MakeInputClasses(kSeed)) {
    SCOPED_TRACE(std::string(input.name) + " seed=" + std::to_string(kSeed));
    const Csr& a = input.a;
    const Csr& b = input.b;
    const Csr expected = ReferenceSpgemm(a, b);
    std::vector<index_t> rows;
    std::vector<std::int64_t> flops(static_cast<std::size_t>(a.rows()), 0);
    for (index_t r = 0; r < a.rows(); ++r) {
      rows.push_back(r);
      for (offset_t k = a.row_offsets()[static_cast<std::size_t>(r)];
           k < a.row_offsets()[static_cast<std::size_t>(r) + 1]; ++k) {
        flops[static_cast<std::size_t>(r)] +=
            2 * b.row_nnz(a.col_ids()[static_cast<std::size_t>(k)]);
      }
    }
    AccumulatorScratch scratch;
    std::vector<std::int64_t> row_nnz(rows.size(), -1);
    SymbolicRows(a.row_offsets().data(), a.col_ids().data(),
                 b.row_offsets().data(), b.col_ids().data(), b.cols(), rows,
                 flops.data(), GetParam(), scratch, row_nnz.data());
    for (index_t r = 0; r < a.rows(); ++r) {
      ASSERT_EQ(row_nnz[static_cast<std::size_t>(r)],
                expected.row_nnz(r))
          << "row " << r;
    }
  }
}

TEST(DifferentialSpgemm, ForcedStrategiesAgreePairwise) {
  // Beyond matching the oracle, all strategies must match *each other*
  // bit-for-bit structurally on a larger skewed input.
  const Csr a = testutil::RandomRmat(7, 6.0, 11);
  Csr first;
  bool have_first = false;
  for (AccumulatorKind kind : kAllStrategies) {
    CpuSpgemmOptions opts;
    opts.accumulator = kind;
    Csr c = CpuSpgemmSerial(a, a, opts);
    if (!have_first) {
      first = std::move(c);
      have_first = true;
      continue;
    }
    SCOPED_TRACE(AccumulatorKindName(kind));
    EXPECT_TRUE(testutil::CsrNear(c, first, 1e-9));
  }
}

}  // namespace
}  // namespace oocgemm::kernels
