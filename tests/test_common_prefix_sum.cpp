#include "common/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace oocgemm {
namespace {

TEST(ExclusiveScan, EmptyInput) {
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> offsets = ExclusiveScan(counts);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], 0);
}

TEST(ExclusiveScan, SingleElement) {
  std::vector<std::int64_t> offsets = ExclusiveScan({7});
  EXPECT_EQ(offsets, (std::vector<std::int64_t>{0, 7}));
}

TEST(ExclusiveScan, KnownSequence) {
  std::vector<std::int64_t> offsets = ExclusiveScan({3, 0, 2, 5});
  EXPECT_EQ(offsets, (std::vector<std::int64_t>{0, 3, 3, 5, 10}));
}

TEST(ExclusiveScan, ReturnsTotal) {
  std::vector<std::int64_t> counts{1, 2, 3, 4};
  std::vector<std::int64_t> offsets(5);
  EXPECT_EQ(ExclusiveScan(counts.data(), counts.size(), offsets.data()), 10);
}

TEST(ExclusiveScanInPlace, MatchesOutOfPlace) {
  std::vector<std::int64_t> v{4, 1, 0, 9, 2};
  std::vector<std::int64_t> io = v;
  const std::int64_t total = ExclusiveScanInPlace(io.data(), io.size());
  EXPECT_EQ(total, 16);
  std::vector<std::int64_t> expected(v.size() + 1);
  ExclusiveScan(v.data(), v.size(), expected.data());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(io[i], expected[i]);
}

TEST(ParallelExclusiveScan, MatchesSerialSmall) {
  ThreadPool pool(4);
  std::vector<std::int64_t> counts{5, 0, 1, 2, 3};
  std::vector<std::int64_t> serial(counts.size() + 1);
  std::vector<std::int64_t> parallel(counts.size() + 1);
  ExclusiveScan(counts.data(), counts.size(), serial.data());
  ParallelExclusiveScan(counts.data(), counts.size(), parallel.data(), pool);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelExclusiveScan, MatchesSerialLargeRandom) {
  ThreadPool pool(4);
  Pcg32 rng(123);
  std::vector<std::int64_t> counts(100000);
  for (auto& c : counts) c = rng.Below(17);
  std::vector<std::int64_t> serial(counts.size() + 1);
  std::vector<std::int64_t> parallel(counts.size() + 1);
  const std::int64_t st =
      ExclusiveScan(counts.data(), counts.size(), serial.data());
  const std::int64_t pt = ParallelExclusiveScan(counts.data(), counts.size(),
                                                parallel.data(), pool);
  EXPECT_EQ(st, pt);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelExclusiveScan, AllZeros) {
  ThreadPool pool(3);
  std::vector<std::int64_t> counts(50000, 0);
  std::vector<std::int64_t> offsets(counts.size() + 1);
  EXPECT_EQ(ParallelExclusiveScan(counts.data(), counts.size(), offsets.data(),
                                  pool),
            0);
  EXPECT_EQ(offsets.back(), 0);
  EXPECT_EQ(offsets.front(), 0);
}

}  // namespace
}  // namespace oocgemm
