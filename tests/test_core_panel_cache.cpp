#include "core/panel_cache.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

vgpu::DeviceProperties Props() {
  vgpu::DeviceProperties p;
  p.memory_bytes = 4 << 20;
  return p;
}

Csr Panel(int seed) { return testutil::RandomCsr(128, 128, 4.0, seed); }

std::int64_t SlotBytes() { return 256 << 10; }

TEST(PanelCache, FirstAcquireUploads) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  Csr p = Panel(1);
  auto d = cache.Acquire(host, *s, PanelCache::kA, 0, p, true);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(d->nnz, p.nnz());
  // The data actually landed in device memory.
  EXPECT_EQ(device.As<sparse::index_t>(d->col_ids)[0], p.col_ids()[0]);
}

TEST(PanelCache, SecondAcquireHits) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  Csr p = Panel(2);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 0, p, true).ok());
  const auto h2d_before = device.trace().Bytes(vgpu::OpCategory::kH2D);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 0, p, true).ok());
  EXPECT_EQ(cache.hits(), 1);
  // No new transfer was issued.
  EXPECT_EQ(device.trace().Bytes(vgpu::OpCategory::kH2D), h2d_before);
}

TEST(PanelCache, TwoSlotsHoldTwoPanels) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  Csr p0 = Panel(3), p1 = Panel(4);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kB, 0, p0, true).ok());
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kB, 1, p1, true).ok());
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kB, 0, p0, true).ok());
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kB, 1, p1, true).ok());
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 2);
}

TEST(PanelCache, ThirdPanelEvictsLru) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  Csr p0 = Panel(5), p1 = Panel(6), p2 = Panel(7);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 0, p0, true).ok());
  cache.MarkUse(*s, PanelCache::kA, 0);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 1, p1, true).ok());
  cache.MarkUse(*s, PanelCache::kA, 1);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 2, p2, true).ok());
  // Panel 0 (least recently used) was evicted; panel 1 still cached.
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 1, p1, true).ok());
  EXPECT_EQ(cache.hits(), 1);
  ASSERT_TRUE(cache.Acquire(host, *s, PanelCache::kA, 0, p0, true).ok());
  EXPECT_EQ(cache.misses(), 4);
}

TEST(PanelCache, EvictionWaitsForReaders) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s1 = device.CreateStream("a");
  vgpu::Stream* s2 = device.CreateStream("b");
  Csr p0 = Panel(8), p1 = Panel(9), p2 = Panel(10);

  auto d0 = cache.Acquire(host, *s1, PanelCache::kA, 0, p0, true);
  ASSERT_TRUE(d0.ok());
  // A long kernel on s1 reads panel 0.
  device.LaunchKernel(host, *s1, "reader0", 50e-3,
                      {{d0->col_ids.offset, d0->col_ids.size, false}}, [] {});
  cache.MarkUse(*s1, PanelCache::kA, 0);
  auto d1 = cache.Acquire(host, *s1, PanelCache::kA, 1, p1, true);
  ASSERT_TRUE(d1.ok());
  // An even longer kernel reads panel 1, so panel 0 is the LRU victim.
  device.LaunchKernel(host, *s1, "reader1", 50e-3,
                      {{d1->col_ids.offset, d1->col_ids.size, false}}, [] {});
  cache.MarkUse(*s1, PanelCache::kA, 1);

  // Evicting panel 0 (readers end at 50 ms) on stream s2 must wait for its
  // reader before the replacing upload may start.
  ASSERT_TRUE(cache.Acquire(host, *s2, PanelCache::kA, 2, p2, true).ok());
  EXPECT_GE(s2->last_end(), 50e-3);
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(PanelCache, PanelLargerThanSlotIsOom) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, /*max_a_bytes=*/1024, SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  Csr big = Panel(11);
  auto d = cache.Acquire(host, *s, PanelCache::kA, 0, big, true);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kOutOfMemory);
}

TEST(PanelCacheDeath, MarkUseOfUncachedPanelAborts) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  PanelCache cache(device, host, SlotBytes(), SlotBytes());
  vgpu::Stream* s = device.CreateStream("t");
  EXPECT_DEATH(cache.MarkUse(*s, PanelCache::kA, 42), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::core
