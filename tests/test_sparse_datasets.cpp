#include "sparse/datasets.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sparse/analysis.hpp"

namespace oocgemm::sparse {
namespace {

TEST(Datasets, HasNineMatricesInPaperOrder) {
  auto v = PaperMatrices();
  ASSERT_EQ(v.size(), 9u);
  EXPECT_EQ(v[0].abbr, "lj2008");
  EXPECT_EQ(v[3].abbr, "stokes");
  EXPECT_EQ(v[4].abbr, "uk-2002");
  EXPECT_EQ(v[6].abbr, "nlp");
  EXPECT_EQ(v[8].abbr, "wiki0925");
}

TEST(Datasets, AbbreviationsUnique) {
  std::set<std::string> abbrs;
  for (const auto& d : PaperMatrices()) abbrs.insert(d.abbr);
  EXPECT_EQ(abbrs.size(), 9u);
}

TEST(Datasets, PaperFeaturesRecorded) {
  for (const auto& d : PaperMatrices()) {
    EXPECT_GT(d.paper.n_millions, 0.0) << d.abbr;
    EXPECT_GT(d.paper.nnz_millions, 0.0) << d.abbr;
    EXPECT_GT(d.paper.compression_ratio, 1.0) << d.abbr;
  }
}

TEST(Datasets, LookupByAbbrAndName) {
  EXPECT_EQ(PaperMatrix("com-lj").name, "com-LiveJournal");
  EXPECT_EQ(PaperMatrix("nlpkkt200").abbr, "nlp");
}

TEST(DatasetsDeath, UnknownAbbrAborts) {
  EXPECT_DEATH(PaperMatrix("not-a-matrix"), "OOC_CHECK");
}

TEST(Datasets, BuildersProduceValidSquareMatrices) {
  for (const auto& d : PaperMatrices(/*scale_shift=*/3)) {
    Csr m = d.build();
    EXPECT_TRUE(m.Validate().ok()) << d.abbr;
    EXPECT_EQ(m.rows(), m.cols()) << d.abbr;
    EXPECT_GT(m.nnz(), 0) << d.abbr;
  }
}

TEST(Datasets, ScaleShiftShrinks) {
  DatasetSpec big = PaperMatrix("com-lj", 2);
  DatasetSpec small = PaperMatrix("com-lj", 4);
  EXPECT_GT(big.build().rows(), small.build().rows());
}

TEST(Datasets, BuildersDeterministic) {
  DatasetSpec d1 = PaperMatrix("wiki0206", 3);
  DatasetSpec d2 = PaperMatrix("wiki0206", 3);
  EXPECT_TRUE(d1.build() == d2.build());
}

TEST(Datasets, CompressionRatioClassesPreserved) {
  // The substitution promise (DESIGN.md): high-cr originals map to high-cr
  // stand-ins.  At shift 2 the ratios are smaller than full scale but the
  // ordering of classes must hold: nlp/uk/stokes above the social graphs.
  auto cr = [&](const char* abbr) {
    DatasetSpec d = PaperMatrix(abbr, 2);
    Csr m = d.build();
    ProductStats s = AnalyzeProduct(m, m);
    return s.compression_ratio;
  };
  const double nlp = cr("nlp");
  const double uk = cr("uk-2002");
  const double stokes = cr("stokes");
  const double comlj = cr("com-lj");
  EXPECT_GT(nlp, comlj);
  EXPECT_GT(uk, comlj);
  EXPECT_GT(stokes, comlj);
}

}  // namespace
}  // namespace oocgemm::sparse
