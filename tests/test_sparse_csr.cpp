#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

Csr SmallMatrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return Csr(3, 3, {0, 2, 2, 4}, {0, 2, 0, 1}, {1.0, 2.0, 3.0, 4.0});
}

TEST(Csr, DefaultIsEmpty) {
  Csr m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.Validate().ok());
}

TEST(Csr, EmptyShapeConstructor) {
  Csr m(5, 7);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 7);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.Validate().ok());
  for (index_t r = 0; r < 5; ++r) EXPECT_EQ(m.row_nnz(r), 0);
}

TEST(Csr, RowAccessors) {
  Csr m = SmallMatrix();
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 2);
  EXPECT_EQ(m.row_begin(2), 2);
  EXPECT_EQ(m.row_end(2), 4);
}

TEST(Csr, StorageBytes) {
  Csr m = SmallMatrix();
  EXPECT_EQ(m.StorageBytes(),
            static_cast<std::int64_t>(4 * sizeof(offset_t) +
                                      4 * sizeof(index_t) +
                                      4 * sizeof(value_t)));
}

TEST(Csr, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(SmallMatrix().Validate().ok());
}

TEST(Csr, ValidateRejectsNonMonotoneOffsets) {
  Csr m(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0});
  Status st = m.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Csr, ValidateRejectsOutOfRangeColumn) {
  Csr m(2, 2, {0, 1, 2}, {0, 5}, {1.0, 1.0});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(Csr, ValidateRejectsNegativeColumn) {
  Csr m(1, 3, {0, 1}, {-1}, {1.0});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(Csr, ValidateRejectsUnsortedRow) {
  Csr m(1, 3, {0, 2}, {2, 0}, {1.0, 1.0});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(Csr, ValidateRejectsDuplicateColumn) {
  Csr m(1, 3, {0, 2}, {1, 1}, {1.0, 1.0});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(Csr, SortRowsByColumnFixesOrder) {
  Csr m(2, 4, {0, 3, 4}, {3, 0, 2, 1}, {30.0, 0.5, 20.0, 7.0});
  EXPECT_FALSE(m.Validate().ok());
  m.SortRowsByColumn();
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.col_ids(), (std::vector<index_t>{0, 2, 3, 1}));
  EXPECT_EQ(m.values(), (std::vector<value_t>{0.5, 20.0, 30.0, 7.0}));
}

TEST(Csr, EqualityOperator) {
  EXPECT_TRUE(SmallMatrix() == SmallMatrix());
  Csr other = SmallMatrix();
  other.mutable_values()[0] = 99.0;
  EXPECT_FALSE(SmallMatrix() == other);
}

TEST(Csr, ApproxEqualsTolerance) {
  Csr a = SmallMatrix();
  Csr b = SmallMatrix();
  b.mutable_values()[0] += 1e-13;
  EXPECT_TRUE(a.ApproxEquals(b));
  b.mutable_values()[0] += 1.0;
  EXPECT_FALSE(a.ApproxEquals(b));
}

TEST(Csr, ApproxEqualsRejectsStructureMismatch) {
  Csr a = SmallMatrix();
  Csr b(3, 3, {0, 2, 2, 4}, {0, 1, 0, 1}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_FALSE(a.ApproxEquals(b));
}

TEST(Csr, DebugStringMentionsShapeAndNnz) {
  const std::string s = SmallMatrix().DebugString();
  EXPECT_NE(s.find("3x3"), std::string::npos);
  EXPECT_NE(s.find("nnz=4"), std::string::npos);
}

TEST(CsrDeath, MismatchedArraySizesAbort) {
  EXPECT_DEATH(Csr(2, 2, {0, 1}, {0}, {1.0}), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::sparse
