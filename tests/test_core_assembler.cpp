#include "core/assembler.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "partition/panels.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using partition::PanelBoundaries;
using partition::UniformBoundaries;
using sparse::Csr;

ChunkPayload PayloadFrom(const Csr& chunk, int rp, int cp) {
  ChunkPayload p;
  p.row_panel = rp;
  p.col_panel = cp;
  p.row_offsets = chunk.row_offsets();
  p.col_ids = chunk.col_ids();
  p.values = chunk.values();
  return p;
}

/// Splits a matrix into a chunk grid and reassembles it.
Csr SplitAndAssemble(const Csr& m, int nr, int nc) {
  PanelBoundaries rb = UniformBoundaries(m.rows(), nr);
  PanelBoundaries cb = UniformBoundaries(m.cols(), nc);
  std::vector<ChunkPayload> payloads;
  for (int rp = 0; rp < nr; ++rp) {
    Csr rows = sparse::SliceRows(m, rb.panel_begin(rp), rb.panel_end(rp));
    std::vector<Csr> pieces = partition::PartitionColsOptimized(rows, cb);
    for (int cp = 0; cp < nc; ++cp) {
      payloads.push_back(
          PayloadFrom(pieces[static_cast<std::size_t>(cp)], rp, cp));
    }
  }
  return AssembleChunks(rb, cb, std::move(payloads));
}

TEST(AssembleChunks, RoundTripsGrid) {
  Csr m = testutil::RandomRmat(8, 6.0, 1);
  for (int nr : {1, 2, 5}) {
    for (int nc : {1, 3, 4}) {
      EXPECT_TRUE(SplitAndAssemble(m, nr, nc) == m)
          << "grid " << nr << "x" << nc;
    }
  }
}

TEST(AssembleChunks, ArbitraryChunkOrder) {
  Csr m = testutil::RandomCsr(40, 40, 5.0, 2);
  PanelBoundaries rb = UniformBoundaries(m.rows(), 2);
  PanelBoundaries cb = UniformBoundaries(m.cols(), 2);
  std::vector<ChunkPayload> payloads;
  for (int rp = 1; rp >= 0; --rp) {  // reversed delivery order
    Csr rows = sparse::SliceRows(m, rb.panel_begin(rp), rb.panel_end(rp));
    std::vector<Csr> pieces = partition::PartitionColsOptimized(rows, cb);
    for (int cp = 1; cp >= 0; --cp) {
      payloads.push_back(
          PayloadFrom(pieces[static_cast<std::size_t>(cp)], rp, cp));
    }
  }
  EXPECT_TRUE(AssembleChunks(rb, cb, std::move(payloads)) == m);
}

TEST(AssembleChunks, EmptyMatrix) {
  Csr m(12, 9);
  EXPECT_TRUE(SplitAndAssemble(m, 3, 3) == m);
}

TEST(AssembleChunks, ResultIsValidCsr) {
  Csr m = testutil::RandomRmat(9, 8.0, 3);
  Csr assembled = SplitAndAssemble(m, 4, 4);
  EXPECT_TRUE(assembled.Validate().ok());
}

TEST(AssembleChunksDeath, MissingChunkAborts) {
  Csr m = testutil::RandomCsr(10, 10, 2.0, 4);
  PanelBoundaries rb = UniformBoundaries(10, 2);
  PanelBoundaries cb = UniformBoundaries(10, 1);
  std::vector<ChunkPayload> payloads;
  Csr rows = sparse::SliceRows(m, 0, 5);
  payloads.push_back(PayloadFrom(rows, 0, 0));
  payloads.push_back(PayloadFrom(rows, 0, 0));  // duplicate, missing (1,0)
  EXPECT_DEATH(AssembleChunks(rb, cb, std::move(payloads)), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::core
