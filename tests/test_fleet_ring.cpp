// Property tests of the consistent-hash ring, the fleet's placement
// function.  All inputs are deterministic (fixed keys, fixed vnode seeds),
// so the statistical bounds below are really regressions: they pass today
// and will pass identically on every machine and every run.
//
// Suites are named Fleet* so the CI TSan job's gtest filter picks them up.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "fleet/ring.hpp"

namespace oocgemm::fleet {
namespace {

constexpr int kKeys = 20000;

std::vector<int> OwnersOf(const ConsistentHashRing& ring, int keys) {
  std::vector<int> owners;
  owners.reserve(static_cast<std::size_t>(keys));
  for (int k = 0; k < keys; ++k) {
    owners.push_back(ring.Owner(static_cast<std::uint64_t>(k)));
  }
  return owners;
}

TEST(FleetRing, UniformKeySpreadChiSquare) {
  constexpr int kShards = 4;
  ConsistentHashRing ring(kShards);
  std::vector<int> counts(kShards, 0);
  for (int owner : OwnersOf(ring, kKeys)) {
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, kShards);
    ++counts[static_cast<std::size_t>(owner)];
  }
  // Two deviation sources: multinomial sampling noise (chi2 ~ df = N-1)
  // and the vnode arc-length variance (relative share std ~ 1/sqrt(V)),
  // which adds ~ kKeys * N / V to the statistic.  Bound at 3x the arc
  // term: 3 * 20000 * 4 / 64 = 3750.  A ring without virtual nodes (V=1)
  // blows through this by an order of magnitude.
  const double expected = static_cast<double>(kKeys) / kShards;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 3.0 * kKeys * kShards /
                      ring.vnodes_per_shard());
  // And no shard's share is pathological: within [0.5x, 2x] of fair.
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.5);
    EXPECT_LT(c, expected * 2.0);
  }
}

TEST(FleetRing, RemovalRemapsOnlyTheRemovedShardsKeys) {
  constexpr int kShards = 5;
  ConsistentHashRing ring(kShards);
  const std::vector<int> before = OwnersOf(ring, kKeys);
  ring.RemoveShard(2);
  const std::vector<int> after = OwnersOf(ring, kKeys);

  int moved = 0;
  for (int k = 0; k < kKeys; ++k) {
    const std::size_t i = static_cast<std::size_t>(k);
    if (before[i] == after[i]) continue;
    // Only keys the removed shard owned may move — anyone else's
    // placement surviving untouched is the whole point of the ring.
    EXPECT_EQ(before[i], 2) << "key " << k << " moved from shard "
                            << before[i] << " without cause";
    EXPECT_NE(after[i], 2);
    ++moved;
  }
  // The removed shard owned ~K/N keys; allow 1.5x for arc-length skew.
  EXPECT_GT(moved, 0);
  EXPECT_LE(moved, kKeys * 3 / (2 * kShards));
}

TEST(FleetRing, AdditionStealsOnlyForTheNewShard) {
  ConsistentHashRing ring(3);
  const std::vector<int> before = OwnersOf(ring, kKeys);
  ring.AddShard(3);
  const std::vector<int> after = OwnersOf(ring, kKeys);
  for (int k = 0; k < kKeys; ++k) {
    const std::size_t i = static_cast<std::size_t>(k);
    if (before[i] != after[i]) {
      EXPECT_EQ(after[i], 3);  // every move is a steal by the newcomer
    }
  }
}

TEST(FleetRing, DeterministicAcrossIndependentInstances) {
  // Two rings built separately (as two processes would after a restart)
  // agree on every placement.
  ConsistentHashRing a(4), b(4);
  for (int k = 0; k < 1000; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k) * 2654435761ull;
    EXPECT_EQ(a.Owner(key), b.Owner(key));
    EXPECT_EQ(a.Successors(key, 3), b.Successors(key, 3));
  }
}

TEST(FleetRing, PinnedPlacementsSurviveRestarts) {
  // Hard-coded expected owners: placement is a wire-format-like contract —
  // a process restart (or a rebuild) must keep routing the same operands
  // to the same shards, or every PanelCache in the fleet goes cold.  If
  // this test fails, the hash changed and the change is cache-breaking.
  ConsistentHashRing ring(4);
  const std::map<std::uint64_t, int> pinned = {
      {0ull, 0}, {1ull, 0}, {42ull, 0}, {1000ull, 1},
      {0xDEADBEEFull, 3}, {0xFFFFFFFFFFFFFFFFull, 3},
  };
  for (const auto& [key, shard] : pinned) {
    EXPECT_EQ(ring.Owner(key), shard) << "key " << key;
  }
}

TEST(FleetRing, SuccessorsAreDistinctAndStartAtOwner) {
  ConsistentHashRing ring(4);
  for (int k = 0; k < 200; ++k) {
    const std::uint64_t key = static_cast<std::uint64_t>(k) * 977ull;
    const std::vector<int> succ = ring.Successors(key, 4);
    ASSERT_EQ(succ.size(), 4u);
    EXPECT_EQ(succ[0], ring.Owner(key));
    for (std::size_t i = 0; i < succ.size(); ++i) {
      for (std::size_t j = i + 1; j < succ.size(); ++j) {
        EXPECT_NE(succ[i], succ[j]);
      }
    }
  }
}

TEST(FleetRing, EmptyAndSingleShardEdges) {
  ConsistentHashRing empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Owner(7), -1);
  EXPECT_TRUE(empty.Successors(7, 2).empty());

  ConsistentHashRing one(1);
  EXPECT_EQ(one.shard_count(), 1);
  EXPECT_EQ(one.Owner(7), 0);
  EXPECT_EQ(one.Successors(7, 3), std::vector<int>{0});
}

}  // namespace
}  // namespace oocgemm::fleet
