#include "partition/panels.hpp"

#include <gtest/gtest.h>

#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::partition {
namespace {

using sparse::Csr;
using sparse::index_t;

TEST(UniformBoundaries, CoversRangeExactly) {
  PanelBoundaries b = UniformBoundaries(100, 3);
  EXPECT_EQ(b.num_panels(), 3);
  EXPECT_EQ(b.begin.front(), 0);
  EXPECT_EQ(b.begin.back(), 100);
  index_t total = 0;
  for (int p = 0; p < 3; ++p) total += b.panel_width(p);
  EXPECT_EQ(total, 100);
}

TEST(UniformBoundaries, NearEqualWidths) {
  PanelBoundaries b = UniformBoundaries(10, 3);
  for (int p = 0; p < 3; ++p) {
    EXPECT_GE(b.panel_width(p), 3);
    EXPECT_LE(b.panel_width(p), 4);
  }
}

TEST(UniformBoundaries, MorePanelsThanElements) {
  PanelBoundaries b = UniformBoundaries(2, 5);
  EXPECT_EQ(b.begin.back(), 2);
  // Some panels are empty, which is legal.
  int nonempty = 0;
  for (int p = 0; p < 5; ++p) {
    if (b.panel_width(p) > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 2);
}

TEST(PartitionRows, ConcatenationRecoversMatrix) {
  Csr a = testutil::RandomRmat(8, 6.0, 1);
  PanelBoundaries bounds = UniformBoundaries(a.rows(), 4);
  std::vector<Csr> panels = PartitionRows(a, bounds);
  ASSERT_EQ(panels.size(), 4u);
  Csr rebuilt = panels[0];
  for (std::size_t p = 1; p < panels.size(); ++p) {
    rebuilt = sparse::ConcatRows(rebuilt, panels[p]);
  }
  EXPECT_TRUE(rebuilt == a);
}

TEST(PartitionRows, SinglePanelIsIdentityCopy) {
  Csr a = testutil::RandomCsr(50, 40, 4.0, 2);
  std::vector<Csr> panels = PartitionRows(a, UniformBoundaries(a.rows(), 1));
  ASSERT_EQ(panels.size(), 1u);
  EXPECT_TRUE(panels[0] == a);
}

TEST(PartitionColsNaive, MatchesReferenceSlices) {
  Csr b = testutil::RandomCsr(60, 90, 5.0, 3);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 3);
  std::vector<Csr> panels = PartitionColsNaive(b, bounds);
  for (int p = 0; p < 3; ++p) {
    Csr expected = sparse::SliceColsReference(b, bounds.panel_begin(p),
                                              bounds.panel_end(p));
    EXPECT_TRUE(panels[static_cast<std::size_t>(p)] == expected);
  }
}

TEST(PartitionColsOptimized, MatchesNaive) {
  Csr b = testutil::RandomRmat(9, 8.0, 4);
  for (int num_panels : {1, 2, 3, 7, 16}) {
    PanelBoundaries bounds = UniformBoundaries(b.cols(), num_panels);
    std::vector<Csr> naive = PartitionColsNaive(b, bounds);
    std::vector<Csr> opt = PartitionColsOptimized(b, bounds);
    ASSERT_EQ(naive.size(), opt.size());
    for (std::size_t p = 0; p < naive.size(); ++p) {
      EXPECT_TRUE(naive[p] == opt[p]) << "panels=" << num_panels << " p=" << p;
    }
  }
}

TEST(PartitionColsParallel, MatchesSerialOptimized) {
  ThreadPool pool(4);
  Csr b = testutil::RandomRmat(10, 8.0, 5);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 5);
  std::vector<Csr> serial = PartitionColsOptimized(b, bounds);
  std::vector<Csr> parallel = PartitionColsParallel(b, bounds, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    EXPECT_TRUE(serial[p] == parallel[p]);
  }
}

TEST(PartitionCols, PanelsAreValidCsr) {
  Csr b = testutil::RandomCsr(80, 100, 6.0, 6);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 4);
  for (const Csr& panel : PartitionColsOptimized(b, bounds)) {
    EXPECT_TRUE(panel.Validate().ok());
    EXPECT_EQ(panel.rows(), b.rows());
  }
}

TEST(PartitionCols, NnzConserved) {
  Csr b = testutil::RandomRmat(9, 6.0, 7);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 6);
  std::int64_t total = 0;
  for (const Csr& panel : PartitionColsOptimized(b, bounds)) {
    total += panel.nnz();
  }
  EXPECT_EQ(total, b.nnz());
}

TEST(PartitionCols, EmptyMatrix) {
  Csr b(10, 10);
  PanelBoundaries bounds = UniformBoundaries(10, 3);
  for (const Csr& panel : PartitionColsOptimized(b, bounds)) {
    EXPECT_EQ(panel.nnz(), 0);
  }
}

TEST(ColPanelNnz, MatchesPartition) {
  Csr b = testutil::RandomRmat(8, 6.0, 8);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 4);
  std::vector<std::int64_t> counts = ColPanelNnz(b, bounds);
  std::vector<Csr> panels = PartitionColsOptimized(b, bounds);
  for (std::size_t p = 0; p < panels.size(); ++p) {
    EXPECT_EQ(counts[p], panels[p].nnz());
  }
}

TEST(ColPanelRowNnz, MatchesPanelRows) {
  Csr b = testutil::RandomCsr(40, 60, 5.0, 9);
  PanelBoundaries bounds = UniformBoundaries(b.cols(), 3);
  auto per_row = ColPanelRowNnz(b, bounds);
  std::vector<Csr> panels = PartitionColsOptimized(b, bounds);
  for (std::size_t p = 0; p < panels.size(); ++p) {
    for (index_t r = 0; r < b.rows(); ++r) {
      EXPECT_EQ(per_row[p][static_cast<std::size_t>(r)],
                panels[p].row_nnz(r));
    }
  }
}

}  // namespace
}  // namespace oocgemm::partition
