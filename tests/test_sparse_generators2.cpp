// Tests for the structured generators added for the dataset stand-ins:
// community graphs and variable-bandwidth banded matrices.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace oocgemm::sparse {
namespace {

TEST(GenerateCommunityGraph, ValidAndDeterministic) {
  CommunityGraphParams p;
  p.scale = 10;
  p.seed = 3;
  Csr g1 = GenerateCommunityGraph(p);
  Csr g2 = GenerateCommunityGraph(p);
  EXPECT_TRUE(g1.Validate().ok());
  EXPECT_TRUE(g1 == g2);
  EXPECT_EQ(g1.rows(), 1024);
}

TEST(GenerateCommunityGraph, SymmetricOption) {
  CommunityGraphParams p;
  p.scale = 9;
  p.symmetric = true;
  Csr g = GenerateCommunityGraph(p);
  EXPECT_TRUE(g == Transpose(g));
}

TEST(GenerateCommunityGraph, DensityVariesAcrossCommunities) {
  CommunityGraphParams p;
  p.scale = 12;
  p.num_communities = 8;
  p.ef_min = 2.0;
  p.ef_max = 32.0;
  p.background_degree = 0.5;
  p.seed = 9;
  Csr g = GenerateCommunityGraph(p);
  const index_t community = g.rows() / 8;
  std::vector<double> density;
  for (int c = 0; c < 8; ++c) {
    const offset_t nnz = g.row_begin((c + 1) * community) -
                         g.row_begin(c * community);
    density.push_back(static_cast<double>(nnz));
  }
  const Summary s = Summarize(density);
  EXPECT_GT(s.max, 3.0 * s.min);  // genuinely mixed densities
}

TEST(GenerateCommunityGraph, MostEdgesStayLocal) {
  CommunityGraphParams p;
  p.scale = 11;
  p.num_communities = 8;
  p.background_degree = 0.5;
  p.seed = 4;
  Csr g = GenerateCommunityGraph(p);
  const index_t community = g.rows() / 8;
  std::int64_t local = 0;
  for (index_t r = 0; r < g.rows(); ++r) {
    for (offset_t k = g.row_begin(r); k < g.row_end(r); ++k) {
      const index_t c = g.col_ids()[static_cast<std::size_t>(k)];
      if (r / community == c / community) ++local;
    }
  }
  EXPECT_GT(static_cast<double>(local) / static_cast<double>(g.nnz()), 0.7);
}

TEST(GenerateVariableBanded, SegmentsGetTheirBandwidth) {
  VariableBandedParams p;
  p.n = 1000;
  p.segments = {{0.3, 10, 1}, {0.7, 2, 1}};
  Csr m = GenerateVariableBanded(p);
  EXPECT_TRUE(m.Validate().ok());
  // Interior rows of each segment carry the segment's full band.
  EXPECT_EQ(m.row_nnz(150), 21);
  EXPECT_EQ(m.row_nnz(700), 5);
}

TEST(GenerateVariableBanded, LastSegmentAbsorbsRounding) {
  VariableBandedParams p;
  p.n = 97;  // awkward size
  p.segments = {{0.5, 3, 1}, {0.5, 1, 1}};
  Csr m = GenerateVariableBanded(p);
  EXPECT_EQ(m.rows(), 97);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.row_nnz(96), 2);  // boundary row of the final segment
}

TEST(GenerateVariableBanded, SingleSegmentEqualsBanded) {
  VariableBandedParams vp;
  vp.n = 256;
  vp.segments = {{1.0, 5, 1}};
  vp.seed = 7;
  BandedParams bp;
  bp.n = 256;
  bp.half_bandwidth = 5;
  bp.seed = 7;
  // Same structure (values differ by RNG stream).
  Csr v = GenerateVariableBanded(vp);
  Csr b = GenerateBanded(bp);
  EXPECT_EQ(v.row_offsets(), b.row_offsets());
  EXPECT_EQ(v.col_ids(), b.col_ids());
}

TEST(GenerateVariableBanded, StrideRespected) {
  VariableBandedParams p;
  p.n = 64;
  p.segments = {{1.0, 8, 4}};
  Csr m = GenerateVariableBanded(p);
  EXPECT_EQ(m.row_nnz(32), 5);  // offsets -8, -4, 0, 4, 8
}

}  // namespace
}  // namespace oocgemm::sparse
