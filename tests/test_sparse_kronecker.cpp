#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(Kronecker, HandComputed2x2) {
  // A = [1 2; 0 3], B = [0 1; 1 0]
  Csr a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
  Csr b(2, 2, {0, 1, 2}, {1, 0}, {1, 1});
  Csr k = KroneckerProduct(a, b);
  EXPECT_EQ(k.rows(), 4);
  EXPECT_EQ(k.nnz(), 6);
  EXPECT_TRUE(k.Validate().ok());
  // Row 0 = A[0] (x) B[0] = entries at (0*2+1)=1 from A00 and (1*2+1)=3.
  EXPECT_EQ(k.col_ids()[0], 1);
  EXPECT_DOUBLE_EQ(k.values()[0], 1.0);
  EXPECT_EQ(k.col_ids()[1], 3);
  EXPECT_DOUBLE_EQ(k.values()[1], 2.0);
}

TEST(Kronecker, DimensionsAndNnzMultiply) {
  Csr a = testutil::RandomCsr(6, 8, 2.0, 1);
  Csr b = testutil::RandomCsr(5, 4, 2.0, 2);
  Csr k = KroneckerProduct(a, b);
  EXPECT_EQ(k.rows(), 30);
  EXPECT_EQ(k.cols(), 32);
  EXPECT_EQ(k.nnz(), a.nnz() * b.nnz());
  EXPECT_TRUE(k.Validate().ok());
}

TEST(Kronecker, IdentityIsNeutralUpToBlocks) {
  Csr a = testutil::RandomCsr(5, 5, 2.0, 3);
  Csr k = KroneckerProduct(Identity(3), a);
  // Block diagonal with three copies of a.
  EXPECT_EQ(k.nnz(), 3 * a.nnz());
  EXPECT_TRUE(SliceRows(SliceColsReference(k, 0, 5), 0, 5) == a);
  EXPECT_TRUE(SliceRows(SliceColsReference(k, 5, 10), 5, 10) == a);
}

TEST(Kronecker, MixedProductProperty) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD)
  Csr a = testutil::RandomCsr(4, 5, 2.0, 4);
  Csr b = testutil::RandomCsr(3, 4, 2.0, 5);
  Csr c = testutil::RandomCsr(5, 4, 2.0, 6);
  Csr d = testutil::RandomCsr(4, 3, 2.0, 7);
  Csr lhs = kernels::ReferenceSpgemm(KroneckerProduct(a, b),
                                     KroneckerProduct(c, d));
  Csr rhs = KroneckerProduct(kernels::ReferenceSpgemm(a, c),
                             kernels::ReferenceSpgemm(b, d));
  EXPECT_TRUE(testutil::CsrNear(sparse::DropZeros(lhs),
                                sparse::DropZeros(rhs)));
}

TEST(Kronecker, PowerGrowsGeometrically) {
  Csr seed(2, 2, {0, 2, 3}, {0, 1, 1}, {1.0, 1.0, 1.0});
  Csr k3 = KroneckerPower(seed, 3);
  EXPECT_EQ(k3.rows(), 8);
  EXPECT_EQ(k3.nnz(), 27);  // 3^3
  EXPECT_TRUE(KroneckerPower(seed, 1) == seed);
}

TEST(KroneckerDeath, OverflowAborts) {
  Csr big = testutil::RandomCsr(1 << 16, 1 << 16, 1.0, 8);
  EXPECT_DEATH(KroneckerProduct(big, big), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::sparse
