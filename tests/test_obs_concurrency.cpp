// Concurrency contract of the metrics layer: many writer threads hammering
// the same instruments while a reader snapshots the registry concurrently.
// No lost updates — after the writers join, values equal the exact totals —
// and every mid-flight snapshot is sane (bounded, monotone counters).
//
// Suites are named Metrics* so the CI TSan job's gtest filter picks them up
// and the data-race freedom claim is machine-checked, not asserted.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace oocgemm::obs {
namespace {

constexpr int kWriters = 8;
constexpr int kOpsPerWriter = 20000;

TEST(MetricsConcurrency, CountersLoseNoUpdatesUnderConcurrentSnapshots) {
  MetricsRegistry reg;
  Counter& counter = reg.GetCounter("conc_events");
  DoubleCounter& seconds = reg.GetDoubleCounter("conc_seconds");
  Gauge& depth = reg.GetGauge("conc_depth");

  std::atomic<bool> stop{false};
  std::atomic<int> snapshots_taken{0};
  double last_seen = 0.0;
  bool reader_ok = true;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const RegistrySnapshot snap = reg.Snapshot();
      const double v = snap.Value("conc_events");
      // Counters are monotone: successive snapshots never move backwards,
      // and never exceed the final exact total.
      if (v < last_seen || v > 1.0 * kWriters * kOpsPerWriter) {
        reader_ok = false;
      }
      last_seen = v;
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter.Add(1);
        seconds.Add(0.25);
        depth.Add(w % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(reader_ok) << "snapshot observed a non-monotone counter";
  EXPECT_GT(snapshots_taken.load(), 0);
  EXPECT_EQ(counter.Value(), static_cast<std::int64_t>(kWriters) * kOpsPerWriter);
  EXPECT_DOUBLE_EQ(seconds.Value(), 0.25 * kWriters * kOpsPerWriter);
  EXPECT_EQ(depth.Value(), 0);  // equal +1/-1 writer populations
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("conc_events"),
                   1.0 * kWriters * kOpsPerWriter);
}

TEST(MetricsConcurrency, HistogramKeepsEveryRecordAcrossThreads) {
  MetricsRegistry reg;
  LogBucketHistogram& hist = reg.GetHistogram("conc_latency");

  std::atomic<bool> stop{false};
  bool reader_ok = true;
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const RegistrySnapshot snap = reg.Snapshot();
      const HistogramSnapshot* h = snap.Histogram("conc_latency");
      if (h == nullptr) continue;
      // The authoritative count is the bucket tally, so a consistent
      // snapshot's bucket sum always equals its count.
      std::int64_t bucket_sum = 0;
      for (const auto& b : h->buckets) bucket_sum += b.count;
      if (bucket_sum != h->count) reader_ok = false;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Spread mass over a few decades so several buckets stay hot.
        hist.Record(0.001 * (1 + w) * (1 + i % 1000));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(reader_ok) << "snapshot bucket tally diverged from its count";
  const HistogramSnapshot final_snap = hist.Snapshot();
  EXPECT_EQ(final_snap.count,
            static_cast<std::int64_t>(kWriters) * kOpsPerWriter);
  std::int64_t bucket_sum = 0;
  for (const auto& b : final_snap.buckets) bucket_sum += b.count;
  EXPECT_EQ(bucket_sum, final_snap.count);
  EXPECT_GT(final_snap.min, 0.0);
  EXPECT_LT(final_snap.min, final_snap.max);
}

TEST(MetricsConcurrency, RacingGetResolvesOneInstrumentPerIdentity) {
  MetricsRegistry reg;
  std::vector<std::thread> threads;
  std::vector<Counter*> resolved(kWriters, nullptr);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Counter& c =
          reg.GetCounter("conc_race", {{"lane", std::to_string(w % 2)}});
      c.Add(1);
      resolved[static_cast<std::size_t>(w)] = &c;
    });
  }
  for (auto& t : threads) t.join();
  // Same identity -> same instrument, even when first-use races.
  for (int w = 2; w < kWriters; ++w) {
    EXPECT_EQ(resolved[static_cast<std::size_t>(w)],
              resolved[static_cast<std::size_t>(w % 2)]);
  }
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("conc_race", {{"lane", "0"}}),
                   kWriters / 2.0);
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("conc_race", {{"lane", "1"}}),
                   kWriters / 2.0);
}

}  // namespace
}  // namespace oocgemm::obs
