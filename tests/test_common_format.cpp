#include "common/format.hpp"

#include <gtest/gtest.h>

namespace oocgemm {
namespace {

TEST(HumanBytes, SmallValuesAreExact) {
  EXPECT_EQ(HumanBytes(0), "0 B");
  EXPECT_EQ(HumanBytes(17), "17 B");
  EXPECT_EQ(HumanBytes(1023), "1023 B");
}

TEST(HumanBytes, BinaryPrefixes) {
  EXPECT_EQ(HumanBytes(1024), "1.00 KiB");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(1ll << 20), "1.00 MiB");
  EXPECT_EQ(HumanBytes(1ll << 30), "1.00 GiB");
  EXPECT_EQ(HumanBytes(16ll << 30), "16.00 GiB");
}

TEST(HumanCount, DecimalPrefixes) {
  EXPECT_EQ(HumanCount(500), "500.00 ");
  EXPECT_EQ(HumanCount(1500), "1.50 K");
  EXPECT_EQ(HumanCount(2.5e9), "2.50 G");
}

TEST(HumanSeconds, UnitSelection) {
  EXPECT_EQ(HumanSeconds(2.0), "2.000 s");
  EXPECT_EQ(HumanSeconds(0.0123), "12.300 ms");
  EXPECT_EQ(HumanSeconds(4.5e-6), "4.500 us");
}

TEST(Fixed, Digits) {
  EXPECT_EQ(Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Fixed(3.14159, 4), "3.1416");
  EXPECT_EQ(Fixed(-1.0, 1), "-1.0");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "123456"});
  t.AddRow({"longer-name", "7"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name         value"), std::string::npos);
  EXPECT_NE(s.find("longer-name  7"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(TablePrinter, HeaderOnly) {
  TablePrinter t({"a", "b", "c"});
  const std::string s = t.ToString();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

}  // namespace
}  // namespace oocgemm
