// FleetRouter end-to-end: affinity concentration, random-baseline spread,
// hot-operand replication, cross-shard failover after a device kill, and
// the report reconciliation contract (fleet totals == sum of per-shard
// ServerReports, delivered outcomes == routed jobs).
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "fleet/router.hpp"
#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"
#include "vgpu/fault_injector.hpp"

namespace oocgemm::fleet {
namespace {

using sparse::Csr;

struct ShardedFleet {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<std::vector<vgpu::Device*>> shards;

  ShardedFleet(int num_shards, int devices_per_shard, int mem_shift) {
    for (int s = 0; s < num_shards; ++s) {
      std::vector<vgpu::Device*> shard;
      for (int d = 0; d < devices_per_shard; ++d) {
        storage.push_back(std::make_unique<vgpu::Device>(
            vgpu::ScaledV100Properties(mem_shift)));
        shard.push_back(storage.back().get());
      }
      shards.push_back(std::move(shard));
    }
  }
};

serve::SpgemmJob MakeJob(std::shared_ptr<const Csr> a,
                         std::shared_ptr<const Csr> b,
                         core::ExecutionMode mode = core::ExecutionMode::kAuto) {
  serve::SpgemmJob job;
  job.a = std::move(a);
  job.b = std::move(b);
  job.options.mode = mode;
  return job;
}

TEST(FleetRouter, AffinityConcentratesSameOperandOnOneShard) {
  ShardedFleet fleet(3, 1, 15);
  ThreadPool pool(3);
  FleetConfig config;
  config.shard.scheduler.num_workers = 2;
  FleetRouter router(fleet.shards, pool, config);

  auto b = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 42));
  const int home = router.PrimaryShardFor(*b);
  ASSERT_GE(home, 0);

  constexpr int kJobs = 12;
  std::vector<std::future<serve::JobResult>> futures;
  for (int j = 0; j < kJobs; ++j) {
    auto a = std::make_shared<const Csr>(
        testutil::RandomCsr(48, b->rows(), 3.0, 100 + j));
    futures.push_back(router.Submit(MakeJob(a, b)));
  }
  router.Drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  const FleetReport report = router.Report();
  EXPECT_EQ(report.routing.routed_jobs, kJobs);
  EXPECT_EQ(report.routing.affinity_routed, kJobs);
  EXPECT_EQ(report.delivered_completed, kJobs);
  // Every job landed on the operand's ring owner — the other shards are
  // untouched, so their PanelCaches never even saw B.
  for (int s = 0; s < router.shard_count(); ++s) {
    EXPECT_EQ(report.shard_reports[static_cast<std::size_t>(s)].submitted,
              s == home ? kJobs : 0)
        << "shard " << s;
  }
  EXPECT_TRUE(report.Reconciles()) << report.DebugString();
}

TEST(FleetRouter, RandomPolicySpreadsAcrossShards) {
  ShardedFleet fleet(3, 1, 15);
  ThreadPool pool(3);
  FleetConfig config;
  config.policy = RoutingPolicy::kRandom;
  config.shard.scheduler.num_workers = 2;
  FleetRouter router(fleet.shards, pool, config);

  constexpr int kJobs = 30;
  auto b = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 42));
  std::vector<std::future<serve::JobResult>> futures;
  for (int j = 0; j < kJobs; ++j) {
    auto a = std::make_shared<const Csr>(
        testutil::RandomCsr(48, b->rows(), 3.0, 200 + j));
    futures.push_back(router.Submit(MakeJob(a, b)));
  }
  router.Drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  const FleetReport report = router.Report();
  EXPECT_EQ(report.routing.random_routed, kJobs);
  EXPECT_EQ(report.routing.affinity_routed, 0);
  // With 30 draws over 3 shards, every shard sees work (the seed is fixed;
  // this is a regression, not a statistics exam).
  for (const serve::ServerReport& shard : report.shard_reports) {
    EXPECT_GT(shard.submitted, 0);
  }
  EXPECT_TRUE(report.Reconciles()) << report.DebugString();
}

TEST(FleetRouter, HotOperandSpreadsOverReplicaSet) {
  ShardedFleet fleet(3, 1, 15);
  ThreadPool pool(3);
  FleetConfig config;
  config.shard.scheduler.num_workers = 2;
  config.replication.replication = 2;
  config.replication.hot_threshold = 2.0;
  FleetRouter router(fleet.shards, pool, config);

  auto b = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 42));
  const std::vector<int> replicas =
      router.ring().Successors(OperandPlacementKey(*b), 2);
  ASSERT_EQ(replicas.size(), 2u);

  constexpr int kJobs = 24;
  std::vector<std::future<serve::JobResult>> futures;
  for (int j = 0; j < kJobs; ++j) {
    auto a = std::make_shared<const Csr>(
        testutil::RandomCsr(48, b->rows(), 3.0, 300 + j));
    futures.push_back(router.Submit(MakeJob(a, b)));
  }
  router.Drain();
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());

  const FleetReport report = router.Report();
  EXPECT_GE(report.routing.hot_promotions, 1);
  EXPECT_GT(report.routing.replica_routed, 0);
  // Once hot, traffic round-robins over both replicas; the third shard
  // stays untouched.
  for (int s = 0; s < router.shard_count(); ++s) {
    const std::int64_t submitted =
        report.shard_reports[static_cast<std::size_t>(s)].submitted;
    const bool is_replica = s == replicas[0] || s == replicas[1];
    if (is_replica) {
      EXPECT_GT(submitted, 0) << "replica shard " << s;
    } else {
      EXPECT_EQ(submitted, 0) << "non-replica shard " << s;
    }
  }
  EXPECT_TRUE(report.Reconciles()) << report.DebugString();
}

TEST(FleetRouter, DeadShardFailsOverToRingSuccessor) {
  ShardedFleet fleet(2, 1, 15);
  ThreadPool pool(3);
  FleetConfig config;
  config.shard.scheduler.num_workers = 2;
  FleetRouter router(fleet.shards, pool, config);

  auto b = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 42));
  const int home = router.PrimaryShardFor(*b);
  ASSERT_GE(home, 0);

  // Kill the home shard's only device on its 2nd kernel launch: the job
  // holding it dies mid-run, the lane is pulled, and the shard's pool has
  // no healthy device left — explicit-GPU jobs there fail fast.
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:nth=2:kill", /*seed=*/3).value());
  fleet.shards[static_cast<std::size_t>(home)][0]->set_fault_injector(
      &injector);

  constexpr int kJobs = 8;
  std::vector<std::shared_ptr<const Csr>> as;
  std::vector<std::future<serve::JobResult>> futures;
  for (int j = 0; j < kJobs; ++j) {
    auto a = std::make_shared<const Csr>(
        testutil::RandomCsr(48, b->rows(), 3.0, 400 + j));
    as.push_back(a);
    futures.push_back(
        router.Submit(MakeJob(a, b, core::ExecutionMode::kGpuOutOfCore)));
  }
  router.Drain();

  // Every job completes despite the dead shard, and results stay correct.
  for (int j = 0; j < kJobs; ++j) {
    serve::JobResult r = futures[static_cast<std::size_t>(j)].get();
    ASSERT_TRUE(r.ok()) << "job " << j << ": " << r.status.ToString();
    const Csr expected = kernels::ReferenceSpgemm(*as[static_cast<std::size_t>(j)], *b);
    EXPECT_TRUE(testutil::CsrNear(r.c, expected)) << "job " << j;
  }

  const FleetReport report = router.Report();
  EXPECT_EQ(report.delivered_completed, kJobs);
  // At least the mid-run victim hopped shards; later jobs either hopped
  // too or were probe-skipped straight to the survivor.
  EXPECT_GE(report.routing.failover_resubmissions, 1);
  EXPECT_GE(report.routing.rerouted_completed, 1);
  EXPECT_EQ(report.routing.exhausted_jobs, 0);
  const serve::ServerReport& survivor = report.shard_reports[
      static_cast<std::size_t>(1 - home)];
  EXPECT_EQ(survivor.completed, kJobs);
  EXPECT_TRUE(report.Reconciles()) << report.DebugString();
}

TEST(FleetRouter, ShutdownRejectsNewSubmissions) {
  ShardedFleet fleet(2, 1, 15);
  ThreadPool pool(2);
  FleetRouter router(fleet.shards, pool, {});
  router.Shutdown();

  auto b = std::make_shared<const Csr>(testutil::RandomRmat(6, 5.0, 1));
  auto a = std::make_shared<const Csr>(
      testutil::RandomCsr(32, b->rows(), 3.0, 2));
  std::future<serve::JobResult> f = router.Submit(MakeJob(a, b));
  serve::JobResult r = f.get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.metrics.outcome, serve::JobOutcome::kRejected);
  EXPECT_EQ(router.Report().routing.router_rejects, 1);
}

TEST(FleetRouter, ReportJsonCarriesShardSections) {
  ShardedFleet fleet(2, 1, 15);
  ThreadPool pool(2);
  FleetRouter router(fleet.shards, pool, {});
  auto b = std::make_shared<const Csr>(testutil::RandomRmat(6, 5.0, 1));
  auto a = std::make_shared<const Csr>(
      testutil::RandomCsr(32, b->rows(), 3.0, 2));
  router.Submit(MakeJob(a, b));
  router.Drain();

  const std::string json = router.Report().ToJson();
  EXPECT_NE(json.find("\"routing\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_reports\""), std::string::npos);
  EXPECT_NE(json.find("\"reconciles\": true"), std::string::npos);
  EXPECT_NE(json.find("\"policy\": \"affinity\""), std::string::npos);
}

}  // namespace
}  // namespace oocgemm::fleet
