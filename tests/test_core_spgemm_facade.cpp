#include "core/spgemm.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

TEST(MultiplyFacade, AutoPicksGpuForSingleChunkProblems) {
  Csr a = testutil::RandomCsr(64, 64, 3.0, 1);
  vgpu::Device device(vgpu::ScaledV100Properties(8));  // plenty of memory
  ThreadPool pool(2);
  auto r = Multiply(device, a, a, MultiplyOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.num_chunks, 1);
  EXPECT_EQ(r->stats.num_cpu_chunks, 0);  // in-core: GPU only
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(MultiplyFacade, AutoPicksHybridForMultiChunkProblems) {
  Csr a = testutil::RandomRmat(9, 8.0, 2);
  vgpu::Device device(vgpu::ScaledV100Properties(14));  // tiny: many chunks
  ThreadPool pool(2);
  MultiplyOptions options;
  options.gpu_ratio = 0.5;  // guarantee the CPU a visible share
  auto r = Multiply(device, a, a, options, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.num_chunks, 1);
  EXPECT_GT(r->stats.num_cpu_chunks, 0);  // the CPU participated
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(MultiplyFacade, ExplicitModesAgree) {
  Csr a = testutil::RandomRmat(8, 6.0, 3);
  ThreadPool pool(2);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  for (ExecutionMode mode :
       {ExecutionMode::kGpuOutOfCore, ExecutionMode::kGpuSynchronous,
        ExecutionMode::kHybrid, ExecutionMode::kCpuOnly}) {
    MultiplyOptions options;
    options.mode = mode;
    vgpu::Device device(vgpu::ScaledV100Properties(14));
    auto r = Multiply(device, a, a, options, pool);
    ASSERT_TRUE(r.ok()) << static_cast<int>(mode);
    EXPECT_TRUE(testutil::CsrNear(r->c, expected))
        << "mode " << static_cast<int>(mode);
  }
}

TEST(MultiplyFacade, ConvenienceOverloadWorks) {
  Csr a = testutil::RandomCsr(48, 48, 3.0, 4);
  vgpu::Device device(vgpu::ScaledV100Properties(10));
  auto r = Multiply(device, a, a);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(MultiplyFacade, PropagatesDimensionErrors) {
  Csr a = testutil::RandomCsr(10, 20, 2.0, 5);
  Csr b = testutil::RandomCsr(30, 10, 2.0, 6);
  vgpu::Device device(vgpu::ScaledV100Properties(10));
  ThreadPool pool(2);
  EXPECT_FALSE(Multiply(device, a, b, MultiplyOptions{}, pool).ok());
}

}  // namespace
}  // namespace oocgemm::core
