// Deterministic-seed stress test for the serving runtime, the serve-layer
// sibling of test_fuzz_executors.cpp: a randomized mixed workload (sizes,
// structures, priorities, executor preferences) submitted from concurrent
// client threads, every completed product checked against the reference.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kernels/reference_spgemm.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace oocgemm::serve {
namespace {

using sparse::Csr;

TEST(ServeStress, RandomizedWorkloadFromConcurrentClients) {
  constexpr std::uint64_t kSeed = 20260806;
  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 12;

  vgpu::Device device(vgpu::ScaledV100Properties(15));  // 512 KiB
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 3;
  config.max_queue = kClients * kJobsPerClient;
  SpgemmServer server(device, pool, config);

  struct Submitted {
    std::shared_ptr<const Csr> a, b;
    std::future<JobResult> future;
  };
  std::mutex mutex;
  std::vector<Submitted> submitted;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      SplitMix64 rng(kSeed + static_cast<std::uint64_t>(c));
      for (int j = 0; j < kJobsPerClient; ++j) {
        SpgemmJob job;
        const std::uint64_t pick = rng.Next() % 3;
        const std::uint64_t seed = rng.Next();
        if (pick == 0) {
          job.a = std::make_shared<const Csr>(
              testutil::RandomCsr(48, 48, 3.0, seed));
        } else if (pick == 1) {
          job.a = std::make_shared<const Csr>(
              testutil::RandomCsr(96, 96, 5.0, seed));
        } else {
          job.a =
              std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, seed));
        }
        job.b = job.a;
        job.options.priority = static_cast<int>(rng.Next() % 4);
        job.options.mode = (rng.Next() % 4 == 0)
                               ? core::ExecutionMode::kCpuOnly
                               : core::ExecutionMode::kAuto;
        Submitted s;
        s.a = job.a;
        s.b = job.b;
        s.future = server.Submit(std::move(job));
        std::unique_lock<std::mutex> lock(mutex);
        submitted.push_back(std::move(s));
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Drain();

  ASSERT_EQ(submitted.size(),
            static_cast<std::size_t>(kClients * kJobsPerClient));
  for (auto& s : submitted) {
    JobResult r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
  }

  ServerReport report = server.Report();
  EXPECT_EQ(report.submitted, kClients * kJobsPerClient);
  EXPECT_EQ(report.completed, kClients * kJobsPerClient);
  EXPECT_EQ(report.device_oom_failures, 0);
  EXPECT_GT(report.virtual_makespan_seconds, 0.0);
  EXPECT_GT(report.jobs_per_second, 0.0);
}

}  // namespace
}  // namespace oocgemm::serve
