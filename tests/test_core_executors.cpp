// End-to-end tests of the four execution paths and the virtual-time
// properties the paper's design promises.
#include "core/executors.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/analysis.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

vgpu::Device SmallDevice(int mem_shift = 14) {
  return vgpu::Device(vgpu::ScaledV100Properties(mem_shift));  // 1 MiB at 14
}

TEST(SyncOutOfCore, MatchesReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 1);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  auto r = SyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_GT(r->stats.num_chunks, 1);  // genuinely out of core
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(SyncOutOfCore, UsesDynamicAllocation) {
  Csr a = testutil::RandomRmat(8, 6.0, 2);
  vgpu::Device device = SmallDevice(12);
  ThreadPool pool(2);
  ASSERT_TRUE(SyncOutOfCore(device, a, a, ExecutorOptions{}, pool).ok());
  EXPECT_GT(device.trace().BusyTime(vgpu::OpCategory::kAlloc), 0.0);
}

TEST(AsyncOutOfCore, MatchesReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 3);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(AsyncOutOfCore, MatchesSyncResultExactStructure) {
  Csr a = testutil::RandomRmat(9, 7.0, 4);
  ThreadPool pool(2);
  vgpu::Device d1 = SmallDevice();
  vgpu::Device d2 = SmallDevice();
  auto sync = SyncOutOfCore(d1, a, a, ExecutorOptions{}, pool);
  auto async = AsyncOutOfCore(d2, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_TRUE(testutil::CsrNear(async->c, sync->c));
}

TEST(AsyncOutOfCore, FasterThanSync) {
  // The headline claim of Section IV: overlapping transfers with compute
  // reduces the virtual makespan.
  Csr a = testutil::RandomRmat(10, 8.0, 5);
  ThreadPool pool(2);
  vgpu::Device d1 = SmallDevice();
  vgpu::Device d2 = SmallDevice();
  auto sync = SyncOutOfCore(d1, a, a, ExecutorOptions{}, pool);
  auto async = AsyncOutOfCore(d2, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(sync.ok() && async.ok());
  EXPECT_LT(async->stats.total_seconds, sync->stats.total_seconds);
}

TEST(AsyncOutOfCore, AvoidsDynamicAllocationInsidePipeline) {
  Csr a = testutil::RandomRmat(9, 8.0, 6);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  ASSERT_TRUE(AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool).ok());
  // Only the up-front allocations (2 pools + the panel cache) appear,
  // independent of the number of chunks.
  int allocs = 0;
  for (const auto& e : device.trace().events()) {
    if (e.category == vgpu::OpCategory::kAlloc) ++allocs;
  }
  EXPECT_EQ(allocs, 3);
}

TEST(AsyncOutOfCore, EnginesNeverDoubleBooked) {
  Csr a = testutil::RandomRmat(9, 8.0, 7);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  ASSERT_TRUE(AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool).ok());
  EXPECT_FALSE(device.trace().HasIntraCategoryOverlap(vgpu::OpCategory::kD2H));
  EXPECT_FALSE(device.trace().HasIntraCategoryOverlap(vgpu::OpCategory::kH2D));
  EXPECT_FALSE(
      device.trace().HasIntraCategoryOverlap(vgpu::OpCategory::kKernel));
}

TEST(AsyncOutOfCore, AchievesOverlap) {
  Csr a = testutil::RandomRmat(10, 8.0, 8);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  ASSERT_GT(r->stats.num_chunks, 2);
  EXPECT_GT(r->stats.overlap_factor, 1.02);  // busy time exceeds makespan
}

TEST(AsyncOutOfCore, DevicePeakWithinCapacity) {
  Csr a = testutil::RandomRmat(9, 8.0, 9);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->stats.device_peak_bytes, device.capacity());
}

TEST(AsyncOutOfCore, NaiveScheduleSlowerOrEqual) {
  // The Fig. 5/6 effect: with the naive double-buffering schedule the next
  // chunk's info transfers stall behind the previous payload, exposing its
  // compute time.  The effect concerns the schedule, not per-transfer fixed
  // latencies (which at this test's tiny chunk sizes would reward making
  // *fewer* transfers); zero them so the comparison isolates the ordering.
  Csr a = testutil::RandomRmat(10, 8.0, 10);
  ThreadPool pool(2);
  ExecutorOptions scheduled, naive;
  naive.transfer_schedule = TransferSchedule::kNaive;
  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(14);
  props.transfer_latency = 0.0;
  props.kernel_launch_overhead = 0.0;
  vgpu::Device d1(props);
  vgpu::Device d2(props);
  auto rs = AsyncOutOfCore(d1, a, a, scheduled, pool);
  auto rn = AsyncOutOfCore(d2, a, a, naive, pool);
  ASSERT_TRUE(rs.ok() && rn.ok());
  EXPECT_TRUE(testutil::CsrNear(rn->c, rs->c));
  EXPECT_LE(rs->stats.total_seconds, rn->stats.total_seconds * 1.001);
}

TEST(AsyncOutOfCore, SplitFractionVariantsAgreeOnResult) {
  Csr a = testutil::RandomRmat(9, 6.0, 11);
  ThreadPool pool(2);
  for (double split : {0.0, 0.33, 0.5, 1.0}) {
    ExecutorOptions options;
    options.split_fraction = split;
    vgpu::Device device = SmallDevice();
    auto r = AsyncOutOfCore(device, a, a, options, pool);
    ASSERT_TRUE(r.ok()) << "split=" << split;
    EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)))
        << "split=" << split;
    EXPECT_TRUE(device.hazard_violations().empty()) << "split=" << split;
  }
}

TEST(CpuMulticore, MatchesReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 12);
  ThreadPool pool(4);
  auto r = CpuMulticore(a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_GT(r->stats.total_seconds, 0.0);
}

TEST(Hybrid, MatchesReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 13);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  // A mid-range ratio guarantees both devices receive work regardless of
  // how lumpy the chunk flops are for this seed.
  ExecutorOptions options;
  options.gpu_ratio = 0.5;
  auto r = Hybrid(device, a, a, options, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_GT(r->stats.num_gpu_chunks, 0);
  EXPECT_GT(r->stats.num_cpu_chunks, 0);
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(Hybrid, FasterThanGpuAlone) {
  Csr a = testutil::RandomRmat(10, 8.0, 14);
  ThreadPool pool(2);
  vgpu::Device d1 = SmallDevice();
  vgpu::Device d2 = SmallDevice();
  auto gpu = AsyncOutOfCore(d1, a, a, ExecutorOptions{}, pool);
  auto hybrid = Hybrid(d2, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(gpu.ok() && hybrid.ok());
  EXPECT_LT(hybrid->stats.total_seconds, gpu->stats.total_seconds);
}

TEST(Hybrid, RatioZeroAndOneDegenerate) {
  Csr a = testutil::RandomRmat(8, 6.0, 15);
  ThreadPool pool(2);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  {
    ExecutorOptions options;
    options.gpu_ratio = 0.0;  // everything on the CPU
    vgpu::Device device = SmallDevice();
    auto r = Hybrid(device, a, a, options, pool);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.num_gpu_chunks, 0);
    EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  }
  {
    ExecutorOptions options;
    options.gpu_ratio = 1.0;  // everything on the GPU
    vgpu::Device device = SmallDevice();
    auto r = Hybrid(device, a, a, options, pool);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.num_cpu_chunks, 0);
    EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  }
}

TEST(Hybrid, ReorderingAssignsHeaviestChunksToGpu) {
  Csr a = testutil::RandomRmat(10, 8.0, 16);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  ExecutorOptions options;  // reorder_chunks = true
  auto r = Hybrid(device, a, a, options, pool);
  ASSERT_TRUE(r.ok());
  // At 65% of flops on sorted chunks, the GPU chunk count is a minority of
  // the total for skewed inputs (Table III: "relatively small").
  if (r->stats.num_chunks >= 4) {
    EXPECT_LT(r->stats.num_gpu_chunks, r->stats.num_chunks);
  }
}

TEST(Executors, DimensionMismatchRejectedEverywhere) {
  Csr a = testutil::RandomCsr(16, 8, 2.0, 17);
  Csr b = testutil::RandomCsr(16, 8, 2.0, 18);
  ThreadPool pool(2);
  vgpu::Device device = SmallDevice();
  EXPECT_FALSE(SyncOutOfCore(device, a, b, ExecutorOptions{}, pool).ok());
  EXPECT_FALSE(AsyncOutOfCore(device, a, b, ExecutorOptions{}, pool).ok());
  EXPECT_FALSE(CpuMulticore(a, b, ExecutorOptions{}, pool).ok());
  EXPECT_FALSE(Hybrid(device, a, b, ExecutorOptions{}, pool).ok());
}

TEST(Executors, RectangularProductsWork) {
  Csr a = testutil::RandomCsr(300, 200, 6.0, 19);
  Csr b = testutil::RandomCsr(200, 250, 6.0, 20);
  ThreadPool pool(2);
  vgpu::Device device = SmallDevice(12);
  Csr expected = kernels::ReferenceSpgemm(a, b);
  auto r = AsyncOutOfCore(device, a, b, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, expected));
}

TEST(Executors, StatsAreConsistent) {
  Csr a = testutil::RandomRmat(9, 8.0, 21);
  vgpu::Device device = SmallDevice();
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  const RunStats& s = r->stats;
  EXPECT_EQ(s.nnz_out, r->c.nnz());
  EXPECT_EQ(s.flops, sparse::TotalFlops(a, a));
  EXPECT_GT(s.gflops(), 0.0);
  EXPECT_GE(s.d2h_fraction, 0.0);
  EXPECT_LE(s.d2h_fraction, 1.0);
  EXPECT_GE(s.total_seconds, s.d2h_seconds * s.d2h_fraction);
  EXPECT_GT(s.bytes_d2h, r->c.nnz() * 12);  // payload + info transfers
}

}  // namespace
}  // namespace oocgemm::core
