#include "core/run_stats.hpp"

#include <gtest/gtest.h>

namespace oocgemm::core {
namespace {

using vgpu::Interval;
using vgpu::OpCategory;
using vgpu::Trace;
using vgpu::TraceEvent;

Trace MakeTrace() {
  Trace t;
  t.Add(TraceEvent{OpCategory::kKernel, "k", 0, Interval{0.0, 1.0}, 0});
  t.Add(TraceEvent{OpCategory::kD2H, "d", 0, Interval{0.5, 3.0}, 3000});
  t.Add(TraceEvent{OpCategory::kH2D, "h", 0, Interval{3.0, 3.5}, 500});
  t.Add(TraceEvent{OpCategory::kAlloc, "a", -1, Interval{3.5, 3.6}, 0});
  return t;
}

TEST(RunStats, FillFromTraceBusyTimes) {
  RunStats s;
  FillStatsFromTrace(MakeTrace(), s);
  EXPECT_DOUBLE_EQ(s.kernel_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.d2h_seconds, 2.5);
  EXPECT_DOUBLE_EQ(s.h2d_seconds, 0.5);
  EXPECT_NEAR(s.alloc_seconds, 0.1, 1e-12);
  EXPECT_EQ(s.bytes_d2h, 3000);
  EXPECT_EQ(s.bytes_h2d, 500);
}

TEST(RunStats, TotalIsAtLeastSpan) {
  RunStats s;
  s.total_seconds = 1.0;  // smaller than the trace span (3.6)
  FillStatsFromTrace(MakeTrace(), s);
  EXPECT_DOUBLE_EQ(s.total_seconds, 3.6);
  s.total_seconds = 10.0;  // larger (e.g. CPU-bound hybrid)
  FillStatsFromTrace(MakeTrace(), s);
  EXPECT_DOUBLE_EQ(s.total_seconds, 10.0);
}

TEST(RunStats, FractionsUseCoveredTime) {
  RunStats s;
  FillStatsFromTrace(MakeTrace(), s);
  EXPECT_NEAR(s.d2h_fraction, 2.5 / 3.6, 1e-12);
  EXPECT_NEAR(s.transfer_fraction, 3.0 / 3.6, 1e-12);
  EXPECT_NEAR(s.overlap_factor, (1.0 + 2.5 + 0.5) / 3.6, 1e-12);
}

TEST(RunStats, GflopsArithmetic) {
  RunStats s;
  s.flops = 2'000'000'000;
  s.total_seconds = 2.0;
  EXPECT_DOUBLE_EQ(s.gflops(), 1.0);
  s.total_seconds = 0.0;
  EXPECT_DOUBLE_EQ(s.gflops(), 0.0);
}

TEST(RunStats, DebugStringMentionsKeyFields) {
  RunStats s;
  s.total_seconds = 0.5;
  s.flops = 1'000'000;
  s.num_chunks = 7;
  const std::string d = s.DebugString();
  EXPECT_NE(d.find("chunks=7"), std::string::npos);
  EXPECT_NE(d.find("GFLOPS"), std::string::npos);
}

TEST(RunStats, EmptyTraceIsSafe) {
  RunStats s;
  FillStatsFromTrace(vgpu::Trace{}, s);
  EXPECT_EQ(s.total_seconds, 0.0);
  EXPECT_EQ(s.d2h_fraction, 0.0);
}

}  // namespace
}  // namespace oocgemm::core
