#include "partition/chunk.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/analysis.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::partition {
namespace {

using sparse::Csr;

TEST(AnalyzeChunks, FlopsSumToTotal) {
  Csr a = testutil::RandomRmat(8, 6.0, 1);
  for (int nr : {1, 3}) {
    for (int nc : {1, 4}) {
      PanelBoundaries rb = UniformBoundaries(a.rows(), nr);
      PanelBoundaries cb = UniformBoundaries(a.cols(), nc);
      std::vector<ChunkDesc> chunks = AnalyzeChunks(a, rb, a, cb);
      ASSERT_EQ(chunks.size(), static_cast<std::size_t>(nr * nc));
      std::int64_t total = 0;
      for (const auto& c : chunks) total += c.flops;
      EXPECT_EQ(total, sparse::TotalFlops(a, a));
    }
  }
}

TEST(AnalyzeChunks, ChunkFlopsMatchPanelProducts) {
  Csr a = testutil::RandomCsr(50, 50, 5.0, 2);
  PanelBoundaries rb = UniformBoundaries(a.rows(), 2);
  PanelBoundaries cb = UniformBoundaries(a.cols(), 3);
  std::vector<ChunkDesc> chunks = AnalyzeChunks(a, rb, a, cb);
  std::vector<Csr> a_panels = PartitionRows(a, rb);
  std::vector<Csr> b_panels = PartitionColsOptimized(a, cb);
  for (const ChunkDesc& c : chunks) {
    EXPECT_EQ(c.flops,
              sparse::TotalFlops(a_panels[static_cast<std::size_t>(c.row_panel)],
                                 b_panels[static_cast<std::size_t>(c.col_panel)]))
        << "chunk (" << c.row_panel << "," << c.col_panel << ")";
  }
}

TEST(AnalyzeChunks, UpperBoundHoldsPerChunk) {
  Csr a = testutil::RandomRmat(8, 8.0, 3);
  PanelBoundaries rb = UniformBoundaries(a.rows(), 2);
  PanelBoundaries cb = UniformBoundaries(a.cols(), 2);
  std::vector<ChunkDesc> chunks = AnalyzeChunks(a, rb, a, cb);
  std::vector<Csr> a_panels = PartitionRows(a, rb);
  std::vector<Csr> b_panels = PartitionColsOptimized(a, cb);
  for (const ChunkDesc& c : chunks) {
    Csr prod = kernels::ReferenceSpgemm(
        a_panels[static_cast<std::size_t>(c.row_panel)],
        b_panels[static_cast<std::size_t>(c.col_panel)]);
    EXPECT_GE(c.upper_bound_nnz, prod.nnz());
  }
}

TEST(AnalyzeChunks, RowMajorIds) {
  Csr a = testutil::RandomCsr(30, 30, 3.0, 4);
  PanelBoundaries rb = UniformBoundaries(a.rows(), 2);
  PanelBoundaries cb = UniformBoundaries(a.cols(), 3);
  std::vector<ChunkDesc> chunks = AnalyzeChunks(a, rb, a, cb);
  for (int rp = 0; rp < 2; ++rp) {
    for (int cp = 0; cp < 3; ++cp) {
      const ChunkDesc& c = chunks[static_cast<std::size_t>(rp * 3 + cp)];
      EXPECT_EQ(c.row_panel, rp);
      EXPECT_EQ(c.col_panel, cp);
    }
  }
}

TEST(OrderByFlopsDecreasing, HeavyClassesFirst) {
  // Work classes are ~30% apart, so 40 > 30 > 20 > 10 land in distinct
  // classes and sort strictly by decreasing work.
  std::vector<ChunkDesc> chunks(4);
  chunks[0].flops = 10;
  chunks[1].flops = 40;
  chunks[2].flops = 20;
  chunks[3].flops = 30;
  std::vector<int> order = OrderByFlopsDecreasing(chunks);
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

TEST(OrderByFlopsDecreasing, NearEqualChunksKeepLocalityOrder) {
  // Chunks within ~30% of each other stay in column-major panel order
  // (panel-cache locality) rather than being scrambled by exact flops.
  std::vector<ChunkDesc> chunks(3);
  for (int i = 0; i < 3; ++i) {
    chunks[static_cast<std::size_t>(i)].flops = 1000 + i;  // same class
    chunks[static_cast<std::size_t>(i)].row_panel = 2 - i;
    chunks[static_cast<std::size_t>(i)].col_panel = 0;
  }
  EXPECT_EQ(OrderByFlopsDecreasing(chunks), (std::vector<int>{2, 1, 0}));
}

TEST(OrderByFlopsDecreasing, CumulativeFlopsDominatesAnyPrefix) {
  // The class ordering must still front-load the work: every prefix holds
  // at least as many flops as the same-length prefix of the natural order.
  std::vector<ChunkDesc> chunks(8);
  std::int64_t flops[] = {5, 900, 33, 6000, 12, 450, 7000, 60};
  for (int i = 0; i < 8; ++i) chunks[static_cast<std::size_t>(i)].flops = flops[i];
  std::vector<int> order = OrderByFlopsDecreasing(chunks);
  std::int64_t sorted_prefix = 0, natural_prefix = 0;
  for (int i = 0; i < 8; ++i) {
    sorted_prefix += chunks[static_cast<std::size_t>(order[i])].flops;
    natural_prefix += chunks[static_cast<std::size_t>(i)].flops;
    EXPECT_GE(sorted_prefix, natural_prefix) << "prefix " << i;
  }
}

TEST(OrderByFlopsDecreasing, ColumnMajorWithinClass) {
  // Equal-class chunks are ordered column-panel-major so consecutive
  // chunks reuse the cached B panel.
  std::vector<ChunkDesc> chunks(4);
  for (int i = 0; i < 4; ++i) {
    chunks[static_cast<std::size_t>(i)].flops = 100;
    chunks[static_cast<std::size_t>(i)].row_panel = i / 2;
    chunks[static_cast<std::size_t>(i)].col_panel = i % 2;
  }
  std::vector<int> order = OrderByFlopsDecreasing(chunks);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
}

TEST(CountGpuChunks, Algorithm4Semantics) {
  std::vector<ChunkDesc> chunks(4);
  chunks[0].flops = 50;
  chunks[1].flops = 30;
  chunks[2].flops = 15;
  chunks[3].flops = 5;
  std::vector<int> order{0, 1, 2, 3};
  EXPECT_EQ(CountGpuChunks(chunks, order, 0.50), 1);   // 50 >= 50%
  EXPECT_EQ(CountGpuChunks(chunks, order, 0.65), 2);   // 80 >= 65%
  EXPECT_EQ(CountGpuChunks(chunks, order, 0.81), 3);   // 95 >= 81%
  EXPECT_EQ(CountGpuChunks(chunks, order, 1.0), 4);
  EXPECT_EQ(CountGpuChunks(chunks, order, 0.0), 0);
  EXPECT_EQ(CountGpuChunks(chunks, order, -1.0), 0);
}

TEST(CountGpuChunks, RespectsGivenOrder) {
  std::vector<ChunkDesc> chunks(2);
  chunks[0].flops = 10;
  chunks[1].flops = 90;
  EXPECT_EQ(CountGpuChunks(chunks, {1, 0}, 0.65), 1);
  EXPECT_EQ(CountGpuChunks(chunks, {0, 1}, 0.65), 2);
}

TEST(CountGpuChunks, ZeroTotalFlops) {
  std::vector<ChunkDesc> chunks(3);
  EXPECT_EQ(CountGpuChunks(chunks, {0, 1, 2}, 0.65), 3);
}

}  // namespace
}  // namespace oocgemm::partition
