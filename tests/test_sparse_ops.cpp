#include "sparse/ops.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(Transpose, DoubleTransposeIsIdentity) {
  Csr m = testutil::RandomCsr(40, 60, 6.0, 1);
  EXPECT_TRUE(Transpose(Transpose(m)) == m);
}

TEST(Transpose, ShapeSwaps) {
  Csr m = testutil::RandomCsr(10, 20, 3.0, 2);
  Csr t = Transpose(m);
  EXPECT_EQ(t.rows(), 20);
  EXPECT_EQ(t.cols(), 10);
  EXPECT_EQ(t.nnz(), m.nnz());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(Transpose, ElementwiseCorrect) {
  Csr m(2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  Csr t = Transpose(m);
  // t = [1 0; 0 3; 2 0]
  EXPECT_EQ(t.row_nnz(0), 1);
  EXPECT_EQ(t.col_ids()[static_cast<std::size_t>(t.row_begin(1))], 1);
  EXPECT_EQ(t.values()[static_cast<std::size_t>(t.row_begin(2))], 2.0);
}

TEST(Identity, MultiplicationNeutral) {
  Csr a = testutil::RandomCsr(32, 32, 4.0, 3);
  Csr i = Identity(32);
  EXPECT_TRUE(kernels::ReferenceSpgemm(a, i) == a);
  EXPECT_TRUE(kernels::ReferenceSpgemm(i, a) == a);
}

TEST(Diagonal, ScalesRows) {
  Csr a = testutil::RandomCsr(8, 8, 3.0, 4);
  std::vector<value_t> d(8);
  for (int i = 0; i < 8; ++i) d[static_cast<std::size_t>(i)] = i + 1.0;
  Csr scaled = kernels::ReferenceSpgemm(Diagonal(d), a);
  for (index_t r = 0; r < 8; ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      EXPECT_DOUBLE_EQ(scaled.values()[static_cast<std::size_t>(k)],
                       a.values()[static_cast<std::size_t>(k)] * (r + 1.0));
    }
  }
}

TEST(SliceRows, ExtractsRange) {
  Csr m = testutil::RandomCsr(50, 30, 5.0, 5);
  Csr s = SliceRows(m, 10, 20);
  EXPECT_EQ(s.rows(), 10);
  EXPECT_EQ(s.cols(), 30);
  EXPECT_TRUE(s.Validate().ok());
  for (index_t r = 0; r < 10; ++r) {
    ASSERT_EQ(s.row_nnz(r), m.row_nnz(r + 10));
    for (offset_t k = 0; k < s.row_nnz(r); ++k) {
      EXPECT_EQ(s.col_ids()[static_cast<std::size_t>(s.row_begin(r) + k)],
                m.col_ids()[static_cast<std::size_t>(m.row_begin(r + 10) + k)]);
    }
  }
}

TEST(SliceRows, FullAndEmptyRanges) {
  Csr m = testutil::RandomCsr(20, 20, 4.0, 6);
  EXPECT_TRUE(SliceRows(m, 0, 20) == m);
  Csr empty = SliceRows(m, 7, 7);
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.nnz(), 0);
}

TEST(SliceColsReference, ColumnsRebased) {
  Csr m(2, 6, {0, 3, 5}, {0, 2, 5, 1, 4}, {1, 2, 3, 4, 5});
  Csr s = SliceColsReference(m, 2, 5);
  EXPECT_EQ(s.cols(), 3);
  EXPECT_EQ(s.nnz(), 2);
  EXPECT_EQ(s.col_ids(), (std::vector<index_t>{0, 2}));
  EXPECT_EQ(s.values(), (std::vector<value_t>{2.0, 5.0}));
}

TEST(Concat, ColsThenSliceRecoversParts) {
  Csr a = testutil::RandomCsr(12, 7, 3.0, 7);
  Csr b = testutil::RandomCsr(12, 9, 3.0, 8);
  Csr ab = ConcatCols(a, b);
  EXPECT_EQ(ab.cols(), 16);
  EXPECT_TRUE(ab.Validate().ok());
  EXPECT_TRUE(SliceColsReference(ab, 0, 7) == a);
  EXPECT_TRUE(SliceColsReference(ab, 7, 16) == b);
}

TEST(Concat, RowsThenSliceRecoversParts) {
  Csr a = testutil::RandomCsr(5, 11, 3.0, 9);
  Csr b = testutil::RandomCsr(8, 11, 3.0, 10);
  Csr ab = ConcatRows(a, b);
  EXPECT_EQ(ab.rows(), 13);
  EXPECT_TRUE(ab.Validate().ok());
  EXPECT_TRUE(SliceRows(ab, 0, 5) == a);
  EXPECT_TRUE(SliceRows(ab, 5, 13) == b);
}

TEST(Symmetrize, ResultIsSymmetric) {
  Csr m = testutil::RandomCsr(30, 30, 4.0, 11);
  Csr s = Symmetrize(m);
  EXPECT_TRUE(s == Transpose(s));
}

TEST(DropZeros, RemovesExplicitZeros) {
  Csr m(2, 3, {0, 2, 4}, {0, 1, 0, 2}, {1.0, 0.0, 0.0, 2.0});
  Csr d = DropZeros(m);
  EXPECT_EQ(d.nnz(), 2);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(Multiply, SpmvMatchesDense) {
  Csr m(2, 2, {0, 2, 3}, {0, 1, 1}, {2.0, 3.0, 4.0});
  std::vector<value_t> x{1.0, 10.0};
  std::vector<value_t> y = Multiply(m, x);
  EXPECT_DOUBLE_EQ(y[0], 32.0);
  EXPECT_DOUBLE_EQ(y[1], 40.0);
}

TEST(Multiply, AssociativityWithSpgemm) {
  // (A*B)*x == A*(B*x): an independent cross-check of SpGEMM.
  Csr a = testutil::RandomCsr(24, 18, 4.0, 12);
  Csr b = testutil::RandomCsr(18, 24, 4.0, 13);
  Csr ab = kernels::ReferenceSpgemm(a, b);
  std::vector<value_t> x(24);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.1 * (i + 1);
  std::vector<value_t> left = Multiply(ab, x);
  std::vector<value_t> right = Multiply(a, Multiply(b, x));
  ASSERT_EQ(left.size(), right.size());
  for (std::size_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left[i], right[i], 1e-9);
  }
}

TEST(FrobeniusNorm, KnownValue) {
  Csr m(1, 2, {0, 2}, {0, 1}, {3.0, 4.0});
  EXPECT_DOUBLE_EQ(FrobeniusNorm(m), 5.0);
}

}  // namespace
}  // namespace oocgemm::sparse
