// Property sweeps over matrix structure, device size and executor options:
// every path agrees with the oracle and the virtual-time invariants hold.
#include <gtest/gtest.h>

#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "sparse/datasets.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

struct PropertyCase {
  const char* name;
  const char* dataset;  // abbr from the paper registry (scaled down)
  int mem_shift;        // device memory = 16 GiB >> mem_shift
};

class ExecutorPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExecutorPropertySweep, AllPathsAgreeAndInvariantsHold) {
  const PropertyCase& p = GetParam();
  Csr a = sparse::PaperMatrix(p.dataset, /*scale_shift=*/4).build();
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  ExecutorOptions options;

  vgpu::Device d_sync(vgpu::ScaledV100Properties(p.mem_shift));
  vgpu::Device d_async(vgpu::ScaledV100Properties(p.mem_shift));
  vgpu::Device d_hybrid(vgpu::ScaledV100Properties(p.mem_shift));

  auto sync = SyncOutOfCore(d_sync, a, a, options, pool);
  auto async = AsyncOutOfCore(d_async, a, a, options, pool);
  auto cpu = CpuMulticore(a, a, options, pool);
  auto hybrid = Hybrid(d_hybrid, a, a, options, pool);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  ASSERT_TRUE(cpu.ok());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();

  // Correctness: every path equals the oracle.
  EXPECT_TRUE(testutil::CsrNear(sync->c, expected));
  EXPECT_TRUE(testutil::CsrNear(async->c, expected));
  EXPECT_TRUE(testutil::CsrNear(cpu->c, expected));
  EXPECT_TRUE(testutil::CsrNear(hybrid->c, expected));

  // No virtual-time data races anywhere.
  EXPECT_TRUE(d_sync.hazard_violations().empty());
  EXPECT_TRUE(d_async.hazard_violations().empty());
  EXPECT_TRUE(d_hybrid.hazard_violations().empty());

  // Engine exclusivity (one transfer per direction at a time).
  for (vgpu::Device* d : {&d_sync, &d_async, &d_hybrid}) {
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kD2H));
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kH2D));
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kKernel));
  }

  // Performance ordering (the paper's headline relations):
  // async <= sync; hybrid <= async (+ small tolerance for tiny inputs).
  EXPECT_LE(async->stats.total_seconds, sync->stats.total_seconds * 1.001);
  EXPECT_LE(hybrid->stats.total_seconds, async->stats.total_seconds * 1.05);

  // Memory: peak usage within capacity.
  EXPECT_LE(async->stats.device_peak_bytes, d_async.capacity());
  EXPECT_LE(sync->stats.device_peak_bytes, d_sync.capacity());
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, ExecutorPropertySweep,
    ::testing::Values(PropertyCase{"social", "com-lj", 13},
                      PropertyCase{"wiki", "wiki0206", 13},
                      PropertyCase{"web", "uk-2002", 13},
                      PropertyCase{"fem", "stokes", 13},
                      PropertyCase{"kkt", "nlp", 13},
                      PropertyCase{"social_tiny_device", "com-lj", 15},
                      PropertyCase{"web_tiny_device", "uk-2002", 15}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

class PanelCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(PanelCountSweep, AsyncCorrectUnderForcedPartitions) {
  // Forcing ever smaller devices exercises 1..many panel configurations.
  Csr a = testutil::RandomRmat(8, 8.0, 42);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  vgpu::Device device(vgpu::ScaledV100Properties(GetParam()));
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  EXPECT_TRUE(device.hazard_violations().empty());
}

INSTANTIATE_TEST_SUITE_P(DeviceSizes, PanelCountSweep,
                         ::testing::Values(8, 10, 12, 13, 14, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shift" + std::to_string(info.param);
                         });

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, HybridCorrectAtAnyRatio) {
  Csr a = testutil::RandomRmat(8, 8.0, 43);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  ExecutorOptions options;
  options.gpu_ratio = GetParam();
  vgpu::Device device(vgpu::ScaledV100Properties(13));
  auto r = Hybrid(device, a, a, options, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  EXPECT_EQ(r->stats.num_gpu_chunks + r->stats.num_cpu_chunks,
            r->stats.num_chunks);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.0, 0.2, 0.35, 0.5, 0.65, 0.8,
                                           0.95, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "r" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

}  // namespace
}  // namespace oocgemm::core
