// Property sweeps over matrix structure, device size and executor options:
// every path agrees with the oracle and the virtual-time invariants hold.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/executors.hpp"
#include "core/multi_gpu.hpp"
#include "kernels/reference_spgemm.hpp"
#include "sparse/datasets.hpp"
#include "test_util.hpp"
#include "vgpu/fault_injector.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

struct PropertyCase {
  const char* name;
  const char* dataset;  // abbr from the paper registry (scaled down)
  int mem_shift;        // device memory = 16 GiB >> mem_shift
};

class ExecutorPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExecutorPropertySweep, AllPathsAgreeAndInvariantsHold) {
  const PropertyCase& p = GetParam();
  Csr a = sparse::PaperMatrix(p.dataset, /*scale_shift=*/4).build();
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  ExecutorOptions options;

  vgpu::Device d_sync(vgpu::ScaledV100Properties(p.mem_shift));
  vgpu::Device d_async(vgpu::ScaledV100Properties(p.mem_shift));
  vgpu::Device d_hybrid(vgpu::ScaledV100Properties(p.mem_shift));

  auto sync = SyncOutOfCore(d_sync, a, a, options, pool);
  auto async = AsyncOutOfCore(d_async, a, a, options, pool);
  auto cpu = CpuMulticore(a, a, options, pool);
  auto hybrid = Hybrid(d_hybrid, a, a, options, pool);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  ASSERT_TRUE(cpu.ok());
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();

  // Correctness: every path equals the oracle.
  EXPECT_TRUE(testutil::CsrNear(sync->c, expected));
  EXPECT_TRUE(testutil::CsrNear(async->c, expected));
  EXPECT_TRUE(testutil::CsrNear(cpu->c, expected));
  EXPECT_TRUE(testutil::CsrNear(hybrid->c, expected));

  // No virtual-time data races anywhere.
  EXPECT_TRUE(d_sync.hazard_violations().empty());
  EXPECT_TRUE(d_async.hazard_violations().empty());
  EXPECT_TRUE(d_hybrid.hazard_violations().empty());

  // Engine exclusivity (one transfer per direction at a time).
  for (vgpu::Device* d : {&d_sync, &d_async, &d_hybrid}) {
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kD2H));
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kH2D));
    EXPECT_FALSE(d->trace().HasIntraCategoryOverlap(vgpu::OpCategory::kKernel));
  }

  // Performance ordering (the paper's headline relations):
  // async <= sync; hybrid <= async (+ small tolerance for tiny inputs).
  EXPECT_LE(async->stats.total_seconds, sync->stats.total_seconds * 1.001);
  EXPECT_LE(hybrid->stats.total_seconds, async->stats.total_seconds * 1.05);

  // Memory: peak usage within capacity.
  EXPECT_LE(async->stats.device_peak_bytes, d_async.capacity());
  EXPECT_LE(sync->stats.device_peak_bytes, d_sync.capacity());
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, ExecutorPropertySweep,
    ::testing::Values(PropertyCase{"social", "com-lj", 13},
                      PropertyCase{"wiki", "wiki0206", 13},
                      PropertyCase{"web", "uk-2002", 13},
                      PropertyCase{"fem", "stokes", 13},
                      PropertyCase{"kkt", "nlp", 13},
                      PropertyCase{"social_tiny_device", "com-lj", 15},
                      PropertyCase{"web_tiny_device", "uk-2002", 15}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

class PanelCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(PanelCountSweep, AsyncCorrectUnderForcedPartitions) {
  // Forcing ever smaller devices exercises 1..many panel configurations.
  Csr a = testutil::RandomRmat(8, 8.0, 42);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  vgpu::Device device(vgpu::ScaledV100Properties(GetParam()));
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  EXPECT_TRUE(device.hazard_violations().empty());
}

INSTANTIATE_TEST_SUITE_P(DeviceSizes, PanelCountSweep,
                         ::testing::Values(8, 10, 12, 13, 14, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "shift" + std::to_string(info.param);
                         });

class RatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(RatioSweep, HybridCorrectAtAnyRatio) {
  Csr a = testutil::RandomRmat(8, 8.0, 43);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  ExecutorOptions options;
  options.gpu_ratio = GetParam();
  vgpu::Device device(vgpu::ScaledV100Properties(13));
  auto r = Hybrid(device, a, a, options, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, expected));
  EXPECT_EQ(r->stats.num_gpu_chunks + r->stats.num_cpu_chunks,
            r->stats.num_chunks);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(0.0, 0.2, 0.35, 0.5, 0.65, 0.8,
                                           0.95, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "r" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// --- fault sweeps -----------------------------------------------------------
//
// Under injected allocation, transfer and kernel faults an executor has
// exactly two legal outcomes: success with the oracle's C, or a clean typed
// error.  A wrong C (silent corruption, partial assembly) is never legal,
// and the device arena must return to baseline either way.

struct FaultSweepCase {
  const char* name;
  const char* spec;  // vgpu::FaultSpec rule list
};

class FaultSweep : public ::testing::TestWithParam<FaultSweepCase> {};

TEST_P(FaultSweep, OutOfCoreIsCorrectOrFailsCleanly) {
  Csr a = testutil::RandomRmat(8, 8.0, 44);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    vgpu::Device device(vgpu::ScaledV100Properties(14));
    vgpu::FaultInjector injector(
        vgpu::FaultSpec::Parse(GetParam().spec, seed).value());
    device.set_fault_injector(&injector);
    auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
    if (r.ok()) {
      EXPECT_TRUE(testutil::CsrNear(r->c, expected));
    } else {
      EXPECT_NE(r.status().code(), StatusCode::kOk);
      // Injected faults must never masquerade as a planner bug.
      EXPECT_NE(r.status().code(), StatusCode::kOutOfMemory);
    }
    // Error path leaks nothing: every pool and cache arena was freed.
    EXPECT_EQ(device.used_bytes(), 0) << r.ok();
  }
}

TEST_P(FaultSweep, MultiGpuPrunesTheFaultedDeviceAndStaysCorrect) {
  Csr a = testutil::RandomRmat(8, 8.0, 45);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    std::vector<std::unique_ptr<vgpu::Device>> storage;
    std::vector<vgpu::Device*> devices;
    for (int i = 0; i < 3; ++i) {
      storage.push_back(std::make_unique<vgpu::Device>(
          vgpu::ScaledV100Properties(13)));
      devices.push_back(storage.back().get());
    }
    vgpu::FaultInjector injector(
        vgpu::FaultSpec::Parse(GetParam().spec, seed).value());
    devices[1]->set_fault_injector(&injector);
    auto r = MultiGpuHybrid(devices, a, a, ExecutorOptions{}, pool);
    if (r.ok()) {
      EXPECT_TRUE(testutil::CsrNear(r->c, expected));
      // Either the faulted device survived its draws, or it was pruned and
      // recorded; survivors always re-cover its chunks.
      for (int failed : r->stats.failed_devices) EXPECT_EQ(failed, 1);
    } else {
      EXPECT_NE(r.status().code(), StatusCode::kOk);
    }
    for (vgpu::Device* d : devices) EXPECT_EQ(d->used_bytes(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Specs, FaultSweep,
    ::testing::Values(
        FaultSweepCase{"alloc_fail", "alloc:p=0.05:fail"},
        FaultSweepCase{"h2d_fail", "h2d:p=0.03:fail"},
        FaultSweepCase{"d2h_corrupt", "d2h:p=0.03:corrupt"},
        FaultSweepCase{"kernel_fail", "kernel:p=0.02:fail"},
        FaultSweepCase{"kernel_kill", "kernel:nth=20:kill"},
        FaultSweepCase{"mixed", "h2d:p=0.02:corrupt,alloc:p=0.03:fail"}),
    [](const ::testing::TestParamInfo<FaultSweepCase>& info) {
      return info.param.name;
    });

TEST(FaultRecovery, ArenaReturnsToBaselineAfterFailedRunAndRerunSucceeds) {
  // Regression for the error-path cleanup: a failed run must release every
  // pool reservation and invalidate stale panel-cache entries, so the same
  // device immediately serves a clean re-run with the correct result.
  Csr a = testutil::RandomRmat(8, 8.0, 46);
  Csr expected = kernels::ReferenceSpgemm(a, a);
  ThreadPool pool(2);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  const std::int64_t baseline = device.used_bytes();

  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("d2h:nth=2:fail", 1).value());
  device.set_fault_injector(&injector);
  auto failed = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(device.used_bytes(), baseline);
  EXPECT_FALSE(device.health().ok());

  // Remove the injector: the next run (which resets the timeline, clearing
  // the transient sticky error) must be byte-correct on the same device.
  device.set_fault_injector(nullptr);
  auto ok = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(ok->c, expected));
  EXPECT_EQ(device.used_bytes(), baseline);
}

}  // namespace
}  // namespace oocgemm::core
