// Device-failure recovery in the multi-device serve scheduler: kill a pool
// device mid-run under concurrent multi-tenant load and require that every
// admitted job still completes reference-correct (re-planned onto the
// survivors or the CPU path) or fails with a typed status — never a wrong
// result — that the failed_over counter surfaces the re-plans, that the
// dead lane is pulled from the pool, and that every reservation ledger
// drains to zero.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kernels/reference_spgemm.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "vgpu/fault_injector.hpp"

namespace oocgemm::serve {
namespace {

using sparse::Csr;

struct Fleet {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;

  explicit Fleet(int count, int mem_shift) {
    for (int i = 0; i < count; ++i) {
      storage.push_back(std::make_unique<vgpu::Device>(
          vgpu::ScaledV100Properties(mem_shift)));
      devices.push_back(storage.back().get());
    }
  }
};

struct Submitted {
  std::shared_ptr<const Csr> a, b;
  std::future<JobResult> future;
};

// Three concurrent tenants submitting a deterministic mixed workload.
std::vector<Submitted> SubmitMixedLoad(SpgemmServer& server,
                                       std::uint64_t seed, int clients,
                                       int jobs_per_client) {
  std::mutex mutex;
  std::vector<Submitted> submitted;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SplitMix64 rng(seed + static_cast<std::uint64_t>(c) * 977);
      for (int j = 0; j < jobs_per_client; ++j) {
        SpgemmJob job;
        const std::uint64_t pick = rng.Next() % 3;
        const std::uint64_t mseed = rng.Next();
        if (pick == 0) {
          job.a = std::make_shared<const Csr>(
              testutil::RandomCsr(64, 64, 4.0, mseed));
        } else {
          job.a = std::make_shared<const Csr>(
              testutil::RandomRmat(7, 6.0, mseed));
        }
        job.b = job.a;
        job.options.priority = static_cast<int>(rng.Next() % 4);
        Submitted s;
        s.a = job.a;
        s.b = job.b;
        s.future = server.Submit(std::move(job));
        std::unique_lock<std::mutex> lock(mutex);
        submitted.push_back(std::move(s));
      }
    });
  }
  for (auto& t : threads) t.join();
  return submitted;
}

TEST(ServeFailover, KilledDeviceJobsRePlanOntoSurvivors) {
  constexpr int kDevices = 3;
  // Kill each lane in turn: recovery must not depend on which one dies.
  for (int victim = 0; victim < kDevices; ++victim) {
    SCOPED_TRACE("victim device " + std::to_string(victim));
    Fleet fleet(kDevices, /*mem_shift=*/15);
    // Die early: every GPU run launches several kernels (analysis,
    // symbolic, numeric), so the 2nd launch cuts off the job holding the
    // victim mid-execution.
    vgpu::FaultInjector injector(
        vgpu::FaultSpec::Parse("kernel:nth=2:kill", /*seed=*/3).value());
    fleet.devices[static_cast<std::size_t>(victim)]->set_fault_injector(
        &injector);

    ThreadPool pool(2);
    ServerConfig config;
    config.scheduler.num_workers = kDevices + 1;
    config.max_queue = 64;
    SpgemmServer server(fleet.devices, pool, config);

    // Pin the non-victim lanes so the probe job is forced onto the victim
    // regardless of placement order; its second kernel launch then kills
    // the device mid-run.
    std::vector<core::DevicePool::Slot> pins;
    for (int i = 0; i < kDevices; ++i) {
      core::DevicePool::Slot s = server.device_pool().TryAcquire(0);
      ASSERT_TRUE(s.held());
      pins.push_back(std::move(s));
    }
    for (auto& s : pins) {
      if (s.index() == victim) s.Release();
    }
    SpgemmJob probe;
    probe.a = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 123));
    probe.b = probe.a;
    probe.options.mode = core::ExecutionMode::kGpuOutOfCore;
    auto probe_a = probe.a;
    std::future<JobResult> probe_future = server.Submit(std::move(probe));

    // Once the victim is dead, free the survivors: the probe's failover
    // round re-plans onto them.
    while (!injector.device_dead()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto& s : pins) s.Release();

    JobResult probe_r = probe_future.get();
    ASSERT_TRUE(probe_r.ok()) << probe_r.status.ToString();
    EXPECT_TRUE(testutil::CsrNear(
        probe_r.c, kernels::ReferenceSpgemm(*probe_a, *probe_a)));
    EXPECT_GE(probe_r.metrics.failovers, 1);
    EXPECT_NE(probe_r.metrics.device_index, victim);

    // Concurrent multi-tenant load against the degraded pool: everything
    // still completes reference-correct on the survivors (or the CPU).
    auto submitted = SubmitMixedLoad(server, 20260806u + victim, 3, 8);
    server.Drain();

    // Every admitted kAuto job re-plans around the dead lane: all complete
    // and every result matches the oracle (a faulted run never leaks a
    // partial or corrupted C).
    for (auto& s : submitted) {
      JobResult r = s.future.get();
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_TRUE(
          testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
    }

    ServerReport report = server.Report();
    EXPECT_EQ(report.completed, 25);
    EXPECT_GT(report.failed_over, 0);
    EXPECT_EQ(report.device_failures, 1);

    // The dead lane was pulled from the pool and shows up in the report.
    ASSERT_EQ(report.devices.size(), static_cast<std::size_t>(kDevices));
    for (int d = 0; d < kDevices; ++d) {
      const DeviceServeReport& dev =
          report.devices[static_cast<std::size_t>(d)];
      EXPECT_EQ(dev.healthy, d != victim) << "device " << d;
      EXPECT_EQ(dev.failures, d == victim ? 1 : 0) << "device " << d;
      // Ledgers drain to zero even on the lane that died mid-run.
      EXPECT_EQ(dev.reserved_bytes, 0) << "device " << d;
      EXPECT_EQ(dev.unreserve_underflows, 0) << "device " << d;
    }
    EXPECT_EQ(server.device_pool().healthy_count(), kDevices - 1);
    EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
  }
}

TEST(ServeFailover, ReviveReturnsTheLaneToService) {
  Fleet fleet(2, /*mem_shift=*/15);
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:nth=3:kill", 1).value());
  fleet.devices[0]->set_fault_injector(&injector);

  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 3;
  config.max_queue = 64;
  SpgemmServer server(fleet.devices, pool, config);

  auto first = SubmitMixedLoad(server, 99, 2, 6);
  server.Drain();
  for (auto& s : first) {
    JobResult r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
  }
  ASSERT_EQ(server.device_pool().healthy_count(), 1);

  // Maintenance revives the lane (clearing its sticky device-lost status
  // and re-arming the injector); new work lands on it again.
  server.device_pool().Revive(0);
  EXPECT_EQ(server.device_pool().healthy_count(), 2);
  EXPECT_TRUE(fleet.devices[0]->health().ok());

  auto second = SubmitMixedLoad(server, 100, 2, 6);
  server.Drain();
  for (auto& s : second) {
    JobResult r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
  }
  EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
  EXPECT_EQ(server.device_pool().unreserve_underflows(), 0);
}

TEST(ServeFailover, TransientAndCorruptionFaultsNeverYieldWrongResults) {
  // Flaky-but-alive lane: probabilistic transfer failures and detected
  // corruption.  A completed job must always be reference-correct — a
  // corrupted run is detected (sticky kDataLoss) and re-planned, never
  // returned.
  Fleet fleet(3, /*mem_shift=*/15);
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("h2d:p=0.05:fail,d2h:p=0.05:corrupt", 11)
          .value());
  fleet.devices[1]->set_fault_injector(&injector);

  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 4;
  config.max_queue = 64;
  SpgemmServer server(fleet.devices, pool, config);

  auto submitted = SubmitMixedLoad(server, 7, 3, 8);
  server.Drain();

  int completed = 0;
  for (auto& s : submitted) {
    JobResult r = s.future.get();
    if (!r.ok()) {
      // Typed failure is acceptable; silence or a wrong C is not.
      EXPECT_NE(r.status.code(), StatusCode::kOk);
      continue;
    }
    ++completed;
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
  }
  EXPECT_GT(completed, 0);

  ServerReport report = server.Report();
  // The flaky lane stayed alive: transient faults re-plan without pulling
  // the device.
  for (const DeviceServeReport& d : report.devices) {
    EXPECT_TRUE(d.healthy) << "device " << d.index;
    EXPECT_EQ(d.reserved_bytes, 0) << "device " << d.index;
    EXPECT_EQ(d.unreserve_underflows, 0) << "device " << d.index;
  }
  EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
}

TEST(ServeFailover, ExplicitGpuJobsFailOverToSurvivingDevices) {
  // Explicit-GPU jobs have no CPU fallback; recovery must come entirely
  // from re-planning onto the surviving lanes.
  Fleet fleet(3, /*mem_shift=*/15);
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:nth=4:kill", 5).value());
  fleet.devices[0]->set_fault_injector(&injector);

  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 4;
  config.max_queue = 64;
  SpgemmServer server(fleet.devices, pool, config);

  SplitMix64 rng(17);
  std::vector<Submitted> submitted;
  for (int j = 0; j < 12; ++j) {
    SpgemmJob job;
    job.a = std::make_shared<const Csr>(
        testutil::RandomRmat(7, 6.0, rng.Next()));
    job.b = job.a;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    Submitted s;
    s.a = job.a;
    s.b = job.b;
    s.future = server.Submit(std::move(job));
    submitted.push_back(std::move(s));
  }
  server.Drain();

  for (auto& s : submitted) {
    JobResult r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
    EXPECT_EQ(r.metrics.executor, core::ExecutionMode::kGpuOutOfCore);
    EXPECT_NE(r.metrics.device_index, 0);  // never "completed" on the dead lane
  }
  ServerReport report = server.Report();
  EXPECT_GT(report.failed_over, 0);
  EXPECT_EQ(report.device_failures, 1);
  EXPECT_FALSE(report.devices[0].healthy);
  EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
  EXPECT_EQ(server.device_pool().unreserve_underflows(), 0);
}

}  // namespace
}  // namespace oocgemm::serve
