#include <gtest/gtest.h>

#include "sparse/analysis.hpp"
#include "sparse/generators.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(EstimateRowNnz, FullSampleIsExact) {
  Csr a = testutil::RandomRmat(8, 6.0, 1);
  RowNnzEstimate est = EstimateRowNnz(a, a, /*sample_fraction=*/1.0);
  std::vector<std::int64_t> exact = SymbolicRowNnz(a, a);
  ASSERT_EQ(est.per_row.size(), exact.size());
  for (std::size_t r = 0; r < exact.size(); ++r) {
    EXPECT_DOUBLE_EQ(est.per_row[r], static_cast<double>(exact[r]));
  }
  EXPECT_EQ(est.sampled_rows, a.rows());
}

TEST(EstimateRowNnz, TotalWithinFactorOfTruth) {
  Csr a = testutil::RandomRmat(10, 8.0, 2);
  RowNnzEstimate est = EstimateRowNnz(a, a, 0.05);
  double est_total = 0.0;
  for (double v : est.per_row) est_total += v;
  const double truth = static_cast<double>(SymbolicNnz(a, a));
  EXPECT_GT(est_total, 0.5 * truth);
  EXPECT_LT(est_total, 2.0 * truth);
}

TEST(EstimateRowNnz, CollisionFactorInUnitRange) {
  Csr a = testutil::RandomRmat(9, 8.0, 3);
  RowNnzEstimate est = EstimateRowNnz(a, a, 0.1);
  EXPECT_GT(est.collision_factor, 0.0);
  EXPECT_LE(est.collision_factor, 1.0);  // nnz <= products always
}

TEST(EstimateRowNnz, DeterministicInSeed) {
  Csr a = testutil::RandomRmat(8, 6.0, 4);
  RowNnzEstimate e1 = EstimateRowNnz(a, a, 0.1, 77);
  RowNnzEstimate e2 = EstimateRowNnz(a, a, 0.1, 77);
  EXPECT_EQ(e1.per_row, e2.per_row);
}

TEST(EstimateRowNnz, StratificationSeparatesDenseAndSparseRegions) {
  // A matrix whose head region collides heavily and whose tail does not:
  // the stratified estimator must predict clearly lower per-product output
  // for the (heavy-product) head rows than a single global factor would.
  VariableBandedParams p;
  p.n = 4096;
  p.segments = {{0.25, 24, 1}, {0.75, 3, 1}};
  Csr a = GenerateVariableBanded(p);
  RowNnzEstimate est = EstimateRowNnz(a, a, 0.10, 5);
  std::vector<std::int64_t> flops = RowFlops(a, a);

  auto region_factor = [&](index_t lo, index_t hi) {
    double nnz = 0.0, products = 0.0;
    for (index_t r = lo; r < hi; ++r) {
      nnz += est.per_row[static_cast<std::size_t>(r)];
      products += static_cast<double>(flops[static_cast<std::size_t>(r)] / 2);
    }
    return nnz / products;
  };
  const double head = region_factor(64, 960);        // interior dense rows
  const double tail = region_factor(1536, 4032);     // interior sparse rows
  // Banded head: ~49 products per output column vs tail ~7: the head's
  // collision factor must be several times smaller.
  EXPECT_LT(head * 3.0, tail);
}

TEST(EstimateRowNnz, EmptyMatrix) {
  Csr a(8, 8);
  RowNnzEstimate est = EstimateRowNnz(a, a, 0.5);
  for (double v : est.per_row) EXPECT_EQ(v, 0.0);
}

TEST(EstimateRowNnz, PredictionsNeverExceedProducts) {
  Csr a = testutil::RandomRmat(9, 8.0, 6);
  RowNnzEstimate est = EstimateRowNnz(a, a, 0.05);
  std::vector<std::int64_t> flops = RowFlops(a, a);
  for (std::size_t r = 0; r < est.per_row.size(); ++r) {
    EXPECT_LE(est.per_row[r],
              static_cast<double>(flops[r] / 2) + 1e-9);
  }
}

}  // namespace
}  // namespace oocgemm::sparse
