#include "kernels/device_csr.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "vgpu/memory_pool.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;

vgpu::DeviceProperties Props() {
  vgpu::DeviceProperties p;
  p.memory_bytes = 8 << 20;
  return p;
}

TEST(DeviceCsr, UploadDownloadRoundTrip) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  vgpu::Stream* s = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  Csr m = testutil::RandomRmat(8, 6.0, 1);
  auto d = UploadCsr(device, host, *s, source, m, "m");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->rows, m.rows());
  EXPECT_EQ(d->cols, m.cols());
  EXPECT_EQ(d->nnz, m.nnz());
  Csr back = DownloadCsr(device, host, d.value());
  EXPECT_TRUE(back == m);
  ReleaseCsr(host, source, d.value());
  EXPECT_EQ(device.used_bytes(), 0);
}

TEST(DeviceCsr, EmptyMatrixUploads) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  vgpu::Stream* s = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  Csr m(16, 16);
  auto d = UploadCsr(device, host, *s, source, m, "empty");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->nnz, 0);
  EXPECT_TRUE(DownloadCsr(device, host, d.value()) == m);
  ReleaseCsr(host, source, d.value());
}

TEST(DeviceCsr, UploadOomPropagates) {
  vgpu::DeviceProperties props;
  props.memory_bytes = 4096;
  vgpu::Device device(props);
  vgpu::HostContext host;
  vgpu::Stream* s = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  Csr m = testutil::RandomCsr(256, 256, 8.0, 2);
  auto d = UploadCsr(device, host, *s, source, m, "big");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kOutOfMemory);
}

TEST(DeviceCsr, StorageBytesMatchesPieces) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  vgpu::Stream* s = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  Csr m = testutil::RandomCsr(64, 64, 4.0, 3);
  auto d = UploadCsr(device, host, *s, source, m, "m");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->StorageBytes(),
            d->row_offsets.size + d->col_ids.size + d->values.size);
  ReleaseCsr(host, source, d.value());
}

TEST(DeviceCsr, BytesBoundIsSufficient) {
  Csr m = testutil::RandomRmat(7, 8.0, 4);
  const std::int64_t bound = DeviceCsrBytes(m);
  vgpu::Device device(Props());
  vgpu::HostContext host;
  vgpu::MemoryPool pool(device, host, bound);
  vgpu::PoolMemorySource source(pool);
  vgpu::Stream* s = device.CreateStream("t");
  EXPECT_TRUE(UploadCsr(device, host, *s, source, m, "m").ok());
}

TEST(DeviceCsr, UploadUsesH2DEngine) {
  vgpu::Device device(Props());
  vgpu::HostContext host;
  vgpu::Stream* s = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  Csr m = testutil::RandomCsr(32, 32, 4.0, 5);
  auto d = UploadCsr(device, host, *s, source, m, "m");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(device.trace().Bytes(vgpu::OpCategory::kH2D),
            static_cast<std::int64_t>(m.row_offsets().size() * 8) +
                m.nnz() * 4 + m.nnz() * 8);
}

}  // namespace
}  // namespace oocgemm::kernels
