// Randomized cross-executor fuzzing: random structures, shapes, device
// sizes and option combinations; every path must agree with the oracle and
// every virtual-time invariant must hold.  Seeds are fixed, so failures
// reproduce.
#include <gtest/gtest.h>

#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "sparse/coo.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

Csr RandomMatrix(Pcg32& rng) {
  switch (rng.Below(4)) {
    case 0: {
      // Uniform rectangular.
      const sparse::index_t rows = 32 + static_cast<sparse::index_t>(rng.Below(300));
      const sparse::index_t cols = 32 + static_cast<sparse::index_t>(rng.Below(300));
      return testutil::RandomCsr(rows, cols, 1.0 + rng.NextDouble() * 8.0,
                                 rng.NextU64());
    }
    case 1:
      // Skewed square graph.
      return testutil::RandomRmat(7 + static_cast<int>(rng.Below(3)),
                                  2.0 + rng.NextDouble() * 10.0, rng.NextU64());
    case 2: {
      // Banded.
      sparse::BandedParams p;
      p.n = 64 + static_cast<sparse::index_t>(rng.Below(400));
      p.half_bandwidth = static_cast<sparse::index_t>(rng.Below(12));
      p.seed = rng.NextU64();
      return sparse::GenerateBanded(p);
    }
    default: {
      // Very sparse with empty rows.
      sparse::Coo coo;
      coo.rows = coo.cols = 64 + static_cast<sparse::index_t>(rng.Below(200));
      const int entries = static_cast<int>(rng.Below(300));
      for (int i = 0; i < entries; ++i) {
        coo.Add(static_cast<sparse::index_t>(rng.Below(
                    static_cast<std::uint32_t>(coo.rows))),
                static_cast<sparse::index_t>(rng.Below(
                    static_cast<std::uint32_t>(coo.cols))),
                rng.Uniform(-1, 1));
      }
      return sparse::CooToCsr(coo);
    }
  }
}

class ExecutorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorFuzz, AllPathsAgreeUnderRandomConfigurations) {
  Pcg32 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  ThreadPool pool(2);

  Csr a = RandomMatrix(rng);
  Csr b = RandomMatrix(rng);
  // Make the shapes compatible: multiply A by a matrix with matching rows.
  if (a.cols() != b.rows()) {
    b = testutil::RandomCsr(a.cols(), 32 + static_cast<sparse::index_t>(rng.Below(300)),
                            1.0 + rng.NextDouble() * 6.0, rng.NextU64());
  }
  Csr expected = kernels::ReferenceSpgemm(a, b);

  ExecutorOptions options;
  options.reorder_chunks = rng.Bernoulli(0.5);
  options.transfer_schedule = rng.Bernoulli(0.5) ? TransferSchedule::kScheduled
                                                 : TransferSchedule::kNaive;
  options.split_fraction = rng.NextDouble();
  options.pinned_host = rng.Bernoulli(0.8);
  options.gpu_ratio = rng.NextDouble();
  options.plan.nnz_safety_factor = 0.5 + rng.NextDouble() * 3.0;

  vgpu::DeviceProperties props =
      vgpu::ScaledV100Properties(12 + static_cast<int>(rng.Below(4)));
  vgpu::Device d_async(props);
  vgpu::Device d_hybrid(props);

  auto async = AsyncOutOfCore(d_async, a, b, options, pool);
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(async->c, expected));
  EXPECT_TRUE(d_async.hazard_violations().empty());
  EXPECT_FALSE(
      d_async.trace().HasIntraCategoryOverlap(vgpu::OpCategory::kD2H));
  EXPECT_FALSE(
      d_async.trace().HasIntraCategoryOverlap(vgpu::OpCategory::kKernel));
  EXPECT_LE(async->stats.device_peak_bytes, d_async.capacity());

  auto hybrid = Hybrid(d_hybrid, a, b, options, pool);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(hybrid->c, expected));
  EXPECT_TRUE(d_hybrid.hazard_violations().empty());
  EXPECT_EQ(hybrid->stats.num_gpu_chunks + hybrid->stats.num_cpu_chunks,
            hybrid->stats.num_chunks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz, ::testing::Range(0, 24));

}  // namespace
}  // namespace oocgemm::core
