// Admission control: demand estimation and the admit/reject rules that
// keep the node from OOMing mid-flight.
#include <gtest/gtest.h>

#include "serve/admission.hpp"
#include "sparse/analysis.hpp"
#include "test_util.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::serve {
namespace {

TEST(JobDemand, EstimatesTrackTheRealProduct) {
  sparse::Csr a = testutil::RandomRmat(8, 8.0, 7);
  core::ExecutorOptions exec;
  JobDemand d = EstimateJobDemand(a, a, /*device_capacity=*/1 << 20, exec);

  EXPECT_EQ(d.flops, sparse::TotalFlops(a, a));
  EXPECT_EQ(d.bytes_a, a.StorageBytes());
  EXPECT_GT(d.est_bytes_out, 0);
  // The sampled estimate should land within 2x of the exact output size.
  const double exact = static_cast<double>(sparse::SymbolicNnz(a, a));
  EXPECT_GT(d.est_nnz_out, 0.5 * exact);
  EXPECT_LT(d.est_nnz_out, 2.0 * exact);

  EXPECT_TRUE(d.gpu_feasible);
  EXPECT_GE(d.planned_chunks, 1);
  EXPECT_GT(d.planned_device_bytes, 0);
}

TEST(JobDemand, HopelessDeviceIsInfeasible) {
  sparse::Csr a = testutil::RandomRmat(8, 8.0, 7);
  core::ExecutorOptions exec;
  JobDemand d = EstimateJobDemand(a, a, /*device_capacity=*/1 << 10, exec);
  EXPECT_FALSE(d.gpu_feasible);
}

TEST(Admission, GpuOnlyModeRejectedWhenInfeasible) {
  JobDemand d;
  d.gpu_feasible = false;
  AdmissionController ctrl(AdmissionLimits{});
  Status st = ctrl.Admit(d, core::ExecutionMode::kHybrid);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // kAuto can fall back to the CPU: admitted.
  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
}

TEST(Admission, BudgetLedgerAdmitsReleasesRejects) {
  AdmissionLimits limits;
  limits.host_bytes_budget = 1000;
  AdmissionController ctrl(limits);

  JobDemand d;
  d.bytes_a = 300;
  d.bytes_b = 200;
  d.est_bytes_out = 100;  // host_bytes() == 600

  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
  EXPECT_EQ(ctrl.outstanding_bytes(), 600);
  Status over = ctrl.Admit(d, core::ExecutionMode::kAuto);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);

  ctrl.Release(d);
  EXPECT_EQ(ctrl.outstanding_bytes(), 0);
  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
}

// Regression: demand formed from huge synthetic shapes (a 10Mx10M dense-ish
// output estimate is ~e18-scale bytes) used to wrap host_bytes() negative, which
// then passed every "<= budget" check and admitted a job no node can hold.
// Saturating sums clamp at INT64_MAX and Admit rejects saturated demand
// outright with RESOURCE_EXHAUSTED.
TEST(Admission, OverflowingDemandIsRejectedNotWrapped) {
  JobDemand d;
  d.bytes_a = 3'500'000'000'000'000'000;  // ~3.5e18: three of these overflow
  d.bytes_b = 3'500'000'000'000'000'000;
  d.est_bytes_out = 3'500'000'000'000'000'000;
  EXPECT_EQ(d.host_bytes(), common::kInt64Max);  // saturated, not negative
  EXPECT_TRUE(d.overflowed());

  AdmissionLimits unlimited;
  unlimited.host_bytes_budget = common::kInt64Max;
  AdmissionController ctrl(unlimited);
  Status st = ctrl.Admit(d, core::ExecutionMode::kAuto);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctrl.outstanding_bytes(), 0);  // nothing charged to the ledger
}

TEST(Admission, BoundaryDemandJustBelowTheRailStillAdmits) {
  // Two terms that sum to exactly the rail minus one: legal, admitted
  // against an unlimited budget, and the ledger charges the true sum.
  JobDemand d;
  d.bytes_a = common::kInt64Max / 2;
  d.bytes_b = common::kInt64Max / 2;
  d.est_bytes_out = 0;
  EXPECT_FALSE(d.overflowed());

  AdmissionLimits unlimited;
  unlimited.host_bytes_budget = common::kInt64Max;
  AdmissionController ctrl(unlimited);
  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
  EXPECT_EQ(ctrl.outstanding_bytes(), common::kInt64Max - 1);
}

TEST(JobDemandSampled, LargeJobIsPricedByTheEstimator) {
  sparse::Csr a = testutil::RandomRmat(11, 8.0, 7);
  core::ExecutorOptions exec;
  estimate::EstimatorOptions opts;
  JobDemand d =
      EstimateJobDemandSampled(a, a, /*device_capacity=*/4 << 20, exec, opts);
  EXPECT_TRUE(d.estimated);
  EXPECT_FALSE(d.estimator_fallback);
  ASSERT_NE(d.estimate, nullptr);
  EXPECT_GT(d.est_rel_stderr, 0.0);
  EXPECT_GT(d.analysis_seconds, 0.0);

  // Structure-only pricing still lands near the exact quantities.
  const double exact_nnz = static_cast<double>(sparse::SymbolicNnz(a, a));
  EXPECT_GT(d.est_nnz_out, 0.5 * exact_nnz);
  EXPECT_LT(d.est_nnz_out, 2.0 * exact_nnz);
  const double exact_flops = static_cast<double>(sparse::TotalFlops(a, a));
  EXPECT_GT(static_cast<double>(d.flops), 0.5 * exact_flops);
  EXPECT_LT(static_cast<double>(d.flops), 2.0 * exact_flops);
  EXPECT_TRUE(d.gpu_feasible);
  EXPECT_GE(d.planned_chunks, 1);
}

TEST(JobDemandSampled, UnreliableSampleFallsBackToExact) {
  // 64 rows can never reach the estimator's minimum sample: the sampled
  // path must price the job exactly and say it fell back.
  sparse::Csr a = testutil::RandomCsr(64, 64, 4.0, 3);
  core::ExecutorOptions exec;
  JobDemand d = EstimateJobDemandSampled(a, a, 1 << 20, exec,
                                         estimate::EstimatorOptions{});
  EXPECT_FALSE(d.estimated);
  EXPECT_TRUE(d.estimator_fallback);
  EXPECT_EQ(d.flops, sparse::TotalFlops(a, a));  // exact pricing
  EXPECT_EQ(d.estimate, nullptr);
}

TEST(DeviceHeadroom, SnapshotTracksAllocations) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  auto before = device.Headroom();
  EXPECT_EQ(before.used, 0);
  EXPECT_EQ(before.free, before.capacity);
  EXPECT_EQ(before.largest_block, before.capacity);

  vgpu::HostContext host;
  auto ptr = device.Malloc(host, 4096, "test");
  ASSERT_TRUE(ptr.ok());
  auto during = device.Headroom();
  EXPECT_GE(during.used, 4096);
  EXPECT_LT(during.largest_block, before.largest_block);
  device.Free(host, ptr.value());
  EXPECT_EQ(device.Headroom().used, 0);
}

}  // namespace
}  // namespace oocgemm::serve
