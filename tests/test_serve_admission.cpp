// Admission control: demand estimation and the admit/reject rules that
// keep the node from OOMing mid-flight.
#include <gtest/gtest.h>

#include "serve/admission.hpp"
#include "sparse/analysis.hpp"
#include "test_util.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::serve {
namespace {

TEST(JobDemand, EstimatesTrackTheRealProduct) {
  sparse::Csr a = testutil::RandomRmat(8, 8.0, 7);
  core::ExecutorOptions exec;
  JobDemand d = EstimateJobDemand(a, a, /*device_capacity=*/1 << 20, exec);

  EXPECT_EQ(d.flops, sparse::TotalFlops(a, a));
  EXPECT_EQ(d.bytes_a, a.StorageBytes());
  EXPECT_GT(d.est_bytes_out, 0);
  // The sampled estimate should land within 2x of the exact output size.
  const double exact = static_cast<double>(sparse::SymbolicNnz(a, a));
  EXPECT_GT(d.est_nnz_out, 0.5 * exact);
  EXPECT_LT(d.est_nnz_out, 2.0 * exact);

  EXPECT_TRUE(d.gpu_feasible);
  EXPECT_GE(d.planned_chunks, 1);
  EXPECT_GT(d.planned_device_bytes, 0);
}

TEST(JobDemand, HopelessDeviceIsInfeasible) {
  sparse::Csr a = testutil::RandomRmat(8, 8.0, 7);
  core::ExecutorOptions exec;
  JobDemand d = EstimateJobDemand(a, a, /*device_capacity=*/1 << 10, exec);
  EXPECT_FALSE(d.gpu_feasible);
}

TEST(Admission, GpuOnlyModeRejectedWhenInfeasible) {
  JobDemand d;
  d.gpu_feasible = false;
  AdmissionController ctrl(AdmissionLimits{});
  Status st = ctrl.Admit(d, core::ExecutionMode::kHybrid);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // kAuto can fall back to the CPU: admitted.
  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
}

TEST(Admission, BudgetLedgerAdmitsReleasesRejects) {
  AdmissionLimits limits;
  limits.host_bytes_budget = 1000;
  AdmissionController ctrl(limits);

  JobDemand d;
  d.bytes_a = 300;
  d.bytes_b = 200;
  d.est_bytes_out = 100;  // host_bytes() == 600

  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
  EXPECT_EQ(ctrl.outstanding_bytes(), 600);
  Status over = ctrl.Admit(d, core::ExecutionMode::kAuto);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);

  ctrl.Release(d);
  EXPECT_EQ(ctrl.outstanding_bytes(), 0);
  EXPECT_TRUE(ctrl.Admit(d, core::ExecutionMode::kAuto).ok());
}

TEST(DeviceHeadroom, SnapshotTracksAllocations) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  auto before = device.Headroom();
  EXPECT_EQ(before.used, 0);
  EXPECT_EQ(before.free, before.capacity);
  EXPECT_EQ(before.largest_block, before.capacity);

  vgpu::HostContext host;
  auto ptr = device.Malloc(host, 4096, "test");
  ASSERT_TRUE(ptr.ok());
  auto during = device.Headroom();
  EXPECT_GE(during.used, 4096);
  EXPECT_LT(during.largest_block, before.largest_block);
  device.Free(host, ptr.value());
  EXPECT_EQ(device.Headroom().used, 0);
}

}  // namespace
}  // namespace oocgemm::serve
