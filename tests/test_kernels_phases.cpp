// Direct tests of the symbolic/numeric phase kernels on hand-built data
// (the executor tests cover them end-to-end; these pin the low-level
// contracts: row subsets, per-row offsets, accumulator selection).
#include "kernels/spgemm_phases.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

struct PhaseFixture {
  Csr a;
  Csr b;
  Csr expected;
  std::vector<std::int64_t> row_flops;

  explicit PhaseFixture(int seed) {
    a = testutil::RandomCsr(40, 30, 4.0, seed);
    b = testutil::RandomCsr(30, 25, 4.0, seed + 1);
    expected = ReferenceSpgemm(a, b);
    row_flops.assign(static_cast<std::size_t>(a.rows()), 0);
    for (index_t r = 0; r < a.rows(); ++r) {
      std::int64_t f = 0;
      for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
        f += b.row_nnz(a.col_ids()[static_cast<std::size_t>(k)]);
      }
      row_flops[static_cast<std::size_t>(r)] = 2 * f;
    }
  }
};

std::vector<index_t> AllRows(index_t n) {
  std::vector<index_t> rows(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) rows[static_cast<std::size_t>(i)] = i;
  return rows;
}

TEST(SymbolicRows, CountsMatchReferenceForEveryAccumulator) {
  PhaseFixture f(1);
  for (AccumulatorKind kind :
       {AccumulatorKind::kAuto, AccumulatorKind::kHash,
        AccumulatorKind::kDense}) {
    AccumulatorScratch scratch;
    std::vector<std::int64_t> nnz(static_cast<std::size_t>(f.a.rows()), -1);
    SymbolicRows(f.a.row_offsets().data(), f.a.col_ids().data(),
                 f.b.row_offsets().data(), f.b.col_ids().data(), f.b.cols(),
                 AllRows(f.a.rows()), f.row_flops.data(), kind, scratch,
                 nnz.data());
    for (index_t r = 0; r < f.a.rows(); ++r) {
      EXPECT_EQ(nnz[static_cast<std::size_t>(r)], f.expected.row_nnz(r))
          << "row " << r << " kind " << static_cast<int>(kind);
    }
  }
}

TEST(SymbolicRows, OnlyTouchesListedRows) {
  PhaseFixture f(2);
  AccumulatorScratch scratch;
  std::vector<std::int64_t> nnz(static_cast<std::size_t>(f.a.rows()), -99);
  std::vector<index_t> subset = {3, 7, 11};
  SymbolicRows(f.a.row_offsets().data(), f.a.col_ids().data(),
               f.b.row_offsets().data(), f.b.col_ids().data(), f.b.cols(),
               subset, f.row_flops.data(), AccumulatorKind::kAuto, scratch,
               nnz.data());
  for (index_t r = 0; r < f.a.rows(); ++r) {
    const bool listed = r == 3 || r == 7 || r == 11;
    if (listed) {
      EXPECT_EQ(nnz[static_cast<std::size_t>(r)], f.expected.row_nnz(r));
    } else {
      EXPECT_EQ(nnz[static_cast<std::size_t>(r)], -99);  // untouched
    }
  }
}

TEST(NumericRows, FillsAtGivenOffsetsSorted) {
  PhaseFixture f(3);
  AccumulatorScratch scratch;
  std::vector<index_t> cols(static_cast<std::size_t>(f.expected.nnz()), -1);
  std::vector<value_t> vals(static_cast<std::size_t>(f.expected.nnz()), 0.0);
  NumericRows(f.a.row_offsets().data(), f.a.col_ids().data(),
              f.a.values().data(), f.b.row_offsets().data(),
              f.b.col_ids().data(), f.b.values().data(), f.b.cols(),
              AllRows(f.a.rows()), f.row_flops.data(), AccumulatorKind::kAuto,
              scratch, f.expected.row_offsets().data(), cols.data(),
              vals.data());
  EXPECT_EQ(cols, f.expected.col_ids());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(vals[i], f.expected.values()[i], 1e-10);
  }
}

TEST(NumericRows, HashAndDenseProduceIdenticalStructure) {
  PhaseFixture f(4);
  auto run = [&](AccumulatorKind kind) {
    AccumulatorScratch scratch;
    std::vector<index_t> cols(static_cast<std::size_t>(f.expected.nnz()));
    std::vector<value_t> vals(static_cast<std::size_t>(f.expected.nnz()));
    NumericRows(f.a.row_offsets().data(), f.a.col_ids().data(),
                f.a.values().data(), f.b.row_offsets().data(),
                f.b.col_ids().data(), f.b.values().data(), f.b.cols(),
                AllRows(f.a.rows()), f.row_flops.data(), kind, scratch,
                f.expected.row_offsets().data(), cols.data(), vals.data());
    return std::make_pair(cols, vals);
  };
  auto [hc, hv] = run(AccumulatorKind::kHash);
  auto [dc, dv] = run(AccumulatorKind::kDense);
  EXPECT_EQ(hc, dc);
  for (std::size_t i = 0; i < hv.size(); ++i) EXPECT_NEAR(hv[i], dv[i], 1e-10);
}

TEST(SparseAdd, MergesSortedRows) {
  Csr a(2, 4, {0, 2, 3}, {0, 2, 1}, {1.0, 2.0, 3.0});
  Csr b(2, 4, {0, 2, 4}, {2, 3, 0, 1}, {10.0, 20.0, 30.0, 40.0});
  Csr c = sparse::Add(a, b);
  EXPECT_TRUE(c.Validate().ok());
  EXPECT_EQ(c.col_ids(), (std::vector<index_t>{0, 2, 3, 0, 1}));
  EXPECT_EQ(c.values(), (std::vector<value_t>{1.0, 12.0, 20.0, 30.0, 43.0}));
}

TEST(SparseAdd, ScalarsAndSubtraction) {
  Csr a = testutil::RandomCsr(20, 20, 3.0, 5);
  Csr zero = sparse::DropZeros(sparse::Add(a, a, 1.0, -1.0));
  EXPECT_EQ(zero.nnz(), 0);
  Csr twice = sparse::Add(a, a, 1.5, 0.5);
  for (std::size_t i = 0; i < twice.values().size(); ++i) {
    EXPECT_NEAR(twice.values()[i], 2.0 * a.values()[i], 1e-12);
  }
}

TEST(SparseAdd, DistributesOverMultiplication) {
  // (A + B) C == AC + BC.
  Csr a = testutil::RandomCsr(15, 12, 3.0, 6);
  Csr b = testutil::RandomCsr(15, 12, 3.0, 7);
  Csr c = testutil::RandomCsr(12, 18, 3.0, 8);
  Csr lhs = ReferenceSpgemm(sparse::Add(a, b), c);
  Csr rhs = sparse::Add(ReferenceSpgemm(a, c), ReferenceSpgemm(b, c));
  // Patterns can differ by explicit zeros; compare after pruning.
  EXPECT_TRUE(testutil::CsrNear(sparse::DropZeros(lhs, 1e-12),
                                sparse::DropZeros(rhs, 1e-12), 1e-9));
}

}  // namespace
}  // namespace oocgemm::kernels
