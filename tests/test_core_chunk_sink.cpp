#include "core/chunk_sink.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

class DiskSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("oocgemm_sink_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DiskSinkTest, PayloadRoundTrip) {
  ChunkPayload p;
  p.row_panel = 2;
  p.col_panel = 3;
  p.row_offsets = {0, 2, 2, 5};
  p.col_ids = {1, 4, 0, 2, 3};
  p.values = {1.0, 2.0, 3.0, 4.0, 5.0};

  DiskChunkSink sink(dir_);
  ChunkPayload copy = p;
  ASSERT_TRUE(sink.Consume(std::move(copy)).ok());
  EXPECT_EQ(sink.chunks_written(), 1);
  EXPECT_GT(sink.bytes_written(), 0);

  auto back = DiskChunkSink::Load(dir_, 2, 3);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->row_offsets, p.row_offsets);
  EXPECT_EQ(back->col_ids, p.col_ids);
  EXPECT_EQ(back->values, p.values);
}

TEST_F(DiskSinkTest, MissingChunkIsNotFound) {
  auto missing = DiskChunkSink::Load(dir_, 0, 0);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(DiskSinkTest, StreamedRunAssemblesFromDisk) {
  Csr a = testutil::RandomRmat(9, 8.0, 1);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  DiskChunkSink sink(dir_);
  auto r = AsyncOutOfCoreStreamed(device, a, a, ExecutorOptions{}, pool, sink);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(sink.Finalize(r->row_bounds, r->col_bounds).ok());
  EXPECT_GT(sink.chunks_written(), 1);

  auto c = DiskChunkSink::AssembleFromDisk(dir_);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(c.value(), kernels::ReferenceSpgemm(a, a)));
}

TEST_F(DiskSinkTest, StreamedStatsMatchInMemoryRun) {
  Csr a = testutil::RandomRmat(9, 7.0, 2);
  ThreadPool pool(2);
  vgpu::Device d1(vgpu::ScaledV100Properties(14));
  vgpu::Device d2(vgpu::ScaledV100Properties(14));
  DiskChunkSink sink(dir_);
  auto streamed =
      AsyncOutOfCoreStreamed(d1, a, a, ExecutorOptions{}, pool, sink);
  auto in_memory = AsyncOutOfCore(d2, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(streamed.ok() && in_memory.ok());
  // The sink only changes where payloads land, not the virtual schedule.
  EXPECT_DOUBLE_EQ(streamed->stats.total_seconds,
                   in_memory->stats.total_seconds);
  EXPECT_EQ(streamed->stats.nnz_out, in_memory->stats.nnz_out);
}

TEST_F(DiskSinkTest, AssembleWithoutManifestFails) {
  EXPECT_FALSE(DiskChunkSink::AssembleFromDisk(dir_).ok());
}

TEST_F(DiskSinkTest, UnwritableDirectoryFails) {
  DiskChunkSink sink("/nonexistent-dir-for-oocgemm");
  ChunkPayload p;
  p.row_offsets = {0};
  EXPECT_FALSE(sink.Consume(std::move(p)).ok());
}

TEST(MemoryChunkSink, CollectsAndAssembles) {
  Csr a = testutil::RandomRmat(8, 6.0, 3);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  MemoryChunkSink sink;
  auto r = AsyncOutOfCoreStreamed(device, a, a, ExecutorOptions{}, pool, sink);
  ASSERT_TRUE(r.ok());
  Csr c = sink.Assemble(r->row_bounds, r->col_bounds);
  EXPECT_TRUE(testutil::CsrNear(c, kernels::ReferenceSpgemm(a, a)));
}

}  // namespace
}  // namespace oocgemm::core
