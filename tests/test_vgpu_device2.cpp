// Second batch of virtual-device tests: cost-after-execution launches,
// timeline reset semantics, event chains and trace accounting details.
#include <gtest/gtest.h>

#include <vector>

#include "vgpu/device.hpp"
#include "vgpu/memory_pool.hpp"

namespace oocgemm::vgpu {
namespace {

DeviceProperties SmallProps() {
  DeviceProperties p;
  p.memory_bytes = 1 << 20;
  return p;
}

TEST(LaunchKernelCosted, BodyRunsBeforeCostIsBooked) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  int computed = 0;
  d.LaunchKernelCosted(host, *s, "k", {}, [&]() -> double {
    computed = 7;
    return 2e-3;  // cost decided by what the body computed
  });
  EXPECT_EQ(computed, 7);
  ASSERT_EQ(d.trace().events().size(), 1u);
  EXPECT_NEAR(d.trace().events()[0].interval.duration(), 2e-3, 1e-12);
}

TEST(LaunchKernelCosted, ChainsOnStreamLikeRegularLaunch) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "first", 1e-3, {}, [] {});
  d.LaunchKernelCosted(host, *s, "second", {}, [] { return 1e-3; });
  const auto& ev = d.trace().events();
  EXPECT_GE(ev[1].interval.start, ev[0].interval.end);
}

TEST(LaunchKernelCostedDeath, NegativeCostAborts) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  EXPECT_DEATH(
      d.LaunchKernelCosted(host, *s, "bad", {}, [] { return -1.0; }),
      "OOC_CHECK");
}

TEST(Device, EventChainAcrossThreeStreams) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  Stream* s3 = d.CreateStream("c");
  d.LaunchKernel(host, *s1, "k1", 3e-3, {}, [] {});
  d.StreamWaitEvent(*s2, d.RecordEvent(*s1));
  d.LaunchKernel(host, *s2, "k2", 2e-3, {}, [] {});
  d.StreamWaitEvent(*s3, d.RecordEvent(*s2));
  d.LaunchKernel(host, *s3, "k3", 1e-3, {}, [] {});
  const auto& ev = d.trace().events();
  EXPECT_GE(ev[1].interval.start, ev[0].interval.end);
  EXPECT_GE(ev[2].interval.start, ev[1].interval.end);
  // Total = the three kernel durations plus a few host launch overheads.
  EXPECT_GE(ev[2].interval.end, 6e-3);
  EXPECT_LE(ev[2].interval.end,
            6e-3 + 5 * d.properties().kernel_launch_overhead);
}

TEST(Device, ResetTimelineKeepsAllocations) {
  Device d(SmallProps());
  HostContext host;
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  const auto used = d.used_bytes();
  d.ResetTimeline();
  EXPECT_EQ(d.used_bytes(), used);       // memory survives
  EXPECT_EQ(d.QuiesceTime(), 0.0);       // time does not
  // The arena contents survive too.
  d.As<int>(p.value())[0] = 123;
  d.ResetTimeline();
  EXPECT_EQ(d.As<int>(p.value())[0], 123);
}

TEST(Device, ResetTimelineClearsHazardHistory) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(4096);
  d.LaunchKernel(host, *s1, "w", 5e-3, {{p->offset, 4096, true}}, [] {});
  d.MemcpyD2HAsync(host, *s2, buf.data(), p.value(), 4096, "racy");
  ASSERT_FALSE(d.hazard_violations().empty());
  d.ResetTimeline();
  EXPECT_TRUE(d.hazard_violations().empty());
}

TEST(Device, ZeroByteTransferStillPaysLatency) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  auto p = d.Malloc(host, 256);
  ASSERT_TRUE(p.ok());
  d.MemcpyH2DAsync(host, *s, p.value(), nullptr, 0, "empty");
  ASSERT_EQ(d.trace().events().size(), 2u);  // alloc + h2d
  EXPECT_NEAR(d.trace().events()[1].interval.duration(),
              d.properties().transfer_latency, 1e-12);
}

TEST(Device, HazardCheckingCanBeDisabled) {
  Device d(SmallProps());
  d.set_hazard_checking(false);
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(4096);
  d.LaunchKernel(host, *s1, "w", 5e-3, {{p->offset, 4096, true}}, [] {});
  d.MemcpyD2HAsync(host, *s2, buf.data(), p.value(), 4096, "racy");
  EXPECT_TRUE(d.hazard_violations().empty());  // not tracked
}

TEST(Device, KernelLaunchOverheadAccumulatesOnHost) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  for (int i = 0; i < 10; ++i) {
    d.LaunchKernel(host, *s, "k", 1e-6, {}, [] {});
  }
  EXPECT_NEAR(host.now, 10 * d.properties().kernel_launch_overhead, 1e-12);
}

TEST(MemoryPool, SurvivesTimelineReset) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 1 << 16);
  auto a = pool.Allocate(1000);
  ASSERT_TRUE(a.ok());
  d.ResetTimeline();
  auto b = pool.Allocate(1000);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->offset, b->offset);
}

}  // namespace
}  // namespace oocgemm::vgpu
