#include "core/multi_gpu.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

struct Fleet {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;

  explicit Fleet(int n, int mem_shift = 14) {
    for (int i = 0; i < n; ++i) {
      storage.push_back(std::make_unique<vgpu::Device>(
          vgpu::ScaledV100Properties(mem_shift)));
      devices.push_back(storage.back().get());
    }
  }
};

TEST(MultiGpuHybrid, SingleDeviceMatchesReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 1);
  Fleet fleet(1);
  ThreadPool pool(2);
  auto r = MultiGpuHybrid(fleet.devices, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(MultiGpuHybrid, TwoDevicesMatchReference) {
  Csr a = testutil::RandomRmat(9, 8.0, 2);
  Fleet fleet(2);
  ThreadPool pool(2);
  auto r = MultiGpuHybrid(fleet.devices, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_EQ(r->stats.gpu_seconds.size(), 2u);
  for (vgpu::Device* d : fleet.devices) {
    EXPECT_TRUE(d->hazard_violations().empty());
  }
}

TEST(MultiGpuHybrid, MoreDevicesNeverSlower) {
  Csr a = testutil::RandomRmat(10, 8.0, 3);
  ThreadPool pool(2);
  Fleet f1(1), f2(2), f4(4);
  auto r1 = MultiGpuHybrid(f1.devices, a, a, ExecutorOptions{}, pool);
  auto r2 = MultiGpuHybrid(f2.devices, a, a, ExecutorOptions{}, pool);
  auto r4 = MultiGpuHybrid(f4.devices, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r1.ok() && r2.ok() && r4.ok());
  EXPECT_LE(r2->stats.combined.total_seconds,
            r1->stats.combined.total_seconds * 1.02);
  EXPECT_LE(r4->stats.combined.total_seconds,
            r2->stats.combined.total_seconds * 1.05);
}

TEST(MultiGpuHybrid, GpuShareGrowsWithDeviceCount) {
  Csr a = testutil::RandomRmat(10, 8.0, 4);
  ThreadPool pool(2);
  Fleet f1(1), f4(4);
  auto r1 = MultiGpuHybrid(f1.devices, a, a, ExecutorOptions{}, pool);
  auto r4 = MultiGpuHybrid(f4.devices, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r1.ok() && r4.ok());
  // The generalized ratio D*S/(D*S+1) sends more chunks to the GPUs as D
  // grows.
  EXPECT_GE(r4->stats.combined.num_gpu_chunks,
            r1->stats.combined.num_gpu_chunks);
  EXPECT_LE(r4->stats.combined.num_cpu_chunks,
            r1->stats.combined.num_cpu_chunks);
}

TEST(MultiGpuHybrid, ChunkTotalsConserved) {
  Csr a = testutil::RandomRmat(9, 6.0, 5);
  Fleet fleet(3);
  ThreadPool pool(2);
  auto r = MultiGpuHybrid(fleet.devices, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.combined.num_gpu_chunks + r->stats.combined.num_cpu_chunks,
            r->stats.combined.num_chunks);
  EXPECT_EQ(r->stats.combined.nnz_out, r->c.nnz());
}

TEST(MultiGpuHybrid, SingleDeviceComparableToHybrid) {
  Csr a = testutil::RandomRmat(9, 8.0, 6);
  ThreadPool pool(2);
  Fleet fleet(1);
  vgpu::Device single(vgpu::ScaledV100Properties(14));
  auto multi = MultiGpuHybrid(fleet.devices, a, a, ExecutorOptions{}, pool);
  auto hybrid = Hybrid(single, a, a, ExecutorOptions{}, pool);
  ASSERT_TRUE(multi.ok() && hybrid.ok());
  // D = 1 reduces the generalized rule to Algorithm 4 exactly.
  EXPECT_NEAR(multi->stats.combined.total_seconds,
              hybrid->stats.total_seconds,
              hybrid->stats.total_seconds * 0.01);
}

// Property: for random matrices and every pool size D in {1..4}, the
// multi-GPU result is numerically identical to the single-GPU hybrid (the
// same chunk grid is computed, only dealt differently), the per-worker
// stats have exactly D entries, and the round-robin deal keeps per-device
// chunk counts within one of each other.
TEST(MultiGpuHybrid, PropertyDealAndOutputInvariants) {
  ThreadPool pool(2);
  for (std::uint64_t seed = 20; seed < 23; ++seed) {
    Csr a = testutil::RandomRmat(9, 6.0, seed);
    vgpu::Device single(vgpu::ScaledV100Properties(14));
    auto hybrid = Hybrid(single, a, a, ExecutorOptions{}, pool);
    ASSERT_TRUE(hybrid.ok()) << hybrid.status().ToString();
    for (int d = 1; d <= 4; ++d) {
      Fleet fleet(d);
      auto r = MultiGpuHybrid(fleet.devices, a, a, ExecutorOptions{}, pool);
      ASSERT_TRUE(r.ok()) << "seed " << seed << " D=" << d << ": "
                          << r.status().ToString();
      EXPECT_TRUE(testutil::CsrNear(r->c, hybrid->c))
          << "seed " << seed << " D=" << d;
      EXPECT_EQ(r->stats.gpu_seconds.size(), static_cast<std::size_t>(d));
      ASSERT_EQ(r->stats.per_device.size(), static_cast<std::size_t>(d));
      int min_chunks = r->stats.per_device.front().num_gpu_chunks;
      int max_chunks = min_chunks;
      int total = 0;
      for (const RunStats& per : r->stats.per_device) {
        min_chunks = std::min(min_chunks, per.num_gpu_chunks);
        max_chunks = std::max(max_chunks, per.num_gpu_chunks);
        total += per.num_gpu_chunks;
      }
      EXPECT_LE(max_chunks - min_chunks, 1)
          << "round-robin deal unbalanced at seed " << seed << " D=" << d;
      EXPECT_EQ(total, r->stats.combined.num_gpu_chunks);
    }
  }
}

TEST(MultiGpuHybrid, EmptyDeviceListRejected) {
  Csr a = testutil::RandomCsr(16, 16, 2.0, 7);
  ThreadPool pool(2);
  auto r = MultiGpuHybrid({}, a, a, ExecutorOptions{}, pool);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace oocgemm::core
