// Estimate-mode planning end to end: PlanPanels under the sampling
// estimator, EstimateChunks' dense-bound invariant (the one the OOM-retry
// loop's termination leans on), every executor producing the exact product
// with exact corrected flop stats, batched estimate mode, and the
// saturating-arithmetic helpers admission overflows are built on.
//
// Suites are named Estimate* so the CI TSan job's gtest filter picks them up.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/saturating.hpp"
#include "core/batched.hpp"
#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "partition/chunk.hpp"
#include "partition/panel_plan.hpp"
#include "partition/panels.hpp"
#include "sparse/analysis.hpp"
#include "test_util.hpp"

namespace oocgemm {
namespace {

using sparse::Csr;

core::ExecutorOptions EstimateOptions(std::uint64_t seed = 7) {
  core::ExecutorOptions options;
  options.plan.use_sampling_estimator = true;
  options.plan.estimator_seed = seed;
  return options;
}

TEST(EstimateSaturating, AddMulCastClampAtTheRails) {
  const std::int64_t big = common::kInt64Max - 10;
  EXPECT_EQ(common::SaturatingAdd(big, 100), common::kInt64Max);
  EXPECT_EQ(common::SaturatingAdd(-big, -100),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(common::SaturatingAdd(40, 2), 42);

  EXPECT_EQ(common::SaturatingMul(big, 3), common::kInt64Max);
  EXPECT_EQ(common::SaturatingMul(big, -3),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(common::SaturatingMul(6, 7), 42);

  EXPECT_EQ(common::SaturatingCast(1e300), common::kInt64Max);
  EXPECT_EQ(common::SaturatingCast(-1e300),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(common::SaturatingCast(std::nan("")), 0);
  EXPECT_EQ(common::SaturatingCast(42.9), 42);

  EXPECT_TRUE(common::IsSaturated(common::kInt64Max));
  EXPECT_TRUE(common::IsSaturated(std::numeric_limits<std::int64_t>::min()));
  EXPECT_FALSE(common::IsSaturated(42));
}

TEST(EstimatePlanning, PlanMarksEstimatedAndCarriesRowEstimates) {
  const Csr a = testutil::RandomRmat(10, 8.0, 3);
  auto plan = partition::PlanPanels(a, a, /*device_capacity=*/1 << 20,
                                    EstimateOptions().plan);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->estimated);
  EXPECT_EQ(plan->row_nnz_estimate.size(),
            static_cast<std::size_t>(a.rows()));
  EXPECT_EQ(plan->row_products_estimate.size(),
            static_cast<std::size_t>(a.rows()));
  EXPECT_GE(plan->num_row_panels, 1);
  EXPECT_GT(plan->pool_bytes, 0);
}

TEST(EstimatePlanning, PlanReusesTheAdmissionHint) {
  const Csr a = testutil::RandomRmat(10, 8.0, 3);
  partition::PlanOptions opts = EstimateOptions().plan;
  auto hint = std::make_shared<estimate::ProductEstimate>(
      estimate::EstimateProduct(a, a, estimate::EstimatorOptions{}));
  opts.estimate_hint = hint;
  auto plan = partition::PlanPanels(a, a, 1 << 20, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->estimated);
  // The plan's per-row vectors are the hint's, not a recomputation.
  EXPECT_EQ(plan->row_nnz_estimate, hint->row_nnz);
  EXPECT_EQ(plan->row_products_estimate, hint->row_products);
}

TEST(EstimatePlanning, EstimatedChunksKeepTheDenseUpperBound) {
  const Csr a = testutil::RandomRmat(9, 8.0, 4);
  auto plan =
      partition::PlanPanels(a, a, 1 << 20, EstimateOptions().plan);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->estimated);

  const std::vector<std::int64_t> col_nnz =
      partition::ColPanelNnz(a, plan->col_bounds);
  const auto chunks = partition::EstimateChunks(
      plan->row_bounds, plan->col_bounds, plan->row_nnz_estimate,
      plan->row_products_estimate, col_nnz, a.nnz());
  ASSERT_EQ(chunks.size(),
            static_cast<std::size_t>(plan->num_row_panels) *
                static_cast<std::size_t>(plan->num_col_panels));

  // The exact analysis of the same boundaries: every exact chunk nnz must
  // sit under the estimated descriptor's dense bound — that bound being
  // *true* is what keeps the executors' OOM-retry doubling terminating.
  const auto exact = partition::AnalyzeChunks(a, plan->row_bounds, a,
                                              plan->col_bounds);
  ASSERT_EQ(exact.size(), chunks.size());
  double est_flops = 0.0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto& c = chunks[i];
    const std::int64_t dense =
        static_cast<std::int64_t>(
            plan->row_bounds.panel_width(c.row_panel)) *
        plan->col_bounds.panel_width(c.col_panel);
    EXPECT_EQ(c.upper_bound_nnz, dense);
    EXPECT_LE(c.estimated_nnz, c.upper_bound_nnz);
    EXPECT_LE(exact[i].upper_bound_nnz, dense)
        << "exact worst-case exceeds the dense bound";
    est_flops += static_cast<double>(c.flops);
  }
  // The chunk grid's flop estimate must agree with the row estimate it was
  // spread from (the spread is exact up to rounding).
  double row_flops = 0.0;
  for (double p : plan->row_products_estimate) row_flops += 2.0 * p;
  EXPECT_NEAR(est_flops, row_flops,
              1.0 + 1e-6 * row_flops +
                  static_cast<double>(chunks.size()));
}

TEST(EstimateExecution, AsyncMatchesReferenceWithExactFlops) {
  const Csr a = testutil::RandomRmat(9, 8.0, 1);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  auto r = core::AsyncOutOfCore(device, a, a, EstimateOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  // Lazy correction: the run reports exact flops, not the estimate.
  EXPECT_EQ(r->stats.flops, sparse::TotalFlops(a, a));
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(EstimateExecution, SyncMatchesReferenceWithExactFlops) {
  const Csr a = testutil::RandomRmat(9, 8.0, 2);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  auto r = core::SyncOutOfCore(device, a, a, EstimateOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  EXPECT_EQ(r->stats.flops, sparse::TotalFlops(a, a));
}

TEST(EstimateExecution, HybridMatchesReferenceWithExactFlops) {
  const Csr a = testutil::RandomRmat(9, 8.0, 5);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(4);
  auto r = core::Hybrid(device, a, a, EstimateOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
  // GPU chunks report device-analysis counts, CPU chunks an O(nnz(panel))
  // walk: the union is the exact total.
  EXPECT_EQ(r->stats.flops, sparse::TotalFlops(a, a));
}

TEST(EstimateExecution, SurvivesTightMemoryViaRetry) {
  // A deliberately small device: under-predicted pools must recover through
  // the safety-factor retry loop (possible because the dense bound is true).
  const Csr a = testutil::RandomRmat(8, 8.0, 6);
  vgpu::Device device(vgpu::ScaledV100Properties(12));
  ThreadPool pool(2);
  auto r = core::AsyncOutOfCore(device, a, a, EstimateOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(EstimateExecution, BatchedEstimateModeMatchesReference) {
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  const Csr b = testutil::RandomRmat(9, 8.0, 77);
  std::vector<Csr> as;
  for (int i = 0; i < 3; ++i) {
    as.push_back(testutil::RandomCsr(b.rows(), b.rows(), 6.0, 900 + i));
  }
  std::vector<core::BatchJobSpec> specs;
  for (const Csr& a : as) specs.push_back(core::BatchJobSpec{&a, nullptr});

  auto run =
      core::BatchedOutOfCore(device, specs, b, EstimateOptions(), pool);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->jobs.size(), as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    ASSERT_TRUE(run->jobs[i].status.ok()) << run->jobs[i].status.ToString();
    EXPECT_TRUE(testutil::CsrNear(run->jobs[i].run.c,
                                  kernels::ReferenceSpgemm(as[i], b)));
    EXPECT_EQ(run->jobs[i].run.stats.flops, sparse::TotalFlops(as[i], b));
  }
}

}  // namespace
}  // namespace oocgemm
