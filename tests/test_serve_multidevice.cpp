// Multi-device serving tests: the randomized stress of test_serve_stress
// run against pools of 2-4 virtual GPUs, plus the placement guarantees the
// pool adds — per-device reservation ledgers balance to zero at drain,
// explicit-GPU jobs never land on a device whose capacity they exceed, and
// a hybrid job may span several free devices.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "kernels/reference_spgemm.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"

namespace oocgemm::serve {
namespace {

using sparse::Csr;

struct Fleet {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;

  explicit Fleet(const std::vector<int>& mem_shifts) {
    for (int shift : mem_shifts) {
      storage.push_back(std::make_unique<vgpu::Device>(
          vgpu::ScaledV100Properties(shift)));
      devices.push_back(storage.back().get());
    }
  }
};

TEST(ServeMultiDevice, RandomizedStressAcrossPoolSizes) {
  constexpr std::uint64_t kSeed = 20260806;
  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 10;

  for (int num_devices = 2; num_devices <= 4; ++num_devices) {
    SCOPED_TRACE("pool size " + std::to_string(num_devices));
    Fleet fleet(std::vector<int>(static_cast<std::size_t>(num_devices), 15));
    ThreadPool pool(2);
    ServerConfig config;
    config.scheduler.num_workers = num_devices + 1;
    config.max_queue = kClients * kJobsPerClient;
    SpgemmServer server(fleet.devices, pool, config);

    struct Submitted {
      std::shared_ptr<const Csr> a, b;
      std::future<JobResult> future;
    };
    std::mutex mutex;
    std::vector<Submitted> submitted;

    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        SplitMix64 rng(kSeed + static_cast<std::uint64_t>(c) +
                       static_cast<std::uint64_t>(num_devices) * 100);
        for (int j = 0; j < kJobsPerClient; ++j) {
          SpgemmJob job;
          const std::uint64_t pick = rng.Next() % 3;
          const std::uint64_t seed = rng.Next();
          if (pick == 0) {
            job.a = std::make_shared<const Csr>(
                testutil::RandomCsr(48, 48, 3.0, seed));
          } else if (pick == 1) {
            job.a = std::make_shared<const Csr>(
                testutil::RandomCsr(96, 96, 5.0, seed));
          } else {
            job.a = std::make_shared<const Csr>(
                testutil::RandomRmat(7, 6.0, seed));
          }
          job.b = job.a;
          job.options.priority = static_cast<int>(rng.Next() % 4);
          job.options.mode = (rng.Next() % 4 == 0)
                                 ? core::ExecutionMode::kCpuOnly
                                 : core::ExecutionMode::kAuto;
          Submitted s;
          s.a = job.a;
          s.b = job.b;
          s.future = server.Submit(std::move(job));
          std::unique_lock<std::mutex> lock(mutex);
          submitted.push_back(std::move(s));
        }
      });
    }
    for (auto& t : clients) t.join();
    server.Drain();

    ASSERT_EQ(submitted.size(),
              static_cast<std::size_t>(kClients * kJobsPerClient));
    for (auto& s : submitted) {
      JobResult r = s.future.get();
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_TRUE(
          testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *s.b)));
      if (r.metrics.device_index >= 0) {
        EXPECT_LT(r.metrics.device_index, num_devices);
      }
    }

    ServerReport report = server.Report();
    EXPECT_EQ(report.completed, kClients * kJobsPerClient);
    EXPECT_EQ(report.device_oom_failures, 0);

    // The acceptance bar: after drain every device's reservation ledger
    // balances to zero with no underflows, and lease counts reconcile with
    // the pool's aggregate view.
    ASSERT_EQ(report.devices.size(), static_cast<std::size_t>(num_devices));
    std::int64_t lease_sum = 0;
    for (const DeviceServeReport& d : report.devices) {
      EXPECT_EQ(d.reserved_bytes, 0) << "device " << d.index;
      EXPECT_EQ(d.unreserve_underflows, 0) << "device " << d.index;
      EXPECT_GT(d.capacity_bytes, 0);
      lease_sum += d.lease_count;
    }
    EXPECT_EQ(lease_sum, server.device_pool().lease_count());
    EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
    EXPECT_EQ(server.device_pool().unreserve_underflows(), 0);
  }
}

TEST(ServeMultiDevice, ExplicitGpuJobsNeverExceedDeviceCapacity) {
  // Device 1 is the tiny outlier: 16 GiB >> 20 = 16 KiB, far below any
  // out-of-core plan's pools + panels.
  Fleet fleet({14, 20, 14});
  const std::size_t kTiny = 1;
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 3;
  config.max_queue = 32;
  SpgemmServer server(fleet.devices, pool, config);

  auto a = std::make_shared<const Csr>(testutil::RandomRmat(8, 8.0, 7));
  // Precondition for the test to mean anything: the job's planned device
  // working set really does exceed the tiny device.
  JobDemand demand = EstimateJobDemand(
      *a, *a, server.device_pool().max_device_capacity(), {});
  ASSERT_TRUE(demand.gpu_feasible);
  ASSERT_GT(demand.planned_device_bytes, fleet.devices[kTiny]->capacity());

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) {
    SpgemmJob job;
    job.a = a;
    job.b = a;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    futures.push_back(server.Submit(std::move(job)));
  }
  server.Drain();
  for (auto& f : futures) {
    JobResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_NE(r.metrics.device_index, static_cast<int>(kTiny));
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*a, *a)));
  }

  ServerReport report = server.Report();
  ASSERT_EQ(report.devices.size(), 3u);
  // The tiny device was never leased, let alone run on.
  EXPECT_EQ(report.devices[kTiny].lease_count, 0);
  EXPECT_EQ(report.devices[kTiny].completed, 0);
  for (const DeviceServeReport& d : report.devices) {
    EXPECT_EQ(d.reserved_bytes, 0);
    EXPECT_EQ(d.unreserve_underflows, 0);
  }
}

TEST(ServeMultiDevice, HybridJobSpansFreeDevices) {
  Fleet fleet({14, 14, 14});
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 2;
  config.scheduler.max_devices_per_job = 3;
  config.max_queue = 8;
  SpgemmServer server(fleet.devices, pool, config);

  // Submitted alone, so the whole pool is free at dispatch: the hybrid job
  // should span all three devices via core::MultiGpuHybrid.
  auto a = std::make_shared<const Csr>(testutil::RandomRmat(9, 8.0, 11));
  SpgemmJob job;
  job.a = a;
  job.b = a;
  job.options.mode = core::ExecutionMode::kHybrid;
  std::future<JobResult> future = server.Submit(std::move(job));
  server.Drain();

  JobResult r = future.get();
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*a, *a)));
  EXPECT_GE(r.metrics.devices_used, 2);

  ServerReport report = server.Report();
  EXPECT_GE(report.via_multi_device, 1);
  for (const DeviceServeReport& d : report.devices) {
    EXPECT_EQ(d.reserved_bytes, 0);
    EXPECT_EQ(d.unreserve_underflows, 0);
  }
  EXPECT_EQ(server.device_pool().reserved_bytes(), 0);
}

TEST(ServeMultiDevice, SharedOperandBatchPinsToOneDevice) {
  Fleet fleet({14, 14});
  ThreadPool pool(2);
  ServerConfig config;
  config.scheduler.num_workers = 1;  // one worker so companions queue up
  config.scheduler.max_batch_jobs = 4;
  config.max_queue = 16;
  SpgemmServer server(fleet.devices, pool, config);

  auto b = std::make_shared<const Csr>(testutil::RandomRmat(8, 8.0, 21));
  struct Submitted {
    std::shared_ptr<const Csr> a;
    std::future<JobResult> future;
  };
  std::vector<Submitted> submitted;
  for (int i = 0; i < 8; ++i) {
    SpgemmJob job;
    job.a = std::make_shared<const Csr>(testutil::RandomCsr(
        64, b->rows(), 4.0, 500 + static_cast<std::uint64_t>(i)));
    job.b = b;
    job.options.mode = core::ExecutionMode::kGpuOutOfCore;
    Submitted s;
    s.a = job.a;
    s.future = server.Submit(std::move(job));
    submitted.push_back(std::move(s));
  }
  server.Drain();

  bool saw_batched = false;
  for (auto& s : submitted) {
    JobResult r = s.future.get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_TRUE(testutil::CsrNear(r.c, kernels::ReferenceSpgemm(*s.a, *b)));
    if (r.metrics.batch_size > 1) {
      saw_batched = true;
      // The batch's shared workspace lives on one device: a batched member
      // never spans.
      EXPECT_EQ(r.metrics.devices_used, 1);
      EXPECT_GE(r.metrics.device_index, 0);
    }
  }
  EXPECT_TRUE(saw_batched);

  ServerReport report = server.Report();
  EXPECT_GE(report.batches, 1);
  for (const DeviceServeReport& d : report.devices) {
    EXPECT_EQ(d.reserved_bytes, 0);
    EXPECT_EQ(d.unreserve_underflows, 0);
  }
}

}  // namespace
}  // namespace oocgemm::serve
