// The hot-operand tracker: EWMA over logical ticks, promotion at the
// threshold, hysteresis on the way down, round-robin replica cursor.
#include <gtest/gtest.h>

#include "fleet/replication.hpp"

namespace oocgemm::fleet {
namespace {

ReplicationConfig TwoWay() {
  ReplicationConfig c;
  c.replication = 2;
  c.ewma_decay = 0.9;
  c.hot_threshold = 3.0;
  c.demote_margin = 0.5;
  return c;
}

TEST(FleetReplication, ColdKeyHasFanoutOne) {
  HotOperandTracker t(TwoWay());
  EXPECT_EQ(t.RecordAndFanout(7), 1);
  EXPECT_FALSE(t.IsHot(7));
  EXPECT_EQ(t.tracked_keys(), 1);
}

TEST(FleetReplication, SustainedTrafficPromotes) {
  HotOperandTracker t(TwoWay());
  int fanout = 1;
  for (int i = 0; i < 10; ++i) fanout = t.RecordAndFanout(7);
  // Back-to-back hits with decay 0.9 converge toward 1/(1-0.9) = 10,
  // crossing the 3.0 threshold on the 4th hit.
  EXPECT_EQ(fanout, 2);
  EXPECT_TRUE(t.IsHot(7));
  EXPECT_EQ(t.promotions(), 1);
  EXPECT_EQ(t.demotions(), 0);
}

TEST(FleetReplication, IdleTrafficDecaysAndDemotesWithHysteresis) {
  HotOperandTracker t(TwoWay());
  for (int i = 0; i < 10; ++i) t.RecordAndFanout(7);
  ASSERT_TRUE(t.IsHot(7));
  // A long burst on other keys advances the logical clock; key 7 cools.
  for (int i = 0; i < 40; ++i) t.RecordAndFanout(1000 + i);
  EXPECT_LT(t.EwmaOf(7), 3.0 * 0.5);  // below the demotion margin...
  EXPECT_TRUE(t.IsHot(7));            // ...but demotion happens on access
  EXPECT_EQ(t.RecordAndFanout(7), 1);
  EXPECT_FALSE(t.IsHot(7));
  EXPECT_EQ(t.demotions(), 1);
}

TEST(FleetReplication, HysteresisHoldsJustBelowThreshold) {
  HotOperandTracker t(TwoWay());
  for (int i = 0; i < 10; ++i) t.RecordAndFanout(7);
  ASSERT_TRUE(t.IsHot(7));
  // A short gap dips the EWMA below 3.0 but not below 1.5: still hot —
  // flapping would re-cool a replica's PanelCache on every dip.
  for (int i = 0; i < 8; ++i) t.RecordAndFanout(2000 + i);
  const double ewma = t.EwmaOf(7);
  ASSERT_LT(ewma, 3.0);
  ASSERT_GE(ewma, 1.5);
  EXPECT_EQ(t.RecordAndFanout(7), 2);
  EXPECT_TRUE(t.IsHot(7));
  EXPECT_EQ(t.demotions(), 0);
}

TEST(FleetReplication, ReplicaCursorRoundRobins) {
  HotOperandTracker t(TwoWay());
  EXPECT_EQ(t.NextReplicaCursor(7) % 2, 0);
  EXPECT_EQ(t.NextReplicaCursor(7) % 2, 1);
  EXPECT_EQ(t.NextReplicaCursor(7) % 2, 0);
  // Independent cursor per key.
  EXPECT_EQ(t.NextReplicaCursor(8) % 2, 0);
}

TEST(FleetReplication, ReplicationOneNeverFansOut) {
  ReplicationConfig c = TwoWay();
  c.replication = 1;
  HotOperandTracker t(c);
  int fanout = 1;
  for (int i = 0; i < 20; ++i) fanout = t.RecordAndFanout(7);
  EXPECT_TRUE(t.IsHot(7));  // tracked as hot...
  EXPECT_EQ(fanout, 1);     // ...but policy says stay home
}

}  // namespace
}  // namespace oocgemm::fleet
