#include "vgpu/device.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace oocgemm::vgpu {
namespace {

DeviceProperties SmallProps() {
  DeviceProperties p;
  p.memory_bytes = 1 << 20;  // 1 MiB arena keeps tests fast
  return p;
}

TEST(DeviceProperties, V100MatchesTableI) {
  DeviceProperties p = V100Properties();
  EXPECT_EQ(p.num_sms, 80);
  EXPECT_EQ(p.fp32_cores, 5120);
  EXPECT_EQ(p.memory_bytes, 16ll << 30);
}

TEST(DeviceProperties, ScaledShrinksMemoryOnly) {
  DeviceProperties p = ScaledV100Properties(4);
  EXPECT_EQ(p.memory_bytes, 1ll << 30);
  EXPECT_EQ(p.num_sms, 80);
}

TEST(Device, MallocAdvancesHostAndSerializes) {
  Device d(SmallProps());
  HostContext host;
  auto p = d.Malloc(host, 1024);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(host.now, 0.0);  // cudaMalloc blocks the host
  EXPECT_EQ(d.used_bytes(), p->size);
}

TEST(Device, MallocOomPropagates) {
  Device d(SmallProps());
  HostContext host;
  auto p = d.Malloc(host, 2 << 20);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kOutOfMemory);
}

TEST(Device, MemcpyRoundTripCarriesData) {
  Device d(SmallProps());
  HostContext host;
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  std::vector<int> src(1024);
  for (int i = 0; i < 1024; ++i) src[static_cast<std::size_t>(i)] = i * 3;
  std::vector<int> dst(1024, 0);
  d.MemcpyH2D(host, p.value(), src.data(), 4096);
  d.MemcpyD2H(host, dst.data(), p.value(), 4096);
  EXPECT_EQ(src, dst);
}

TEST(Device, KernelBodyExecutesEagerly) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  bool ran = false;
  d.LaunchKernel(host, *s, "k", 1e-3, {}, [&] { ran = true; });
  EXPECT_TRUE(ran);  // before any synchronization
}

TEST(Device, StreamOrdersOperations) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k1", 1e-3, {}, [] {});
  d.LaunchKernel(host, *s, "k2", 2e-3, {}, [] {});
  const auto& ev = d.trace().events();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_GE(ev[1].interval.start, ev[0].interval.end);
}

TEST(Device, IndependentStreamsShareComputeEngine) {
  // Kernels on different streams still serialize on the compute engine
  // (the workload saturates the device, as in spECK).
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  d.LaunchKernel(host, *s1, "k1", 1e-3, {}, [] {});
  d.LaunchKernel(host, *s2, "k2", 1e-3, {}, [] {});
  EXPECT_FALSE(d.trace().HasIntraCategoryOverlap(OpCategory::kKernel));
}

TEST(Device, TransferOverlapsComputeAcrossStreams) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 1 << 18);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(1 << 18);
  d.LaunchKernel(host, *s1, "k", 5e-3, {}, [] {});
  d.MemcpyD2HAsync(host, *s2, buf.data(), p.value(), 1 << 18);
  const auto& ev = d.trace().events();
  // alloc, kernel, d2h
  ASSERT_EQ(ev.size(), 3u);
  const Interval k = ev[1].interval;
  const Interval t = ev[2].interval;
  EXPECT_TRUE(k.Overlaps(t));  // different engines => true concurrency
}

TEST(Device, SameDirectionTransfersSerialize) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 1 << 19);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(1 << 19);
  d.MemcpyD2HAsync(host, *s1, buf.data(), p->Slice(0, 1 << 18), 1 << 18);
  d.MemcpyD2HAsync(host, *s2, buf.data(), p->Slice(1 << 18, 1 << 18), 1 << 18);
  EXPECT_FALSE(d.trace().HasIntraCategoryOverlap(OpCategory::kD2H));
}

TEST(Device, OppositeDirectionTransfersOverlap) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 1 << 19);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(1 << 18);
  d.MemcpyH2DAsync(host, *s1, p->Slice(0, 1 << 18), buf.data(), 1 << 18);
  d.MemcpyD2HAsync(host, *s2, buf.data(), p->Slice(1 << 18, 1 << 18), 1 << 18);
  const auto& ev = d.trace().events();
  EXPECT_TRUE(ev[1].interval.Overlaps(ev[2].interval));
}

TEST(Device, AsyncLeavesHostAhead) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 10e-3, {}, [] {});
  EXPECT_LT(host.now, s->last_end());  // async: host only paid launch cost
  d.StreamSynchronize(host, *s);
  EXPECT_DOUBLE_EQ(host.now, s->last_end());
}

TEST(Device, EventsOrderAcrossStreams) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  d.LaunchKernel(host, *s1, "k1", 5e-3, {}, [] {});
  Event e = d.RecordEvent(*s1);
  d.StreamWaitEvent(*s2, e);
  d.LaunchKernel(host, *s2, "k2", 1e-3, {}, [] {});
  const auto& ev = d.trace().events();
  EXPECT_GE(ev[1].interval.start, ev[0].interval.end);
}

TEST(Device, MallocFencesAllStreams) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  d.LaunchKernel(host, *s1, "long", 50e-3, {}, [] {});
  auto p = d.Malloc(host, 1024);  // must wait for the long kernel
  ASSERT_TRUE(p.ok());
  EXPECT_GE(host.now, 50e-3);
  d.LaunchKernel(host, *s2, "after", 1e-3, {}, [] {});
  const auto& ev = d.trace().events();
  EXPECT_GE(ev.back().interval.start, 50e-3);
}

TEST(Device, PageableCopyBlocksHostAndIsSlower) {
  Device d(SmallProps());
  HostContext host_pinned, host_pageable;
  Device d2(SmallProps());
  Stream* s1 = d.CreateStream("t");
  Stream* s2 = d2.CreateStream("t");
  auto p1 = d.Malloc(host_pinned, 1 << 18);
  auto p2 = d2.Malloc(host_pageable, 1 << 18);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<char> buf(1 << 18);
  d.MemcpyH2DAsync(host_pinned, *s1, p1.value(), buf.data(), 1 << 18, "h2d",
                   /*pinned=*/true);
  d2.MemcpyH2DAsync(host_pageable, *s2, p2.value(), buf.data(), 1 << 18,
                    "h2d", /*pinned=*/false);
  EXPECT_LT(host_pinned.now, host_pageable.now);       // pageable blocks
  EXPECT_LT(s1->last_end(), s2->last_end());           // and is slower
}

TEST(Device, HazardCheckerFlagsVirtualRace) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  // Two kernels on different streams write the same region with no event
  // dependency: their virtual intervals overlap on... the compute engine is
  // serial, so use a kernel and a transfer to overlap in time.
  std::vector<char> buf(4096);
  d.LaunchKernel(host, *s1, "writer", 5e-3,
                 {{p->offset, 4096, /*write=*/true}}, [] {});
  d.MemcpyD2HAsync(host, *s2, buf.data(), p.value(), 4096, "racy-read");
  EXPECT_FALSE(d.hazard_violations().empty());
}

TEST(Device, HazardCheckerAcceptsOrderedAccess) {
  Device d(SmallProps());
  HostContext host;
  Stream* s1 = d.CreateStream("a");
  Stream* s2 = d.CreateStream("b");
  auto p = d.Malloc(host, 4096);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(4096);
  d.LaunchKernel(host, *s1, "writer", 5e-3,
                 {{p->offset, 4096, /*write=*/true}}, [] {});
  d.StreamWaitEvent(*s2, d.RecordEvent(*s1));  // proper dependency
  d.MemcpyD2HAsync(host, *s2, buf.data(), p.value(), 4096, "ordered-read");
  EXPECT_TRUE(d.hazard_violations().empty());
}

TEST(Device, ResetTimelineClearsClocks) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 1e-3, {}, [] {});
  d.ResetTimeline();
  EXPECT_EQ(d.trace().events().size(), 0u);
  EXPECT_EQ(d.QuiesceTime(), 0.0);
  EXPECT_EQ(s->last_end(), 0.0);
}

TEST(Device, QuiesceTimeCoversAllEngines) {
  Device d(SmallProps());
  HostContext host;
  Stream* s = d.CreateStream("t");
  auto p = d.Malloc(host, 1 << 18);
  ASSERT_TRUE(p.ok());
  std::vector<char> buf(1 << 18);
  d.MemcpyD2HAsync(host, *s, buf.data(), p.value(), 1 << 18);
  EXPECT_GE(d.QuiesceTime(), s->last_end());
  HostContext h2;
  d.DeviceSynchronize(h2);
  EXPECT_DOUBLE_EQ(h2.now, d.QuiesceTime());
}

}  // namespace
}  // namespace oocgemm::vgpu
