#include "sparse/analysis.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(RowFlops, HandComputedExample) {
  // A = [x x; . x], B row nnz = {2, 3}
  Csr a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 1, 1});
  Csr b(2, 4, {0, 2, 5}, {0, 1, 1, 2, 3}, {1, 1, 1, 1, 1});
  std::vector<std::int64_t> flops = RowFlops(a, b);
  EXPECT_EQ(flops[0], 2 * (2 + 3));
  EXPECT_EQ(flops[1], 2 * 3);
}

TEST(TotalFlops, MatchesRowFlopsSum) {
  Csr a = testutil::RandomCsr(60, 40, 5.0, 21);
  Csr b = testutil::RandomCsr(40, 50, 4.0, 22);
  std::int64_t sum = 0;
  for (std::int64_t f : RowFlops(a, b)) sum += f;
  EXPECT_EQ(TotalFlops(a, b), sum);
}

TEST(TotalFlops, ZeroForEmptyA) {
  Csr a(10, 10);
  Csr b = testutil::RandomCsr(10, 10, 3.0, 23);
  EXPECT_EQ(TotalFlops(a, b), 0);
}

TEST(SymbolicRowNnz, MatchesReferenceProduct) {
  Csr a = testutil::RandomCsr(50, 30, 4.0, 24);
  Csr b = testutil::RandomCsr(30, 45, 4.0, 25);
  Csr c = kernels::ReferenceSpgemm(a, b);
  std::vector<std::int64_t> nnz = SymbolicRowNnz(a, b);
  for (index_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(nnz[static_cast<std::size_t>(r)], c.row_nnz(r));
  }
}

TEST(SymbolicNnz, MatchesReferenceProduct) {
  Csr a = testutil::RandomRmat(7, 6.0, 26);
  EXPECT_EQ(SymbolicNnz(a, a), kernels::ReferenceSpgemm(a, a).nnz());
}

TEST(UpperBoundRowNnz, IsAnUpperBound) {
  Csr a = testutil::RandomRmat(7, 8.0, 27);
  std::vector<std::int64_t> bound = UpperBoundRowNnz(a, a);
  std::vector<std::int64_t> actual = SymbolicRowNnz(a, a);
  for (std::size_t i = 0; i < bound.size(); ++i) {
    EXPECT_GE(bound[i], actual[i]);
  }
}

TEST(UpperBoundRowNnz, CappedByColumns) {
  // A dense-ish row can't exceed b.cols() outputs.
  Csr a = testutil::RandomCsr(10, 10, 9.0, 28);
  for (std::int64_t b : UpperBoundRowNnz(a, a)) EXPECT_LE(b, 10);
}

TEST(AnalyzeProduct, ConsistentFields) {
  Csr a = testutil::RandomRmat(8, 8.0, 29);
  ProductStats s = AnalyzeProduct(a, a);
  EXPECT_EQ(s.flops, TotalFlops(a, a));
  EXPECT_EQ(s.nnz_out, SymbolicNnz(a, a));
  EXPECT_GT(s.compression_ratio, 1.0);
  EXPECT_NEAR(s.compression_ratio,
              static_cast<double>(s.flops) / static_cast<double>(s.nnz_out),
              1e-12);
  EXPECT_GE(s.max_row_flops, s.avg_row_flops);
  EXPECT_GE(s.row_flops_gini, 0.0);
  EXPECT_LE(s.row_flops_gini, 1.0);
}

TEST(AnalyzeProduct, SkewDetectsRmatVsUniform) {
  Csr skewed = testutil::RandomRmat(9, 8.0, 30);
  Csr uniform = testutil::RandomCsr(512, 512, 8.0, 31);
  EXPECT_GT(AnalyzeProduct(skewed, skewed).row_flops_gini,
            AnalyzeProduct(uniform, uniform).row_flops_gini);
}

TEST(RowFlopsDeath, DimensionMismatchAborts) {
  Csr a = testutil::RandomCsr(4, 5, 2.0, 32);
  Csr b = testutil::RandomCsr(6, 4, 2.0, 33);
  EXPECT_DEATH(RowFlops(a, b), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::sparse
