#include "vgpu/memory_pool.hpp"

#include <gtest/gtest.h>

#include "vgpu/memory_source.hpp"

namespace oocgemm::vgpu {
namespace {

DeviceProperties SmallProps() {
  DeviceProperties p;
  p.memory_bytes = 1 << 20;
  return p;
}

TEST(MemoryPool, SingleUpfrontDeviceAllocation) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 1 << 18);
  const std::size_t allocs_before = d.trace().events().size();
  auto a = pool.Allocate(1000);
  auto b = pool.Allocate(2000);
  ASSERT_TRUE(a.ok() && b.ok());
  // Bump allocation adds no device operations (the paper's point: no
  // cudaMalloc inside the pipeline).
  EXPECT_EQ(d.trace().events().size(), allocs_before);
}

TEST(MemoryPool, SubAllocationsAreDisjointAndAligned) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 1 << 18);
  auto a = pool.Allocate(100);
  auto b = pool.Allocate(100);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->offset % 256, 0);
  EXPECT_EQ(b->offset % 256, 0);
  EXPECT_GE(b->offset, a->offset + a->size);
}

TEST(MemoryPool, ExhaustionReturnsOom) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 4096);
  EXPECT_TRUE(pool.Allocate(2048).ok());
  auto big = pool.Allocate(4096);
  EXPECT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kOutOfMemory);
}

TEST(MemoryPool, ResetRecycles) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 4096);
  ASSERT_TRUE(pool.Allocate(4096 - 256).ok());
  pool.Reset();
  EXPECT_EQ(pool.used_bytes(), 0);
  EXPECT_TRUE(pool.Allocate(4096 - 256).ok());
}

TEST(MemoryPool, HighWaterPersistsAcrossReset) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 1 << 16);
  ASSERT_TRUE(pool.Allocate(30000).ok());
  pool.Reset();
  ASSERT_TRUE(pool.Allocate(100).ok());
  EXPECT_GE(pool.high_water(), 30000);
}

TEST(MemoryPool, NegativeAllocationRejected) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 4096);
  EXPECT_FALSE(pool.Allocate(-5).ok());
}

TEST(MemorySource, MallocSourceSerializesDevice) {
  Device d(SmallProps());
  HostContext host;
  MallocMemorySource source(d);
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 10e-3, {}, [] {});
  auto p = source.Allocate(host, 1024, "x");
  ASSERT_TRUE(p.ok());
  EXPECT_GE(host.now, 10e-3);  // waited for the kernel
  EXPECT_TRUE(source.dynamic());
}

TEST(MemorySource, PoolSourceDoesNotSerialize) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 1 << 16);
  PoolMemorySource source(pool);
  Stream* s = d.CreateStream("t");
  d.LaunchKernel(host, *s, "k", 10e-3, {}, [] {});
  const double host_before = host.now;
  auto p = source.Allocate(host, 1024, "x");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(host.now, host_before);  // no waiting
  EXPECT_FALSE(source.dynamic());
}

TEST(MemorySource, PoolRecycleResets) {
  Device d(SmallProps());
  HostContext host;
  MemoryPool pool(d, host, 4096);
  PoolMemorySource source(pool);
  ASSERT_TRUE(source.Allocate(host, 2048, "x").ok());
  source.Recycle();
  EXPECT_EQ(pool.used_bytes(), 0);
}

}  // namespace
}  // namespace oocgemm::vgpu
