// Golden-file tests for the exposition formats.  The Prometheus text
// surface — family ordering, the counter _total convention, cumulative
// _bucket/le lines, label escaping — and the JSON mirror are contracts
// with external scrapers, so they are pinned byte-for-byte here.
//
// Suites are named Metrics* so the CI TSan job's gtest filter picks them up.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshotter.hpp"

namespace oocgemm::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// One registry exercising every exposition feature: a labelled counter
// whose label value needs escaping, an unlabelled gauge, and a bp2=1
// histogram whose power-of-two bucket bounds print as clean integers.
MetricsRegistry& GoldenRegistry() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("test_requests", {{"tenant", "a\"b\\c\nd"}},
                  "Requests served")
        .Add(3);
    r->GetGauge("test_depth", {}, "Queue depth").Set(7);
    LogBucketHistogram& h =
        r->GetHistogram("test_latency", {}, "Latency", /*buckets_per_pow2=*/1);
    h.Record(0.75);
    h.Record(1.5);
    h.Record(1.5);
    h.Record(3.0);
    return r;
  }();
  return *reg;
}

TEST(MetricsExporters, PrometheusGolden) {
  const std::string expected =
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth 7\n"
      "# HELP test_latency Latency\n"
      "# TYPE test_latency histogram\n"
      "test_latency_bucket{le=\"1\"} 1\n"
      "test_latency_bucket{le=\"2\"} 3\n"
      "test_latency_bucket{le=\"4\"} 4\n"
      "test_latency_bucket{le=\"+Inf\"} 4\n"
      "test_latency_sum 6.75\n"
      "test_latency_count 4\n"
      "# HELP test_requests_total Requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{tenant=\"a\\\"b\\\\c\\nd\"} 3\n";
  EXPECT_EQ(ToPrometheusText(GoldenRegistry().Snapshot()), expected);
}

TEST(MetricsExporters, JsonGolden) {
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"test_depth\",\"kind\":\"gauge\",\"help\":\"Queue depth\","
      "\"points\":[{\"labels\":{},\"value\":7}]},"
      "{\"name\":\"test_latency\",\"kind\":\"histogram\",\"help\":\"Latency\","
      "\"points\":[{\"labels\":{},\"count\":4,\"sum\":6.75,\"min\":0.75,"
      "\"max\":3,\"p50\":2,\"p95\":3,\"p99\":3,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":2},"
      "{\"le\":4,\"count\":1}]}]},"
      "{\"name\":\"test_requests\",\"kind\":\"counter\","
      "\"help\":\"Requests served\","
      "\"points\":[{\"labels\":{\"tenant\":\"a\\\"b\\\\c\\nd\"},"
      "\"value\":3}]}"
      "]}";
  EXPECT_EQ(ToJson(GoldenRegistry().Snapshot()), expected);
}

TEST(MetricsExporters, EmptyRegistryExportsEmptyShapes) {
  MetricsRegistry reg;
  EXPECT_EQ(ToPrometheusText(reg.Snapshot()), "");
  EXPECT_EQ(ToJson(reg.Snapshot()), "{\"metrics\":[]}");
}

TEST(MetricsExporters, EscapeLabelValue) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  // Control bytes outside the three defined escapes would corrupt the
  // exposition line structure; they are replaced, not passed through.
  EXPECT_EQ(EscapeLabelValue("a\rb\tc\x01"
                             "d"),
            "a_b_c_d");
}

// A tenant id is arbitrary caller bytes.  Pin the full exposition of the
// nastiest id we can type: both formats must stay machine-parseable.
TEST(MetricsExporters, HostileTenantLabelGolden) {
  MetricsRegistry reg;
  const std::string hostile = "t\"x\\y\nz\r\x7f{},=";
  reg.GetCounter("test_hostile", {{"tenant", hostile}}, "Hostile labels")
      .Add(1);
  const std::string prom =
      "# HELP test_hostile_total Hostile labels\n"
      "# TYPE test_hostile_total counter\n"
      "test_hostile_total{tenant=\"t\\\"x\\\\y\\nz_\x7f{},=\"} 1\n";
  EXPECT_EQ(ToPrometheusText(reg.Snapshot()), prom);
  const std::string json =
      "{\"metrics\":["
      "{\"name\":\"test_hostile\",\"kind\":\"counter\","
      "\"help\":\"Hostile labels\","
      "\"points\":[{\"labels\":{\"tenant\":\"t\\\"x\\\\y\\nz\\r\x7f{},=\"},"
      "\"value\":1}]}"
      "]}";
  EXPECT_EQ(ToJson(reg.Snapshot()), json);
}

TEST(MetricsExporters, FormatMetricValue) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(6.75), "6.75");
  // Past the exact-integer range of double formatting, fall back to %.17g.
  EXPECT_EQ(FormatMetricValue(1e18), "1e+18");
}

TEST(MetricsExporters, MissingHelpFallsBackToName) {
  MetricsRegistry reg;
  reg.GetCounter("test_nohelp").Add(1);
  const std::string text = ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# HELP test_nohelp_total test_nohelp\n"),
            std::string::npos);
}

TEST(MetricsExporters, WriteFileAtomicRoundTrips) {
  const std::string path = testing::TempDir() + "metrics_atomic_test.prom";
  ASSERT_TRUE(WriteFileAtomic(path, "hello 1\n").ok());
  EXPECT_EQ(ReadFile(path), "hello 1\n");
  // Overwrite goes through the same tmp+rename path.
  ASSERT_TRUE(WriteFileAtomic(path, "hello 2\n").ok());
  EXPECT_EQ(ReadFile(path), "hello 2\n");
  std::remove(path.c_str());
}

TEST(MetricsExporters, SnapshotterWritesBothFormatsOnDemand) {
  MetricsRegistry reg;
  reg.GetCounter("test_snap_events", {}, "Events").Add(5);

  Snapshotter::Options opts;
  opts.interval_seconds = 0.0;  // no background thread: on-demand only
  opts.prometheus_path = testing::TempDir() + "snapshotter_test.prom";
  opts.json_path = testing::TempDir() + "snapshotter_test.json";
  Snapshotter snap(reg, opts);
  ASSERT_TRUE(snap.WriteNow().ok());
  EXPECT_NE(ReadFile(opts.prometheus_path).find("test_snap_events_total 5\n"),
            std::string::npos);
  EXPECT_NE(ReadFile(opts.json_path)
                .find("\"name\":\"test_snap_events\""),
            std::string::npos);

  // Stop() lands one terminal write: the files reflect the final state.
  reg.GetCounter("test_snap_events").Add(2);
  snap.Stop();
  EXPECT_NE(ReadFile(opts.prometheus_path).find("test_snap_events_total 7\n"),
            std::string::npos);
  EXPECT_GE(snap.writes(), 2);
  std::remove(opts.prometheus_path.c_str());
  std::remove(opts.json_path.c_str());
}

TEST(MetricsExporters, SnapshotterBackgroundThreadWritesPeriodically) {
  MetricsRegistry reg;
  reg.GetCounter("test_bg_events").Add(1);
  Snapshotter::Options opts;
  opts.interval_seconds = 0.01;
  opts.prometheus_path = testing::TempDir() + "snapshotter_bg_test.prom";
  {
    Snapshotter snap(reg, opts);
    // Destructor stops the thread and writes the terminal snapshot even if
    // the interval never elapsed.
  }
  EXPECT_NE(ReadFile(opts.prometheus_path).find("test_bg_events_total 1\n"),
            std::string::npos);
  std::remove(opts.prometheus_path.c_str());
}

}  // namespace
}  // namespace oocgemm::obs
