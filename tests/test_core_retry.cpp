// The pool-overflow re-planning path: when the sampled nnz estimate is too
// optimistic, the executors must detect the overflow, double the safety
// factor, re-plan and still produce the correct result.
#include <gtest/gtest.h>

#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "test_util.hpp"

namespace oocgemm::core {
namespace {

using sparse::Csr;

ExecutorOptions TinySafetyOptions() {
  ExecutorOptions options;
  // Deliberately under-size the pools: the estimate is scaled to ~1/8 of
  // the prediction, so the first attempt must overflow.
  options.plan.nnz_safety_factor = 0.125;
  return options;
}

TEST(OomRetry, AsyncRecoversFromUndersizedPools) {
  Csr a = testutil::RandomRmat(9, 8.0, 1);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, TinySafetyOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(OomRetry, SyncRecoversFromUndersizedPools) {
  Csr a = testutil::RandomRmat(9, 8.0, 2);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  auto r = SyncOutOfCore(device, a, a, TinySafetyOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(OomRetry, HybridRecoversFromUndersizedPools) {
  Csr a = testutil::RandomRmat(9, 8.0, 3);
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  auto r = Hybrid(device, a, a, TinySafetyOptions(), pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

TEST(OomRetry, HopelesslySmallDeviceStillFailsCleanly) {
  Csr a = testutil::RandomRmat(10, 10.0, 4);
  vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
  props.memory_bytes = 1 << 10;  // 1 KiB: nothing fits
  vgpu::Device device(props);
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, ExecutorOptions{}, pool);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(OomRetry, WorstCaseSizingNeverRetries) {
  // With the estimator disabled (paper's rejected worst-case bound), pools
  // can never overflow, so the first attempt must succeed.
  Csr a = testutil::RandomRmat(8, 8.0, 5);
  ExecutorOptions options;
  options.plan.nnz_sample_fraction = 0.0;  // worst-case sizing
  vgpu::Device device(vgpu::ScaledV100Properties(13));
  ThreadPool pool(2);
  auto r = AsyncOutOfCore(device, a, a, options, pool);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(testutil::CsrNear(r->c, kernels::ReferenceSpgemm(a, a)));
}

}  // namespace
}  // namespace oocgemm::core
