#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(GenerateRmat, DeterministicInSeed) {
  RmatParams p;
  p.scale = 8;
  p.seed = 5;
  EXPECT_TRUE(GenerateRmat(p) == GenerateRmat(p));
}

TEST(GenerateRmat, SeedChangesOutput) {
  RmatParams p;
  p.scale = 8;
  p.seed = 5;
  Csr a = GenerateRmat(p);
  p.seed = 6;
  EXPECT_FALSE(a == GenerateRmat(p));
}

TEST(GenerateRmat, ShapeAndValidity) {
  RmatParams p;
  p.scale = 9;
  p.edge_factor = 8.0;
  Csr a = GenerateRmat(p);
  EXPECT_EQ(a.rows(), 512);
  EXPECT_EQ(a.cols(), 512);
  EXPECT_TRUE(a.Validate().ok());
  // Duplicate merging only removes a minority of edges.
  EXPECT_GT(a.nnz(), 512 * 8 / 2);
  EXPECT_LE(a.nnz(), 512 * 8);
}

TEST(GenerateRmat, NoSelfLoopsWhenRequested) {
  RmatParams p;
  p.scale = 8;
  p.remove_self_loops = true;
  Csr a = GenerateRmat(p);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      EXPECT_NE(a.col_ids()[static_cast<std::size_t>(k)], r);
    }
  }
}

TEST(GenerateRmat, SymmetricOptionProducesSymmetry) {
  RmatParams p;
  p.scale = 8;
  p.symmetric = true;
  Csr a = GenerateRmat(p);
  EXPECT_TRUE(a == Transpose(a));
}

TEST(GenerateRmat, PowerLawSkewExceedsUniform) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  Csr skewed = GenerateRmat(p);
  Csr uniform = testutil::RandomCsr(1024, 1024, 8.0, 44);
  auto degrees = [](const Csr& m) {
    std::vector<double> d;
    for (index_t r = 0; r < m.rows(); ++r) {
      d.push_back(static_cast<double>(m.row_nnz(r)));
    }
    return d;
  };
  EXPECT_GT(GiniCoefficient(degrees(skewed)),
            GiniCoefficient(degrees(uniform)) + 0.1);
}

TEST(GenerateErdosRenyi, ShapeAndDegree) {
  ErdosRenyiParams p;
  p.rows = 2000;
  p.cols = 500;
  p.avg_degree = 6.0;
  Csr a = GenerateErdosRenyi(p);
  EXPECT_EQ(a.rows(), 2000);
  EXPECT_EQ(a.cols(), 500);
  EXPECT_TRUE(a.Validate().ok());
  const double avg = static_cast<double>(a.nnz()) / 2000.0;
  EXPECT_NEAR(avg, 6.0, 0.5);
}

TEST(GenerateErdosRenyi, ZeroDegreeGivesEmpty) {
  ErdosRenyiParams p;
  p.rows = p.cols = 100;
  p.avg_degree = 0.0;
  EXPECT_EQ(GenerateErdosRenyi(p).nnz(), 0);
}

TEST(GenerateBanded, BandStructure) {
  BandedParams p;
  p.n = 100;
  p.half_bandwidth = 3;
  Csr a = GenerateBanded(p);
  EXPECT_TRUE(a.Validate().ok());
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      EXPECT_LE(std::abs(a.col_ids()[static_cast<std::size_t>(k)] - r), 3);
    }
  }
  // Interior rows carry the full band.
  EXPECT_EQ(a.row_nnz(50), 7);
}

TEST(GenerateBanded, StrideSkipsDiagonals) {
  BandedParams p;
  p.n = 64;
  p.half_bandwidth = 8;
  p.stride = 4;
  Csr a = GenerateBanded(p);
  EXPECT_EQ(a.row_nnz(32), 5);  // offsets -8,-4,0,4,8
}

TEST(GenerateBanded, DiagonallyDominant) {
  BandedParams p;
  p.n = 32;
  p.half_bandwidth = 2;
  Csr a = GenerateBanded(p);
  for (index_t r = 0; r < a.rows(); ++r) {
    double diag = 0.0, off = 0.0;
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_ids()[static_cast<std::size_t>(k)];
      const double v = a.values()[static_cast<std::size_t>(k)];
      if (c == r) {
        diag = v;
      } else {
        off += std::abs(v);
      }
    }
    EXPECT_GT(diag, off);
  }
}

TEST(GenerateBlockFem, ShapeAndBlocks) {
  BlockFemParams p;
  p.num_blocks = 16;
  p.block_size = 4;
  Csr a = GenerateBlockFem(p);
  EXPECT_EQ(a.rows(), 64);
  EXPECT_TRUE(a.Validate().ok());
  // The diagonal block is dense: row 0 has at least block_size entries.
  EXPECT_GE(a.row_nnz(0), 4);
}

TEST(GenerateBlockFem, Deterministic) {
  BlockFemParams p;
  p.seed = 77;
  EXPECT_TRUE(GenerateBlockFem(p) == GenerateBlockFem(p));
}

}  // namespace
}  // namespace oocgemm::sparse
