// The differential harness: every decision point the calibrator can steer
// — admission latency pricing, the Admit verdict, hybrid split, kernel
// routing, placement hints — must reproduce the static decision
// bit-for-bit when the model carries exactly the static constants
// (CalibratedModel::FromStatic), and must keep the static decision while
// the confidence gate holds (an uncalibrated or under-sampled model).
// Calibration may only change behaviour when a fit diverged AND passed
// the gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "calibrate/calibrator.hpp"
#include "calibrate/model.hpp"
#include "common/thread_pool.hpp"
#include "core/device_pool.hpp"
#include "core/executors.hpp"
#include "kernels/binning.hpp"
#include "kernels/kernel_registry.hpp"
#include "serve/admission.hpp"
#include "test_util.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::calibrate {
namespace {

using sparse::Csr;

void ExpectDemandsIdentical(const serve::JobDemand& s,
                            const serve::JobDemand& c) {
  EXPECT_EQ(s.flops, c.flops);
  EXPECT_EQ(s.est_nnz_out, c.est_nnz_out);
  EXPECT_EQ(s.bytes_a, c.bytes_a);
  EXPECT_EQ(s.bytes_b, c.bytes_b);
  EXPECT_EQ(s.est_bytes_out, c.est_bytes_out);
  EXPECT_EQ(s.gpu_feasible, c.gpu_feasible);
  EXPECT_EQ(s.planned_chunks, c.planned_chunks);
  EXPECT_EQ(s.planned_device_bytes, c.planned_device_bytes);
  EXPECT_EQ(s.est_exec_seconds, c.est_exec_seconds);  // bitwise
}

TEST(CalibrateDifferential, FromStaticAdmissionDemandIsBitIdentical) {
  const Csr a = testutil::RandomRmat(7, 6.0, 21);
  const Csr small = testutil::RandomCsr(64, 64, 4.0, 22);
  const std::int64_t capacity =
      vgpu::ScaledV100Properties(15).memory_bytes;
  core::ExecutorOptions exec;
  const CalibratedModel model =
      CalibratedModel::FromStatic(2, exec.gpu_ratio);

  for (const Csr* m : {&a, &small}) {
    const serve::JobDemand s =
        serve::EstimateJobDemand(*m, *m, capacity, exec, nullptr);
    const serve::JobDemand c =
        serve::EstimateJobDemand(*m, *m, capacity, exec, &model);
    ExpectDemandsIdentical(s, c);
  }

  estimate::EstimatorOptions est_opts;
  est_opts.seed = 5;
  const serve::JobDemand s = serve::EstimateJobDemandSampled(
      a, a, capacity, exec, est_opts, nullptr);
  const serve::JobDemand c = serve::EstimateJobDemandSampled(
      a, a, capacity, exec, est_opts, &model);
  ExpectDemandsIdentical(s, c);
  EXPECT_EQ(s.estimated, c.estimated);
}

TEST(CalibrateDifferential, FromStaticAdmitVerdictsMatchStatic) {
  const Csr a = testutil::RandomRmat(7, 6.0, 33);
  const std::int64_t capacity =
      vgpu::ScaledV100Properties(15).memory_bytes;
  core::ExecutorOptions exec;
  const CalibratedModel model =
      CalibratedModel::FromStatic(1, exec.gpu_ratio);
  const serve::JobDemand ds =
      serve::EstimateJobDemand(a, a, capacity, exec, nullptr);
  const serve::JobDemand dc =
      serve::EstimateJobDemand(a, a, capacity, exec, &model);

  // Sweep deadline gates bracketing the modeled latency: each verdict —
  // admit or FAILED_PRECONDITION — must agree because the priced latency
  // is bit-identical.
  for (const double gate : {0.0, ds.est_exec_seconds * 0.5,
                            ds.est_exec_seconds, ds.est_exec_seconds * 2.0}) {
    serve::AdmissionLimits limits;
    limits.max_est_exec_seconds = gate;
    serve::AdmissionController stat(limits), calib(limits);
    const Status vs = stat.Admit(ds, core::ExecutionMode::kAuto);
    const Status vc = calib.Admit(dc, core::ExecutionMode::kAuto);
    EXPECT_EQ(vs.code(), vc.code()) << "gate " << gate;
  }
}

TEST(CalibrateDifferential, FromStaticHybridRatioIsVerbatim) {
  for (const double ratio : {0.1, 0.5, 0.67, 0.9}) {
    const CalibratedModel model = CalibratedModel::FromStatic(3, ratio);
    for (int dev = 0; dev < 3; ++dev) {
      EXPECT_EQ(model.GpuRatioFor(dev, ratio), ratio);  // bitwise
    }
    // Out-of-range device (CPU dispatch) also keeps the static ratio.
    EXPECT_EQ(model.GpuRatioFor(-1, ratio), ratio);
    EXPECT_EQ(model.GpuRatioFor(7, ratio), ratio);
  }
}

TEST(CalibrateDifferential, FromStaticRoutingDecisionsMatchStatic) {
  const CalibratedModel model = CalibratedModel::FromStatic(1, 0.67);
  const kernels::RouteCalibration scales = model.RouteScalesFor(0);
  EXPECT_EQ(scales.compute_scale, 1.0);
  EXPECT_EQ(scales.overhead_scale, 1.0);

  // Per-row: identical kind and bit-identical modeled cost across a sweep
  // of work classes, widths and strategies.
  for (const std::int64_t flops : {2ll, 16ll, 256ll, 4096ll, 1ll << 20}) {
    for (const sparse::index_t cols : {64, 1024, 16384}) {
      EXPECT_EQ(kernels::KernelRegistry::RouteRow(flops, cols),
                kernels::KernelRegistry::RouteRow(flops, cols, -1, scales));
      for (const auto kind :
           {kernels::AccumulatorKind::kHash, kernels::AccumulatorKind::kDense,
            kernels::AccumulatorKind::kSortMerge,
            kernels::AccumulatorKind::kRowMerge}) {
        EXPECT_EQ(
            kernels::KernelRegistry::ModeledRowCost(kind, flops, 8.0, cols),
            kernels::KernelRegistry::ModeledRowCost(kind, flops, 8.0, cols,
                                                    scales));
      }
    }
  }

  // Per-group: RouteRows over a real matrix's row classes (keyed by row
  // flops, the symbolic-pass convention).
  const Csr a = testutil::RandomRmat(8, 8.0, 44);
  std::vector<std::int64_t> row_flops(static_cast<std::size_t>(a.rows()));
  for (sparse::index_t r = 0; r < a.rows(); ++r) {
    std::int64_t f = 0;
    for (sparse::offset_t p = a.row_begin(r); p < a.row_end(r); ++p) {
      f += 2 * a.row_nnz(a.col_ids()[static_cast<std::size_t>(p)]);
    }
    row_flops[static_cast<std::size_t>(r)] = f;
  }
  const kernels::RoutedGroups stat = kernels::RouteRows(
      row_flops.data(), row_flops.data(), nullptr, row_flops.size(), a.cols(),
      kernels::AccumulatorKind::kAuto);
  const kernels::RoutedGroups calib = kernels::RouteRows(
      row_flops.data(), row_flops.data(), nullptr, row_flops.size(), a.cols(),
      kernels::AccumulatorKind::kAuto, scales);
  for (std::size_t g = 0;
       g < static_cast<std::size_t>(kernels::kNumRowGroups); ++g) {
    EXPECT_EQ(stat.strategy[g], calib.strategy[g]) << "group " << g;
    EXPECT_EQ(stat.groups.groups[g].size(), calib.groups.groups[g].size());
  }
}

TEST(CalibrateDifferential, FromStaticAdmissionRatesAreStaticBitwise) {
  const ExecRates s = StaticExecRates();
  const CalibratedModel model = CalibratedModel::FromStatic(2, 0.67, s);
  const ExecRates r = model.AdmissionRates(s);
  EXPECT_EQ(r.h2d_bandwidth, s.h2d_bandwidth);
  EXPECT_EQ(r.d2h_bandwidth, s.d2h_bandwidth);
  EXPECT_EQ(r.gpu_flop_rate, s.gpu_flop_rate);
  EXPECT_EQ(r.cpu_flop_rate, s.cpu_flop_rate);
  EXPECT_EQ(r.kernel_launch_overhead, s.kernel_launch_overhead);
}

TEST(CalibrateDifferential, UncalibratedModelKeepsStaticDecisions) {
  // A calibrator that never saw traffic publishes a model whose every hook
  // degrades to static.
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  core::DevicePool pool({&d0});
  CalibratorConfig config;
  config.mode = CalibrateMode::kApply;
  CostModelCalibrator calibrator(config, &pool);
  calibrator.TickNow();
  calibrator.TickNow();

  std::shared_ptr<const CalibratedModel> model = calibrator.apply_model();
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->device(0).rate_confident);
  EXPECT_EQ(model->GpuRatioFor(0, 0.67), 0.67);
  EXPECT_EQ(model->RouteScalesFor(0).compute_scale, 1.0);
  EXPECT_EQ(model->RouteScalesFor(0).overhead_scale, 1.0);
  EXPECT_EQ(model->RateHintFor(0), 0.0);
  const ExecRates s = StaticExecRates();
  const ExecRates r = model->AdmissionRates(s);
  EXPECT_EQ(r.gpu_flop_rate, s.gpu_flop_rate);
  EXPECT_EQ(r.cpu_flop_rate, s.cpu_flop_rate);
}

TEST(CalibrateDifferential, BelowThresholdGateHoldsUnderRealTraffic) {
  // Real traffic, but a min_samples gate the run cannot reach: decisions
  // must stay static even though the fits have been ingesting samples.
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  core::DevicePool pool({&d0});
  CalibratorConfig config;
  config.mode = CalibrateMode::kApply;
  config.fit.min_samples = 1000;
  CostModelCalibrator calibrator(config, &pool);

  ThreadPool tp;
  const Csr a = testutil::RandomRmat(7, 6.0, 55);
  core::ExecutorOptions opts;
  for (int tick = 0; tick < 4; ++tick) {
    ASSERT_TRUE(core::AsyncOutOfCore(d0, a, a, opts, tp).ok());
    calibrator.TickNow();
  }
  std::shared_ptr<const CalibratedModel> model = calibrator.apply_model();
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->device(0).rate_confident);
  EXPECT_FALSE(model->device(0).ratio_confident);
  EXPECT_EQ(model->GpuRatioFor(0, 0.67), 0.67);
  EXPECT_EQ(model->RouteScalesFor(0).compute_scale, 1.0);
  EXPECT_EQ(pool.rate_hint(0), 0.0);

  const std::int64_t capacity = d0.properties().memory_bytes;
  core::ExecutorOptions exec;
  const serve::JobDemand ds =
      serve::EstimateJobDemand(a, a, capacity, exec, nullptr);
  const serve::JobDemand dc =
      serve::EstimateJobDemand(a, a, capacity, exec, model.get());
  EXPECT_EQ(ds.est_exec_seconds, dc.est_exec_seconds);  // bitwise
}

TEST(CalibrateDifferential, ZeroHintsPreservePlacementOrder) {
  // All-zero rate hints must reproduce the historical least-reserved
  // placement: index order on a fresh pool.
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  vgpu::Device d1(vgpu::ScaledV100Properties(15));
  core::DevicePool pool({&d0, &d1});
  EXPECT_EQ(pool.rate_hint(0), 0.0);
  EXPECT_EQ(pool.rate_hint(1), 0.0);
  core::DevicePool::Slot first = pool.TryAcquire(0);
  ASSERT_TRUE(first.held());
  EXPECT_EQ(first.index(), 0);
  core::DevicePool::Slot second = pool.TryAcquire(0);
  ASSERT_TRUE(second.held());
  EXPECT_EQ(second.index(), 1);
  first.Release();
  second.Release();
}

}  // namespace
}  // namespace oocgemm::calibrate
