// End-to-end reconciliation between the live metrics registry and the
// repo's post-mortem accounting: the counters the device/executor/serve
// layers bump on their hot paths must agree exactly with the trace-derived
// RunStats of a Hybrid run and with the ServerReport of a fault-injected
// multi-device serve run.  Also pins the disabled-registry contract: with
// set_enabled(false) a full run records nothing.
//
// Suites are named Metrics* so the CI TSan job's gtest filter picks them up.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/executors.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "vgpu/fault_injector.hpp"

namespace oocgemm {
namespace {

using sparse::Csr;

obs::Labels Dev(int index) {
  return {{"device", std::to_string(index)}};
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(MetricsReconcile, HybridRunMatchesTraceDerivedRunStats) {
  auto& reg = obs::MetricsRegistry::Default();
  vgpu::Device device(vgpu::ScaledV100Properties(14));  // 1 MiB
  ThreadPool pool(2);
  Csr a = testutil::RandomRmat(9, 8.0, 41);

  const obs::RegistrySnapshot before = reg.Snapshot();
  auto r = core::Hybrid(device, a, a, core::ExecutorOptions{}, pool);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::RegistrySnapshot after = reg.Snapshot();

  auto delta = [&](const char* name) {
    return static_cast<std::int64_t>(after.Value(name, Dev(0)) -
                                     before.Value(name, Dev(0)));
  };

  // The device counters increment at exactly the operations the trace
  // records, and RunStats is derived from that trace — so for a single
  // retry-free run the three views agree to the byte.
  ASSERT_GT(r->stats.bytes_h2d, 0);
  EXPECT_EQ(delta("oocgemm_vgpu_h2d_bytes"), r->stats.bytes_h2d);
  EXPECT_EQ(delta("oocgemm_vgpu_h2d_bytes"),
            device.trace().Bytes(vgpu::OpCategory::kH2D));
  EXPECT_EQ(delta("oocgemm_vgpu_d2h_bytes"), r->stats.bytes_d2h);
  EXPECT_EQ(delta("oocgemm_vgpu_d2h_bytes"),
            device.trace().Bytes(vgpu::OpCategory::kD2H));

  std::int64_t kernel_events = 0;
  for (const vgpu::TraceEvent& e : device.trace().events()) {
    if (e.category == vgpu::OpCategory::kKernel) ++kernel_events;
  }
  ASSERT_GT(kernel_events, 0);
  EXPECT_EQ(delta("oocgemm_vgpu_kernel_launches"), kernel_events);

  // Executor-level instrumentation fired once for this run.
  EXPECT_EQ(static_cast<std::int64_t>(
                after.Value("oocgemm_core_runs", {{"executor", "hybrid"}}) -
                before.Value("oocgemm_core_runs", {{"executor", "hybrid"}})),
            1);
  const obs::HistogramSnapshot* runs =
      after.Histogram("oocgemm_core_run_seconds", {{"executor", "hybrid"}});
  ASSERT_NE(runs, nullptr);
  EXPECT_GE(runs->count, 1);
  EXPECT_GT(after.Value("oocgemm_core_phase_seconds", {{"phase", "numeric"}}),
            before.Value("oocgemm_core_phase_seconds", {{"phase", "numeric"}}));
  EXPECT_GT(after.Value("oocgemm_core_phase_seconds", {{"phase", "assemble"}}),
            before.Value("oocgemm_core_phase_seconds", {{"phase", "assemble"}}));
}

TEST(MetricsReconcile, FaultInjectedServeRunMatchesServerReport) {
  auto& reg = obs::MetricsRegistry::Default();
  constexpr int kDevices = 3;
  constexpr int kVictim = 1;
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;
  for (int i = 0; i < kDevices; ++i) {
    storage.push_back(
        std::make_unique<vgpu::Device>(vgpu::ScaledV100Properties(15)));
    devices.push_back(storage.back().get());
  }
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:nth=2:kill", /*seed=*/7).value());
  devices[kVictim]->set_fault_injector(&injector);

  ThreadPool pool(2);
  serve::ServerConfig config;
  config.scheduler.num_workers = kDevices + 1;
  config.max_queue = 64;
  config.metrics_path = testing::TempDir() + "reconcile_serve.prom";
  config.metrics_interval_seconds = 0.01;

  const obs::RegistrySnapshot before = reg.Snapshot();
  std::vector<std::shared_ptr<const Csr>> as;
  std::vector<std::future<serve::JobResult>> futures;
  std::int64_t device_failures_total = 0;
  {
    serve::SpgemmServer server(devices, pool, config);

    // Pin every lane, then free only the victim: the probe job must land
    // there, and its second kernel launch kills the device mid-run.  The
    // recovery path (failover onto the survivors) is what the metric
    // counters have to account for exactly.
    std::vector<core::DevicePool::Slot> pins;
    for (int i = 0; i < kDevices; ++i) {
      core::DevicePool::Slot s = server.device_pool().TryAcquire(0);
      ASSERT_TRUE(s.held());
      pins.push_back(std::move(s));
    }
    for (auto& s : pins) {
      if (s.index() == kVictim) s.Release();
    }
    serve::SpgemmJob probe;
    probe.a = std::make_shared<const Csr>(testutil::RandomRmat(7, 6.0, 51));
    probe.b = probe.a;
    probe.options.mode = core::ExecutionMode::kGpuOutOfCore;
    as.push_back(probe.a);
    futures.push_back(server.Submit(std::move(probe)));
    while (!injector.device_dead()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (auto& s : pins) s.Release();

    for (int j = 0; j < 23; ++j) {
      serve::SpgemmJob job;
      job.a = std::make_shared<const Csr>(
          testutil::RandomRmat(6, 5.0, 100 + static_cast<std::uint64_t>(j)));
      job.b = job.a;
      job.options.priority = j % 3;
      as.push_back(job.a);
      futures.push_back(server.Submit(std::move(job)));
    }
    server.Drain();
    for (auto& f : futures) {
      serve::JobResult r = f.get();
      ASSERT_TRUE(r.ok()) << r.status.ToString();
    }

    const serve::ServerReport report = server.Report();
    const obs::RegistrySnapshot after = reg.Snapshot();
    auto delta = [&](const char* name) {
      return static_cast<std::int64_t>(after.Value(name) - before.Value(name));
    };

    // Serve counters aggregate the same JobMetrics stream as ServerStats,
    // so they reconcile exactly with the report — faults included.
    EXPECT_EQ(delta("oocgemm_serve_jobs_submitted"), report.submitted);
    EXPECT_EQ(delta("oocgemm_serve_jobs_completed"), report.completed);
    EXPECT_EQ(report.completed, 24);
    EXPECT_EQ(delta("oocgemm_serve_failovers"), report.failed_over);
    EXPECT_GE(report.failed_over, 1);
    EXPECT_EQ(delta("oocgemm_serve_device_failures"), report.device_failures);
    EXPECT_EQ(report.device_failures, 1);
    device_failures_total =
        static_cast<std::int64_t>(after.Value("oocgemm_serve_device_failures"));
    EXPECT_EQ(delta("oocgemm_serve_h2d_bytes"), report.transfer_bytes_h2d);
    EXPECT_EQ(delta("oocgemm_serve_d2h_bytes"), report.transfer_bytes_d2h);
    EXPECT_GT(report.transfer_bytes_h2d, 0);
    EXPECT_EQ(delta("oocgemm_serve_admission_rejects"), 0);
    EXPECT_EQ(after.Value("oocgemm_serve_queue_depth"), 0.0);

    const obs::HistogramSnapshot* lat_before =
        before.Histogram("oocgemm_serve_latency_seconds");
    const obs::HistogramSnapshot* lat_after =
        after.Histogram("oocgemm_serve_latency_seconds");
    ASSERT_NE(lat_after, nullptr);
    EXPECT_EQ(lat_after->count - (lat_before ? lat_before->count : 0),
              report.completed);

    ASSERT_NE(server.snapshotter(), nullptr);
    server.Shutdown();  // lands the terminal snapshot files
  }

  // The exported exposition files carry the terminal state.
  const std::string prom = ReadFile(config.metrics_path);
  EXPECT_NE(prom.find("oocgemm_serve_jobs_completed_total"),
            std::string::npos);
  // The registry is process-wide, so earlier tests in the same process may
  // have contributed device failures; the file must carry the full total.
  EXPECT_NE(prom.find("oocgemm_serve_device_failures_total " +
                      std::to_string(device_failures_total)),
            std::string::npos)
      << prom.substr(0, 400);
  const std::string json = ReadFile(config.metrics_path + ".json");
  EXPECT_NE(json.find("\"name\":\"oocgemm_serve_latency_seconds\""),
            std::string::npos);
  std::remove(config.metrics_path.c_str());
  std::remove((config.metrics_path + ".json").c_str());
}

TEST(MetricsReconcile, DisabledRegistryRecordsNothing) {
  auto& reg = obs::MetricsRegistry::Default();
  vgpu::Device device(vgpu::ScaledV100Properties(14));
  ThreadPool pool(2);
  Csr a = testutil::RandomRmat(8, 6.0, 61);

  reg.set_enabled(false);
  const obs::RegistrySnapshot before = reg.Snapshot();
  auto r = core::Hybrid(device, a, a, core::ExecutorOptions{}, pool);
  const obs::RegistrySnapshot after = reg.Snapshot();
  reg.set_enabled(true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GT(r->stats.bytes_h2d, 0);  // the run did real device work

  // First use may still *register* instruments (families appear), but no
  // value moves: every point in the after-snapshot equals its
  // before-snapshot counterpart, or is zero if it did not exist yet.
  for (const obs::MetricFamily& fa : after.families) {
    SCOPED_TRACE(fa.name);
    for (const obs::MetricPoint& pa : fa.points) {
      EXPECT_DOUBLE_EQ(pa.value, before.Value(fa.name, pa.labels));
      if (fa.kind == obs::MetricKind::kHistogram) {
        const obs::HistogramSnapshot* hb =
            before.Histogram(fa.name, pa.labels);
        EXPECT_EQ(pa.histogram.count, hb != nullptr ? hb->count : 0);
      }
    }
  }
}

}  // namespace
}  // namespace oocgemm
