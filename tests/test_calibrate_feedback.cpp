// Closed-loop feedback: a deterministic delay fault degrades device 1's
// effective kernel rate; the calibrator fits the degradation out of the
// live metrics registry and the apply-mode model shifts every decision
// surface toward the healthy device — lower hybrid split on the slow
// device, placement rate hints, routing compute scales — while the
// oocgemm_calibrate_* exports reconcile byte-exact with the published
// model.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "calibrate/calibrator.hpp"
#include "common/thread_pool.hpp"
#include "core/device_pool.hpp"
#include "core/executors.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "vgpu/fault_injector.hpp"

namespace oocgemm::calibrate {
namespace {

using sparse::Csr;

obs::Labels FitLabels(int device, const char* fit) {
  return {{"device", std::to_string(device)}, {"fit", fit}};
}

TEST(CalibrateFeedback, DelayFaultShiftsEveryDecisionSurface) {
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  vgpu::Device d1(vgpu::ScaledV100Properties(15));
  // Every kernel launch on device 1 costs 20ms extra virtual time — the
  // degradation signal flows through oocgemm_vgpu_kernel_seconds.
  vgpu::FaultInjector injector(
      vgpu::FaultSpec::Parse("kernel:p=1:delay=0.02", /*seed=*/5).value());
  d1.set_fault_injector(&injector);

  core::DevicePool pool({&d0, &d1});  // assigns metric ids 0 and 1
  CalibratorConfig config;
  config.mode = CalibrateMode::kApply;
  CostModelCalibrator calibrator(config, &pool);

  const double ticks_before = obs::MetricsRegistry::Default()
                                  .Snapshot()
                                  .Value("oocgemm_calibrate_ticks");

  ThreadPool tp;
  const Csr a = testutil::RandomRmat(7, 6.0, 3);
  core::ExecutorOptions opts;
  for (int tick = 0; tick < 8; ++tick) {
    ASSERT_TRUE(core::AsyncOutOfCore(d0, a, a, opts, tp).ok());
    ASSERT_TRUE(core::AsyncOutOfCore(d1, a, a, opts, tp).ok());
    ASSERT_TRUE(core::CpuMulticore(a, a, opts, tp).ok());
    calibrator.TickNow();
  }
  EXPECT_EQ(calibrator.ticks(), 8);

  std::shared_ptr<const CalibratedModel> model = calibrator.apply_model();
  ASSERT_NE(model, nullptr);
  ASSERT_EQ(model->num_devices(), 2);
  ASSERT_TRUE(model->device(0).rate_confident);
  ASSERT_TRUE(model->device(1).rate_confident);
  ASSERT_TRUE(model->cpu().confident);

  // (1) The fitted effective rate sees the injected delay.
  EXPECT_LT(model->device(1).flop_rate, 0.5 * model->device(0).flop_rate);

  // (2) Hybrid split: the degraded device's S/(S+1) drops below the
  // healthy device's, steering hybrid work toward its CPU share.
  ASSERT_TRUE(model->device(0).ratio_confident);
  ASSERT_TRUE(model->device(1).ratio_confident);
  EXPECT_LT(model->GpuRatioFor(1, 0.67), model->GpuRatioFor(0, 0.67));

  // (3) Placement: apply mode pushed the fitted rates into the pool, so a
  // least-reserved tie between the idle devices prefers the healthy one.
  EXPECT_EQ(pool.rate_hint(0), model->device(0).flop_rate);
  EXPECT_EQ(pool.rate_hint(1), model->device(1).flop_rate);
  core::DevicePool::Slot slot = pool.TryAcquire(0);
  ASSERT_TRUE(slot.held());
  EXPECT_EQ(slot.index(), 0);
  slot.Release();

  // (4) Routing: the slow device's compute terms are scaled up relative
  // to the healthy device's.
  EXPECT_GT(model->RouteScalesFor(1).compute_scale,
            model->RouteScalesFor(0).compute_scale);

  // (5) The exported gauges reconcile byte-exact with the model.
  const obs::RegistrySnapshot snap = obs::MetricsRegistry::Default().Snapshot();
  EXPECT_EQ(snap.Value("oocgemm_calibrate_ticks") - ticks_before, 8.0);
  for (int i = 0; i < 2; ++i) {
    const CalibratedModel::DeviceModel& d = model->device(i);
    EXPECT_EQ(snap.Value("oocgemm_calibrate_confident", FitLabels(i, "rate")),
              1.0);
    EXPECT_EQ(snap.Value("oocgemm_calibrate_fitted_rate", FitLabels(i, "rate")),
              static_cast<double>(static_cast<std::int64_t>(d.flop_rate)));
    EXPECT_EQ(snap.Value("oocgemm_calibrate_gpu_ratio_millis",
                         {{"device", std::to_string(i)}}),
              static_cast<double>(std::lround(d.gpu_ratio * 1000.0)));
    EXPECT_GT(snap.Value("oocgemm_calibrate_samples", FitLabels(i, "rate")),
              0.0);
  }
  EXPECT_EQ(snap.Value("oocgemm_calibrate_cpu_flop_rate"),
            static_cast<double>(
                static_cast<std::int64_t>(model->cpu().flop_rate)));
  EXPECT_EQ(snap.Value("oocgemm_calibrate_cpu_confident"), 1.0);
}

TEST(CalibrateFeedback, ObserveModeFitsButNeverSteers) {
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  core::DevicePool pool({&d0});
  CalibratorConfig config;
  config.mode = CalibrateMode::kObserve;
  CostModelCalibrator calibrator(config, &pool);

  ThreadPool tp;
  const Csr a = testutil::RandomRmat(7, 6.0, 9);
  core::ExecutorOptions opts;
  for (int tick = 0; tick < 8; ++tick) {
    ASSERT_TRUE(core::AsyncOutOfCore(d0, a, a, opts, tp).ok());
    calibrator.TickNow();
  }
  // The fit converged and model() exports it...
  ASSERT_NE(calibrator.model(), nullptr);
  EXPECT_TRUE(calibrator.model()->device(0).rate_confident);
  // ...but observe mode never hands it to the serving stack.
  EXPECT_EQ(calibrator.apply_model(), nullptr);
  EXPECT_EQ(pool.rate_hint(0), 0.0);
}

TEST(CalibrateFeedback, ServerWiresCalibratorEndToEnd) {
  vgpu::Device d0(vgpu::ScaledV100Properties(15));
  vgpu::Device d1(vgpu::ScaledV100Properties(15));
  ThreadPool tp(2);
  serve::ServerConfig config;
  config.scheduler.num_workers = 3;
  config.calibrate.mode = CalibrateMode::kApply;
  serve::SpgemmServer server({&d0, &d1}, tp, config);
  ASSERT_NE(server.calibrator(), nullptr);

  std::vector<std::future<serve::JobResult>> futures;
  for (int wave = 0; wave < 3; ++wave) {
    for (int j = 0; j < 4; ++j) {
      serve::SpgemmJob job;
      job.a = std::make_shared<const Csr>(
          testutil::RandomRmat(7, 6.0, 100 + wave * 4 + j));
      job.b = job.a;
      job.options.mode = core::ExecutionMode::kGpuOutOfCore;
      futures.push_back(server.Submit(std::move(job)));
    }
    server.Drain();
    server.calibrator()->TickNow();
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_GE(server.calibrator()->ticks(), 3);
  EXPECT_NE(server.calibrator()->model(), nullptr);
  server.Shutdown();
}

}  // namespace
}  // namespace oocgemm::calibrate
