#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("oocgemm_io_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, MatrixMarketRoundTrip) {
  Csr m = testutil::RandomCsr(40, 30, 5.0, 1);
  ASSERT_TRUE(WriteMatrixMarket(m, Path("m.mtx")).ok());
  auto back = ReadMatrixMarket(Path("m.mtx"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(back.value(), m));
}

TEST_F(IoTest, BinaryRoundTripExact) {
  Csr m = testutil::RandomRmat(8, 6.0, 2);
  ASSERT_TRUE(WriteBinary(m, Path("m.bin")).ok());
  auto back = ReadBinary(Path("m.bin"));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back.value() == m);
}

TEST_F(IoTest, ReadsPatternFiles) {
  WriteFile("p.mtx",
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 3 2\n"
            "1 1\n"
            "3 2\n");
  auto m = ReadMatrixMarket(Path("p.mtx"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 2);
  EXPECT_DOUBLE_EQ(m->values()[0], 1.0);
}

TEST_F(IoTest, ExpandsSymmetricFiles) {
  WriteFile("s.mtx",
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n");
  auto m = ReadMatrixMarket(Path("s.mtx"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 3);  // (2,1), (1,2), (3,3)
  EXPECT_EQ(m->row_nnz(0), 1);
  EXPECT_EQ(m->row_nnz(1), 1);
}

TEST_F(IoTest, SkipsComments) {
  WriteFile("c.mtx",
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "% another\n"
            "2 2 1\n"
            "1 2 3.5\n");
  auto m = ReadMatrixMarket(Path("c.mtx"));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->nnz(), 1);
}

TEST_F(IoTest, RejectsMissingFile) {
  auto m = ReadMatrixMarket(Path("nope.mtx"));
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, RejectsBadHeader) {
  WriteFile("bad.mtx", "not a matrix market file\n1 1 0\n");
  EXPECT_FALSE(ReadMatrixMarket(Path("bad.mtx")).ok());
}

TEST_F(IoTest, RejectsOutOfRangeEntry) {
  WriteFile("oob.mtx",
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "5 1 1.0\n");
  EXPECT_FALSE(ReadMatrixMarket(Path("oob.mtx")).ok());
}

TEST_F(IoTest, RejectsTruncatedEntries) {
  WriteFile("trunc.mtx",
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 3\n"
            "1 1 1.0\n");
  EXPECT_FALSE(ReadMatrixMarket(Path("trunc.mtx")).ok());
}

TEST_F(IoTest, RejectsComplexField) {
  WriteFile("cx.mtx",
            "%%MatrixMarket matrix coordinate complex general\n"
            "1 1 1\n"
            "1 1 1.0 0.0\n");
  EXPECT_FALSE(ReadMatrixMarket(Path("cx.mtx")).ok());
}

TEST_F(IoTest, BinaryRejectsCorruptMagic) {
  WriteFile("junk.bin", "XXXXXXXXXXXXXXXXXXXXXXXXXXX");
  auto m = ReadBinary(Path("junk.bin"));
  EXPECT_FALSE(m.ok());
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  Csr m = testutil::RandomCsr(10, 10, 3.0, 3);
  ASSERT_TRUE(WriteBinary(m, Path("t.bin")).ok());
  std::filesystem::resize_file(Path("t.bin"),
                               std::filesystem::file_size(Path("t.bin")) / 2);
  EXPECT_FALSE(ReadBinary(Path("t.bin")).ok());
}

TEST_F(IoTest, EmptyMatrixRoundTrips) {
  Csr m(5, 5);
  ASSERT_TRUE(WriteMatrixMarket(m, Path("e.mtx")).ok());
  auto mm = ReadMatrixMarket(Path("e.mtx"));
  ASSERT_TRUE(mm.ok());
  EXPECT_EQ(mm->nnz(), 0);
  ASSERT_TRUE(WriteBinary(m, Path("e.bin")).ok());
  auto mb = ReadBinary(Path("e.bin"));
  ASSERT_TRUE(mb.ok());
  EXPECT_TRUE(mb.value() == m);
}

}  // namespace
}  // namespace oocgemm::sparse
