#include "sparse/coo.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(CooToCsr, EmptyMatrix) {
  Coo coo;
  coo.rows = 3;
  coo.cols = 4;
  Csr m = CooToCsr(coo);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.Validate().ok());
}

TEST(CooToCsr, SortsWithinRows) {
  Coo coo;
  coo.rows = coo.cols = 3;
  coo.Add(0, 2, 1.0);
  coo.Add(0, 0, 2.0);
  coo.Add(2, 1, 3.0);
  Csr m = CooToCsr(coo);
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.col_ids(), (std::vector<index_t>{0, 2, 1}));
  EXPECT_EQ(m.values(), (std::vector<value_t>{2.0, 1.0, 3.0}));
}

TEST(CooToCsr, MergesDuplicatesBySumming) {
  Coo coo;
  coo.rows = coo.cols = 2;
  coo.Add(1, 1, 1.5);
  coo.Add(1, 1, 2.5);
  coo.Add(1, 0, 1.0);
  Csr m = CooToCsr(coo);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.col_ids(), (std::vector<index_t>{0, 1}));
  EXPECT_EQ(m.values(), (std::vector<value_t>{1.0, 4.0}));
}

TEST(CooToCsr, UnorderedRowsLand) {
  Coo coo;
  coo.rows = coo.cols = 4;
  coo.Add(3, 0, 1.0);
  coo.Add(0, 3, 2.0);
  coo.Add(2, 2, 3.0);
  Csr m = CooToCsr(coo);
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 1);
  EXPECT_EQ(m.row_nnz(3), 1);
}

TEST(CooToCsr, RoundTripsThroughCsrToCoo) {
  Csr original = testutil::RandomCsr(64, 48, 5.0, 99);
  Coo coo = CsrToCoo(original);
  Csr again = CooToCsr(coo);
  EXPECT_TRUE(original == again);
}

TEST(CsrToCoo, EmitsRowMajorOrder) {
  Csr m = testutil::RandomCsr(32, 32, 4.0, 7);
  Coo coo = CsrToCoo(m);
  for (std::size_t i = 1; i < coo.nnz(); ++i) {
    EXPECT_LE(coo.row_ids[i - 1], coo.row_ids[i]);
  }
}

TEST(CooToCsrDeath, OutOfRangeAborts) {
  Coo coo;
  coo.rows = coo.cols = 2;
  coo.Add(0, 5, 1.0);
  EXPECT_DEATH(CooToCsr(coo), "OOC_CHECK");
}

}  // namespace
}  // namespace oocgemm::sparse
