// Oracle tests for every SpGEMM path: phases, CPU multicore, device
// pipeline.  Parameterized sweeps cover structure (uniform / skewed),
// density and accumulator strategy.
#include <gtest/gtest.h>

#include "kernels/cpu_spgemm.hpp"
#include "kernels/device_spgemm.hpp"
#include "kernels/reference_spgemm.hpp"
#include "sparse/analysis.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::kernels {
namespace {

using sparse::Csr;
using sparse::index_t;

TEST(ReferenceSpgemm, TinyHandComputed) {
  // A = [1 2; 0 3], B = [4 0; 1 5]  =>  C = [6 10; 3 15]
  Csr a(2, 2, {0, 2, 3}, {0, 1, 1}, {1, 2, 3});
  Csr b(2, 2, {0, 1, 3}, {0, 0, 1}, {4, 1, 5});
  Csr c = ReferenceSpgemm(a, b);
  EXPECT_EQ(c.nnz(), 4);
  EXPECT_EQ(c.values(), (std::vector<sparse::value_t>{6, 10, 3, 15}));
}

TEST(ReferenceSpgemm, IdentityNeutral) {
  Csr a = testutil::RandomCsr(30, 30, 4.0, 1);
  EXPECT_TRUE(ReferenceSpgemm(a, sparse::Identity(30)) == a);
}

TEST(ReferenceSpgemm, EmptyOperands) {
  Csr a(4, 3);
  Csr b(3, 5);
  Csr c = ReferenceSpgemm(a, b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 5);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(CpuSpgemmSerial, MatchesReference) {
  Csr a = testutil::RandomCsr(64, 48, 5.0, 2);
  Csr b = testutil::RandomCsr(48, 80, 4.0, 3);
  EXPECT_TRUE(testutil::CsrNear(CpuSpgemmSerial(a, b), ReferenceSpgemm(a, b)));
}

TEST(CpuSpgemm, ParallelMatchesSerial) {
  ThreadPool pool(4);
  Csr a = testutil::RandomRmat(9, 8.0, 4);
  Csr serial = CpuSpgemmSerial(a, a);
  Csr parallel = CpuSpgemm(a, a, pool);
  EXPECT_TRUE(testutil::CsrNear(parallel, serial));
}

TEST(CpuSpgemm, DenseAccumulatorMatchesHash) {
  ThreadPool pool(2);
  Csr a = testutil::RandomCsr(128, 128, 10.0, 5);
  CpuSpgemmOptions hash_opts, dense_opts;
  hash_opts.accumulator = AccumulatorKind::kHash;
  dense_opts.accumulator = AccumulatorKind::kDense;
  EXPECT_TRUE(testutil::CsrNear(CpuSpgemm(a, a, pool, dense_opts),
                                CpuSpgemm(a, a, pool, hash_opts)));
}

TEST(CpuSpgemm, RectangularChain) {
  ThreadPool pool(2);
  Csr a = testutil::RandomCsr(20, 35, 3.0, 6);
  Csr b = testutil::RandomCsr(35, 15, 3.0, 7);
  EXPECT_TRUE(
      testutil::CsrNear(CpuSpgemm(a, b, pool), ReferenceSpgemm(a, b)));
}

TEST(CpuSpgemm, EmptyRowsAndColumns) {
  // A matrix with alternating empty rows.
  sparse::Coo coo;
  coo.rows = coo.cols = 16;
  for (index_t r = 0; r < 16; r += 2) coo.Add(r, 15 - r, 1.0);
  Csr a = sparse::CooToCsr(coo);
  ThreadPool pool(2);
  EXPECT_TRUE(testutil::CsrNear(CpuSpgemm(a, a, pool), ReferenceSpgemm(a, a)));
}

TEST(DeviceSpgemm, InCoreMatchesReference) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomCsr(100, 100, 6.0, 8);
  auto c = MultiplyInCore(device, a, a);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_TRUE(testutil::CsrNear(c.value(), ReferenceSpgemm(a, a)));
  EXPECT_TRUE(device.hazard_violations().empty());
}

TEST(DeviceSpgemm, SkewedGraphMatchesReference) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomRmat(9, 10.0, 9);
  auto c = MultiplyInCore(device, a, a);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(testutil::CsrNear(c.value(), ReferenceSpgemm(a, a)));
}

TEST(DeviceSpgemm, HashOnlyAndDenseOnlyAgree) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomCsr(80, 80, 8.0, 10);
  DeviceSpgemmOptions hash_opts, dense_opts;
  hash_opts.accumulator = AccumulatorKind::kHash;
  dense_opts.accumulator = AccumulatorKind::kDense;
  auto ch = MultiplyInCore(device, a, a, hash_opts);
  auto cd = MultiplyInCore(device, a, a, dense_opts);
  ASSERT_TRUE(ch.ok() && cd.ok());
  EXPECT_TRUE(testutil::CsrNear(cd.value(), ch.value()));
}

TEST(DeviceSpgemm, ReportsFlopsAndCompressionRatio) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomRmat(8, 8.0, 11);
  vgpu::HostContext host;
  vgpu::Stream* stream = device.CreateStream("t");
  vgpu::MallocMemorySource source(device);
  auto da = UploadCsr(device, host, *stream, source, a, "A");
  auto db = UploadCsr(device, host, *stream, source, a, "B");
  ASSERT_TRUE(da.ok() && db.ok());
  DeviceSpgemm engine(device);
  auto chunk = engine.Multiply(host, *stream, da.value(), db.value(), source,
                               "C");
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->flops, sparse::TotalFlops(a, a));
  EXPECT_EQ(chunk->nnz, sparse::SymbolicNnz(a, a));
  EXPECT_NEAR(chunk->compression_ratio,
              static_cast<double>(chunk->flops) /
                  static_cast<double>(chunk->nnz),
              1e-12);
}

TEST(DeviceSpgemm, EmitsThreeStageTrace) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomRmat(8, 8.0, 12);
  ASSERT_TRUE(MultiplyInCore(device, a, a).ok());
  const vgpu::Trace& t = device.trace();
  EXPECT_GT(t.BusyTimeLabeled(".analysis"), 0.0);
  EXPECT_GT(t.BusyTimeLabeled(".symbolic"), 0.0);
  EXPECT_GT(t.BusyTimeLabeled(".numeric"), 0.0);
}

TEST(DeviceSpgemm, PoolSourceProducesSameResult) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomCsr(64, 64, 6.0, 13);
  Csr expected = ReferenceSpgemm(a, a);

  vgpu::HostContext host;
  vgpu::Stream* stream = device.CreateStream("t");
  vgpu::MemoryPool pool(device, host, 8 << 20);
  vgpu::PoolMemorySource source(pool);
  auto da = UploadCsr(device, host, *stream, source, a, "A");
  auto db = UploadCsr(device, host, *stream, source, a, "B");
  ASSERT_TRUE(da.ok() && db.ok());
  DeviceSpgemm engine(device);
  auto chunk = engine.Multiply(host, *stream, da.value(), db.value(), source,
                               "C");
  ASSERT_TRUE(chunk.ok());
  Csr c = DownloadCsr(device, host,
                      DeviceCsr{chunk->rows, chunk->cols, chunk->nnz,
                                chunk->d_row_offsets, chunk->d_col_ids,
                                chunk->d_values});
  EXPECT_TRUE(testutil::CsrNear(c, expected));
}

TEST(DeviceSpgemm, PoolOomPropagatesAsStatus) {
  vgpu::Device device(vgpu::ScaledV100Properties(8));
  Csr a = testutil::RandomCsr(128, 128, 8.0, 14);
  vgpu::HostContext host;
  vgpu::Stream* stream = device.CreateStream("t");
  vgpu::MemoryPool pool(device, host, 1 << 12);  // far too small
  vgpu::PoolMemorySource source(pool);
  auto da = UploadCsr(device, host, *stream, source, a, "A");
  EXPECT_FALSE(da.ok());
  EXPECT_EQ(da.status().code(), StatusCode::kOutOfMemory);
}

// ---- Parameterized oracle sweep ---------------------------------------------

struct SpgemmCase {
  const char* name;
  int rows, mid, cols;
  double degree_a, degree_b;
  bool skewed;
};

class SpgemmOracleSweep : public ::testing::TestWithParam<SpgemmCase> {};

TEST_P(SpgemmOracleSweep, AllPathsAgree) {
  const SpgemmCase& p = GetParam();
  Csr a, b;
  if (p.skewed) {
    a = testutil::RandomRmat(8, p.degree_a, 100);
    b = testutil::RandomRmat(8, p.degree_b, 101);
  } else {
    a = testutil::RandomCsr(p.rows, p.mid, p.degree_a, 100);
    b = testutil::RandomCsr(p.mid, p.cols, p.degree_b, 101);
  }
  Csr expected = ReferenceSpgemm(a, b);

  ThreadPool pool(3);
  EXPECT_TRUE(testutil::CsrNear(CpuSpgemm(a, b, pool), expected));

  vgpu::Device device(vgpu::ScaledV100Properties(8));
  auto c = MultiplyInCore(device, a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(testutil::CsrNear(c.value(), expected));
  EXPECT_TRUE(device.hazard_violations().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Structures, SpgemmOracleSweep,
    ::testing::Values(
        SpgemmCase{"tiny", 4, 4, 4, 1.5, 1.5, false},
        SpgemmCase{"sparse_uniform", 200, 150, 180, 2.0, 2.0, false},
        SpgemmCase{"medium_uniform", 150, 150, 150, 8.0, 8.0, false},
        SpgemmCase{"dense_uniform", 60, 60, 60, 25.0, 25.0, false},
        SpgemmCase{"wide", 40, 400, 30, 5.0, 2.0, false},
        SpgemmCase{"tall", 400, 30, 40, 2.0, 5.0, false},
        SpgemmCase{"skewed_light", 0, 0, 0, 4.0, 4.0, true},
        SpgemmCase{"skewed_heavy", 0, 0, 0, 16.0, 16.0, true}),
    [](const ::testing::TestParamInfo<SpgemmCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace oocgemm::kernels
