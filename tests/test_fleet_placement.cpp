// Content-stable operand keys: equal content hashes equal regardless of
// where the matrix lives in memory, distinct content separates, and the
// digest is cheap even on large operands (it samples structure).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "fleet/placement.hpp"
#include "test_util.hpp"

namespace oocgemm::fleet {
namespace {

TEST(FleetPlacement, SameContentDifferentAllocationsSameKey) {
  // Two independent generations from the same seed: identical content,
  // different heap buffers — the restart scenario.  A pointer-identity
  // fingerprint (serve::OperandFingerprint) would separate these.
  const sparse::Csr m1 = testutil::RandomRmat(7, 6.0, 42);
  const sparse::Csr m2 = testutil::RandomRmat(7, 6.0, 42);
  ASSERT_NE(m1.col_ids().data(), m2.col_ids().data());
  EXPECT_EQ(OperandPlacementKey(m1), OperandPlacementKey(m2));
}

TEST(FleetPlacement, DistinctContentDistinctKeys) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    keys.insert(OperandPlacementKey(testutil::RandomRmat(6, 5.0, seed)));
    keys.insert(
        OperandPlacementKey(testutil::RandomCsr(64, 96, 4.0, seed)));
  }
  EXPECT_EQ(keys.size(), 32u);
}

TEST(FleetPlacement, ShapeAloneSeparates) {
  // Same nnz layout pattern, different declared column count.
  sparse::Csr a(8, 8), b(8, 16);
  EXPECT_NE(OperandPlacementKey(a), OperandPlacementKey(b));
}

TEST(FleetPlacement, StructureChangeChangesKey) {
  sparse::Csr m = testutil::RandomCsr(64, 64, 4.0, 7);
  const std::uint64_t before = OperandPlacementKey(m);
  // Flip one column id: same shape, same nnz, different structure.
  ASSERT_FALSE(m.mutable_col_ids().empty());
  m.mutable_col_ids()[0] =
      m.mutable_col_ids()[0] == 0 ? 1 : m.mutable_col_ids()[0] - 1;
  EXPECT_NE(OperandPlacementKey(m), before);
}

}  // namespace
}  // namespace oocgemm::fleet
