// Property tests for the calibrator's regression primitives
// (calibrate/fit.hpp): recovery of known synthetic constants under seeded
// multiplicative noise, bitwise order invariance of the tick batching,
// the min-samples confidence gate, winsorized outlier rejection (one wild
// sample cannot poison the fit, a persistent shift eventually wins), and
// the OverheadRateFit's two-term separation with its collinear fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "calibrate/fit.hpp"
#include "common/rng.hpp"

namespace oocgemm::calibrate {
namespace {

// Seeded lognormal multiplier via Box-Muller: exp(sigma * N(0,1)).
double LognormalNoise(Pcg32& rng, double sigma) {
  const double u1 = std::max(rng.NextDouble(), 1e-12);
  const double u2 = rng.NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return std::exp(sigma * z);
}

TEST(CalibrateFit, LinearFitRecoversSyntheticRate) {
  constexpr double kTrueRate = 2.0e9;  // bytes per second
  LinearFit fit;
  Pcg32 rng(42);
  for (int tick = 0; tick < 20; ++tick) {
    for (int i = 0; i < 5; ++i) {
      const double bytes = rng.Uniform(1.0e6, 1.0e8);
      const double seconds =
          bytes / kTrueRate * LognormalNoise(rng, /*sigma=*/0.05);
      fit.Add(bytes, seconds);
    }
    fit.Commit();
  }
  ASSERT_TRUE(fit.confident());
  EXPECT_NEAR(fit.rate(), kTrueRate, 0.05 * kTrueRate);
  EXPECT_GT(fit.slope(), 0.0);
}

TEST(CalibrateFit, LinearFitIsOrderInvariantWithinATick) {
  // Same per-tick sample multiset, different Add order: the canonical sort
  // plus frozen-state weighting must make the fits bit-identical.
  Pcg32 rng(7);
  std::vector<std::vector<std::pair<double, double>>> ticks;
  for (int t = 0; t < 8; ++t) {
    std::vector<std::pair<double, double>> tick;
    for (int i = 0; i < 6; ++i) {
      const double x = rng.Uniform(1.0e5, 1.0e7);
      tick.push_back({x, x / 3.0e9 * LognormalNoise(rng, 0.1)});
    }
    ticks.push_back(std::move(tick));
  }

  LinearFit forward, shuffled;
  Pcg32 shuffle_rng(99);
  for (const auto& tick : ticks) {
    for (const auto& [x, y] : tick) forward.Add(x, y);
    forward.Commit();

    std::vector<std::pair<double, double>> perm = tick;
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[shuffle_rng.Below64(i)]);
    }
    for (const auto& [x, y] : perm) shuffled.Add(x, y);
    shuffled.Commit();
  }
  EXPECT_EQ(forward.slope(), shuffled.slope());  // bitwise
  EXPECT_EQ(forward.residual_scale(), shuffled.residual_scale());
  EXPECT_EQ(forward.samples(), shuffled.samples());
  EXPECT_EQ(forward.outliers(), shuffled.outliers());
}

TEST(CalibrateFit, ConfidenceGateHoldsUntilMinSamples) {
  FitConfig config;
  config.min_samples = 6;
  LinearFit fit(config);
  for (int i = 0; i < 5; ++i) {
    fit.Add(1.0e6, 1.0e-3);
    fit.Commit();
    EXPECT_FALSE(fit.confident()) << "after " << i + 1 << " samples";
  }
  fit.Add(1.0e6, 1.0e-3);
  fit.Commit();
  EXPECT_TRUE(fit.confident());
  EXPECT_DOUBLE_EQ(fit.rate(), 1.0e9);
}

TEST(CalibrateFit, RejectsNonPositiveAndNonFiniteSamples) {
  LinearFit fit;
  fit.Add(0.0, 1.0);
  fit.Add(-5.0, 1.0);
  fit.Add(1.0, -1.0);
  fit.Add(std::nan(""), 1.0);
  fit.Add(1.0, std::numeric_limits<double>::infinity());
  fit.Commit();
  EXPECT_EQ(fit.samples(), 0);
  EXPECT_FALSE(fit.confident());
  EXPECT_EQ(fit.rate(), 0.0);
}

TEST(CalibrateFit, WinsorizationResistsOneWildOutlier) {
  constexpr double kTrueRate = 1.0e9;
  LinearFit fit;
  Pcg32 rng(11);
  for (int tick = 0; tick < 10; ++tick) {
    for (int i = 0; i < 4; ++i) {
      const double x = rng.Uniform(1.0e6, 1.0e7);
      fit.Add(x, x / kTrueRate * LognormalNoise(rng, 0.02));
    }
    fit.Commit();
  }
  ASSERT_TRUE(fit.confident());
  const double before = fit.rate();

  // One 100x-slow sample amid a normal tick: winsorized, not believed.
  fit.Add(5.0e6, 5.0e6 / kTrueRate * 100.0);
  for (int i = 0; i < 3; ++i) {
    const double x = rng.Uniform(1.0e6, 1.0e7);
    fit.Add(x, x / kTrueRate * LognormalNoise(rng, 0.02));
  }
  fit.Commit();
  EXPECT_GE(fit.outliers(), 1);
  EXPECT_NEAR(fit.rate(), before, 0.20 * before);
}

TEST(CalibrateFit, PersistentShiftEventuallyTracked) {
  // A degraded device is not an outlier: after the shift every sample
  // keeps pulling, and the EWMA decay forgets the old regime.
  constexpr double kOldRate = 1.0e9;
  constexpr double kNewRate = 2.5e8;  // 4x slower
  LinearFit fit;
  Pcg32 rng(13);
  for (int tick = 0; tick < 10; ++tick) {
    for (int i = 0; i < 4; ++i) {
      const double x = rng.Uniform(1.0e6, 1.0e7);
      fit.Add(x, x / kOldRate * LognormalNoise(rng, 0.02));
    }
    fit.Commit();
  }
  ASSERT_NEAR(fit.rate(), kOldRate, 0.1 * kOldRate);
  for (int tick = 0; tick < 40; ++tick) {
    for (int i = 0; i < 4; ++i) {
      const double x = rng.Uniform(1.0e6, 1.0e7);
      fit.Add(x, x / kNewRate * LognormalNoise(rng, 0.02));
    }
    fit.Commit();
  }
  EXPECT_NEAR(fit.rate(), kNewRate, 0.25 * kNewRate);
}

TEST(CalibrateFit, OverheadRateFitSeparatesOverheadFromRate) {
  constexpr double kOverhead = 1.0e-5;   // seconds per launch
  constexpr double kRate = 1.0e9;        // flops per second
  OverheadRateFit fit({}, /*static_overhead=*/5.0e-6);
  Pcg32 rng(17);
  for (int tick = 0; tick < 12; ++tick) {
    // Varying flops-per-launch across samples keeps the normal equations
    // well conditioned, so the two terms separate.
    for (int i = 0; i < 4; ++i) {
      const double launches = rng.Uniform(4.0, 64.0);
      const double flops = rng.Uniform(1.0e5, 1.0e8);
      fit.Add(launches, flops, kOverhead * launches + flops / kRate);
    }
    fit.Commit();
  }
  ASSERT_TRUE(fit.confident());
  EXPECT_TRUE(fit.overhead_resolved());
  EXPECT_NEAR(fit.overhead(), kOverhead, 0.05 * kOverhead);
  EXPECT_NEAR(fit.rate(), kRate, 0.05 * kRate);
}

TEST(CalibrateFit, EffectiveRateChargesLaunchOverheadToThroughput) {
  // A delay-degraded device: huge per-launch overhead, healthy marginal
  // rate.  The marginal rate() recovers the compute term, but the
  // effective rate — what a scheduler actually gets — must be dominated by
  // the overhead, because that is the signal the hybrid-split and
  // placement levers steer on.
  constexpr double kOverhead = 0.02;  // seconds per launch (a delay fault)
  constexpr double kRate = 1.0e9;
  OverheadRateFit fit({}, /*static_overhead=*/5.0e-6);
  Pcg32 rng(23);
  double total_flops = 0.0, total_seconds = 0.0;
  for (int tick = 0; tick < 12; ++tick) {
    for (int i = 0; i < 4; ++i) {
      const double launches = rng.Uniform(4.0, 64.0);
      const double flops = rng.Uniform(1.0e5, 1.0e8);
      const double seconds = kOverhead * launches + flops / kRate;
      total_flops += flops;
      total_seconds += seconds;
      fit.Add(launches, flops, seconds);
    }
    fit.Commit();
  }
  ASSERT_TRUE(fit.confident());
  // Marginal rate separates the compute term; effective rate is pinned to
  // the observed flops-over-seconds throughput, orders of magnitude lower.
  EXPECT_NEAR(fit.rate(), kRate, 0.05 * kRate);
  EXPECT_LT(fit.effective_rate(), 0.1 * fit.rate());
  // Same ballpark as the unweighted aggregate throughput (EWMA weighting
  // tilts toward recent ticks, so exact equality is not expected).
  const double aggregate = total_flops / total_seconds;
  EXPECT_GT(fit.effective_rate(), 0.2 * aggregate);
  EXPECT_LT(fit.effective_rate(), 5.0 * aggregate);
}

TEST(CalibrateFit, OverheadRateFitCollinearFallsBackToStaticOverhead) {
  // Every sample has the same flops-per-launch: the system cannot separate
  // overhead from rate, so the fit pins the static overhead and fits the
  // remainder as pure rate.
  constexpr double kStaticOverhead = 1.0e-5;
  constexpr double kRate = 2.0e9;
  OverheadRateFit fit({}, kStaticOverhead);
  for (int tick = 0; tick < 8; ++tick) {
    const double launches = 10.0;
    const double flops = 1.0e7;  // constant ratio across all samples
    fit.Add(launches, flops, kStaticOverhead * launches + flops / kRate);
    fit.Commit();
  }
  ASSERT_TRUE(fit.confident());
  EXPECT_FALSE(fit.overhead_resolved());
  EXPECT_DOUBLE_EQ(fit.overhead(), kStaticOverhead);
  EXPECT_NEAR(fit.rate(), kRate, 0.01 * kRate);
}

TEST(CalibrateFit, OverheadRateFitIsOrderInvariantWithinATick) {
  Pcg32 rng(23);
  OverheadRateFit forward({}, 8.0e-6), reversed({}, 8.0e-6);
  for (int tick = 0; tick < 6; ++tick) {
    std::vector<std::array<double, 3>> samples;
    for (int i = 0; i < 5; ++i) {
      samples.push_back({rng.Uniform(1.0, 32.0), rng.Uniform(1.0e5, 1.0e7),
                         rng.Uniform(1.0e-4, 1.0e-2)});
    }
    for (const auto& s : samples) forward.Add(s[0], s[1], s[2]);
    for (auto it = samples.rbegin(); it != samples.rend(); ++it) {
      reversed.Add((*it)[0], (*it)[1], (*it)[2]);
    }
    forward.Commit();
    reversed.Commit();
  }
  EXPECT_EQ(forward.rate(), reversed.rate());  // bitwise
  EXPECT_EQ(forward.overhead(), reversed.overhead());
  EXPECT_EQ(forward.samples(), reversed.samples());
}

}  // namespace
}  // namespace oocgemm::calibrate
