#include "core/device_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace oocgemm::core {
namespace {

struct PoolFixture {
  std::vector<std::unique_ptr<vgpu::Device>> storage;
  std::vector<vgpu::Device*> devices;
  std::unique_ptr<DevicePool> pool;

  /// One device per entry of `mem_mib`, so heterogeneous fleets are a
  /// one-liner.
  explicit PoolFixture(const std::vector<int>& mem_mib) {
    for (int mib : mem_mib) {
      vgpu::DeviceProperties props = vgpu::ScaledV100Properties(10);
      props.memory_bytes = static_cast<std::int64_t>(mib) << 20;
      storage.push_back(std::make_unique<vgpu::Device>(props));
      devices.push_back(storage.back().get());
    }
    pool = std::make_unique<DevicePool>(devices);
  }
};

TEST(DevicePool, TagsDevicesWithTheirIndex) {
  PoolFixture f({1, 1, 1});
  for (int i = 0; i < f.pool->size(); ++i) {
    EXPECT_EQ(f.pool->device(i).id(), i);
  }
}

TEST(DevicePool, LeastReservedDeviceWins) {
  PoolFixture f({1, 1, 1});
  ASSERT_TRUE(f.pool->arbiter(0).TryReserve(1000));
  ASSERT_TRUE(f.pool->arbiter(1).TryReserve(10));
  // Reserved bytes: 1000 / 10 / 0 — device 2 is least promised.
  DevicePool::Slot first = f.pool->TryAcquire();
  ASSERT_TRUE(first.held());
  EXPECT_EQ(first.index(), 2);
  // With 2 leased, the next-least-reserved free candidate is device 1.
  DevicePool::Slot second = f.pool->TryAcquire();
  ASSERT_TRUE(second.held());
  EXPECT_EQ(second.index(), 1);
  f.pool->arbiter(0).Unreserve(1000);
  f.pool->arbiter(1).Unreserve(10);
}

TEST(DevicePool, SaturatedDevicesAreSkipped) {
  PoolFixture f({1, 1});
  DevicePool::Slot a = f.pool->TryAcquire();
  DevicePool::Slot b = f.pool->TryAcquire();
  ASSERT_TRUE(a.held() && b.held());
  EXPECT_NE(a.index(), b.index());
  // Every device leased: the pool is saturated.
  DevicePool::Slot c = f.pool->TryAcquire();
  EXPECT_FALSE(c.held());
  a.Release();
  DevicePool::Slot d = f.pool->TryAcquire();
  ASSERT_TRUE(d.held());
  EXPECT_EQ(d.index(), 0);
}

TEST(DevicePool, CapacityFilterKeepsBigJobsOffSmallDevices) {
  PoolFixture f({1, 8, 1});
  const std::int64_t big = 4ll << 20;  // only device 1 (8 MiB) fits this
  EXPECT_TRUE(f.pool->AnyDeviceFits(big));
  EXPECT_FALSE(f.pool->AnyDeviceFits(16ll << 20));
  for (int round = 0; round < 3; ++round) {
    DevicePool::Slot s = f.pool->TryAcquire(big);
    ASSERT_TRUE(s.held());
    EXPECT_EQ(s.index(), 1);
  }
  // With the only fitting device leased, TryAcquire must not fall back to
  // a too-small device, and Acquire must give up instead of waiting for a
  // device that can never fit.
  DevicePool::Slot held = f.pool->TryAcquire(big);
  ASSERT_TRUE(held.held());
  EXPECT_FALSE(f.pool->TryAcquire(big).held());
  EXPECT_FALSE(f.pool->Acquire(16ll << 20).held());
}

TEST(DevicePool, SingleDevicePoolDegeneratesToArbiter) {
  PoolFixture f({1});
  DevicePool::Slot s = f.pool->TryAcquire();
  ASSERT_TRUE(s.held());
  EXPECT_EQ(s.index(), 0);
  EXPECT_FALSE(f.pool->TryAcquire().held());
  EXPECT_EQ(f.pool->lease_count(), 1);
  EXPECT_EQ(f.pool->contention_count(), 1);
  s.Release();
  DevicePool::Slot again = f.pool->Acquire();
  EXPECT_TRUE(again.held());
  EXPECT_EQ(f.pool->total_capacity(), f.pool->max_device_capacity());
  EXPECT_EQ(f.pool->total_capacity(), f.pool->min_device_capacity());
}

TEST(DevicePool, TryAcquireFreeGrabsDistinctFreeDevices) {
  PoolFixture f({1, 1, 1, 1});
  DevicePool::Slot taken = f.pool->TryAcquire();
  ASSERT_TRUE(taken.held());
  std::vector<DevicePool::Slot> extras = f.pool->TryAcquireFree(8);
  EXPECT_EQ(extras.size(), 3u);
  for (const DevicePool::Slot& e : extras) {
    EXPECT_TRUE(e.held());
    EXPECT_NE(e.index(), taken.index());
  }
  // A capped request returns at most the cap.
  for (auto& e : extras) e.Release();
  EXPECT_EQ(f.pool->TryAcquireFree(2).size(), 2u);
}

TEST(DevicePool, AggregatesSumTheArbiters) {
  PoolFixture f({1, 1});
  ASSERT_TRUE(f.pool->arbiter(0).TryReserve(100));
  ASSERT_TRUE(f.pool->arbiter(1).TryReserve(200));
  EXPECT_EQ(f.pool->reserved_bytes(), 300);
  f.pool->arbiter(0).Unreserve(100);
  f.pool->arbiter(1).Unreserve(200);
  EXPECT_EQ(f.pool->reserved_bytes(), 0);
  EXPECT_EQ(f.pool->unreserve_underflows(), 0);
  EXPECT_EQ(f.pool->total_capacity(),
            f.devices[0]->capacity() + f.devices[1]->capacity());
}

TEST(DevicePool, AcquireBlocksUntilRelease) {
  PoolFixture f({1});
  DevicePool::Slot held = f.pool->TryAcquire();
  ASSERT_TRUE(held.held());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    DevicePool::Slot s = f.pool->Acquire();
    EXPECT_TRUE(s.held());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(acquired.load());
  held.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

// Run under TSan in CI: concurrent Acquire/TryAcquire/Release across many
// threads must never hand the same device to two holders at once.
TEST(DevicePool, ConcurrentAcquireNeverDoubleLeases) {
  PoolFixture f({1, 1, 1});
  std::vector<std::atomic<int>> holders(3);
  for (auto& h : holders) h.store(0);
  std::atomic<int> violations{0};
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        DevicePool::Slot s =
            (t + i) % 2 == 0 ? f.pool->Acquire() : f.pool->TryAcquire();
        if (!s.held()) continue;
        std::atomic<int>& h = holders[static_cast<std::size_t>(s.index())];
        if (h.fetch_add(1) != 0) violations.fetch_add(1);
        std::this_thread::yield();
        h.fetch_sub(1);
        s.Release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  // Everything released: the whole pool is free again.
  EXPECT_EQ(f.pool->TryAcquireFree(3).size(), 3u);
}

}  // namespace
}  // namespace oocgemm::core
