// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

namespace oocgemm::testutil {

/// Random sparse matrix with uniform structure.
inline sparse::Csr RandomCsr(sparse::index_t rows, sparse::index_t cols,
                             double avg_degree, std::uint64_t seed) {
  sparse::ErdosRenyiParams p;
  p.rows = rows;
  p.cols = cols;
  p.avg_degree = avg_degree;
  p.seed = seed;
  return sparse::GenerateErdosRenyi(p);
}

/// Random skewed square matrix (power-law rows).
inline sparse::Csr RandomRmat(int scale, double edge_factor,
                              std::uint64_t seed) {
  sparse::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  return sparse::GenerateRmat(p);
}

/// gtest assertion: structural and (approximate) value equality.
inline ::testing::AssertionResult CsrNear(const sparse::Csr& actual,
                                          const sparse::Csr& expected,
                                          double rel_tol = 1e-10) {
  if (actual.rows() != expected.rows() || actual.cols() != expected.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << actual.DebugString() << " vs "
           << expected.DebugString();
  }
  if (actual.row_offsets() != expected.row_offsets()) {
    return ::testing::AssertionFailure()
           << "row_offsets mismatch (" << actual.DebugString() << " vs "
           << expected.DebugString() << ")";
  }
  if (actual.col_ids() != expected.col_ids()) {
    return ::testing::AssertionFailure() << "col_ids mismatch";
  }
  if (!actual.ApproxEquals(expected, rel_tol, 1e-12)) {
    return ::testing::AssertionFailure() << "values mismatch";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace oocgemm::testutil
