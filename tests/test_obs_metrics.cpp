// Property tests for the observability core: the log-bucketed histogram's
// quantile bounds must bracket the exact order statistics of the recorded
// sample (and hence track common/stats.hpp Summarize percentiles to within
// one bucket's relative error), and Merge() of a split sample must equal
// the histogram of the whole sample bucket-for-bucket.
//
// Suites are named Metrics* so the CI TSan job's gtest filter picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::obs {
namespace {

// Standalone instruments still consult an enabled flag; always-on here.
std::atomic<bool> kOn{true};

// Deterministic heavy- and light-tailed samples: the distributions the
// histogram has to survive in production (latencies, chunk flop counts).
std::vector<double> Lognormal(std::size_t n, double mu, double sigma,
                              std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  while (out.size() < n) {
    // Box-Muller; u1 in (0, 1] to keep the log finite.
    const double u1 = 1.0 - rng.NextDouble();
    const double u2 = rng.NextDouble();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    out.push_back(std::exp(mu + sigma * z));
  }
  return out;
}

std::vector<double> Pareto(std::size_t n, double xm, double alpha,
                           std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<double> out;
  out.reserve(n);
  while (out.size() < n) {
    const double u = rng.NextDouble();  // [0, 1)
    out.push_back(xm / std::pow(1.0 - u, 1.0 / alpha));
  }
  return out;
}

// The histogram targets the rank-ceil(q*n) order statistic; Summarize
// interpolates between the order statistics adjacent to q*(n-1).  The two
// definitions differ by at most one rank, so the exact percentile lies
// within one neighbouring order statistic of the histogram's bucket — for
// the smooth samples used here that is well inside one extra bucket width
// on each side.
void ExpectQuantilesBracket(const std::vector<double>& samples,
                            int buckets_per_pow2) {
  LogBucketHistogram hist(&kOn, buckets_per_pow2);
  for (double v : samples) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();
  ASSERT_EQ(snap.count, static_cast<std::int64_t>(samples.size()));

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const Summary summary = Summarize(samples);

  const struct {
    double q;
    double exact;
  } probes[] = {{0.50, summary.p50},
                {0.90, summary.p90},
                {0.95, summary.p95},
                {0.99, summary.p99}};
  for (const auto& probe : probes) {
    SCOPED_TRACE("q=" + std::to_string(probe.q));
    const auto bounds = snap.QuantileBounds(probe.q);
    ASSERT_LE(bounds.first, bounds.second);

    // Hard guarantee: the bucket brackets the rank-ceil(q*n) sample.
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(probe.q * static_cast<double>(sorted.size()))));
    const double order_stat = sorted[rank - 1];
    EXPECT_LE(bounds.first, order_stat * (1.0 + 1e-12));
    EXPECT_GE(bounds.second, order_stat * (1.0 - 1e-12));

    // Relative-error guarantee against Summarize: widen each side by one
    // bucket's growth factor to absorb the one-rank definitional gap.
    EXPECT_LE(bounds.first / snap.growth * (1.0 - 1e-12), probe.exact);
    EXPECT_GE(bounds.second * snap.growth * (1.0 + 1e-12), probe.exact);
  }
}

TEST(MetricsHistogram, QuantilesBracketSummarizeLognormal) {
  ExpectQuantilesBracket(Lognormal(4000, 0.0, 1.0, 11),
                         LogBucketHistogram::kDefaultBucketsPerPow2);
  ExpectQuantilesBracket(Lognormal(4000, 2.5, 0.4, 12),
                         LogBucketHistogram::kDefaultBucketsPerPow2);
  ExpectQuantilesBracket(Lognormal(500, -3.0, 1.5, 13), 4);
}

TEST(MetricsHistogram, QuantilesBracketSummarizePareto) {
  ExpectQuantilesBracket(Pareto(4000, 1.0, 1.5, 21),
                         LogBucketHistogram::kDefaultBucketsPerPow2);
  ExpectQuantilesBracket(Pareto(4000, 0.01, 2.5, 22),
                         LogBucketHistogram::kDefaultBucketsPerPow2);
  ExpectQuantilesBracket(Pareto(800, 3.0, 1.1, 23), 16);
}

TEST(MetricsHistogram, MergeOfSplitSampleEqualsSingleHistogram) {
  const std::vector<double> samples = Pareto(3000, 0.5, 1.3, 31);

  LogBucketHistogram whole(&kOn);
  LogBucketHistogram left(&kOn), right(&kOn);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    whole.Record(samples[i]);
    (i % 3 == 0 ? left : right).Record(samples[i]);
  }
  LogBucketHistogram merged(&kOn);
  merged.MergeFrom(left);
  merged.MergeFrom(right);

  const HistogramSnapshot a = whole.Snapshot();
  const HistogramSnapshot b = merged.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.min, b.min);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_NEAR(a.sum, b.sum, 1e-9 * std::abs(a.sum));
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i].count, b.buckets[i].count) << "bucket " << i;
    EXPECT_DOUBLE_EQ(a.buckets[i].lower, b.buckets[i].lower);
    EXPECT_DOUBLE_EQ(a.buckets[i].upper, b.buckets[i].upper);
  }
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), b.Quantile(q));
  }
}

TEST(MetricsHistogram, NonPositiveAndNanLandInUnderflowBucket) {
  LogBucketHistogram hist(&kOn);
  hist.Record(0.0);
  hist.Record(-4.5);
  hist.Record(std::nan(""));
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3);
  ASSERT_FALSE(snap.buckets.empty());
  EXPECT_EQ(snap.buckets.front().count, 3);
  // All mass below the positive range: quantiles collapse to that bucket.
  const auto bounds = snap.QuantileBounds(0.5);
  EXPECT_EQ(bounds.first, bounds.second);
}

TEST(MetricsHistogram, EmptyQuantileIsZero) {
  LogBucketHistogram hist(&kOn);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
  // Degenerate q on an empty histogram stays {0, 0} too.
  EXPECT_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_EQ(snap.Quantile(1.0), 0.0);
  EXPECT_EQ(snap.Quantile(std::nan("")), 0.0);
}

// Regression: a single recorded sample used to hit the bucket arithmetic
// with rank 0 at q=0.0 (reading bucket -1) and, for a negative sample, the
// min/max clamp inverted against the zero bucket's [0, 0] bounds.  One
// sample must simply report itself at every q.
TEST(MetricsHistogram, SingleSampleQuantileIsTheSample) {
  for (double v : {3.75, -2.5, 0.0}) {
    SCOPED_TRACE("sample=" + std::to_string(v));
    LogBucketHistogram hist(&kOn);
    hist.Record(v);
    const HistogramSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, 1);
    for (double q : {0.0, 0.25, 0.5, 1.0}) {
      const auto bounds = snap.QuantileBounds(q);
      EXPECT_EQ(bounds.first, v) << "q=" << q;
      EXPECT_EQ(bounds.second, v) << "q=" << q;
    }
  }
}

// q outside [0, 1] clamps; q=0.0 reports the min bucket, q=1.0 the max
// bucket, and NaN q returns {0, 0} instead of poisoning the rank index.
TEST(MetricsHistogram, QuantileEdgeArgumentsAreWellDefined) {
  LogBucketHistogram hist(&kOn);
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) hist.Record(v);
  const HistogramSnapshot snap = hist.Snapshot();

  const auto lo = snap.QuantileBounds(0.0);
  EXPECT_LE(lo.first, 1.0);
  EXPECT_GE(lo.second * snap.growth, 1.0);
  const auto hi = snap.QuantileBounds(1.0);
  EXPECT_EQ(hi.second, snap.max);
  EXPECT_EQ(snap.QuantileBounds(-3.0), snap.QuantileBounds(0.0));
  EXPECT_EQ(snap.QuantileBounds(7.0), snap.QuantileBounds(1.0));
  const auto nan_bounds = snap.QuantileBounds(std::nan(""));
  EXPECT_EQ(nan_bounds.first, 0.0);
  EXPECT_EQ(nan_bounds.second, 0.0);
}

TEST(MetricsRegistryApi, InstrumentsAccumulateAndSnapshotReads) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("unit_requests", {{"tenant", "a"}}, "help");
  c.Add(3);
  c.Add();
  reg.GetGauge("unit_depth").Set(7);
  reg.GetGauge("unit_depth").Add(-2);
  reg.GetDoubleCounter("unit_seconds").Add(0.5);
  reg.GetHistogram("unit_latency").Record(1.0);

  const RegistrySnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("unit_requests", {{"tenant", "a"}}), 4.0);
  EXPECT_DOUBLE_EQ(snap.Value("unit_depth"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Value("unit_seconds"), 0.5);
  const HistogramSnapshot* h = snap.Histogram("unit_latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);

  // Same (name, labels) resolves to the same instrument; a different label
  // set is a distinct point under the same family.
  reg.GetCounter("unit_requests", {{"tenant", "b"}}).Add(9);
  EXPECT_DOUBLE_EQ(
      reg.Snapshot().Value("unit_requests", {{"tenant", "b"}}), 9.0);
  EXPECT_DOUBLE_EQ(
      reg.Snapshot().Value("unit_requests", {{"tenant", "a"}}), 4.0);
}

TEST(MetricsRegistryApi, LabelOrderDoesNotSplitInstruments) {
  MetricsRegistry reg;
  reg.GetCounter("unit_lbl", {{"a", "1"}, {"b", "2"}}).Add(1);
  reg.GetCounter("unit_lbl", {{"b", "2"}, {"a", "1"}}).Add(1);
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("unit_lbl", {{"a", "1"}, {"b", "2"}}),
                   2.0);
}

TEST(MetricsRegistryApi, DisabledRegistryDropsWritesButKeepsValues) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("unit_c");
  LogBucketHistogram& h = reg.GetHistogram("unit_h");
  c.Add(5);
  h.Record(2.0);
  reg.set_enabled(false);
  c.Add(100);
  h.Record(2.0);
  reg.GetGauge("unit_g").Set(42);
  reg.set_enabled(true);
  EXPECT_EQ(c.Value(), 5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("unit_g"), 0.0);
}

TEST(MetricsRegistryApi, ResetForTestZeroesInPlace) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("unit_reset");
  LogBucketHistogram& h = reg.GetHistogram("unit_reset_h");
  c.Add(7);
  h.Record(1.5);
  reg.ResetForTest();
  // References stay valid and usable after the reset.
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(h.Count(), 0);
  c.Add(2);
  EXPECT_DOUBLE_EQ(reg.Snapshot().Value("unit_reset"), 2.0);
}

}  // namespace
}  // namespace oocgemm::obs
