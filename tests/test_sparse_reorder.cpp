#include "sparse/reorder.hpp"

#include <gtest/gtest.h>

#include "kernels/reference_spgemm.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace oocgemm::sparse {
namespace {

TEST(Permutations, IsPermutationDetectsDefects) {
  EXPECT_TRUE(IsPermutation({2, 0, 1}));
  EXPECT_TRUE(IsPermutation({}));
  EXPECT_FALSE(IsPermutation({0, 0, 1}));   // duplicate
  EXPECT_FALSE(IsPermutation({0, 3, 1}));   // out of range
  EXPECT_FALSE(IsPermutation({0, -1, 1}));  // negative
}

TEST(Permutations, InverseComposesToIdentity) {
  Permutation perm = RandomPermutation(100, 7);
  Permutation inv = InversePermutation(perm);
  for (index_t i = 0; i < 100; ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])],
              i);
  }
}

TEST(Permutations, RandomIsValidAndSeedDependent) {
  EXPECT_TRUE(IsPermutation(RandomPermutation(500, 1)));
  EXPECT_NE(RandomPermutation(500, 1), RandomPermutation(500, 2));
  EXPECT_EQ(RandomPermutation(500, 3), RandomPermutation(500, 3));
}

TEST(PermuteSymmetric, PreservesSpectrumProxy) {
  // P A P^T preserves values multiset, nnz and symmetry of the pattern.
  Csr a = Symmetrize(testutil::RandomCsr(40, 40, 3.0, 1));
  Permutation perm = RandomPermutation(a.rows(), 5);
  Csr p = PermuteSymmetric(a, perm);
  EXPECT_EQ(p.nnz(), a.nnz());
  EXPECT_TRUE(p == Transpose(p));
  std::vector<value_t> va = a.values(), vp = p.values();
  std::sort(va.begin(), va.end());
  std::sort(vp.begin(), vp.end());
  EXPECT_EQ(va, vp);
}

TEST(PermuteSymmetric, InverseRestoresOriginal) {
  Csr a = testutil::RandomCsr(32, 32, 4.0, 2);
  Permutation perm = RandomPermutation(32, 9);
  Csr back = PermuteSymmetric(PermuteSymmetric(a, perm),
                              InversePermutation(perm));
  EXPECT_TRUE(back == a);
}

TEST(PermuteRowsCols, ComposeToSymmetricPermutation) {
  Csr a = testutil::RandomCsr(24, 24, 3.0, 3);
  Permutation perm = RandomPermutation(24, 11);
  Csr via_parts = PermuteCols(PermuteRows(a, perm), perm);
  Csr direct = PermuteSymmetric(a, perm);
  EXPECT_TRUE(via_parts == direct);
}

TEST(PermuteRows, MovesRowsIntact) {
  Csr a = testutil::RandomCsr(10, 16, 3.0, 4);
  Permutation perm = RandomPermutation(10, 13);
  Csr p = PermuteRows(a, perm);
  for (index_t r = 0; r < 10; ++r) {
    const index_t nr = perm[static_cast<std::size_t>(r)];
    ASSERT_EQ(p.row_nnz(nr), a.row_nnz(r));
    for (offset_t k = 0; k < a.row_nnz(r); ++k) {
      EXPECT_EQ(p.col_ids()[static_cast<std::size_t>(p.row_begin(nr) + k)],
                a.col_ids()[static_cast<std::size_t>(a.row_begin(r) + k)]);
    }
  }
}

TEST(DegreeDescendingOrder, SortsRowsByNnz) {
  Csr a = testutil::RandomRmat(8, 8.0, 5);
  Permutation perm = DegreeDescendingOrder(a);
  ASSERT_TRUE(IsPermutation(perm));
  Csr sorted = PermuteRows(a, perm);
  for (index_t r = 1; r < sorted.rows(); ++r) {
    EXPECT_LE(sorted.row_nnz(r), sorted.row_nnz(r - 1));
  }
}

TEST(ReverseCuthillMcKee, ReducesBandwidthOfShuffledBand) {
  BandedParams params;
  params.n = 512;
  params.half_bandwidth = 4;
  Csr band = GenerateBanded(params);
  // Scramble, then ask RCM to recover locality.
  Csr shuffled = PermuteSymmetric(band, RandomPermutation(512, 17));
  const index_t before = Bandwidth(shuffled);
  Permutation rcm = ReverseCuthillMcKee(shuffled);
  ASSERT_TRUE(IsPermutation(rcm));
  const index_t after = Bandwidth(PermuteSymmetric(shuffled, rcm));
  EXPECT_LT(after * 5, before);  // dramatic reduction
  EXPECT_LE(after, 4 * params.half_bandwidth);  // near the original band
}

TEST(ReverseCuthillMcKee, HandlesDisconnectedGraphs) {
  // Two components + isolated vertices.
  Coo coo;
  coo.rows = coo.cols = 10;
  coo.Add(0, 1, 1.0);
  coo.Add(1, 0, 1.0);
  coo.Add(5, 6, 1.0);
  coo.Add(6, 5, 1.0);
  Permutation rcm = ReverseCuthillMcKee(CooToCsr(coo));
  EXPECT_TRUE(IsPermutation(rcm));
}

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(Bandwidth(Identity(5)), 0);
  BandedParams p;
  p.n = 64;
  p.half_bandwidth = 3;
  EXPECT_EQ(Bandwidth(GenerateBanded(p)), 3);
  EXPECT_EQ(Bandwidth(Csr(4, 4)), 0);
}

TEST(PermuteSymmetric, ProductCommutesWithPermutation) {
  // P(AB)P^T == (PAP^T)(PBP^T): the SpGEMM ordering study's foundation.
  Csr a = testutil::RandomCsr(30, 30, 3.0, 6);
  Csr b = testutil::RandomCsr(30, 30, 3.0, 7);
  Permutation perm = RandomPermutation(30, 19);
  Csr lhs = PermuteSymmetric(kernels::ReferenceSpgemm(a, b), perm);
  Csr rhs = kernels::ReferenceSpgemm(PermuteSymmetric(a, perm),
                                     PermuteSymmetric(b, perm));
  EXPECT_TRUE(testutil::CsrNear(rhs, lhs));
}

}  // namespace
}  // namespace oocgemm::sparse
