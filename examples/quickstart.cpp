// Quickstart: multiply two sparse matrices that do not fit in (virtual)
// device memory, using the paper's asynchronous out-of-core pipeline, and
// check the result against a reference computation.
//
//   ./examples/quickstart [scale]
//
// `scale` (default 11) sets the matrix size to 2^scale rows.
#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "kernels/reference_spgemm.hpp"
#include "sparse/generators.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace oocgemm;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 11;

  // 1. Build a sparse matrix (a power-law graph, like the paper's inputs).
  sparse::RmatParams params;
  params.scale = scale;
  params.edge_factor = 8.0;
  params.seed = 42;
  sparse::Csr a = sparse::GenerateRmat(params);
  std::printf("A: %s (%s)\n", a.DebugString().c_str(),
              HumanBytes(a.StorageBytes()).c_str());

  // 2. Create a virtual GPU whose memory is far too small to hold A^2 —
  //    the out-of-core regime of the paper.
  vgpu::Device device(vgpu::ScaledV100Properties(/*mem_shift=*/10));  // 16 MiB
  std::printf("Device: %s, %s memory\n", device.properties().name.c_str(),
              HumanBytes(device.capacity()).c_str());

  // 3. Multiply C = A * A with the asynchronous out-of-core executor.
  ThreadPool pool;
  core::ExecutorOptions options;
  auto result = core::AsyncOutOfCore(device, a, a, options, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "multiply failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const core::RunStats& s = result->stats;
  std::printf("C: %s\n", result->c.DebugString().c_str());
  std::printf("panels: %d x %d (%d chunks), pool %s\n", s.num_row_panels,
              s.num_col_panels, s.num_chunks, "per-slot");
  std::printf("virtual time: %s  =>  %.3f GFLOPS\n",
              HumanSeconds(s.total_seconds).c_str(), s.gflops());
  std::printf("transfer fraction (D2H): %.1f%%, overlap factor %.2f\n",
              100.0 * s.d2h_fraction, s.overlap_factor);

  // 4. Verify against the reference implementation.
  sparse::Csr expected = kernels::ReferenceSpgemm(a, a);
  if (!result->c.ApproxEquals(expected)) {
    std::fprintf(stderr, "FAILED: result does not match reference!\n");
    return 1;
  }
  if (!device.hazard_violations().empty()) {
    std::fprintf(stderr, "FAILED: %zu virtual-time data races detected\n",
                 device.hazard_violations().size());
    for (const auto& v : device.hazard_violations()) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("verified: matches reference, no data races.\n");
  return 0;
}
