// Graph analytics with out-of-core SpGEMM: counting length-2 paths and
// estimating triangle counts on a power-law graph — the "graph algorithms"
// motivation from the paper's introduction (A^2 over an adjacency matrix).
//
//   ./examples/graph_analytics [scale]
//
// For an adjacency matrix A of an undirected graph with unit weights:
//   (A^2)[i][j]  = number of length-2 paths i -> * -> j
//   triangles(i) = sum over neighbours j of (A^2)[i][j], / 2
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "kernels/masked_spgemm.hpp"
#include "sparse/generators.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace oocgemm;
  using sparse::index_t;
  using sparse::offset_t;

  const int scale = argc > 1 ? std::atoi(argv[1]) : 12;

  // Undirected social-network-like graph with unit weights.
  sparse::RmatParams params;
  params.scale = scale;
  params.edge_factor = 10.0;
  params.symmetric = true;
  params.seed = 7;
  sparse::Csr a = sparse::GenerateRmat(params);
  for (auto& v : a.mutable_values()) v = 1.0;  // pattern-only semantics
  std::printf("graph: %d vertices, %lld directed edges\n", a.rows(),
              static_cast<long long>(a.nnz()));

  // The path-count matrix does not fit on the (virtual) GPU: compute it
  // out-of-core with the hybrid CPU+GPU executor.
  vgpu::Device device(vgpu::ScaledV100Properties(10));
  ThreadPool pool;
  core::ExecutorOptions options;
  auto result = core::Hybrid(device, a, a, options, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const sparse::Csr& paths = result->c;
  std::printf("path-count matrix: %s (%s on host)\n",
              paths.DebugString().c_str(),
              HumanBytes(paths.StorageBytes()).c_str());
  std::printf("virtual time %s (%.2f GFLOPS, %d GPU + %d CPU chunks)\n",
              HumanSeconds(result->stats.total_seconds).c_str(),
              result->stats.gflops(), result->stats.num_gpu_chunks,
              result->stats.num_cpu_chunks);

  // Triangles per vertex: sum_j in N(i) of paths[i][j], halved (each
  // triangle contributes two ordered paths).
  std::vector<double> triangles(static_cast<std::size_t>(a.rows()), 0.0);
  double total_triangles = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    offset_t pa = a.row_begin(i);
    for (offset_t kp = paths.row_begin(i); kp < paths.row_end(i); ++kp) {
      const index_t j = paths.col_ids()[static_cast<std::size_t>(kp)];
      while (pa < a.row_end(i) &&
             a.col_ids()[static_cast<std::size_t>(pa)] < j) {
        ++pa;
      }
      if (pa < a.row_end(i) &&
          a.col_ids()[static_cast<std::size_t>(pa)] == j) {
        triangles[static_cast<std::size_t>(i)] +=
            paths.values()[static_cast<std::size_t>(kp)];
      }
    }
    triangles[static_cast<std::size_t>(i)] /= 2.0;
    total_triangles += triangles[static_cast<std::size_t>(i)];
  }
  total_triangles /= 3.0;  // each triangle counted at all three corners

  // Cross-check with the masked-SpGEMM fast path (GraphBLAS style): it
  // never materializes the full path-count matrix.
  const std::int64_t masked_triangles = kernels::CountTriangles(a, pool);
  if (masked_triangles != static_cast<std::int64_t>(total_triangles + 0.5)) {
    std::fprintf(stderr,
                 "FAILED: masked count %lld != full-product count %.0f\n",
                 static_cast<long long>(masked_triangles), total_triangles);
    return 1;
  }
  std::printf("masked-SpGEMM cross-check: %lld triangles (agrees)\n",
              static_cast<long long>(masked_triangles));

  std::vector<index_t> order(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) order[static_cast<std::size_t>(i)] = i;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](index_t x, index_t y) {
                      return triangles[static_cast<std::size_t>(x)] >
                             triangles[static_cast<std::size_t>(y)];
                    });

  std::printf("total triangles: %.0f\n", total_triangles);
  std::printf("top-5 vertices by triangle count:\n");
  for (int k = 0; k < 5; ++k) {
    const index_t v = order[static_cast<std::size_t>(k)];
    std::printf("  vertex %6d: degree %4lld, triangles %.0f\n", v,
                static_cast<long long>(a.row_nnz(v)),
                triangles[static_cast<std::size_t>(v)]);
  }
  return 0;
}
