// Tuning the hybrid executor's GPU/CPU work split (the paper's Fig. 10
// experiment as a user-facing workflow): sweep the flop ratio on a sample
// of the workload, then run the full problem at the best setting.
//
//   ./examples/hybrid_tuning [abbr]    (a Table II matrix, default com-lj)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "sparse/datasets.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace oocgemm;

  const std::string abbr = argc > 1 ? argv[1] : "com-lj";
  sparse::DatasetSpec spec = sparse::PaperMatrix(abbr);
  sparse::Csr a = spec.build();
  std::printf("matrix: %s stand-in, %s\n", spec.name.c_str(),
              a.DebugString().c_str());

  ThreadPool pool;

  // Tune on a smaller instance of the same structure (cheap sweep).
  sparse::Csr tune = sparse::PaperMatrix(abbr, /*scale_shift=*/2).build();
  double best_ratio = 0.65, best_gflops = 0.0;
  std::printf("\ntuning sweep on a 1/16-size instance:\n");
  for (int pct = 45; pct <= 90; pct += 5) {
    core::ExecutorOptions options;
    options.gpu_ratio = pct / 100.0;
    vgpu::Device device(vgpu::ScaledV100Properties(14));
    auto r = core::Hybrid(device, tune, tune, options, pool);
    if (!r.ok()) continue;
    std::printf("  ratio %.2f -> %.3f GFLOPS\n", options.gpu_ratio,
                r->stats.gflops());
    if (r->stats.gflops() > best_gflops) {
      best_gflops = r->stats.gflops();
      best_ratio = options.gpu_ratio;
    }
  }
  std::printf("best ratio on the tuning instance: %.2f\n", best_ratio);

  // Full run at the tuned ratio vs the library default.
  auto run_full = [&](double ratio) {
    core::ExecutorOptions options;
    options.gpu_ratio = ratio;
    vgpu::Device device(vgpu::ScaledV100Properties(10));
    auto r = core::Hybrid(device, a, a, options, pool);
    OOC_CHECK(r.ok());
    std::printf("  ratio %.2f: %s, %.3f GFLOPS (%d GPU / %d CPU chunks)\n",
                ratio, HumanSeconds(r->stats.total_seconds).c_str(),
                r->stats.gflops(), r->stats.num_gpu_chunks,
                r->stats.num_cpu_chunks);
    return r->stats.gflops();
  };
  std::printf("\nfull-size runs:\n");
  const double tuned = run_full(best_ratio);
  const double fixed = run_full(core::ExecutorOptions{}.gpu_ratio);
  std::printf("\ntuned/default: %.3f  (the paper's finding: a fixed "
              "S/(S+1) ratio is nearly always already optimal)\n",
              tuned / fixed);
  return 0;
}
