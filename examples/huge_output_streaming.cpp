// Stress demonstration of the out-of-core regime: a product whose output
// exceeds device memory by two orders of magnitude, streamed chunk by
// chunk exactly as in the paper (com-LiveJournal's A^2 is ~70x its input
// and ~4x the V100's memory; here we push further).
//
//   ./examples/huge_output_streaming [mem_shift]
//
// `mem_shift` shrinks the virtual device: 13 -> 2 MiB (default), forcing
// dozens of chunks.  The example prints the chunk schedule statistics and
// verifies the device never exceeded its memory.
#include <cstdio>
#include <cstdlib>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "sparse/analysis.hpp"
#include "sparse/generators.hpp"
#include "vgpu/device.hpp"

int main(int argc, char** argv) {
  using namespace oocgemm;

  const int mem_shift = argc > 1 ? std::atoi(argv[1]) : 13;

  sparse::RmatParams params;
  params.scale = 13;
  params.edge_factor = 12.0;
  params.seed = 11;
  sparse::Csr a = sparse::GenerateRmat(params);

  vgpu::Device device(vgpu::ScaledV100Properties(mem_shift));
  std::printf("device memory: %s\n", HumanBytes(device.capacity()).c_str());
  std::printf("input A:       %s\n", HumanBytes(a.StorageBytes()).c_str());

  ThreadPool pool;
  core::ExecutorOptions options;
  auto r = core::AsyncOutOfCore(device, a, a, options, pool);
  if (!r.ok()) {
    std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  const core::RunStats& s = r->stats;
  std::printf("output A^2:    %s  (%.1fx device memory)\n",
              HumanBytes(r->c.StorageBytes()).c_str(),
              static_cast<double>(r->c.StorageBytes()) /
                  static_cast<double>(device.capacity()));
  std::printf("\nschedule: %d chunks over %dx%d panels\n", s.num_chunks,
              s.num_row_panels, s.num_col_panels);
  std::printf("device peak usage: %s of %s (%.1f%%)\n",
              HumanBytes(s.device_peak_bytes).c_str(),
              HumanBytes(device.capacity()).c_str(),
              100.0 * static_cast<double>(s.device_peak_bytes) /
                  static_cast<double>(device.capacity()));
  std::printf("virtual time %s, D2H engine busy %s (%.1f%% of makespan)\n",
              HumanSeconds(s.total_seconds).c_str(),
              HumanSeconds(s.d2h_seconds).c_str(), 100.0 * s.d2h_fraction);
  std::printf("moved %s device->host, %s host->device\n",
              HumanBytes(s.bytes_d2h).c_str(), HumanBytes(s.bytes_h2d).c_str());

  if (s.device_peak_bytes > device.capacity()) {
    std::fprintf(stderr, "FAILED: device memory exceeded!\n");
    return 1;
  }
  if (!device.hazard_violations().empty()) {
    std::fprintf(stderr, "FAILED: data races in the schedule\n");
    return 1;
  }
  std::printf("\nOK: streamed a %s result through a %s device.\n",
              HumanBytes(r->c.StorageBytes()).c_str(),
              HumanBytes(device.capacity()).c_str());
  return 0;
}
