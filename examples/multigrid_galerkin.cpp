// Algebraic-multigrid Galerkin coarsening — the "numerical solvers"
// motivation from the paper's introduction.  The coarse-grid operator is
// the triple product A_c = R * A * P (restriction, fine operator,
// prolongation), computed as two chained out-of-core SpGEMMs.
//
//   ./examples/multigrid_galerkin [n_log2]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/format.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"
#include "vgpu/device.hpp"

namespace {

using namespace oocgemm;
using sparse::Csr;
using sparse::index_t;

/// Piecewise-constant aggregation prolongator: fine point i maps to coarse
/// aggregate i / 2 (pairwise aggregation).
Csr PairwiseProlongator(index_t fine_n) {
  sparse::Coo coo;
  coo.rows = fine_n;
  coo.cols = (fine_n + 1) / 2;
  for (index_t i = 0; i < fine_n; ++i) coo.Add(i, i / 2, 1.0);
  return sparse::CooToCsr(coo);
}

Csr Multiply(vgpu::Device& device, ThreadPool& pool, const Csr& x,
             const Csr& y, const char* label) {
  core::ExecutorOptions options;
  auto r = core::AsyncOutOfCore(device, x, y, options, pool);
  OOC_CHECK(r.ok());
  std::printf("  %-7s: %s in %s (%.2f GFLOPS, %d chunks)\n", label,
              r->c.DebugString().c_str(),
              HumanSeconds(r->stats.total_seconds).c_str(),
              r->stats.gflops(), r->stats.num_chunks);
  return std::move(r->c);
}

}  // namespace

int main(int argc, char** argv) {
  const int n_log2 = argc > 1 ? std::atoi(argv[1]) : 13;
  const index_t n = static_cast<index_t>(1) << n_log2;

  // Fine-grid operator: a diagonally dominant banded matrix (a 1-D
  // discretization with long-range couplings).
  sparse::BandedParams params;
  params.n = n;
  params.half_bandwidth = 6;
  params.seed = 3;
  Csr a = sparse::GenerateBanded(params);
  std::printf("fine operator A: %s\n", a.DebugString().c_str());

  vgpu::Device device(vgpu::ScaledV100Properties(10));
  ThreadPool pool;

  // Three grid levels of Galerkin coarsening: A_{l+1} = R_l A_l P_l.
  Csr level = a;
  for (int l = 0; l < 3; ++l) {
    std::printf("level %d -> %d:\n", l, l + 1);
    Csr p = PairwiseProlongator(level.rows());
    Csr r = sparse::Transpose(p);
    Csr ap = Multiply(device, pool, level, p, "A*P");
    Csr coarse = Multiply(device, pool, r, ap, "R*(AP)");
    // Galerkin invariant: the coarse operator keeps diagonal dominance of
    // this discretization (sanity check, not an assertion of the library).
    double diag = 0.0, off = 0.0;
    for (index_t i = 0; i < coarse.rows(); ++i) {
      for (auto k = coarse.row_begin(i); k < coarse.row_end(i); ++k) {
        const double v = coarse.values()[static_cast<std::size_t>(k)];
        if (coarse.col_ids()[static_cast<std::size_t>(k)] == i) {
          diag += v;
        } else {
          off += std::abs(v);
        }
      }
    }
    std::printf("  diagonal mass %.1f vs off-diagonal %.1f\n", diag, off);
    level = std::move(coarse);
  }
  std::printf("coarsest operator: %s\n", level.DebugString().c_str());
  return 0;
}
