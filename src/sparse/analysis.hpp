// Work analysis for C = A * B (Table II columns and the "row analysis"
// stage of the spECK-style pipeline).
//
// flop(C) counts a multiply-add as 2 flops, matching the paper.  The
// compression ratio flop / nnz(C) is the paper's key predictor of SpGEMM
// performance (Section V-C).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace oocgemm::sparse {

/// flops[i] = 2 * sum_{k in A_i*} nnz(B_k*); size a.rows().
std::vector<std::int64_t> RowFlops(const Csr& a, const Csr& b);

/// Total flops of the product (sum of RowFlops).
std::int64_t TotalFlops(const Csr& a, const Csr& b);

/// Exact nnz of each output row (a full symbolic pass with a sort-based
/// distinct-count; O(flop log flop) — analysis/oracle use only).
std::vector<std::int64_t> SymbolicRowNnz(const Csr& a, const Csr& b);

/// Exact nnz of the product.
std::int64_t SymbolicNnz(const Csr& a, const Csr& b);

/// Upper bound on output-row nnz: min(flops/2, b.cols()).  The "worst case"
/// estimator the paper considered and rejected for allocation (Section IV-B);
/// kept as an ablation baseline and as a hash-table sizing bound.
std::vector<std::int64_t> UpperBoundRowNnz(const Csr& a, const Csr& b);

/// Sampled-symbolic prediction of output-row sizes (the "probabilistic
/// memory requirement estimator" approach of pipelined Sparse SUMMA,
/// ref. [33] of the paper): exact symbolic counts on a row sample give the
/// matrix's collision factor nnz/products; unsampled rows are predicted
/// from their product counts.  Used by the panel planner to size output
/// pools far tighter than the worst-case bound the paper rejects.
struct RowNnzEstimate {
  /// Predicted nnz per output row (exact for sampled rows).
  std::vector<double> per_row;
  /// Measured nnz/products ratio on the sample (1.0 = no collisions).
  double collision_factor = 1.0;
  std::int64_t sampled_rows = 0;
};

RowNnzEstimate EstimateRowNnz(const Csr& a, const Csr& b,
                              double sample_fraction = 0.05,
                              std::uint64_t seed = 1);

struct ProductStats {
  std::int64_t flops = 0;           // 2 * multiply count
  std::int64_t nnz_out = 0;         // exact nnz(C)
  double compression_ratio = 0.0;   // flops / nnz_out
  double avg_row_flops = 0.0;
  double max_row_flops = 0.0;
  double row_flops_gini = 0.0;      // skew of per-row work
};

/// One-stop analysis used by Table II and the dataset registry.
ProductStats AnalyzeProduct(const Csr& a, const Csr& b);

}  // namespace oocgemm::sparse
