// Matrix persistence: Matrix Market (the SuiteSparse interchange format the
// paper's matrices ship in) and a fast binary format for cached test inputs.
#pragma once

#include <string>

#include "common/status.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::sparse {

/// Reads a MatrixMarket "matrix coordinate real|integer|pattern
/// general|symmetric" file.  Pattern entries get value 1.0; symmetric files
/// are expanded to full storage.
StatusOr<Csr> ReadMatrixMarket(const std::string& path);

/// Writes `a` as "matrix coordinate real general" with 1-based indices.
Status WriteMatrixMarket(const Csr& a, const std::string& path);

/// Binary snapshot (magic + dims + raw arrays, little-endian host layout).
Status WriteBinary(const Csr& a, const std::string& path);
StatusOr<Csr> ReadBinary(const std::string& path);

}  // namespace oocgemm::sparse
