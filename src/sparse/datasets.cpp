#include "sparse/datasets.hpp"

#include "common/status.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/ops.hpp"

namespace oocgemm::sparse {

namespace {

// Stand-in generator families.  Sizes default to 2^13..2^15 rows (about
// 1/400 of the paper's matrices); structure parameters are tuned so each
// stand-in lands in the same compression-ratio class as its original
// (graphs ~1.5-3, stokes ~4-6, web/KKT ~7-12).  The measured features are
// reported next to the paper's by bench_table2_matrices.

Csr SocialGraph(int scale, double edge_factor, std::uint64_t seed) {
  CommunityGraphParams p;
  p.scale = scale;
  p.num_communities = 12;       // crawl-ordered communities of mixed density
  p.ef_min = edge_factor / 3.0;
  p.ef_max = edge_factor * 3.0;
  p.background_degree = 1.0;
  p.a = 0.45;  // milder skew than wiki: fewer product collisions => the
  p.b = 0.22;  // lowest compression-ratio class, as in Table II
  p.c = 0.22;
  p.symmetric = true;  // com-/soc-LiveJournal are (near-)undirected
  p.seed = seed;
  return GenerateCommunityGraph(p);
}

Csr WikiGraph(int scale, double edge_factor, std::uint64_t seed) {
  CommunityGraphParams p;
  p.scale = scale;
  p.num_communities = 12;
  p.ef_min = edge_factor / 3.0;
  p.ef_max = edge_factor * 3.0;
  p.background_degree = 1.5;
  p.a = 0.6;
  p.b = 0.2;
  p.c = 0.15;
  p.symmetric = false;  // wikipedia link graphs are directed
  p.seed = seed;
  return GenerateCommunityGraph(p);
}

Csr WebGraph(int scale, std::uint64_t seed) {
  // uk-2002: host-local link structure => strong banded backbone plus a
  // power-law long-range tail.  The overlap of neighbour lists drives the
  // high compression ratio.
  VariableBandedParams banded;
  banded.n = static_cast<index_t>(1) << scale;
  // Host blocks of very different local density (Table III shows the top
  // two chunks of uk-2002 hold >= 65% of the flops).  The dense host block
  // sits mid-crawl: nothing orders hosts by density.
  banded.segments = {{0.30, 5, 1}, {0.15, 14, 1}, {0.25, 9, 1}, {0.30, 5, 1}};
  banded.seed = seed;
  Csr local = GenerateVariableBanded(banded);

  RmatParams tail;
  tail.scale = scale;
  tail.edge_factor = 0.8;
  tail.a = 0.7;
  tail.b = 0.15;
  tail.c = 0.1;
  tail.permute_ids = false;  // web crawls keep host-local id locality
  tail.seed = seed + 17;
  Csr global = GenerateRmat(tail);

  // Structural union via value sum (duplicates merged by CooToCsr inside
  // Symmetrize path is unnecessary here; use ConcatRows trick instead).
  Coo merged;
  merged.rows = local.rows();
  merged.cols = local.cols();
  for (const Csr* m : {&local, &global}) {
    for (index_t r = 0; r < m->rows(); ++r) {
      for (offset_t k = m->row_begin(r); k < m->row_end(r); ++k) {
        merged.Add(r, m->col_ids()[static_cast<std::size_t>(k)],
                   m->values()[static_cast<std::size_t>(k)]);
      }
    }
  }
  return CooToCsr(merged);
}

Csr StokesLike(int scale, std::uint64_t seed) {
  // stokes: regular discretization with moderate compression ratio.  A
  // two-band structure (short dense band + sampled far band) keeps rows
  // regular but spreads the squared pattern.
  BandedParams near;
  near.n = static_cast<index_t>(1) << scale;
  near.half_bandwidth = 7;
  near.seed = seed;
  Csr a = GenerateBanded(near);

  BandedParams far;
  far.n = near.n;
  far.half_bandwidth = 600;
  far.stride = 120;
  far.seed = seed + 3;
  Csr b = GenerateBanded(far);

  Coo merged;
  merged.rows = a.rows();
  merged.cols = a.cols();
  for (const Csr* m : {&a, &b}) {
    for (index_t r = 0; r < m->rows(); ++r) {
      for (offset_t k = m->row_begin(r); k < m->row_end(r); ++k) {
        merged.Add(r, m->col_ids()[static_cast<std::size_t>(k)],
                   m->values()[static_cast<std::size_t>(k)]);
      }
    }
  }
  return CooToCsr(merged);
}

Csr NlpkktLike(int scale, std::uint64_t seed) {
  // KKT systems interleave blocks of different density (Hessian, Jacobian,
  // bound rows).  Two FEM-like regions of different block size give the
  // lumpy per-panel work that Table III reports (2-3 chunks hold 65% of
  // the flops) while keeping the high compression-ratio class.
  const index_t n = static_cast<index_t>(1) << scale;

  BlockFemParams dense;
  dense.num_blocks = (n / 4) / 6;   // a quarter of the rows, mid-matrix
  dense.block_size = 6;
  dense.couplings = 4;
  dense.seed = seed;
  Csr hess = GenerateBlockFem(dense);

  const index_t remaining = n - hess.rows();
  BlockFemParams regular1, regular2;
  regular1.num_blocks = (remaining / 2) / 4;
  regular1.block_size = 4;
  regular1.couplings = 3;
  regular1.seed = seed + 5;
  Csr body1 = GenerateBlockFem(regular1);
  regular2.num_blocks = (remaining - body1.rows()) / 4;
  regular2.block_size = 4;
  regular2.couplings = 3;
  regular2.seed = seed + 9;
  Csr body2 = GenerateBlockFem(regular2);

  // KKT layout: Jacobian rows, then the dense Hessian block, then the
  // remaining constraint rows — the dense region is interior.
  Coo merged;
  merged.rows = merged.cols = n;
  index_t base = 0;
  for (const Csr* part : {&body1, &hess, &body2}) {
    for (index_t r = 0; r < part->rows(); ++r) {
      for (offset_t k = part->row_begin(r); k < part->row_end(r); ++k) {
        merged.Add(base + r,
                   base + part->col_ids()[static_cast<std::size_t>(k)],
                   part->values()[static_cast<std::size_t>(k)]);
      }
    }
    base += part->rows();
  }
  return CooToCsr(merged);
}

}  // namespace

std::vector<DatasetSpec> PaperMatrices(int scale_shift) {
  OOC_CHECK(scale_shift >= 0 && scale_shift <= 6);
  const int g = 13 - scale_shift;   // graph stand-in scale (2^13 rows default)
  const int big = 14 - scale_shift; // larger matrices (stokes/uk/nlp)

  std::vector<DatasetSpec> v;
  v.push_back({"ljournal-2008", "lj2008",
               {5.36, 79.02, 7828.66, 4245.41, 1.84}, "social",
               [=] { return SocialGraph(g, 8.0, 1001); }});
  v.push_back({"com-LiveJournal", "com-lj",
               {4.00, 69.36, 8580.90, 4859.09, 1.77}, "social",
               [=] { return SocialGraph(g, 9.0, 1002); }});
  v.push_back({"soc-LiveJournal1", "soc-lj",
               {4.85, 68.99, 5915.63, 3366.05, 1.76}, "social",
               [=] { return SocialGraph(g, 7.5, 1003); }});
  v.push_back({"stokes", "stokes",
               {11.45, 349.32, 9424.18, 2115.15, 4.46}, "fem",
               [=] { return StokesLike(big, 1004); }});
  v.push_back({"uk-2002", "uk-2002",
               {18.52, 298.11, 29206.61, 3194.99, 9.14}, "web",
               [=] { return WebGraph(big, 1005); }});
  v.push_back({"wikipedia-20070206", "wiki0206",
               {3.57, 45.03, 12796.04, 4802.94, 2.66}, "wiki",
               [=] { return WikiGraph(g, 13.0, 1006); }});
  v.push_back({"nlpkkt200", "nlp",
               {16.24, 440.23, 24932.82, 2425.94, 10.28}, "kkt",
               [=] { return NlpkktLike(big, 1007); }});
  v.push_back({"wikipedia-20061104", "wiki1104",
               {3.15, 39.38, 10728.99, 4018.47, 2.67}, "wiki",
               [=] { return WikiGraph(g, 12.5, 1008); }});
  v.push_back({"wikipedia-20060925", "wiki0925",
               {2.98, 37.27, 10030.09, 3750.38, 2.67}, "wiki",
               [=] { return WikiGraph(g, 12.0, 1009); }});
  return v;
}

DatasetSpec PaperMatrix(const std::string& abbr, int scale_shift) {
  for (auto& d : PaperMatrices(scale_shift)) {
    if (d.abbr == abbr || d.name == abbr) return d;
  }
  OOC_CHECK(false && "unknown dataset abbreviation");
  return {};
}

}  // namespace oocgemm::sparse
