#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>

#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace oocgemm::sparse {

Csr GenerateRmat(const RmatParams& p) {
  OOC_CHECK(p.scale >= 1 && p.scale < 31);
  OOC_CHECK(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0);
  const index_t n = static_cast<index_t>(1) << p.scale;
  const std::int64_t target_edges =
      static_cast<std::int64_t>(p.edge_factor * static_cast<double>(n));
  Pcg32 rng(p.seed, /*stream=*/0x1);
  std::vector<index_t> relabel;
  if (p.permute_ids) {
    relabel.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) relabel[static_cast<std::size_t>(i)] = i;
    for (index_t i = n - 1; i > 0; --i) {  // Fisher-Yates
      const index_t j = static_cast<index_t>(
          rng.Below(static_cast<std::uint32_t>(i) + 1));
      std::swap(relabel[static_cast<std::size_t>(i)],
                relabel[static_cast<std::size_t>(j)]);
    }
  }
  Coo coo;
  coo.rows = coo.cols = n;
  coo.Reserve(static_cast<std::size_t>(target_edges));
  for (std::int64_t e = 0; e < target_edges; ++e) {
    index_t r = 0, c = 0;
    for (int level = 0; level < p.scale; ++level) {
      // Slightly perturb quadrant probabilities per level (standard R-MAT
      // "noise" that avoids exact self-similarity artifacts).
      const double noise = 0.95 + 0.1 * rng.NextDouble();
      const double aa = p.a * noise;
      const double ab = p.b * noise;
      const double ac = p.c * noise;
      const double norm = aa + ab + ac + (1.0 - p.a - p.b - p.c);
      const double u = rng.NextDouble() * norm;
      int quadrant;
      if (u < aa) {
        quadrant = 0;
      } else if (u < aa + ab) {
        quadrant = 1;
      } else if (u < aa + ab + ac) {
        quadrant = 2;
      } else {
        quadrant = 3;
      }
      r = static_cast<index_t>((r << 1) | (quadrant >> 1));
      c = static_cast<index_t>((c << 1) | (quadrant & 1));
    }
    if (p.remove_self_loops && r == c) continue;
    if (p.permute_ids) {
      r = relabel[static_cast<std::size_t>(r)];
      c = relabel[static_cast<std::size_t>(c)];
    }
    coo.Add(r, c, rng.Uniform(0.1, 1.0));
  }
  Csr a = CooToCsr(coo);
  if (p.symmetric) a = Symmetrize(a);
  return a;
}

Csr GenerateCommunityGraph(const CommunityGraphParams& p) {
  OOC_CHECK(p.scale >= 4 && p.num_communities >= 1);
  OOC_CHECK(p.ef_min > 0 && p.ef_max >= p.ef_min);
  const index_t n = static_cast<index_t>(1) << p.scale;
  const index_t community = n / p.num_communities;
  OOC_CHECK(community >= 2);
  Pcg32 rng(p.seed, /*stream=*/0x5);

  Coo merged;
  merged.rows = merged.cols = n;

  int community_scale = 0;
  while ((static_cast<index_t>(1) << community_scale) < community) {
    ++community_scale;
  }

  for (int k = 0; k < p.num_communities; ++k) {
    const index_t base = static_cast<index_t>(k) * community;
    const index_t size =
        (k + 1 == p.num_communities) ? n - base : community;
    // Log-uniform density per community.
    const double ef =
        p.ef_min * std::pow(p.ef_max / p.ef_min, rng.NextDouble());
    RmatParams local;
    local.scale = community_scale;
    local.edge_factor = ef;
    local.a = p.a;
    local.b = p.b;
    local.c = p.c;
    local.symmetric = false;        // symmetrized at the end if requested
    local.permute_ids = true;       // hubs dispersed inside the community
    local.seed = p.seed * 131 + static_cast<std::uint64_t>(k);
    Csr sub = GenerateRmat(local);
    for (index_t r = 0; r < sub.rows(); ++r) {
      if (r >= size) break;
      for (offset_t e = sub.row_begin(r); e < sub.row_end(r); ++e) {
        const index_t c = sub.col_ids()[static_cast<std::size_t>(e)];
        if (c >= size) continue;
        merged.Add(base + r, base + c,
                   sub.values()[static_cast<std::size_t>(e)]);
      }
    }
  }

  // Sparse uniform background connecting communities.
  const std::int64_t background = static_cast<std::int64_t>(
      p.background_degree * static_cast<double>(n));
  for (std::int64_t e = 0; e < background; ++e) {
    const index_t r = static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(n)));
    const index_t c = static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(n)));
    if (r == c) continue;
    merged.Add(r, c, rng.Uniform(0.1, 1.0));
  }

  Csr g = CooToCsr(merged);
  if (p.symmetric) g = Symmetrize(g);
  return g;
}

Csr GenerateVariableBanded(const VariableBandedParams& p) {
  OOC_CHECK(p.n > 0 && !p.segments.empty());
  Pcg32 rng(p.seed, /*stream=*/0x6);
  Coo coo;
  coo.rows = coo.cols = p.n;
  index_t row = 0;
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const auto& seg = p.segments[s];
    OOC_CHECK(seg.half_bandwidth >= 0 && seg.stride >= 1);
    index_t end = (s + 1 == p.segments.size())
                      ? p.n
                      : std::min<index_t>(
                            p.n, row + static_cast<index_t>(
                                           seg.fraction *
                                           static_cast<double>(p.n)));
    for (; row < end; ++row) {
      for (index_t d = -seg.half_bandwidth; d <= seg.half_bandwidth;
           d += seg.stride) {
        const index_t c = row + d;
        if (c < 0 || c >= p.n) continue;
        coo.Add(row, c, d == 0 ? 4.0 : rng.Uniform(-1.0, -0.1));
      }
    }
  }
  return CooToCsr(coo);
}

Csr GenerateErdosRenyi(const ErdosRenyiParams& p) {
  OOC_CHECK(p.rows > 0 && p.cols > 0 && p.avg_degree >= 0);
  Pcg32 rng(p.seed, /*stream=*/0x2);
  Coo coo;
  coo.rows = p.rows;
  coo.cols = p.cols;
  coo.Reserve(static_cast<std::size_t>(p.avg_degree * p.rows));
  for (index_t r = 0; r < p.rows; ++r) {
    // Poisson(avg_degree) via Knuth for the small means used here.
    const double limit = std::exp(-p.avg_degree);
    int k = 0;
    double prod = rng.NextDouble();
    while (prod > limit) {
      ++k;
      prod *= rng.NextDouble();
    }
    for (int i = 0; i < k; ++i) {
      coo.Add(r, static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(p.cols))),
              rng.Uniform(0.1, 1.0));
    }
  }
  return CooToCsr(coo);
}

Csr GenerateBanded(const BandedParams& p) {
  OOC_CHECK(p.n > 0 && p.half_bandwidth >= 0 && p.stride >= 1);
  Pcg32 rng(p.seed, /*stream=*/0x3);
  Coo coo;
  coo.rows = coo.cols = p.n;
  for (index_t r = 0; r < p.n; ++r) {
    for (index_t d = -p.half_bandwidth; d <= p.half_bandwidth; d += p.stride) {
      const index_t c = r + d;
      if (c < 0 || c >= p.n) continue;
      coo.Add(r, c, d == 0 ? 4.0 : rng.Uniform(-1.0, -0.1));
    }
  }
  return CooToCsr(coo);
}

Csr GenerateBlockFem(const BlockFemParams& p) {
  OOC_CHECK(p.num_blocks > 0 && p.block_size > 0 && p.couplings >= 0);
  Pcg32 rng(p.seed, /*stream=*/0x4);
  Coo coo;
  const index_t n = p.num_blocks * p.block_size;
  coo.rows = coo.cols = n;

  auto add_block = [&](index_t bi, index_t bj) {
    const index_t r0 = bi * p.block_size;
    const index_t c0 = bj * p.block_size;
    for (index_t i = 0; i < p.block_size; ++i) {
      for (index_t j = 0; j < p.block_size; ++j) {
        const value_t v = (bi == bj && i == j)
                              ? 2.0 * p.block_size
                              : rng.Uniform(-1.0, 1.0);
        coo.Add(r0 + i, c0 + j, v);
      }
    }
  };

  for (index_t b = 0; b < p.num_blocks; ++b) {
    add_block(b, b);
    // 1-D chain coupling gives the banded FEM backbone.
    if (b + 1 < p.num_blocks) {
      add_block(b, b + 1);
      add_block(b + 1, b);
    }
    // Extra random couplings mimic the KKT cross-terms.
    for (index_t k = 2; k < p.couplings; ++k) {
      const index_t other =
          static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(p.num_blocks)));
      if (other != b) {
        add_block(b, other);
        add_block(other, b);
      }
    }
  }
  return CooToCsr(coo);
}

Csr KroneckerProduct(const Csr& a, const Csr& b) {
  const std::int64_t rows =
      static_cast<std::int64_t>(a.rows()) * static_cast<std::int64_t>(b.rows());
  const std::int64_t cols =
      static_cast<std::int64_t>(a.cols()) * static_cast<std::int64_t>(b.cols());
  OOC_CHECK(rows <= INT32_MAX && cols <= INT32_MAX);

  // Row (ia, ib) of the product is row ia of A expanded by row ib of B;
  // walking ja outer and jb inner emits columns in sorted order directly.
  std::vector<offset_t> offsets(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> out_cols;
  std::vector<value_t> out_vals;
  out_cols.reserve(static_cast<std::size_t>(a.nnz() * b.nnz()));
  out_vals.reserve(static_cast<std::size_t>(a.nnz() * b.nnz()));
  for (index_t ia = 0; ia < a.rows(); ++ia) {
    for (index_t ib = 0; ib < b.rows(); ++ib) {
      for (offset_t ka = a.row_begin(ia); ka < a.row_end(ia); ++ka) {
        const index_t ja = a.col_ids()[static_cast<std::size_t>(ka)];
        const value_t va = a.values()[static_cast<std::size_t>(ka)];
        for (offset_t kb = b.row_begin(ib); kb < b.row_end(ib); ++kb) {
          out_cols.push_back(ja * b.cols() +
                             b.col_ids()[static_cast<std::size_t>(kb)]);
          out_vals.push_back(va * b.values()[static_cast<std::size_t>(kb)]);
        }
      }
      const std::int64_t row = static_cast<std::int64_t>(ia) * b.rows() + ib;
      offsets[static_cast<std::size_t>(row) + 1] =
          static_cast<offset_t>(out_cols.size());
    }
  }
  return Csr(static_cast<index_t>(rows), static_cast<index_t>(cols),
             std::move(offsets), std::move(out_cols), std::move(out_vals));
}

Csr KroneckerPower(const Csr& seed, int k) {
  OOC_CHECK(k >= 1);
  Csr result = seed;
  for (int i = 1; i < k; ++i) result = KroneckerProduct(result, seed);
  return result;
}

}  // namespace oocgemm::sparse
