#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace oocgemm::sparse {

Csr::Csr(index_t rows, index_t cols, std::vector<offset_t> row_offsets,
         std::vector<index_t> col_ids, std::vector<value_t> values)
    : rows_(rows),
      cols_(cols),
      row_offsets_(std::move(row_offsets)),
      col_ids_(std::move(col_ids)),
      values_(std::move(values)) {
  OOC_CHECK(rows >= 0 && cols >= 0);
  OOC_CHECK(row_offsets_.size() == static_cast<std::size_t>(rows) + 1);
  OOC_CHECK(col_ids_.size() == values_.size());
}

std::int64_t Csr::StorageBytes() const {
  return static_cast<std::int64_t>(row_offsets_.size() * sizeof(offset_t)) +
         static_cast<std::int64_t>(col_ids_.size() * sizeof(index_t)) +
         static_cast<std::int64_t>(values_.size() * sizeof(value_t));
}

Status Csr::Validate() const {
  if (row_offsets_.size() != static_cast<std::size_t>(rows_) + 1) {
    return Status::InvalidArgument("row_offsets size != rows + 1");
  }
  if (row_offsets_.front() != 0) {
    return Status::InvalidArgument("row_offsets[0] != 0");
  }
  for (std::size_t i = 0; i + 1 < row_offsets_.size(); ++i) {
    if (row_offsets_[i] > row_offsets_[i + 1]) {
      return Status::InvalidArgument("row_offsets not monotone at row " +
                                     std::to_string(i));
    }
  }
  if (row_offsets_.back() != static_cast<offset_t>(col_ids_.size())) {
    return Status::InvalidArgument("row_offsets back != col_ids size");
  }
  if (col_ids_.size() != values_.size()) {
    return Status::InvalidArgument("col_ids size != values size");
  }
  for (index_t r = 0; r < rows_; ++r) {
    index_t prev = -1;
    for (offset_t k = row_begin(r); k < row_end(r); ++k) {
      index_t c = col_ids_[static_cast<std::size_t>(k)];
      if (c < 0 || c >= cols_) {
        return Status::InvalidArgument("column id out of range in row " +
                                       std::to_string(r));
      }
      if (c <= prev) {
        return Status::InvalidArgument(
            "column ids not strictly increasing in row " + std::to_string(r));
      }
      prev = c;
    }
  }
  return Status::Ok();
}

void Csr::SortRowsByColumn() {
  std::vector<std::pair<index_t, value_t>> scratch;
  for (index_t r = 0; r < rows_; ++r) {
    const offset_t b = row_begin(r), e = row_end(r);
    if (e - b <= 1) continue;
    scratch.clear();
    scratch.reserve(static_cast<std::size_t>(e - b));
    for (offset_t k = b; k < e; ++k) {
      scratch.emplace_back(col_ids_[static_cast<std::size_t>(k)],
                           values_[static_cast<std::size_t>(k)]);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (offset_t k = b; k < e; ++k) {
      col_ids_[static_cast<std::size_t>(k)] = scratch[static_cast<std::size_t>(k - b)].first;
      values_[static_cast<std::size_t>(k)] = scratch[static_cast<std::size_t>(k - b)].second;
    }
  }
}

bool Csr::operator==(const Csr& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         row_offsets_ == other.row_offsets_ && col_ids_ == other.col_ids_ &&
         values_ == other.values_;
}

bool Csr::ApproxEquals(const Csr& other, double rel_tol, double abs_tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (row_offsets_ != other.row_offsets_) return false;
  if (col_ids_ != other.col_ids_) return false;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const double a = values_[i], b = other.values_[i];
    if (std::abs(a - b) > abs_tol + rel_tol * std::abs(b)) return false;
  }
  return true;
}

std::string Csr::DebugString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "Csr(%dx%d, nnz=%lld)", rows_, cols_,
                static_cast<long long>(nnz()));
  return buf;
}

}  // namespace oocgemm::sparse
