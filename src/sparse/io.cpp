#include "sparse/io.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sparse/coo.hpp"

namespace oocgemm::sparse {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool ReadLine(std::FILE* f, std::string& line) {
  line.clear();
  int ch;
  while ((ch = std::fgetc(f)) != EOF) {
    if (ch == '\n') return true;
    line.push_back(static_cast<char>(ch));
  }
  return !line.empty();
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

StatusOr<Csr> ReadMatrixMarket(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (!f) return Status::IoError("cannot open " + path);

  std::string line;
  if (!ReadLine(f.get(), line)) return Status::IoError("empty file: " + path);
  const std::string header = Lower(line);
  if (header.rfind("%%matrixmarket", 0) != 0) {
    return Status::InvalidArgument("not a MatrixMarket file: " + path);
  }
  const bool pattern = header.find("pattern") != std::string::npos;
  const bool symmetric = header.find("symmetric") != std::string::npos;
  const bool general = header.find("general") != std::string::npos;
  if (header.find("coordinate") == std::string::npos) {
    return Status::InvalidArgument("only coordinate format supported: " + path);
  }
  if (!symmetric && !general) {
    return Status::InvalidArgument("unsupported symmetry qualifier: " + path);
  }
  if (header.find("complex") != std::string::npos) {
    return Status::InvalidArgument("complex matrices unsupported: " + path);
  }

  // Skip comments.
  do {
    if (!ReadLine(f.get(), line)) return Status::IoError("truncated header: " + path);
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, entries = 0;
  if (std::sscanf(line.c_str(), "%lld %lld %lld", &rows, &cols, &entries) != 3) {
    return Status::InvalidArgument("bad size line: " + line);
  }
  if (rows < 0 || cols < 0 || entries < 0) {
    return Status::InvalidArgument("negative sizes: " + line);
  }

  Coo coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.Reserve(static_cast<std::size_t>(entries) * (symmetric ? 2 : 1));
  for (long long e = 0; e < entries; ++e) {
    if (!ReadLine(f.get(), line)) {
      return Status::IoError("truncated entries in " + path);
    }
    long long r = 0, c = 0;
    double v = 1.0;
    int got = pattern ? std::sscanf(line.c_str(), "%lld %lld", &r, &c)
                      : std::sscanf(line.c_str(), "%lld %lld %lf", &r, &c, &v);
    if ((pattern && got != 2) || (!pattern && got != 3)) {
      return Status::InvalidArgument("bad entry line: " + line);
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      return Status::InvalidArgument("entry out of range: " + line);
    }
    coo.Add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      coo.Add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  return CooToCsr(coo);
}

Status WriteMatrixMarket(const Csr& a, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::fprintf(f.get(), "%%%%MatrixMarket matrix coordinate real general\n");
  std::fprintf(f.get(), "%d %d %lld\n", a.rows(), a.cols(),
               static_cast<long long>(a.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      std::fprintf(f.get(), "%d %d %.17g\n", r + 1,
                   a.col_ids()[static_cast<std::size_t>(k)] + 1,
                   a.values()[static_cast<std::size_t>(k)]);
    }
  }
  return Status::Ok();
}

namespace {
constexpr char kMagic[8] = {'O', 'O', 'C', 'C', 'S', 'R', '0', '1'};
}

Status WriteBinary(const Csr& a, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open for write: " + path);
  std::int64_t dims[3] = {a.rows(), a.cols(), a.nnz()};
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      std::fwrite(dims, sizeof(dims[0]), 3, f.get()) != 3 ||
      std::fwrite(a.row_offsets().data(), sizeof(offset_t),
                  a.row_offsets().size(), f.get()) != a.row_offsets().size() ||
      std::fwrite(a.col_ids().data(), sizeof(index_t), a.col_ids().size(),
                  f.get()) != a.col_ids().size() ||
      std::fwrite(a.values().data(), sizeof(value_t), a.values().size(),
                  f.get()) != a.values().size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

StatusOr<Csr> ReadBinary(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open " + path);
  char magic[8];
  std::int64_t dims[3];
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (std::fread(dims, sizeof(dims[0]), 3, f.get()) != 3 || dims[0] < 0 ||
      dims[1] < 0 || dims[2] < 0) {
    return Status::IoError("bad dims in " + path);
  }
  std::vector<offset_t> offsets(static_cast<std::size_t>(dims[0]) + 1);
  std::vector<index_t> cols(static_cast<std::size_t>(dims[2]));
  std::vector<value_t> vals(static_cast<std::size_t>(dims[2]));
  if (std::fread(offsets.data(), sizeof(offset_t), offsets.size(), f.get()) !=
          offsets.size() ||
      std::fread(cols.data(), sizeof(index_t), cols.size(), f.get()) !=
          cols.size() ||
      std::fread(vals.data(), sizeof(value_t), vals.size(), f.get()) !=
          vals.size()) {
    return Status::IoError("short read: " + path);
  }
  Csr out(static_cast<index_t>(dims[0]), static_cast<index_t>(dims[1]),
          std::move(offsets), std::move(cols), std::move(vals));
  Status st = out.Validate();
  if (!st.ok()) return st;
  return out;
}

}  // namespace oocgemm::sparse
