#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/prefix_sum.hpp"

namespace oocgemm::sparse {

Csr CooToCsr(const Coo& coo) {
  OOC_CHECK(coo.row_ids.size() == coo.col_ids.size());
  OOC_CHECK(coo.col_ids.size() == coo.values.size());
  const std::size_t n = coo.nnz();

  // Counting pass over rows.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(coo.rows), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const index_t r = coo.row_ids[i];
    OOC_CHECK(r >= 0 && r < coo.rows);
    OOC_CHECK(coo.col_ids[i] >= 0 && coo.col_ids[i] < coo.cols);
    ++counts[static_cast<std::size_t>(r)];
  }
  std::vector<offset_t> offsets = ExclusiveScan(counts);

  // Scatter into row buckets.
  std::vector<index_t> cols(n);
  std::vector<value_t> vals(n);
  {
    std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      const offset_t pos = cursor[static_cast<std::size_t>(coo.row_ids[i])]++;
      cols[static_cast<std::size_t>(pos)] = coo.col_ids[i];
      vals[static_cast<std::size_t>(pos)] = coo.values[i];
    }
  }

  // Per-row sort + duplicate merge, compacting in place.
  std::vector<offset_t> merged_offsets(static_cast<std::size_t>(coo.rows) + 1, 0);
  std::vector<std::pair<index_t, value_t>> scratch;
  offset_t write = 0;
  for (index_t r = 0; r < coo.rows; ++r) {
    const offset_t b = offsets[static_cast<std::size_t>(r)];
    const offset_t e = offsets[static_cast<std::size_t>(r) + 1];
    scratch.clear();
    for (offset_t k = b; k < e; ++k) {
      scratch.emplace_back(cols[static_cast<std::size_t>(k)],
                           vals[static_cast<std::size_t>(k)]);
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    merged_offsets[static_cast<std::size_t>(r)] = write;
    std::size_t i = 0;
    while (i < scratch.size()) {
      index_t c = scratch[i].first;
      value_t v = scratch[i].second;
      std::size_t j = i + 1;
      while (j < scratch.size() && scratch[j].first == c) {
        v += scratch[j].second;
        ++j;
      }
      cols[static_cast<std::size_t>(write)] = c;
      vals[static_cast<std::size_t>(write)] = v;
      ++write;
      i = j;
    }
  }
  merged_offsets[static_cast<std::size_t>(coo.rows)] = write;
  cols.resize(static_cast<std::size_t>(write));
  vals.resize(static_cast<std::size_t>(write));

  return Csr(coo.rows, coo.cols, std::move(merged_offsets), std::move(cols),
             std::move(vals));
}

Coo CsrToCoo(const Csr& csr) {
  Coo coo;
  coo.rows = csr.rows();
  coo.cols = csr.cols();
  coo.Reserve(static_cast<std::size_t>(csr.nnz()));
  for (index_t r = 0; r < csr.rows(); ++r) {
    for (offset_t k = csr.row_begin(r); k < csr.row_end(r); ++k) {
      coo.Add(r, csr.col_ids()[static_cast<std::size_t>(k)],
              csr.values()[static_cast<std::size_t>(k)]);
    }
  }
  return coo;
}

}  // namespace oocgemm::sparse
