// Registry of the 9 evaluation matrices from Table II of the paper, as
// scaled synthetic stand-ins (see DESIGN.md "Substitutions").
//
// Each entry records the paper's reported features (n, nnz, flop(A^2),
// nnz(A^2), compression ratio — all in millions except the ratio) so that
// benchmark output can print paper-vs-measured side by side, and a builder
// that generates the stand-in deterministically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace oocgemm::sparse {

struct PaperFeatures {
  double n_millions = 0.0;
  double nnz_millions = 0.0;
  double flop_millions = 0.0;      // flop(A^2)
  double nnz_out_millions = 0.0;   // nnz(A^2)
  double compression_ratio = 0.0;  // flop / nnz_out
};

struct DatasetSpec {
  std::string name;   // SuiteSparse name, e.g. "com-LiveJournal"
  std::string abbr;   // paper abbreviation, e.g. "com-lj"
  PaperFeatures paper;
  /// Structural class used to pick the generator: "social", "web", "fem"...
  std::string family;
  std::function<Csr()> build;
};

/// The 9 matrices of Table II, in the paper's order.  `scale_shift` shrinks
/// the default stand-in size by powers of two (for fast unit tests: a shift
/// of 2 gives matrices ~16x smaller).
std::vector<DatasetSpec> PaperMatrices(int scale_shift = 0);

/// Looks a dataset up by abbreviation; aborts if absent (registry is fixed).
DatasetSpec PaperMatrix(const std::string& abbr, int scale_shift = 0);

}  // namespace oocgemm::sparse
