#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/prefix_sum.hpp"
#include "sparse/coo.hpp"

namespace oocgemm::sparse {

Csr Transpose(const Csr& a) {
  const std::size_t out_rows = static_cast<std::size_t>(a.cols());
  std::vector<std::int64_t> counts(out_rows, 0);
  for (index_t c : a.col_ids()) ++counts[static_cast<std::size_t>(c)];
  std::vector<offset_t> offsets = ExclusiveScan(counts);

  std::vector<index_t> cols(static_cast<std::size_t>(a.nnz()));
  std::vector<value_t> vals(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_ids()[static_cast<std::size_t>(k)];
      const offset_t pos = cursor[static_cast<std::size_t>(c)]++;
      cols[static_cast<std::size_t>(pos)] = r;
      vals[static_cast<std::size_t>(pos)] = a.values()[static_cast<std::size_t>(k)];
    }
  }
  // Row-major traversal of A writes each transposed row in increasing
  // original-row order, so output columns are already sorted.
  return Csr(a.cols(), a.rows(), std::move(offsets), std::move(cols),
             std::move(vals));
}

Csr Identity(index_t n) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> cols(static_cast<std::size_t>(n));
  std::vector<value_t> vals(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i <= n; ++i) offsets[static_cast<std::size_t>(i)] = i;
  for (index_t i = 0; i < n; ++i) cols[static_cast<std::size_t>(i)] = i;
  return Csr(n, n, std::move(offsets), std::move(cols), std::move(vals));
}

Csr Diagonal(const std::vector<value_t>& diag) {
  const index_t n = static_cast<index_t>(diag.size());
  Csr id = Identity(n);
  id.mutable_values() = diag;
  return id;
}

Csr SliceRows(const Csr& a, index_t row_begin, index_t row_end) {
  OOC_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows());
  const index_t out_rows = row_end - row_begin;
  const offset_t base = a.row_begin(row_begin);
  const offset_t count = a.row_begin(row_end) - base;

  std::vector<offset_t> offsets(static_cast<std::size_t>(out_rows) + 1);
  for (index_t r = 0; r <= out_rows; ++r) {
    offsets[static_cast<std::size_t>(r)] = a.row_begin(row_begin + r) - base;
  }
  std::vector<index_t> cols(
      a.col_ids().begin() + static_cast<std::ptrdiff_t>(base),
      a.col_ids().begin() + static_cast<std::ptrdiff_t>(base + count));
  std::vector<value_t> vals(
      a.values().begin() + static_cast<std::ptrdiff_t>(base),
      a.values().begin() + static_cast<std::ptrdiff_t>(base + count));
  return Csr(out_rows, a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

Csr SliceColsReference(const Csr& a, index_t col_begin, index_t col_end) {
  OOC_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= a.cols());
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t c = a.col_ids()[static_cast<std::size_t>(k)];
      if (c >= col_begin && c < col_end) {
        cols.push_back(c - col_begin);
        vals.push_back(a.values()[static_cast<std::size_t>(k)]);
      }
    }
    offsets[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), col_end - col_begin, std::move(offsets),
             std::move(cols), std::move(vals));
}

Csr ConcatCols(const Csr& a, const Csr& b) {
  OOC_CHECK(a.rows() == b.rows());
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  cols.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      cols.push_back(a.col_ids()[static_cast<std::size_t>(k)]);
      vals.push_back(a.values()[static_cast<std::size_t>(k)]);
    }
    for (offset_t k = b.row_begin(r); k < b.row_end(r); ++k) {
      cols.push_back(b.col_ids()[static_cast<std::size_t>(k)] + a.cols());
      vals.push_back(b.values()[static_cast<std::size_t>(k)]);
    }
    offsets[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), a.cols() + b.cols(), std::move(offsets),
             std::move(cols), std::move(vals));
}

Csr ConcatRows(const Csr& a, const Csr& b) {
  OOC_CHECK(a.cols() == b.cols());
  std::vector<offset_t> offsets;
  offsets.reserve(static_cast<std::size_t>(a.rows() + b.rows()) + 1);
  offsets.insert(offsets.end(), a.row_offsets().begin(), a.row_offsets().end());
  const offset_t base = a.nnz();
  for (index_t r = 1; r <= b.rows(); ++r) {
    offsets.push_back(base + b.row_offsets()[static_cast<std::size_t>(r)]);
  }
  std::vector<index_t> cols = a.col_ids();
  cols.insert(cols.end(), b.col_ids().begin(), b.col_ids().end());
  std::vector<value_t> vals = a.values();
  vals.insert(vals.end(), b.values().begin(), b.values().end());
  return Csr(a.rows() + b.rows(), a.cols(), std::move(offsets),
             std::move(cols), std::move(vals));
}

Csr Add(const Csr& a, const Csr& b, value_t alpha, value_t beta) {
  OOC_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  cols.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    offset_t ka = a.row_begin(r);
    offset_t kb = b.row_begin(r);
    // Two-way merge of the sorted rows.
    while (ka < a.row_end(r) || kb < b.row_end(r)) {
      const index_t ca = ka < a.row_end(r)
                             ? a.col_ids()[static_cast<std::size_t>(ka)]
                             : a.cols();
      const index_t cb = kb < b.row_end(r)
                             ? b.col_ids()[static_cast<std::size_t>(kb)]
                             : b.cols();
      if (ca < cb) {
        cols.push_back(ca);
        vals.push_back(alpha * a.values()[static_cast<std::size_t>(ka++)]);
      } else if (cb < ca) {
        cols.push_back(cb);
        vals.push_back(beta * b.values()[static_cast<std::size_t>(kb++)]);
      } else {
        cols.push_back(ca);
        vals.push_back(alpha * a.values()[static_cast<std::size_t>(ka++)] +
                       beta * b.values()[static_cast<std::size_t>(kb++)]);
      }
    }
    offsets[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

Csr Symmetrize(const Csr& a) {
  OOC_CHECK(a.rows() == a.cols());
  Coo coo = CsrToCoo(a);
  Coo both = coo;
  for (std::size_t i = 0; i < coo.nnz(); ++i) {
    if (coo.row_ids[i] != coo.col_ids[i]) {
      both.Add(coo.col_ids[i], coo.row_ids[i], coo.values[i]);
    }
  }
  return CooToCsr(both);
}

Csr DropZeros(const Csr& a, double tol) {
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const value_t v = a.values()[static_cast<std::size_t>(k)];
      if (std::abs(v) > tol) {
        cols.push_back(a.col_ids()[static_cast<std::size_t>(k)]);
        vals.push_back(v);
      }
    }
    offsets[static_cast<std::size_t>(r) + 1] = static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

std::vector<value_t> Multiply(const Csr& a, const std::vector<value_t>& x) {
  OOC_CHECK(x.size() == static_cast<std::size_t>(a.cols()));
  std::vector<value_t> y(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t sum = 0.0;
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      sum += a.values()[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_ids()[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
  return y;
}

double FrobeniusNorm(const Csr& a) {
  double sum = 0.0;
  for (value_t v : a.values()) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

}  // namespace oocgemm::sparse
