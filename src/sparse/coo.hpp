// Coordinate-format staging buffer and conversion to CSR.
//
// Generators and the Matrix Market reader emit triplets; ToCsr sorts them,
// merges duplicates (summing values — the SpGEMM accumulation convention)
// and builds the CSR arrays with a counting pass + prefix sum.
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace oocgemm::sparse {

struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ids;
  std::vector<index_t> col_ids;
  std::vector<value_t> values;

  std::size_t nnz() const { return row_ids.size(); }

  void Reserve(std::size_t n) {
    row_ids.reserve(n);
    col_ids.reserve(n);
    values.reserve(n);
  }

  void Add(index_t r, index_t c, value_t v) {
    row_ids.push_back(r);
    col_ids.push_back(c);
    values.push_back(v);
  }
};

/// Converts triplets to CSR.  Duplicate (r, c) entries are summed.  Aborts
/// via OOC_CHECK on out-of-range indices (generator bugs, not user input).
Csr CooToCsr(const Coo& coo);

/// Expands a CSR matrix back to row-major-ordered triplets.
Coo CsrToCoo(const Csr& csr);

}  // namespace oocgemm::sparse
