// Fundamental scalar types for the sparse kernels.
//
// Column indices are 32-bit (every matrix in the paper has < 2^31 columns);
// row offsets are 64-bit because nnz of the output matrix A^2 reaches
// billions (Table II) — this is exactly the layout the paper needs and the
// reason it rejects MKL, whose interface is limited to 32-bit offsets.
#pragma once

#include <cstdint>

namespace oocgemm::sparse {

using index_t = std::int32_t;   // row / column identifiers
using offset_t = std::int64_t;  // positions into col_ids / values
using value_t = double;         // the paper evaluates with double

/// Bytes of payload per stored non-zero in CSR (col id + value); used by the
/// transfer cost accounting.
inline constexpr std::int64_t kBytesPerNnz =
    static_cast<std::int64_t>(sizeof(index_t) + sizeof(value_t));

}  // namespace oocgemm::sparse
