// Compressed Sparse Row matrix (Section II-A of the paper).
//
// Rows are stored contiguously; `row_offsets[i] .. row_offsets[i+1]` indexes
// the column ids and values of row i.  Column ids are kept sorted within
// each row (the paper sorts per-row output by column id).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "sparse/types.hpp"

namespace oocgemm::sparse {

class Csr {
 public:
  Csr() = default;

  /// An empty rows x cols matrix (all zero).
  Csr(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), row_offsets_(static_cast<std::size_t>(rows) + 1, 0) {
    OOC_CHECK(rows >= 0 && cols >= 0);
  }

  /// Adopts pre-built arrays.  `row_offsets` must have rows + 1 entries.
  Csr(index_t rows, index_t cols, std::vector<offset_t> row_offsets,
      std::vector<index_t> col_ids, std::vector<value_t> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  offset_t nnz() const {
    return row_offsets_.empty() ? 0 : row_offsets_.back();
  }
  bool empty() const { return nnz() == 0; }

  offset_t row_begin(index_t r) const { return row_offsets_[static_cast<std::size_t>(r)]; }
  offset_t row_end(index_t r) const { return row_offsets_[static_cast<std::size_t>(r) + 1]; }
  offset_t row_nnz(index_t r) const { return row_end(r) - row_begin(r); }

  const std::vector<offset_t>& row_offsets() const { return row_offsets_; }
  const std::vector<index_t>& col_ids() const { return col_ids_; }
  const std::vector<value_t>& values() const { return values_; }
  std::vector<offset_t>& mutable_row_offsets() { return row_offsets_; }
  std::vector<index_t>& mutable_col_ids() { return col_ids_; }
  std::vector<value_t>& mutable_values() { return values_; }

  /// Total bytes of the three CSR arrays; the unit of the transfer model.
  std::int64_t StorageBytes() const;

  /// Checks structural invariants: offset monotonicity, final offset == array
  /// sizes, in-range sorted (strictly increasing) column ids per row.
  Status Validate() const;

  /// Sorts (col, value) pairs within each row by column id.  Duplicate
  /// columns are a Validate() error and are not merged here.
  void SortRowsByColumn();

  /// Exact structural + value equality.
  bool operator==(const Csr& other) const;

  /// Structural equality with per-value |a-b| <= abs_tol + rel_tol*|b|.
  bool ApproxEquals(const Csr& other, double rel_tol = 1e-10,
                    double abs_tol = 1e-12) const;

  /// Short description like "Csr(4096x4096, nnz=131072)".
  std::string DebugString() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> row_offsets_{0};
  std::vector<index_t> col_ids_;
  std::vector<value_t> values_;
};

}  // namespace oocgemm::sparse
