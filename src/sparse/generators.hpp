// Synthetic matrix generators.
//
// The paper's evaluation uses 9 SuiteSparse matrices that are unavailable
// offline; per the substitution plan in DESIGN.md we generate structural
// stand-ins: R-MAT power-law graphs for the social/web matrices, banded
// stencils and block-FEM patterns for the regular scientific matrices.
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::sparse {

struct RmatParams {
  int scale = 12;            // 2^scale vertices
  double edge_factor = 8.0;  // edges ~= edge_factor * vertices
  // Recursive quadrant probabilities (Graph500 defaults give heavy skew).
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool symmetric = false;    // add reverse edges (undirected graph)
  bool remove_self_loops = true;
  /// Relabel vertices with a random permutation (Graph500 practice).
  /// Without it, R-MAT places every hub at a low vertex id, which no
  /// crawl-ordered real graph does — and which would concentrate all the
  /// dense SpGEMM work in the first row panel.
  bool permute_ids = true;
  std::uint64_t seed = 1;
};

/// R-MAT generator (Chakrabarti et al.): power-law degree distribution like
/// the LiveJournal / wikipedia / uk-2002 graphs in Table II.  Duplicate
/// edges are merged (values summed), so the resulting nnz is slightly below
/// edge_factor * n; values are uniform in [0, 1).
Csr GenerateRmat(const RmatParams& params);

struct CommunityGraphParams {
  int scale = 13;             // 2^scale vertices
  int num_communities = 12;   // contiguous vertex ranges (crawl order)
  double ef_min = 3.0;        // per-community R-MAT edge factor range:
  double ef_max = 24.0;       // log-uniform => density varies across panels
  double background_degree = 1.0;  // sparse inter-community edges per vertex
  double a = 0.57, b = 0.19, c = 0.19;  // within-community skew
  bool symmetric = false;
  std::uint64_t seed = 1;
};

/// Community-structured graph: contiguous communities of varying density
/// (R-MAT inside each, vertices shuffled *within* the community) plus a
/// sparse uniform background.  This matches how crawled social/web graphs
/// look under their natural vertex order: hubs dispersed locally, but
/// strong density variation across row panels — the variation the paper's
/// chunk reordering (Fig. 9) and lumpy GPU chunk counts (Table III) rely
/// on.
Csr GenerateCommunityGraph(const CommunityGraphParams& params);

struct ErdosRenyiParams {
  index_t rows = 1024;
  index_t cols = 1024;
  double avg_degree = 8.0;   // expected nnz per row
  std::uint64_t seed = 1;
};

/// Uniform random matrix: each row draws ~Poisson(avg_degree) distinct
/// column ids.  The "no skew" control case for property tests.
Csr GenerateErdosRenyi(const ErdosRenyiParams& params);

struct BandedParams {
  index_t n = 1024;
  index_t half_bandwidth = 8;   // nonzeros at |i-j| <= half_bandwidth ...
  index_t stride = 1;           // ... sampled every `stride` diagonals
  std::uint64_t seed = 1;
};

/// Banded matrix (regular stencil): proxy for `stokes` — very regular rows,
/// high compression ratio under squaring.
Csr GenerateBanded(const BandedParams& params);

struct VariableBandedParams {
  index_t n = 1024;
  /// Consecutive row segments; fractions should sum to ~1 (the last
  /// segment absorbs rounding).  Each segment is a banded block with its
  /// own bandwidth — modelling meshes/web hosts whose local density varies.
  struct Segment {
    double fraction = 1.0;
    index_t half_bandwidth = 8;
    index_t stride = 1;
  };
  std::vector<Segment> segments;
  std::uint64_t seed = 1;
};

/// Banded matrix whose bandwidth varies across row segments; proxy for
/// matrices with region-dependent density (uk-2002 host blocks, nlpkkt
/// KKT blocks).
Csr GenerateVariableBanded(const VariableBandedParams& params);

struct BlockFemParams {
  index_t num_blocks = 256;   // grid cells
  index_t block_size = 4;     // dofs per cell
  index_t couplings = 6;      // neighbouring blocks per block (1-D chain + random)
  std::uint64_t seed = 1;
};

/// Block-sparse FEM/KKT-like pattern: dense small blocks on a sparse block
/// graph; proxy for `nlpkkt200` (regular, high compression ratio).
Csr GenerateBlockFem(const BlockFemParams& params);

/// Kronecker product A (x) B: entry ((ia*rowsB + ib), (ja*colsB + jb)) =
/// A[ia][ja] * B[ib][jb].  Kronecker powers of a small seed matrix are the
/// Graph500 construction underlying R-MAT; also useful for building large
/// structured test matrices from small ones.
Csr KroneckerProduct(const Csr& a, const Csr& b);

/// k-fold Kronecker power of `seed` (k >= 1).
Csr KroneckerPower(const Csr& seed, int k);

}  // namespace oocgemm::sparse
