// Matrix reordering utilities.
//
// Vertex/row order determines how work distributes across the out-of-core
// row panels (Sections III-D/V-E of the paper; see also the Fig. 9 bench):
// a bandwidth-reducing order concentrates products near the diagonal and
// raises panel locality, a degree-sorted order concentrates the heavy rows
// into few chunks, and a random order evens everything out.  These
// utilities let users study and control that effect.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace oocgemm::sparse {

/// perm[old_index] = new_index.  All functions below use this convention.
using Permutation = std::vector<index_t>;

/// True iff `perm` is a bijection on [0, perm.size()).
bool IsPermutation(const Permutation& perm);

/// inverse[new_index] = old_index.
Permutation InversePermutation(const Permutation& perm);

/// Uniformly random permutation (deterministic in `seed`).
Permutation RandomPermutation(index_t n, std::uint64_t seed);

/// Rows sorted by decreasing nnz (hubs first).  Ties keep original order.
Permutation DegreeDescendingOrder(const Csr& a);

/// Reverse Cuthill-McKee on the symmetrized pattern of a square matrix:
/// a classic bandwidth-reducing order (BFS from a peripheral low-degree
/// vertex, neighbours by increasing degree, then reversed).
Permutation ReverseCuthillMcKee(const Csr& a);

/// B[perm[i]][perm[j]] = A[i][j] — the symmetric permutation P A P^T.
Csr PermuteSymmetric(const Csr& a, const Permutation& perm);

/// Permutes rows only: B[perm[i]][j] = A[i][j].
Csr PermuteRows(const Csr& a, const Permutation& perm);

/// Permutes columns only: B[i][perm[j]] = A[i][j].
Csr PermuteCols(const Csr& a, const Permutation& perm);

/// Half bandwidth: max |i - j| over stored entries (0 for empty matrices).
index_t Bandwidth(const Csr& a);

}  // namespace oocgemm::sparse
