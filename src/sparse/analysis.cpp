#include "sparse/analysis.hpp"

#include <algorithm>
#include <array>

#include "common/stats.hpp"

namespace oocgemm::sparse {

std::vector<std::int64_t> RowFlops(const Csr& a, const Csr& b) {
  OOC_CHECK(a.cols() == b.rows());
  std::vector<std::int64_t> flops(static_cast<std::size_t>(a.rows()), 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    std::int64_t f = 0;
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t mid = a.col_ids()[static_cast<std::size_t>(k)];
      f += b.row_nnz(mid);
    }
    flops[static_cast<std::size_t>(r)] = 2 * f;
  }
  return flops;
}

std::int64_t TotalFlops(const Csr& a, const Csr& b) {
  // Avoids materializing the per-row vector: accumulate nnz(B row) weighted
  // by the number of references from A.
  OOC_CHECK(a.cols() == b.rows());
  std::vector<std::int64_t> refs(static_cast<std::size_t>(b.rows()), 0);
  for (index_t c : a.col_ids()) ++refs[static_cast<std::size_t>(c)];
  std::int64_t f = 0;
  for (index_t r = 0; r < b.rows(); ++r) {
    f += refs[static_cast<std::size_t>(r)] * b.row_nnz(r);
  }
  return 2 * f;
}

std::vector<std::int64_t> SymbolicRowNnz(const Csr& a, const Csr& b) {
  OOC_CHECK(a.cols() == b.rows());
  std::vector<std::int64_t> nnz(static_cast<std::size_t>(a.rows()), 0);
  std::vector<index_t> scratch;
  for (index_t r = 0; r < a.rows(); ++r) {
    scratch.clear();
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      const index_t mid = a.col_ids()[static_cast<std::size_t>(k)];
      for (offset_t j = b.row_begin(mid); j < b.row_end(mid); ++j) {
        scratch.push_back(b.col_ids()[static_cast<std::size_t>(j)]);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    nnz[static_cast<std::size_t>(r)] = static_cast<std::int64_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  }
  return nnz;
}

std::int64_t SymbolicNnz(const Csr& a, const Csr& b) {
  std::int64_t total = 0;
  for (std::int64_t v : SymbolicRowNnz(a, b)) total += v;
  return total;
}

RowNnzEstimate EstimateRowNnz(const Csr& a, const Csr& b,
                              double sample_fraction, std::uint64_t seed) {
  OOC_CHECK(a.cols() == b.rows());
  OOC_CHECK(sample_fraction > 0.0 && sample_fraction <= 1.0);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  RowNnzEstimate est;
  est.per_row.assign(n, 0.0);
  if (n == 0) return est;

  Pcg32 rng(seed, /*stream=*/0x7);
  std::vector<std::int64_t> row_flops = RowFlops(a, b);

  // Collision behaviour varies strongly with the row's product count
  // (heavy rows in dense regions collide far more), so the sampled
  // collision factors are stratified into logarithmic product buckets.
  auto bucket_of = [](std::int64_t products) {
    int bkt = 0;
    while (products > 1) {
      products >>= 2;  // factor-4 buckets
      ++bkt;
    }
    return bkt;
  };
  constexpr int kMaxBuckets = 40;
  std::array<std::int64_t, kMaxBuckets> bucket_products{};
  std::array<std::int64_t, kMaxBuckets> bucket_nnz{};

  // Exact symbolic counts on a random row sample.
  std::vector<index_t> scratch;
  std::int64_t sampled_products = 0;
  std::int64_t sampled_nnz = 0;
  std::vector<bool> sampled(n, false);
  for (std::size_t r = 0; r < n; ++r) {
    if (!rng.Bernoulli(sample_fraction)) continue;
    sampled[r] = true;
    ++est.sampled_rows;
    scratch.clear();
    for (offset_t k = a.row_begin(static_cast<index_t>(r));
         k < a.row_end(static_cast<index_t>(r)); ++k) {
      const index_t mid = a.col_ids()[static_cast<std::size_t>(k)];
      for (offset_t j = b.row_begin(mid); j < b.row_end(mid); ++j) {
        scratch.push_back(b.col_ids()[static_cast<std::size_t>(j)]);
      }
    }
    std::sort(scratch.begin(), scratch.end());
    const std::int64_t nnz = static_cast<std::int64_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
    est.per_row[r] = static_cast<double>(nnz);
    const std::int64_t products = row_flops[r] / 2;
    sampled_nnz += nnz;
    sampled_products += products;
    const int bkt = bucket_of(products);
    bucket_products[static_cast<std::size_t>(bkt)] += products;
    bucket_nnz[static_cast<std::size_t>(bkt)] += nnz;
  }

  est.collision_factor =
      sampled_products > 0 ? static_cast<double>(sampled_nnz) /
                                 static_cast<double>(sampled_products)
                           : 1.0;
  for (std::size_t r = 0; r < n; ++r) {
    if (sampled[r]) continue;
    const std::int64_t products = row_flops[r] / 2;
    const int bkt = bucket_of(products);
    // Prefer the factor of the row's own bucket; fall back to neighbours,
    // then to the global factor.
    double factor = est.collision_factor;
    for (int d : {0, 1, -1, 2, -2}) {
      const int candidate = bkt + d;
      if (candidate >= 0 && candidate < kMaxBuckets &&
          bucket_products[static_cast<std::size_t>(candidate)] > 0) {
        factor = static_cast<double>(
                     bucket_nnz[static_cast<std::size_t>(candidate)]) /
                 static_cast<double>(
                     bucket_products[static_cast<std::size_t>(candidate)]);
        break;
      }
    }
    est.per_row[r] = static_cast<double>(products) * factor;
  }
  return est;
}

std::vector<std::int64_t> UpperBoundRowNnz(const Csr& a, const Csr& b) {
  std::vector<std::int64_t> bound = RowFlops(a, b);
  for (auto& v : bound) {
    v = std::min<std::int64_t>(v / 2, b.cols());
  }
  return bound;
}

ProductStats AnalyzeProduct(const Csr& a, const Csr& b) {
  ProductStats s;
  std::vector<std::int64_t> row_flops = RowFlops(a, b);
  std::vector<double> as_double(row_flops.begin(), row_flops.end());
  for (std::int64_t f : row_flops) s.flops += f;
  s.nnz_out = SymbolicNnz(a, b);
  s.compression_ratio =
      s.nnz_out > 0 ? static_cast<double>(s.flops) / static_cast<double>(s.nnz_out)
                    : 0.0;
  Summary sum = Summarize(as_double);
  s.avg_row_flops = sum.mean;
  s.max_row_flops = sum.max;
  s.row_flops_gini = GiniCoefficient(std::move(as_double));
  return s;
}

}  // namespace oocgemm::sparse
