#include "sparse/reorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <queue>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace oocgemm::sparse {

bool IsPermutation(const Permutation& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size() ||
        seen[static_cast<std::size_t>(p)]) {
      return false;
    }
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

Permutation InversePermutation(const Permutation& perm) {
  OOC_CHECK(IsPermutation(perm));
  Permutation inverse(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inverse[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  }
  return inverse;
}

Permutation RandomPermutation(index_t n, std::uint64_t seed) {
  OOC_CHECK(n >= 0);
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  Pcg32 rng(seed, /*stream=*/0x8);
  for (index_t i = n - 1; i > 0; --i) {
    const index_t j =
        static_cast<index_t>(rng.Below(static_cast<std::uint32_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

Permutation DegreeDescendingOrder(const Csr& a) {
  std::vector<index_t> by_degree(static_cast<std::size_t>(a.rows()));
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](index_t x, index_t y) {
                     return a.row_nnz(x) > a.row_nnz(y);
                   });
  // by_degree[rank] = old row; we need perm[old] = rank.
  Permutation perm(by_degree.size());
  for (std::size_t rank = 0; rank < by_degree.size(); ++rank) {
    perm[static_cast<std::size_t>(by_degree[rank])] =
        static_cast<index_t>(rank);
  }
  return perm;
}

Permutation ReverseCuthillMcKee(const Csr& a) {
  OOC_CHECK(a.rows() == a.cols());
  const Csr sym = Symmetrize(a);
  const index_t n = sym.rows();
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;  // order[rank] = old vertex
  order.reserve(static_cast<std::size_t>(n));

  auto degree = [&](index_t v) { return sym.row_nnz(v); };

  for (;;) {
    // Next start: the unvisited vertex of minimum degree.
    index_t start = -1;
    for (index_t v = 0; v < n; ++v) {
      if (!visited[static_cast<std::size_t>(v)] &&
          (start < 0 || degree(v) < degree(start))) {
        start = v;
      }
    }
    if (start < 0) break;

    std::queue<index_t> frontier;
    frontier.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    std::vector<index_t> neighbours;
    while (!frontier.empty()) {
      const index_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      neighbours.clear();
      for (offset_t k = sym.row_begin(v); k < sym.row_end(v); ++k) {
        const index_t u = sym.col_ids()[static_cast<std::size_t>(k)];
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          neighbours.push_back(u);
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](index_t x, index_t y) { return degree(x) < degree(y); });
      for (index_t u : neighbours) frontier.push(u);
    }
  }

  // Cuthill-McKee reversed, converted to perm[old] = new.
  Permutation perm(static_cast<std::size_t>(n));
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    perm[static_cast<std::size_t>(order[rank])] =
        static_cast<index_t>(order.size() - 1 - rank);
  }
  return perm;
}

Csr PermuteSymmetric(const Csr& a, const Permutation& perm) {
  OOC_CHECK(a.rows() == a.cols());
  OOC_CHECK(perm.size() == static_cast<std::size_t>(a.rows()));
  OOC_CHECK(IsPermutation(perm));
  Coo coo;
  coo.rows = a.rows();
  coo.cols = a.cols();
  coo.Reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      coo.Add(perm[static_cast<std::size_t>(r)],
              perm[static_cast<std::size_t>(
                  a.col_ids()[static_cast<std::size_t>(k)])],
              a.values()[static_cast<std::size_t>(k)]);
    }
  }
  return CooToCsr(coo);
}

Csr PermuteRows(const Csr& a, const Permutation& perm) {
  OOC_CHECK(perm.size() == static_cast<std::size_t>(a.rows()));
  OOC_CHECK(IsPermutation(perm));
  const Permutation inverse = InversePermutation(perm);
  std::vector<offset_t> offsets(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  cols.reserve(static_cast<std::size_t>(a.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t new_r = 0; new_r < a.rows(); ++new_r) {
    const index_t old_r = inverse[static_cast<std::size_t>(new_r)];
    for (offset_t k = a.row_begin(old_r); k < a.row_end(old_r); ++k) {
      cols.push_back(a.col_ids()[static_cast<std::size_t>(k)]);
      vals.push_back(a.values()[static_cast<std::size_t>(k)]);
    }
    offsets[static_cast<std::size_t>(new_r) + 1] =
        static_cast<offset_t>(cols.size());
  }
  return Csr(a.rows(), a.cols(), std::move(offsets), std::move(cols),
             std::move(vals));
}

Csr PermuteCols(const Csr& a, const Permutation& perm) {
  OOC_CHECK(perm.size() == static_cast<std::size_t>(a.cols()));
  OOC_CHECK(IsPermutation(perm));
  Csr out = a;
  for (auto& c : out.mutable_col_ids()) {
    c = perm[static_cast<std::size_t>(c)];
  }
  out.SortRowsByColumn();
  return out;
}

index_t Bandwidth(const Csr& a) {
  index_t bw = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (offset_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      bw = std::max(bw, std::abs(a.col_ids()[static_cast<std::size_t>(k)] - r));
    }
  }
  return bw;
}

}  // namespace oocgemm::sparse
