// Structural operations on CSR matrices: transpose, slicing, constructions.
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace oocgemm::sparse {

/// B = A^T via counting sort over columns; output rows are column-sorted.
Csr Transpose(const Csr& a);

/// Identity matrix of order n.
Csr Identity(index_t n);

/// Diagonal matrix from `diag`.
Csr Diagonal(const std::vector<value_t>& diag);

/// Rows [row_begin, row_end) of `a` as a (row_end-row_begin) x a.cols()
/// matrix; offsets are rebased.  This is the paper's (trivial) row-panel
/// extraction for matrix A.
Csr SliceRows(const Csr& a, index_t row_begin, index_t row_end);

/// Columns [col_begin, col_end) of `a` as an a.rows() x (col_end-col_begin)
/// matrix with *panel-local* column ids (global id - col_begin).  A simple
/// reference implementation; the optimized panel partitioner lives in
/// src/partition/.
Csr SliceColsReference(const Csr& a, index_t col_begin, index_t col_end);

/// Horizontal concatenation: [a | b] with a.rows() == b.rows().
Csr ConcatCols(const Csr& a, const Csr& b);

/// Vertical concatenation: [a ; b] with a.cols() == b.cols().
Csr ConcatRows(const Csr& a, const Csr& b);

/// C = alpha*A + beta*B elementwise (same shapes); coincident entries sum.
/// Entries whose sum is exactly zero are kept (structural union), matching
/// the usual sparse-BLAS convention; use DropZeros to prune.
Csr Add(const Csr& a, const Csr& b, value_t alpha = 1.0, value_t beta = 1.0);

/// Makes the pattern symmetric: returns A + A^T structurally, summing values
/// on coincident entries.  Used to mimic undirected-graph adjacency.
Csr Symmetrize(const Csr& a);

/// Removes explicitly stored zero values.
Csr DropZeros(const Csr& a, double tol = 0.0);

/// y = A * x (SpMV), a convenience for example applications and as an
/// independent check of SpGEMM results (A*(B*x) == (A*B)*x).
std::vector<value_t> Multiply(const Csr& a, const std::vector<value_t>& x);

/// Frobenius norm of the matrix values.
double FrobeniusNorm(const Csr& a);

}  // namespace oocgemm::sparse
