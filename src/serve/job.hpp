// The unit of work of the serving runtime: one SpGEMM request plus the
// quality-of-service knobs a multi-tenant deployment needs (priority,
// deadline, executor preference), and the per-job report the runtime hands
// back through the job's future.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/run_stats.hpp"
#include "core/spgemm.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::serve {

struct JobOptions {
  /// Larger values dispatch first; ties break FIFO.
  int priority = 0;

  /// Free-form tenant id for multi-tenant attribution (per-tenant report
  /// sections and metric labels).  Arbitrary bytes are tolerated: every
  /// emitter escapes it (JsonEscape / the prom label escaper), so a
  /// hostile id cannot malform a report.  Empty = unattributed.
  std::string tenant;

  /// Wall-clock execution budget in seconds; 0 disables the timeout.  The
  /// scheduler's watchdog cancels the job cooperatively once exceeded
  /// (whether still queued or mid-execution).
  double timeout_seconds = 0.0;

  /// Executor preference.  kAuto lets the scheduler route by estimated
  /// size and device saturation; an explicit mode is honoured as long as
  /// it is feasible (a GPU mode on a job whose minimal working set cannot
  /// fit the device is rejected at admission).
  core::ExecutionMode mode = core::ExecutionMode::kAuto;

  /// Base executor configuration (safety factor, transfer schedule, ...).
  core::ExecutorOptions exec;

  /// Scheduler-level retries on device-pool exhaustion.  Each retry doubles
  /// the plan's nnz safety factor and sleeps an exponentially growing
  /// backoff before re-planning (the executors' own retry loop is disabled
  /// while serving so this policy is the only one).
  int max_retries = 3;
  double retry_backoff_seconds = 0.001;

  /// Virtual arrival time for open-loop workloads: latency is measured
  /// from here on the virtual timeline.  Closed-loop callers leave 0.
  double virtual_arrival = 0.0;
};

/// A multiplication request C = A * B.  Matrices are shared, not copied:
/// many jobs may multiply the same operands (the A^2 analytics pattern).
struct SpgemmJob {
  std::shared_ptr<const sparse::Csr> a;
  std::shared_ptr<const sparse::Csr> b;
  JobOptions options;
};

enum class JobOutcome {
  kCompleted,  // result matches contract; `c` is valid
  kRejected,   // admission refused it (queue full / infeasible / overload)
  kTimedOut,   // cancelled by the watchdog past timeout_seconds
  kFailed,     // executor error after all retries
};

const char* JobOutcomeName(JobOutcome outcome);

struct JobMetrics {
  std::uint64_t id = 0;
  /// Copied from JobOptions::tenant at finish time.
  std::string tenant;
  JobOutcome outcome = JobOutcome::kFailed;
  /// The path that actually ran (kAuto never appears here for completed
  /// jobs; meaningless for rejected ones).
  core::ExecutionMode executor = core::ExecutionMode::kAuto;
  /// False when the job left the system without any executor running — a
  /// rejection or a timeout that fired while still queued.  `executor` and
  /// the run stats are meaningless in that case.
  bool executed = false;
  /// Members of the operand-sharing batch the job ran in (1 == unbatched).
  int batch_size = 1;
  int attempts = 0;
  /// Scheduler re-plans caused by a device fault: the job was routed again
  /// onto the surviving devices (or degraded to CPU) after a lane it held
  /// faulted mid-run.  Distinct from `attempts`, which counts pool-overflow
  /// replans on the *same* placement.
  int failovers = 0;

  /// Pool index of the device the job (or its batch) ran on; -1 for jobs
  /// that never took a device lease (CPU-only routes, rejections).  For a
  /// multi-device span this is the primary device.
  int device_index = -1;
  /// Distinct devices the run occupied (0 for CPU-only, 1 for a normal
  /// device run, >1 when a Hybrid job spanned extra free devices).
  int devices_used = 0;

  // Virtual-timeline accounting (the repository's common currency: every
  // bench reports virtual seconds of the modeled V100 + Xeon node).
  double virtual_arrival = 0.0;
  double virtual_start = 0.0;    // when a lane accepted the job
  double virtual_finish = 0.0;   // start + the run's virtual makespan
  double queue_seconds = 0.0;    // virtual_start - virtual_arrival
  double exec_seconds = 0.0;     // the run's virtual makespan
  double latency_seconds = 0.0;  // virtual_finish - virtual_arrival

  double wall_seconds = 0.0;     // real time inside the executor

  /// True when the job ultimately failed with device OOM — the condition
  /// admission control exists to prevent; the stats report surfaces it.
  bool device_oom = false;

  core::RunStats stats;          // per-run stats of the winning attempt
};

struct JobResult {
  Status status;  // OK iff metrics.outcome == kCompleted
  sparse::Csr c;
  JobMetrics metrics;

  bool ok() const { return status.ok(); }
};

inline const char* JobOutcomeName(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kRejected: return "rejected";
    case JobOutcome::kTimedOut: return "timed_out";
    case JobOutcome::kFailed: return "failed";
  }
  return "unknown";
}

}  // namespace oocgemm::serve
