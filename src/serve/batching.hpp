// Operand-aware batch formation.
//
// Many serving workloads multiply different A's against one shared B (the
// A^2 / dataset-squaring analytics pattern), and the out-of-core pipeline's
// dominant recurring cost for such jobs is re-uploading B's column panels
// per job.  The batch former lets a scheduler worker that just popped a
// GPU-eligible job peel queued companions that share its B operand, so the
// whole group can run through core::BatchedOutOfCore under one device
// lease with B's panels uploaded once.
//
// Companion matching is by operand *identity*, not content: the fingerprint
// is the Csr's storage address plus its shape/nnz, which is exact for the
// shared_ptr-aliased operands the job API encourages and never
// false-positives two different matrices that happen to look alike (the
// address differs).  Distinct-but-equal copies of B simply don't batch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/scheduler.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::serve {

/// Cheap identity key for a shared operand.
struct OperandFingerprint {
  const void* storage = nullptr;  // address of the Csr object
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;

  friend bool operator==(const OperandFingerprint& a,
                         const OperandFingerprint& b) {
    return a.storage == b.storage && a.rows == b.rows && a.cols == b.cols &&
           a.nnz == b.nnz;
  }
};

OperandFingerprint FingerprintOperand(const sparse::Csr& m);

/// True when `item` may lead or join an operand-sharing batch: it wants (or
/// tolerates) the asynchronous GPU path and admission found a feasible
/// device plan.  Explicit CPU/sync/hybrid requests are honoured unbatched.
bool BatchEligible(const ScheduledJob& item);

/// True when `candidate` can ride in `leader`'s batch: both eligible and
/// the same B operand by fingerprint.
bool BatchableWith(const ScheduledJob& leader, const ScheduledJob& candidate);

/// Peels up to `max_companions` batchable companions for `leader` out of
/// `queue` (in queue order).  Returns only the companions; the leader stays
/// with the caller.
std::vector<std::unique_ptr<ScheduledJob>> PeelBatchCompanions(
    const ScheduledJob& leader, JobQueue& queue, std::size_t max_companions);

/// Device bytes to reserve for a batch: the members run sequentially on one
/// shared workspace sized for the largest plan, so the batch's demand is
/// the max — not the sum — of the members'.
std::int64_t BatchPlannedDeviceBytes(
    const std::vector<std::unique_ptr<ScheduledJob>>& batch);

}  // namespace oocgemm::serve
