#include "serve/batching.hpp"

#include <algorithm>

namespace oocgemm::serve {

OperandFingerprint FingerprintOperand(const sparse::Csr& m) {
  OperandFingerprint fp;
  fp.storage = &m;
  fp.rows = m.rows();
  fp.cols = m.cols();
  fp.nnz = m.nnz();
  return fp;
}

bool BatchEligible(const ScheduledJob& item) {
  if (item.job.b == nullptr || item.job.a == nullptr) return false;
  if (!item.demand.gpu_feasible) return false;
  const core::ExecutionMode mode = item.job.options.mode;
  return mode == core::ExecutionMode::kAuto ||
         mode == core::ExecutionMode::kGpuOutOfCore;
}

bool BatchableWith(const ScheduledJob& leader, const ScheduledJob& candidate) {
  return BatchEligible(leader) && BatchEligible(candidate) &&
         FingerprintOperand(*leader.job.b) ==
             FingerprintOperand(*candidate.job.b);
}

std::vector<std::unique_ptr<ScheduledJob>> PeelBatchCompanions(
    const ScheduledJob& leader, JobQueue& queue, std::size_t max_companions) {
  if (max_companions == 0 || !BatchEligible(leader)) return {};
  return queue.ExtractIf(
      [&leader](const std::unique_ptr<ScheduledJob>& candidate) {
        return candidate != nullptr && BatchableWith(leader, *candidate);
      },
      max_companions);
}

std::int64_t BatchPlannedDeviceBytes(
    const std::vector<std::unique_ptr<ScheduledJob>>& batch) {
  std::int64_t bytes = 0;
  for (const auto& item : batch) {
    bytes = std::max(bytes, item->demand.planned_device_bytes);
  }
  return bytes;
}

}  // namespace oocgemm::serve
