#include "serve/server_stats.hpp"

#include <algorithm>
#include <sstream>

#include "common/format.hpp"
#include "common/stats.hpp"

namespace oocgemm::serve {

ServerStats::ServerStats() {
  auto& reg = obs::MetricsRegistry::Default();
  metrics_.submitted = &reg.GetCounter("oocgemm_serve_jobs_submitted", {},
                                       "Jobs accepted into the server");
  metrics_.completed = &reg.GetCounter("oocgemm_serve_jobs_completed", {},
                                       "Jobs finished successfully");
  metrics_.rejected = &reg.GetCounter("oocgemm_serve_jobs_rejected", {},
                                      "Jobs refused by admission");
  metrics_.timed_out = &reg.GetCounter("oocgemm_serve_jobs_timed_out", {},
                                       "Jobs cancelled by the watchdog");
  metrics_.failed = &reg.GetCounter("oocgemm_serve_jobs_failed", {},
                                    "Jobs failed after all retries");
  metrics_.failovers = &reg.GetCounter(
      "oocgemm_serve_failovers", {},
      "Failover rounds: re-plans off a faulted device lane");
  metrics_.device_failures = &reg.GetCounter(
      "oocgemm_serve_device_failures", {},
      "Devices pulled from the pool after a mid-run fault");
  metrics_.batches = &reg.GetCounter("oocgemm_serve_batches", {},
                                     "Multi-job device runs dispatched");
  metrics_.batched_jobs = &reg.GetCounter(
      "oocgemm_serve_batched_jobs", {}, "Jobs that rode in batched runs");
  metrics_.batch_fallbacks = &reg.GetCounter(
      "oocgemm_serve_batch_fallbacks", {},
      "Batches that failed as a whole and re-ran per job");
  metrics_.reserve_shortfalls = &reg.GetCounter(
      "oocgemm_serve_reserve_shortfalls", {},
      "Scheduler reservation attempts the arbiter refused");
  metrics_.h2d_bytes = &reg.GetCounter(
      "oocgemm_serve_h2d_bytes", {},
      "Summed H2D bytes of completed jobs' winning runs");
  metrics_.d2h_bytes = &reg.GetCounter(
      "oocgemm_serve_d2h_bytes", {},
      "Summed D2H bytes of completed jobs' winning runs");
  metrics_.flops = &reg.GetCounter(
      "oocgemm_serve_flops", {}, "Summed flops of completed jobs");
  metrics_.latency = &reg.GetHistogram(
      "oocgemm_serve_latency_seconds", {},
      "Virtual arrival-to-finish latency of completed jobs");
  metrics_.queue_wait = &reg.GetHistogram(
      "oocgemm_serve_queue_seconds", {},
      "Virtual arrival-to-start wait of completed jobs");
  metrics_.batch_size = &reg.GetHistogram(
      "oocgemm_serve_batch_size", {}, "Jobs per dispatched batch");
}

void ServerStats::RecordSubmitted(const std::string& tenant) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++submitted_;
  metrics_.submitted->Add(1);
  if (!tenant.empty()) {
    ++tenant_submitted_[tenant];
    // Labeled live mirror; the registry escapes the tenant id on export.
    obs::MetricsRegistry::Default()
        .GetCounter("oocgemm_serve_tenant_submitted", {{"tenant", tenant}},
                    "Submissions per tenant id")
        .Add(1);
  }
}

void ServerStats::RecordOutcome(const JobMetrics& metrics) {
  std::unique_lock<std::mutex> lock(mutex_);
  finished_.push_back(metrics);
  if (metrics.failovers > 0) metrics_.failovers->Add(metrics.failovers);
  switch (metrics.outcome) {
    case JobOutcome::kCompleted:
      metrics_.completed->Add(1);
      metrics_.h2d_bytes->Add(metrics.stats.bytes_h2d);
      metrics_.d2h_bytes->Add(metrics.stats.bytes_d2h);
      metrics_.flops->Add(metrics.stats.flops);
      metrics_.latency->Record(metrics.latency_seconds);
      metrics_.queue_wait->Record(metrics.queue_seconds);
      break;
    case JobOutcome::kRejected: metrics_.rejected->Add(1); break;
    case JobOutcome::kTimedOut: metrics_.timed_out->Add(1); break;
    case JobOutcome::kFailed: metrics_.failed->Add(1); break;
  }
}

ServerReport ServerStats::Snapshot() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServerReport r;
  r.submitted = submitted_;
  r.batches = batches_;
  r.batched_jobs = batched_jobs_;
  r.batch_fallbacks = batch_fallbacks_;
  r.reserve_shortfalls = reserve_shortfalls_;
  if (batches_ > 0) {
    r.avg_batch_size =
        static_cast<double>(batched_jobs_) / static_cast<double>(batches_);
  }

  std::vector<double> latencies, queue_waits;
  double min_arrival = 0.0, max_finish = 0.0;
  double flops = 0.0;
  bool any_completed = false;
  for (const JobMetrics& m : finished_) {
    r.retries += std::max(0, m.attempts - 1);
    r.failed_over += m.failovers;
    if (m.device_oom) ++r.device_oom_failures;
    switch (m.outcome) {
      case JobOutcome::kCompleted: {
        ++r.completed;
        if (m.devices_used > 1) ++r.via_multi_device;
        if (m.device_index >= 0) {
          if (static_cast<std::size_t>(m.device_index) >= r.devices.size()) {
            r.devices.resize(static_cast<std::size_t>(m.device_index) + 1);
            for (std::size_t d = 0; d < r.devices.size(); ++d) {
              r.devices[d].index = static_cast<int>(d);
            }
          }
          ++r.devices[static_cast<std::size_t>(m.device_index)].completed;
        }
        latencies.push_back(m.latency_seconds);
        queue_waits.push_back(m.queue_seconds);
        flops += static_cast<double>(m.stats.flops);
        r.b_panel_uploads += m.stats.b_panel_uploads;
        r.b_panel_hits += m.stats.b_panel_hits;
        r.transfer_bytes_h2d += m.stats.bytes_h2d;
        r.transfer_bytes_d2h += m.stats.bytes_d2h;
        if (!any_completed || m.virtual_arrival < min_arrival) {
          min_arrival = m.virtual_arrival;
        }
        if (!any_completed || m.virtual_finish > max_finish) {
          max_finish = m.virtual_finish;
        }
        any_completed = true;
        switch (m.executor) {
          case core::ExecutionMode::kCpuOnly: ++r.via_cpu; break;
          case core::ExecutionMode::kHybrid: ++r.via_hybrid; break;
          default: ++r.via_gpu; break;
        }
        break;
      }
      case JobOutcome::kRejected: ++r.rejected; break;
      case JobOutcome::kTimedOut:
        ++r.timed_out;
        if (!m.executed) ++r.timed_out_in_queue;
        break;
      case JobOutcome::kFailed: ++r.failed; break;
    }
  }

  r.device_failures = device_failures_;
  if (r.devices.size() < device_failure_counts_.size()) {
    const std::size_t old = r.devices.size();
    r.devices.resize(device_failure_counts_.size());
    for (std::size_t d = old; d < r.devices.size(); ++d) {
      r.devices[d].index = static_cast<int>(d);
    }
  }
  for (std::size_t d = 0; d < device_failure_counts_.size(); ++d) {
    r.devices[d].failures = device_failure_counts_[d];
  }

  if (any_completed) {
    r.virtual_makespan_seconds = max_finish - min_arrival;
    if (r.virtual_makespan_seconds > 0.0) {
      r.jobs_per_second =
          static_cast<double>(r.completed) / r.virtual_makespan_seconds;
      r.total_gflops = flops / r.virtual_makespan_seconds / 1e9;
    }
  }
  {
    std::map<std::string, TenantServeReport> tenants;
    for (const auto& [tenant, count] : tenant_submitted_) {
      TenantServeReport& t = tenants[tenant];
      t.tenant = tenant;
      t.submitted = count;
    }
    for (const JobMetrics& m : finished_) {
      if (m.tenant.empty()) continue;
      TenantServeReport& t = tenants[m.tenant];
      t.tenant = m.tenant;
      switch (m.outcome) {
        case JobOutcome::kCompleted: ++t.completed; break;
        case JobOutcome::kRejected: ++t.rejected; break;
        case JobOutcome::kTimedOut: ++t.timed_out; break;
        case JobOutcome::kFailed: ++t.failed; break;
      }
    }
    for (auto& [tenant, t] : tenants) r.tenants.push_back(std::move(t));
  }

  Summary lat = Summarize(latencies);
  r.latency_p50 = lat.p50;
  r.latency_p95 = lat.p95;
  r.latency_p99 = lat.p99;
  r.latency_mean = lat.mean;
  r.queue_p95 = Summarize(queue_waits).p95;
  if (r.submitted > 0) {
    r.rejection_rate =
        static_cast<double>(r.rejected) / static_cast<double>(r.submitted);
  }
  return r;
}

std::string ServerReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"submitted\": " << submitted << ",\n";
  os << "  \"completed\": " << completed << ",\n";
  os << "  \"rejected\": " << rejected << ",\n";
  os << "  \"timed_out\": " << timed_out << ",\n";
  os << "  \"timed_out_in_queue\": " << timed_out_in_queue << ",\n";
  os << "  \"failed\": " << failed << ",\n";
  os << "  \"device_oom_failures\": " << device_oom_failures << ",\n";
  os << "  \"retries\": " << retries << ",\n";
  os << "  \"failed_over\": " << failed_over << ",\n";
  os << "  \"device_failures\": " << device_failures << ",\n";
  os << "  \"via_cpu\": " << via_cpu << ",\n";
  os << "  \"via_gpu\": " << via_gpu << ",\n";
  os << "  \"via_hybrid\": " << via_hybrid << ",\n";
  os << "  \"via_multi_device\": " << via_multi_device << ",\n";
  os << "  \"devices\": [";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const DeviceServeReport& d = devices[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"index\": " << d.index << ", \"completed\": " << d.completed
       << ", \"lease_count\": " << d.lease_count
       << ", \"contention_count\": " << d.contention_count
       << ", \"reserve_shortfalls\": " << d.reserve_shortfalls
       << ", \"unreserve_underflows\": " << d.unreserve_underflows
       << ", \"reserved_bytes\": " << d.reserved_bytes
       << ", \"capacity_bytes\": " << d.capacity_bytes
       << ", \"failures\": " << d.failures
       << ", \"healthy\": " << (d.healthy ? "true" : "false")
       << ", \"busy_seconds\": " << d.busy_seconds
       << ", \"utilization\": " << d.utilization << "}";
  }
  os << (devices.empty() ? "],\n" : "\n  ],\n");
  os << "  \"tenants\": [";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantServeReport& t = tenants[i];
    os << (i == 0 ? "\n" : ",\n");
    // JsonEscape: tenant ids are caller bytes and must not break the
    // document no matter what they contain.
    os << "    {\"tenant\": " << JsonEscape(t.tenant)
       << ", \"submitted\": " << t.submitted
       << ", \"completed\": " << t.completed
       << ", \"rejected\": " << t.rejected
       << ", \"timed_out\": " << t.timed_out
       << ", \"failed\": " << t.failed << "}";
  }
  os << (tenants.empty() ? "],\n" : "\n  ],\n");
  os << "  \"batches\": " << batches << ",\n";
  os << "  \"batched_jobs\": " << batched_jobs << ",\n";
  os << "  \"avg_batch_size\": " << avg_batch_size << ",\n";
  os << "  \"batch_fallbacks\": " << batch_fallbacks << ",\n";
  os << "  \"b_panel_uploads\": " << b_panel_uploads << ",\n";
  os << "  \"b_panel_hits\": " << b_panel_hits << ",\n";
  os << "  \"transfer_bytes_h2d\": " << transfer_bytes_h2d << ",\n";
  os << "  \"transfer_bytes_d2h\": " << transfer_bytes_d2h << ",\n";
  os << "  \"reserve_shortfalls\": " << reserve_shortfalls << ",\n";
  os << "  \"virtual_makespan_seconds\": " << virtual_makespan_seconds
     << ",\n";
  os << "  \"jobs_per_second\": " << jobs_per_second << ",\n";
  os << "  \"total_gflops\": " << total_gflops << ",\n";
  os << "  \"latency_p50\": " << latency_p50 << ",\n";
  os << "  \"latency_p95\": " << latency_p95 << ",\n";
  os << "  \"latency_p99\": " << latency_p99 << ",\n";
  os << "  \"latency_mean\": " << latency_mean << ",\n";
  os << "  \"queue_p95\": " << queue_p95 << ",\n";
  os << "  \"rejection_rate\": " << rejection_rate << "\n";
  os << "}";
  return os.str();
}

std::string ServerReport::DebugString() const {
  std::ostringstream os;
  os << "jobs " << completed << "/" << submitted << " ok (" << rejected
     << " rejected, " << timed_out << " timed out, " << failed << " failed), "
     << Fixed(jobs_per_second, 2) << " jobs/s over "
     << HumanSeconds(virtual_makespan_seconds) << ", latency p50 "
     << HumanSeconds(latency_p50) << " p95 " << HumanSeconds(latency_p95)
     << " p99 " << HumanSeconds(latency_p99);
  if (batches > 0) {
    os << ", " << batched_jobs << " jobs in " << batches << " batches (avg "
       << Fixed(avg_batch_size, 2) << ", " << b_panel_uploads
       << " B-panel uploads)";
  }
  if (failed_over > 0 || device_failures > 0) {
    os << "; " << failed_over << " failovers across " << device_failures
       << " device failures";
  }
  if (devices.size() > 1) {
    os << "; devices:";
    for (const DeviceServeReport& d : devices) {
      os << " [" << d.index << "] " << d.completed << " jobs, "
         << d.lease_count << " leases, " << Fixed(d.utilization * 100.0, 1)
         << "% busy";
      if (!d.healthy) os << " (DEAD)";
    }
    if (via_multi_device > 0) {
      os << "; " << via_multi_device << " multi-device runs";
    }
  }
  return os.str();
}

}  // namespace oocgemm::serve
