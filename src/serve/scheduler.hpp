// The scheduler: worker threads that drain the admitted-job queue and
// multiplex jobs over the node's processors.
//
//  * Device work goes through core::DevicePool — one exclusive-lease
//    DeviceArbiter per device (each virtual GPU's timeline and allocator
//    are single-tenant state).  CPU-only jobs bypass the pool and run
//    concurrently on the shared thread pool.
//  * Placement: GPU-eligible work goes to the least-reserved-bytes free
//    device whose capacity holds the job's planned working set; when every
//    such device is busy, small kAuto jobs degrade to the CPU and larger
//    ones wait their turn.  With max_devices_per_job > 1, a multi-chunk
//    Hybrid job additionally grabs whatever other candidates are free at
//    dispatch and spans them via core::MultiGpuHybrid.
//  * An operand-sharing batch pins to exactly one device: its persistent
//    GpuWorkspace and resident B panels are that device's memory.
//  * Pool exhaustion retries here, not in the executor: each retry doubles
//    the plan's nnz safety factor and backs off exponentially (real sleep)
//    before re-planning, bounded by JobOptions::max_retries.
//  * A watchdog thread drives JobOptions::timeout_seconds through the
//    executors' cooperative-cancel token.
//
// Completed jobs are booked onto virtual *lanes* — one GPU lane per pool
// device, a few CPU lanes — continuing the repository's virtual-time
// methodology: a job starts at max(its arrival, lane availability) and
// occupies its lane(s) for the run's virtual makespan (Hybrid occupies a
// CPU lane and its device lane(s) together).  Throughput and latency
// percentiles in ServerStats come from this timeline, so they compose with
// every other virtual-seconds figure in the repo.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "calibrate/calibrator.hpp"
#include "common/thread_pool.hpp"
#include "core/device_pool.hpp"
#include "kernels/accumulators.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/server_stats.hpp"

namespace oocgemm::serve {

struct SchedulerConfig {
  /// Concurrent scheduler workers (each runs one job at a time).
  int num_workers = 3;
  /// Virtual CPU lanes for the booking timeline.  Roughly "how many CPU
  /// jobs the socket co-runs at full cost-model rate" — an approximation;
  /// keep it <= num_workers - 1 so a lane always has a worker behind it.
  int cpu_lanes = 2;
  /// Plans with at most this many chunks count as small (degradable).
  int small_job_chunks = 1;
  double watchdog_period_seconds = 0.0005;

  /// Upper bound on the members of an operand-sharing batch dispatched as
  /// one device run (core::BatchedOutOfCore); 1 disables batch formation.
  /// A worker that pops a GPU-eligible job peels up to max_batch_jobs - 1
  /// queued companions sharing its B operand.
  int max_batch_jobs = 1;

  /// Devices one multi-chunk Hybrid job may span when extra pool devices
  /// are free at dispatch (via core::MultiGpuHybrid).  1 keeps Algorithm
  /// 4's single-GPU hybrid; spanning is opportunistic — it never waits for
  /// a second device, so queued neighbours are not starved.
  int max_devices_per_job = 1;

  /// A worker holding a device lease whose TryReserve is refused waits up
  /// to this long (polling) for outstanding reservations to drain before
  /// failing an explicit-GPU job with RESOURCE_EXHAUSTED.  kAuto jobs
  /// degrade to the CPU path immediately instead of waiting.
  double reserve_wait_seconds = 0.05;
  double reserve_poll_seconds = 0.002;

  /// Accumulator strategy forced on every job's kernels (`--kernel`).
  /// kAuto keeps per-row-group registry routing; any other value
  /// overrides the job's own executor options at dispatch.
  kernels::AccumulatorKind kernel = kernels::AccumulatorKind::kAuto;
};

/// A job after admission, en route to a worker.
struct ScheduledJob {
  std::uint64_t id = 0;
  SpgemmJob job;
  JobDemand demand;
  std::promise<JobResult> promise;
  std::chrono::steady_clock::time_point submit_wall;
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Failovers inherited from a batch whose device faulted: when the batch
  /// falls back to per-job runs, each member starts its metrics from here.
  int failover_credit = 0;
};

using JobQueue = BoundedJobQueue<std::unique_ptr<ScheduledJob>>;

class Scheduler {
 public:
  Scheduler(core::DevicePool& devices, ThreadPool& pool,
            SchedulerConfig config, JobQueue& queue,
            AdmissionController& admission, ServerStats& stats);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void Start();
  /// Closes the queue, lets workers drain every queued job, joins.
  void Stop();

  /// Invoked after each job's promise is fulfilled (drain bookkeeping).
  void set_on_job_done(std::function<void()> fn) { on_job_done_ = std::move(fn); }

  /// The server's cost-model calibrator (may be null).  In apply mode the
  /// dispatch path overrides each job's hybrid split and kernel-routing
  /// scales with the dispatched device's fitted state.  Set before Start().
  void set_calibrator(calibrate::CostModelCalibrator* calibrator) {
    calibrator_ = calibrator;
  }

  core::DevicePool& device_pool() { return devices_; }
  const core::DevicePool& device_pool() const { return devices_; }
  /// The first device's arbiter — the single-device view older callers and
  /// tests use; identical to device_pool().arbiter(0).
  core::DeviceArbiter& arbiter() { return devices_.arbiter(0); }
  /// Current frontier of the booking timeline (max over lanes).
  double VirtualNow() const;
  /// Cumulative booked virtual seconds of each device lane (utilization
  /// numerator of the per-device report sections).
  std::vector<double> GpuLaneBusySeconds() const;

 private:
  void WorkerLoop();
  void WatchdogLoop();
  void RunJob(ScheduledJob& item);
  /// Runs an operand-sharing batch (leader first) through
  /// core::BatchedOutOfCore under one lease; falls back to per-job RunJob
  /// when the batch fails as a whole.  Fulfils every member's promise and
  /// fires on_job_done_ per member.
  void RunBatch(std::vector<std::unique_ptr<ScheduledJob>>& batch);
  /// True when the job's timeout elapsed (or it was cancelled) while still
  /// queued; finishes it with the not-executed marker when so.
  bool FinishIfExpiredInQueue(ScheduledJob& item);
  /// Completes a job: releases admission, records stats, sets the promise.
  void FinishJob(ScheduledJob& item, JobResult result);
  StatusOr<core::RunResult> Dispatch(core::ExecutionMode mode,
                                     const ScheduledJob& item,
                                     const core::ExecutorOptions& exec,
                                     const std::vector<vgpu::Device*>& devs);
  /// Books `duration` for the job on a CPU lane (when `uses_cpu`) and the
  /// listed device lanes; returns {start, finish}.
  std::pair<double, double> BookLanes(bool uses_cpu,
                                      const std::vector<int>& gpu_lanes,
                                      double arrival, double duration);
  /// Books `duration` on one device lane only; returns the booked start.
  double BookGpuSpan(int device_index, double arrival, double duration);
  void WatchJob(const ScheduledJob& item);
  void UnwatchJob(const ScheduledJob& item);

  core::DevicePool& devices_;
  ThreadPool& pool_;
  SchedulerConfig config_;
  JobQueue& queue_;
  AdmissionController& admission_;
  ServerStats& stats_;
  calibrate::CostModelCalibrator* calibrator_ = nullptr;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::atomic<bool> stopping_{false};
  std::function<void()> on_job_done_;

  // Watchdog registry: jobs currently executing with a wall deadline.
  struct Watched {
    std::shared_ptr<std::atomic<bool>> cancel;
    std::chrono::steady_clock::time_point deadline;
  };
  std::mutex watch_mutex_;
  std::map<std::uint64_t, Watched> watched_;

  // Virtual booking lanes: one per pool device, plus the CPU lanes.
  mutable std::mutex lanes_mutex_;
  std::vector<double> gpu_lanes_;
  std::vector<double> gpu_busy_;  // summed booked durations per device lane
  std::vector<double> cpu_lanes_;
};

}  // namespace oocgemm::serve
