// The scheduler: worker threads that drain the admitted-job queue and
// multiplex jobs over the node's two processors.
//
//  * Device work goes through core::DeviceArbiter — exclusive leases over
//    the shared virtual GPU (its timeline and allocator are single-tenant
//    state).  CPU-only jobs bypass the arbiter and run concurrently on the
//    shared thread pool.
//  * Routing (for ExecutionMode::kAuto): GPU-infeasible jobs run
//    CpuMulticore; single-chunk jobs take the device if it is free *right
//    now* and degrade to the CPU when it is saturated; multi-chunk jobs
//    run Hybrid and wait their turn for the device.
//  * Pool exhaustion retries here, not in the executor: each retry doubles
//    the plan's nnz safety factor and backs off exponentially (real sleep)
//    before re-planning, bounded by JobOptions::max_retries.
//  * A watchdog thread drives JobOptions::timeout_seconds through the
//    executors' cooperative-cancel token.
//
// Completed jobs are booked onto virtual *lanes* — one GPU lane, a few CPU
// lanes — continuing the repository's virtual-time methodology: a job
// starts at max(its arrival, lane availability) and occupies its lane(s)
// for the run's virtual makespan (Hybrid occupies a CPU lane and the GPU
// lane together).  Throughput and latency percentiles in ServerStats come
// from this timeline, so they compose with every other virtual-seconds
// figure in the repo.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/device_arbiter.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/server_stats.hpp"

namespace oocgemm::serve {

struct SchedulerConfig {
  /// Concurrent scheduler workers (each runs one job at a time).
  int num_workers = 3;
  /// Virtual CPU lanes for the booking timeline.  Roughly "how many CPU
  /// jobs the socket co-runs at full cost-model rate" — an approximation;
  /// keep it <= num_workers - 1 so a lane always has a worker behind it.
  int cpu_lanes = 2;
  /// Plans with at most this many chunks count as small (degradable).
  int small_job_chunks = 1;
  double watchdog_period_seconds = 0.0005;

  /// Upper bound on the members of an operand-sharing batch dispatched as
  /// one device run (core::BatchedOutOfCore); 1 disables batch formation.
  /// A worker that pops a GPU-eligible job peels up to max_batch_jobs - 1
  /// queued companions sharing its B operand.
  int max_batch_jobs = 1;

  /// A worker holding a device lease whose TryReserve is refused waits up
  /// to this long (polling) for outstanding reservations to drain before
  /// failing an explicit-GPU job with RESOURCE_EXHAUSTED.  kAuto jobs
  /// degrade to the CPU path immediately instead of waiting.
  double reserve_wait_seconds = 0.05;
  double reserve_poll_seconds = 0.002;
};

/// A job after admission, en route to a worker.
struct ScheduledJob {
  std::uint64_t id = 0;
  SpgemmJob job;
  JobDemand demand;
  std::promise<JobResult> promise;
  std::chrono::steady_clock::time_point submit_wall;
  std::shared_ptr<std::atomic<bool>> cancel;
};

using JobQueue = BoundedJobQueue<std::unique_ptr<ScheduledJob>>;

class Scheduler {
 public:
  Scheduler(vgpu::Device& device, ThreadPool& pool, SchedulerConfig config,
            JobQueue& queue, AdmissionController& admission,
            ServerStats& stats);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  void Start();
  /// Closes the queue, lets workers drain every queued job, joins.
  void Stop();

  /// Invoked after each job's promise is fulfilled (drain bookkeeping).
  void set_on_job_done(std::function<void()> fn) { on_job_done_ = std::move(fn); }

  core::DeviceArbiter& arbiter() { return arbiter_; }
  /// Current frontier of the booking timeline (max over lanes).
  double VirtualNow() const;

 private:
  void WorkerLoop();
  void WatchdogLoop();
  void RunJob(ScheduledJob& item);
  /// Runs an operand-sharing batch (leader first) through
  /// core::BatchedOutOfCore under one lease; falls back to per-job RunJob
  /// when the batch fails as a whole.  Fulfils every member's promise and
  /// fires on_job_done_ per member.
  void RunBatch(std::vector<std::unique_ptr<ScheduledJob>>& batch);
  /// True when the job's timeout elapsed (or it was cancelled) while still
  /// queued; finishes it with the not-executed marker when so.
  bool FinishIfExpiredInQueue(ScheduledJob& item);
  /// Completes a job: releases admission, records stats, sets the promise.
  void FinishJob(ScheduledJob& item, JobResult result);
  StatusOr<core::RunResult> Dispatch(core::ExecutionMode mode,
                                     const ScheduledJob& item,
                                     const core::ExecutorOptions& exec);
  /// Books `duration` for the job on its lane(s); returns {start, finish}.
  std::pair<double, double> BookLanes(core::ExecutionMode mode,
                                      double arrival, double duration);
  /// Books `duration` on the GPU lane only; returns the booked start.
  double BookGpuSpan(double arrival, double duration);
  void WatchJob(const ScheduledJob& item);
  void UnwatchJob(const ScheduledJob& item);

  vgpu::Device& device_;
  ThreadPool& pool_;
  SchedulerConfig config_;
  JobQueue& queue_;
  AdmissionController& admission_;
  ServerStats& stats_;
  core::DeviceArbiter arbiter_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
  std::atomic<bool> stopping_{false};
  std::function<void()> on_job_done_;

  // Watchdog registry: jobs currently executing with a wall deadline.
  struct Watched {
    std::shared_ptr<std::atomic<bool>> cancel;
    std::chrono::steady_clock::time_point deadline;
  };
  std::mutex watch_mutex_;
  std::map<std::uint64_t, Watched> watched_;

  // Virtual booking lanes.
  mutable std::mutex lanes_mutex_;
  double gpu_lane_ = 0.0;
  std::vector<double> cpu_lanes_;
};

}  // namespace oocgemm::serve
