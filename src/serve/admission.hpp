// Admission control: decide — before a job consumes a worker — whether it
// can run at all and whether the node has room for it right now.
//
// The decision reuses the library's cheap estimators (the OCEAN insight:
// output estimation is orders of magnitude cheaper than the SpGEMM):
//  * sparse::EstimateRowNnz gives the expected output size, hence the
//    job's host-memory footprint;
//  * partition::PlanPanels answers GPU feasibility ("is there any panel
//    split whose worst chunk working set fits device memory?") and, when
//    feasible, the exact pool bytes the pipeline will pre-allocate.
//
// Jobs whose demand can never fit are rejected immediately (never OOM
// mid-flight); jobs that merely exceed the *current* outstanding-bytes
// budget are rejected with RESOURCE_EXHAUSTED so the client can retry —
// the bounded queue provides the "wait" alternative.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "calibrate/model.hpp"
#include "common/saturating.hpp"
#include "common/status.hpp"
#include "core/executor_options.hpp"
#include "core/spgemm.hpp"
#include "estimate/estimator.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::serve {

/// How Submit prices a job before admitting it.
///  * kExact — the original path: sparse::TotalFlops + the sampled-symbolic
///    EstimateRowNnz (runs real symbolic multiplies on sampled rows) + an
///    exact-analysis panel plan.  O(nnz) and then some, per submission.
///  * kEstimate — the OCEAN path: estimate::EstimateProduct (structure-only
///    strided draws) + an estimate-seeded panel plan.  Falls back to kExact
///    per job when the estimator's own variance check says the sample is
///    unreliable.
enum class AdmissionMode { kExact, kEstimate };

const char* AdmissionModeName(AdmissionMode mode);
/// Parses "exact" / "estimate"; returns false on anything else.
bool ParseAdmissionMode(const std::string& text, AdmissionMode* mode);

/// Estimated resource footprint of one SpGEMM job.  All byte/flop sums are
/// saturating: demand formed from huge synthetic shapes clamps to
/// INT64_MAX instead of wrapping negative (and then passing every budget
/// check) — Admit rejects saturated demand outright.
struct JobDemand {
  std::int64_t flops = 0;
  double est_nnz_out = 0.0;
  std::int64_t bytes_a = 0;
  std::int64_t bytes_b = 0;
  /// Estimated host bytes of the assembled product.
  std::int64_t est_bytes_out = 0;
  /// Inputs + estimated output: what one in-flight copy of the job pins in
  /// host memory.  Saturating.
  std::int64_t host_bytes() const {
    return common::SaturatingAdd(common::SaturatingAdd(bytes_a, bytes_b),
                                 est_bytes_out);
  }
  /// True when any byte quantity clamped at the int64 rail: the real
  /// footprint is unrepresentable, so the job can never be admitted.
  bool overflowed() const {
    return common::IsSaturated(bytes_a) || common::IsSaturated(bytes_b) ||
           common::IsSaturated(est_bytes_out) ||
           common::IsSaturated(host_bytes());
  }

  /// True when the panel planner found a partitioning that fits the device.
  bool gpu_feasible = false;
  /// Chunk count of that plan (1 == in-core, the "small job" signal).
  int planned_chunks = 0;
  /// Device bytes the asynchronous pipeline will pre-allocate under that
  /// plan: double-buffered chunk pools plus the panel-cache slots.
  std::int64_t planned_device_bytes = 0;

  /// True when the demand was priced by the sampling estimator.
  bool estimated = false;
  /// True when estimate mode was requested but the estimator's variance
  /// check failed and the exact path priced the job instead.
  bool estimator_fallback = false;
  /// The estimator's relative standard error (estimated demand only).
  double est_rel_stderr = 0.0;
  /// Host wall seconds the demand analysis took (either path) — the
  /// quantity the estimate path is built to shrink.
  double analysis_seconds = 0.0;
  /// Modeled execution latency of the job (calibrate::EstimateExecSeconds):
  /// transfers plus compute plus launch overheads at the calibrated rates
  /// when a model was supplied, the static rates otherwise.  The quantity
  /// AdmissionLimits::max_est_exec_seconds gates on.
  double est_exec_seconds = 0.0;
  /// The structure estimate behind an estimated demand; the server threads
  /// it into ExecutorOptions::plan as the planner's hint so the job's run
  /// never re-estimates.
  std::shared_ptr<const estimate::ProductEstimate> estimate;
};

/// Runs the exact estimators; never touches the device.  `model` (may be
/// null) supplies calibrated rates for the latency estimate; feeding a
/// CalibratedModel::FromStatic model reproduces the null-model demand
/// bit-for-bit (the differential harness's contract).
JobDemand EstimateJobDemand(const sparse::Csr& a, const sparse::Csr& b,
                            std::int64_t device_capacity,
                            const core::ExecutorOptions& exec,
                            const calibrate::CalibratedModel* model = nullptr);

/// The estimate-mode path: prices the job from estimate::EstimateProduct
/// and an estimate-seeded plan; falls back to EstimateJobDemand (setting
/// estimator_fallback) when the sample is unreliable.
JobDemand EstimateJobDemandSampled(const sparse::Csr& a, const sparse::Csr& b,
                                   std::int64_t device_capacity,
                                   const core::ExecutorOptions& exec,
                                   const estimate::EstimatorOptions& opts,
                                   const calibrate::CalibratedModel* model =
                                       nullptr);

struct AdmissionLimits {
  /// Ceiling on the summed host_bytes() of admitted, not-yet-finished jobs.
  std::int64_t host_bytes_budget = 4ll << 30;
  /// Ceiling on the summed planned_device_bytes of admitted GPU-feasible
  /// jobs — the pool-wide headroom check for multi-device nodes.  0 means
  /// uncapped (the per-device reservation ledgers still bound what runs);
  /// servers typically set it to DevicePool::total_capacity().
  std::int64_t device_bytes_budget = 0;
  /// Deadline gate on JobDemand::est_exec_seconds: jobs whose modeled
  /// latency exceeds it are rejected with FAILED_PRECONDITION (waiting
  /// cannot make the job faster).  0 disables the gate.
  double max_est_exec_seconds = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits) : limits_(limits) {}

  /// OK admits the job and charges its footprint to the ledger (balance it
  /// with Release when the job leaves the system).  Non-OK:
  ///  * FAILED_PRECONDITION — a GPU-only mode was requested but no panel
  ///    split fits the device (retrying cannot help);
  ///  * RESOURCE_EXHAUSTED — the node is over the outstanding-bytes budget
  ///    right now (retrying later can).
  Status Admit(const JobDemand& demand, core::ExecutionMode mode);
  void Release(const JobDemand& demand);

  std::int64_t outstanding_bytes() const;
  /// Summed planned_device_bytes of admitted GPU-feasible jobs in flight.
  std::int64_t outstanding_device_bytes() const;
  const AdmissionLimits& limits() const { return limits_; }

 private:
  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::int64_t outstanding_ = 0;
  std::int64_t outstanding_device_ = 0;
};

}  // namespace oocgemm::serve
