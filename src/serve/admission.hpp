// Admission control: decide — before a job consumes a worker — whether it
// can run at all and whether the node has room for it right now.
//
// The decision reuses the library's cheap estimators (the OCEAN insight:
// output estimation is orders of magnitude cheaper than the SpGEMM):
//  * sparse::EstimateRowNnz gives the expected output size, hence the
//    job's host-memory footprint;
//  * partition::PlanPanels answers GPU feasibility ("is there any panel
//    split whose worst chunk working set fits device memory?") and, when
//    feasible, the exact pool bytes the pipeline will pre-allocate.
//
// Jobs whose demand can never fit are rejected immediately (never OOM
// mid-flight); jobs that merely exceed the *current* outstanding-bytes
// budget are rejected with RESOURCE_EXHAUSTED so the client can retry —
// the bounded queue provides the "wait" alternative.
#pragma once

#include <cstdint>
#include <mutex>

#include "common/status.hpp"
#include "core/executor_options.hpp"
#include "core/spgemm.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::serve {

/// Estimated resource footprint of one SpGEMM job.
struct JobDemand {
  std::int64_t flops = 0;
  double est_nnz_out = 0.0;
  std::int64_t bytes_a = 0;
  std::int64_t bytes_b = 0;
  /// Estimated host bytes of the assembled product.
  std::int64_t est_bytes_out = 0;
  /// Inputs + estimated output: what one in-flight copy of the job pins in
  /// host memory.
  std::int64_t host_bytes() const { return bytes_a + bytes_b + est_bytes_out; }

  /// True when the panel planner found a partitioning that fits the device.
  bool gpu_feasible = false;
  /// Chunk count of that plan (1 == in-core, the "small job" signal).
  int planned_chunks = 0;
  /// Device bytes the asynchronous pipeline will pre-allocate under that
  /// plan: double-buffered chunk pools plus the panel-cache slots.
  std::int64_t planned_device_bytes = 0;
};

/// Runs the estimators; never touches the device.
JobDemand EstimateJobDemand(const sparse::Csr& a, const sparse::Csr& b,
                            std::int64_t device_capacity,
                            const core::ExecutorOptions& exec);

struct AdmissionLimits {
  /// Ceiling on the summed host_bytes() of admitted, not-yet-finished jobs.
  std::int64_t host_bytes_budget = 4ll << 30;
  /// Ceiling on the summed planned_device_bytes of admitted GPU-feasible
  /// jobs — the pool-wide headroom check for multi-device nodes.  0 means
  /// uncapped (the per-device reservation ledgers still bound what runs);
  /// servers typically set it to DevicePool::total_capacity().
  std::int64_t device_bytes_budget = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits) : limits_(limits) {}

  /// OK admits the job and charges its footprint to the ledger (balance it
  /// with Release when the job leaves the system).  Non-OK:
  ///  * FAILED_PRECONDITION — a GPU-only mode was requested but no panel
  ///    split fits the device (retrying cannot help);
  ///  * RESOURCE_EXHAUSTED — the node is over the outstanding-bytes budget
  ///    right now (retrying later can).
  Status Admit(const JobDemand& demand, core::ExecutionMode mode);
  void Release(const JobDemand& demand);

  std::int64_t outstanding_bytes() const;
  /// Summed planned_device_bytes of admitted GPU-feasible jobs in flight.
  std::int64_t outstanding_device_bytes() const;
  const AdmissionLimits& limits() const { return limits_; }

 private:
  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::int64_t outstanding_ = 0;
  std::int64_t outstanding_device_ = 0;
};

}  // namespace oocgemm::serve
