#include "serve/server.hpp"

namespace oocgemm::serve {

SpgemmServer::SpgemmServer(vgpu::Device& device, ThreadPool& pool,
                           ServerConfig config)
    : SpgemmServer(std::vector<vgpu::Device*>{&device}, pool,
                   std::move(config)) {}

SpgemmServer::SpgemmServer(std::vector<vgpu::Device*> devices,
                           ThreadPool& pool, ServerConfig config)
    : devices_(std::move(devices)),
      config_(config),
      admission_(config.admission),
      queue_(config.max_queue),
      scheduler_(devices_, pool, config.scheduler, queue_, admission_,
                 stats_) {
  const obs::Labels queue_labels =
      config_.instance_label.empty()
          ? obs::Labels{}
          : obs::Labels{{"shard", config_.instance_label}};
  queue_.set_depth_gauge(&obs::MetricsRegistry::Default().GetGauge(
      "oocgemm_serve_queue_depth", queue_labels,
      "Jobs waiting in the bounded priority queue"));
  if (!config_.metrics_path.empty()) {
    obs::Snapshotter::Options opts;
    opts.interval_seconds = config_.metrics_interval_seconds;
    opts.prometheus_path = config_.metrics_path;
    opts.json_path = config_.metrics_path + ".json";
    snapshotter_ = std::make_unique<obs::Snapshotter>(
        obs::MetricsRegistry::Default(), std::move(opts));
  }
  scheduler_.set_on_job_done([this] {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
  });
  if (config_.calibrate.mode != calibrate::CalibrateMode::kOff) {
    calibrator_ = std::make_unique<calibrate::CostModelCalibrator>(
        config_.calibrate, &devices_);
    scheduler_.set_calibrator(calibrator_.get());
    calibrator_->Start();
  }
  scheduler_.Start();
}

SpgemmServer::~SpgemmServer() { Shutdown(); }

std::future<JobResult> SpgemmServer::Reject(std::uint64_t id, Status status,
                                            const std::string& tenant) {
  static obs::Counter& rejects = obs::MetricsRegistry::Default().GetCounter(
      "oocgemm_serve_admission_rejects", {},
      "Submissions refused before reaching the queue");
  rejects.Add(1);
  JobResult result;
  result.status = std::move(status);
  result.metrics.id = id;
  result.metrics.tenant = tenant;
  result.metrics.outcome = JobOutcome::kRejected;
  stats_.RecordOutcome(result.metrics);
  std::promise<JobResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

std::future<JobResult> SpgemmServer::Submit(SpgemmJob job) {
  const std::uint64_t id = next_id_.fetch_add(1);
  stats_.RecordSubmitted(job.options.tenant);

  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    if (shut_down_) {
      lock.unlock();
      return Reject(id, Status::FailedPrecondition("server is shut down"),
                    job.options.tenant);
    }
  }
  if (!job.a || !job.b) {
    return Reject(id, Status::InvalidArgument("job is missing an operand"),
                  job.options.tenant);
  }
  if (job.a->cols() != job.b->rows()) {
    return Reject(id, Status::InvalidArgument("dimension mismatch"),
                  job.options.tenant);
  }
  if (job.options.timeout_seconds <= 0.0) {
    job.options.timeout_seconds = config_.default_timeout_seconds;
  }

  const bool use_estimate = config_.admission_mode == AdmissionMode::kEstimate;
  // In apply mode admission prices latency at the fitted rates; observe
  // mode keeps the static estimate (apply_model() is null there).
  std::shared_ptr<const calibrate::CalibratedModel> model =
      calibrator_ != nullptr ? calibrator_->apply_model() : nullptr;
  JobDemand demand =
      use_estimate
          ? EstimateJobDemandSampled(*job.a, *job.b,
                                     devices_.max_device_capacity(),
                                     job.options.exec, config_.estimator,
                                     model.get())
          : EstimateJobDemand(*job.a, *job.b, devices_.max_device_capacity(),
                              job.options.exec, model.get());
  obs::MetricsRegistry::Default()
      .GetCounter("oocgemm_estimate_admissions_total",
                  {{"mode", demand.estimated ? "estimate" : "exact"}},
                  "Admission decisions by the demand path that priced them "
                  "(estimate-mode fallbacks count as exact)")
      .Add(1);
  if (demand.estimated) {
    // The run should plan and order chunks from the estimate admission
    // already paid for — not re-run the exact analysis.
    job.options.exec.plan.use_sampling_estimator = true;
    job.options.exec.plan.estimator_seed = config_.estimator.seed;
    job.options.exec.plan.estimate_hint = demand.estimate;
  }
  Status admitted = admission_.Admit(demand, job.options.mode);
  if (!admitted.ok()) {
    return Reject(id, std::move(admitted), job.options.tenant);
  }

  auto item = std::make_unique<ScheduledJob>();
  item->id = id;
  item->demand = demand;
  item->submit_wall = std::chrono::steady_clock::now();
  item->cancel = std::make_shared<std::atomic<bool>>(false);
  const int priority = job.options.priority;
  const std::string tenant = job.options.tenant;
  item->job = std::move(job);
  std::future<JobResult> future = item->promise.get_future();

  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    ++pending_;
  }
  if (!queue_.TryPush(priority, std::move(item))) {
    {
      std::unique_lock<std::mutex> lock(pending_mutex_);
      if (--pending_ == 0) pending_cv_.notify_all();
    }
    admission_.Release(demand);
    return Reject(id,
                  Status::ResourceExhausted(
                      "job queue is full (" +
                      std::to_string(queue_.capacity()) + " pending)"),
                  tenant);
  }
  return future;
}

void SpgemmServer::Drain() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void SpgemmServer::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    shut_down_ = true;
  }
  scheduler_.Stop();  // drains the queue: every accepted job resolves
  // Calibrator after the scheduler: its final tick folds in the last jobs'
  // traffic, and the snapshotter below then exports the final fitted state.
  if (calibrator_ != nullptr) calibrator_->Stop();
  // Final snapshot after the scheduler quiesced: the exported files end at
  // the terminal counter state the reconciliation checks compare against.
  if (snapshotter_ != nullptr) snapshotter_->Stop();
}

ShardProbe SpgemmServer::Probe() const {
  ShardProbe p;
  p.queue_depth = queue_.size();
  p.queue_capacity = queue_.capacity();
  p.healthy_devices = devices_.healthy_count();
  p.total_devices = devices_.size();
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    p.accepting = !shut_down_;
  }
  return p;
}

ServerReport SpgemmServer::Report() const {
  ServerReport r = stats_.Snapshot();
  const std::size_t n = static_cast<std::size_t>(devices_.size());
  if (r.devices.size() < n) r.devices.resize(n);
  const std::vector<double> busy = scheduler_.GpuLaneBusySeconds();
  for (std::size_t i = 0; i < n; ++i) {
    DeviceServeReport& d = r.devices[i];
    d.index = static_cast<int>(i);
    const core::DeviceArbiter& arb = devices_.arbiter(static_cast<int>(i));
    d.lease_count = arb.lease_count();
    d.contention_count = arb.contention_count();
    d.reserve_shortfalls = arb.reserve_shortfalls();
    d.unreserve_underflows = arb.unreserve_underflows();
    d.reserved_bytes = arb.reserved_bytes();
    d.capacity_bytes = devices_.device(static_cast<int>(i)).capacity();
    d.healthy = devices_.health(static_cast<int>(i)) ==
                core::DevicePool::DeviceHealth::kHealthy;
    if (i < busy.size()) d.busy_seconds = busy[i];
    if (r.virtual_makespan_seconds > 0.0) {
      d.utilization = d.busy_seconds / r.virtual_makespan_seconds;
    }
  }
  return r;
}

}  // namespace oocgemm::serve
