#include "serve/admission.hpp"

#include <numeric>

#include "common/format.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "partition/panel_plan.hpp"
#include "sparse/analysis.hpp"
#include "sparse/types.hpp"

namespace oocgemm::serve {

namespace {

/// Saturating host-bytes estimate of the assembled product.
std::int64_t EstBytesOut(double est_nnz_out, sparse::index_t rows) {
  const double entry_bytes = static_cast<double>(sizeof(sparse::index_t) +
                                                 sizeof(sparse::value_t));
  return common::SaturatingAdd(
      common::SaturatingCast(est_nnz_out * entry_bytes),
      common::SaturatingMul(
          static_cast<std::int64_t>(rows) + 1,
          static_cast<std::int64_t>(sizeof(sparse::offset_t))));
}

void FillPlanDemand(const sparse::Csr& a, const sparse::Csr& b,
                    std::int64_t device_capacity,
                    const partition::PlanOptions& plan_opts, JobDemand* d) {
  auto plan = partition::PlanPanels(a, b, device_capacity, plan_opts);
  if (plan.ok()) {
    d->gpu_feasible = true;
    d->planned_chunks = plan->num_row_panels * plan->num_col_panels;
    d->planned_device_bytes =
        2 * plan->pool_bytes +
        2 * (plan->max_a_panel_bytes + plan->max_b_panel_bytes);
  }
}

/// Prices the demand's modeled latency at the model's rates (static rates
/// when `model` is null).  The static reference uses the job's own cost
/// model, so admission and execution agree on what "static" means.
void FillExecSeconds(const core::ExecutorOptions& exec,
                     const calibrate::CalibratedModel* model, JobDemand* d) {
  const calibrate::ExecRates static_rates =
      calibrate::StaticExecRates(exec.spgemm.cost_model);
  const calibrate::ExecRates rates =
      model != nullptr ? model->AdmissionRates(static_rates) : static_rates;
  d->est_exec_seconds = calibrate::EstimateExecSeconds(
      d->flops, common::SaturatingAdd(d->bytes_a, d->bytes_b),
      d->est_bytes_out, d->gpu_feasible, d->planned_chunks, rates);
}

void RecordAnalysisSeconds(const char* mode, double seconds) {
  obs::MetricsRegistry::Default()
      .GetDoubleCounter(
          "oocgemm_estimate_analysis_seconds_total", {{"mode", mode}},
          "Host wall seconds spent in admission demand analysis, by path; "
          "exact minus estimate at equal job counts is the analysis time "
          "the estimator saves")
      .Add(seconds);
}

}  // namespace

const char* AdmissionModeName(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kExact: return "exact";
    case AdmissionMode::kEstimate: return "estimate";
  }
  return "unknown";
}

bool ParseAdmissionMode(const std::string& text, AdmissionMode* mode) {
  if (text == "exact") {
    *mode = AdmissionMode::kExact;
    return true;
  }
  if (text == "estimate") {
    *mode = AdmissionMode::kEstimate;
    return true;
  }
  return false;
}

JobDemand EstimateJobDemand(const sparse::Csr& a, const sparse::Csr& b,
                            std::int64_t device_capacity,
                            const core::ExecutorOptions& exec,
                            const calibrate::CalibratedModel* model) {
  WallTimer timer;
  JobDemand d;
  d.flops = sparse::TotalFlops(a, b);
  d.bytes_a = a.StorageBytes();
  d.bytes_b = b.StorageBytes();

  const double sample = exec.plan.nnz_sample_fraction > 0.0
                            ? exec.plan.nnz_sample_fraction
                            : 0.05;
  sparse::RowNnzEstimate est = sparse::EstimateRowNnz(a, b, sample);
  d.est_nnz_out =
      std::accumulate(est.per_row.begin(), est.per_row.end(), 0.0);
  d.est_bytes_out = EstBytesOut(d.est_nnz_out, a.rows());

  // The exact path must never plan from the sampling estimator, even when
  // the job's own executor options turn it on — it is this mode's job to
  // be the estimator-free baseline (and the fallback).
  partition::PlanOptions plan_opts = exec.plan;
  plan_opts.use_sampling_estimator = false;
  plan_opts.estimate_hint.reset();
  FillPlanDemand(a, b, device_capacity, plan_opts, &d);
  FillExecSeconds(exec, model, &d);
  d.analysis_seconds = timer.Seconds();
  RecordAnalysisSeconds("exact", d.analysis_seconds);
  return d;
}

JobDemand EstimateJobDemandSampled(const sparse::Csr& a, const sparse::Csr& b,
                                   std::int64_t device_capacity,
                                   const core::ExecutorOptions& exec,
                                   const estimate::EstimatorOptions& opts,
                                   const calibrate::CalibratedModel* model) {
  WallTimer timer;
  auto est = std::make_shared<estimate::ProductEstimate>(
      estimate::EstimateProduct(a, b, opts));
  if (!est->reliable) {
    // The estimator's own variance check failed: price the job exactly.
    // Small matrices land here (cheap to analyze anyway); large ones
    // sample enough rows to stay on the fast path.
    obs::MetricsRegistry::Default()
        .GetCounter("oocgemm_estimate_fallbacks_total", {},
                    "Estimate-mode admissions that fell back to the exact "
                    "path on the estimator's variance check")
        .Add(1);
    JobDemand d = EstimateJobDemand(a, b, device_capacity, exec, model);
    d.estimator_fallback = true;
    d.est_rel_stderr = est->rel_stderr;
    return d;
  }

  JobDemand d;
  d.estimated = true;
  d.est_rel_stderr = est->rel_stderr;
  d.flops = common::SaturatingCast(est->total_flops);
  d.bytes_a = a.StorageBytes();
  d.bytes_b = b.StorageBytes();
  d.est_nnz_out = est->total_nnz;
  d.est_bytes_out = EstBytesOut(d.est_nnz_out, a.rows());

  partition::PlanOptions plan_opts = exec.plan;
  plan_opts.use_sampling_estimator = true;
  plan_opts.estimator_seed = opts.seed;
  plan_opts.estimate_hint = est;
  FillPlanDemand(a, b, device_capacity, plan_opts, &d);
  FillExecSeconds(exec, model, &d);
  d.estimate = std::move(est);
  d.analysis_seconds = timer.Seconds();
  RecordAnalysisSeconds("estimate", d.analysis_seconds);
  return d;
}

namespace {

bool NeedsDevice(core::ExecutionMode mode) {
  switch (mode) {
    case core::ExecutionMode::kGpuOutOfCore:
    case core::ExecutionMode::kGpuSynchronous:
    case core::ExecutionMode::kHybrid:
      return true;
    case core::ExecutionMode::kAuto:
    case core::ExecutionMode::kCpuOnly:
      return false;
  }
  return false;
}

}  // namespace

Status AdmissionController::Admit(const JobDemand& demand,
                                  core::ExecutionMode mode) {
  if (NeedsDevice(mode) && !demand.gpu_feasible) {
    return Status::FailedPrecondition(
        "job requires the device but no panel split fits its memory");
  }
  if (limits_.max_est_exec_seconds > 0.0 &&
      demand.est_exec_seconds > limits_.max_est_exec_seconds) {
    return Status::FailedPrecondition(
        "job's modeled latency " + std::to_string(demand.est_exec_seconds) +
        "s exceeds the " + std::to_string(limits_.max_est_exec_seconds) +
        "s admission deadline");
  }
  if (demand.overflowed()) {
    // A byte product clamped at the int64 rail: the true footprint is
    // unrepresentable, so it cannot fit any finite budget.
    return Status::ResourceExhausted(
        "job demand overflows 64-bit byte accounting (host_bytes saturated "
        "at " +
        HumanBytes(demand.host_bytes()) + "); no budget can admit it");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (common::SaturatingAdd(outstanding_, demand.host_bytes()) >
      limits_.host_bytes_budget) {
    return Status::ResourceExhausted(
        "outstanding jobs hold " + HumanBytes(outstanding_) + ", admitting " +
        HumanBytes(demand.host_bytes()) + " would exceed the " +
        HumanBytes(limits_.host_bytes_budget) + " budget");
  }
  if (limits_.device_bytes_budget > 0 && demand.gpu_feasible &&
      common::SaturatingAdd(outstanding_device_,
                            demand.planned_device_bytes) >
          limits_.device_bytes_budget) {
    return Status::ResourceExhausted(
        "admitted jobs hold " + HumanBytes(outstanding_device_) +
        " of planned device memory, admitting " +
        HumanBytes(demand.planned_device_bytes) + " would exceed the " +
        HumanBytes(limits_.device_bytes_budget) + " pool budget");
  }
  outstanding_ = common::SaturatingAdd(outstanding_, demand.host_bytes());
  if (demand.gpu_feasible) {
    outstanding_device_ = common::SaturatingAdd(outstanding_device_,
                                                demand.planned_device_bytes);
  }
  return Status::Ok();
}

void AdmissionController::Release(const JobDemand& demand) {
  std::unique_lock<std::mutex> lock(mutex_);
  outstanding_ -= demand.host_bytes();
  if (outstanding_ < 0) outstanding_ = 0;
  if (demand.gpu_feasible) {
    outstanding_device_ -= demand.planned_device_bytes;
    if (outstanding_device_ < 0) outstanding_device_ = 0;
  }
}

std::int64_t AdmissionController::outstanding_bytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return outstanding_;
}

std::int64_t AdmissionController::outstanding_device_bytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return outstanding_device_;
}

}  // namespace oocgemm::serve
