#include "serve/admission.hpp"

#include <numeric>

#include "common/format.hpp"
#include "partition/panel_plan.hpp"
#include "sparse/analysis.hpp"
#include "sparse/types.hpp"

namespace oocgemm::serve {

JobDemand EstimateJobDemand(const sparse::Csr& a, const sparse::Csr& b,
                            std::int64_t device_capacity,
                            const core::ExecutorOptions& exec) {
  JobDemand d;
  d.flops = sparse::TotalFlops(a, b);
  d.bytes_a = a.StorageBytes();
  d.bytes_b = b.StorageBytes();

  const double sample = exec.plan.nnz_sample_fraction > 0.0
                            ? exec.plan.nnz_sample_fraction
                            : 0.05;
  sparse::RowNnzEstimate est = sparse::EstimateRowNnz(a, b, sample);
  d.est_nnz_out =
      std::accumulate(est.per_row.begin(), est.per_row.end(), 0.0);
  const double entry_bytes = static_cast<double>(sizeof(sparse::index_t) +
                                                 sizeof(sparse::value_t));
  d.est_bytes_out = static_cast<std::int64_t>(d.est_nnz_out * entry_bytes) +
                    static_cast<std::int64_t>(a.rows() + 1) *
                        static_cast<std::int64_t>(sizeof(sparse::offset_t));

  auto plan = partition::PlanPanels(a, b, device_capacity, exec.plan);
  if (plan.ok()) {
    d.gpu_feasible = true;
    d.planned_chunks = plan->num_row_panels * plan->num_col_panels;
    d.planned_device_bytes =
        2 * plan->pool_bytes +
        2 * (plan->max_a_panel_bytes + plan->max_b_panel_bytes);
  }
  return d;
}

namespace {

bool NeedsDevice(core::ExecutionMode mode) {
  switch (mode) {
    case core::ExecutionMode::kGpuOutOfCore:
    case core::ExecutionMode::kGpuSynchronous:
    case core::ExecutionMode::kHybrid:
      return true;
    case core::ExecutionMode::kAuto:
    case core::ExecutionMode::kCpuOnly:
      return false;
  }
  return false;
}

}  // namespace

Status AdmissionController::Admit(const JobDemand& demand,
                                  core::ExecutionMode mode) {
  if (NeedsDevice(mode) && !demand.gpu_feasible) {
    return Status::FailedPrecondition(
        "job requires the device but no panel split fits its memory");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (outstanding_ + demand.host_bytes() > limits_.host_bytes_budget) {
    return Status::ResourceExhausted(
        "outstanding jobs hold " + HumanBytes(outstanding_) + ", admitting " +
        HumanBytes(demand.host_bytes()) + " would exceed the " +
        HumanBytes(limits_.host_bytes_budget) + " budget");
  }
  if (limits_.device_bytes_budget > 0 && demand.gpu_feasible &&
      outstanding_device_ + demand.planned_device_bytes >
          limits_.device_bytes_budget) {
    return Status::ResourceExhausted(
        "admitted jobs hold " + HumanBytes(outstanding_device_) +
        " of planned device memory, admitting " +
        HumanBytes(demand.planned_device_bytes) + " would exceed the " +
        HumanBytes(limits_.device_bytes_budget) + " pool budget");
  }
  outstanding_ += demand.host_bytes();
  if (demand.gpu_feasible) outstanding_device_ += demand.planned_device_bytes;
  return Status::Ok();
}

void AdmissionController::Release(const JobDemand& demand) {
  std::unique_lock<std::mutex> lock(mutex_);
  outstanding_ -= demand.host_bytes();
  if (outstanding_ < 0) outstanding_ = 0;
  if (demand.gpu_feasible) {
    outstanding_device_ -= demand.planned_device_bytes;
    if (outstanding_device_ < 0) outstanding_device_ = 0;
  }
}

std::int64_t AdmissionController::outstanding_bytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return outstanding_;
}

std::int64_t AdmissionController::outstanding_device_bytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return outstanding_device_;
}

}  // namespace oocgemm::serve
