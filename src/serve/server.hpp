// The serving runtime's front door: submit SpgemmJobs, get futures.
//
//   vgpu::Device device(vgpu::ScaledV100Properties(10));
//   ThreadPool pool;
//   serve::SpgemmServer server(device, pool);
//   auto future = server.Submit({a, b, {.priority = 1}});
//   serve::JobResult r = future.get();    // r.c, r.metrics, r.status
//
// Multi-device nodes hand the server a fleet instead; the scheduler then
// places each device-side job on the least-reserved device that fits it
// (see core::DevicePool):
//
//   serve::SpgemmServer server({&dev0, &dev1, &dev2}, pool);
//
// Submission runs validation, demand estimation and admission control on
// the caller's thread (cheap — estimator plus panel planning); accepted
// jobs enter the bounded priority queue, rejected ones resolve their
// future immediately with the rejection status.  Every submitted job's
// future is eventually fulfilled — there is no silent drop path.
// Feasibility is judged against the *largest* pool device: a job only the
// big device can hold is admitted, and placement keeps it off the small
// ones.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "calibrate/calibrator.hpp"
#include "common/thread_pool.hpp"
#include "core/device_pool.hpp"
#include "obs/snapshotter.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/server_stats.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::serve {

struct ServerConfig {
  SchedulerConfig scheduler;
  /// Bound of the pending-job queue; pushes beyond it are rejections.
  std::size_t max_queue = 64;
  AdmissionLimits admission;
  /// How Submit prices jobs: kExact runs the full analysis pass per
  /// submission; kEstimate prices from the OCEAN sampling estimator (with
  /// per-job fallback to exact when the sample is unreliable) and seeds the
  /// job's panel plan and chunk order from the same estimate.
  AdmissionMode admission_mode = AdmissionMode::kExact;
  /// Sampling estimator configuration for kEstimate (seed, sample rate,
  /// variance cutoff).
  estimate::EstimatorOptions estimator;
  /// Applied when a job's own timeout_seconds is 0.
  double default_timeout_seconds = 0.0;

  /// When non-empty, a background snapshotter writes the process metrics
  /// registry to this path in Prometheus text format — and to the same
  /// path + ".json" in JSON — every metrics_interval_seconds, plus one
  /// final write during Shutdown.
  std::string metrics_path;
  double metrics_interval_seconds = 0.5;

  /// When non-empty, per-instance metrics (the queue-depth gauge) carry a
  /// {"shard": instance_label} label instead of sharing the process-wide
  /// unlabeled point.  A fleet of in-process servers needs this: unlabeled,
  /// every shard's queue would scribble over one gauge.
  std::string instance_label;

  /// Closed-loop cost-model calibration (`--calibrate`): kOff = no
  /// calibrator; kObserve = fit live rates and export oocgemm_calibrate_*
  /// metrics but keep every decision static; kApply = admission latency
  /// estimates, hybrid split, placement tie-breaks and kernel routing all
  /// consume the fitted model.
  calibrate::CalibratorConfig calibrate;
};

/// Cheap routing-time health summary of one server, read lock-free off the
/// queue and the device pool.  The fleet router probes shards with this
/// before placing a job, so obviously-doomed placements (dead pool, queue
/// at the rejection threshold) are skipped instead of bounced.
struct ShardProbe {
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  int healthy_devices = 0;
  int total_devices = 0;
  bool accepting = false;  // false once Shutdown began

  /// Routable = accepting, at least one healthy device, and queue depth
  /// under `pressure_limit` of capacity (1.0 = only skip when full).
  bool Routable(double pressure_limit = 1.0) const {
    const double limit = queue_capacity == 0
                             ? 0.0
                             : pressure_limit *
                                   static_cast<double>(queue_capacity);
    return accepting && healthy_devices > 0 &&
           static_cast<double>(queue_depth) < limit;
  }
};

class SpgemmServer {
 public:
  /// Single-device node (the PR 1-2 shape): a pool of one.
  SpgemmServer(vgpu::Device& device, ThreadPool& pool,
               ServerConfig config = {});
  /// Multi-device node; the server does not own the devices.
  SpgemmServer(std::vector<vgpu::Device*> devices, ThreadPool& pool,
               ServerConfig config = {});
  ~SpgemmServer();

  SpgemmServer(const SpgemmServer&) = delete;
  SpgemmServer& operator=(const SpgemmServer&) = delete;

  /// Thread-safe.  The future always resolves: with the product, or with a
  /// rejection/timeout/failure status in JobResult::status.
  std::future<JobResult> Submit(SpgemmJob job);

  /// Blocks until every accepted job so far has resolved its future.
  void Drain();

  /// Stops accepting, drains the queue, joins the workers.  Idempotent;
  /// also run by the destructor.
  void Shutdown();

  /// Snapshot of the aggregate report plus one DeviceServeReport per pool
  /// device (lease/reservation/shortfall counters read off the arbiters,
  /// lane busy seconds and utilization from the scheduler's timeline).
  ServerReport Report() const;
  /// Routing-time health summary; thread-safe and cheap (two atomic-ish
  /// reads), suitable for the fleet router's per-submit probe.
  ShardProbe Probe() const;
  core::DevicePool& device_pool() { return devices_; }
  const core::DevicePool& device_pool() const { return devices_; }
  /// The first device's arbiter — the single-device view older callers use.
  core::DeviceArbiter& arbiter() { return scheduler_.arbiter(); }
  const ServerConfig& config() const { return config_; }
  /// Non-null while metrics_path is configured (tests use WriteNow()).
  obs::Snapshotter* snapshotter() { return snapshotter_.get(); }
  /// Non-null while calibrate.mode != kOff (tests drive TickNow()).
  calibrate::CostModelCalibrator* calibrator() { return calibrator_.get(); }

 private:
  std::future<JobResult> Reject(std::uint64_t id, Status status,
                                const std::string& tenant);

  core::DevicePool devices_;
  ServerConfig config_;
  ServerStats stats_;
  AdmissionController admission_;
  JobQueue queue_;
  Scheduler scheduler_;
  std::unique_ptr<obs::Snapshotter> snapshotter_;
  std::unique_ptr<calibrate::CostModelCalibrator> calibrator_;

  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::int64_t pending_ = 0;
  bool shut_down_ = false;
};

}  // namespace oocgemm::serve
