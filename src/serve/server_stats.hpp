// Rolls per-job metrics into the serving-level report: throughput on the
// virtual timeline, latency percentiles, rejection and failure rates —
// exported as JSON so the perf trajectory of the serving path is tracked
// the same way the paper figures are.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/job.hpp"

namespace oocgemm::serve {

/// One pool device's slice of the serving report.  The job counts come
/// from JobMetrics::device_index; the lease/reservation counters are read
/// off the device's DeviceArbiter at snapshot time, so after Drain() a
/// balanced ledger shows reserved_bytes == 0 and unreserve_underflows == 0.
struct DeviceServeReport {
  int index = 0;
  /// Completed jobs whose primary device this was (a spanned Hybrid job
  /// counts only toward its primary device's tally).
  std::int64_t completed = 0;
  std::int64_t lease_count = 0;
  std::int64_t contention_count = 0;
  std::int64_t reserve_shortfalls = 0;
  std::int64_t unreserve_underflows = 0;
  /// Outstanding reservation ledger at snapshot (0 once drained).
  std::int64_t reserved_bytes = 0;
  std::int64_t capacity_bytes = 0;
  /// Times the scheduler declared this lane dead mid-run (fault injection
  /// or a genuine device loss) and pulled it from the pool.
  std::int64_t failures = 0;
  /// Pool health at snapshot time; false once the lane was pulled.
  bool healthy = true;
  /// Virtual seconds this device's lane was booked, and that over the
  /// report's virtual makespan (0 when the makespan is 0).
  double busy_seconds = 0.0;
  double utilization = 0.0;
};

/// One tenant's slice of the serving report.  Tenant ids are arbitrary
/// caller-supplied bytes; every emitter escapes them (JsonEscape, the prom
/// label escaper), so the slice is safe to render whatever the id holds.
struct TenantServeReport {
  std::string tenant;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  std::int64_t failed = 0;
};

struct ServerReport {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  /// Subset of timed_out that never reached an executor (expired while
  /// still queued) — distinguished via JobMetrics::executed.
  std::int64_t timed_out_in_queue = 0;
  std::int64_t failed = 0;
  std::int64_t device_oom_failures = 0;  // must stay 0: admission's contract
  std::int64_t retries = 0;              // scheduler-level re-plans
  /// Failover rounds: jobs re-planned off a faulted lane onto the
  /// survivors (or the CPU path).  Sums JobMetrics::failovers.
  std::int64_t failed_over = 0;
  /// Devices the scheduler pulled from the pool after a mid-run fault
  /// (each pull counts once, even if several jobs held the lane's span).
  std::int64_t device_failures = 0;

  // Executor mix of completed jobs.
  std::int64_t via_cpu = 0;
  std::int64_t via_gpu = 0;
  std::int64_t via_hybrid = 0;
  /// Completed jobs that spanned more than one pool device
  /// (core::MultiGpuHybrid dispatches).
  std::int64_t via_multi_device = 0;

  /// Per-device sections, one per pool device (index-aligned).  Filled by
  /// SpgemmServer::Report(); a bare ServerStats::Snapshot() sizes the
  /// vector to the largest device index seen and fills the job counts only.
  std::vector<DeviceServeReport> devices;

  /// Per-tenant sections, name-sorted; jobs with an empty tenant id are
  /// unattributed and appear only in the aggregate counters.
  std::vector<TenantServeReport> tenants;

  // Operand-aware batching.
  std::int64_t batches = 0;       // multi-job device runs dispatched
  std::int64_t batched_jobs = 0;  // jobs that rode in those runs
  double avg_batch_size = 0.0;    // batched_jobs / batches
  std::int64_t batch_fallbacks = 0;  // batches that failed and re-ran per job
  /// Summed B-column-panel traffic of completed jobs' winning runs.
  std::int64_t b_panel_uploads = 0;
  std::int64_t b_panel_hits = 0;

  /// Summed transfer bytes of completed jobs' winning runs (the serving
  /// layer's view of the device counters; the obs reconciliation test
  /// checks the two agree exactly).
  std::int64_t transfer_bytes_h2d = 0;
  std::int64_t transfer_bytes_d2h = 0;

  /// Scheduler TryReserve attempts the arbiter refused (demand vs ledger).
  std::int64_t reserve_shortfalls = 0;

  // Virtual-timeline throughput: completed jobs over the busy span
  // [min arrival, max finish].
  double virtual_makespan_seconds = 0.0;
  double jobs_per_second = 0.0;
  double total_gflops = 0.0;  // summed flops / makespan

  // Virtual latency (arrival -> finish) percentiles over completed jobs.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  double queue_p95 = 0.0;

  double rejection_rate = 0.0;  // rejected / submitted

  std::string ToJson() const;
  std::string DebugString() const;
};

class ServerStats {
 public:
  ServerStats();

  void RecordSubmitted(const std::string& tenant = std::string());
  void RecordOutcome(const JobMetrics& metrics);

  /// A multi-job device run was dispatched with `members` jobs.
  void RecordBatch(std::int64_t members) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++batches_;
    batched_jobs_ += members;
    metrics_.batches->Add(1);
    metrics_.batched_jobs->Add(members);
    metrics_.batch_size->Record(static_cast<double>(members));
  }
  /// A batch failed as a whole and its members re-ran individually.
  void RecordBatchFallback() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++batch_fallbacks_;
    metrics_.batch_fallbacks->Add(1);
  }
  /// The scheduler asked the arbiter to reserve bytes and was refused.
  void RecordReserveShortfall() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++reserve_shortfalls_;
    metrics_.reserve_shortfalls->Add(1);
  }
  /// The scheduler found pool device `index` dead mid-run and pulled it.
  void RecordDeviceFailure(int index) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++device_failures_;
    metrics_.device_failures->Add(1);
    if (index >= 0) {
      if (static_cast<std::size_t>(index) >= device_failure_counts_.size()) {
        device_failure_counts_.resize(static_cast<std::size_t>(index) + 1, 0);
      }
      ++device_failure_counts_[static_cast<std::size_t>(index)];
    }
  }

  ServerReport Snapshot() const;

 private:
  /// Default-registry instruments mirroring the report's counters, so the
  /// serving layer is scrapable live (the report only exists at snapshot
  /// time).  Resolved once in the constructor; recording is lock-free.
  struct Metrics {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* timed_out = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* failovers = nullptr;
    obs::Counter* device_failures = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* batched_jobs = nullptr;
    obs::Counter* batch_fallbacks = nullptr;
    obs::Counter* reserve_shortfalls = nullptr;
    obs::Counter* h2d_bytes = nullptr;
    obs::Counter* d2h_bytes = nullptr;
    obs::Counter* flops = nullptr;
    obs::LogBucketHistogram* latency = nullptr;
    obs::LogBucketHistogram* queue_wait = nullptr;
    obs::LogBucketHistogram* batch_size = nullptr;
  };
  Metrics metrics_;

  mutable std::mutex mutex_;
  std::int64_t submitted_ = 0;
  std::int64_t batches_ = 0;
  std::int64_t batched_jobs_ = 0;
  std::int64_t batch_fallbacks_ = 0;
  std::int64_t reserve_shortfalls_ = 0;
  std::int64_t device_failures_ = 0;
  std::vector<std::int64_t> device_failure_counts_;
  /// Submissions per non-empty tenant id (outcomes come from finished_).
  std::map<std::string, std::int64_t> tenant_submitted_;
  std::vector<JobMetrics> finished_;
};

}  // namespace oocgemm::serve
