// Rolls per-job metrics into the serving-level report: throughput on the
// virtual timeline, latency percentiles, rejection and failure rates —
// exported as JSON so the perf trajectory of the serving path is tracked
// the same way the paper figures are.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace oocgemm::serve {

struct ServerReport {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  std::int64_t failed = 0;
  std::int64_t device_oom_failures = 0;  // must stay 0: admission's contract
  std::int64_t retries = 0;              // scheduler-level re-plans

  // Executor mix of completed jobs.
  std::int64_t via_cpu = 0;
  std::int64_t via_gpu = 0;
  std::int64_t via_hybrid = 0;

  // Virtual-timeline throughput: completed jobs over the busy span
  // [min arrival, max finish].
  double virtual_makespan_seconds = 0.0;
  double jobs_per_second = 0.0;
  double total_gflops = 0.0;  // summed flops / makespan

  // Virtual latency (arrival -> finish) percentiles over completed jobs.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double latency_mean = 0.0;
  double queue_p95 = 0.0;

  double rejection_rate = 0.0;  // rejected / submitted

  std::string ToJson() const;
  std::string DebugString() const;
};

class ServerStats {
 public:
  void RecordSubmitted() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++submitted_;
  }
  void RecordOutcome(const JobMetrics& metrics);

  ServerReport Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::int64_t submitted_ = 0;
  std::vector<JobMetrics> finished_;
};

}  // namespace oocgemm::serve
