#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "core/executors.hpp"

namespace oocgemm::serve {

namespace {

bool NeedsDevice(core::ExecutionMode mode) {
  return mode == core::ExecutionMode::kGpuOutOfCore ||
         mode == core::ExecutionMode::kGpuSynchronous ||
         mode == core::ExecutionMode::kHybrid;
}

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

Scheduler::Scheduler(vgpu::Device& device, ThreadPool& pool,
                     SchedulerConfig config, JobQueue& queue,
                     AdmissionController& admission, ServerStats& stats)
    : device_(device),
      pool_(pool),
      config_(config),
      queue_(queue),
      admission_(admission),
      stats_(stats),
      arbiter_(device) {
  config_.num_workers = std::max(1, config_.num_workers);
  config_.cpu_lanes = std::max(1, config_.cpu_lanes);
  cpu_lanes_.assign(static_cast<std::size_t>(config_.cpu_lanes), 0.0);
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Start() {
  if (!workers_.empty()) return;
  stopping_.store(false);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void Scheduler::Stop() {
  if (workers_.empty()) return;
  queue_.Close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  stopping_.store(true);
  if (watchdog_.joinable()) watchdog_.join();
}

double Scheduler::VirtualNow() const {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  double now = gpu_lane_;
  for (double lane : cpu_lanes_) now = std::max(now, lane);
  return now;
}

void Scheduler::WorkerLoop() {
  while (auto item = queue_.Pop()) {
    RunJob(**item);
    if (on_job_done_) on_job_done_();
  }
}

void Scheduler::WatchdogLoop() {
  const auto period = std::chrono::duration<double>(
      std::max(1e-4, config_.watchdog_period_seconds));
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(watch_mutex_);
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, w] : watched_) {
        if (now >= w.deadline) {
          w.cancel->store(true, std::memory_order_relaxed);
        }
      }
    }
    std::this_thread::sleep_for(period);
  }
}

StatusOr<core::RunResult> Scheduler::Dispatch(
    core::ExecutionMode mode, const ScheduledJob& item,
    const core::ExecutorOptions& exec) {
  const sparse::Csr& a = *item.job.a;
  const sparse::Csr& b = *item.job.b;
  switch (mode) {
    case core::ExecutionMode::kCpuOnly:
      return core::CpuMulticore(a, b, exec, pool_);
    case core::ExecutionMode::kGpuOutOfCore:
      return core::AsyncOutOfCore(device_, a, b, exec, pool_);
    case core::ExecutionMode::kGpuSynchronous:
      return core::SyncOutOfCore(device_, a, b, exec, pool_);
    case core::ExecutionMode::kHybrid:
      return core::Hybrid(device_, a, b, exec, pool_);
    case core::ExecutionMode::kAuto:
      break;
  }
  return Status::Internal("unrouted execution mode");
}

std::pair<double, double> Scheduler::BookLanes(core::ExecutionMode mode,
                                               double arrival,
                                               double duration) {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  double start = arrival;
  std::size_t cpu_lane = 0;
  const bool uses_cpu = mode == core::ExecutionMode::kCpuOnly ||
                        mode == core::ExecutionMode::kHybrid;
  const bool uses_gpu = NeedsDevice(mode);
  if (uses_cpu) {
    cpu_lane = static_cast<std::size_t>(
        std::min_element(cpu_lanes_.begin(), cpu_lanes_.end()) -
        cpu_lanes_.begin());
    start = std::max(start, cpu_lanes_[cpu_lane]);
  }
  if (uses_gpu) start = std::max(start, gpu_lane_);
  const double finish = start + duration;
  if (uses_cpu) cpu_lanes_[cpu_lane] = finish;
  if (uses_gpu) gpu_lane_ = finish;
  return {start, finish};
}

void Scheduler::RunJob(ScheduledJob& item) {
  JobResult result;
  JobMetrics& m = result.metrics;
  m.id = item.id;
  m.virtual_arrival = item.job.options.virtual_arrival;

  const JobOptions& opts = item.job.options;
  const double timeout = opts.timeout_seconds;

  auto finish = [&](JobOutcome outcome, Status status) {
    m.outcome = outcome;
    result.status = std::move(status);
    admission_.Release(item.demand);
    stats_.RecordOutcome(m);
    item.promise.set_value(std::move(result));
  };

  // Expired while queued?
  if (timeout > 0.0 && (ElapsedSeconds(item.submit_wall) >= timeout ||
                        item.cancel->load(std::memory_order_relaxed))) {
    finish(JobOutcome::kTimedOut,
           Status::Cancelled("timed out after " + std::to_string(timeout) +
                             "s while queued"));
    return;
  }

  // Route.  kAuto mirrors core::Multiply's policy, plus graceful
  // degradation: a small job takes the device only if it is free this
  // instant.
  core::ExecutionMode mode = opts.mode;
  core::DeviceArbiter::Lease lease;
  if (mode == core::ExecutionMode::kAuto) {
    if (!item.demand.gpu_feasible) {
      mode = core::ExecutionMode::kCpuOnly;
    } else if (item.demand.planned_chunks <= config_.small_job_chunks) {
      lease = arbiter_.TryAcquire();
      mode = lease.held() ? core::ExecutionMode::kGpuOutOfCore
                          : core::ExecutionMode::kCpuOnly;
    } else {
      mode = core::ExecutionMode::kHybrid;
      lease = arbiter_.Acquire();
    }
  } else if (NeedsDevice(mode)) {
    lease = arbiter_.Acquire();
  }
  m.executor = mode;

  if (lease.held()) {
    arbiter_.TryReserve(item.demand.planned_device_bytes);
  }

  // Register with the watchdog for the execution phase.
  if (timeout > 0.0) {
    std::unique_lock<std::mutex> lock(watch_mutex_);
    watched_[item.id] = Watched{
        item.cancel,
        item.submit_wall + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(timeout))};
  }

  // Execute with scheduler-owned retry-with-replan: the executor's internal
  // retry loop is disabled, each pool overflow doubles the safety factor
  // and backs off exponentially before trying again.
  core::ExecutorOptions exec = opts.exec;
  exec.cancel = item.cancel.get();
  exec.max_oom_attempts = 1;
  double backoff = std::max(0.0, opts.retry_backoff_seconds);

  StatusOr<core::RunResult> run = Status::Internal("not attempted");
  WallTimer wall;
  for (int attempt = 0;; ++attempt) {
    ++m.attempts;
    run = Dispatch(mode, item, exec);
    const bool pool_overflow =
        !run.ok() && run.status().code() == StatusCode::kOutOfMemory;
    const bool cancelled = item.cancel->load(std::memory_order_relaxed);
    if (!pool_overflow || attempt >= opts.max_retries || cancelled) break;
    exec.plan.nnz_safety_factor *= 2.0;
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
    }
  }
  m.wall_seconds = wall.Seconds();
  lease.Release();
  arbiter_.Unreserve(item.demand.planned_device_bytes);
  if (timeout > 0.0) {
    std::unique_lock<std::mutex> lock(watch_mutex_);
    watched_.erase(item.id);
  }

  if (!run.ok()) {
    if (run.status().code() == StatusCode::kCancelled) {
      finish(JobOutcome::kTimedOut, run.status());
    } else {
      m.device_oom = run.status().code() == StatusCode::kOutOfMemory;
      finish(JobOutcome::kFailed, run.status());
    }
    return;
  }

  m.stats = run->stats;
  m.exec_seconds = run->stats.total_seconds;
  auto [vstart, vfinish] =
      BookLanes(mode, m.virtual_arrival, m.exec_seconds);
  m.virtual_start = vstart;
  m.virtual_finish = vfinish;
  m.queue_seconds = vstart - m.virtual_arrival;
  m.latency_seconds = vfinish - m.virtual_arrival;
  result.c = std::move(run.value().c);
  finish(JobOutcome::kCompleted, Status::Ok());
}

}  // namespace oocgemm::serve
