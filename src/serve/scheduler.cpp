#include "serve/scheduler.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "core/batched.hpp"
#include "core/executors.hpp"
#include "core/multi_gpu.hpp"
#include "serve/batching.hpp"

namespace oocgemm::serve {

namespace {

bool NeedsDevice(core::ExecutionMode mode) {
  return mode == core::ExecutionMode::kGpuOutOfCore ||
         mode == core::ExecutionMode::kGpuSynchronous ||
         mode == core::ExecutionMode::kHybrid;
}

double ElapsedSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

std::chrono::steady_clock::duration ToSteadyDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

Scheduler::Scheduler(core::DevicePool& devices, ThreadPool& pool,
                     SchedulerConfig config, JobQueue& queue,
                     AdmissionController& admission, ServerStats& stats)
    : devices_(devices),
      pool_(pool),
      config_(config),
      queue_(queue),
      admission_(admission),
      stats_(stats) {
  config_.num_workers = std::max(1, config_.num_workers);
  config_.cpu_lanes = std::max(1, config_.cpu_lanes);
  config_.max_batch_jobs = std::max(1, config_.max_batch_jobs);
  config_.max_devices_per_job = std::max(1, config_.max_devices_per_job);
  gpu_lanes_.assign(static_cast<std::size_t>(devices_.size()), 0.0);
  gpu_busy_.assign(static_cast<std::size_t>(devices_.size()), 0.0);
  cpu_lanes_.assign(static_cast<std::size_t>(config_.cpu_lanes), 0.0);
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::Start() {
  if (!workers_.empty()) return;
  stopping_.store(false);
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void Scheduler::Stop() {
  if (workers_.empty()) return;
  queue_.Close();
  for (auto& w : workers_) w.join();
  workers_.clear();
  stopping_.store(true);
  if (watchdog_.joinable()) watchdog_.join();
}

double Scheduler::VirtualNow() const {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  double now = 0.0;
  for (double lane : gpu_lanes_) now = std::max(now, lane);
  for (double lane : cpu_lanes_) now = std::max(now, lane);
  return now;
}

std::vector<double> Scheduler::GpuLaneBusySeconds() const {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  return gpu_busy_;
}

void Scheduler::WorkerLoop() {
  while (auto popped = queue_.Pop()) {
    std::vector<std::unique_ptr<ScheduledJob>> batch;
    batch.push_back(std::move(*popped));
    if (config_.max_batch_jobs > 1 && BatchEligible(*batch.front())) {
      auto companions = PeelBatchCompanions(
          *batch.front(), queue_,
          static_cast<std::size_t>(config_.max_batch_jobs - 1));
      for (auto& c : companions) batch.push_back(std::move(c));
    }
    if (batch.size() == 1) {
      RunJob(*batch.front());
      if (on_job_done_) on_job_done_();
    } else {
      RunBatch(batch);
    }
  }
}

void Scheduler::WatchdogLoop() {
  const auto period = std::chrono::duration<double>(
      std::max(1e-4, config_.watchdog_period_seconds));
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::unique_lock<std::mutex> lock(watch_mutex_);
      const auto now = std::chrono::steady_clock::now();
      for (auto& [id, w] : watched_) {
        if (now >= w.deadline) {
          w.cancel->store(true, std::memory_order_relaxed);
        }
      }
    }
    std::this_thread::sleep_for(period);
  }
}

StatusOr<core::RunResult> Scheduler::Dispatch(
    core::ExecutionMode mode, const ScheduledJob& item,
    const core::ExecutorOptions& exec,
    const std::vector<vgpu::Device*>& devs) {
  const sparse::Csr& a = *item.job.a;
  const sparse::Csr& b = *item.job.b;
  switch (mode) {
    case core::ExecutionMode::kCpuOnly:
      return core::CpuMulticore(a, b, exec, pool_);
    case core::ExecutionMode::kGpuOutOfCore:
      return core::AsyncOutOfCore(*devs.front(), a, b, exec, pool_);
    case core::ExecutionMode::kGpuSynchronous:
      return core::SyncOutOfCore(*devs.front(), a, b, exec, pool_);
    case core::ExecutionMode::kHybrid: {
      if (devs.size() == 1) return core::Hybrid(*devs.front(), a, b, exec, pool_);
      auto mg = core::MultiGpuHybrid(devs, a, b, exec, pool_);
      if (!mg.ok()) return mg.status();
      core::RunResult r;
      r.c = std::move(mg->c);
      r.stats = std::move(mg->stats.combined);
      return r;
    }
    case core::ExecutionMode::kAuto:
      break;
  }
  return Status::Internal("unrouted execution mode");
}

std::pair<double, double> Scheduler::BookLanes(
    bool uses_cpu, const std::vector<int>& gpu_lanes, double arrival,
    double duration) {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  double start = arrival;
  std::size_t cpu_lane = 0;
  if (uses_cpu) {
    cpu_lane = static_cast<std::size_t>(
        std::min_element(cpu_lanes_.begin(), cpu_lanes_.end()) -
        cpu_lanes_.begin());
    start = std::max(start, cpu_lanes_[cpu_lane]);
  }
  for (int g : gpu_lanes) {
    start = std::max(start, gpu_lanes_[static_cast<std::size_t>(g)]);
  }
  const double finish = start + duration;
  if (uses_cpu) cpu_lanes_[cpu_lane] = finish;
  for (int g : gpu_lanes) {
    gpu_lanes_[static_cast<std::size_t>(g)] = finish;
    gpu_busy_[static_cast<std::size_t>(g)] += duration;
  }
  return {start, finish};
}

double Scheduler::BookGpuSpan(int device_index, double arrival,
                              double duration) {
  std::unique_lock<std::mutex> lock(lanes_mutex_);
  double& lane = gpu_lanes_[static_cast<std::size_t>(device_index)];
  const double start = std::max(arrival, lane);
  lane = start + duration;
  gpu_busy_[static_cast<std::size_t>(device_index)] += duration;
  return start;
}

void Scheduler::FinishJob(ScheduledJob& item, JobResult result) {
  admission_.Release(item.demand);
  result.metrics.tenant = item.job.options.tenant;
  stats_.RecordOutcome(result.metrics);
  item.promise.set_value(std::move(result));
}

bool Scheduler::FinishIfExpiredInQueue(ScheduledJob& item) {
  const double timeout = item.job.options.timeout_seconds;
  if (timeout <= 0.0) return false;
  if (ElapsedSeconds(item.submit_wall) < timeout &&
      !item.cancel->load(std::memory_order_relaxed)) {
    return false;
  }
  JobResult result;
  JobMetrics& m = result.metrics;
  m.id = item.id;
  m.virtual_arrival = item.job.options.virtual_arrival;
  m.outcome = JobOutcome::kTimedOut;
  // No executor ever saw this job: leave `executor` meaningless and say so
  // explicitly, so stats can separate queue expiries from mid-run timeouts.
  m.executed = false;
  result.status =
      Status::Cancelled("timed out after " + std::to_string(timeout) +
                        "s while queued");
  FinishJob(item, std::move(result));
  return true;
}

void Scheduler::WatchJob(const ScheduledJob& item) {
  const double timeout = item.job.options.timeout_seconds;
  if (timeout <= 0.0) return;
  std::unique_lock<std::mutex> lock(watch_mutex_);
  watched_[item.id] =
      Watched{item.cancel, item.submit_wall + ToSteadyDuration(timeout)};
}

void Scheduler::UnwatchJob(const ScheduledJob& item) {
  if (item.job.options.timeout_seconds <= 0.0) return;
  std::unique_lock<std::mutex> lock(watch_mutex_);
  watched_.erase(item.id);
}

void Scheduler::RunJob(ScheduledJob& item) {
  if (FinishIfExpiredInQueue(item)) return;

  JobResult result;
  JobMetrics& m = result.metrics;
  m.id = item.id;
  m.virtual_arrival = item.job.options.virtual_arrival;
  m.failovers = item.failover_credit;

  const JobOptions& opts = item.job.options;

  auto finish = [&](JobOutcome outcome, Status status) {
    m.outcome = outcome;
    result.status = std::move(status);
    FinishJob(item, std::move(result));
  };

  // Execute with scheduler-owned retry-with-replan: the executor's internal
  // retry loop is disabled, each pool overflow doubles the safety factor
  // and backs off exponentially before trying again.
  core::ExecutorOptions exec = opts.exec;
  exec.cancel = item.cancel.get();
  exec.max_oom_attempts = 1;
  if (config_.kernel != kernels::AccumulatorKind::kAuto) {
    exec.spgemm.accumulator = config_.kernel;
  }
  // The job's own (static) split ratio, kept apart from the per-round
  // calibrated override so failover rounds never compound overrides.
  const double static_gpu_ratio = exec.gpu_ratio;
  double backoff = std::max(0.0, opts.retry_backoff_seconds);

  core::ExecutionMode mode = opts.mode;
  std::vector<int> gpu_lane_indices;
  StatusOr<core::RunResult> run = Status::Internal("not attempted");
  WallTimer wall;

  // Failover rounds: a round whose run fails because a held device faulted
  // marks the dead lane unhealthy and re-plans the job from scratch — the
  // pool now excludes that lane, so the job lands on a survivor (or, for
  // kAuto, degrades to the CPU path once no healthy device fits).
  const int max_rounds = std::max(1, devices_.size() + 1);
  for (int round = 0;; ++round) {
    // Route.  kAuto mirrors core::Multiply's policy, plus graceful
    // degradation: a small job takes a device only if one is free this
    // instant.  Placement is least-reserved-bytes first among the devices
    // whose capacity holds the job's planned working set — a job never
    // lands on a device it could not fit.
    mode = opts.mode;
    gpu_lane_indices.clear();
    core::DevicePool::Slot slot;
    std::vector<core::DevicePool::Slot> span;
    const std::int64_t want = item.demand.planned_device_bytes;
    if (mode == core::ExecutionMode::kAuto) {
      if (!item.demand.gpu_feasible) {
        mode = core::ExecutionMode::kCpuOnly;
      } else if (item.demand.planned_chunks <= config_.small_job_chunks) {
        slot = devices_.TryAcquire(want);
        mode = slot.held() ? core::ExecutionMode::kGpuOutOfCore
                           : core::ExecutionMode::kCpuOnly;
      } else {
        slot = devices_.Acquire(want);
        // Feasible by estimate but no pool device is actually large enough
        // (heterogeneous fleet, or every fitting lane failed): the CPU path
        // is the graceful route.
        mode = slot.held() ? core::ExecutionMode::kHybrid
                           : core::ExecutionMode::kCpuOnly;
      }
    } else if (NeedsDevice(mode)) {
      slot = devices_.Acquire(want);
      if (!slot.held()) {
        finish(JobOutcome::kFailed,
               Status::FailedPrecondition(
                   "no pool device can hold the job's planned working set (" +
                   std::to_string(want) + " bytes)"));
        return;
      }
    }

    // Reserve the plan's device bytes for the duration of the run.  Only
    // what was actually reserved is returned below — CPU-only routes never
    // touch the ledger, so reservations balance to zero by construction.
    std::int64_t reserved = 0;
    if (slot.held() && want > 0) {
      if (slot.arbiter().TryReserve(want)) {
        reserved = want;
      } else {
        stats_.RecordReserveShortfall();
        if (opts.mode == core::ExecutionMode::kAuto) {
          // Running anyway would overcommit the ledger admission relies on;
          // degrade to the CPU path instead.
          slot.Release();
          mode = core::ExecutionMode::kCpuOnly;
        } else {
          // An explicit device mode has no CPU fallback: wait briefly for
          // outstanding reservations to drain, then give up loudly.
          const auto deadline =
              std::chrono::steady_clock::now() +
              ToSteadyDuration(std::max(0.0, config_.reserve_wait_seconds));
          const auto poll = std::chrono::duration<double>(
              std::max(1e-4, config_.reserve_poll_seconds));
          while (reserved == 0 && std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(poll);
            if (slot.arbiter().AvailableEstimate() >= want &&
                slot.arbiter().TryReserve(want)) {
              reserved = want;
            }
          }
          if (reserved == 0) {
            const std::int64_t available = slot.arbiter().AvailableEstimate();
            slot.Release();
            finish(JobOutcome::kFailed,
                   Status::ResourceExhausted(
                       "device reservation unavailable: want " +
                       std::to_string(want) + " bytes, " +
                       std::to_string(available) + " free"));
            return;
          }
        }
      }
    }

    // A multi-chunk Hybrid job may span extra devices that are free right
    // now (opportunistic — never waits).  Each spanned device pre-allocates
    // its own pools, so each carries its own reservation; a device that
    // refuses is simply dropped from the span.
    if (slot.held() && mode == core::ExecutionMode::kHybrid &&
        config_.max_devices_per_job > 1) {
      span = devices_.TryAcquireFree(config_.max_devices_per_job - 1, want);
      if (want > 0) {
        std::vector<core::DevicePool::Slot> kept;
        for (auto& extra : span) {
          if (extra.arbiter().TryReserve(want)) {
            kept.push_back(std::move(extra));
          } else {
            stats_.RecordReserveShortfall();
            extra.Release();
          }
        }
        span = std::move(kept);
      }
    }

    std::vector<vgpu::Device*> devs;
    if (slot.held()) {
      devs.push_back(&slot.device());
      gpu_lane_indices.push_back(slot.index());
      for (auto& extra : span) {
        devs.push_back(&extra.device());
        gpu_lane_indices.push_back(extra.index());
      }
    }
    m.executor = mode;
    m.executed = true;
    m.device_index = slot.held() ? slot.index() : -1;
    m.devices_used = static_cast<int>(devs.size());

    // Calibrated dispatch overrides (apply mode only): the hybrid split
    // becomes the dispatched device's fitted S/(S+1) and the kernel router
    // sees its fitted cost scales.  A model that carries the static
    // constants reproduces the static values exactly (differential test).
    exec.gpu_ratio = static_gpu_ratio;
    exec.spgemm.routing = opts.exec.spgemm.routing;
    if (calibrator_ != nullptr) {
      if (auto model = calibrator_->apply_model()) {
        exec.gpu_ratio = model->GpuRatioFor(m.device_index, static_gpu_ratio);
        exec.spgemm.routing = model->RouteScalesFor(m.device_index);
      }
    }

    WatchJob(item);

    for (int attempt = 0;; ++attempt) {
      ++m.attempts;
      run = Dispatch(mode, item, exec, devs);
      const bool pool_overflow =
          !run.ok() && run.status().code() == StatusCode::kOutOfMemory;
      const bool cancelled = item.cancel->load(std::memory_order_relaxed);
      if (!pool_overflow || attempt >= opts.max_retries || cancelled) break;
      exec.plan.nnz_safety_factor *= 2.0;
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= 2.0;
      }
    }

    // Inspect the held lanes' health BEFORE releasing them: a dead device
    // is pulled from the pool (no future lease lands on it) and a faulted
    // run becomes a failover round instead of a client-visible failure.
    // A dead span member under a *successful* run (core::MultiGpuHybrid
    // pruned it internally and re-dealt on the survivors) is still pulled.
    bool device_fault = false;
    auto inspect = [&](core::DevicePool::Slot& held) {
      if (!held.held() || held.device().health().ok()) return;
      if (!run.ok()) device_fault = true;
      if (held.device().dead()) {
        devices_.MarkUnhealthy(held.index());
        stats_.RecordDeviceFailure(held.index());
      }
    };
    inspect(slot);
    for (auto& extra : span) inspect(extra);

    if (reserved > 0) slot.arbiter().Unreserve(reserved);
    for (auto& extra : span) {
      if (want > 0) extra.arbiter().Unreserve(want);
      extra.Release();
    }
    slot.Release();
    UnwatchJob(item);

    const bool cancelled = item.cancel->load(std::memory_order_relaxed);
    if (!run.ok() && device_fault && !cancelled && round + 1 < max_rounds) {
      ++m.failovers;
      continue;
    }
    break;
  }
  m.wall_seconds = wall.Seconds();

  if (!run.ok()) {
    if (run.status().code() == StatusCode::kCancelled) {
      finish(JobOutcome::kTimedOut, run.status());
    } else {
      m.device_oom = run.status().code() == StatusCode::kOutOfMemory;
      finish(JobOutcome::kFailed, run.status());
    }
    return;
  }

  m.stats = run->stats;
  m.exec_seconds = run->stats.total_seconds;
  const bool uses_cpu = mode == core::ExecutionMode::kCpuOnly ||
                        mode == core::ExecutionMode::kHybrid;
  auto [vstart, vfinish] =
      BookLanes(uses_cpu, gpu_lane_indices, m.virtual_arrival, m.exec_seconds);
  m.virtual_start = vstart;
  m.virtual_finish = vfinish;
  m.queue_seconds = vstart - m.virtual_arrival;
  m.latency_seconds = vfinish - m.virtual_arrival;
  result.c = std::move(run.value().c);
  finish(JobOutcome::kCompleted, Status::Ok());
}

void Scheduler::RunBatch(std::vector<std::unique_ptr<ScheduledJob>>& batch) {
  // Sweep members whose timeout fired while queued before paying for the
  // device; a member that expires later is cancelled cooperatively at a
  // segment boundary inside the batched executor.
  std::vector<std::unique_ptr<ScheduledJob>> live;
  live.reserve(batch.size());
  for (auto& item : batch) {
    if (FinishIfExpiredInQueue(*item)) {
      if (on_job_done_) on_job_done_();
    } else {
      live.push_back(std::move(item));
    }
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    RunJob(*live.front());
    if (on_job_done_) on_job_done_();
    return;
  }

  auto fall_back = [&] {
    stats_.RecordBatchFallback();
    for (auto& item : live) {
      RunJob(*item);
      if (on_job_done_) on_job_done_();
    }
  };

  // The batch pins to exactly one device: its persistent GpuWorkspace and
  // resident B panels are that device's memory, so members cannot migrate
  // mid-batch.  One lease and one reservation cover the whole batch: the
  // members run back to back on a shared workspace, so the batch's device
  // demand is the max — not the sum — of the members'.
  const std::int64_t want = BatchPlannedDeviceBytes(live);
  core::DevicePool::Slot slot = devices_.Acquire(want);
  if (!slot.held()) {
    // No pool device is large enough for the batch's shared workspace; the
    // members re-run individually where per-job policy applies.
    fall_back();
    return;
  }
  std::int64_t reserved = 0;
  if (want > 0) {
    if (slot.arbiter().TryReserve(want)) {
      reserved = want;
    } else {
      // The per-job path owns the degradation policy (CPU fallback or
      // bounded wait); don't duplicate it here.
      stats_.RecordReserveShortfall();
      slot.Release();
      fall_back();
      return;
    }
  }

  for (auto& item : live) WatchJob(*item);

  // The leader's executor config drives the batch; per-member cancels go
  // through the specs.  Pool overflow replans the whole batch with the
  // same doubling policy as the per-job path, on the leader's budget.
  const ScheduledJob& leader = *live.front();
  core::ExecutorOptions exec = leader.job.options.exec;
  exec.cancel = nullptr;
  exec.max_oom_attempts = 1;
  if (config_.kernel != kernels::AccumulatorKind::kAuto) {
    exec.spgemm.accumulator = config_.kernel;
  }
  // The batch pins to one device, so the routing override is that device's.
  if (calibrator_ != nullptr) {
    if (auto model = calibrator_->apply_model()) {
      exec.spgemm.routing = model->RouteScalesFor(slot.index());
    }
  }
  std::vector<core::BatchJobSpec> specs;
  specs.reserve(live.size());
  for (auto& item : live) {
    core::BatchJobSpec spec;
    spec.a = item->job.a.get();
    spec.cancel = item->cancel.get();
    specs.push_back(spec);
  }

  int attempts = 0;
  double backoff = std::max(0.0, leader.job.options.retry_backoff_seconds);
  StatusOr<core::BatchedRunResult> run = Status::Internal("not attempted");
  WallTimer wall;
  for (int attempt = 0;; ++attempt) {
    ++attempts;
    run = core::BatchedOutOfCore(slot.device(), specs, *leader.job.b, exec,
                                 pool_);
    const bool pool_overflow =
        !run.ok() && run.status().code() == StatusCode::kOutOfMemory;
    if (!pool_overflow || attempt >= leader.job.options.max_retries) break;
    exec.plan.nnz_safety_factor *= 2.0;
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff *= 2.0;
    }
  }
  const double wall_seconds = wall.Seconds();

  const int batch_device = slot.index();
  for (auto& item : live) UnwatchJob(*item);

  // Inspect the batch device before releasing the lease: a dead lane is
  // pulled from the pool so the members' individual re-runs (and everyone
  // else) re-plan onto the survivors.
  bool device_fault = false;
  if (!run.ok() && !slot.device().health().ok()) {
    device_fault = true;
    if (slot.device().dead()) {
      devices_.MarkUnhealthy(batch_device);
      stats_.RecordDeviceFailure(batch_device);
    }
  }

  if (reserved > 0) slot.arbiter().Unreserve(reserved);
  slot.Release();

  if (!run.ok()) {
    // Whole-batch failure (planning error, unrecoverable overflow, device
    // fault): the members re-run individually where per-job policy applies.
    // A device fault counts as one failover for every member that re-runs.
    if (device_fault) {
      for (auto& item : live) ++item->failover_credit;
    }
    fall_back();
    return;
  }
  stats_.RecordBatch(static_cast<std::int64_t>(live.size()));

  // The batch occupies its device's lane as one span; it cannot start
  // before all members arrived, and each member finishes at its own offset.
  double arrival = 0.0;
  for (auto& item : live) {
    arrival = std::max(arrival, item->job.options.virtual_arrival);
  }
  const double start = BookGpuSpan(batch_device, arrival, run->batch_makespan);

  for (std::size_t i = 0; i < live.size(); ++i) {
    ScheduledJob& item = *live[i];
    core::BatchJobResult& jr = run.value().jobs[i];
    JobResult result;
    JobMetrics& m = result.metrics;
    m.id = item.id;
    m.virtual_arrival = item.job.options.virtual_arrival;
    m.executed = true;
    m.executor = core::ExecutionMode::kGpuOutOfCore;
    m.device_index = batch_device;
    m.devices_used = 1;
    m.batch_size = static_cast<int>(live.size());
    m.attempts = attempts;
    m.wall_seconds = wall_seconds / static_cast<double>(live.size());
    if (!jr.status.ok()) {
      m.outcome = jr.status.code() == StatusCode::kCancelled
                      ? JobOutcome::kTimedOut
                      : JobOutcome::kFailed;
      m.device_oom = jr.status.code() == StatusCode::kOutOfMemory;
      result.status = std::move(jr.status);
      FinishJob(item, std::move(result));
      if (on_job_done_) on_job_done_();
      continue;
    }
    m.stats = jr.run.stats;
    m.exec_seconds = jr.run.stats.total_seconds;
    m.virtual_start = start;
    m.virtual_finish = start + std::max(0.0, jr.run.stats.total_seconds);
    m.queue_seconds = m.virtual_start - m.virtual_arrival;
    m.latency_seconds = m.virtual_finish - m.virtual_arrival;
    m.outcome = JobOutcome::kCompleted;
    result.status = Status::Ok();
    result.c = std::move(jr.run.c);
    FinishJob(item, std::move(result));
    if (on_job_done_) on_job_done_();
  }
}

}  // namespace oocgemm::serve
