// Bounded, priority-ordered job queue between admission and the scheduler
// workers.
//
// Ordering is (priority desc, submission sequence asc): strict priorities
// with FIFO fairness inside a class.  The bound is the serving system's
// backpressure valve — a full queue turns into an admission rejection, not
// unbounded memory growth.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"

namespace oocgemm::serve {

template <typename T>
class BoundedJobQueue {
 public:
  explicit BoundedJobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Mirrors the live queue depth into `gauge` on every mutation (pass
  /// nullptr to disconnect).  The gauge outlives the queue in practice —
  /// registry instruments are never destroyed.
  void set_depth_gauge(obs::Gauge* gauge) {
    std::unique_lock<std::mutex> lock(mutex_);
    gauge_ = gauge;
    UpdateGauge();
  }

  /// Non-blocking; false when the queue is at capacity or closed.
  bool TryPush(int priority, T item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.emplace(Key{-priority, next_seq_++}, std::move(item));
      UpdateGauge();
    }
    cv_.notify_one();
    return true;
  }

  /// Blocking push: waits up to `timeout_seconds` for space (forever when
  /// <= 0).  False when the queue closed or the timeout elapsed while
  /// still full.  Space appears whenever Pop *or* ExtractIf removes items
  /// — both notify space_cv_; a batch former that peels companions without
  /// waking producers would strand submitters on a saturated queue.
  bool Push(int priority, T item, double timeout_seconds = 0.0) {
    std::unique_lock<std::mutex> lock(mutex_);
    auto have_space = [this] { return closed_ || items_.size() < capacity_; };
    if (timeout_seconds > 0.0) {
      if (!space_cv_.wait_for(lock,
                              std::chrono::duration<double>(timeout_seconds),
                              have_space)) {
        return false;
      }
    } else {
      space_cv_.wait(lock, have_space);
    }
    if (closed_) return false;
    items_.emplace(Key{-priority, next_seq_++}, std::move(item));
    UpdateGauge();
    lock.unlock();
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// nullopt only on the latter.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    auto it = items_.begin();
    T item = std::move(it->second);
    items_.erase(it);
    UpdateGauge();
    lock.unlock();
    space_cv_.notify_one();
    return item;
  }

  /// Removes and returns up to `max_items` queued items satisfying `pred`,
  /// in queue (priority, FIFO) order, without blocking.  The scheduler's
  /// batch former uses this to peel companions that share an operand with
  /// the job a worker just popped; non-matching items keep their position.
  template <typename Pred>
  std::vector<T> ExtractIf(Pred pred, std::size_t max_items) {
    std::vector<T> out;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (auto it = items_.begin();
           it != items_.end() && out.size() < max_items;) {
        if (pred(it->second)) {
          out.push_back(std::move(it->second));
          it = items_.erase(it);
        } else {
          ++it;
        }
      }
      UpdateGauge();
    }
    // Each removal frees a slot a blocked producer may be waiting on; not
    // notifying here was a missed-wakeup bug under a saturated queue (the
    // batch former peels companions between a producer's wait and any Pop).
    for (std::size_t i = 0; i < out.size(); ++i) space_cv_.notify_one();
    return out;
  }

  /// Wakes all poppers and blocked pushers; queued items may still be
  /// popped, new pushes fail.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  std::size_t size() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  void UpdateGauge() {  // callers hold mutex_
    if (gauge_ != nullptr) {
      gauge_->Set(static_cast<std::int64_t>(items_.size()));
    }
  }

  struct Key {
    int neg_priority;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      if (neg_priority != o.neg_priority) return neg_priority < o.neg_priority;
      return seq < o.seq;
    }
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;        // consumers: items available / closed
  std::condition_variable space_cv_;  // producers: capacity available / closed
  std::map<Key, T> items_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  obs::Gauge* gauge_ = nullptr;
};

}  // namespace oocgemm::serve
