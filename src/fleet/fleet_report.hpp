// The fleet-level report: routing counters, what the callers' futures saw,
// the per-shard ServerReports, and totals that are *defined* as sums over
// those shard reports — so "fleet report reconciles with per-shard reports"
// is structural, and the CI reconciliation check can recompute the sums
// from the embedded shard sections and compare exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server_stats.hpp"

namespace oocgemm::fleet {

/// What the router did with submissions, before any shard saw them.
struct FleetRoutingStats {
  /// Jobs accepted by FleetRouter::Submit (each resolves exactly one
  /// caller-visible future).
  std::int64_t routed_jobs = 0;
  /// Jobs whose first placement was the ring owner of their B operand.
  std::int64_t affinity_routed = 0;
  /// Jobs spread onto a non-owner replica of a hot operand.
  std::int64_t replica_routed = 0;
  /// Jobs placed by the kRandom policy (baseline mode; 0 under affinity).
  std::int64_t random_routed = 0;
  /// First-choice shard skipped at submit time because its probe showed a
  /// dead pool or a saturated queue.
  std::int64_t probe_skips = 0;
  /// Courier re-submissions to a ring successor after a shard-side
  /// failure/rejection.  One job can contribute several hops.
  std::int64_t failover_resubmissions = 0;
  /// Jobs that failed on their first shard but completed on a successor.
  std::int64_t rerouted_completed = 0;
  /// Jobs that exhausted every distinct shard without completing.
  std::int64_t exhausted_jobs = 0;
  /// Submissions refused by the router itself (after Shutdown began);
  /// these never reach a shard and are outside routed_jobs.
  std::int64_t router_rejects = 0;
  /// Hot-operand tracker state at snapshot time.
  std::int64_t hot_promotions = 0;
  std::int64_t hot_demotions = 0;
  std::int64_t tracked_operands = 0;
};

/// Column sums over the per-shard ServerReports (makespan is the max, and
/// the rate is recomputed from the summed numerator).  Everything here must
/// equal the sum a reader computes from FleetReport::shard_reports.
struct FleetTotals {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t rejected = 0;
  std::int64_t timed_out = 0;
  std::int64_t failed = 0;
  std::int64_t retries = 0;
  std::int64_t failed_over = 0;
  std::int64_t device_failures = 0;
  std::int64_t device_oom_failures = 0;
  std::int64_t batches = 0;
  std::int64_t batched_jobs = 0;
  std::int64_t b_panel_uploads = 0;
  std::int64_t b_panel_hits = 0;
  std::int64_t transfer_bytes_h2d = 0;
  std::int64_t transfer_bytes_d2h = 0;
  double virtual_makespan_seconds = 0.0;  // max over shards
  double jobs_per_second = 0.0;           // summed completed / max makespan
};

struct FleetReport {
  int shards = 0;
  int replication = 1;
  std::string policy;  // "affinity" | "random"

  FleetRoutingStats routing;

  /// Outcomes as delivered to callers (a re-routed job counts once, under
  /// its final outcome).  After Drain(), the four sum to routed_jobs.
  std::int64_t delivered_completed = 0;
  std::int64_t delivered_rejected = 0;
  std::int64_t delivered_timed_out = 0;
  std::int64_t delivered_failed = 0;

  /// One ServerReport per shard, index-aligned with the router's shards.
  std::vector<serve::ServerReport> shard_reports;
  FleetTotals totals;

  /// The reconciliation function: totals of `reports`, column by column.
  static FleetTotals Sum(const std::vector<serve::ServerReport>& reports);

  /// True when `totals` equals Sum(shard_reports) field-for-field and the
  /// shard-side submission count accounts for every routed job plus every
  /// courier resubmission.  The smoke test's hard gate.
  bool Reconciles() const;

  std::string ToJson() const;
  std::string DebugString() const;
};

}  // namespace oocgemm::fleet
