#include "fleet/fleet_report.hpp"

#include <algorithm>
#include <sstream>

#include "common/format.hpp"

namespace oocgemm::fleet {

FleetTotals FleetReport::Sum(const std::vector<serve::ServerReport>& reports) {
  FleetTotals t;
  for (const serve::ServerReport& r : reports) {
    t.submitted += r.submitted;
    t.completed += r.completed;
    t.rejected += r.rejected;
    t.timed_out += r.timed_out;
    t.failed += r.failed;
    t.retries += r.retries;
    t.failed_over += r.failed_over;
    t.device_failures += r.device_failures;
    t.device_oom_failures += r.device_oom_failures;
    t.batches += r.batches;
    t.batched_jobs += r.batched_jobs;
    t.b_panel_uploads += r.b_panel_uploads;
    t.b_panel_hits += r.b_panel_hits;
    t.transfer_bytes_h2d += r.transfer_bytes_h2d;
    t.transfer_bytes_d2h += r.transfer_bytes_d2h;
    t.virtual_makespan_seconds =
        std::max(t.virtual_makespan_seconds, r.virtual_makespan_seconds);
  }
  if (t.virtual_makespan_seconds > 0.0) {
    t.jobs_per_second =
        static_cast<double>(t.completed) / t.virtual_makespan_seconds;
  }
  return t;
}

bool FleetReport::Reconciles() const {
  const FleetTotals s = Sum(shard_reports);
  const bool columns_match =
      totals.submitted == s.submitted && totals.completed == s.completed &&
      totals.rejected == s.rejected && totals.timed_out == s.timed_out &&
      totals.failed == s.failed && totals.retries == s.retries &&
      totals.failed_over == s.failed_over &&
      totals.device_failures == s.device_failures &&
      totals.device_oom_failures == s.device_oom_failures &&
      totals.batches == s.batches && totals.batched_jobs == s.batched_jobs &&
      totals.b_panel_uploads == s.b_panel_uploads &&
      totals.b_panel_hits == s.b_panel_hits &&
      totals.transfer_bytes_h2d == s.transfer_bytes_h2d &&
      totals.transfer_bytes_d2h == s.transfer_bytes_d2h;
  // Every shard-side submission is either a routed job's first placement or
  // a courier resubmission; every routed job resolves exactly one future.
  const bool flow_matches =
      totals.submitted ==
          routing.routed_jobs + routing.failover_resubmissions &&
      delivered_completed + delivered_rejected + delivered_timed_out +
              delivered_failed ==
          routing.routed_jobs;
  return columns_match && flow_matches;
}

std::string FleetReport::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"shards\": " << shards << ",\n";
  os << "  \"replication\": " << replication << ",\n";
  os << "  \"policy\": " << JsonEscape(policy) << ",\n";
  os << "  \"routing\": {\n";
  os << "    \"routed_jobs\": " << routing.routed_jobs << ",\n";
  os << "    \"affinity_routed\": " << routing.affinity_routed << ",\n";
  os << "    \"replica_routed\": " << routing.replica_routed << ",\n";
  os << "    \"random_routed\": " << routing.random_routed << ",\n";
  os << "    \"probe_skips\": " << routing.probe_skips << ",\n";
  os << "    \"failover_resubmissions\": " << routing.failover_resubmissions
     << ",\n";
  os << "    \"rerouted_completed\": " << routing.rerouted_completed << ",\n";
  os << "    \"exhausted_jobs\": " << routing.exhausted_jobs << ",\n";
  os << "    \"router_rejects\": " << routing.router_rejects << ",\n";
  os << "    \"hot_promotions\": " << routing.hot_promotions << ",\n";
  os << "    \"hot_demotions\": " << routing.hot_demotions << ",\n";
  os << "    \"tracked_operands\": " << routing.tracked_operands << "\n";
  os << "  },\n";
  os << "  \"delivered\": {\n";
  os << "    \"completed\": " << delivered_completed << ",\n";
  os << "    \"rejected\": " << delivered_rejected << ",\n";
  os << "    \"timed_out\": " << delivered_timed_out << ",\n";
  os << "    \"failed\": " << delivered_failed << "\n";
  os << "  },\n";
  os << "  \"totals\": {\n";
  os << "    \"submitted\": " << totals.submitted << ",\n";
  os << "    \"completed\": " << totals.completed << ",\n";
  os << "    \"rejected\": " << totals.rejected << ",\n";
  os << "    \"timed_out\": " << totals.timed_out << ",\n";
  os << "    \"failed\": " << totals.failed << ",\n";
  os << "    \"retries\": " << totals.retries << ",\n";
  os << "    \"failed_over\": " << totals.failed_over << ",\n";
  os << "    \"device_failures\": " << totals.device_failures << ",\n";
  os << "    \"device_oom_failures\": " << totals.device_oom_failures << ",\n";
  os << "    \"batches\": " << totals.batches << ",\n";
  os << "    \"batched_jobs\": " << totals.batched_jobs << ",\n";
  os << "    \"b_panel_uploads\": " << totals.b_panel_uploads << ",\n";
  os << "    \"b_panel_hits\": " << totals.b_panel_hits << ",\n";
  os << "    \"transfer_bytes_h2d\": " << totals.transfer_bytes_h2d << ",\n";
  os << "    \"transfer_bytes_d2h\": " << totals.transfer_bytes_d2h << ",\n";
  os << "    \"virtual_makespan_seconds\": " << totals.virtual_makespan_seconds
     << ",\n";
  os << "    \"jobs_per_second\": " << totals.jobs_per_second << "\n";
  os << "  },\n";
  os << "  \"reconciles\": " << (Reconciles() ? "true" : "false") << ",\n";
  os << "  \"shard_reports\": [";
  for (std::size_t i = 0; i < shard_reports.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    // Re-indent the shard's own JSON so the fleet document stays readable.
    std::istringstream in(shard_reports[i].ToJson());
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      os << (first ? "" : "\n") << "    " << line;
      first = false;
    }
  }
  os << (shard_reports.empty() ? "]\n" : "\n  ]\n");
  os << "}";
  return os.str();
}

std::string FleetReport::DebugString() const {
  std::ostringstream os;
  os << shards << "-shard fleet (" << policy << ", R=" << replication << "): "
     << delivered_completed << "/" << routing.routed_jobs << " delivered ok";
  if (delivered_rejected > 0) os << ", " << delivered_rejected << " rejected";
  if (delivered_timed_out > 0) {
    os << ", " << delivered_timed_out << " timed out";
  }
  if (delivered_failed > 0) os << ", " << delivered_failed << " failed";
  os << "; " << routing.affinity_routed << " affinity / "
     << routing.replica_routed << " replica / " << routing.random_routed
     << " random placements";
  if (routing.failover_resubmissions > 0) {
    os << "; " << routing.failover_resubmissions << " failover hops ("
       << routing.rerouted_completed << " recovered)";
  }
  if (routing.hot_promotions > 0) {
    os << "; " << routing.hot_promotions << " hot promotions";
  }
  os << "; totals " << totals.completed << " completed, "
     << totals.b_panel_uploads << " B-panel uploads over "
     << HumanSeconds(totals.virtual_makespan_seconds)
     << (Reconciles() ? " [reconciles]" : " [DOES NOT RECONCILE]");
  return os.str();
}

}  // namespace oocgemm::fleet
