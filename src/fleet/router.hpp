// FleetRouter: N in-process SpgemmServer shards behind one Submit().
//
// Placement is the consistent-hash ring over content-stable B-operand keys
// (fleet/placement.hpp): repeat jobs on the same B land on the same
// shard, so that shard's batch former and PanelCache amortize the B-panel
// uploads — the fleet-level continuation of the operand-reuse lever the
// paper pulls inside one node.  A HotOperandTracker promotes
// skew-dominating operands onto R ring successors and round-robins among
// them, trading R-1 extra copies of the B panels for R-way bandwidth.
//
// Failure handling reuses the shard-level health machinery: a shard whose
// devices all died fails explicit-GPU jobs fast (DevicePool::Acquire
// refuses when no healthy device fits), its probe turns un-routable, and
// the router's courier threads re-submit the failed job to the next
// untried ring successor, recording the hop.  Every Submit() returns a
// future that resolves exactly once, with the final shard's result.
//
//   fleet::FleetRouter router({{&d0, &d1}, {&d2, &d3}}, pool, config);
//   auto fut = router.Submit({a, b, {.mode = kGpuOutOfCore}});
//   router.Drain();
//   fleet::FleetReport report = router.Report();
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "fleet/fleet_report.hpp"
#include "fleet/placement.hpp"
#include "fleet/replication.hpp"
#include "fleet/ring.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace oocgemm::fleet {

enum class RoutingPolicy {
  kAffinity,  // ring owner (or a hot operand's replica set)
  kRandom,    // uniform random shard — the bench's baseline
};

const char* RoutingPolicyName(RoutingPolicy policy);

struct FleetConfig {
  /// Per-shard server configuration.  The router stamps instance_label
  /// with "shard<i>" so each shard's queue gauge is its own metric point.
  serve::ServerConfig shard;

  RoutingPolicy policy = RoutingPolicy::kAffinity;
  int vnodes_per_shard = ConsistentHashRing::kDefaultVnodesPerShard;
  /// Replication factor and EWMA knobs of the hot-operand tracker.
  ReplicationConfig replication;
  /// Seed of the kRandom policy's generator (deterministic baseline).
  std::uint64_t random_seed = 0x5eedull;

  /// A shard whose queue depth is at or past this fraction of capacity is
  /// skipped at routing time (the job goes to the next ring successor).
  double queue_pressure_limit = 0.95;
  /// Threads delivering shard results to caller futures and re-routing
  /// failures.  Dedicated threads, not the shared ThreadPool: couriers
  /// block on futures, and the pool's workers run executor stages.
  int courier_threads = 2;
};

class FleetRouter {
 public:
  /// One device set per shard; the router owns the servers, not the
  /// devices.  Shard i is built over shard_devices[i].
  FleetRouter(std::vector<std::vector<vgpu::Device*>> shard_devices,
              ThreadPool& pool, FleetConfig config = {});
  ~FleetRouter();

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Thread-safe.  The future resolves exactly once: with the first
  /// shard's result, or — after cross-shard failover — with the result of
  /// the last shard tried.
  std::future<serve::JobResult> Submit(serve::SpgemmJob job);

  /// Blocks until every routed job has resolved its caller future
  /// (including jobs still hopping between shards).
  void Drain();

  /// Stops accepting, drains in-flight jobs, joins the couriers, shuts
  /// every shard down.  Idempotent; also run by the destructor.
  void Shutdown();

  FleetReport Report() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  serve::SpgemmServer& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const serve::SpgemmServer& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }
  /// The ring owner of `b` — where an affinity-routed job goes when the
  /// operand is cold and the shard healthy.  Tests pin placement with it.
  int PrimaryShardFor(const sparse::Csr& b) const;
  const ConsistentHashRing& ring() const { return ring_; }
  const FleetConfig& config() const { return config_; }

 private:
  /// One routed job: the caller's promise plus enough state to resubmit.
  struct Ticket {
    serve::SpgemmJob job;  // operands are shared_ptrs — resubmission is cheap
    std::promise<serve::JobResult> promise;
    std::vector<int> tried;  // shards this job was placed on, in order
  };
  /// A ticket currently owned by some shard, awaiting its future.
  struct Inflight {
    std::shared_ptr<Ticket> ticket;
    std::future<serve::JobResult> future;
  };

  /// Places the job per policy/tracker and updates routing counters.
  /// Returns the chosen shard.  Caller must hold mutex_.
  int ChooseShardLocked(std::uint64_t key);
  /// First probe-routable untried successor of `key`; -1 when every shard
  /// was tried; falls back to the first untried one when none is routable
  /// (its rejection keeps the hop accounting honest).
  int NextUntriedShard(std::uint64_t key, const std::vector<int>& tried) const;

  void EnqueueInflight(std::shared_ptr<Ticket> ticket,
                       std::future<serve::JobResult> future);
  void CourierLoop();
  /// Terminal delivery: fulfils the caller promise, updates delivered
  /// counters, releases the drain latch.
  void Deliver(Ticket& ticket, serve::JobResult result);
  static bool RetryableOnAnotherShard(const serve::JobResult& result);

  FleetConfig config_;
  std::vector<std::unique_ptr<serve::SpgemmServer>> shards_;
  ConsistentHashRing ring_;

  mutable std::mutex mutex_;  // tracker, rng, routing stats
  HotOperandTracker tracker_;
  std::mt19937_64 rng_;
  FleetRoutingStats routing_;

  // Caller-visible outcome tallies (delivered_* of the report).
  std::int64_t delivered_completed_ = 0;
  std::int64_t delivered_rejected_ = 0;
  std::int64_t delivered_timed_out_ = 0;
  std::int64_t delivered_failed_ = 0;

  std::mutex courier_mutex_;
  std::condition_variable courier_cv_;
  std::deque<Inflight> courier_queue_;
  bool courier_closed_ = false;
  std::vector<std::thread> couriers_;

  mutable std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::int64_t pending_ = 0;
  bool shut_down_ = false;

  /// Default-registry mirrors of the routing counters, so the fleet is
  /// scrapable live alongside the per-shard serve metrics.
  struct Metrics {
    obs::Counter* routed = nullptr;
    obs::Counter* affinity = nullptr;
    obs::Counter* replica = nullptr;
    obs::Counter* random = nullptr;
    obs::Counter* probe_skips = nullptr;
    obs::Counter* resubmissions = nullptr;
    obs::Counter* rerouted_completed = nullptr;
    obs::Counter* exhausted = nullptr;
    obs::Gauge* shards = nullptr;
  };
  Metrics metrics_;
};

}  // namespace oocgemm::fleet
