#include "fleet/router.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace oocgemm::fleet {

const char* RoutingPolicyName(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kAffinity: return "affinity";
    case RoutingPolicy::kRandom: return "random";
  }
  return "unknown";
}

FleetRouter::FleetRouter(std::vector<std::vector<vgpu::Device*>> shard_devices,
                         ThreadPool& pool, FleetConfig config)
    : config_(std::move(config)),
      ring_(static_cast<int>(shard_devices.size()),
            config_.vnodes_per_shard),
      tracker_(config_.replication),
      rng_(config_.random_seed) {
  shards_.reserve(shard_devices.size());
  for (std::size_t i = 0; i < shard_devices.size(); ++i) {
    serve::ServerConfig shard_config = config_.shard;
    if (shard_config.instance_label.empty()) {
      shard_config.instance_label = "shard" + std::to_string(i);
    } else {
      shard_config.instance_label += std::to_string(i);
    }
    shards_.push_back(std::make_unique<serve::SpgemmServer>(
        std::move(shard_devices[i]), pool, std::move(shard_config)));
  }

  auto& reg = obs::MetricsRegistry::Default();
  metrics_.routed = &reg.GetCounter("oocgemm_fleet_routed_jobs", {},
                                    "Jobs the fleet router placed on a shard");
  metrics_.affinity = &reg.GetCounter(
      "oocgemm_fleet_affinity_routed", {},
      "Jobs placed on their B operand's ring owner");
  metrics_.replica = &reg.GetCounter(
      "oocgemm_fleet_replica_routed", {},
      "Jobs spread onto a hot operand's non-owner replica");
  metrics_.random = &reg.GetCounter(
      "oocgemm_fleet_random_routed", {},
      "Jobs placed by the random baseline policy");
  metrics_.probe_skips = &reg.GetCounter(
      "oocgemm_fleet_probe_skips", {},
      "First-choice shards skipped at submit (dead pool / full queue)");
  metrics_.resubmissions = &reg.GetCounter(
      "oocgemm_fleet_failover_resubmissions", {},
      "Courier re-submissions to a ring successor after a shard failure");
  metrics_.rerouted_completed = &reg.GetCounter(
      "oocgemm_fleet_rerouted_completed", {},
      "Jobs that failed on their first shard but completed on a successor");
  metrics_.exhausted = &reg.GetCounter(
      "oocgemm_fleet_exhausted_jobs", {},
      "Jobs that failed on every distinct shard");
  metrics_.shards = &reg.GetGauge("oocgemm_fleet_shards", {},
                                  "Shards behind the fleet router");
  metrics_.shards->Set(static_cast<std::int64_t>(shards_.size()));

  const int couriers = std::max(1, config_.courier_threads);
  couriers_.reserve(static_cast<std::size_t>(couriers));
  for (int c = 0; c < couriers; ++c) {
    couriers_.emplace_back([this] { CourierLoop(); });
  }
}

FleetRouter::~FleetRouter() { Shutdown(); }

int FleetRouter::ChooseShardLocked(std::uint64_t key) {
  const int n = shard_count();
  if (config_.policy == RoutingPolicy::kRandom) {
    ++routing_.random_routed;
    metrics_.random->Add(1);
    return static_cast<int>(rng_() % static_cast<std::uint64_t>(n));
  }
  const int fanout = tracker_.RecordAndFanout(key);
  const std::vector<int> replicas = ring_.Successors(key, fanout);
  int pick = replicas.empty() ? 0 : replicas[0];
  if (replicas.size() > 1) {
    const int cursor = tracker_.NextReplicaCursor(key);
    pick = replicas[static_cast<std::size_t>(cursor) % replicas.size()];
  }
  if (!replicas.empty() && pick != replicas[0]) {
    ++routing_.replica_routed;
    metrics_.replica->Add(1);
  } else {
    ++routing_.affinity_routed;
    metrics_.affinity->Add(1);
  }
  return pick;
}

int FleetRouter::NextUntriedShard(std::uint64_t key,
                                  const std::vector<int>& tried) const {
  const std::vector<int> order = ring_.Successors(key, shard_count());
  int first_untried = -1;
  for (int s : order) {
    if (std::find(tried.begin(), tried.end(), s) != tried.end()) continue;
    if (first_untried < 0) first_untried = s;
    if (shards_[static_cast<std::size_t>(s)]->Probe().Routable(
            config_.queue_pressure_limit)) {
      return s;
    }
  }
  // No routable candidate: hand the job to the first untried shard anyway —
  // its immediate rejection terminates the hop chain deterministically
  // instead of the router inventing an outcome of its own.
  return first_untried;
}

std::future<serve::JobResult> FleetRouter::Submit(serve::SpgemmJob job) {
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    if (shut_down_) {
      std::promise<serve::JobResult> p;
      serve::JobResult r;
      r.status = Status::FailedPrecondition("fleet router is shut down");
      r.metrics.outcome = serve::JobOutcome::kRejected;
      p.set_value(std::move(r));
      {
        std::unique_lock<std::mutex> stats_lock(mutex_);
        ++routing_.router_rejects;
      }
      return p.get_future();
    }
    ++pending_;
  }

  const std::uint64_t key = job.b ? OperandPlacementKey(*job.b) : 0;
  int target;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    target = ChooseShardLocked(key);
    ++routing_.routed_jobs;
    metrics_.routed->Add(1);
  }

  // Probe the placement; a dead or saturated first choice is skipped for
  // the next routable ring successor before the job ever queues.
  if (!shards_[static_cast<std::size_t>(target)]->Probe().Routable(
          config_.queue_pressure_limit)) {
    const int fallback = NextUntriedShard(key, {target});
    if (fallback >= 0) {
      std::unique_lock<std::mutex> lock(mutex_);
      ++routing_.probe_skips;
      metrics_.probe_skips->Add(1);
      target = fallback;
    }
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->job = job;
  ticket->tried.push_back(target);
  std::future<serve::JobResult> caller_future = ticket->promise.get_future();
  EnqueueInflight(ticket,
                  shards_[static_cast<std::size_t>(target)]->Submit(
                      std::move(job)));
  return caller_future;
}

void FleetRouter::EnqueueInflight(std::shared_ptr<Ticket> ticket,
                                  std::future<serve::JobResult> future) {
  {
    std::unique_lock<std::mutex> lock(courier_mutex_);
    courier_queue_.push_back(Inflight{std::move(ticket), std::move(future)});
  }
  courier_cv_.notify_one();
}

bool FleetRouter::RetryableOnAnotherShard(const serve::JobResult& result) {
  // Completed and timed-out jobs are terminal (the deadline elapsed either
  // way); so are caller errors.  Everything that smells like "this shard
  // could not serve it" — dead devices, full queue, exhausted pool — is
  // worth one hop per remaining shard.
  if (result.metrics.outcome == serve::JobOutcome::kCompleted ||
      result.metrics.outcome == serve::JobOutcome::kTimedOut) {
    return false;
  }
  switch (result.status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDataLoss:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kResourceExhausted:
    case StatusCode::kOutOfMemory:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

void FleetRouter::CourierLoop() {
  for (;;) {
    Inflight inflight;
    {
      std::unique_lock<std::mutex> lock(courier_mutex_);
      courier_cv_.wait(lock, [this] {
        return courier_closed_ || !courier_queue_.empty();
      });
      if (courier_queue_.empty()) return;  // closed and drained
      inflight = std::move(courier_queue_.front());
      courier_queue_.pop_front();
    }

    // Blocks until the owning shard resolves the job.  Shards make
    // progress independently of the couriers, so this cannot deadlock.
    serve::JobResult result = inflight.future.get();
    Ticket& ticket = *inflight.ticket;

    if (RetryableOnAnotherShard(result) &&
        static_cast<int>(ticket.tried.size()) < shard_count()) {
      const std::uint64_t key =
          ticket.job.b ? OperandPlacementKey(*ticket.job.b) : 0;
      const int next = NextUntriedShard(key, ticket.tried);
      if (next >= 0) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          ++routing_.failover_resubmissions;
          metrics_.resubmissions->Add(1);
        }
        ticket.tried.push_back(next);
        serve::SpgemmJob job = ticket.job;
        EnqueueInflight(inflight.ticket,
                        shards_[static_cast<std::size_t>(next)]->Submit(
                            std::move(job)));
        continue;
      }
    }
    Deliver(ticket, std::move(result));
  }
}

void FleetRouter::Deliver(Ticket& ticket, serve::JobResult result) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    switch (result.metrics.outcome) {
      case serve::JobOutcome::kCompleted:
        ++delivered_completed_;
        if (ticket.tried.size() > 1) {
          ++routing_.rerouted_completed;
          metrics_.rerouted_completed->Add(1);
        }
        break;
      case serve::JobOutcome::kRejected: ++delivered_rejected_; break;
      case serve::JobOutcome::kTimedOut: ++delivered_timed_out_; break;
      case serve::JobOutcome::kFailed: ++delivered_failed_; break;
    }
    if (result.metrics.outcome != serve::JobOutcome::kCompleted &&
        static_cast<int>(ticket.tried.size()) >= shard_count() &&
        ticket.tried.size() > 1) {
      ++routing_.exhausted_jobs;
      metrics_.exhausted->Add(1);
    }
  }
  ticket.promise.set_value(std::move(result));
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    if (--pending_ == 0) pending_cv_.notify_all();
  }
}

void FleetRouter::Drain() {
  std::unique_lock<std::mutex> lock(pending_mutex_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

void FleetRouter::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    if (shut_down_) {
      // Idempotent re-entry still waits for any straggling deliveries.
      pending_cv_.wait(lock, [this] { return pending_ == 0; });
      return;
    }
    shut_down_ = true;
  }
  Drain();  // couriers are idle once every caller future resolved
  {
    std::unique_lock<std::mutex> lock(courier_mutex_);
    courier_closed_ = true;
  }
  courier_cv_.notify_all();
  for (std::thread& t : couriers_) {
    if (t.joinable()) t.join();
  }
  for (auto& shard : shards_) shard->Shutdown();
}

int FleetRouter::PrimaryShardFor(const sparse::Csr& b) const {
  return ring_.Owner(OperandPlacementKey(b));
}

FleetReport FleetRouter::Report() const {
  FleetReport report;
  report.shards = shard_count();
  report.replication = std::max(1, config_.replication.replication);
  report.policy = RoutingPolicyName(config_.policy);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    report.routing = routing_;
    report.routing.hot_promotions = tracker_.promotions();
    report.routing.hot_demotions = tracker_.demotions();
    report.routing.tracked_operands = tracker_.tracked_keys();
    report.delivered_completed = delivered_completed_;
    report.delivered_rejected = delivered_rejected_;
    report.delivered_timed_out = delivered_timed_out_;
    report.delivered_failed = delivered_failed_;
  }
  report.shard_reports.reserve(shards_.size());
  for (const auto& shard : shards_) {
    report.shard_reports.push_back(shard->Report());
  }
  report.totals = FleetReport::Sum(report.shard_reports);
  return report;
}

}  // namespace oocgemm::fleet
