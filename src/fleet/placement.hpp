// Content-stable placement keys for B operands.
//
// The serving layer's OperandFingerprint (serve/batching.hpp) is pointer
// identity — correct for forming a batch inside one process, useless for
// placement: a restarted client re-loads the same matrix at a different
// address.  The fleet instead keys the ring on a digest of the matrix's
// *content*: shape, nnz, and a bounded sample of the structure arrays.
// Two processes loading the same matrix therefore route to the same shard,
// which is what makes PanelCache affinity survive restarts.
//
// The digest samples a fixed number of positions instead of hashing every
// entry: placement runs on the submit path, and a full pass over a
// 100M-nnz operand would dominate submission cost.  Shape + nnz + sampled
// structure is plenty to separate distinct operands in practice; a
// collision merely costs locality, never correctness.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace oocgemm::fleet {

/// Digest of a matrix's identity for ring placement.  Deterministic across
/// processes and runs; depends only on matrix content.
std::uint64_t OperandPlacementKey(const sparse::Csr& m);

}  // namespace oocgemm::fleet
