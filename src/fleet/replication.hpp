// Hot-operand replication policy.
//
// The ring gives every B operand one home shard — ideal for cache locality,
// terrible for a skewed workload where one operand dominates: its home
// shard becomes the fleet's bottleneck while the others idle.  The tracker
// keeps a per-operand EWMA of submission rate over *logical ticks* (one
// tick per routed job — wall clock would make placement timing-dependent
// and untestable).  When an operand's EWMA crosses `hot_threshold`, it is
// promoted: jobs on it spread round-robin over the first R ring successors
// instead of just the owner, trading one extra shard's worth of B-panel
// uploads for R-way service bandwidth.  A demotion margin (hysteresis)
// keeps operands from flapping across the threshold, since each flap
// re-cools a replica's PanelCache.
//
// The tracker is not thread-safe; FleetRouter serializes access under its
// routing mutex.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace oocgemm::fleet {

struct ReplicationConfig {
  /// Shards a hot operand is served from (1 disables replication).
  int replication = 1;
  /// Per-tick EWMA decay; closer to 1 = longer memory.
  double ewma_decay = 0.95;
  /// EWMA value at which an operand is promoted to its replica set.
  double hot_threshold = 3.0;
  /// Demoted only once the EWMA falls below hot_threshold * this margin.
  double demote_margin = 0.5;
};

class HotOperandTracker {
 public:
  explicit HotOperandTracker(ReplicationConfig config = {})
      : config_(config) {}

  /// Advances the logical clock one tick, credits `key` with a hit, and
  /// returns the number of shards jobs on this key should spread over
  /// right now: 1 while cold, config.replication once hot.
  int RecordAndFanout(std::uint64_t key);

  /// Round-robin cursor over the key's replica set: 0, 1, ..., fanout-1,
  /// wrapping.  Callers mod it by the actual replica-set size.
  int NextReplicaCursor(std::uint64_t key);

  double EwmaOf(std::uint64_t key) const;
  bool IsHot(std::uint64_t key) const;
  std::int64_t promotions() const { return promotions_; }
  std::int64_t demotions() const { return demotions_; }
  std::int64_t tracked_keys() const {
    return static_cast<std::int64_t>(entries_.size());
  }

 private:
  struct Entry {
    double ewma = 0.0;
    std::uint64_t last_tick = 0;
    bool hot = false;
    int rr_cursor = 0;
  };

  ReplicationConfig config_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::int64_t promotions_ = 0;
  std::int64_t demotions_ = 0;
};

}  // namespace oocgemm::fleet
