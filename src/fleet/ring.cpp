#include "fleet/ring.hpp"

#include <algorithm>

namespace oocgemm::fleet {

std::uint64_t ConsistentHashRing::MixHash(std::uint64_t x) {
  // SplitMix64 finalizer (Steele et al.): a fixed bijective mix, so point
  // placement depends only on the integer inputs.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

ConsistentHashRing::ConsistentHashRing(int num_shards, int vnodes_per_shard)
    : vnodes_(std::max(1, vnodes_per_shard)) {
  for (int s = 0; s < num_shards; ++s) AddShard(s);
}

void ConsistentHashRing::AddShard(int shard) {
  if (shard < 0 || Contains(shard)) return;
  points_.reserve(points_.size() + static_cast<std::size_t>(vnodes_));
  for (int v = 0; v < vnodes_; ++v) {
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(shard) << 32) |
        static_cast<std::uint64_t>(v);
    points_.push_back(Point{MixHash(seed), shard});
  }
  std::sort(points_.begin(), points_.end());
}

void ConsistentHashRing::RemoveShard(int shard) {
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const Point& p) {
                                 return p.shard == shard;
                               }),
                points_.end());
}

bool ConsistentHashRing::Contains(int shard) const {
  return std::any_of(points_.begin(), points_.end(),
                     [shard](const Point& p) { return p.shard == shard; });
}

int ConsistentHashRing::shard_count() const {
  std::vector<int> shards;
  for (const Point& p : points_) shards.push_back(p.shard);
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return static_cast<int>(shards.size());
}

int ConsistentHashRing::Owner(std::uint64_t key) const {
  if (points_.empty()) return -1;
  const std::uint64_t h = MixHash(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->shard;
}

std::vector<int> ConsistentHashRing::Successors(std::uint64_t key,
                                                int count) const {
  std::vector<int> out;
  if (points_.empty() || count <= 0) return out;
  const std::uint64_t h = MixHash(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  for (std::size_t walked = 0;
       walked < points_.size() && out.size() < static_cast<std::size_t>(count);
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->shard) == out.end()) {
      out.push_back(it->shard);
    }
  }
  return out;
}

}  // namespace oocgemm::fleet
