// Consistent-hash ring with virtual nodes: the fleet's placement function.
//
// Each shard owns `vnodes_per_shard` points on a 64-bit ring; a key is
// owned by the shard of the first point clockwise from the key's hash.
// Virtual nodes smooth the per-shard arc length, so keys spread nearly
// uniformly (chi-square-tested in test_fleet_ring.cpp), and removing a
// shard only remaps the keys that shard owned (~K/N of them) — the two
// properties that make the ring the right placement function for operand
// affinity: repeat jobs on the same B land on the same shard's PanelCache,
// and a shard loss does not reshuffle the whole fleet's cached operands.
//
// Point hashes are derived purely from (shard index, vnode index) through a
// fixed integer mix, never from pointers or process state, so placement is
// deterministic across process restarts.
#pragma once

#include <cstdint>
#include <vector>

namespace oocgemm::fleet {

class ConsistentHashRing {
 public:
  static constexpr int kDefaultVnodesPerShard = 64;

  /// A ring with shards 0..num_shards-1 already added.
  explicit ConsistentHashRing(int num_shards = 0,
                              int vnodes_per_shard = kDefaultVnodesPerShard);

  /// Idempotent; shard indices are small non-negative ints.
  void AddShard(int shard);
  /// Removes the shard's points; keys it owned move to their successors,
  /// everyone else's placement is untouched.
  void RemoveShard(int shard);
  bool Contains(int shard) const;

  bool empty() const { return points_.empty(); }
  int shard_count() const;
  int vnodes_per_shard() const { return vnodes_; }

  /// The shard owning `key`: the first ring point clockwise from
  /// MixHash(key).  -1 on an empty ring.
  int Owner(std::uint64_t key) const;

  /// Up to `count` *distinct* shards in ring order starting at the owner —
  /// the replica set of a hot operand and the failover order after a shard
  /// loss.  Fewer than `count` entries when the ring has fewer shards.
  std::vector<int> Successors(std::uint64_t key, int count) const;

  /// SplitMix64 finalizer: the ring's point hash and key hash.
  static std::uint64_t MixHash(std::uint64_t x);

 private:
  struct Point {
    std::uint64_t hash;
    int shard;
    bool operator<(const Point& o) const {
      return hash != o.hash ? hash < o.hash : shard < o.shard;
    }
  };

  std::vector<Point> points_;  // sorted by hash
  int vnodes_;
};

}  // namespace oocgemm::fleet
