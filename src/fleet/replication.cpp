#include "fleet/replication.hpp"

#include <cmath>

namespace oocgemm::fleet {

int HotOperandTracker::RecordAndFanout(std::uint64_t key) {
  ++tick_;
  Entry& e = entries_[key];
  // Decay for the ticks that elapsed since this key was last seen, then
  // credit the hit.  pow keeps sparse keys cheap: one update per arrival
  // instead of one per global tick.
  const std::uint64_t elapsed = tick_ - e.last_tick;
  e.ewma = e.ewma * std::pow(config_.ewma_decay,
                             static_cast<double>(elapsed)) +
           1.0;
  e.last_tick = tick_;

  if (!e.hot && e.ewma >= config_.hot_threshold) {
    e.hot = true;
    ++promotions_;
  } else if (e.hot &&
             e.ewma < config_.hot_threshold * config_.demote_margin) {
    e.hot = false;
    ++demotions_;
  }
  return e.hot ? (config_.replication > 1 ? config_.replication : 1) : 1;
}

int HotOperandTracker::NextReplicaCursor(std::uint64_t key) {
  Entry& e = entries_[key];
  return e.rr_cursor++;
}

double HotOperandTracker::EwmaOf(std::uint64_t key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0.0;
  // Present-value view: decay to the current tick.
  return it->second.ewma *
         std::pow(config_.ewma_decay,
                  static_cast<double>(tick_ - it->second.last_tick));
}

bool HotOperandTracker::IsHot(std::uint64_t key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.hot;
}

}  // namespace oocgemm::fleet
