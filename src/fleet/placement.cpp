#include "fleet/placement.hpp"

#include <cstddef>

#include "fleet/ring.hpp"

namespace oocgemm::fleet {
namespace {

// How many positions of each structure array contribute to the digest.
constexpr std::size_t kStructureSamples = 32;

std::uint64_t Combine(std::uint64_t h, std::uint64_t v) {
  // boost::hash_combine-style fold through the ring's SplitMix64 finalizer.
  return ConsistentHashRing::MixHash(h ^ (v + 0x9E3779B97F4A7C15ull +
                                          (h << 6) + (h >> 2)));
}

template <typename Vec>
std::uint64_t SampleArray(std::uint64_t h, const Vec& arr) {
  const std::size_t n = arr.size();
  if (n == 0) return Combine(h, 0);
  const std::size_t stride =
      n <= kStructureSamples ? 1 : n / kStructureSamples;
  for (std::size_t i = 0; i < n; i += stride) {
    h = Combine(h, static_cast<std::uint64_t>(arr[i]));
  }
  // The last entry always participates (row_offsets.back() is the nnz —
  // and trailing structure differences should not be sampled away).
  h = Combine(h, static_cast<std::uint64_t>(arr[n - 1]));
  return h;
}

}  // namespace

std::uint64_t OperandPlacementKey(const sparse::Csr& m) {
  std::uint64_t h = 0x006f6f6367656d6dull;  // "oocgemm" salt
  h = Combine(h, static_cast<std::uint64_t>(m.rows()));
  h = Combine(h, static_cast<std::uint64_t>(m.cols()));
  h = Combine(h, static_cast<std::uint64_t>(m.nnz()));
  h = SampleArray(h, m.row_offsets());
  h = SampleArray(h, m.col_ids());
  return h;
}

}  // namespace oocgemm::fleet
