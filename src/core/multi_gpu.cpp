#include "core/multi_gpu.hpp"

#include <algorithm>

#include "core/cpu_runner.hpp"
#include "core/gpu_runner.hpp"
#include "core/problem.hpp"
#include "partition/chunk.hpp"

namespace oocgemm::core {

StatusOr<MultiGpuResult> MultiGpuHybrid(
    const std::vector<vgpu::Device*>& devices, const sparse::Csr& a,
    const sparse::Csr& b, const ExecutorOptions& options, ThreadPool& pool) {
  if (devices.empty()) {
    return Status::InvalidArgument("MultiGpuHybrid needs at least one device");
  }

  // Devices still in the deal; a device that faults mid-run is pruned and
  // the attempt re-dealt across the survivors (failover, not retry: the
  // OOM attempt budget is not consumed).
  std::vector<vgpu::Device*> live = devices;
  std::vector<int> live_ids(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    live_ids[i] = static_cast<int>(i);
  }
  std::vector<int> failed_devices;

  // Retry loop mirrors the single-device executors: pool overflow re-plans
  // with a doubled safety factor.
  ExecutorOptions attempt_options = options;
  constexpr int kMaxAttempts = 4;
  for (int attempt = 0;;) {
    std::int64_t min_capacity = live[0]->capacity();
    for (vgpu::Device* d : live) {
      min_capacity = std::min(min_capacity, d->capacity());
    }
    auto prep_or = PrepareProblem(a, b, min_capacity, attempt_options, pool);
    if (!prep_or.ok()) return prep_or.status();
    const PreparedProblem& prep = prep_or.value();

    // Generalized Algorithm 4 ratio: S' = D * r/(1-r) for single-GPU ratio r.
    const int num_devices = static_cast<int>(live.size());
    const double r = std::clamp(attempt_options.gpu_ratio, 0.0, 1.0);
    double ratio_d = 1.0;
    if (r < 1.0) {
      const double s = r / (1.0 - r);
      const double ds = static_cast<double>(num_devices) * s;
      ratio_d = ds / (ds + 1.0);
    }

    std::vector<int> order = attempt_options.reorder_chunks
                                 ? partition::OrderByFlopsDecreasing(prep.chunks)
                                 : [&] {
                                     std::vector<int> natural(
                                         prep.chunks.size());
                                     for (std::size_t i = 0; i < natural.size();
                                          ++i) {
                                       natural[i] = static_cast<int>(i);
                                     }
                                     return natural;
                                   }();
    const int num_gpu =
        partition::CountGpuChunks(prep.chunks, order, ratio_d);

    // Deal the flop-sorted GPU prefix round-robin: every device gets a
    // comparable mix of heavy and light chunks.
    std::vector<std::vector<int>> per_device(
        static_cast<std::size_t>(num_devices));
    for (int i = 0; i < num_gpu; ++i) {
      per_device[static_cast<std::size_t>(i % num_devices)].push_back(
          order[static_cast<std::size_t>(i)]);
    }
    std::vector<int> cpu_order(order.begin() + num_gpu, order.end());

    MultiGpuResult result;
    std::vector<ChunkPayload> payloads;
    bool oom = false;
    bool pruned = false;
    Status oom_status = Status::Ok();

    for (int d = 0; d < num_devices && !oom; ++d) {
      live[static_cast<std::size_t>(d)]->ResetTimeline();
      vgpu::HostContext host;
      auto run = RunGpuChunks(*live[static_cast<std::size_t>(d)], host,
                              prep, per_device[static_cast<std::size_t>(d)],
                              attempt_options);
      if (!run.ok()) {
        // Device fault (not a planning problem): prune it and re-deal this
        // attempt across the survivors.  RunGpuChunks already dropped every
        // payload of the faulted run, so no partial chunk leaks through.
        if (!live[static_cast<std::size_t>(d)]->health().ok() &&
            num_devices > 1) {
          failed_devices.push_back(live_ids[static_cast<std::size_t>(d)]);
          live.erase(live.begin() + d);
          live_ids.erase(live_ids.begin() + d);
          pruned = true;
          break;
        }
        if (run.status().code() == StatusCode::kOutOfMemory &&
            attempt + 1 < kMaxAttempts) {
          oom = true;
          oom_status = run.status();
          break;
        }
        return run.status();
      }
      result.stats.gpu_seconds.push_back(run->makespan);
      result.stats.combined.nnz_out += run->nnz;
      result.stats.combined.num_gpu_chunks += run->chunks_run;
      result.stats.combined.b_panel_uploads += run->b_panel_uploads;
      result.stats.combined.b_panel_hits += run->b_panel_hits;

      RunStats per;
      per.flops = run->flops;
      per.nnz_out = run->nnz;
      per.num_chunks = run->chunks_run;
      per.num_gpu_chunks = run->chunks_run;
      per.b_panel_uploads = run->b_panel_uploads;
      per.b_panel_hits = run->b_panel_hits;
      FillStatsFromTrace(live[static_cast<std::size_t>(d)]->trace(), per);
      per.total_seconds = std::max(per.total_seconds, run->makespan);
      per.gpu_seconds = run->makespan;
      result.stats.per_device.push_back(std::move(per));

      for (auto& p : run->payloads) payloads.push_back(std::move(p));
    }
    if (pruned) continue;  // failover re-deal: the OOM budget is untouched
    if (oom) {
      ++attempt;
      attempt_options.plan.nnz_safety_factor *= 2.0;
      continue;
    }

    CpuRunOutput cpu = RunCpuChunks(prep, cpu_order, attempt_options, pool);
    result.stats.combined.nnz_out += cpu.nnz;
    result.stats.combined.num_cpu_chunks = cpu.chunks_run;
    result.stats.combined.cpu_seconds = cpu.busy_seconds;
    for (auto& p : cpu.payloads) payloads.push_back(std::move(p));

    double makespan = cpu.busy_seconds;
    for (double t : result.stats.gpu_seconds) makespan = std::max(makespan, t);
    result.stats.combined.total_seconds = makespan;
    result.stats.combined.gpu_seconds =
        result.stats.gpu_seconds.empty()
            ? 0.0
            : *std::max_element(result.stats.gpu_seconds.begin(),
                                result.stats.gpu_seconds.end());
    result.stats.combined.flops = prep.total_flops;
    result.stats.combined.num_chunks = prep.num_chunks();
    result.stats.combined.num_row_panels = prep.plan.num_row_panels;
    result.stats.combined.num_col_panels = prep.plan.num_col_panels;
    result.stats.combined.compression_ratio =
        result.stats.combined.nnz_out > 0
            ? static_cast<double>(prep.total_flops) /
                  static_cast<double>(result.stats.combined.nnz_out)
            : 0.0;

    result.stats.failed_devices = failed_devices;
    result.c = AssembleChunks(prep.row_bounds, prep.col_bounds,
                              std::move(payloads));
    return result;
  }
}

}  // namespace oocgemm::core
