// Result and statistics types shared by all executors.
#pragma once

#include <cstdint>
#include <string>

#include "sparse/csr.hpp"
#include "vgpu/trace.hpp"

namespace oocgemm::core {

struct RunStats {
  // Virtual makespan of the whole multiplication, including every transfer
  // of the output to host memory (the paper's GFLOPS denominator).
  double total_seconds = 0.0;

  std::int64_t flops = 0;
  std::int64_t nnz_out = 0;
  double compression_ratio = 0.0;

  // Device-side accounting (from the vgpu trace).
  double kernel_seconds = 0.0;     // busy time of the compute engine
  double h2d_seconds = 0.0;        // busy time of the H2D engine
  double d2h_seconds = 0.0;        // busy time of the D2H engine
  double alloc_seconds = 0.0;      // device-serializing (de)allocations
  double d2h_fraction = 0.0;       // covered D2H time / makespan (Fig. 4)
  double transfer_fraction = 0.0;  // covered (H2D u D2H) time / makespan
  double overlap_factor = 0.0;     // busy(kernel+h2d+d2h) / makespan
  std::int64_t bytes_h2d = 0;
  std::int64_t bytes_d2h = 0;
  std::int64_t device_peak_bytes = 0;
  // B-column-panel cache traffic: uploads are H2D transfers of B panels
  // (what operand-aware batching amortizes), hits are reuses of a resident
  // panel.  Zero for CPU-only runs.
  std::int64_t b_panel_uploads = 0;
  std::int64_t b_panel_hits = 0;

  // Hybrid accounting.
  double cpu_seconds = 0.0;        // CPU worker busy time (virtual)
  double gpu_seconds = 0.0;        // GPU worker makespan (virtual)
  int num_chunks = 0;
  int num_gpu_chunks = 0;
  int num_cpu_chunks = 0;
  int num_row_panels = 1;
  int num_col_panels = 1;

  double gflops() const {
    return total_seconds > 0.0
               ? static_cast<double>(flops) / total_seconds / 1e9
               : 0.0;
  }

  std::string DebugString() const;
};

struct RunResult {
  sparse::Csr c;
  RunStats stats;
};

/// Fills the trace-derived fields of `stats` from `trace` and sets
/// total_seconds to at least the trace span.
void FillStatsFromTrace(const vgpu::Trace& trace, RunStats& stats);

}  // namespace oocgemm::core
