// Reassembly of transferred output chunks into the final CSR matrix.
//
// Chunk C[i][j] holds the rows of row panel i restricted to the columns of
// column panel j (panel-local ids).  Because the Row-Column formulation
// makes chunk values final (Section III-A: "final values within a chunk of
// the output matrix C are independent"), assembly is pure concatenation:
// row r of C is the ordered concatenation of its pieces over j, with column
// ids rebased by each panel's first column.
#pragma once

#include <vector>

#include "partition/panels.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::core {

/// One chunk's payload as it arrived in host memory.
struct ChunkPayload {
  int row_panel = 0;
  int col_panel = 0;
  std::vector<sparse::offset_t> row_offsets;  // panel-local rows + 1
  std::vector<sparse::index_t> col_ids;       // panel-local column ids
  std::vector<sparse::value_t> values;
};

/// Assembles chunks (any order; exactly one per (i, j) pair) into the
/// final rows x cols matrix.  Aborts on missing or duplicate chunks.
sparse::Csr AssembleChunks(const partition::PanelBoundaries& row_bounds,
                           const partition::PanelBoundaries& col_bounds,
                           std::vector<ChunkPayload> chunks);

}  // namespace oocgemm::core
