// Batched out-of-core SpGEMM over a shared operand: C_i = A_i * B for a
// group of jobs that all multiply against the same B (the A^2 analytics
// pattern, where many tenants square or right-multiply one dataset).
//
// A naive serving loop pays B's column-panel uploads once per *job*.  This
// executor plans one common column split for the whole batch
// (partition::PlanSharedOperandPanels), builds one GpuWorkspace sized for
// the largest member, and walks the chunk grid column-panel-major across
// jobs:
//
//   for each column panel j of B:          // uploaded once, then resident
//     for each job i:                      //   in the panel cache
//       run chunks (*, j) of job i through the async pipeline
//
// so each B panel crosses the H2D engine once per *batch*.  Pool
// pre-allocation (a device-serializing Malloc) also happens once per batch
// instead of once per job — the setup amortization Liu & Vinter's framework
// and OpSparse both identify as the multi-invocation win.
//
// Cancellation is honoured at segment (job x column panel) boundaries: a
// cancelled job skips its remaining segments and reports kCancelled while
// the rest of the batch proceeds.  A pool overflow or upload failure fails
// the whole batch — the caller (the serve scheduler) falls back to running
// the members individually, where the per-job retry-with-replan policy
// applies.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/executor_options.hpp"
#include "core/run_stats.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

/// One member of a shared-operand batch.
struct BatchJobSpec {
  const sparse::Csr* a = nullptr;
  /// Optional per-job cooperative cancel, polled between segments only (a
  /// batched job's timeout granularity is one job x column-panel segment).
  const std::atomic<bool>* cancel = nullptr;
};

/// Per-member outcome; `run` is valid iff `status.ok()`.
struct BatchJobResult {
  Status status = Status::Ok();
  RunResult run;
};

struct BatchedRunResult {
  std::vector<BatchJobResult> jobs;  // parallel to the input specs
  /// Virtual seconds from batch start to the last member's final transfer.
  double batch_makespan = 0.0;
  int num_col_panels = 0;
  /// Shared-B panel traffic over the whole batch: `b_panel_uploads` counts
  /// H2D uploads (== num_col_panels when the schedule works), hits counts
  /// re-uses served from the resident cache.
  std::int64_t b_panel_uploads = 0;
  std::int64_t b_panel_hits = 0;
};

/// Runs the batch on the asynchronous out-of-core pipeline.  Resets the
/// device timeline; `batch_makespan` is the batch's total device occupancy.
/// Fails as a whole on any device-side error (see header comment); per-job
/// cancellation is reported in the member's status instead.
StatusOr<BatchedRunResult> BatchedOutOfCore(vgpu::Device& device,
                                            const std::vector<BatchJobSpec>& jobs,
                                            const sparse::Csr& b,
                                            const ExecutorOptions& options,
                                            ThreadPool& pool);

}  // namespace oocgemm::core
