#include "core/device_arbiter.hpp"

#include <string>

namespace oocgemm::core {

void DeviceArbiter::BindMetrics(int device_index) {
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"device", std::to_string(device_index)}};
  std::unique_lock<std::mutex> lock(mutex_);
  lease_metric_ = &reg.GetCounter("oocgemm_core_lease_acquires", labels,
                                  "Exclusive device leases granted");
  contention_metric_ =
      &reg.GetCounter("oocgemm_core_lease_contention", labels,
                      "TryAcquire attempts that found the device busy");
}

DeviceArbiter::Lease DeviceArbiter::Acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !leased_; });
  leased_ = true;
  ++leases_;
  if (lease_metric_ != nullptr) lease_metric_->Add(1);
  return Lease(this);
}

DeviceArbiter::Lease DeviceArbiter::TryAcquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (leased_) {
    ++contention_;
    if (contention_metric_ != nullptr) contention_metric_->Add(1);
    return Lease();
  }
  leased_ = true;
  ++leases_;
  if (lease_metric_ != nullptr) lease_metric_->Add(1);
  return Lease(this);
}

void DeviceArbiter::ReleaseLease() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    leased_ = false;
  }
  cv_.notify_one();
}

bool DeviceArbiter::busy() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return leased_;
}

bool DeviceArbiter::TryReserve(std::int64_t bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (reserved_ + bytes > device_.capacity()) {
    ++shortfalls_;
    return false;
  }
  reserved_ += bytes;
  return true;
}

void DeviceArbiter::Unreserve(std::int64_t bytes) {
  std::unique_lock<std::mutex> lock(mutex_);
  reserved_ -= bytes;
  if (reserved_ < 0) {
    ++underflows_;
    reserved_ = 0;
  }
}

std::int64_t DeviceArbiter::reserved_bytes() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return reserved_;
}

std::int64_t DeviceArbiter::AvailableEstimate() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return device_.capacity() - reserved_;
}

std::int64_t DeviceArbiter::lease_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return leases_;
}

std::int64_t DeviceArbiter::contention_count() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return contention_;
}

std::int64_t DeviceArbiter::reserve_shortfalls() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return shortfalls_;
}

std::int64_t DeviceArbiter::unreserve_underflows() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return underflows_;
}

}  // namespace oocgemm::core
