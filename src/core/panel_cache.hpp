// Device-resident cache of input panels.
//
// Algorithm 3's loop structure reuses panels across consecutive chunks (the
// row panel of A across the inner loop; with few column panels, the same
// column panel of B across many chunks).  Re-uploading panels per chunk
// would swamp the H2D engine, so the executors keep the current panels in a
// dedicated device area: two slots per matrix (double-buffered, since two
// chunks are in flight).  Replacement makes the uploading stream wait on
// the evicted slot's last reader — the event discipline CUDA would require,
// checked by the device's hazard detector.
#pragma once

#include <array>
#include <cstdint>

#include "common/status.hpp"
#include "kernels/device_csr.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

class PanelCache {
 public:
  /// Reserves 2 slots of `max_a_bytes` for row panels of A and 2 slots of
  /// `max_b_bytes` for column panels of B (one serializing Malloc).
  PanelCache(vgpu::Device& device, vgpu::HostContext& host,
             std::int64_t max_a_bytes, std::int64_t max_b_bytes);
  ~PanelCache();

  /// OK unless the backing Malloc was fault-injected away (genuine OOM
  /// still aborts — that is a planner bug).  Acquire re-reports it.
  const Status& init_status() const { return init_status_; }

  PanelCache(const PanelCache&) = delete;
  PanelCache& operator=(const PanelCache&) = delete;

  enum Kind { kA = 0, kB = 1 };

  /// Returns the device copy of panel `id`, uploading on `stream` if it is
  /// not cached.  The returned panel stays valid until evicted; callers
  /// must MarkUse() once the chunk's kernels are issued so eviction can
  /// wait for them.
  StatusOr<kernels::DeviceCsr> Acquire(vgpu::HostContext& host,
                                       vgpu::Stream& stream, Kind kind,
                                       int id, const sparse::Csr& host_panel,
                                       bool pinned);

  /// Records that work issued on `stream` up to now reads panel (kind, id).
  void MarkUse(vgpu::Stream& stream, Kind kind, int id);

  /// Forgets cached panels of `kind` without releasing the slots.  Panel ids
  /// are indices, not content hashes, so a caller that switches to a
  /// different matrix whose panels reuse the same indices — the batched
  /// executor moving to the next job's A — must invalidate first.  Pending
  /// readers stay protected: eviction ordering uses the slots' last-use
  /// events, which survive invalidation.
  void Invalidate(Kind kind);

  /// Number of uploads skipped thanks to caching (diagnostics).
  std::int64_t hits() const { return hits_[kA] + hits_[kB]; }
  std::int64_t misses() const { return misses_[kA] + misses_[kB]; }
  /// Per-matrix breakdown: misses(kB) counts actual B-panel uploads — the
  /// figure operand-aware batching drives down.
  std::int64_t hits(Kind kind) const { return hits_[kind]; }
  std::int64_t misses(Kind kind) const { return misses_[kind]; }

 private:
  struct Slot {
    int id = -1;
    vgpu::DevicePtr area;
    kernels::DeviceCsr panel;
    vgpu::Event last_use;   // latest reader's completion
  };

  vgpu::Device& device_;
  vgpu::HostContext* host_;
  vgpu::DevicePtr arena_;
  Status init_status_;
  std::array<std::array<Slot, 2>, 2> slots_;  // [kind][slot]
  std::array<std::int64_t, 2> hits_{0, 0};    // [kind]
  std::array<std::int64_t, 2> misses_{0, 0};  // [kind]
};

}  // namespace oocgemm::core
