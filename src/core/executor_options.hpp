// Configuration shared by the out-of-core executors.  Every paper design
// choice that the evaluation ablates is a switch here.
#pragma once

#include <atomic>

#include "kernels/device_spgemm.hpp"
#include "partition/panel_plan.hpp"

namespace oocgemm::core {

/// How the previous chunk's output payload is moved while the next chunk
/// computes (Section IV-B).
enum class TransferSchedule {
  /// The paper's design: the payload is split in two portions; the small
  /// analysis/symbolic info transfers of the next chunk are interleaved
  /// between them (Fig. 6).
  kScheduled,
  /// The rejected "simple idea": the whole payload is queued right after
  /// the chunk's numeric phase, so the next chunk's info transfers stall
  /// behind it on the single D2H engine (Fig. 5).
  kNaive,
};

struct ExecutorOptions {
  kernels::DeviceSpgemmOptions spgemm;
  partition::PlanOptions plan;

  /// Execute chunks in decreasing-flop order (Section IV-C).  Off = the
  /// row-major order of Algorithm 3.
  bool reorder_chunks = true;

  TransferSchedule transfer_schedule = TransferSchedule::kScheduled;

  /// Fraction of a chunk's rows in the first transferred portion (the
  /// paper found 33% leaves the remainder to hide the numeric phase).
  double split_fraction = 0.33;

  /// Host staging buffers are page-locked (full-bandwidth async copies).
  bool pinned_host = true;

  /// Hybrid executor: fraction of total flops assigned to the GPU.  The
  /// paper's rule is Ratio = S/(S+1) for the hardware's expected GPU/CPU
  /// speedup S — 65% on their V100/Xeon pair, and, as they note, "it might
  /// change if we use another GPU or CPU".  The virtual device's measured
  /// S is ~2.05 (Fig. 7 bench), giving 67%.
  double gpu_ratio = 0.67;

  /// Cooperative cancellation: when non-null, the executors poll this flag
  /// at chunk boundaries and between OOM-retry attempts, returning
  /// StatusCode::kCancelled once it is set.  The serving runtime's timeout
  /// watchdog sets it to reclaim a worker from an over-deadline job.
  const std::atomic<bool>* cancel = nullptr;

  /// Attempts the executor itself makes on pool overflow (each doubling
  /// nnz_safety_factor and re-planning).  A caller that owns retry policy —
  /// the serving scheduler, which adds backoff between attempts — sets 1.
  int max_oom_attempts = 4;
};

}  // namespace oocgemm::core
