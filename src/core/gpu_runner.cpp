#include "core/gpu_runner.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "core/panel_cache.hpp"
#include "obs/metrics.hpp"
#include "kernels/device_csr.hpp"
#include "kernels/device_spgemm.hpp"
#include "vgpu/memory_pool.hpp"
#include "vgpu/memory_source.hpp"

namespace oocgemm::core {

using kernels::ChunkPipeline;
using kernels::ChunkProduct;
using kernels::DeviceCsr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {

/// A chunk whose kernels are issued and whose payload is (being) moved.
struct PendingChunk {
  int slot = 0;
  int row_panel = 0;
  int col_panel = 0;
  ChunkProduct product;
  ChunkPayload payload;           // host destination buffers
  vgpu::Stream* stream = nullptr;
  std::int64_t rows_transferred = 0;  // payload rows already issued D2H
};

/// Issues the D2H payload transfer of rows [rows_from, rows_to) of the
/// pending chunk on its own stream (after its numeric phase by stream
/// order).  Column-id and value arrays move as separate copies, as they are
/// separate ranges of device memory.
void IssuePayloadRows(vgpu::Device& device, vgpu::HostContext& host,
                      PendingChunk& pending, index_t rows_from,
                      index_t rows_to, bool pinned, const char* what) {
  const ChunkProduct& p = pending.product;
  OOC_CHECK(0 <= rows_from && rows_from <= rows_to && rows_to <= p.rows);
  const offset_t e0 = p.row_offsets[static_cast<std::size_t>(rows_from)];
  const offset_t e1 = p.row_offsets[static_cast<std::size_t>(rows_to)];
  const std::int64_t entries = e1 - e0;
  if (entries <= 0) {
    pending.rows_transferred = rows_to;
    return;
  }
  const std::string tag = "chunk[" + std::to_string(pending.row_panel) + "," +
                          std::to_string(pending.col_panel) + "]." + what;
  device.MemcpyD2HAsync(
      host, *pending.stream, pending.payload.col_ids.data() + e0,
      p.d_col_ids.Slice(e0 * static_cast<std::int64_t>(sizeof(index_t)),
                        entries * static_cast<std::int64_t>(sizeof(index_t))),
      entries * static_cast<std::int64_t>(sizeof(index_t)), tag + ".col_ids",
      pinned);
  device.MemcpyD2HAsync(
      host, *pending.stream, pending.payload.values.data() + e0,
      p.d_values.Slice(e0 * static_cast<std::int64_t>(sizeof(value_t)),
                       entries * static_cast<std::int64_t>(sizeof(value_t))),
      entries * static_cast<std::int64_t>(sizeof(value_t)), tag + ".values",
      pinned);
  pending.rows_transferred = rows_to;
}

}  // namespace

GpuWorkspace::GpuWorkspace(vgpu::Device& device, vgpu::HostContext& host,
                           std::int64_t pool_bytes,
                           std::int64_t max_a_panel_bytes,
                           std::int64_t max_b_panel_bytes)
    : streams{device.CreateStream("pipe0"), device.CreateStream("pipe1")},
      cache(device, host, max_a_panel_bytes, max_b_panel_bytes) {
  for (int s = 0; s < kSlots; ++s) {
    pools[s] = std::make_unique<vgpu::MemoryPool>(device, host, pool_bytes,
                                                  "pool" + std::to_string(s));
    sources[s] = std::make_unique<vgpu::PoolMemorySource>(*pools[s]);
  }
}

Status GpuWorkspace::init_status() const {
  if (!cache.init_status().ok()) return cache.init_status();
  for (int s = 0; s < kSlots; ++s) {
    if (pools[s] != nullptr && !pools[s]->init_status().ok()) {
      return pools[s]->init_status();
    }
  }
  return Status::Ok();
}

StatusOr<GpuRunOutput> RunGpuChunks(vgpu::Device& device,
                                    vgpu::HostContext& host,
                                    const PreparedProblem& prep,
                                    const std::vector<int>& order,
                                    const ExecutorOptions& options,
                                    ChunkSink* sink, GpuWorkspace* workspace) {
  GpuRunOutput out;
  if (order.empty()) {
    out.makespan = host.now;
    return out;
  }

  const int nc = prep.plan.num_col_panels;
  constexpr int kSlots = GpuWorkspace::kSlots;

  OOC_RETURN_IF_ERROR(device.health());
  std::unique_ptr<GpuWorkspace> local;
  if (workspace == nullptr) {
    local = std::make_unique<GpuWorkspace>(device, host, prep.plan.pool_bytes,
                                           prep.plan.max_a_panel_bytes,
                                           prep.plan.max_b_panel_bytes);
    workspace = local.get();
  }
  OOC_RETURN_IF_ERROR(workspace->init_status());
  vgpu::Stream** streams = workspace->streams;
  std::unique_ptr<vgpu::PoolMemorySource>* sources = workspace->sources;
  PanelCache& cache = workspace->cache;
  kernels::AccumulatorScratch& scratch = workspace->scratch;
  const std::int64_t b_misses_before = cache.misses(PanelCache::kB);
  const std::int64_t b_hits_before = cache.hits(PanelCache::kB);
  // Pending chunks: the one whose payload is in flight (prev) and, per
  // slot, the one whose payload completed but is awaiting finalization.
  std::optional<PendingChunk> slot_pending[kSlots];
  std::optional<PendingChunk> prev;  // numeric done, payload not fully issued

  Status sink_status = Status::Ok();
  Status device_status = Status::Ok();
  auto finalize_slot = [&](int slot) {
    if (!slot_pending[slot]) return;
    PendingChunk& done = *slot_pending[slot];
    // All transfers of this chunk were issued on its stream; draining the
    // stream guarantees the payload landed (virtually and physically).
    device.StreamSynchronize(host, *done.stream);
    // Sticky-error checkpoint: if anything faulted since the last check,
    // this payload may be incomplete or corrupted — drop it rather than
    // ever assembling a wrong C.  The run fails at the loop's next check.
    const Status health = device.health();
    if (!health.ok()) {
      if (device_status.ok()) device_status = health;
      slot_pending[slot].reset();
      sources[slot]->Recycle();
      return;
    }
    out.nnz += done.product.nnz;
    if (sink != nullptr) {
      if (sink_status.ok()) sink_status = sink->Consume(std::move(done.payload));
    } else {
      out.payloads.push_back(std::move(done.payload));
    }
    slot_pending[slot].reset();
    sources[slot]->Recycle();
  };

  // Mid-pipeline abort: drain what was issued, then return the workspace to
  // a clean state — recycled pools and an invalidated panel cache — so a
  // caller-owned workspace does not carry leaked reservations or suspect
  // panels into its next run.
  auto fail = [&](const Status& status) -> Status {
    device.DeviceSynchronize(host);
    prev.reset();
    for (int s = 0; s < kSlots; ++s) {
      slot_pending[s].reset();
      sources[s]->Recycle();
    }
    cache.Invalidate(PanelCache::kA);
    cache.Invalidate(PanelCache::kB);
    return status;
  };

  const bool scheduled =
      options.transfer_schedule == TransferSchedule::kScheduled;

  for (std::size_t k = 0; k < order.size(); ++k) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return fail(Status::Cancelled("gpu runner cancelled at chunk " +
                                    std::to_string(k)));
    }
    const partition::ChunkDesc& desc =
        prep.chunks[static_cast<std::size_t>(order[k])];
    const int slot = static_cast<int>(k % kSlots);
    finalize_slot(slot);  // reuse of the slot's pool requires its drain
    if (!device_status.ok()) return fail(device_status);

    // Fetch this chunk's panels (H2D engine if not cached — runs
    // concurrently with the other slot's D2H payload).
    const std::string tag =
        "chunk[" + std::to_string(desc.row_panel) + "," +
        std::to_string(desc.col_panel) + "]";
    auto da = cache.Acquire(
        host, *streams[slot], PanelCache::kA, desc.row_panel,
        prep.a_panels[static_cast<std::size_t>(desc.row_panel)],
        options.pinned_host);
    if (!da.ok()) return fail(da.status());
    auto db = cache.Acquire(host, *streams[slot], PanelCache::kB,
                            desc.col_panel, prep.b_panel(desc.col_panel),
                            options.pinned_host);
    if (!db.ok()) return fail(db.status());

    ChunkPipeline pipeline(device, options.spgemm, scratch);

    // Stage 1 + Fig. 6 transfer #1 (this chunk's analysis info).
    if (Status st = pipeline.RunAnalysis(host, *streams[slot], da.value(),
                                         db.value(), *sources[slot], tag);
        !st.ok()) {
      return fail(st);
    }

    // Fig. 6 transfer #2: first portion of the previous chunk's payload,
    // overlapping this chunk's symbolic phase.
    if (prev && scheduled) {
      const index_t split_row = static_cast<index_t>(
          static_cast<double>(prev->product.rows) * options.split_fraction);
      IssuePayloadRows(device, host, *prev, 0, split_row, options.pinned_host,
                       "portion1");
    }

    // Stage 2 + Fig. 6 transfer #3 (this chunk's symbolic info).
    if (Status st = pipeline.RunSymbolic(host, *streams[slot]); !st.ok()) {
      return fail(st);
    }

    // Fig. 6 transfer #4: the remainder of the previous chunk's payload,
    // overlapping this chunk's numeric phase.
    if (prev) {
      IssuePayloadRows(device, host, *prev,
                       static_cast<index_t>(prev->rows_transferred),
                       prev->product.rows, options.pinned_host,
                       scheduled ? "portion2" : "payload");
      slot_pending[prev->slot] = std::move(*prev);
      prev.reset();
    }

    // Stage 3.
    pipeline.RunNumeric(host, *streams[slot]);
    cache.MarkUse(*streams[slot], PanelCache::kA, desc.row_panel);
    cache.MarkUse(*streams[slot], PanelCache::kB, desc.col_panel);

    PendingChunk cur;
    cur.slot = slot;
    cur.row_panel = desc.row_panel;
    cur.col_panel = desc.col_panel;
    cur.product = pipeline.TakeProduct();
    cur.stream = streams[slot];
    cur.payload.row_panel = desc.row_panel;
    cur.payload.col_panel = desc.col_panel;
    cur.payload.row_offsets = cur.product.row_offsets;
    cur.payload.col_ids.resize(static_cast<std::size_t>(cur.product.nnz));
    cur.payload.values.resize(static_cast<std::size_t>(cur.product.nnz));
    // product.flops is exact (from the device analysis phase): on
    // estimate-seeded plans this is the lazy correction of desc.flops.
    out.flops += cur.product.flops;
    if (prep.plan.estimated && cur.product.flops > 0) {
      static obs::LogBucketHistogram& chunk_err =
          obs::MetricsRegistry::Default().GetHistogram(
              "oocgemm_estimate_chunk_flops_rel_error", {},
              "Relative error |estimated - exact| / exact of per-chunk flop "
              "predictions on estimate-seeded plans");
      chunk_err.Record(
          std::abs(static_cast<double>(desc.flops - cur.product.flops)) /
          static_cast<double>(cur.product.flops));
    }

    if (scheduled) {
      prev = std::move(cur);
    } else {
      // The naive double-buffering schedule: queue the whole payload right
      // after the numeric phase (Fig. 5's problematic ordering — the next
      // chunk's info transfer will stall behind it).
      IssuePayloadRows(device, host, cur, 0, cur.product.rows,
                       options.pinned_host, "payload");
      slot_pending[cur.slot] = std::move(cur);
    }
    (void)nc;
  }

  // Drain: the last chunk's payload has nothing left to overlap with.
  if (prev) {
    IssuePayloadRows(device, host, *prev,
                     static_cast<index_t>(prev->rows_transferred),
                     prev->product.rows, options.pinned_host, "tail");
    slot_pending[prev->slot] = std::move(*prev);
    prev.reset();
  }
  for (int s = 0; s < kSlots; ++s) finalize_slot(s);
  if (!device_status.ok()) return fail(device_status);
  if (!sink_status.ok()) return fail(sink_status);

  device.DeviceSynchronize(host);
  if (Status health = device.health(); !health.ok()) return fail(health);
  out.makespan = host.now;
  out.chunks_run = static_cast<int>(order.size());
  out.b_panel_uploads = cache.misses(PanelCache::kB) - b_misses_before;
  out.b_panel_hits = cache.hits(PanelCache::kB) - b_hits_before;
  return out;
}

}  // namespace oocgemm::core
