#include "core/cpu_runner.hpp"

#include "kernels/cpu_spgemm.hpp"

namespace oocgemm::core {

CpuRunOutput RunCpuChunks(const PreparedProblem& prep,
                          const std::vector<int>& order,
                          const ExecutorOptions& options, ThreadPool& pool) {
  CpuRunOutput out;
  const kernels::CostModel& cm = options.spgemm.cost_model;
  kernels::CpuSpgemmOptions cpu_options;  // hash accumulator, as in the paper

  for (int id : order) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      out.cancelled = true;
      return out;
    }
    const partition::ChunkDesc& desc = prep.chunks[static_cast<std::size_t>(id)];
    const sparse::Csr& a_panel =
        prep.a_panels[static_cast<std::size_t>(desc.row_panel)];
    const sparse::Csr& b_panel = prep.b_panel(desc.col_panel);
    sparse::Csr c = kernels::CpuSpgemm(a_panel, b_panel, pool, cpu_options);

    const double cr = c.nnz() > 0 ? static_cast<double>(desc.flops) /
                                        static_cast<double>(c.nnz())
                                  : 1.0;
    out.busy_seconds += cm.CpuChunkSeconds(desc.flops, cr);
    out.flops += desc.flops;
    out.nnz += c.nnz();
    ++out.chunks_run;

    ChunkPayload payload;
    payload.row_panel = desc.row_panel;
    payload.col_panel = desc.col_panel;
    payload.row_offsets = c.row_offsets();
    payload.col_ids = c.col_ids();
    payload.values = c.values();
    out.payloads.push_back(std::move(payload));
  }
  return out;
}

}  // namespace oocgemm::core
