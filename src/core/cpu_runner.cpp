#include "core/cpu_runner.hpp"

#include <cmath>

#include "kernels/cpu_spgemm.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::core {

namespace {

/// Exact multiply flops of one chunk: O(nnz(a_panel)) walk over A's column
/// ids against the B panel's row lengths.  Only paid on estimate-seeded
/// plans, where ChunkDesc::flops is a prediction — the exact count both
/// feeds the cost model and corrects the run stats lazily.
std::int64_t ExactChunkFlops(const sparse::Csr& a_panel,
                             const sparse::Csr& b_panel) {
  std::int64_t products = 0;
  for (sparse::index_t k : a_panel.col_ids()) {
    products += b_panel.row_nnz(k);
  }
  return 2 * products;
}

}  // namespace

CpuRunOutput RunCpuChunks(const PreparedProblem& prep,
                          const std::vector<int>& order,
                          const ExecutorOptions& options, ThreadPool& pool) {
  CpuRunOutput out;
  const kernels::CostModel& cm = options.spgemm.cost_model;
  kernels::CpuSpgemmOptions cpu_options;
  cpu_options.accumulator = prep.plan.accumulator;  // route as planned
  cpu_options.routing = options.spgemm.routing;
  auto& chunk_err = obs::MetricsRegistry::Default().GetHistogram(
      "oocgemm_estimate_chunk_flops_rel_error", {},
      "Relative error |estimated - exact| / exact of per-chunk flop "
      "predictions on estimate-seeded plans");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& cpu_flops_counter = reg.GetCounter(
      "oocgemm_core_cpu_flops", {}, "Flops executed on the CPU path");
  obs::DoubleCounter& cpu_seconds_counter = reg.GetDoubleCounter(
      "oocgemm_core_cpu_seconds", {},
      "Modeled busy seconds of the CPU path");

  for (int id : order) {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      out.cancelled = true;
      return out;
    }
    const partition::ChunkDesc& desc = prep.chunks[static_cast<std::size_t>(id)];
    const sparse::Csr& a_panel =
        prep.a_panels[static_cast<std::size_t>(desc.row_panel)];
    const sparse::Csr& b_panel = prep.b_panel(desc.col_panel);
    sparse::Csr c = kernels::CpuSpgemm(a_panel, b_panel, pool, cpu_options);

    std::int64_t chunk_flops = desc.flops;
    if (prep.plan.estimated) {
      chunk_flops = ExactChunkFlops(a_panel, b_panel);
      if (chunk_flops > 0) {
        chunk_err.Record(
            std::abs(static_cast<double>(desc.flops - chunk_flops)) /
            static_cast<double>(chunk_flops));
      }
    }
    const double cr = c.nnz() > 0 ? static_cast<double>(chunk_flops) /
                                        static_cast<double>(c.nnz())
                                  : 1.0;
    const double chunk_seconds = cm.CpuChunkSeconds(chunk_flops, cr);
    out.busy_seconds += chunk_seconds;
    out.flops += chunk_flops;
    out.nnz += c.nnz();
    ++out.chunks_run;
    // The (flops, seconds) sample stream the calibrator fits the CPU
    // effective rate from — the denominator of the live hybrid split.
    cpu_flops_counter.Add(chunk_flops);
    cpu_seconds_counter.Add(chunk_seconds);

    ChunkPayload payload;
    payload.row_panel = desc.row_panel;
    payload.col_panel = desc.col_panel;
    payload.row_offsets = c.row_offsets();
    payload.col_ids = c.col_ids();
    payload.values = c.values();
    out.payloads.push_back(std::move(payload));
  }
  return out;
}

}  // namespace oocgemm::core
