// Multi-GPU extension of the hybrid executor (the paper's future-work
// direction: "our ultimate goal of continuing to scale SpGEMM computations
// to arbitrarily large matrices").
//
// Algorithm 4 generalizes directly: with D identical GPUs of per-device
// speedup S over the CPU, the GPUs collectively take
// Ratio_D = D*S / (D*S + 1) of the flops; the flop-sorted GPU prefix is
// dealt round-robin across devices (each device then holds a similar mix
// of heavy and light chunks), and each device runs the same asynchronous
// pipeline on its own streams, pools and panel cache.  The CPU processes
// the remaining chunks, and the makespan is the slowest worker.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "core/executor_options.hpp"
#include "core/run_stats.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

struct MultiGpuStats {
  RunStats combined;
  /// Virtual makespan of each GPU worker.
  std::vector<double> gpu_seconds;
  /// Per-device accounting, parallel to the *surviving* devices (the
  /// `devices` argument minus `failed_devices`): each entry carries that
  /// device's chunk count, output nnz, panel traffic and trace-derived
  /// engine times.  The round-robin deal guarantees num_gpu_chunks across
  /// entries differs by at most one.
  std::vector<RunStats> per_device;
  /// Indices (into the `devices` argument) of devices that faulted and
  /// were pruned mid-run; their chunks re-ran on the survivors.
  std::vector<int> failed_devices;
};

struct MultiGpuResult {
  sparse::Csr c;
  MultiGpuStats stats;
};

/// C = A * B across `devices` plus the CPU.  All devices should have the
/// same capacity (the plan is built for the smallest).  With
/// options.gpu_ratio = r, the GPUs collectively receive
/// D*r' / (D*r' + (1-r')) of the flops where r' is the single-GPU ratio —
/// i.e. the generalized Algorithm 4 rule.
///
/// Partial failure: when a device faults mid-run (its sticky health status
/// turns non-OK) and at least one other device survives, the faulted
/// device is pruned, its index recorded in stats.failed_devices, and the
/// whole attempt re-deals across the survivors — no partial chunk from the
/// faulted device is ever assembled.  Only when the *last* device faults
/// does the call fail, with the device's typed status.
StatusOr<MultiGpuResult> MultiGpuHybrid(
    const std::vector<vgpu::Device*>& devices, const sparse::Csr& a,
    const sparse::Csr& b, const ExecutorOptions& options, ThreadPool& pool);

}  // namespace oocgemm::core
