// The CPU half of the hybrid executor: runs a set of chunks through the
// Nagasaka-style multicore SpGEMM, producing host payloads directly (no
// transfers), with virtual time from the calibrated CPU cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/assembler.hpp"
#include "core/executor_options.hpp"
#include "core/problem.hpp"

namespace oocgemm::core {

struct CpuRunOutput {
  std::vector<ChunkPayload> payloads;
  /// Total virtual busy time of the CPU worker (chunks run sequentially;
  /// intra-chunk parallelism is inside the cost model's rate).
  double busy_seconds = 0.0;
  int chunks_run = 0;
  std::int64_t flops = 0;
  std::int64_t nnz = 0;
  /// Set when ExecutorOptions::cancel fired mid-run: the payload list is
  /// incomplete and the caller must not assemble a result from it.
  bool cancelled = false;
};

/// Runs chunks `order[...]` of `prep` on the CPU.
CpuRunOutput RunCpuChunks(const PreparedProblem& prep,
                          const std::vector<int>& order,
                          const ExecutorOptions& options, ThreadPool& pool);

}  // namespace oocgemm::core
