#include "core/spgemm.hpp"

#include "core/problem.hpp"

namespace oocgemm::core {

StatusOr<RunResult> Multiply(vgpu::Device& device, const sparse::Csr& a,
                             const sparse::Csr& b,
                             const MultiplyOptions& options, ThreadPool& pool) {
  switch (options.mode) {
    case ExecutionMode::kGpuOutOfCore:
      return AsyncOutOfCore(device, a, b, options, pool);
    case ExecutionMode::kGpuSynchronous:
      return SyncOutOfCore(device, a, b, options, pool);
    case ExecutionMode::kHybrid:
      return Hybrid(device, a, b, options, pool);
    case ExecutionMode::kCpuOnly:
      return CpuMulticore(a, b, options, pool);
    case ExecutionMode::kAuto:
      break;
  }
  // kAuto: probe the plan.  A single-chunk problem runs in-core on the GPU
  // (the hybrid split would only idle one side); anything larger engages
  // both processors.
  auto prep = PrepareProblem(a, b, device.capacity(), options, pool);
  if (!prep.ok()) return prep.status();
  if (prep->num_chunks() <= 1) {
    return AsyncOutOfCore(device, a, b, options, pool);
  }
  return Hybrid(device, a, b, options, pool);
}

StatusOr<RunResult> Multiply(vgpu::Device& device, const sparse::Csr& a,
                             const sparse::Csr& b) {
  return Multiply(device, a, b, MultiplyOptions{}, GlobalThreadPool());
}

}  // namespace oocgemm::core
