// A fleet of virtual GPUs behind one arbitration facade.
//
// The serving scheduler of PRs 1-2 funnelled every device-side job through
// a single vgpu::Device and DeviceArbiter; the pool generalizes that to D
// devices, each with its own exclusive-lease arbiter and reservation
// ledger, plus the aggregate accounting admission needs ("how much device
// memory is promised across the whole node?").
//
// Placement policy: candidates are the devices whose *capacity* can hold
// the caller's working set (a job must never land on a device it cannot
// fit — the per-device ledger would refuse the reservation and the job
// would degrade or fail for no reason), ordered by least reserved bytes
// first so new work spreads away from devices already promised to big
// jobs.  TryAcquire walks that order and takes the first free device;
// Acquire blocks until some candidate frees up.  TryAcquireFree grabs
// every currently-free candidate (up to a cap) for jobs that can span
// devices via core::MultiGpuHybrid.
//
// Devices are tagged with their pool index (vgpu::Device::set_id) so their
// traces stay attributable after export.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/device_arbiter.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

class DevicePool {
 public:
  /// The pool does not own the devices; it tags each with its index.
  explicit DevicePool(std::vector<vgpu::Device*> devices);

  DevicePool(const DevicePool&) = delete;
  DevicePool& operator=(const DevicePool&) = delete;

  int size() const { return static_cast<int>(devices_.size()); }
  vgpu::Device& device(int index) const { return *devices_[static_cast<std::size_t>(index)]; }
  DeviceArbiter& arbiter(int index) const {
    return *arbiters_[static_cast<std::size_t>(index)];
  }

  /// An exclusive lease on one pool device, plus which device it is.
  /// Releasing (or destroying) the slot wakes blocked Acquire callers.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept { *this = std::move(other); }
    Slot& operator=(Slot&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        index_ = other.index_;
        lease_ = std::move(other.lease_);
        other.pool_ = nullptr;
        other.index_ = -1;
      }
      return *this;
    }
    ~Slot() { Release(); }

    bool held() const { return lease_.held(); }
    int index() const { return index_; }
    vgpu::Device& device() const { return pool_->device(index_); }
    DeviceArbiter& arbiter() const { return pool_->arbiter(index_); }

    void Release() {
      if (lease_.held()) {
        lease_.Release();
        pool_->NotifyReleased();
      }
      pool_ = nullptr;
      index_ = -1;
    }

   private:
    friend class DevicePool;
    Slot(DevicePool* pool, int index, DeviceArbiter::Lease lease)
        : pool_(pool), index_(index), lease_(std::move(lease)) {}

    DevicePool* pool_ = nullptr;
    int index_ = -1;
    DeviceArbiter::Lease lease_;
  };

  /// Non-blocking: the least-reserved free device whose capacity is at
  /// least `min_capacity_bytes`; empty when every candidate is leased (or
  /// none is large enough).
  Slot TryAcquire(std::int64_t min_capacity_bytes = 0);

  /// Blocking variant.  Returns an empty slot *immediately* when no pool
  /// device is large enough — waiting could never succeed.
  Slot Acquire(std::int64_t min_capacity_bytes = 0);

  /// Grabs up to `max_slots` currently-free candidates, least-reserved
  /// first, without blocking (possibly none).  For multi-chunk jobs that
  /// can span devices: opportunistic, never steals from queued neighbours
  /// by waiting.
  std::vector<Slot> TryAcquireFree(int max_slots,
                                   std::int64_t min_capacity_bytes = 0);

  /// True when some *healthy* device's capacity is at least `bytes`.
  bool AnyDeviceFits(std::int64_t bytes) const;

  // --- health ----------------------------------------------------------------

  enum class DeviceHealth { kHealthy = 0, kUnhealthy };

  DeviceHealth health(int index) const;

  /// Takes a device out of placement — e.g. after its sticky status turned
  /// into a device-lost error.  In-flight leases keep draining (the holder
  /// notices failure via vgpu::Device::health()); no new lease is granted
  /// until Revive.  Wakes blocked Acquire callers so they re-plan onto
  /// surviving devices instead of waiting for a corpse.
  void MarkUnhealthy(int index);

  /// Returns a drained device to service, clearing its sticky fault state
  /// (vgpu::Device::Revive) — the maintenance path after a repair.
  void Revive(int index);

  int healthy_count() const;

  // --- calibration hints -----------------------------------------------------

  /// Fitted effective flop rate of a device (flops/s), pushed by the
  /// cost-model calibrator in apply mode.  Candidate ordering breaks
  /// least-reserved ties on the hint (faster device first), so placement
  /// steers away from degraded devices.  0 (the default) = no information;
  /// all-zero hints reproduce the historical by-index tie-break exactly.
  void set_rate_hint(int index, double flops_per_second);
  double rate_hint(int index) const;

  // --- aggregate accounting (sums over the per-device arbiters) -----------

  std::int64_t total_capacity() const;
  std::int64_t max_device_capacity() const;
  std::int64_t min_device_capacity() const;
  std::int64_t reserved_bytes() const;
  std::int64_t lease_count() const;
  std::int64_t contention_count() const;
  std::int64_t reserve_shortfalls() const;
  std::int64_t unreserve_underflows() const;

 private:
  friend class Slot;
  void NotifyReleased() { released_cv_.notify_all(); }

  /// Candidate indices (capacity >= min bytes) ordered by ascending
  /// reserved bytes, ties by index.
  std::vector<int> CandidatesByLeastReserved(
      std::int64_t min_capacity_bytes) const;

  std::vector<vgpu::Device*> devices_;
  std::vector<std::unique_ptr<DeviceArbiter>> arbiters_;

  mutable std::mutex health_mutex_;
  std::vector<DeviceHealth> health_;
  std::vector<double> rate_hints_;  // guarded by health_mutex_

  // Wakes Acquire when any Slot releases.  Waits use a short timeout as a
  // backstop so a lease released through the raw arbiter (tests do this)
  // cannot strand a blocked Acquire.
  std::mutex released_mutex_;
  std::condition_variable released_cv_;
};

}  // namespace oocgemm::core
