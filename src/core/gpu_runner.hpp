// Pipelined execution of a sequence of chunks on the virtual GPU — the
// asynchronous engine of Section IV:
//
//  * two streams and two memory pools (double buffering);
//  * no dynamic device allocation: each chunk's panels, scratch and output
//    live in its slot's pre-allocated pool (Section IV-B);
//  * divided & scheduled transfers: while chunk i runs, chunk i-1's output
//    payload moves D2H in two portions interleaved with chunk i's small
//    info transfers — info(i), portion1(i-1), symbolic-info(i),
//    portion2(i-1) — exactly the Fig. 6 engine order;
//  * the caller chooses the chunk order (decreasing flops per Section IV-C,
//    or Algorithm 3's row-major order).
//
// The same runner also serves as the GPU half of the hybrid executor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "core/assembler.hpp"
#include "core/chunk_sink.hpp"
#include "core/executor_options.hpp"
#include "core/problem.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

struct GpuRunOutput {
  std::vector<ChunkPayload> payloads;
  /// Virtual time at which the last chunk (including its transfer) finished.
  double makespan = 0.0;
  int chunks_run = 0;
  std::int64_t flops = 0;
  std::int64_t nnz = 0;
};

/// Runs chunks `order[0..count)` of `prep` on `device`.  `host` carries the
/// issuing thread's virtual clock (starts at host.now).  Fails on pool OOM
/// (triggering the executors' re-planning retry) or panel upload OOM.
///
/// When `sink` is given, each chunk payload is handed to it as soon as its
/// transfers drain (completion order) and `GpuRunOutput::payloads` stays
/// empty — the streaming mode used for outputs beyond host memory.
StatusOr<GpuRunOutput> RunGpuChunks(vgpu::Device& device,
                                    vgpu::HostContext& host,
                                    const PreparedProblem& prep,
                                    const std::vector<int>& order,
                                    const ExecutorOptions& options,
                                    ChunkSink* sink = nullptr);

}  // namespace oocgemm::core
