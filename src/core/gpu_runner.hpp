// Pipelined execution of a sequence of chunks on the virtual GPU — the
// asynchronous engine of Section IV:
//
//  * two streams and two memory pools (double buffering);
//  * no dynamic device allocation: each chunk's panels, scratch and output
//    live in its slot's pre-allocated pool (Section IV-B);
//  * divided & scheduled transfers: while chunk i runs, chunk i-1's output
//    payload moves D2H in two portions interleaved with chunk i's small
//    info transfers — info(i), portion1(i-1), symbolic-info(i),
//    portion2(i-1) — exactly the Fig. 6 engine order;
//  * the caller chooses the chunk order (decreasing flops per Section IV-C,
//    or Algorithm 3's row-major order).
//
// The same runner also serves as the GPU half of the hybrid executor.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "core/assembler.hpp"
#include "core/chunk_sink.hpp"
#include "core/executor_options.hpp"
#include "core/panel_cache.hpp"
#include "core/problem.hpp"
#include "kernels/spgemm_phases.hpp"
#include "vgpu/device.hpp"
#include "vgpu/memory_pool.hpp"
#include "vgpu/memory_source.hpp"

namespace oocgemm::core {

/// Device-side working state of the asynchronous chunk pipeline: the two
/// streams, the two pre-allocated chunk pools (Section IV-B) and the input
/// panel cache.  A run normally builds one internally, but a caller that
/// executes several runs against the same operand — the batched executor —
/// builds one sized for the whole batch and passes it to every run, so
/// pool pre-allocation happens once and cached panels (notably the shared
/// B column panels) survive from job to job.
struct GpuWorkspace {
  static constexpr int kSlots = 2;  // "we create two streams and two buffers"

  /// Pre-allocates the pools and the panel cache (serializing Mallocs on
  /// the device timeline, like any cudaMalloc).
  GpuWorkspace(vgpu::Device& device, vgpu::HostContext& host,
               std::int64_t pool_bytes, std::int64_t max_a_panel_bytes,
               std::int64_t max_b_panel_bytes);

  GpuWorkspace(const GpuWorkspace&) = delete;
  GpuWorkspace& operator=(const GpuWorkspace&) = delete;

  /// OK unless a fault-injected Malloc emptied one of the pools or the
  /// panel cache at construction; RunGpuChunks checks before issuing work.
  Status init_status() const;

  vgpu::Stream* streams[kSlots];
  std::unique_ptr<vgpu::MemoryPool> pools[kSlots];
  std::unique_ptr<vgpu::PoolMemorySource> sources[kSlots];
  PanelCache cache;
  kernels::AccumulatorScratch scratch;
};

struct GpuRunOutput {
  std::vector<ChunkPayload> payloads;
  /// Virtual time at which the last chunk (including its transfer) finished.
  double makespan = 0.0;
  int chunks_run = 0;
  std::int64_t flops = 0;
  std::int64_t nnz = 0;
  /// B-column-panel traffic of this run (uploads = cache misses); deltas
  /// over the workspace's counters, so they attribute correctly when a
  /// shared workspace serves several runs.
  std::int64_t b_panel_uploads = 0;
  std::int64_t b_panel_hits = 0;
};

/// Runs chunks `order[0..count)` of `prep` on `device`.  `host` carries the
/// issuing thread's virtual clock (starts at host.now).  Fails on pool OOM
/// (triggering the executors' re-planning retry) or panel upload OOM.
///
/// When `sink` is given, each chunk payload is handed to it as soon as its
/// transfers drain (completion order) and `GpuRunOutput::payloads` stays
/// empty — the streaming mode used for outputs beyond host memory.
///
/// When `workspace` is given, the run issues work through the caller's
/// streams/pools/cache instead of building its own; the workspace's pools
/// must be at least `prep.plan.pool_bytes` and its cache slots at least the
/// plan's panel maxima.  The pipeline drains before returning either way.
StatusOr<GpuRunOutput> RunGpuChunks(vgpu::Device& device,
                                    vgpu::HostContext& host,
                                    const PreparedProblem& prep,
                                    const std::vector<int>& order,
                                    const ExecutorOptions& options,
                                    ChunkSink* sink = nullptr,
                                    GpuWorkspace* workspace = nullptr);

}  // namespace oocgemm::core
