// The four end-to-end SpGEMM paths the paper evaluates:
//
//  * SyncOutOfCore  — "synchronous, partitioned spECK": Algorithm 3 in
//    row-major order, dynamic device allocation inside each chunk, and a
//    host-blocking transfer of each chunk before the next one starts.
//    The baseline of Fig. 4 and Fig. 8.
//  * AsyncOutOfCore — the paper's out-of-core GPU implementation:
//    pre-allocated pools, double buffering, divided & scheduled transfers,
//    chunks in decreasing-flop order.  The "GPU" series of Fig. 7/8.
//  * CpuMulticore   — the Nagasaka-style multicore baseline ("CPU" series
//    of Fig. 7); runs entirely in host memory.
//  * Hybrid         — Algorithm 4: flop-sorted chunks split between the
//    asynchronous GPU pipeline and the CPU at `gpu_ratio` (65%).
//
// All paths return the assembled result matrix plus virtual-time statistics
// so benchmarks can print the paper's tables and figures.
#pragma once

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/chunk_sink.hpp"
#include "core/executor_options.hpp"
#include "core/run_stats.hpp"
#include "partition/panels.hpp"
#include "sparse/csr.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

/// C = A * B out-of-core, synchronous baseline.  Resets the device timeline.
StatusOr<RunResult> SyncOutOfCore(vgpu::Device& device, const sparse::Csr& a,
                                  const sparse::Csr& b,
                                  const ExecutorOptions& options,
                                  ThreadPool& pool);

/// C = A * B out-of-core, the paper's asynchronous design.
StatusOr<RunResult> AsyncOutOfCore(vgpu::Device& device, const sparse::Csr& a,
                                   const sparse::Csr& b,
                                   const ExecutorOptions& options,
                                   ThreadPool& pool);

/// C = A * B on the multicore CPU (no device involved; the virtual time
/// comes from the calibrated CPU cost model).
StatusOr<RunResult> CpuMulticore(const sparse::Csr& a, const sparse::Csr& b,
                                 const ExecutorOptions& options,
                                 ThreadPool& pool);

/// C = A * B split across GPU and CPU per Algorithm 4.
StatusOr<RunResult> Hybrid(vgpu::Device& device, const sparse::Csr& a,
                           const sparse::Csr& b,
                           const ExecutorOptions& options, ThreadPool& pool);

/// Result of a streamed run: the matrix never materializes in host memory —
/// chunks went to the caller's ChunkSink in completion order.
struct StreamedRunResult {
  RunStats stats;
  partition::PanelBoundaries row_bounds;  // for DiskChunkSink::Finalize /
  partition::PanelBoundaries col_bounds;  // later assembly
};

/// The asynchronous executor with chunk streaming: use with DiskChunkSink
/// for outputs larger than host memory.  Note: if a pool overflow forces a
/// re-plan, chunks of the abandoned attempt may already have reached the
/// sink (DiskChunkSink simply overwrites / orphans them; AssembleFromDisk
/// reads only the final manifest's grid).
StatusOr<StreamedRunResult> AsyncOutOfCoreStreamed(
    vgpu::Device& device, const sparse::Csr& a, const sparse::Csr& b,
    const ExecutorOptions& options, ThreadPool& pool, ChunkSink& sink);

}  // namespace oocgemm::core
