// Shared preparation for all executors: panel planning, partitioning and
// chunk analysis (lines 1-4 of Algorithm 3 plus GetFlops of Algorithm 4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/executor_options.hpp"
#include "partition/chunk.hpp"
#include "partition/panel_plan.hpp"
#include "partition/panels.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::core {

struct PreparedProblem {
  partition::PanelPlan plan;
  partition::PanelBoundaries row_bounds;
  partition::PanelBoundaries col_bounds;
  std::vector<sparse::Csr> a_panels;  // host-resident row panels of A
  /// Host-resident column panels of B.  Shared, not owned: every problem of
  /// a shared-operand batch points at the same partition of B, so the host
  /// copy — like the device panel cache — is built once per batch.
  std::shared_ptr<const std::vector<sparse::Csr>> b_panels;
  std::vector<partition::ChunkDesc> chunks;  // row-major chunk grid
  std::int64_t total_flops = 0;

  int num_chunks() const { return static_cast<int>(chunks.size()); }
  const sparse::Csr& b_panel(int p) const {
    return (*b_panels)[static_cast<std::size_t>(p)];
  }
};

/// Plans panels for `device_capacity`, partitions both matrices (column
/// panels via the optimized parallel partitioner) and analyzes all chunks.
StatusOr<PreparedProblem> PrepareProblem(const sparse::Csr& a,
                                         const sparse::Csr& b,
                                         std::int64_t device_capacity,
                                         const ExecutorOptions& options,
                                         ThreadPool& pool);

/// Batch preparation for jobs C_i = A_i * B sharing the operand B: plans
/// every member under one common column split (PlanSharedOperandPanels),
/// partitions B exactly once and shares the panels across all returned
/// problems.  Returns one PreparedProblem per input A, in order.
StatusOr<std::vector<PreparedProblem>> PrepareSharedOperandProblems(
    const std::vector<const sparse::Csr*>& as, const sparse::Csr& b,
    std::int64_t device_capacity, const ExecutorOptions& options,
    ThreadPool& pool);

}  // namespace oocgemm::core
