// Shared preparation for all executors: panel planning, partitioning and
// chunk analysis (lines 1-4 of Algorithm 3 plus GetFlops of Algorithm 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/executor_options.hpp"
#include "partition/chunk.hpp"
#include "partition/panel_plan.hpp"
#include "partition/panels.hpp"
#include "sparse/csr.hpp"

namespace oocgemm::core {

struct PreparedProblem {
  partition::PanelPlan plan;
  partition::PanelBoundaries row_bounds;
  partition::PanelBoundaries col_bounds;
  std::vector<sparse::Csr> a_panels;  // host-resident row panels of A
  std::vector<sparse::Csr> b_panels;  // host-resident column panels of B
  std::vector<partition::ChunkDesc> chunks;  // row-major chunk grid
  std::int64_t total_flops = 0;

  int num_chunks() const { return static_cast<int>(chunks.size()); }
};

/// Plans panels for `device_capacity`, partitions both matrices (column
/// panels via the optimized parallel partitioner) and analyzes all chunks.
StatusOr<PreparedProblem> PrepareProblem(const sparse::Csr& a,
                                         const sparse::Csr& b,
                                         std::int64_t device_capacity,
                                         const ExecutorOptions& options,
                                         ThreadPool& pool);

}  // namespace oocgemm::core
