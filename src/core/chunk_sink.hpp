// Destinations for output chunks as they arrive from the executors.
//
// The paper assembles C in host memory (their host has 128 GB).  For
// outputs beyond host RAM the same chunk stream can spill to disk instead:
// each chunk is written as one file plus a manifest, and the final matrix
// can either be assembled later or consumed chunk-wise without ever
// materializing.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/assembler.hpp"
#include "partition/panels.hpp"

namespace oocgemm::core {

/// Receives finished chunks in completion order.
class ChunkSink {
 public:
  virtual ~ChunkSink() = default;
  virtual Status Consume(ChunkPayload&& payload) = 0;
};

/// Accumulates chunks in host memory (the paper's behaviour).
class MemoryChunkSink final : public ChunkSink {
 public:
  Status Consume(ChunkPayload&& payload) override {
    payloads_.push_back(std::move(payload));
    return Status::Ok();
  }

  std::vector<ChunkPayload>& payloads() { return payloads_; }

  /// Assembles everything received into the final matrix.
  sparse::Csr Assemble(const partition::PanelBoundaries& row_bounds,
                       const partition::PanelBoundaries& col_bounds) {
    return AssembleChunks(row_bounds, col_bounds, std::move(payloads_));
  }

 private:
  std::vector<ChunkPayload> payloads_;
};

/// Spills each chunk to `<dir>/chunk_<i>_<j>.bin` as it completes, so host
/// memory holds at most the in-flight chunks.  A text manifest records the
/// chunk grid.  Use Load()/AssembleFromDisk() to read back.
class DiskChunkSink final : public ChunkSink {
 public:
  explicit DiskChunkSink(std::string directory);

  Status Consume(ChunkPayload&& payload) override;

  /// Writes the manifest; call once after the run completes.
  Status Finalize(const partition::PanelBoundaries& row_bounds,
                  const partition::PanelBoundaries& col_bounds);

  int chunks_written() const { return chunks_written_; }
  std::int64_t bytes_written() const { return bytes_written_; }

  /// Reads one spilled chunk back.
  static StatusOr<ChunkPayload> Load(const std::string& directory,
                                     int row_panel, int col_panel);

  /// Reads the manifest and every chunk, and assembles the full matrix.
  static StatusOr<sparse::Csr> AssembleFromDisk(const std::string& directory);

 private:
  std::string directory_;
  int chunks_written_ = 0;
  std::int64_t bytes_written_ = 0;
};

}  // namespace oocgemm::core
