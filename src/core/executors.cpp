#include "core/executors.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "core/cpu_runner.hpp"
#include "core/gpu_runner.hpp"
#include "core/panel_cache.hpp"
#include "core/problem.hpp"
#include "kernels/cpu_spgemm.hpp"
#include "kernels/device_csr.hpp"
#include "kernels/device_spgemm.hpp"
#include "sparse/analysis.hpp"

namespace oocgemm::core {

using sparse::Csr;
using sparse::index_t;
using sparse::value_t;

namespace {

std::vector<int> NaturalOrder(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<int> ChunkOrder(const PreparedProblem& prep, bool reorder) {
  return reorder ? partition::OrderByFlopsDecreasing(prep.chunks)
                 : NaturalOrder(prep.num_chunks());
}

bool CancelRequested(const ExecutorOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

obs::DoubleCounter& PhaseSeconds(const std::string& phase) {
  return obs::MetricsRegistry::Default().GetDoubleCounter(
      "oocgemm_core_phase_seconds", {{"phase", phase}},
      "Time attributed to each SpGEMM phase (virtual device seconds for "
      "analysis/symbolic/numeric, host wall seconds for assemble)");
}

/// Run-level accounting shared by every executor entry point.
void RecordRun(const char* executor, const RunStats& stats) {
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("oocgemm_core_runs", {{"executor", executor}},
                 "Completed executor runs")
      .Add(1);
  reg.GetHistogram("oocgemm_core_run_seconds", {{"executor", executor}},
                   "Virtual end-to-end seconds per completed run")
      .Record(stats.total_seconds);
}

/// `exact_flops` is the runners' per-chunk exact tally (from the device
/// analysis phase / the CPU runner's nnz(A)-walk), or -1 when no tally is
/// available.  On estimate-seeded plans it lazily corrects the provisional
/// planned flops and feeds the estimate-vs-actual error histograms; exact
/// plans ignore it (planned == exact already).
void FinishStats(const PreparedProblem& prep, const vgpu::Trace* trace,
                 std::int64_t exact_flops, RunStats& stats) {
  stats.num_chunks = prep.num_chunks();
  stats.num_row_panels = prep.plan.num_row_panels;
  stats.num_col_panels = prep.plan.num_col_panels;
  stats.flops = prep.total_flops;
  if (prep.plan.estimated) {
    auto& reg = obs::MetricsRegistry::Default();
    if (exact_flops >= 0) {
      if (exact_flops > 0) {
        reg.GetHistogram("oocgemm_estimate_rel_error",
                         {{"quantity", "flops"}},
                         "Relative error |estimated - actual| / actual of "
                         "whole-run estimator predictions")
            .Record(std::abs(static_cast<double>(prep.total_flops -
                                                 exact_flops)) /
                    static_cast<double>(exact_flops));
      }
      stats.flops = exact_flops;
    }
    if (stats.nnz_out > 0) {
      std::int64_t planned_nnz = 0;
      for (const auto& c : prep.chunks) planned_nnz += c.estimated_nnz;
      reg.GetHistogram("oocgemm_estimate_rel_error", {{"quantity", "nnz"}},
                       "Relative error |estimated - actual| / actual of "
                       "whole-run estimator predictions")
          .Record(std::abs(static_cast<double>(planned_nnz - stats.nnz_out)) /
                  static_cast<double>(stats.nnz_out));
    }
  }
  if (trace) {
    FillStatsFromTrace(*trace, stats);
    PhaseSeconds("analysis").Add(trace->BusyTimeLabeled(".analysis"));
    PhaseSeconds("symbolic").Add(trace->BusyTimeLabeled(".symbolic"));
    PhaseSeconds("numeric").Add(trace->BusyTimeLabeled(".numeric"));
  }
  auto& chunk_flops = obs::MetricsRegistry::Default().GetHistogram(
      "oocgemm_core_chunk_flops", {}, "Flops per planned chunk");
  for (const auto& c : prep.chunks) {
    chunk_flops.Record(static_cast<double>(c.flops));
  }
  stats.compression_ratio =
      stats.nnz_out > 0 ? static_cast<double>(stats.flops) /
                              static_cast<double>(stats.nnz_out)
                        : 0.0;
}

/// AssembleChunks with the host wall time booked to the assemble phase.
sparse::Csr TimedAssemble(const partition::PanelBoundaries& row_bounds,
                          const partition::PanelBoundaries& col_bounds,
                          std::vector<ChunkPayload> payloads) {
  WallTimer timer;
  sparse::Csr c =
      AssembleChunks(row_bounds, col_bounds, std::move(payloads));
  PhaseSeconds("assemble").Add(timer.Seconds());
  return c;
}

}  // namespace

namespace {

StatusOr<RunResult> SyncOutOfCoreImpl(vgpu::Device& device, const Csr& a,
                                      const Csr& b,
                                      const ExecutorOptions& options,
                                      ThreadPool& pool) {
  // The baseline uses one working set at a time: no double buffering.
  ExecutorOptions sync_options = options;
  sync_options.plan.buffers = 1;
  auto prep_or =
      PrepareProblem(a, b, device.capacity(), sync_options, pool);
  if (!prep_or.ok()) return prep_or.status();
  const PreparedProblem& prep = prep_or.value();

  device.ResetTimeline();
  vgpu::HostContext host;
  vgpu::Stream* stream = device.CreateStream("sync");
  vgpu::MallocMemorySource source(device);  // spECK's dynamic allocations
  PanelCache cache(device, host, prep.plan.max_a_panel_bytes,
                   prep.plan.max_b_panel_bytes);
  kernels::DeviceSpgemm engine(device, options.spgemm);

  std::vector<ChunkPayload> payloads;
  std::int64_t nnz_total = 0;
  std::int64_t flops_total = 0;

  // Algorithm 3: row-major double loop, transfer after each chunk.
  for (const partition::ChunkDesc& desc : prep.chunks) {
    if (CancelRequested(options)) {
      return Status::Cancelled("SyncOutOfCore cancelled between chunks");
    }
    const std::string tag = "chunk[" + std::to_string(desc.row_panel) + "," +
                            std::to_string(desc.col_panel) + "]";
    auto da = cache.Acquire(
        host, *stream, PanelCache::kA, desc.row_panel,
        prep.a_panels[static_cast<std::size_t>(desc.row_panel)],
        options.pinned_host);
    if (!da.ok()) return da.status();
    auto db = cache.Acquire(host, *stream, PanelCache::kB, desc.col_panel,
                            prep.b_panel(desc.col_panel), options.pinned_host);
    if (!db.ok()) return db.status();

    auto chunk =
        engine.Multiply(host, *stream, da.value(), db.value(), source, tag);
    if (!chunk.ok()) return chunk.status();
    cache.MarkUse(*stream, PanelCache::kA, desc.row_panel);
    cache.MarkUse(*stream, PanelCache::kB, desc.col_panel);

    ChunkPayload payload;
    payload.row_panel = desc.row_panel;
    payload.col_panel = desc.col_panel;
    payload.row_offsets = chunk->row_offsets;
    payload.col_ids.resize(static_cast<std::size_t>(chunk->nnz));
    payload.values.resize(static_cast<std::size_t>(chunk->nnz));
    device.MemcpyD2HAsync(host, *stream, payload.col_ids.data(),
                          chunk->d_col_ids,
                          chunk->nnz * static_cast<std::int64_t>(sizeof(index_t)),
                          tag + ".payload.col_ids", options.pinned_host);
    device.MemcpyD2HAsync(host, *stream, payload.values.data(),
                          chunk->d_values,
                          chunk->nnz * static_cast<std::int64_t>(sizeof(value_t)),
                          tag + ".payload.values", options.pinned_host);
    // "Data movement was done synchronously."
    device.StreamSynchronize(host, *stream);
    // Sticky-error checkpoint: never assemble a payload whose numeric
    // kernels or transfers were faulted away.
    if (Status health = device.health(); !health.ok()) {
      kernels::ReleaseChunk(host, source, chunk.value());
      return health;
    }

    nnz_total += chunk->nnz;
    flops_total += chunk->flops;
    payloads.push_back(std::move(payload));
    kernels::ReleaseChunk(host, source, chunk.value());
  }
  device.DeviceSynchronize(host);

  RunResult result;
  result.stats.total_seconds = host.now;
  result.stats.nnz_out = nnz_total;
  result.stats.num_gpu_chunks = prep.num_chunks();
  result.stats.gpu_seconds = host.now;
  result.stats.device_peak_bytes = device.peak_bytes();
  result.stats.b_panel_uploads = cache.misses(PanelCache::kB);
  result.stats.b_panel_hits = cache.hits(PanelCache::kB);
  FinishStats(prep, &device.trace(), flops_total, result.stats);
  result.c = TimedAssemble(prep.row_bounds, prep.col_bounds,
                           std::move(payloads));
  return result;
}

StatusOr<RunResult> AsyncOutOfCoreImpl(vgpu::Device& device, const Csr& a,
                                       const Csr& b,
                                       const ExecutorOptions& options,
                                       ThreadPool& pool) {
  auto prep_or = PrepareProblem(a, b, device.capacity(), options, pool);
  if (!prep_or.ok()) return prep_or.status();
  const PreparedProblem& prep = prep_or.value();

  device.ResetTimeline();
  vgpu::HostContext host;
  std::vector<int> order = ChunkOrder(prep, options.reorder_chunks);
  auto run = RunGpuChunks(device, host, prep, order, options);
  if (!run.ok()) return run.status();

  RunResult result;
  result.stats.total_seconds = run->makespan;
  result.stats.nnz_out = run->nnz;
  result.stats.num_gpu_chunks = run->chunks_run;
  result.stats.gpu_seconds = run->makespan;
  result.stats.device_peak_bytes = device.peak_bytes();
  result.stats.b_panel_uploads = run->b_panel_uploads;
  result.stats.b_panel_hits = run->b_panel_hits;
  FinishStats(prep, &device.trace(), run->flops, result.stats);
  result.c = TimedAssemble(prep.row_bounds, prep.col_bounds,
                           std::move(run->payloads));
  return result;
}

}  // namespace

StatusOr<RunResult> CpuMulticore(const Csr& a, const Csr& b,
                                 const ExecutorOptions& options,
                                 ThreadPool& pool) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch");
  }
  const kernels::CostModel& cm = options.spgemm.cost_model;
  kernels::CpuSpgemmOptions cpu_options;
  cpu_options.routing = options.spgemm.routing;
  Csr c = kernels::CpuSpgemm(a, b, pool, cpu_options);

  RunResult result;
  result.stats.flops = sparse::TotalFlops(a, b);
  result.stats.nnz_out = c.nnz();
  result.stats.compression_ratio =
      c.nnz() > 0 ? static_cast<double>(result.stats.flops) /
                        static_cast<double>(c.nnz())
                  : 0.0;
  result.stats.total_seconds = cm.CpuChunkSeconds(
      result.stats.flops, result.stats.compression_ratio);
  // Same (flops, seconds) stream RunCpuChunks records: the calibrator's
  // CPU-rate fit must see CPU-only traffic too.
  obs::MetricsRegistry::Default()
      .GetCounter("oocgemm_core_cpu_flops", {},
                  "Flops executed on the CPU path")
      .Add(result.stats.flops);
  obs::MetricsRegistry::Default()
      .GetDoubleCounter("oocgemm_core_cpu_seconds", {},
                        "Modeled busy seconds of the CPU path")
      .Add(result.stats.total_seconds);
  result.stats.cpu_seconds = result.stats.total_seconds;
  result.stats.num_chunks = 1;
  result.stats.num_cpu_chunks = 1;
  result.c = std::move(c);
  RecordRun("cpu", result.stats);
  return result;
}

namespace {

StatusOr<RunResult> HybridImpl(vgpu::Device& device, const Csr& a,
                               const Csr& b, const ExecutorOptions& options,
                               ThreadPool& pool) {
  auto prep_or = PrepareProblem(a, b, device.capacity(), options, pool);
  if (!prep_or.ok()) return prep_or.status();
  const PreparedProblem& prep = prep_or.value();

  device.ResetTimeline();

  // Algorithm 4: order chunks (by flops when reordering is on), then give
  // the leading chunks holding `gpu_ratio` of the flops to the GPU.
  std::vector<int> order = ChunkOrder(prep, options.reorder_chunks);
  const int num_gpu =
      partition::CountGpuChunks(prep.chunks, order, options.gpu_ratio);
  std::vector<int> gpu_order(order.begin(), order.begin() + num_gpu);
  std::vector<int> cpu_order(order.begin() + num_gpu, order.end());

  // "We launch two parallel threads: one thread for GPU and one for CPU."
  // Their virtual clocks both start at zero; the makespan is the later one.
  vgpu::HostContext gpu_host;
  auto gpu_run = RunGpuChunks(device, gpu_host, prep, gpu_order, options);
  if (!gpu_run.ok()) return gpu_run.status();

  CpuRunOutput cpu_run = RunCpuChunks(prep, cpu_order, options, pool);
  if (cpu_run.cancelled) {
    return Status::Cancelled("hybrid CPU half cancelled between chunks");
  }

  RunResult result;
  result.stats.gpu_seconds = gpu_run->makespan;
  result.stats.cpu_seconds = cpu_run.busy_seconds;
  result.stats.total_seconds = std::max(gpu_run->makespan, cpu_run.busy_seconds);
  result.stats.nnz_out = gpu_run->nnz + cpu_run.nnz;
  result.stats.num_gpu_chunks = gpu_run->chunks_run;
  result.stats.num_cpu_chunks = cpu_run.chunks_run;
  result.stats.device_peak_bytes = device.peak_bytes();
  result.stats.b_panel_uploads = gpu_run->b_panel_uploads;
  result.stats.b_panel_hits = gpu_run->b_panel_hits;
  FinishStats(prep, &device.trace(), gpu_run->flops + cpu_run.flops,
              result.stats);
  // The trace only covers the GPU side; the hybrid makespan may be CPU-bound.
  result.stats.total_seconds =
      std::max(result.stats.total_seconds,
               std::max(gpu_run->makespan, cpu_run.busy_seconds));

  std::vector<ChunkPayload> payloads = std::move(gpu_run->payloads);
  for (auto& p : cpu_run.payloads) payloads.push_back(std::move(p));
  result.c = TimedAssemble(prep.row_bounds, prep.col_bounds,
                           std::move(payloads));
  return result;
}

StatusOr<StreamedRunResult> AsyncOutOfCoreStreamedImpl(
    vgpu::Device& device, const Csr& a, const Csr& b,
    const ExecutorOptions& options, ThreadPool& pool, ChunkSink& sink) {
  auto prep_or = PrepareProblem(a, b, device.capacity(), options, pool);
  if (!prep_or.ok()) return prep_or.status();
  const PreparedProblem& prep = prep_or.value();

  device.ResetTimeline();
  vgpu::HostContext host;
  std::vector<int> order = ChunkOrder(prep, options.reorder_chunks);
  auto run = RunGpuChunks(device, host, prep, order, options, &sink);
  if (!run.ok()) return run.status();

  StreamedRunResult result;
  result.stats.total_seconds = run->makespan;
  result.stats.nnz_out = run->nnz;
  result.stats.num_gpu_chunks = run->chunks_run;
  result.stats.gpu_seconds = run->makespan;
  result.stats.device_peak_bytes = device.peak_bytes();
  result.stats.b_panel_uploads = run->b_panel_uploads;
  result.stats.b_panel_hits = run->b_panel_hits;
  FinishStats(prep, &device.trace(), run->flops, result.stats);
  result.row_bounds = prep.row_bounds;
  result.col_bounds = prep.col_bounds;
  return result;
}

/// Pool sizes come from a sampled estimate; a chunk can overflow them at
/// run time.  Retry with a doubled safety factor (re-planning shrinks the
/// chunks), as a production out-of-core runner must.
template <typename Result, typename Fn>
StatusOr<Result> RunWithOomRetry(Fn&& attempt, ExecutorOptions options) {
  const int max_attempts = std::max(1, options.max_oom_attempts);
  for (int i = 0;; ++i) {
    if (CancelRequested(options)) {
      return Status::Cancelled("executor cancelled before attempt " +
                               std::to_string(i + 1));
    }
    StatusOr<Result> r = attempt(options);
    if (r.ok() || r.status().code() != StatusCode::kOutOfMemory ||
        i + 1 == max_attempts) {
      return r;
    }
    options.plan.nnz_safety_factor *= 2.0;
  }
}

}  // namespace

StatusOr<RunResult> SyncOutOfCore(vgpu::Device& device, const Csr& a,
                                  const Csr& b, const ExecutorOptions& options,
                                  ThreadPool& pool) {
  auto r = RunWithOomRetry<RunResult>(
      [&](const ExecutorOptions& o) {
        return SyncOutOfCoreImpl(device, a, b, o, pool);
      },
      options);
  if (r.ok()) RecordRun("sync", r->stats);
  return r;
}

StatusOr<RunResult> AsyncOutOfCore(vgpu::Device& device, const Csr& a,
                                   const Csr& b,
                                   const ExecutorOptions& options,
                                   ThreadPool& pool) {
  auto r = RunWithOomRetry<RunResult>(
      [&](const ExecutorOptions& o) {
        return AsyncOutOfCoreImpl(device, a, b, o, pool);
      },
      options);
  if (r.ok()) RecordRun("async", r->stats);
  return r;
}

StatusOr<RunResult> Hybrid(vgpu::Device& device, const Csr& a, const Csr& b,
                           const ExecutorOptions& options, ThreadPool& pool) {
  auto r = RunWithOomRetry<RunResult>(
      [&](const ExecutorOptions& o) { return HybridImpl(device, a, b, o, pool); },
      options);
  if (r.ok()) RecordRun("hybrid", r->stats);
  return r;
}

StatusOr<StreamedRunResult> AsyncOutOfCoreStreamed(
    vgpu::Device& device, const Csr& a, const Csr& b,
    const ExecutorOptions& options, ThreadPool& pool, ChunkSink& sink) {
  auto r = RunWithOomRetry<StreamedRunResult>(
      [&](const ExecutorOptions& o) {
        return AsyncOutOfCoreStreamedImpl(device, a, b, o, pool, sink);
      },
      options);
  if (r.ok()) RecordRun("async-streamed", r->stats);
  return r;
}

}  // namespace oocgemm::core
