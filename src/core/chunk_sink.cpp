#include "core/chunk_sink.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace oocgemm::core {

namespace {

using FilePtr = std::unique_ptr<std::FILE, int (*)(std::FILE*)>;

std::string ChunkPath(const std::string& dir, int rp, int cp) {
  return dir + "/chunk_" + std::to_string(rp) + "_" + std::to_string(cp) +
         ".bin";
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.txt";
}

constexpr char kMagic[8] = {'O', 'O', 'C', 'C', 'H', 'K', '0', '1'};

template <typename T>
bool WriteVec(std::FILE* f, const std::vector<T>& v) {
  const std::int64_t n = static_cast<std::int64_t>(v.size());
  return std::fwrite(&n, sizeof(n), 1, f) == 1 &&
         std::fwrite(v.data(), sizeof(T), v.size(), f) == v.size();
}

template <typename T>
bool ReadVec(std::FILE* f, std::vector<T>& v) {
  std::int64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1 || n < 0) return false;
  v.resize(static_cast<std::size_t>(n));
  return std::fread(v.data(), sizeof(T), v.size(), f) == v.size();
}

}  // namespace

DiskChunkSink::DiskChunkSink(std::string directory)
    : directory_(std::move(directory)) {}

Status DiskChunkSink::Consume(ChunkPayload&& payload) {
  const std::string path =
      ChunkPath(directory_, payload.row_panel, payload.col_panel);
  FilePtr f(std::fopen(path.c_str(), "wb"), &std::fclose);
  if (!f) return Status::IoError("cannot open " + path);
  const std::int32_t ids[2] = {payload.row_panel, payload.col_panel};
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      std::fwrite(ids, sizeof(ids[0]), 2, f.get()) != 2 ||
      !WriteVec(f.get(), payload.row_offsets) ||
      !WriteVec(f.get(), payload.col_ids) ||
      !WriteVec(f.get(), payload.values)) {
    return Status::IoError("short write: " + path);
  }
  ++chunks_written_;
  bytes_written_ +=
      static_cast<std::int64_t>(payload.row_offsets.size() * sizeof(sparse::offset_t)) +
      static_cast<std::int64_t>(payload.col_ids.size() * sizeof(sparse::index_t)) +
      static_cast<std::int64_t>(payload.values.size() * sizeof(sparse::value_t));
  return Status::Ok();
}

Status DiskChunkSink::Finalize(const partition::PanelBoundaries& row_bounds,
                               const partition::PanelBoundaries& col_bounds) {
  FilePtr f(std::fopen(ManifestPath(directory_).c_str(), "w"), &std::fclose);
  if (!f) return Status::IoError("cannot open manifest in " + directory_);
  std::fprintf(f.get(), "oocgemm-chunks v1\n");
  std::fprintf(f.get(), "row_panels %d\n", row_bounds.num_panels());
  for (sparse::index_t b : row_bounds.begin) std::fprintf(f.get(), "%d ", b);
  std::fprintf(f.get(), "\ncol_panels %d\n", col_bounds.num_panels());
  for (sparse::index_t b : col_bounds.begin) std::fprintf(f.get(), "%d ", b);
  std::fprintf(f.get(), "\n");
  return Status::Ok();
}

StatusOr<ChunkPayload> DiskChunkSink::Load(const std::string& directory,
                                           int row_panel, int col_panel) {
  const std::string path = ChunkPath(directory, row_panel, col_panel);
  FilePtr f(std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!f) return Status::NotFound("no chunk file " + path);
  char magic[8];
  std::int32_t ids[2];
  ChunkPayload p;
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(magic)) != 0 ||
      std::fread(ids, sizeof(ids[0]), 2, f.get()) != 2) {
    return Status::IoError("corrupt chunk header: " + path);
  }
  p.row_panel = ids[0];
  p.col_panel = ids[1];
  if (!ReadVec(f.get(), p.row_offsets) || !ReadVec(f.get(), p.col_ids) ||
      !ReadVec(f.get(), p.values)) {
    return Status::IoError("corrupt chunk body: " + path);
  }
  return p;
}

StatusOr<sparse::Csr> DiskChunkSink::AssembleFromDisk(
    const std::string& directory) {
  FilePtr f(std::fopen(ManifestPath(directory).c_str(), "r"), &std::fclose);
  if (!f) return Status::NotFound("no manifest in " + directory);
  char word1[64], word2[64];
  int nr = 0, nc = 0;
  if (std::fscanf(f.get(), "%63s %63s", word1, word2) != 2 ||
      std::fscanf(f.get(), "%63s %d", word1, &nr) != 2) {
    return Status::IoError("corrupt manifest (row header)");
  }
  partition::PanelBoundaries rb, cb;
  rb.begin.resize(static_cast<std::size_t>(nr) + 1);
  for (auto& b : rb.begin) {
    if (std::fscanf(f.get(), "%d", &b) != 1) {
      return Status::IoError("corrupt manifest (row bounds)");
    }
  }
  if (std::fscanf(f.get(), "%63s %d", word1, &nc) != 2) {
    return Status::IoError("corrupt manifest (col header)");
  }
  cb.begin.resize(static_cast<std::size_t>(nc) + 1);
  for (auto& b : cb.begin) {
    if (std::fscanf(f.get(), "%d", &b) != 1) {
      return Status::IoError("corrupt manifest (col bounds)");
    }
  }

  std::vector<ChunkPayload> payloads;
  payloads.reserve(static_cast<std::size_t>(nr) * static_cast<std::size_t>(nc));
  for (int rp = 0; rp < nr; ++rp) {
    for (int cp = 0; cp < nc; ++cp) {
      auto p = Load(directory, rp, cp);
      if (!p.ok()) return p.status();
      payloads.push_back(std::move(p.value()));
    }
  }
  return AssembleChunks(rb, cb, std::move(payloads));
}

}  // namespace oocgemm::core
