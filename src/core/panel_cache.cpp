#include "core/panel_cache.hpp"

#include "obs/metrics.hpp"

namespace oocgemm::core {

namespace {

// One counter pair per panel kind in the default registry; resolved once.
obs::Counter& CacheCounter(const char* name, PanelCache::Kind kind) {
  auto& reg = obs::MetricsRegistry::Default();
  return reg.GetCounter(name,
                        {{"kind", kind == PanelCache::kA ? "A" : "B"}},
                        "Panel cache lookups by outcome");
}

obs::Counter& HitCounter(PanelCache::Kind kind) {
  static obs::Counter* a = &CacheCounter("oocgemm_core_panel_cache_hits",
                                         PanelCache::kA);
  static obs::Counter* b = &CacheCounter("oocgemm_core_panel_cache_hits",
                                         PanelCache::kB);
  return kind == PanelCache::kA ? *a : *b;
}

obs::Counter& MissCounter(PanelCache::Kind kind) {
  static obs::Counter* a = &CacheCounter("oocgemm_core_panel_cache_misses",
                                         PanelCache::kA);
  static obs::Counter* b = &CacheCounter("oocgemm_core_panel_cache_misses",
                                         PanelCache::kB);
  return kind == PanelCache::kA ? *a : *b;
}

}  // namespace

using kernels::DeviceCsr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

namespace {
std::int64_t Align(std::int64_t v) { return (v + 255) / 256 * 256; }
}  // namespace

PanelCache::PanelCache(vgpu::Device& device, vgpu::HostContext& host,
                       std::int64_t max_a_bytes, std::int64_t max_b_bytes)
    : device_(device), host_(&host) {
  const std::int64_t a_slot = Align(max_a_bytes);
  const std::int64_t b_slot = Align(max_b_bytes);
  auto arena = device_.Malloc(host, 2 * a_slot + 2 * b_slot, "panel-cache");
  if (!arena.ok()) {
    OOC_CHECK(arena.status().code() != StatusCode::kOutOfMemory &&
              "panel cache exceeds device capacity (planner bug)");
    init_status_ = arena.status();
    return;
  }
  arena_ = arena.value();
  slots_[kA][0].area = arena_.Slice(0, a_slot);
  slots_[kA][1].area = arena_.Slice(a_slot, a_slot);
  slots_[kB][0].area = arena_.Slice(2 * a_slot, b_slot);
  slots_[kB][1].area = arena_.Slice(2 * a_slot + b_slot, b_slot);
}

PanelCache::~PanelCache() {
  if (!arena_.is_null()) device_.Free(*host_, arena_);
}

StatusOr<DeviceCsr> PanelCache::Acquire(vgpu::HostContext& host,
                                        vgpu::Stream& stream, Kind kind,
                                        int id, const sparse::Csr& host_panel,
                                        bool pinned) {
  if (!init_status_.ok()) return init_status_;
  auto& kind_slots = slots_[kind];
  // Hit?
  for (Slot& slot : kind_slots) {
    if (slot.id == id) {
      ++hits_[kind];
      HitCounter(kind).Add(1);
      return slot.panel;
    }
  }
  ++misses_[kind];
  MissCounter(kind).Add(1);
  // Evict the least recently used slot.
  Slot& victim = kind_slots[0].last_use.time <= kind_slots[1].last_use.time
                     ? kind_slots[0]
                     : kind_slots[1];
  // The upload must not start before the evicted panel's readers finish.
  device_.StreamWaitEvent(stream, victim.last_use);

  const std::int64_t ro_bytes = Align(
      static_cast<std::int64_t>(host_panel.row_offsets().size() *
                                sizeof(offset_t)));
  const std::int64_t ci_bytes =
      Align(host_panel.nnz() * static_cast<std::int64_t>(sizeof(index_t)));
  const std::int64_t va_bytes =
      Align(host_panel.nnz() * static_cast<std::int64_t>(sizeof(value_t)));
  if (ro_bytes + ci_bytes + va_bytes > victim.area.size) {
    return Status::OutOfMemory("panel larger than cache slot: need " +
                               std::to_string(ro_bytes + ci_bytes + va_bytes) +
                               ", slot " + std::to_string(victim.area.size));
  }

  DeviceCsr d;
  d.rows = host_panel.rows();
  d.cols = host_panel.cols();
  d.nnz = host_panel.nnz();
  d.row_offsets = victim.area.Slice(0, ro_bytes);
  d.col_ids = victim.area.Slice(ro_bytes, ci_bytes);
  d.values = victim.area.Slice(ro_bytes + ci_bytes, va_bytes);

  const std::string tag =
      std::string(kind == kA ? "A" : "B") + "panel" + std::to_string(id);
  device_.MemcpyH2DAsync(host, stream, d.row_offsets,
                         host_panel.row_offsets().data(),
                         static_cast<std::int64_t>(
                             host_panel.row_offsets().size() * sizeof(offset_t)),
                         tag + ".row_offsets", pinned);
  device_.MemcpyH2DAsync(host, stream, d.col_ids, host_panel.col_ids().data(),
                         host_panel.nnz() *
                             static_cast<std::int64_t>(sizeof(index_t)),
                         tag + ".col_ids", pinned);
  device_.MemcpyH2DAsync(host, stream, d.values, host_panel.values().data(),
                         host_panel.nnz() *
                             static_cast<std::int64_t>(sizeof(value_t)),
                         tag + ".values", pinned);

  // Commit the slot only if the uploads actually happened: a fault-injected
  // (or dead-device) upload would otherwise cache a garbage panel under a
  // valid id and poison every later hit.
  const Status upload_health = device_.health();
  if (!upload_health.ok()) {
    victim.id = -1;
    return upload_health;
  }

  victim.id = id;
  victim.panel = d;
  // Until marked used, the upload itself is the latest activity.
  victim.last_use = device_.RecordEvent(stream);
  return d;
}

void PanelCache::Invalidate(Kind kind) {
  for (Slot& slot : slots_[kind]) slot.id = -1;
}

void PanelCache::MarkUse(vgpu::Stream& stream, Kind kind, int id) {
  for (Slot& slot : slots_[kind]) {
    if (slot.id == id) {
      const vgpu::Event e = device_.RecordEvent(stream);
      if (e.time > slot.last_use.time) slot.last_use = e;
      return;
    }
  }
  OOC_CHECK(false && "MarkUse on a panel that is not cached");
}

}  // namespace oocgemm::core
