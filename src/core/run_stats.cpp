#include "core/run_stats.hpp"

#include <algorithm>
#include <cstdio>

namespace oocgemm::core {

void FillStatsFromTrace(const vgpu::Trace& trace, RunStats& stats) {
  using vgpu::OpCategory;
  stats.kernel_seconds = trace.BusyTime(OpCategory::kKernel);
  stats.h2d_seconds = trace.BusyTime(OpCategory::kH2D);
  stats.d2h_seconds = trace.BusyTime(OpCategory::kD2H);
  stats.alloc_seconds =
      trace.BusyTime(OpCategory::kAlloc) + trace.BusyTime(OpCategory::kFree);
  stats.bytes_h2d = trace.Bytes(OpCategory::kH2D);
  stats.bytes_d2h = trace.Bytes(OpCategory::kD2H);
  stats.total_seconds = std::max(stats.total_seconds, trace.SpanEnd());
  if (stats.total_seconds > 0.0) {
    stats.d2h_fraction =
        trace.CoveredTime(OpCategory::kD2H) / stats.total_seconds;
    stats.transfer_fraction = (trace.CoveredTime(OpCategory::kD2H) +
                               trace.CoveredTime(OpCategory::kH2D)) /
                              stats.total_seconds;
    stats.overlap_factor =
        (stats.kernel_seconds + stats.h2d_seconds + stats.d2h_seconds) /
        stats.total_seconds;
  }
}

std::string RunStats::DebugString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "RunStats(%.4fs, %.3f GFLOPS, nnz=%lld, cr=%.2f, d2h=%.1f%%, "
                "chunks=%d [gpu %d / cpu %d], panels=%dx%d)",
                total_seconds, gflops(), static_cast<long long>(nnz_out),
                compression_ratio, 100.0 * d2h_fraction, num_chunks,
                num_gpu_chunks, num_cpu_chunks, num_row_panels,
                num_col_panels);
  return buf;
}

}  // namespace oocgemm::core
