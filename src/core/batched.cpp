#include "core/batched.hpp"

#include <algorithm>
#include <utility>

#include "core/assembler.hpp"
#include "core/gpu_runner.hpp"
#include "core/problem.hpp"
#include "obs/metrics.hpp"

namespace oocgemm::core {

namespace {

/// Per-job accumulation across this job's (job x column panel) segments.
struct JobAccum {
  std::vector<ChunkPayload> payloads;
  std::int64_t nnz = 0;
  std::int64_t flops = 0;  // exact, from the runners' per-chunk tallies
  int chunks_run = 0;
  std::int64_t b_uploads = 0;
  std::int64_t b_hits = 0;
  double last_finish = 0.0;  // virtual time the job's latest segment drained
  bool cancelled = false;
};

StatusOr<BatchedRunResult> BatchedOutOfCoreImpl(
    vgpu::Device& device, const std::vector<BatchJobSpec>& jobs,
    const std::vector<const sparse::Csr*>& as, const sparse::Csr& b,
    const ExecutorOptions& options, ThreadPool& pool) {
  auto preps_or =
      PrepareSharedOperandProblems(as, b, device.capacity(), options, pool);
  if (!preps_or.ok()) return preps_or.status();
  const std::vector<PreparedProblem>& preps = preps_or.value();

  const std::size_t n = jobs.size();
  const int nc = preps.front().plan.num_col_panels;

  // One workspace sized for the largest member serves every segment: pool
  // pre-allocation happens once per batch, and the panel cache — holding
  // the shared B column panels — survives across jobs.
  std::int64_t pool_bytes = 0, max_a = 0, max_b = 0;
  for (const PreparedProblem& p : preps) {
    pool_bytes = std::max(pool_bytes, p.plan.pool_bytes);
    max_a = std::max(max_a, p.plan.max_a_panel_bytes);
    max_b = std::max(max_b, p.plan.max_b_panel_bytes);
  }

  device.ResetTimeline();
  vgpu::HostContext host;
  GpuWorkspace workspace(device, host, pool_bytes, max_a, max_b);
  OOC_RETURN_IF_ERROR(workspace.init_status());

  // Segment orders: chunks of job i touching column panel j, flop-ordered
  // within the segment when reordering is on (Section IV-C, constrained to
  // the batch's column-panel-major walk).
  std::vector<std::vector<std::vector<int>>> segments(n);
  for (std::size_t i = 0; i < n; ++i) {
    segments[i].resize(static_cast<std::size_t>(nc));
    for (int id = 0; id < preps[i].num_chunks(); ++id) {
      const partition::ChunkDesc& desc =
          preps[i].chunks[static_cast<std::size_t>(id)];
      segments[i][static_cast<std::size_t>(desc.col_panel)].push_back(id);
    }
    if (options.reorder_chunks) {
      for (std::vector<int>& seg : segments[i]) {
        std::sort(seg.begin(), seg.end(), [&](int lhs, int rhs) {
          return preps[i].chunks[static_cast<std::size_t>(lhs)].flops >
                 preps[i].chunks[static_cast<std::size_t>(rhs)].flops;
        });
      }
    }
  }

  ExecutorOptions seg_options = options;
  seg_options.cancel = nullptr;  // batched cancel is segment-granular

  std::vector<JobAccum> acc(n);
  for (int j = 0; j < nc; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (acc[i].cancelled) continue;
      if (jobs[i].cancel != nullptr &&
          jobs[i].cancel->load(std::memory_order_relaxed)) {
        acc[i].cancelled = true;
        continue;
      }
      const std::vector<int>& order = segments[i][static_cast<std::size_t>(j)];
      if (order.empty()) continue;
      // A panel ids are per-job row indices; forget the previous job's
      // panels so identical indices cannot alias across matrices.
      workspace.cache.Invalidate(PanelCache::kA);
      auto run = RunGpuChunks(device, host, preps[i], order, seg_options,
                              /*sink=*/nullptr, &workspace);
      if (!run.ok()) return run.status();  // fails the whole batch
      for (ChunkPayload& p : run->payloads) {
        acc[i].payloads.push_back(std::move(p));
      }
      acc[i].nnz += run->nnz;
      acc[i].flops += run->flops;
      acc[i].chunks_run += run->chunks_run;
      acc[i].b_uploads += run->b_panel_uploads;
      acc[i].b_hits += run->b_panel_hits;
      acc[i].last_finish = run->makespan;
    }
  }
  device.DeviceSynchronize(host);

  BatchedRunResult out;
  out.batch_makespan = host.now;
  out.num_col_panels = nc;
  out.b_panel_uploads = workspace.cache.misses(PanelCache::kB);
  out.b_panel_hits = workspace.cache.hits(PanelCache::kB);
  out.jobs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (acc[i].cancelled) {
      out.jobs[i].status =
          Status::Cancelled("batched job " + std::to_string(i) +
                            " cancelled between segments");
      continue;
    }
    RunResult& rr = out.jobs[i].run;
    rr.stats.total_seconds = acc[i].last_finish;
    rr.stats.gpu_seconds = acc[i].last_finish;
    rr.stats.nnz_out = acc[i].nnz;
    rr.stats.num_gpu_chunks = acc[i].chunks_run;
    rr.stats.num_chunks = preps[i].num_chunks();
    rr.stats.num_row_panels = preps[i].plan.num_row_panels;
    rr.stats.num_col_panels = nc;
    // Estimate-seeded plans carry provisional flops; the runners tallied
    // the exact per-chunk counts as segments executed.
    rr.stats.flops =
        preps[i].plan.estimated ? acc[i].flops : preps[i].total_flops;
    rr.stats.compression_ratio =
        rr.stats.nnz_out > 0 ? static_cast<double>(rr.stats.flops) /
                                   static_cast<double>(rr.stats.nnz_out)
                             : 0.0;
    rr.stats.device_peak_bytes = device.peak_bytes();
    rr.stats.b_panel_uploads = acc[i].b_uploads;
    rr.stats.b_panel_hits = acc[i].b_hits;
    rr.c = AssembleChunks(preps[i].row_bounds, preps[i].col_bounds,
                          std::move(acc[i].payloads));
  }
  return out;
}

}  // namespace

StatusOr<BatchedRunResult> BatchedOutOfCore(vgpu::Device& device,
                                            const std::vector<BatchJobSpec>& jobs,
                                            const sparse::Csr& b,
                                            const ExecutorOptions& options,
                                            ThreadPool& pool) {
  if (jobs.empty()) {
    return Status::InvalidArgument("BatchedOutOfCore: empty batch");
  }
  std::vector<const sparse::Csr*> as;
  as.reserve(jobs.size());
  for (const BatchJobSpec& spec : jobs) {
    if (spec.a == nullptr) {
      return Status::InvalidArgument("BatchedOutOfCore: null operand");
    }
    as.push_back(spec.a);
  }

  // Same pool-overflow retry policy as the single-job executors: replan the
  // whole batch with a doubled safety factor (chunks shrink together, so the
  // shared column split stays common).
  ExecutorOptions attempt_options = options;
  const int max_attempts = std::max(1, attempt_options.max_oom_attempts);
  for (int i = 0;; ++i) {
    auto r = BatchedOutOfCoreImpl(device, jobs, as, b, attempt_options, pool);
    if (r.ok() || r.status().code() != StatusCode::kOutOfMemory ||
        i + 1 == max_attempts) {
      if (r.ok()) {
        obs::MetricsRegistry::Default()
            .GetCounter("oocgemm_core_runs", {{"executor", "batched"}},
                        "Completed executor runs")
            .Add(1);
      }
      return r;
    }
    attempt_options.plan.nnz_safety_factor *= 2.0;
  }
}

}  // namespace oocgemm::core
