#include "core/assembler.hpp"

#include <algorithm>

#include "common/prefix_sum.hpp"
#include "common/status.hpp"

namespace oocgemm::core {

using sparse::Csr;
using sparse::index_t;
using sparse::offset_t;
using sparse::value_t;

Csr AssembleChunks(const partition::PanelBoundaries& row_bounds,
                   const partition::PanelBoundaries& col_bounds,
                   std::vector<ChunkPayload> chunks) {
  const int nr = row_bounds.num_panels();
  const int nc = col_bounds.num_panels();
  const index_t rows = row_bounds.begin.back();
  const index_t cols = col_bounds.begin.back();
  OOC_CHECK(chunks.size() == static_cast<std::size_t>(nr) *
                                 static_cast<std::size_t>(nc));

  // Index chunks by (row_panel, col_panel); detect duplicates/missing.
  std::vector<const ChunkPayload*> grid(
      static_cast<std::size_t>(nr) * static_cast<std::size_t>(nc), nullptr);
  for (const ChunkPayload& ch : chunks) {
    OOC_CHECK(ch.row_panel >= 0 && ch.row_panel < nr);
    OOC_CHECK(ch.col_panel >= 0 && ch.col_panel < nc);
    const std::size_t slot =
        static_cast<std::size_t>(ch.row_panel) * static_cast<std::size_t>(nc) +
        static_cast<std::size_t>(ch.col_panel);
    OOC_CHECK(grid[slot] == nullptr && "duplicate chunk");
    const index_t panel_rows = row_bounds.panel_width(ch.row_panel);
    OOC_CHECK(ch.row_offsets.size() ==
              static_cast<std::size_t>(panel_rows) + 1);
    grid[slot] = &ch;
  }

  // Pass 1: per-row totals.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(rows), 0);
  for (int rp = 0; rp < nr; ++rp) {
    const index_t r0 = row_bounds.panel_begin(rp);
    const index_t panel_rows = row_bounds.panel_width(rp);
    for (int cp = 0; cp < nc; ++cp) {
      const ChunkPayload& ch = *grid[static_cast<std::size_t>(rp) *
                                         static_cast<std::size_t>(nc) +
                                     static_cast<std::size_t>(cp)];
      for (index_t r = 0; r < panel_rows; ++r) {
        counts[static_cast<std::size_t>(r0 + r)] +=
            ch.row_offsets[static_cast<std::size_t>(r) + 1] -
            ch.row_offsets[static_cast<std::size_t>(r)];
      }
    }
  }
  std::vector<offset_t> offsets = ExclusiveScan(counts);
  const std::int64_t nnz = offsets.back();

  // Pass 2: fill; iterating col panels in order keeps each row sorted
  // (panel column ranges are disjoint and increasing).
  std::vector<index_t> out_cols(static_cast<std::size_t>(nnz));
  std::vector<value_t> out_vals(static_cast<std::size_t>(nnz));
  std::vector<offset_t> cursor(offsets.begin(), offsets.end() - 1);
  for (int rp = 0; rp < nr; ++rp) {
    const index_t r0 = row_bounds.panel_begin(rp);
    const index_t panel_rows = row_bounds.panel_width(rp);
    for (int cp = 0; cp < nc; ++cp) {
      const ChunkPayload& ch = *grid[static_cast<std::size_t>(rp) *
                                         static_cast<std::size_t>(nc) +
                                     static_cast<std::size_t>(cp)];
      const index_t col_base = col_bounds.panel_begin(cp);
      for (index_t r = 0; r < panel_rows; ++r) {
        offset_t& w = cursor[static_cast<std::size_t>(r0 + r)];
        for (offset_t k = ch.row_offsets[static_cast<std::size_t>(r)];
             k < ch.row_offsets[static_cast<std::size_t>(r) + 1]; ++k) {
          out_cols[static_cast<std::size_t>(w)] =
              ch.col_ids[static_cast<std::size_t>(k)] + col_base;
          out_vals[static_cast<std::size_t>(w)] =
              ch.values[static_cast<std::size_t>(k)];
          ++w;
        }
      }
    }
  }
  return Csr(rows, cols, std::move(offsets), std::move(out_cols),
             std::move(out_vals));
}

}  // namespace oocgemm::core
