// Top-level convenience API: one entry point that picks the execution path.
//
// Most users should call core::Multiply and let the library decide between
// the in-core fast path (everything fits on the device, a single chunk),
// the asynchronous out-of-core pipeline, and the hybrid CPU+GPU executor —
// all return the same RunResult.
#pragma once

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "core/executors.hpp"

namespace oocgemm::core {

enum class ExecutionMode {
  /// Use the hybrid executor when the problem spans several chunks and the
  /// asynchronous GPU pipeline otherwise (a single chunk gives the CPU
  /// nothing useful to do).
  kAuto,
  kGpuOutOfCore,   // AsyncOutOfCore
  kGpuSynchronous, // SyncOutOfCore (baseline; for comparisons)
  kHybrid,         // Hybrid
  kCpuOnly,        // CpuMulticore
};

struct MultiplyOptions : ExecutorOptions {
  ExecutionMode mode = ExecutionMode::kAuto;
};

/// C = A * B with automatic path selection (see ExecutionMode).
StatusOr<RunResult> Multiply(vgpu::Device& device, const sparse::Csr& a,
                             const sparse::Csr& b,
                             const MultiplyOptions& options, ThreadPool& pool);

/// Convenience overload with default options and the process-wide pool.
StatusOr<RunResult> Multiply(vgpu::Device& device, const sparse::Csr& a,
                             const sparse::Csr& b);

}  // namespace oocgemm::core
