#include "core/device_pool.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <tuple>

namespace oocgemm::core {

DevicePool::DevicePool(std::vector<vgpu::Device*> devices)
    : devices_(std::move(devices)),
      health_(devices_.size(), DeviceHealth::kHealthy),
      rate_hints_(devices_.size(), 0.0) {
  arbiters_.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    devices_[i]->set_id(static_cast<int>(i));
    arbiters_.push_back(std::make_unique<DeviceArbiter>(*devices_[i]));
    arbiters_.back()->BindMetrics(static_cast<int>(i));
  }
}

DevicePool::DeviceHealth DevicePool::health(int index) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return health_[static_cast<std::size_t>(index)];
}

void DevicePool::MarkUnhealthy(int index) {
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_[static_cast<std::size_t>(index)] = DeviceHealth::kUnhealthy;
  }
  // Blocked Acquire callers must re-evaluate: if this was the last device
  // that fit their working set, waiting can never succeed anymore.
  released_cv_.notify_all();
}

void DevicePool::Revive(int index) {
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    health_[static_cast<std::size_t>(index)] = DeviceHealth::kHealthy;
  }
  device(index).Revive();
  released_cv_.notify_all();
}

int DevicePool::healthy_count() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  int count = 0;
  for (DeviceHealth h : health_) {
    if (h == DeviceHealth::kHealthy) ++count;
  }
  return count;
}

void DevicePool::set_rate_hint(int index, double flops_per_second) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  rate_hints_[static_cast<std::size_t>(index)] =
      flops_per_second > 0.0 ? flops_per_second : 0.0;
}

double DevicePool::rate_hint(int index) const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return rate_hints_[static_cast<std::size_t>(index)];
}

std::vector<int> DevicePool::CandidatesByLeastReserved(
    std::int64_t min_capacity_bytes) const {
  // (reserved bytes asc, rate hint desc, index asc): the historical order
  // is least-reserved-then-index; calibration hints only re-rank *ties* in
  // reserved bytes, so hintless pools behave exactly as before.
  std::vector<std::tuple<std::int64_t, double, int>> order;
  order.reserve(devices_.size());
  for (int i = 0; i < size(); ++i) {
    if (health(i) != DeviceHealth::kHealthy) continue;
    if (device(i).capacity() < min_capacity_bytes) continue;
    order.emplace_back(arbiter(i).reserved_bytes(), -rate_hint(i), i);
  }
  std::sort(order.begin(), order.end());
  std::vector<int> indices;
  indices.reserve(order.size());
  for (const auto& [reserved, neg_hint, i] : order) indices.push_back(i);
  return indices;
}

DevicePool::Slot DevicePool::TryAcquire(std::int64_t min_capacity_bytes) {
  for (int i : CandidatesByLeastReserved(min_capacity_bytes)) {
    DeviceArbiter::Lease lease = arbiter(i).TryAcquire();
    if (lease.held()) return Slot(this, i, std::move(lease));
  }
  return Slot();
}

DevicePool::Slot DevicePool::Acquire(std::int64_t min_capacity_bytes) {
  for (;;) {
    // Re-checked every round: if the last fitting device was marked
    // unhealthy while we waited, blocking further could never succeed.
    if (!AnyDeviceFits(min_capacity_bytes)) return Slot();
    Slot slot = TryAcquire(min_capacity_bytes);
    if (slot.held()) return slot;
    std::unique_lock<std::mutex> lock(released_mutex_);
    released_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

std::vector<DevicePool::Slot> DevicePool::TryAcquireFree(
    int max_slots, std::int64_t min_capacity_bytes) {
  std::vector<Slot> slots;
  for (int i : CandidatesByLeastReserved(min_capacity_bytes)) {
    if (static_cast<int>(slots.size()) >= max_slots) break;
    DeviceArbiter::Lease lease = arbiter(i).TryAcquire();
    if (lease.held()) slots.push_back(Slot(this, i, std::move(lease)));
  }
  return slots;
}

bool DevicePool::AnyDeviceFits(std::int64_t bytes) const {
  for (int i = 0; i < size(); ++i) {
    if (health(i) != DeviceHealth::kHealthy) continue;
    if (devices_[static_cast<std::size_t>(i)]->capacity() >= bytes) return true;
  }
  return false;
}

std::int64_t DevicePool::total_capacity() const {
  std::int64_t total = 0;
  for (vgpu::Device* d : devices_) total += d->capacity();
  return total;
}

std::int64_t DevicePool::max_device_capacity() const {
  std::int64_t max_cap = 0;
  for (vgpu::Device* d : devices_) max_cap = std::max(max_cap, d->capacity());
  return max_cap;
}

std::int64_t DevicePool::min_device_capacity() const {
  std::int64_t min_cap = std::numeric_limits<std::int64_t>::max();
  for (vgpu::Device* d : devices_) min_cap = std::min(min_cap, d->capacity());
  return devices_.empty() ? 0 : min_cap;
}

std::int64_t DevicePool::reserved_bytes() const {
  std::int64_t total = 0;
  for (const auto& a : arbiters_) total += a->reserved_bytes();
  return total;
}

std::int64_t DevicePool::lease_count() const {
  std::int64_t total = 0;
  for (const auto& a : arbiters_) total += a->lease_count();
  return total;
}

std::int64_t DevicePool::contention_count() const {
  std::int64_t total = 0;
  for (const auto& a : arbiters_) total += a->contention_count();
  return total;
}

std::int64_t DevicePool::reserve_shortfalls() const {
  std::int64_t total = 0;
  for (const auto& a : arbiters_) total += a->reserve_shortfalls();
  return total;
}

std::int64_t DevicePool::unreserve_underflows() const {
  std::int64_t total = 0;
  for (const auto& a : arbiters_) total += a->unreserve_underflows();
  return total;
}

}  // namespace oocgemm::core
