// Arbitration of one vgpu::Device between concurrent tenants.
//
// The virtual device is not thread-safe (its trace, allocator and timeline
// are plain state) and every executor resets the timeline on entry, so two
// jobs must never run on it at once.  The serving scheduler routes all
// device-side work through an exclusive Lease; CPU-only jobs bypass the
// arbiter entirely.
//
// The arbiter also tracks *reservations*: estimated device bytes promised
// to admitted-but-running jobs.  With exclusive leases only one job's
// working set is live at a time, but the reservation ledger is what lets
// admission answer "would another large job still fit after everything
// already admitted?" — and it keeps working if a future scheduler hands out
// concurrent leases over device partitions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::core {

class DeviceArbiter {
 public:
  explicit DeviceArbiter(vgpu::Device& device) : device_(device) {}

  DeviceArbiter(const DeviceArbiter&) = delete;
  DeviceArbiter& operator=(const DeviceArbiter&) = delete;

  /// Exclusive right to issue work to the device.  Movable, RAII.
  class Lease {
   public:
    Lease() = default;
    explicit Lease(DeviceArbiter* arbiter) : arbiter_(arbiter) {}
    Lease(Lease&& other) noexcept : arbiter_(other.arbiter_) {
      other.arbiter_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        arbiter_ = other.arbiter_;
        other.arbiter_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Release(); }

    bool held() const { return arbiter_ != nullptr; }
    vgpu::Device& device() const { return arbiter_->device_; }

    void Release() {
      if (arbiter_ != nullptr) {
        arbiter_->ReleaseLease();
        arbiter_ = nullptr;
      }
    }

   private:
    DeviceArbiter* arbiter_ = nullptr;
  };

  /// Blocks until the device is free.
  Lease Acquire();

  /// Non-blocking attempt; an empty (held() == false) lease means the
  /// device is saturated and the caller should degrade to the CPU path.
  Lease TryAcquire();

  bool busy() const;

  // --- reservation ledger ---------------------------------------------------

  /// Records `bytes` as promised device memory; fails when the promise
  /// would exceed capacity (the admission controller's headroom check).
  bool TryReserve(std::int64_t bytes);
  /// Returns a reservation previously made with TryReserve.  Unreserving
  /// more than is outstanding is an accounting bug in the caller: the
  /// ledger clamps at zero and counts the underflow so tests can assert
  /// that reservations balance exactly.
  void Unreserve(std::int64_t bytes);

  std::int64_t reserved_bytes() const;
  /// Device capacity minus outstanding reservations.
  std::int64_t AvailableEstimate() const;

  // --- contention telemetry -------------------------------------------------

  std::int64_t lease_count() const;
  std::int64_t contention_count() const;  // TryAcquire calls that failed
  std::int64_t reserve_shortfalls() const;     // TryReserve calls that failed
  std::int64_t unreserve_underflows() const;   // Unreserve past zero (caller bug)

  /// Mirrors lease grants and contention into the default obs registry as
  /// oocgemm_core_lease_{acquires,contention}{device=<index>}.  Called by
  /// DevicePool once the device's pool index is known; unbound arbiters
  /// (unit tests, standalone use) keep only the local counters.
  void BindMetrics(int device_index);

 private:
  friend class Lease;
  void ReleaseLease();

  vgpu::Device& device_;
  mutable std::mutex mutex_;
  bool leased_ = false;
  std::condition_variable cv_;
  std::int64_t reserved_ = 0;
  std::int64_t leases_ = 0;
  std::int64_t contention_ = 0;
  std::int64_t shortfalls_ = 0;
  std::int64_t underflows_ = 0;
  obs::Counter* lease_metric_ = nullptr;
  obs::Counter* contention_metric_ = nullptr;
};

}  // namespace oocgemm::core
