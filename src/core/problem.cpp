#include "core/problem.hpp"

namespace oocgemm::core {

namespace {

/// Chunk grid for a prepared plan: the estimate-seeded grid (no exact
/// nnz(A)-walk) when the plan came from the sampling estimator, otherwise
/// the exact AnalyzeChunks pass.  Executors treat estimated chunk flops as
/// provisional and correct run stats from exact per-chunk counts lazily.
std::vector<partition::ChunkDesc> ChunksForPlan(
    const sparse::Csr& a, const sparse::Csr& b,
    const partition::PanelPlan& plan) {
  if (plan.estimated) {
    return partition::EstimateChunks(
        plan.row_bounds, plan.col_bounds, plan.row_nnz_estimate,
        plan.row_products_estimate,
        partition::ColPanelNnz(b, plan.col_bounds), b.nnz());
  }
  return partition::AnalyzeChunks(
      a, plan.row_bounds, b, plan.col_bounds,
      plan.row_nnz_estimate.empty() ? nullptr : &plan.row_nnz_estimate);
}

}  // namespace

StatusOr<PreparedProblem> PrepareProblem(const sparse::Csr& a,
                                         const sparse::Csr& b,
                                         std::int64_t device_capacity,
                                         const ExecutorOptions& options,
                                         ThreadPool& pool) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch: A is " +
                                   a.DebugString() + ", B is " +
                                   b.DebugString());
  }
  // The executor's kernel choice rides on the plan so every later stage
  // (GPU pipeline, CPU runner, serve retries) routes the same way.
  partition::PlanOptions plan_options = options.plan;
  plan_options.accumulator = options.spgemm.accumulator;
  auto plan = partition::PlanPanels(a, b, device_capacity, plan_options);
  if (!plan.ok()) return plan.status();

  PreparedProblem prep;
  prep.plan = plan.value();
  prep.row_bounds = prep.plan.row_bounds;
  prep.col_bounds = prep.plan.col_bounds;
  prep.a_panels = partition::PartitionRows(a, prep.row_bounds);
  prep.b_panels = std::make_shared<const std::vector<sparse::Csr>>(
      partition::PartitionColsParallel(b, prep.col_bounds, pool));
  prep.chunks = ChunksForPlan(a, b, prep.plan);
  for (const auto& c : prep.chunks) prep.total_flops += c.flops;
  return prep;
}

StatusOr<std::vector<PreparedProblem>> PrepareSharedOperandProblems(
    const std::vector<const sparse::Csr*>& as, const sparse::Csr& b,
    std::int64_t device_capacity, const ExecutorOptions& options,
    ThreadPool& pool) {
  for (const sparse::Csr* a : as) {
    if (a == nullptr || a->cols() != b.rows()) {
      return Status::InvalidArgument(
          "dimension mismatch in shared-operand batch against B " +
          b.DebugString());
    }
  }
  partition::PlanOptions plan_options = options.plan;
  plan_options.accumulator = options.spgemm.accumulator;
  auto plans = partition::PlanSharedOperandPanels(as, b, device_capacity,
                                                  plan_options);
  if (!plans.ok()) return plans.status();

  // One partition of B for the whole batch (every plan's col_bounds agree).
  const partition::PanelBoundaries& col_bounds = plans->front().col_bounds;
  auto b_panels = std::make_shared<const std::vector<sparse::Csr>>(
      partition::PartitionColsParallel(b, col_bounds, pool));

  std::vector<PreparedProblem> preps;
  preps.reserve(as.size());
  for (std::size_t i = 0; i < as.size(); ++i) {
    PreparedProblem prep;
    prep.plan = std::move(plans.value()[i]);
    prep.row_bounds = prep.plan.row_bounds;
    prep.col_bounds = prep.plan.col_bounds;
    prep.a_panels = partition::PartitionRows(*as[i], prep.row_bounds);
    prep.b_panels = b_panels;
    prep.chunks = ChunksForPlan(*as[i], b, prep.plan);
    for (const auto& c : prep.chunks) prep.total_flops += c.flops;
    preps.push_back(std::move(prep));
  }
  return preps;
}

}  // namespace oocgemm::core
