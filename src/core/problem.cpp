#include "core/problem.hpp"

namespace oocgemm::core {

StatusOr<PreparedProblem> PrepareProblem(const sparse::Csr& a,
                                         const sparse::Csr& b,
                                         std::int64_t device_capacity,
                                         const ExecutorOptions& options,
                                         ThreadPool& pool) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("dimension mismatch: A is " +
                                   a.DebugString() + ", B is " +
                                   b.DebugString());
  }
  auto plan = partition::PlanPanels(a, b, device_capacity, options.plan);
  if (!plan.ok()) return plan.status();

  PreparedProblem prep;
  prep.plan = plan.value();
  prep.row_bounds = prep.plan.row_bounds;
  prep.col_bounds = prep.plan.col_bounds;
  prep.a_panels = partition::PartitionRows(a, prep.row_bounds);
  prep.b_panels = partition::PartitionColsParallel(b, prep.col_bounds, pool);
  prep.chunks = partition::AnalyzeChunks(
      a, prep.row_bounds, b, prep.col_bounds,
      prep.plan.row_nnz_estimate.empty() ? nullptr
                                         : &prep.plan.row_nnz_estimate);
  for (const auto& c : prep.chunks) prep.total_flops += c.flops;
  return prep;
}

}  // namespace oocgemm::core
