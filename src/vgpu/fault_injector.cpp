#include "vgpu/fault_injector.hpp"

#include <cstdlib>

namespace oocgemm::vgpu {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kH2D: return "h2d";
    case FaultSite::kD2H: return "d2h";
    case FaultSite::kKernel: return "kernel";
  }
  return "?";
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kFail: return "fail";
    case FaultAction::kCorrupt: return "corrupt";
    case FaultAction::kDelay: return "delay";
    case FaultAction::kKillDevice: return "kill";
  }
  return "?";
}

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

bool ParseDoubleField(const std::string& field, double* out) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<FaultSpec> FaultSpec::Parse(const std::string& text,
                                     std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  if (text.empty()) return spec;
  for (const std::string& rule_text : SplitOn(text, ',')) {
    if (rule_text.empty()) continue;
    const std::vector<std::string> fields = SplitOn(rule_text, ':');
    FaultRule rule;
    bool action_set = false;
    if (fields[0] == "alloc") {
      rule.site = FaultSite::kAlloc;
    } else if (fields[0] == "h2d") {
      rule.site = FaultSite::kH2D;
    } else if (fields[0] == "d2h") {
      rule.site = FaultSite::kD2H;
    } else if (fields[0] == "kernel") {
      rule.site = FaultSite::kKernel;
    } else {
      return Status::InvalidArgument("fault spec: unknown site '" + fields[0] +
                                     "' in rule '" + rule_text + "'");
    }
    for (std::size_t i = 1; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      if (f.rfind("p=", 0) == 0) {
        if (!ParseDoubleField(f.substr(2), &rule.probability) ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return Status::InvalidArgument("fault spec: bad probability '" + f +
                                         "'");
        }
      } else if (f.rfind("nth=", 0) == 0) {
        double v = 0.0;
        if (!ParseDoubleField(f.substr(4), &v) || v < 1.0) {
          return Status::InvalidArgument("fault spec: bad nth '" + f + "'");
        }
        rule.nth = static_cast<std::int64_t>(v);
      } else if (f.rfind("delay=", 0) == 0) {
        if (!ParseDoubleField(f.substr(6), &rule.delay_seconds) ||
            rule.delay_seconds < 0.0) {
          return Status::InvalidArgument("fault spec: bad delay '" + f + "'");
        }
        rule.action = FaultAction::kDelay;
        action_set = true;
      } else if (f.rfind("label=", 0) == 0) {
        rule.label_substr = f.substr(6);
      } else if (f == "once") {
        rule.one_shot = true;
      } else if (f == "fail") {
        rule.action = FaultAction::kFail;
        action_set = true;
      } else if (f == "corrupt") {
        rule.action = FaultAction::kCorrupt;
        action_set = true;
      } else if (f == "delay") {
        rule.action = FaultAction::kDelay;
        action_set = true;
      } else if (f == "kill") {
        rule.action = FaultAction::kKillDevice;
        action_set = true;
      } else {
        return Status::InvalidArgument("fault spec: unknown field '" + f +
                                       "' in rule '" + rule_text + "'");
      }
    }
    if (rule.probability < 0.0 && rule.nth == 0 && !rule.one_shot) {
      return Status::InvalidArgument(
          "fault spec: rule '" + rule_text +
          "' needs a trigger (p=, nth=, or once)");
    }
    (void)action_set;  // default action is kKillDevice
    spec.rules.push_back(std::move(rule));
  }
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  // One independent PCG32 stream per rule, all expanded from the single
  // seed: adding or removing a rule never perturbs another rule's draws.
  SplitMix64 expand(spec_.seed);
  rule_rngs_.reserve(spec_.rules.size());
  for (std::size_t i = 0; i < spec_.rules.size(); ++i) {
    const std::uint64_t s = expand.Next();
    rule_rngs_.emplace_back(s, /*stream=*/i * 2 + 1);
  }
  disarmed_.assign(spec_.rules.size(), false);
}

std::optional<FiredFault> FaultInjector::Evaluate(FaultSite site,
                                                  const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return std::nullopt;  // lost device: schedule frozen
  const int s = static_cast<int>(site);
  const std::int64_t site_op = ++site_ops_[s];
  const std::int64_t op = ++total_ops_;

  std::optional<FiredFault> fired;
  std::size_t fired_rule = 0;
  for (std::size_t i = 0; i < spec_.rules.size(); ++i) {
    const FaultRule& rule = spec_.rules[i];
    if (rule.site != site) continue;
    if (!rule.label_substr.empty() &&
        label.find(rule.label_substr) == std::string::npos) {
      continue;
    }
    bool hit = false;
    if (rule.probability >= 0.0) {
      // Draw unconditionally (even if disarmed or already fired) so the
      // per-rule stream position depends only on the op sequence.
      const bool draw = rule_rngs_[i].Bernoulli(rule.probability);
      hit = draw && !disarmed_[i];
    } else if (rule.nth > 0) {
      hit = !disarmed_[i] && site_op == rule.nth;
    } else {  // bare one-shot: first matching op
      hit = !disarmed_[i];
    }
    if (!hit) continue;
    if (rule.one_shot || rule.nth > 0) disarmed_[i] = true;
    if (!fired) {  // first firing rule wins; later rules still drew above
      fired = FiredFault{rule.action, rule.delay_seconds, ""};
      fired_rule = i;
    }
  }
  if (!fired) return std::nullopt;

  fired->description = std::string(FaultSiteName(site)) + "#" +
                       std::to_string(site_op) + " " +
                       FaultActionName(fired->action) + " (rule " +
                       std::to_string(fired_rule) + ")";
  log_.push_back({op, site, fired->action, fired_rule, label});
  if (fired->action == FaultAction::kKillDevice) dead_ = true;
  return fired;
}

bool FaultInjector::device_dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

void FaultInjector::KillDevice() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
}

void FaultInjector::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = false;
}

std::vector<FaultRecord> FaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

std::int64_t FaultInjector::ops_seen(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site_ops_[static_cast<int>(site)];
}

}  // namespace oocgemm::vgpu
