#include "vgpu/trace.hpp"

#include <algorithm>

namespace oocgemm::vgpu {

const char* OpCategoryName(OpCategory c) {
  switch (c) {
    case OpCategory::kKernel: return "kernel";
    case OpCategory::kH2D: return "h2d";
    case OpCategory::kD2H: return "d2h";
    case OpCategory::kAlloc: return "alloc";
    case OpCategory::kFree: return "free";
    case OpCategory::kHost: return "host";
    case OpCategory::kFault: return "fault";
  }
  return "?";
}

double Trace::BusyTime(OpCategory category) const {
  double t = 0.0;
  for (const auto& e : events_) {
    if (e.category == category) t += e.interval.duration();
  }
  return t;
}

double Trace::BusyTimeLabeled(const std::string& substr) const {
  double t = 0.0;
  for (const auto& e : events_) {
    if (e.label.find(substr) != std::string::npos) t += e.interval.duration();
  }
  return t;
}

SimTime Trace::SpanEnd() const {
  SimTime end = 0.0;
  for (const auto& e : events_) end = std::max(end, e.interval.end);
  return end;
}

double Trace::Fraction(OpCategory category) const {
  const SimTime span = SpanEnd();
  if (span <= 0.0) return 0.0;
  return CoveredTime(category) / span;
}

std::int64_t Trace::Bytes(OpCategory category) const {
  std::int64_t b = 0;
  for (const auto& e : events_) {
    if (e.category == category) b += e.bytes;
  }
  return b;
}

bool Trace::HasIntraCategoryOverlap(OpCategory category) const {
  std::vector<Interval> ivs;
  for (const auto& e : events_) {
    if (e.category == category && e.interval.duration() > 0.0) {
      ivs.push_back(e.interval);
    }
  }
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    constexpr double kEps = 1e-12;
    if (ivs[i].start < ivs[i - 1].end - kEps) return true;
  }
  return false;
}

double Trace::CoveredTime(OpCategory category) const {
  std::vector<Interval> ivs;
  for (const auto& e : events_) {
    if (e.category == category && e.interval.duration() > 0.0) {
      ivs.push_back(e.interval);
    }
  }
  if (ivs.empty()) return 0.0;
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  double covered = 0.0;
  Interval cur = ivs[0];
  for (std::size_t i = 1; i < ivs.size(); ++i) {
    if (ivs[i].start <= cur.end) {
      cur.end = std::max(cur.end, ivs[i].end);
    } else {
      covered += cur.duration();
      cur = ivs[i];
    }
  }
  covered += cur.duration();
  return covered;
}

double Trace::OverlapFactor() const {
  const SimTime span = SpanEnd();
  if (span <= 0.0) return 0.0;
  return (BusyTime(OpCategory::kKernel) + BusyTime(OpCategory::kH2D) +
          BusyTime(OpCategory::kD2H)) /
         span;
}

}  // namespace oocgemm::vgpu
