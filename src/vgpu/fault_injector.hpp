// Deterministic fault injection for the virtual GPU.
//
// A FaultInjector is a seeded, policy-driven oracle installed on a
// vgpu::Device (and its FreeListAllocator).  Every fallible device
// operation — allocation, H2D/D2H transfer, kernel launch — consults it
// before executing; the injector decides, reproducibly from a single seed,
// whether that operation fails, corrupts its payload, is delayed, or kills
// the whole device.  This gives the serving stack a way to rehearse the
// failures a real CUDA node produces (cudaErrorMemoryAllocation, ECC
// errors, Xid device-lost events) without any nondeterminism: the same
// seed always yields the same fault schedule, so failover tests are
// bit-reproducible.
//
// Trigger model: a FaultSpec is a list of FaultRules.  Each rule names an
// injection site and fires on one of three triggers:
//   * probability  — an independent Bernoulli draw per matching operation,
//                    from a per-rule PCG32 stream (draws happen for every
//                    matching op whether or not the rule fires, so the
//                    schedule is invariant to other rules);
//   * nth          — fires exactly on the N-th matching operation at that
//                    site (1-based, counted per site);
//   * one-shot     — fires on the first matching operation, then disarms.
// A probability rule may also be one-shot (disarms after its first hit).
// Rules may further filter by a label substring.  The first firing rule
// wins for a given operation.
//
// Fault semantics follow CUDA's sticky-error model (see device.hpp):
// failed or corrupted async operations set a sticky status on the Device
// that callers observe at status-returning checkpoints via health();
// kKillDevice marks the device lost (every later op is a no-op) until
// Revive().
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace oocgemm::vgpu {

enum class FaultSite { kAlloc = 0, kH2D, kD2H, kKernel };
constexpr int kNumFaultSites = 4;

const char* FaultSiteName(FaultSite site);

enum class FaultAction {
  kFail = 0,    // operation fails (alloc: kResourceExhausted; else sticky)
  kCorrupt,     // transfer payload scrambled; detected (sticky kDataLoss)
  kDelay,       // operation succeeds but costs delay_seconds extra
  kKillDevice,  // device lost (sticky kUnavailable until Revive)
};

const char* FaultActionName(FaultAction action);

struct FaultRule {
  FaultSite site = FaultSite::kKernel;
  FaultAction action = FaultAction::kKillDevice;
  double probability = -1.0;   // < 0: not probability-triggered
  std::int64_t nth = 0;        // > 0: fire on the nth op at `site` (1-based)
  bool one_shot = false;       // disarm after first firing
  double delay_seconds = 0.0;  // for kDelay
  std::string label_substr;    // empty: match any label
};

/// A complete, seedable fault policy.
struct FaultSpec {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  /// Parses a comma-separated rule list.  Each rule is colon-separated
  /// fields: first the site (`alloc|h2d|d2h|kernel`), then any of
  ///   `p=<float>`   probability trigger
  ///   `nth=<int>`   nth-occurrence trigger
  ///   `once`        one-shot
  ///   `delay=<s>`   delay seconds (implies action kDelay)
  ///   `label=<sub>` label-substring filter
  ///   `fail|corrupt|delay|kill`  the action (default: kill)
  /// Example: "kernel:nth=40" kills the device at its 40th kernel launch;
  /// "h2d:p=0.05:fail,alloc:nth=3:fail" fails 5% of uploads and the third
  /// allocation.
  static StatusOr<FaultSpec> Parse(const std::string& text,
                                   std::uint64_t seed);
};

/// What the injector decided for one operation.
struct FiredFault {
  FaultAction action = FaultAction::kFail;
  double delay_seconds = 0.0;
  std::string description;  // "h2d#12 fail (rule 0)" — stable across runs
};

/// One log entry per fired fault; the determinism tests compare these.
struct FaultRecord {
  std::int64_t op_index = 0;  // global op count at firing time
  FaultSite site = FaultSite::kKernel;
  FaultAction action = FaultAction::kFail;
  std::size_t rule_index = 0;
  std::string label;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  /// Consulted by the device/allocator for every fallible operation.
  /// Counts the op, evaluates every armed matching rule, and returns the
  /// first firing rule's action (nullopt: proceed normally).  Dead devices
  /// stop counting: ops on a lost device never advance the schedule.
  std::optional<FiredFault> Evaluate(FaultSite site, const std::string& label);

  /// Sticky device-lost flag (set when a kKillDevice rule fires, or
  /// explicitly via KillDevice; cleared only by Revive).
  bool device_dead() const;
  void KillDevice();
  void Revive();

  /// Every fault fired so far, in firing order.
  std::vector<FaultRecord> log() const;

  /// Ops seen per site (diagnostics; includes the op a fault fired on).
  std::int64_t ops_seen(FaultSite site) const;

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  mutable std::mutex mu_;
  std::vector<Pcg32> rule_rngs_;
  std::vector<bool> disarmed_;
  std::int64_t site_ops_[kNumFaultSites] = {0, 0, 0, 0};
  std::int64_t total_ops_ = 0;
  bool dead_ = false;
  std::vector<FaultRecord> log_;
};

}  // namespace oocgemm::vgpu
