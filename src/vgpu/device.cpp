#include "vgpu/device.hpp"

#include <algorithm>
#include <cstring>

namespace oocgemm::vgpu {

DeviceProperties V100Properties() { return DeviceProperties{}; }

DeviceProperties ScaledV100Properties(int mem_shift) {
  OOC_CHECK(mem_shift >= 0 && mem_shift < 40);
  DeviceProperties p;
  p.name = "Virtual Tesla V100 (1/" + std::to_string(1ll << mem_shift) +
           " scale)";
  p.memory_bytes >>= mem_shift;
  const double factor = 1.0 / static_cast<double>(1ll << mem_shift);
  p.kernel_launch_overhead *= factor;
  p.transfer_latency *= factor;
  p.alloc_overhead *= factor;
  p.free_overhead *= factor;
  return p;
}

Device::Device(DeviceProperties props)
    : props_(std::move(props)),
      arena_(static_cast<std::size_t>(props_.memory_bytes)),
      allocator_(props_.memory_bytes) {
  sync_stream_ = CreateStream("sync-copies");
  BindMetrics();
}

void Device::BindMetrics() {
  auto& reg = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"device", std::to_string(id_)}};
  metrics_.h2d_bytes = &reg.GetCounter(
      "oocgemm_vgpu_h2d_bytes", labels, "Bytes copied host-to-device");
  metrics_.d2h_bytes = &reg.GetCounter(
      "oocgemm_vgpu_d2h_bytes", labels, "Bytes copied device-to-host");
  metrics_.h2d_seconds = &reg.GetDoubleCounter(
      "oocgemm_vgpu_h2d_seconds", labels,
      "Virtual seconds the H2D copy engine was busy");
  metrics_.d2h_seconds = &reg.GetDoubleCounter(
      "oocgemm_vgpu_d2h_seconds", labels,
      "Virtual seconds the D2H copy engine was busy");
  metrics_.kernel_launches = &reg.GetCounter(
      "oocgemm_vgpu_kernel_launches", labels, "Kernel launches issued");
  metrics_.kernel_seconds = &reg.GetDoubleCounter(
      "oocgemm_vgpu_kernel_seconds", labels,
      "Virtual seconds the compute engine was busy");
  metrics_.allocs = &reg.GetCounter(
      "oocgemm_vgpu_allocs", labels, "Successful device allocations");
  metrics_.frees = &reg.GetCounter(
      "oocgemm_vgpu_frees", labels, "Device frees");
  metrics_.alloc_bytes = &reg.GetCounter(
      "oocgemm_vgpu_alloc_bytes", labels,
      "Bytes handed out by the device allocator (cumulative)");
  metrics_.faults = &reg.GetCounter(
      "oocgemm_vgpu_faults", labels, "Injected faults that fired");
  metrics_.used_bytes = &reg.GetGauge(
      "oocgemm_vgpu_used_bytes", labels, "Live device memory in use");
}

StatusOr<DevicePtr> Device::Malloc(HostContext& host, std::int64_t bytes,
                                   const std::string& label) {
  if (dead()) {
    return Status::Unavailable("device lost: malloc '" + label + "' refused");
  }
  // kAlloc faults are evaluated inside the allocator (one schedule shared
  // with allocator-level users); here we only surface a kill that fired.
  auto result = allocator_.Allocate(bytes, label);
  if (injector_ != nullptr && injector_->device_dead() && !dead()) {
    MarkDead("injected device loss at alloc '" + label + "'");
    trace_.Add({OpCategory::kFault, "fault:alloc-kill:" + label, -1,
                Interval{host.now, host.now}, 0});
    metrics_.faults->Add(1);
  }
  if (!result.ok()) return result.status();
  SerializeDevice(host, props_.alloc_overhead, OpCategory::kAlloc, label);
  metrics_.allocs->Add(1);
  metrics_.alloc_bytes->Add(bytes);
  metrics_.used_bytes->Set(allocator_.used_bytes());
  return result;
}

void Device::Free(HostContext& host, DevicePtr ptr) {
  if (ptr.is_null()) return;
  // Bookkeeping always runs, even on a lost device: the host-side arena
  // accounting must return to baseline so pools/caches can unwind cleanly
  // after a failure.  Only the timing side effect is skipped when dead.
  allocator_.Free(ptr);
  metrics_.frees->Add(1);
  metrics_.used_bytes->Set(allocator_.used_bytes());
  if (dead()) return;
  SerializeDevice(host, props_.free_overhead, OpCategory::kFree, "free");
}

std::byte* Device::Raw(DevicePtr ptr) {
  OOC_CHECK(!ptr.is_null());
  OOC_CHECK(ptr.offset + ptr.size <= static_cast<std::int64_t>(arena_.size()));
  return arena_.data() + ptr.offset;
}

const std::byte* Device::Raw(DevicePtr ptr) const {
  OOC_CHECK(!ptr.is_null());
  OOC_CHECK(ptr.offset + ptr.size <= static_cast<std::int64_t>(arena_.size()));
  return arena_.data() + ptr.offset;
}

Stream* Device::CreateStream(const std::string& name) {
  streams_.emplace_back(static_cast<int>(streams_.size()), name);
  return &streams_.back();
}

SimTime Device::QuiesceTime() const {
  SimTime t = std::max({compute_.free_at(), h2d_.free_at(), d2h_.free_at()});
  for (const auto& s : streams_) t = std::max(t, s.last_end());
  return t;
}

void Device::SerializeDevice(HostContext& host, double overhead,
                             OpCategory category, const std::string& label) {
  const SimTime start = std::max(host.now, QuiesceTime());
  const SimTime end = start + overhead;
  compute_.Fence(end);
  h2d_.Fence(end);
  d2h_.Fence(end);
  for (auto& s : streams_) s.AdvanceTo(end);
  host.AdvanceTo(end);
  trace_.Add({category, label, -1, Interval{start, end}, 0});
}

void Device::CheckHazards(const std::string& label, const Interval& interval,
                          const std::vector<Region>& regions) {
  if (!hazard_checking_ || regions.empty()) return;
  for (const auto& past : hazard_history_) {
    if (!past.interval.Overlaps(interval)) continue;
    for (const auto& r : regions) {
      for (const auto& p : past.regions) {
        if (!(r.write || p.write)) continue;
        const bool bytes_overlap =
            r.offset < p.offset + p.size && p.offset < r.offset + r.size;
        if (bytes_overlap) {
          hazard_violations_.push_back(
              "virtual-time data race: '" + label + "' [" +
              std::to_string(interval.start) + "," +
              std::to_string(interval.end) + ") conflicts with '" +
              past.label + "' on device bytes [" +
              std::to_string(std::max(r.offset, p.offset)) + "..)");
        }
      }
    }
  }
  hazard_history_.push_back({interval, regions, label});
}

void Device::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  allocator_.set_fault_injector(injector);
}

void Device::Revive() {
  fault_status_ = Status::Ok();
  dead_status_ = Status::Ok();
  if (injector_ != nullptr) injector_->Revive();
}

void Device::MarkDead(const std::string& description) {
  if (injector_ != nullptr) injector_->KillDevice();
  dead_status_ = Status::Unavailable("device lost: " + description);
}

void Device::ScrambleBytes(void* data, std::int64_t bytes) {
  auto* p = static_cast<unsigned char*>(data);
  for (std::int64_t i = 0; i < bytes; ++i) p[i] ^= 0xa5;
}

std::optional<FiredFault> Device::EvaluateFault(HostContext& host,
                                                FaultSite site, int stream_id,
                                                const std::string& label) {
  if (injector_ == nullptr) return std::nullopt;
  auto fired = injector_->Evaluate(site, label);
  if (!fired) return std::nullopt;
  trace_.Add({OpCategory::kFault, "fault:" + fired->description + ":" + label,
              stream_id, Interval{host.now, host.now}, 0});
  metrics_.faults->Add(1);
  switch (fired->action) {
    case FaultAction::kFail:
      if (fault_status_.ok()) {
        fault_status_ =
            Status::Internal("injected fault: " + fired->description);
      }
      break;
    case FaultAction::kCorrupt:
      if (fault_status_.ok()) {
        fault_status_ =
            Status::DataLoss("detected corruption: " + fired->description);
      }
      break;
    case FaultAction::kKillDevice:
      MarkDead(fired->description);
      break;
    case FaultAction::kDelay:
      break;
  }
  return fired;
}

void Device::LaunchKernel(HostContext& host, Stream& stream,
                          const std::string& label, double cost_seconds,
                          std::vector<Region> regions,
                          const std::function<void()>& body) {
  OOC_CHECK(cost_seconds >= 0.0);
  if (dead()) return;  // lost device: launches vanish
  if (auto fired = EvaluateFault(host, FaultSite::kKernel, stream.id(), label)) {
    // kFail/kCorrupt/kKillDevice all suppress the body: the kernel never
    // produced (trustworthy) output, and the sticky status records that.
    if (fired->action != FaultAction::kDelay) return;
    cost_seconds += fired->delay_seconds;
  }
  body();  // eager execution: results are real
  host.now += props_.kernel_launch_overhead;
  const SimTime ready = std::max(host.now, stream.last_end());
  const Interval iv = compute_.Acquire(ready, cost_seconds);
  stream.AdvanceTo(iv.end);
  CheckHazards(label, iv, regions);
  trace_.Add({OpCategory::kKernel, label, stream.id(), iv, 0});
  metrics_.kernel_launches->Add(1);
  metrics_.kernel_seconds->Add(iv.end - iv.start);
}

void Device::LaunchKernelCosted(HostContext& host, Stream& stream,
                                const std::string& label,
                                std::vector<Region> regions,
                                const std::function<double()>& body) {
  if (dead()) return;
  double extra_cost = 0.0;
  if (auto fired = EvaluateFault(host, FaultSite::kKernel, stream.id(), label)) {
    if (fired->action != FaultAction::kDelay) return;
    extra_cost = fired->delay_seconds;
  }
  const double cost_seconds = body() + extra_cost;
  OOC_CHECK(cost_seconds >= 0.0);
  host.now += props_.kernel_launch_overhead;
  const SimTime ready = std::max(host.now, stream.last_end());
  const Interval iv = compute_.Acquire(ready, cost_seconds);
  stream.AdvanceTo(iv.end);
  CheckHazards(label, iv, regions);
  trace_.Add({OpCategory::kKernel, label, stream.id(), iv, 0});
  metrics_.kernel_launches->Add(1);
  metrics_.kernel_seconds->Add(iv.end - iv.start);
}

void Device::MemcpyH2DAsync(HostContext& host, Stream& stream, DevicePtr dst,
                            const void* src, std::int64_t bytes,
                            const std::string& label, bool pinned) {
  OOC_CHECK(bytes >= 0 && bytes <= dst.size);
  if (dead()) return;  // lost device: transfers vanish
  double extra_delay = 0.0;
  bool corrupt = false;
  if (auto fired = EvaluateFault(host, FaultSite::kH2D, stream.id(), label)) {
    switch (fired->action) {
      case FaultAction::kFail:
      case FaultAction::kKillDevice:
        return;  // no data moved; sticky status already set
      case FaultAction::kCorrupt: corrupt = true; break;
      case FaultAction::kDelay: extra_delay = fired->delay_seconds; break;
    }
  }
  if (bytes > 0) std::memcpy(Raw(dst), src, static_cast<std::size_t>(bytes));
  if (corrupt && bytes > 0) ScrambleBytes(Raw(dst), bytes);
  double bw = props_.h2d_bandwidth * (pinned ? 1.0 : props_.pageable_bandwidth_factor);
  const double cost =
      props_.transfer_latency + static_cast<double>(bytes) / bw + extra_delay;
  const SimTime ready = std::max(host.now, stream.last_end());
  const Interval iv = h2d_.Acquire(ready, cost);
  stream.AdvanceTo(iv.end);
  CheckHazards(label, iv, {{dst.offset, bytes, /*write=*/true}});
  trace_.Add({OpCategory::kH2D, label, stream.id(), iv, bytes});
  metrics_.h2d_bytes->Add(bytes);
  metrics_.h2d_seconds->Add(iv.end - iv.start);
  if (!pinned) host.AdvanceTo(iv.end);  // pageable copies block the host
}

void Device::MemcpyD2HAsync(HostContext& host, Stream& stream, void* dst,
                            DevicePtr src, std::int64_t bytes,
                            const std::string& label, bool pinned) {
  OOC_CHECK(bytes >= 0 && bytes <= src.size);
  if (dead()) return;
  double extra_delay = 0.0;
  bool corrupt = false;
  if (auto fired = EvaluateFault(host, FaultSite::kD2H, stream.id(), label)) {
    switch (fired->action) {
      case FaultAction::kFail:
      case FaultAction::kKillDevice:
        return;
      case FaultAction::kCorrupt: corrupt = true; break;
      case FaultAction::kDelay: extra_delay = fired->delay_seconds; break;
    }
  }
  if (bytes > 0) std::memcpy(dst, Raw(src), static_cast<std::size_t>(bytes));
  if (corrupt && bytes > 0) ScrambleBytes(dst, bytes);
  double bw = props_.d2h_bandwidth * (pinned ? 1.0 : props_.pageable_bandwidth_factor);
  const double cost =
      props_.transfer_latency + static_cast<double>(bytes) / bw + extra_delay;
  const SimTime ready = std::max(host.now, stream.last_end());
  const Interval iv = d2h_.Acquire(ready, cost);
  stream.AdvanceTo(iv.end);
  CheckHazards(label, iv, {{src.offset, bytes, /*write=*/false}});
  trace_.Add({OpCategory::kD2H, label, stream.id(), iv, bytes});
  metrics_.d2h_bytes->Add(bytes);
  metrics_.d2h_seconds->Add(iv.end - iv.start);
  if (!pinned) host.AdvanceTo(iv.end);
}

void Device::MemcpyH2D(HostContext& host, DevicePtr dst, const void* src,
                       std::int64_t bytes, const std::string& label) {
  MemcpyH2DAsync(host, *sync_stream_, dst, src, bytes, label);
  StreamSynchronize(host, *sync_stream_);
}

void Device::MemcpyD2H(HostContext& host, void* dst, DevicePtr src,
                       std::int64_t bytes, const std::string& label) {
  MemcpyD2HAsync(host, *sync_stream_, dst, src, bytes, label);
  StreamSynchronize(host, *sync_stream_);
}

void Device::ResetTimeline() {
  fault_status_ = Status::Ok();  // transient faults clear; device-lost stays
  trace_.Clear();
  hazard_history_.clear();
  hazard_violations_.clear();
  compute_ = Resource{"compute"};
  h2d_ = Resource{"h2d"};
  d2h_ = Resource{"d2h"};
  for (auto& s : streams_) s = Stream(s.id(), s.name());
}

}  // namespace oocgemm::vgpu
