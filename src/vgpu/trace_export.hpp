// Trace export in Chrome tracing format (chrome://tracing, Perfetto).
//
// Every virtual-device operation becomes a complete ("X") event on the lane
// of the engine it occupied, so the overlap structure the paper's design
// creates — payload transfers hiding symbolic/numeric kernels, H2D running
// against D2H — is directly visible in a trace viewer.
#pragma once

#include <string>

#include "common/status.hpp"
#include "vgpu/trace.hpp"

namespace oocgemm::vgpu {

/// Serializes `trace` as a Chrome trace-event JSON string.  `device_id`
/// (vgpu::Device::id) becomes the process id, so traces exported from
/// several pool devices render as separate named processes when merged.
std::string ToChromeTraceJson(const Trace& trace, int device_id = 0);

/// Writes ToChromeTraceJson(trace, device_id) to `path`.
Status WriteChromeTrace(const Trace& trace, const std::string& path,
                        int device_id = 0);

}  // namespace oocgemm::vgpu
