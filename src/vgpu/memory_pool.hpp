// The paper's pre-allocation scheme (Section IV-B, "Pre-Allocation to Avoid
// Dynamic Memory Allocation").
//
// One large device allocation is grabbed up front; every dynamic data
// structure of the SpGEMM pipeline then takes memory by bumping an offset.
// Sub-allocation has *zero* virtual cost and — crucially — does not
// serialize the device the way Device::Malloc does, which is what enables
// the asynchronous pipeline.  Reset() recycles the arena between chunks.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "vgpu/device.hpp"

namespace oocgemm::vgpu {

class MemoryPool {
 public:
  /// Grabs `bytes` from `device` (a single serializing Malloc, done once
  /// before the pipeline starts).  A genuine OOM here aborts — sizing the
  /// pool is the panel planner's job and exceeding capacity is a planning
  /// bug — but *injected* failures (kResourceExhausted / kUnavailable from
  /// a FaultInjector) are recorded in init_status() so fault runs degrade
  /// to a clean error instead of killing the process.
  MemoryPool(Device& device, HostContext& host, std::int64_t bytes,
             const std::string& label = "pool");
  ~MemoryPool();

  /// OK unless the backing Malloc was fault-injected away; callers must
  /// check before first use (Allocate also re-reports it).
  const Status& init_status() const { return init_status_; }

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Bump allocation, 256-byte aligned.  OOM Status if the pool is full
  /// (the caller falls back to smaller chunks or reports a planning error).
  StatusOr<DevicePtr> Allocate(std::int64_t bytes);

  /// Typed helper: allocates count * sizeof(T) bytes.
  template <typename T>
  StatusOr<DevicePtr> AllocateArray(std::int64_t count) {
    return Allocate(count * static_cast<std::int64_t>(sizeof(T)));
  }

  /// Recycles the whole pool (between chunks).  The caller is responsible
  /// for any lifetime overlap of buffers across chunks — in the paper's
  /// pipeline double-buffered structures live in two distinct pools.
  void Reset();

  std::int64_t capacity() const { return base_.size; }
  std::int64_t used_bytes() const { return cursor_; }
  std::int64_t high_water() const { return high_water_; }
  std::int64_t free_bytes() const { return base_.size - cursor_; }

 private:
  Device& device_;
  HostContext* host_;
  DevicePtr base_;
  Status init_status_;
  std::int64_t cursor_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace oocgemm::vgpu
