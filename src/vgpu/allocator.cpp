#include "vgpu/allocator.hpp"

#include <algorithm>

#include "vgpu/fault_injector.hpp"

namespace oocgemm::vgpu {

namespace {
std::int64_t AlignUp(std::int64_t v, std::int64_t a) {
  return (v + a - 1) / a * a;
}
}  // namespace

FreeListAllocator::FreeListAllocator(std::int64_t capacity, std::int64_t alignment)
    : capacity_(capacity), alignment_(alignment) {
  OOC_CHECK(capacity >= 0);
  OOC_CHECK(alignment > 0 && (alignment & (alignment - 1)) == 0);
  if (capacity > 0) free_blocks_[0] = capacity;
}

StatusOr<DevicePtr> FreeListAllocator::Allocate(std::int64_t bytes,
                                                const std::string& label) {
  if (bytes < 0) return Status::InvalidArgument("negative allocation size");
  if (injector_ != nullptr) {
    if (injector_->device_dead()) {
      return Status::Unavailable("device lost: allocation '" + label +
                                 "' dropped");
    }
    if (auto fired = injector_->Evaluate(FaultSite::kAlloc, label)) {
      switch (fired->action) {
        case FaultAction::kDelay:
          break;  // bookkeeping has no timing; the record still logs it
        case FaultAction::kKillDevice:
          return Status::Unavailable("injected device loss: " +
                                     fired->description);
        case FaultAction::kFail:
        case FaultAction::kCorrupt:
          return Status::ResourceExhausted("injected alloc failure: " +
                                           fired->description);
      }
    }
  }
  const std::int64_t need = std::max<std::int64_t>(AlignUp(bytes, alignment_), alignment_);
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second >= need) {
      const std::int64_t offset = it->first;
      const std::int64_t remaining = it->second - need;
      free_blocks_.erase(it);
      if (remaining > 0) free_blocks_[offset + need] = remaining;
      live_[offset] = need;
      used_ += need;
      peak_ = std::max(peak_, used_);
      return DevicePtr{offset, need};
    }
  }
  return Status::OutOfMemory("device OOM: requested " + std::to_string(bytes) +
                             " bytes, free " + std::to_string(free_bytes()) +
                             " (largest block " +
                             std::to_string(largest_free_block()) + ")");
}

void FreeListAllocator::Free(DevicePtr ptr) {
  if (ptr.is_null()) return;
  auto it = live_.find(ptr.offset);
  OOC_CHECK(it != live_.end() && "free of unknown device pointer");
  const std::int64_t size = it->second;
  live_.erase(it);
  used_ -= size;

  // Insert and coalesce with neighbours.
  auto inserted = free_blocks_.emplace(ptr.offset, size).first;
  if (inserted != free_blocks_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->first + prev->second == inserted->first) {
      prev->second += inserted->second;
      free_blocks_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != free_blocks_.end() &&
      inserted->first + inserted->second == next->first) {
    inserted->second += next->second;
    free_blocks_.erase(next);
  }
}

std::int64_t FreeListAllocator::largest_free_block() const {
  std::int64_t best = 0;
  for (const auto& [offset, size] : free_blocks_) best = std::max(best, size);
  return best;
}

}  // namespace oocgemm::vgpu
