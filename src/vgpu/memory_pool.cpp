#include "vgpu/memory_pool.hpp"

#include <algorithm>

namespace oocgemm::vgpu {

namespace {
constexpr std::int64_t kAlignment = 256;

std::int64_t AlignUp(std::int64_t v) {
  return (v + kAlignment - 1) / kAlignment * kAlignment;
}
}  // namespace

MemoryPool::MemoryPool(Device& device, HostContext& host, std::int64_t bytes,
                       const std::string& label)
    : device_(device), host_(&host) {
  auto alloc = device_.Malloc(host, bytes, label);
  if (!alloc.ok()) {
    // Injected failures (transient alloc fault or a lost device) are part
    // of the fault model and must stay recoverable; a genuine capacity OOM
    // is still a planning bug and aborts.
    OOC_CHECK(alloc.status().code() != StatusCode::kOutOfMemory &&
              "memory pool sizing exceeded device capacity");
    init_status_ = alloc.status();
    return;
  }
  base_ = alloc.value();
}

MemoryPool::~MemoryPool() {
  // Freeing serializes the device; by destruction time the pipeline has
  // drained, so this only affects the trace tail.
  if (!base_.is_null()) device_.Free(*host_, base_);
}

StatusOr<DevicePtr> MemoryPool::Allocate(std::int64_t bytes) {
  if (!init_status_.ok()) return init_status_;
  if (bytes < 0) return Status::InvalidArgument("negative pool allocation");
  const std::int64_t need = std::max<std::int64_t>(AlignUp(bytes), kAlignment);
  if (cursor_ + need > base_.size) {
    return Status::OutOfMemory(
        "pool exhausted: requested " + std::to_string(bytes) + ", free " +
        std::to_string(free_bytes()) + " of " + std::to_string(base_.size));
  }
  DevicePtr ptr = base_.Slice(cursor_, need);
  cursor_ += need;
  high_water_ = std::max(high_water_, cursor_);
  return ptr;
}

void MemoryPool::Reset() { cursor_ = 0; }

}  // namespace oocgemm::vgpu
