#include "vgpu/memory_pool.hpp"

#include <algorithm>

namespace oocgemm::vgpu {

namespace {
constexpr std::int64_t kAlignment = 256;

std::int64_t AlignUp(std::int64_t v) {
  return (v + kAlignment - 1) / kAlignment * kAlignment;
}
}  // namespace

MemoryPool::MemoryPool(Device& device, HostContext& host, std::int64_t bytes,
                       const std::string& label)
    : device_(device), host_(&host) {
  auto alloc = device_.Malloc(host, bytes, label);
  OOC_CHECK(alloc.ok() && "memory pool sizing exceeded device capacity");
  base_ = alloc.value();
}

MemoryPool::~MemoryPool() {
  // Freeing serializes the device; by destruction time the pipeline has
  // drained, so this only affects the trace tail.
  device_.Free(*host_, base_);
}

StatusOr<DevicePtr> MemoryPool::Allocate(std::int64_t bytes) {
  if (bytes < 0) return Status::InvalidArgument("negative pool allocation");
  const std::int64_t need = std::max<std::int64_t>(AlignUp(bytes), kAlignment);
  if (cursor_ + need > base_.size) {
    return Status::OutOfMemory(
        "pool exhausted: requested " + std::to_string(bytes) + ", free " +
        std::to_string(free_bytes()) + " of " + std::to_string(base_.size));
  }
  DevicePtr ptr = base_.Slice(cursor_, need);
  cursor_ += need;
  high_water_ = std::max(high_water_, cursor_);
  return ptr;
}

void MemoryPool::Reset() { cursor_ = 0; }

}  // namespace oocgemm::vgpu
