// Abstraction over where pipeline buffers come from.
//
// The paper's key asynchronous-execution enabler is replacing per-structure
// cudaMalloc (which serializes the device) by sub-allocation from a
// pre-allocated pool.  The SpGEMM pipeline is written against this
// interface so the two strategies are interchangeable:
//  * MallocMemorySource — the "synchronous spECK" baseline behaviour: every
//    allocation is a Device::Malloc and pays the device-wide fence.
//  * PoolMemorySource  — the paper's design: one up-front allocation, then
//    zero-cost bump allocation.
#pragma once

#include <string>

#include "vgpu/device.hpp"
#include "vgpu/memory_pool.hpp"

namespace oocgemm::vgpu {

class DeviceMemorySource {
 public:
  virtual ~DeviceMemorySource() = default;

  virtual StatusOr<DevicePtr> Allocate(HostContext& host, std::int64_t bytes,
                                       const std::string& label) = 0;

  /// Releases a buffer obtained from Allocate.  Pools release en masse via
  /// Recycle() instead, so their Release is a no-op.
  virtual void Release(HostContext& host, DevicePtr ptr) = 0;

  /// Called by the executor between chunks.
  virtual void Recycle() {}

  /// True when Allocate serializes the device (dynamic allocation).
  virtual bool dynamic() const = 0;
};

class MallocMemorySource final : public DeviceMemorySource {
 public:
  explicit MallocMemorySource(Device& device) : device_(device) {}

  StatusOr<DevicePtr> Allocate(HostContext& host, std::int64_t bytes,
                               const std::string& label) override {
    return device_.Malloc(host, bytes, label);
  }
  void Release(HostContext& host, DevicePtr ptr) override {
    device_.Free(host, ptr);
  }
  bool dynamic() const override { return true; }

 private:
  Device& device_;
};

class PoolMemorySource final : public DeviceMemorySource {
 public:
  explicit PoolMemorySource(MemoryPool& pool) : pool_(pool) {}

  StatusOr<DevicePtr> Allocate(HostContext& /*host*/, std::int64_t bytes,
                               const std::string& /*label*/) override {
    return pool_.Allocate(bytes);
  }
  void Release(HostContext& /*host*/, DevicePtr /*ptr*/) override {}
  void Recycle() override { pool_.Reset(); }
  bool dynamic() const override { return false; }

 private:
  MemoryPool& pool_;
};

}  // namespace oocgemm::vgpu
