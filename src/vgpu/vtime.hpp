// Virtual-time primitives for the simulated device timeline.
//
// The virtual GPU executes kernel bodies eagerly on the host (so results are
// real and testable) but *times* every operation on a discrete-event
// timeline: each operation occupies one device resource (compute engine,
// H2D copy engine, D2H copy engine) for a modeled duration, starting no
// earlier than (a) its stream predecessor, (b) any awaited events, (c) the
// issuing host thread's clock, and (d) the resource becoming free.  This
// reproduces the two CUDA properties the paper's design revolves around:
// a single copy engine per direction, and device-wide serialization on
// memory (de)allocation.
#pragma once

#include <algorithm>
#include <string>

namespace oocgemm::vgpu {

/// Virtual seconds since device creation.
using SimTime = double;

/// Half-open occupancy interval on a resource.
struct Interval {
  SimTime start = 0.0;
  SimTime end = 0.0;

  double duration() const { return end - start; }
  bool Overlaps(const Interval& other) const {
    return start < other.end && other.start < end;
  }
};

/// A serially-occupied device resource (an engine).
class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  SimTime free_at() const { return free_at_; }

  /// Books the resource for `duration` starting no earlier than `ready`;
  /// returns the occupied interval.
  Interval Acquire(SimTime ready, double duration) {
    Interval iv;
    iv.start = std::max(ready, free_at_);
    iv.end = iv.start + duration;
    free_at_ = iv.end;
    return iv;
  }

  /// Pushes the resource's availability to at least `t` (used by the
  /// allocation-serialization rule).
  void Fence(SimTime t) { free_at_ = std::max(free_at_, t); }

 private:
  std::string name_;
  SimTime free_at_ = 0.0;
};

/// The clock of one host thread issuing work to the device.  Asynchronous
/// calls advance it only by the launch overhead; synchronous calls advance
/// it to the operation's virtual completion.
struct HostContext {
  SimTime now = 0.0;

  void AdvanceTo(SimTime t) { now = std::max(now, t); }
};

}  // namespace oocgemm::vgpu
