// Execution trace of the virtual device: one record per operation, queried
// by benchmarks (transfer fractions for Fig. 4, overlap efficiency for
// Fig. 8) and by property tests (engines never overlap, streams are FIFO).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/vtime.hpp"

namespace oocgemm::vgpu {

enum class OpCategory {
  kKernel = 0,
  kH2D,
  kD2H,
  kAlloc,
  kFree,
  kHost,       // host-side work recorded for completeness (e.g. grouping)
  kFault,      // injected fault fired (zero-duration marker, see
               // fault_injector.hpp); lets Chrome traces show failures
};

const char* OpCategoryName(OpCategory c);

struct TraceEvent {
  OpCategory category = OpCategory::kKernel;
  std::string label;
  int stream_id = -1;          // -1 for stream-less ops (alloc/free/host)
  Interval interval;
  std::int64_t bytes = 0;      // transfer payload; 0 for kernels
};

class Trace {
 public:
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }
  void Clear() { events_.clear(); }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Sum of durations of all events in `category`.
  double BusyTime(OpCategory category) const;

  /// Sum of durations of events whose label contains `substr`.
  double BusyTimeLabeled(const std::string& substr) const;

  /// End of the last event (0 when empty).
  SimTime SpanEnd() const;

  /// Fraction of the total span occupied by `category` (Fig. 4 metric).
  double Fraction(OpCategory category) const;

  /// Total bytes moved in `category` (kH2D / kD2H).
  std::int64_t Bytes(OpCategory category) const;

  /// True if any two events of `category` overlap in time — a violation of
  /// the one-engine-per-direction rule that tests assert never happens.
  bool HasIntraCategoryOverlap(OpCategory category) const;

  /// Time covered by the union of intervals of `category` (overlap-merged).
  double CoveredTime(OpCategory category) const;

  /// Wall-parallel efficiency: (sum of busy times of kernels + transfers)
  /// / span; > 1 means the schedule achieved real overlap.
  double OverlapFactor() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace oocgemm::vgpu
