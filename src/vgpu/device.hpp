// The virtual GPU device.
//
// Execution model (see DESIGN.md "Substitutions"):
//  * Kernel bodies and memcpys execute eagerly on the host in issue order,
//    so all data side effects are real and results are bit-exact testable.
//  * Timing is simulated: every operation occupies one of three serial
//    resources — the compute engine, the H2D copy engine, or the D2H copy
//    engine — for a caller-modeled duration.  Start time honours stream
//    order, awaited events, the issuing host thread's clock, and resource
//    availability.  This reproduces the CUDA constraints the paper designs
//    around: one transfer at a time per direction, and device-wide
//    serialization on cudaMalloc/cudaFree.
//  * An optional hazard checker verifies that eager execution was a legal
//    serialization: any two operations touching overlapping device-memory
//    regions (at least one writing) must not overlap in virtual time.
//  * Fault model (see fault_injector.hpp): when a FaultInjector is
//    installed, operations may fail.  Because the async APIs return void
//    (as CUDA's do), failures follow CUDA's *sticky error* semantics: a
//    failed/corrupted op sets a sticky status on the device, the op's data
//    effect is suppressed (or scrambled, for kCorrupt), and callers observe
//    the error at status-returning checkpoints via health().  A transient
//    fault clears on ResetTimeline (the per-run entry point); a kKillDevice
//    fault marks the device lost — every subsequent op is a silent no-op —
//    until Revive().
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/metrics.hpp"
#include "vgpu/allocator.hpp"
#include "vgpu/fault_injector.hpp"
#include "vgpu/trace.hpp"
#include "vgpu/vtime.hpp"

namespace oocgemm::vgpu {

struct DeviceProperties {
  std::string name = "Virtual Tesla V100";
  int num_sms = 80;                       // Table I
  int fp32_cores = 5120;                  // Table I
  std::int64_t memory_bytes = 16ll << 30; // Table I: 16 GB HBM2

  // Effective PCIe rates.  Deliberately below the link's nominal 12 GB/s:
  // these are *calibrated* together with kernels::CostModel so that the
  // synchronous out-of-core baseline reproduces the paper's Fig. 4
  // transfer-time fractions (77-90%).  See DESIGN.md "Substitutions".
  double h2d_bandwidth = 2.0e9;           // bytes/s
  double d2h_bandwidth = 2.0e9;           // bytes/s
  double pageable_bandwidth_factor = 0.4; // unpinned host memory penalty

  double kernel_launch_overhead = 8e-6;   // host-side cost per launch (s)
  double transfer_latency = 10e-6;        // fixed per-transfer cost (s)
  double alloc_overhead = 120e-6;         // cudaMalloc (s), serializes device
  double free_overhead = 60e-6;           // cudaFree (s), serializes device
};

/// Table I configuration.
DeviceProperties V100Properties();

/// V100 with memory shrunk by 2^mem_shift for scaled-down matrices (keeps
/// the "output exceeds device memory" regime of the paper at test sizes).
/// The fixed per-operation overheads (launch, transfer latency, alloc) are
/// shrunk by the same factor: a miniature device for a miniature problem,
/// so relative magnitudes — the thing every figure depends on — match the
/// full-scale system.
DeviceProperties ScaledV100Properties(int mem_shift);

/// In-order queue of device operations (CUDA stream analogue).
class Stream {
 public:
  Stream(int id, std::string name) : id_(id), name_(std::move(name)) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  SimTime last_end() const { return last_end_; }
  void AdvanceTo(SimTime t) { last_end_ = std::max(last_end_, t); }

 private:
  int id_;
  std::string name_;
  SimTime last_end_ = 0.0;
};

/// A recorded timestamp another stream can wait on (cudaEvent analogue).
struct Event {
  SimTime time = 0.0;
};

/// Byte range a kernel or copy touches, for hazard checking.
struct Region {
  std::int64_t offset = 0;
  std::int64_t size = 0;
  bool write = false;
};

class Device {
 public:
  explicit Device(DeviceProperties props);

  const DeviceProperties& properties() const { return props_; }

  /// Node-level identity of this device (0 when standalone).  Set by
  /// core::DevicePool to the device's pool index; trace export stamps it
  /// on every emitted event so multi-device runs stay attributable.
  int id() const { return id_; }
  void set_id(int id) {
    id_ = id;
    BindMetrics();
  }

  // --- memory -------------------------------------------------------------

  /// cudaMalloc analogue: blocks the host until the allocation completes and
  /// *serializes the whole device* (fences both copy engines, the compute
  /// engine, and every stream) — the behaviour that forbids dynamic
  /// allocation inside the paper's asynchronous pipeline.
  StatusOr<DevicePtr> Malloc(HostContext& host, std::int64_t bytes,
                             const std::string& label = "malloc");

  /// cudaFree analogue; same serialization rule.
  void Free(HostContext& host, DevicePtr ptr);

  /// Host-visible backing storage of a device range (kernels use this).
  std::byte* Raw(DevicePtr ptr);
  const std::byte* Raw(DevicePtr ptr) const;

  template <typename T>
  T* As(DevicePtr ptr) {
    return reinterpret_cast<T*>(Raw(ptr));
  }

  std::int64_t used_bytes() const { return allocator_.used_bytes(); }
  std::int64_t peak_bytes() const { return allocator_.peak_bytes(); }
  std::int64_t capacity() const { return allocator_.capacity(); }
  std::int64_t free_bytes() const { return allocator_.free_bytes(); }

  /// Live memory headroom in one consistent snapshot — what an admission
  /// controller needs to decide whether another job's working set fits.
  /// `largest_block` bounds the biggest single allocation that can succeed
  /// right now (free_bytes alone overstates it under fragmentation).
  struct MemoryHeadroom {
    std::int64_t capacity = 0;
    std::int64_t used = 0;
    std::int64_t free = 0;
    std::int64_t largest_block = 0;
  };
  MemoryHeadroom Headroom() const {
    return MemoryHeadroom{allocator_.capacity(), allocator_.used_bytes(),
                          allocator_.free_bytes(),
                          allocator_.largest_free_block()};
  }

  // --- streams & synchronization -------------------------------------------

  /// Creates a stream; the Device owns it (pointer stays valid).
  Stream* CreateStream(const std::string& name);

  /// Timestamp of the last operation issued to `stream`.
  Event RecordEvent(const Stream& stream) const { return Event{stream.last_end()}; }

  /// Makes subsequent work on `stream` start no earlier than `event`.
  void StreamWaitEvent(Stream& stream, Event event) {
    stream.AdvanceTo(event.time);
  }

  /// Blocks the host until `stream` drains.
  void StreamSynchronize(HostContext& host, const Stream& stream) {
    host.AdvanceTo(stream.last_end());
  }

  /// Blocks the host until the whole device drains.
  void DeviceSynchronize(HostContext& host) { host.AdvanceTo(QuiesceTime()); }

  /// Virtual time at which everything currently issued has finished.
  SimTime QuiesceTime() const;

  // --- operations -----------------------------------------------------------

  /// Launches a kernel on `stream`: runs `body` eagerly, books the compute
  /// engine for `cost_seconds`.  `regions` lists touched device memory for
  /// hazard checking (pass {} to skip).  Asynchronous: the host clock only
  /// pays the launch overhead.
  void LaunchKernel(HostContext& host, Stream& stream, const std::string& label,
                    double cost_seconds, std::vector<Region> regions,
                    const std::function<void()>& body);

  /// Variant for kernels whose modeled duration depends on what they compute
  /// (e.g. the numeric phase's rate depends on the measured compression
  /// ratio): `body` runs eagerly and returns the cost in seconds, which is
  /// then booked exactly like LaunchKernel.
  void LaunchKernelCosted(HostContext& host, Stream& stream,
                          const std::string& label, std::vector<Region> regions,
                          const std::function<double()>& body);

  /// Asynchronous host-to-device copy (engine: H2D).  `pinned` marks the
  /// host buffer as page-locked; unpinned copies run at reduced bandwidth
  /// and, like CUDA pageable copies, block the host until complete.
  void MemcpyH2DAsync(HostContext& host, Stream& stream, DevicePtr dst,
                      const void* src, std::int64_t bytes,
                      const std::string& label = "h2d", bool pinned = true);

  /// Asynchronous device-to-host copy (engine: D2H).
  void MemcpyD2HAsync(HostContext& host, Stream& stream, void* dst,
                      DevicePtr src, std::int64_t bytes,
                      const std::string& label = "d2h", bool pinned = true);

  /// Synchronous copies (host blocks until the virtual completion).
  void MemcpyH2D(HostContext& host, DevicePtr dst, const void* src,
                 std::int64_t bytes, const std::string& label = "h2d");
  void MemcpyD2H(HostContext& host, void* dst, DevicePtr src,
                 std::int64_t bytes, const std::string& label = "d2h");

  // --- fault injection & health ---------------------------------------------

  /// Installs (or clears, with nullptr) a fault injector; not owned.  The
  /// injector is threaded into the allocator too, so Malloc-level failures
  /// and transfer/kernel faults share one deterministic schedule.
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  /// CUDA-style sticky error state.  OK while the device is healthy; the
  /// device-lost status once a kKillDevice fault fired; otherwise the first
  /// transient fault since the last ResetTimeline/Revive.  Executors check
  /// this at their status-returning checkpoints (after synchronizes and
  /// before consuming readbacks).
  Status health() const { return !dead_status_.ok() ? dead_status_ : fault_status_; }

  /// True once the device is lost (kKillDevice); cleared only by Revive.
  bool dead() const { return !dead_status_.ok(); }

  /// Clears both sticky statuses and re-arms the injector's dead flag —
  /// the maintenance path DevicePool::Revive uses to return a drained
  /// device to service.
  void Revive();

  // --- introspection ---------------------------------------------------------

  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  void set_hazard_checking(bool enabled) { hazard_checking_ = enabled; }
  /// Descriptions of detected read/write races (empty == clean run).
  const std::vector<std::string>& hazard_violations() const {
    return hazard_violations_;
  }

  /// Resets trace, clocks and hazard history but keeps allocations (for
  /// benchmarks that reuse a warmed-up device).  Also clears any transient
  /// sticky fault — the analogue of a fresh CUDA context check at run
  /// start — but NOT the device-lost state.
  void ResetTimeline();

 private:
  /// Instruments in the default obs registry, labeled {device=<id>}.  They
  /// are recorded exactly where trace events are added, so per-run counter
  /// deltas reconcile with the trace-derived RunStats.
  struct DeviceMetrics {
    obs::Counter* h2d_bytes = nullptr;
    obs::Counter* d2h_bytes = nullptr;
    obs::DoubleCounter* h2d_seconds = nullptr;
    obs::DoubleCounter* d2h_seconds = nullptr;
    obs::Counter* kernel_launches = nullptr;
    obs::DoubleCounter* kernel_seconds = nullptr;
    obs::Counter* allocs = nullptr;
    obs::Counter* frees = nullptr;
    obs::Counter* alloc_bytes = nullptr;
    obs::Counter* faults = nullptr;
    obs::Gauge* used_bytes = nullptr;
  };
  void BindMetrics();

  void SerializeDevice(HostContext& host, double overhead, OpCategory category,
                       const std::string& label);
  void CheckHazards(const std::string& label, const Interval& interval,
                    const std::vector<Region>& regions);

  /// Consults the injector for one op.  Returns the fired fault, already
  /// traced; sets sticky statuses for kFail/kKillDevice.  The caller skips
  /// the op's effect for those two, applies kCorrupt/kDelay itself.
  std::optional<FiredFault> EvaluateFault(HostContext& host, FaultSite site,
                                          int stream_id,
                                          const std::string& label);
  void MarkDead(const std::string& description);
  void ScrambleBytes(void* data, std::int64_t bytes);

  DeviceProperties props_;
  int id_ = 0;
  DeviceMetrics metrics_;
  std::vector<std::byte> arena_;
  FreeListAllocator allocator_;
  Resource compute_{"compute"};
  Resource h2d_{"h2d"};
  Resource d2h_{"d2h"};
  std::deque<Stream> streams_;
  Stream* sync_stream_ = nullptr;  // internal stream for synchronous copies
  Trace trace_;
  FaultInjector* injector_ = nullptr;
  Status fault_status_;  // transient sticky error (clears on ResetTimeline)
  Status dead_status_;   // device lost (clears only on Revive)

  bool hazard_checking_ = true;
  struct HazardRecord {
    Interval interval;
    std::vector<Region> regions;
    std::string label;
  };
  std::vector<HazardRecord> hazard_history_;
  std::vector<std::string> hazard_violations_;
};

}  // namespace oocgemm::vgpu
