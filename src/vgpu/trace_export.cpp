#include "vgpu/trace_export.hpp"

#include <cstdio>
#include <memory>

namespace oocgemm::vgpu {

namespace {

const char* LaneName(OpCategory c) {
  switch (c) {
    case OpCategory::kKernel: return "compute engine";
    case OpCategory::kH2D: return "H2D engine";
    case OpCategory::kD2H: return "D2H engine";
    case OpCategory::kAlloc:
    case OpCategory::kFree: return "allocator";
    case OpCategory::kHost: return "host";
    case OpCategory::kFault: return "faults";
  }
  return "?";
}

int LaneId(OpCategory c) {
  switch (c) {
    case OpCategory::kKernel: return 1;
    case OpCategory::kH2D: return 2;
    case OpCategory::kD2H: return 3;
    case OpCategory::kAlloc:
    case OpCategory::kFree: return 4;
    case OpCategory::kHost: return 5;
    case OpCategory::kFault: return 6;
  }
  return 0;
}

void AppendEscaped(const std::string& in, std::string& out) {
  for (char ch : in) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace

std::string ToChromeTraceJson(const Trace& trace, int device_id) {
  const int pid = device_id + 1;  // Chrome tracing treats pid 0 as "idle"
  std::string out = "{\"traceEvents\":[\n";
  char buf[160];

  // Process metadata names the device, lane metadata names the engines, so
  // viewers show "vgpu device N / compute engine" instead of bare ids.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"args\":{\"name\":\"vgpu device %d\"}}",
                pid, device_id);
  out += buf;
  for (OpCategory c : {OpCategory::kKernel, OpCategory::kH2D, OpCategory::kD2H,
                       OpCategory::kAlloc, OpCategory::kHost,
                       OpCategory::kFault}) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  pid, LaneId(c), LaneName(c));
    out += buf;
  }

  for (const TraceEvent& e : trace.events()) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"");
    out += buf;
    AppendEscaped(e.label, out);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                  "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"device\":%d,"
                  "\"stream\":%d,\"bytes\":%lld}}",
                  OpCategoryName(e.category), pid, LaneId(e.category),
                  e.interval.start * 1e6, e.interval.duration() * 1e6,
                  device_id, e.stream_id, static_cast<long long>(e.bytes));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const Trace& trace, const std::string& path,
                        int device_id) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  if (!f) return Status::IoError("cannot open " + path);
  const std::string json = ToChromeTraceJson(trace, device_id);
  if (std::fwrite(json.data(), 1, json.size(), f.get()) != json.size()) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace oocgemm::vgpu
