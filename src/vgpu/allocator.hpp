// First-fit free-list allocator over the device-memory arena.
//
// Provides cudaMalloc/cudaFree-like behaviour (capacity accounting, OOM on
// exhaustion, address reuse).  The *timing* penalty of allocation — the
// device-wide serialization that motivates the paper's pre-allocation
// design — is applied by Device, not here; this class is pure bookkeeping
// and is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.hpp"

namespace oocgemm::vgpu {

/// Handle to a device-memory range.  Trivially copyable; does not own.
struct DevicePtr {
  std::int64_t offset = -1;
  std::int64_t size = 0;

  bool is_null() const { return offset < 0; }

  /// Sub-range view (for transferring portions of a buffer, as the paper's
  /// divided output transfers do).
  DevicePtr Slice(std::int64_t byte_offset, std::int64_t byte_size) const {
    OOC_CHECK(byte_offset >= 0 && byte_size >= 0);
    OOC_CHECK(byte_offset + byte_size <= size);
    return DevicePtr{offset + byte_offset, byte_size};
  }
};

class FaultInjector;

class FreeListAllocator {
 public:
  /// Manages [0, capacity) with all allocations aligned to `alignment`.
  explicit FreeListAllocator(std::int64_t capacity, std::int64_t alignment = 256);

  /// Installs (or clears, with nullptr) a fault injector consulted on every
  /// Allocate at site kAlloc.  Injected failures surface as
  /// kResourceExhausted (vs the genuine-OOM kOutOfMemory), mirroring a
  /// transient cudaMalloc failure rather than a capacity-planning bug.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// First-fit allocation; OOM Status when no block fits.  `label` is only
  /// used for fault-rule matching and diagnostics.
  StatusOr<DevicePtr> Allocate(std::int64_t bytes,
                               const std::string& label = "");

  /// Frees a pointer previously returned by Allocate; coalesces neighbours.
  /// Double free or foreign pointer aborts (programming error).
  void Free(DevicePtr ptr);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used_bytes() const { return used_; }
  std::int64_t peak_bytes() const { return peak_; }
  std::int64_t free_bytes() const { return capacity_ - used_; }
  std::size_t num_allocations() const { return live_.size(); }
  /// Size of the largest free block (fragmentation diagnostic).
  std::int64_t largest_free_block() const;

 private:
  FaultInjector* injector_ = nullptr;
  std::int64_t capacity_;
  std::int64_t alignment_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  std::map<std::int64_t, std::int64_t> free_blocks_;  // offset -> size
  std::map<std::int64_t, std::int64_t> live_;         // offset -> size
};

}  // namespace oocgemm::vgpu
