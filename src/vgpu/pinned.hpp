// Pinned (page-locked) host buffer analogue.
//
// The paper stages output chunks into CPU pinned memory so that D2H copies
// run at full bandwidth and asynchronously.  Here a PinnedBuffer is a plain
// aligned host vector whose `pinned()` tag the executors pass to the
// Device's memcpy calls; un-pinned staging is available as an ablation (it
// forces synchronous, slower transfers, matching CUDA pageable semantics).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace oocgemm::vgpu {

template <typename T>
class PinnedBuffer {
 public:
  PinnedBuffer() = default;
  explicit PinnedBuffer(std::int64_t count, bool pinned = true)
      : data_(static_cast<std::size_t>(count)), pinned_(pinned) {
    OOC_CHECK(count >= 0);
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }
  std::int64_t bytes() const {
    return size() * static_cast<std::int64_t>(sizeof(T));
  }
  bool pinned() const { return pinned_; }

  void Resize(std::int64_t count) { data_.resize(static_cast<std::size_t>(count)); }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<T> data_;
  bool pinned_ = true;
};

}  // namespace oocgemm::vgpu
